(* The benchmark harness.

   Part 1 regenerates every experiment table of EXPERIMENTS.md (the
   paper's evaluation, reconstructed — see DESIGN.md §4): run with no
   arguments to get all of them, or pass experiment ids.

   Part 2 runs Bechamel micro-benchmarks over the hot paths (history
   interning, counter-table merging, one compute step of each algorithm)
   and whole-run macro-benchmarks (one per experiment family), reporting
   nanoseconds per run. Pass [--no-bechamel] to skip it. *)

open Bechamel
open Toolkit
module K = Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module H = Anon_harness
module O = Anon_obs

(* --- part 1: the experiment tables ---------------------------------------- *)

let run_experiments ids =
  let experiments =
    match ids with
    | [] -> H.Registry.all
    | ids ->
      List.map
        (fun id ->
          match H.Registry.find id with
          | Some e -> e
          | None -> failwith ("unknown experiment id: " ^ id))
        ids
  in
  Format.printf "=== Experiment tables (paper claims, reconstructed evaluation) ===@.";
  List.iter
    (fun (e : H.Registry.experiment) ->
      let t0 = O.Clock.now_ns () in
      let table = e.build () in
      H.Table.render Format.std_formatter table;
      Format.printf "   [%.2fs]@." (O.Clock.ns_to_s (O.Clock.since_ns t0)))
    experiments

(* --- part 2: bechamel ------------------------------------------------------- *)

(* Micro: kernel hot paths. *)

let bench_history_snoc =
  Test.make ~name:"history: snoc x100"
    (Staged.stage (fun () ->
         let rec go h i = if i = 0 then h else go (K.History.snoc h (i mod 7)) (i - 1) in
         go K.History.empty 100))

let bench_history_prefix_walk =
  let h = K.History.of_list (List.init 200 (fun i -> i mod 5)) in
  let t =
    K.History.fold_prefixes
      (fun p acc -> K.Counter_table.set acc p (K.History.length p + 1))
      h K.Counter_table.empty
  in
  Test.make ~name:"counter: bump over 200-prefix history"
    (Staged.stage (fun () -> K.Counter_table.bump_prefix_max t h))

let bench_counter_min_merge =
  let mk seed =
    let rng = K.Rng.make seed in
    List.fold_left
      (fun t i ->
        K.Counter_table.set t
          (K.History.of_list [ i mod 8; K.Rng.int rng 4 ])
          (1 + K.Rng.int rng 50))
      K.Counter_table.empty (List.init 30 Fun.id)
  in
  let tables = List.map mk [ 1; 2; 3; 4 ] in
  Test.make ~name:"counter: min-merge 4 tables x30 entries"
    (Staged.stage (fun () -> K.Counter_table.min_merge tables))

let inbox_of sets = { G.Intf.current = sets; fresh = [] }

let bench_es_compute =
  let sets = List.init 16 (fun i -> K.Value.set_of_list [ i; i + 1; 40 ]) in
  Test.make ~name:"es: one compute, 16-message inbox"
    (Staged.stage (fun () ->
         let st, _ = C.Es_consensus.initialize 3 in
         C.Es_consensus.compute st ~round:2 ~inbox:(inbox_of sets)))

let bench_ess_compute =
  let mk i =
    {
      C.Ess_consensus.m_proposed = K.Pvalue.Set.of_list [ K.Pvalue.v i; K.Pvalue.bot ];
      m_history = K.History.of_list (List.init 20 (fun j -> (i + j) mod 5));
      m_counters =
        K.Counter_table.set K.Counter_table.empty (K.History.of_list [ i mod 5 ]) i;
    }
  in
  let msgs = List.init 16 mk in
  Test.make ~name:"ess: one compute, 16-message inbox"
    (Staged.stage (fun () ->
         let st, _ = C.Ess_consensus.initialize 3 in
         C.Ess_consensus.compute st ~round:2 ~inbox:(inbox_of msgs)))

(* Macro: one whole run per experiment family. *)

let bench_es_run =
  Test.make ~name:"run: ES consensus, n=8, blocking gst=10"
    (Staged.stage (fun () ->
         let module R = G.Runner.Make (C.Es_consensus) in
         let config =
           G.Runner.default_config ~horizon:100
             ~inputs:(List.init 8 (fun i -> i + 1))
             ~crash:(G.Crash.none ~n:8)
             (G.Adversary.es_blocking ~gst:10 ())
         in
         R.run config))

let bench_ess_run =
  Test.make ~name:"run: ESS consensus, n=8, blocking gst=10"
    (Staged.stage (fun () ->
         let module R = G.Runner.Make (C.Ess_consensus) in
         let config =
           G.Runner.default_config ~horizon:100
             ~inputs:(List.init 8 (fun i -> i + 1))
             ~crash:(G.Crash.none ~n:8)
             (G.Adversary.ess_blocking ~gst:10 ())
         in
         R.run config))

(* Instrumentation overhead: the same ES run with observability off, with
   a live metrics registry, and with metrics + an in-memory event sink.
   The "off" variant still passes ~recorder (the default [off] handle), so
   the comparison isolates the cost of live instruments, not of the
   optional argument. *)

let es_obs_config =
  G.Runner.default_config ~horizon:100
    ~inputs:(List.init 8 (fun i -> i + 1))
    ~crash:(G.Crash.none ~n:8)
    (G.Adversary.es_blocking ~gst:10 ())

let bench_es_run_obs_off =
  Test.make ~name:"obs: ES run, recorder off"
    (Staged.stage (fun () ->
         let module R = G.Runner.Make (C.Es_consensus) in
         R.run ~recorder:O.Recorder.off es_obs_config))

let bench_es_run_obs_metrics =
  Test.make ~name:"obs: ES run, metrics on"
    (Staged.stage (fun () ->
         let module R = G.Runner.Make (C.Es_consensus) in
         let recorder = O.Recorder.create ~metrics:(O.Metrics.create ()) () in
         R.run ~recorder es_obs_config))

let bench_es_run_obs_events =
  Test.make ~name:"obs: ES run, metrics + memory sink"
    (Staged.stage (fun () ->
         let module R = G.Runner.Make (C.Es_consensus) in
         let recorder =
           O.Recorder.create ~metrics:(O.Metrics.create ())
             ~sink:(O.Sink.memory ~capacity:8192) ()
         in
         R.run ~recorder es_obs_config))

let bench_weakset_run =
  Test.make ~name:"run: weak-set in MS, n=8, 3 ops/client"
    (Staged.stage (fun () ->
         let module W = G.Service_runner.Make (C.Weak_set_ms) in
         let rng = K.Rng.make 4 in
         let workload =
           G.Service_runner.random_workload ~n:8 ~ops_per_client:3 ~max_start:20
             ~value_range:10_000 rng
         in
         W.run
           { G.Service_runner.n = 8;
             crash = G.Crash.none ~n:8;
             adversary = G.Adversary.ms ();
             horizon = 80;
             seed = 4 }
           ~workload))

let bench_emulation_run =
  Test.make ~name:"run: MS emulation hosting ES, n=4, 40 rounds"
    (Staged.stage (fun () ->
         let module E = C.Ms_emulation.Make (C.Es_consensus) in
         E.run
           (C.Ms_emulation.default_config ~inputs:[ 3; 1; 4; 1 ]
              ~crash:(G.Crash.none ~n:4) ~horizon_rounds:40 ~seed:7 ())))

let bench_sigma_attack =
  Test.make ~name:"run: sigma two-run attack, 4 candidates"
    (Staged.stage (fun () ->
         List.map
           (fun (module Cand : C.Sigma.CANDIDATE) ->
             C.Sigma.two_run_attack (module Cand) ~horizon:200)
           C.Sigma.builtin_candidates))

let bench_skew_run =
  Test.make ~name:"run: skewed ES, n=4, random pace/delay"
    (Staged.stage (fun () ->
         let module S = G.Skew_runner.Make (C.Es_consensus) in
         S.run
           (G.Skew_runner.default_config ~seed:5 ~horizon_ticks:500 ~max_rounds:60
              ~pace:(G.Skew_runner.uniform_pace ~max:3)
              ~delay:(G.Skew_runner.uniform_delay ~max:3)
              ~inputs:[ 1; 2; 3; 4 ]
              ~crash:(G.Crash.none ~n:4) ())))

let bench_checker =
  let out =
    let module R = G.Runner.Make (C.Es_consensus) in
    R.run
      (G.Runner.default_config ~horizon:100
         ~inputs:(List.init 8 (fun i -> i + 1))
         ~crash:(G.Crash.none ~n:8)
         (G.Adversary.es_blocking ~gst:30 ()))
  in
  Test.make ~name:"check: env + consensus over a 32-round trace"
    (Staged.stage (fun () ->
         (G.Checker.check_env out.trace, G.Checker.check_consensus out.trace)))

let all_benches =
  Test.make_grouped ~name:"anon-consensus"
    [
      bench_history_snoc;
      bench_history_prefix_walk;
      bench_counter_min_merge;
      bench_es_compute;
      bench_ess_compute;
      bench_es_run;
      bench_ess_run;
      bench_es_run_obs_off;
      bench_es_run_obs_metrics;
      bench_es_run_obs_events;
      bench_weakset_run;
      bench_emulation_run;
      bench_skew_run;
      bench_sigma_attack;
      bench_checker;
    ]

let run_bechamel () =
  Format.printf "@.=== Bechamel micro/macro benchmarks (ns per run) ===@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances all_benches in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ x ] -> x
        | Some _ | None -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if ns < 1_000.0 then Format.printf "  %-50s %10.1f ns@." name ns
      else if ns < 1_000_000.0 then Format.printf "  %-50s %10.2f µs@." name (ns /. 1e3)
      else Format.printf "  %-50s %10.2f ms@." name (ns /. 1e6))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows);
  (* Instrumentation overhead relative to the recorder-off baseline. *)
  let find needle =
    List.find_map
      (fun (name, ns) ->
        if
          String.length name >= String.length needle
          && String.sub name (String.length name - String.length needle)
               (String.length needle)
             = needle
        then Some ns
        else None)
      !rows
  in
  match find "recorder off" with
  | None -> ()
  | Some base when base <= 0.0 || Float.is_nan base -> ()
  | Some base ->
    let report label needle =
      match find needle with
      | Some ns when not (Float.is_nan ns) ->
        Format.printf "  instrumentation overhead (%s): %+.1f%%@." label
          (100.0 *. ((ns /. base) -. 1.0))
      | Some _ | None -> ()
    in
    report "metrics" "metrics on";
    report "metrics + events" "memory sink"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let skip_bechamel = List.mem "--no-bechamel" args in
  let ids = List.filter (fun a -> a <> "--no-bechamel") args in
  run_experiments ids;
  if not skip_bechamel then run_bechamel ();
  Format.printf "@.done.@."
