(* The benchmark harness.

   Part 1 regenerates every experiment table of EXPERIMENTS.md (the
   paper's evaluation, reconstructed — see DESIGN.md §4): run with no
   arguments to get all of them, or pass experiment ids. Seed batches
   inside the experiments fan out on the execution pool (DESIGN.md §9);
   [--jobs N] sizes it (default: autodetect). Tables listed with
   [--compare ID] (default: T1) are additionally regenerated at
   [--jobs 1] to measure the pool's wall-clock speedup.

   Part 2 runs the pool-vs-sequential macro-benchmark: one fixed ES
   batch executed at jobs ∈ {1,2,4,8}, reporting ns per run and the
   exec.* pool metrics. It also times one fixed model-checking run
   (states/sec throughput).

   Part 3 runs Bechamel micro-benchmarks over the hot paths (history
   interning, counter-table merging, one compute step of each algorithm)
   and whole-run macro-benchmarks (one per experiment family), reporting
   nanoseconds per run. Pass [--no-bechamel] to skip it.

   Part 4 runs the multi-shot saturation sweep (the T16 configuration
   at a fixed rate series) and persists one anon-bench/3 [load] row per
   rate: achieved throughput and decide-latency percentiles, both in
   rounds — deterministic, so they diff cleanly across machines.

   Everything measured is persisted as machine-readable JSON
   ([--out FILE], default BENCH_PR9.json; schema anon-bench/3 with the
   git revision, [--label] and --jobs recorded) so bench runs leave a
   comparable baseline behind. *)

open Bechamel
open Toolkit
module K = Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module H = Anon_harness
module O = Anon_obs
module X = Anon_exec

(* --- part 1: the experiment tables ---------------------------------------- *)

type exp_timing = {
  exp_id : string;
  parallel_s : float;
  sequential_s : float option;  (* only for --compare ids *)
}

let time_table (e : H.Registry.experiment) ~jobs ~render =
  X.Pool.default_jobs := jobs;
  let t0 = O.Clock.now_ns () in
  let table = e.build () in
  let elapsed = O.Clock.ns_to_s (O.Clock.since_ns t0) in
  if render then H.Table.render Format.std_formatter table;
  elapsed

let run_experiments ids ~jobs ~compare_ids =
  let experiments =
    match ids with
    | [] -> H.Registry.all
    | ids ->
      List.map
        (fun id ->
          match H.Registry.find id with
          | Some e -> e
          | None -> failwith ("unknown experiment id: " ^ id))
        ids
  in
  Format.printf
    "=== Experiment tables (paper claims, reconstructed evaluation; jobs=%d) ===@."
    jobs;
  List.map
    (fun (e : H.Registry.experiment) ->
      let parallel_s = time_table e ~jobs ~render:true in
      Format.printf "   [%.2fs]@." parallel_s;
      let sequential_s =
        if jobs > 1 && List.exists (fun id -> String.lowercase_ascii id = String.lowercase_ascii e.id) compare_ids
        then begin
          let s = time_table e ~jobs:1 ~render:false in
          Format.printf "   [%s sequential: %.2fs — pool speedup %.2fx]@." e.id s
            (s /. Float.max 1e-9 parallel_s);
          if Domain.recommended_domain_count () = 1 then
            Format.printf
              "   [host-dependent: this host reports 1 core, so pool speedups \
               here say nothing about multicore hosts]@.";
          Some s
        end
        else None
      in
      X.Pool.default_jobs := jobs;
      { exp_id = e.id; parallel_s; sequential_s })
    experiments

(* --- part 2: pool vs sequential macro-benchmark ---------------------------- *)

(* A fixed, non-trivial batch: 32 seeded ES runs (n=8, blocking gst=10,
   horizon 100). Identical output at every jobs value — only wall time
   moves. *)
let pool_batch ~jobs () =
  let module B = H.Runs.Of (C.Es_consensus) in
  B.batch ~horizon:100 ~jobs
    ~inputs:(fun rng -> H.Runs.distinct_inputs ~n:8 rng)
    ~crash:(fun _ -> G.Crash.none ~n:8)
    ~adversary:(fun _ -> G.Adversary.es_blocking ~gst:10 ())
    ~seeds:(H.Runs.seeds 32) ()

type pool_timing = { pool_jobs : int; ns_per_run : float; pool_speedup : float }

let run_pool_bench () =
  Format.printf "@.=== Pool vs sequential (32-seed ES batch, best of 3) ===@.";
  let runs = 32 in
  let measure jobs =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = O.Clock.now_ns () in
      ignore (pool_batch ~jobs () : H.Runs.batch);
      let ns = Int64.to_float (O.Clock.since_ns t0) in
      if ns < !best then best := ns
    done;
    !best /. float_of_int runs
  in
  let baseline = measure 1 in
  List.map
    (fun jobs ->
      let ns = if jobs = 1 then baseline else measure jobs in
      let speedup = baseline /. ns in
      Format.printf "  jobs=%d %10.2f µs/run  speedup %.2fx@." jobs (ns /. 1e3)
        speedup;
      { pool_jobs = jobs; ns_per_run = ns; pool_speedup = speedup })
    [ 1; 2; 4; 8 ]

(* --- part 2b: model-checker throughput -------------------------------------- *)

(* A fixed closing configuration (ES, n=3, depth 6, crash budget 1: 19
   schedules, 3145 raw states); states/sec is raw states over wall time,
   best of 3. *)
type mc_timing = { mc_states : int; mc_s : float; mc_states_per_sec : float }

let run_mc_bench () =
  let module Mc = Anon_mc.Mc in
  let config =
    {
      Mc.algo = Mc.Es;
      n = 3;
      env = G.Env.Es { gst = 2 };
      rounds = 6;
      churn = 0;
      crashes = 1;
      max_delay = 1;
      search = Mc.Bfs;
      armed = false;
      jobs = Some 1;
      seed = 42;
      ops_per_client = 1;
    }
  in
  let states = ref 0 in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = O.Clock.now_ns () in
    let report = Mc.run config in
    let s = O.Clock.ns_to_s (O.Clock.since_ns t0) in
    states := report.Mc.stats.Anon_mc.Explore.raw_states;
    if s < !best then best := s
  done;
  let per_sec = float_of_int !states /. Float.max 1e-9 !best in
  Format.printf
    "@.=== Model checker (ES n=3 depth 6, crash budget 1; best of 3) ===@.";
  Format.printf "  %d states in %.3fs  (%.0f states/sec)@." !states !best per_sec;
  { mc_states = !states; mc_s = !best; mc_states_per_sec = per_sec }

(* The exec.* metrics surface, demonstrated on one parallel fan-out. *)
let show_exec_metrics ~jobs =
  let registry = O.Metrics.create () in
  let recorder = O.Recorder.create ~metrics:registry () in
  let module B = H.Runs.Of (C.Es_consensus) in
  ignore
    (X.Pool.map ~jobs ~recorder
       (fun seed ->
         B.batch ~horizon:100 ~jobs:1
           ~inputs:(fun rng -> H.Runs.distinct_inputs ~n:8 rng)
           ~crash:(fun _ -> G.Crash.none ~n:8)
           ~adversary:(fun _ -> G.Adversary.es_blocking ~gst:10 ())
           ~seeds:[ seed ] ())
       (H.Runs.seeds 16)
      : H.Runs.batch list);
  Format.printf "@.=== exec.* pool metrics (16 tasks, jobs=%d) ===@." jobs;
  O.Metrics.render Format.std_formatter (O.Metrics.snapshot registry)

(* --- part 2: bechamel ------------------------------------------------------- *)

(* Micro: kernel hot paths. *)

let bench_history_snoc =
  Test.make ~name:"history: snoc x100"
    (Staged.stage (fun () ->
         let rec go h i = if i = 0 then h else go (K.History.snoc h (i mod 7)) (i - 1) in
         go K.History.empty 100))

let bench_history_prefix_walk =
  let h = K.History.of_list (List.init 200 (fun i -> i mod 5)) in
  let t =
    K.History.fold_prefixes
      (fun p acc -> K.Counter_table.set acc p (K.History.length p + 1))
      h K.Counter_table.empty
  in
  Test.make ~name:"counter: bump over 200-prefix history"
    (Staged.stage (fun () -> K.Counter_table.bump_prefix_max t h))

let bench_counter_min_merge =
  let mk seed =
    let rng = K.Rng.make seed in
    List.fold_left
      (fun t i ->
        K.Counter_table.set t
          (K.History.of_list [ i mod 8; K.Rng.int rng 4 ])
          (1 + K.Rng.int rng 50))
      K.Counter_table.empty (List.init 30 Fun.id)
  in
  let tables = List.map mk [ 1; 2; 3; 4 ] in
  Test.make ~name:"counter: min-merge 4 tables x30 entries"
    (Staged.stage (fun () -> K.Counter_table.min_merge tables))

let inbox_of sets = { G.Intf.current = sets; fresh = [] }

let bench_es_compute =
  let sets = List.init 16 (fun i -> K.Value.set_of_list [ i; i + 1; 40 ]) in
  Test.make ~name:"es: one compute, 16-message inbox"
    (Staged.stage (fun () ->
         let st, _ = C.Es_consensus.initialize 3 in
         C.Es_consensus.compute st ~round:2 ~inbox:(inbox_of sets)))

let bench_ess_compute =
  let mk i =
    {
      C.Ess_consensus.m_proposed = K.Pvalue.Set.of_list [ K.Pvalue.v i; K.Pvalue.bot ];
      m_history = K.History.of_list (List.init 20 (fun j -> (i + j) mod 5));
      m_counters =
        K.Counter_table.set K.Counter_table.empty (K.History.of_list [ i mod 5 ]) i;
    }
  in
  let msgs = List.init 16 mk in
  Test.make ~name:"ess: one compute, 16-message inbox"
    (Staged.stage (fun () ->
         let st, _ = C.Ess_consensus.initialize 3 in
         C.Ess_consensus.compute st ~round:2 ~inbox:(inbox_of msgs)))

(* Macro: one whole run per experiment family. *)

let bench_es_run =
  Test.make ~name:"run: ES consensus, n=8, blocking gst=10"
    (Staged.stage (fun () ->
         let module R = G.Runner.Make (C.Es_consensus) in
         let config =
           G.Runner.default_config ~horizon:100
             ~inputs:(List.init 8 (fun i -> i + 1))
             ~crash:(G.Crash.none ~n:8)
             (G.Adversary.es_blocking ~gst:10 ())
         in
         R.run config))

let bench_ess_run =
  Test.make ~name:"run: ESS consensus, n=8, blocking gst=10"
    (Staged.stage (fun () ->
         let module R = G.Runner.Make (C.Ess_consensus) in
         let config =
           G.Runner.default_config ~horizon:100
             ~inputs:(List.init 8 (fun i -> i + 1))
             ~crash:(G.Crash.none ~n:8)
             (G.Adversary.ess_blocking ~gst:10 ())
         in
         R.run config))

(* Instrumentation overhead: the same ES run with observability off, with
   a live metrics registry, and with metrics + an in-memory event sink.
   The "off" variant still passes ~recorder (the default [off] handle), so
   the comparison isolates the cost of live instruments, not of the
   optional argument. *)

let es_obs_config =
  G.Runner.default_config ~horizon:100
    ~inputs:(List.init 8 (fun i -> i + 1))
    ~crash:(G.Crash.none ~n:8)
    (G.Adversary.es_blocking ~gst:10 ())

let bench_es_run_obs_off =
  Test.make ~name:"obs: ES run, recorder off"
    (Staged.stage (fun () ->
         let module R = G.Runner.Make (C.Es_consensus) in
         R.run ~recorder:O.Recorder.off es_obs_config))

let bench_es_run_obs_metrics =
  Test.make ~name:"obs: ES run, metrics on"
    (Staged.stage (fun () ->
         let module R = G.Runner.Make (C.Es_consensus) in
         let recorder = O.Recorder.create ~metrics:(O.Metrics.create ()) () in
         R.run ~recorder es_obs_config))

let bench_es_run_obs_events =
  Test.make ~name:"obs: ES run, metrics + memory sink"
    (Staged.stage (fun () ->
         let module R = G.Runner.Make (C.Es_consensus) in
         let recorder =
           O.Recorder.create ~metrics:(O.Metrics.create ())
             ~sink:(O.Sink.memory ~capacity:8192) ()
         in
         R.run ~recorder es_obs_config))

let bench_weakset_run =
  Test.make ~name:"run: weak-set in MS, n=8, 3 ops/client"
    (Staged.stage (fun () ->
         let module W = G.Service_runner.Make (C.Weak_set_ms) in
         let rng = K.Rng.make 4 in
         let workload =
           G.Service_runner.random_workload ~n:8 ~ops_per_client:3 ~max_start:20
             ~value_range:10_000 rng
         in
         W.run
           { G.Service_runner.n = 8;
             crash = G.Crash.none ~n:8;
             churn = G.Churn.none ~n:8;
             adversary = G.Adversary.ms ();
             horizon = 80;
             seed = 4 }
           ~workload))

let bench_emulation_run =
  Test.make ~name:"run: MS emulation hosting ES, n=4, 40 rounds"
    (Staged.stage (fun () ->
         let module E = C.Ms_emulation.Make (C.Es_consensus) in
         E.run
           (C.Ms_emulation.default_config ~inputs:[ 3; 1; 4; 1 ]
              ~crash:(G.Crash.none ~n:4) ~horizon_rounds:40 ~seed:7 ())))

let bench_sigma_attack =
  Test.make ~name:"run: sigma two-run attack, 4 candidates"
    (Staged.stage (fun () ->
         List.map
           (fun (module Cand : C.Sigma.CANDIDATE) ->
             C.Sigma.two_run_attack (module Cand) ~horizon:200)
           C.Sigma.builtin_candidates))

let bench_skew_run =
  Test.make ~name:"run: skewed ES, n=4, random pace/delay"
    (Staged.stage (fun () ->
         let module S = G.Skew_runner.Make (C.Es_consensus) in
         S.run
           (G.Skew_runner.default_config ~seed:5 ~horizon_ticks:500 ~max_rounds:60
              ~pace:(G.Skew_runner.uniform_pace ~max:3)
              ~delay:(G.Skew_runner.uniform_delay ~max:3)
              ~inputs:[ 1; 2; 3; 4 ]
              ~crash:(G.Crash.none ~n:4) ())))

let bench_checker =
  let out =
    let module R = G.Runner.Make (C.Es_consensus) in
    R.run
      (G.Runner.default_config ~horizon:100
         ~inputs:(List.init 8 (fun i -> i + 1))
         ~crash:(G.Crash.none ~n:8)
         (G.Adversary.es_blocking ~gst:30 ()))
  in
  Test.make ~name:"check: env + consensus over a 32-round trace"
    (Staged.stage (fun () ->
         (G.Checker.check_env out.trace, G.Checker.check_consensus out.trace)))

let all_benches =
  Test.make_grouped ~name:"anon-consensus"
    [
      bench_history_snoc;
      bench_history_prefix_walk;
      bench_counter_min_merge;
      bench_es_compute;
      bench_ess_compute;
      bench_es_run;
      bench_ess_run;
      bench_es_run_obs_off;
      bench_es_run_obs_metrics;
      bench_es_run_obs_events;
      bench_weakset_run;
      bench_emulation_run;
      bench_skew_run;
      bench_sigma_attack;
      bench_checker;
    ]

(* Returns the (name, ns) rows so the JSON baseline can persist them. *)
let run_bechamel () =
  Format.printf "@.=== Bechamel micro/macro benchmarks (ns per run) ===@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances all_benches in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ x ] -> x
        | Some _ | None -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if ns < 1_000.0 then Format.printf "  %-50s %10.1f ns@." name ns
      else if ns < 1_000_000.0 then Format.printf "  %-50s %10.2f µs@." name (ns /. 1e3)
      else Format.printf "  %-50s %10.2f ms@." name (ns /. 1e6))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows);
  (* Instrumentation overhead relative to the recorder-off baseline. *)
  let find needle =
    List.find_map
      (fun (name, ns) ->
        if
          String.length name >= String.length needle
          && String.sub name (String.length name - String.length needle)
               (String.length needle)
             = needle
        then Some ns
        else None)
      !rows
  in
  (match find "recorder off" with
  | None -> ()
  | Some base when base <= 0.0 || Float.is_nan base -> ()
  | Some base ->
    let report label needle =
      match find needle with
      | Some ns when not (Float.is_nan ns) ->
        Format.printf "  instrumentation overhead (%s): %+.1f%%@." label
          (100.0 *. ((ns /. base) -. 1.0))
      | Some _ | None -> ()
    in
    report "metrics" "metrics on";
    report "metrics + events" "memory sink");
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

(* --- part 4: the multi-shot saturation sweep -------------------------------- *)

(* The T16 configuration at a fixed rate series. The rows are
   deterministic (rounds-based throughput and latency, no wall clock), so
   unlike the timing rows they diff cleanly across machines. *)
let run_load_bench () =
  Format.printf "@.=== Multi-shot saturation sweep (T16 configuration) ===@.";
  let reports =
    H.Exp_load.saturation_reports ~rates:[ 1.; 2.; 4.; 8.; 16.; 32. ] ()
  in
  List.iter
    (fun (rate, (r : Anon_rsm.Load.report)) ->
      Format.printf
        "  rate %5.1f: throughput %.3f prop/round, p50 %.1f p99 %.1f p99.9 %.1f \
         rounds%s@."
        rate r.throughput r.p50_rounds r.p99_rounds r.p999_rounds
        (if r.agreement_ok && r.validity_ok then "" else "  UNSAFE"))
    reports;
  List.map (fun (_, r) -> Anon_rsm.Load.row_json r) reports

let baseline_json ~label ~jobs ~exp_timings ~pool_timings ~mc_timing ~micro
    ~load_rows =
  let open O.Json in
  let experiment_row (t : exp_timing) =
    Obj
      (("id", String t.exp_id)
      :: ("parallel_s", Float t.parallel_s)
      ::
      (match t.sequential_s with
      | None -> []
      | Some s ->
        [
          ("sequential_s", Float s);
          ("speedup", Float (s /. Float.max 1e-9 t.parallel_s));
        ]))
  in
  let pool_row (t : pool_timing) =
    Obj
      [
        ("jobs", Int t.pool_jobs);
        ("ns_per_run", Float t.ns_per_run);
        ("speedup", Float t.pool_speedup);
      ]
  in
  Obj
    [
      ("schema", String "anon-bench/3");
      ("label", String label);
      ("git_revision", String (H.Bench_diff.git_revision ()));
      ("cores", Int (Domain.recommended_domain_count ()));
      ("jobs", Int jobs);
      ("experiments", List (List.map experiment_row exp_timings));
      ("pool", List (List.map pool_row pool_timings));
      ( "mc",
        Obj
          [
            ("states", Int mc_timing.mc_states);
            ("seconds", Float mc_timing.mc_s);
            ("states_per_sec", Float mc_timing.mc_states_per_sec);
          ] );
      ( "micro",
        List
          (List.map
             (fun (name, ns) ->
               Obj [ ("name", String name); ("ns", Float ns) ])
             micro) );
      ("load", List load_rows);
    ]

let write_baseline ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (O.Json.to_string json);
      output_char oc '\n');
  Format.printf "@.baseline written to %s@." path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse args acc =
    let ids, jobs, out, label, bechamel, compare_ids = acc in
    match args with
    | [] -> (List.rev ids, jobs, out, label, bechamel, List.rev compare_ids)
    | "--no-bechamel" :: rest ->
      parse rest (ids, jobs, out, label, false, compare_ids)
    | "--jobs" :: n :: rest ->
      parse rest (ids, int_of_string n, out, label, bechamel, compare_ids)
    | "--out" :: f :: rest -> parse rest (ids, jobs, f, label, bechamel, compare_ids)
    | "--label" :: l :: rest ->
      parse rest (ids, jobs, out, l, bechamel, compare_ids)
    | "--compare" :: id :: rest ->
      parse rest (ids, jobs, out, label, bechamel, id :: compare_ids)
    | a :: rest -> parse rest (a :: ids, jobs, out, label, bechamel, compare_ids)
  in
  let ids, jobs, out, label, bechamel, compare_ids =
    parse args ([], 0, "BENCH_PR9.json", "PR9", true, [])
  in
  let jobs = X.Pool.resolve ~jobs () in
  let compare_ids = match compare_ids with [] -> [ "T1" ] | ids -> ids in
  X.Pool.default_jobs := jobs;
  let exp_timings = run_experiments ids ~jobs ~compare_ids in
  let pool_timings = run_pool_bench () in
  let mc_timing = run_mc_bench () in
  show_exec_metrics ~jobs:(max 2 jobs);
  let micro = if bechamel then run_bechamel () else [] in
  let load_rows = run_load_bench () in
  write_baseline ~path:out
    (baseline_json ~label ~jobs ~exp_timings ~pool_timings ~mc_timing ~micro
       ~load_rows);
  Format.printf "@.done.@."
