(* Quickstart: five anonymous processes agree on a value in the eventually
   synchronous (ES) environment.

   Run with: dune exec examples/quickstart.exe *)

module G = Anon_giraf
module C = Anon_consensus

(* The ES consensus algorithm (paper Alg. 2) plugged into the GIRAF
   runner. *)
module Runner = G.Runner.Make (C.Es_consensus)

let () =
  (* Five processes propose 10, 20, 30, 40, 50. Nobody knows n = 5 and no
     process has an identity — the ints below are simulator-side handles
     only. *)
  let inputs = [ 10; 20; 30; 40; 50 ] in

  (* The network stabilizes (all links timely) from round 8 on; before
     that, only a per-round moving source is guaranteed. One process may
     crash at round 5. *)
  let adversary = G.Adversary.es ~gst:8 ~noise:0.2 () in
  let crash =
    G.Crash.of_events ~n:5
      [ { G.Crash.pid = 2; round = 5; broadcast = G.Crash.Broadcast_subset } ]
  in

  let config = G.Runner.default_config ~inputs ~crash adversary in
  let outcome = Runner.run config in

  List.iter
    (fun (pid, round, v) -> Format.printf "process %d decided %d in round %d@." pid v round)
    outcome.decisions;
  Format.printf "every correct process decided: %b@." outcome.all_correct_decided;

  (* The trace checker independently verifies the run: the adversary kept
     the ES promise and the decisions satisfy consensus. *)
  let violations =
    G.Checker.check_env outcome.trace @ G.Checker.check_consensus outcome.trace
  in
  match violations with
  | [] -> Format.printf "checker: environment and consensus properties hold@."
  | vs -> List.iter (fun v -> Format.printf "checker: %a@." G.Checker.pp_violation v) vs
