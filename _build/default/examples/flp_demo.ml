(* The FLP corollary, live: the moving-source environment supports
   registers (the weak-set, Thms. 3-4) but cannot support consensus —
   otherwise Alg. 5 + Props. 2-3 would contradict Fischer-Lynch-Paterson.

   This demo runs Alg. 2 under a never-stabilizing blocking schedule: the
   source alternates between two champions whose values never reconcile.
   Watch the two camps' estimates stay split forever while every round
   still has a legitimate source (the checker agrees the schedule is a
   valid MS schedule), and compare with the same system once a GST exists.

   Run with: dune exec examples/flp_demo.exe *)

module G = Anon_giraf
module C = Anon_consensus
module Runner = G.Runner.Make (C.Es_consensus)

let run ~name ~gst ~horizon =
  let n = 4 in
  let vals : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let observe ~pid ~round st =
    Hashtbl.replace vals (pid, round) (C.Es_consensus.current_val st)
  in
  let config =
    G.Runner.default_config ~horizon ~seed:1
      ~inputs:(List.init n (fun i -> i + 1))
      ~crash:(G.Crash.none ~n)
      (G.Adversary.es_blocking ~gst ())
  in
  let outcome = Runner.run ~observe config in
  Format.printf "@.--- %s ---@." name;
  List.iter
    (fun round ->
      let estimates =
        List.map
          (fun pid ->
            match Hashtbl.find_opt vals (pid, round) with
            | Some v -> string_of_int v
            | None -> "·")
          (List.init n Fun.id)
      in
      Format.printf "round %3d: estimates [%s]@." round (String.concat " " estimates))
    [ 2; 10; 50; 100; horizon - 2 ];
  (match outcome.decisions with
  | [] -> Format.printf "no decision after %d rounds@." outcome.rounds_executed
  | ds ->
    List.iter (fun (p, r, v) -> Format.printf "p%d decided %d in round %d@." p v r) ds);
  let env = G.Checker.check_env outcome.trace in
  let cons = G.Checker.check_consensus ~expect_termination:false outcome.trace in
  Format.printf "schedule admissible: %b; safety intact: %b@." (env = []) (cons = [])

let () =
  Format.printf
    "MS gives you registers but not consensus (Thm. 4 + FLP).@.\
     Two champions alternate as the per-round source; their camps' values@.\
     never reconcile unless the network eventually stabilizes.@.";
  run ~name:"pure MS (never stabilizes)" ~gst:max_int ~horizon:150;
  run ~name:"same system, GST at round 60" ~gst:60 ~horizon:150
