(* Sensor fusion: the paper's motivating scenario. A field of anonymous,
   indistinguishable wireless sensors must agree on one alarm threshold.
   Sensors have no ids, don't know how many of them were deployed, and the
   radio only guarantees that *some* sensor is heard by everybody each
   round — eventually the same one (ESS): think of one sensor ending up
   with the best antenna position.

   Run with: dune exec examples/sensor_fusion.exe *)

module K = Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module Runner = G.Runner.Make (C.Ess_consensus)

let () =
  let rng = K.Rng.make 2024 in
  (* Twelve sensors, each proposing its locally measured threshold
     (°C × 10). Three run out of battery mid-run. *)
  let n = 12 in
  let readings = List.init n (fun _ -> 180 + K.Rng.int rng 40) in
  Format.printf "local threshold readings: [%s]@."
    (String.concat "; " (List.map string_of_int readings));

  let crash = G.Crash.random ~n ~failures:3 ~max_round:20 rng in
  Format.printf "battery failures: %a@." G.Crash.pp crash;

  (* Radio model: chaotic until round 15 (moving source only), then one
     sensor's broadcasts become reliably timely. Other links stay lossy
     (30%% of them happen to be timely each round). *)
  let adversary = G.Adversary.ess ~gst:15 ~noise:0.3 () in

  let config =
    G.Runner.default_config ~inputs:readings ~crash ~seed:2024 adversary
  in
  let outcome = Runner.run config in

  (match outcome.decisions with
  | (_, _, v) :: _ -> Format.printf "agreed alarm threshold: %d (%.1f°C)@." v (float_of_int v /. 10.)
  | [] -> Format.printf "no decision within the horizon@.");
  List.iter
    (fun (pid, round, v) ->
      Format.printf "  sensor %2d committed to %d in round %d@." pid v round)
    outcome.decisions;

  let violations =
    G.Checker.check_env outcome.trace @ G.Checker.check_consensus outcome.trace
  in
  if violations = [] then
    Format.printf "checker: agreement, validity, termination, and the ESS promise all hold@."
  else
    List.iter (fun v -> Format.printf "checker: %a@." G.Checker.pp_violation v) violations
