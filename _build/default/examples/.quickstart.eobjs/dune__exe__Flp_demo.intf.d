examples/flp_demo.mli:
