examples/pseudo_leader_demo.ml: Anon_consensus Anon_giraf Anon_kernel Format Hashtbl List Option String
