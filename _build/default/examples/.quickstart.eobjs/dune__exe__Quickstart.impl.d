examples/quickstart.ml: Anon_consensus Anon_giraf Format List
