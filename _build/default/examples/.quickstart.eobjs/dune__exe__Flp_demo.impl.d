examples/flp_demo.ml: Anon_consensus Anon_giraf Format Fun Hashtbl List String
