examples/blackboard.ml: Anon_consensus Anon_giraf Anon_kernel Format List
