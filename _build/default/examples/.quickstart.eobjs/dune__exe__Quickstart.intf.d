examples/quickstart.mli:
