examples/pseudo_leader_demo.mli:
