examples/blackboard.mli:
