(* Pseudo leader election: watch the novel mechanism of Alg. 3 at work.

   True leader election is impossible without identities, so processes
   identify each other by the history of their proposal values and count
   how often each history keeps growing. This demo prints, per round, who
   currently considers itself a leader — before the source stabilizes the
   set flaps; afterwards it freezes on the eventual source's history.

   Run with: dune exec examples/pseudo_leader_demo.exe *)

module G = Anon_giraf
module C = Anon_consensus
module Runner = G.Runner.Make (C.Ess_consensus)

let () =
  let n = 6 in
  let gst = 14 in
  let inputs = List.init n (fun i -> i + 1) in

  (* Record, per round, the self-declared leaders and their history
     lengths. *)
  let leaders : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
  let observe ~pid ~round st =
    if C.Ess_consensus.is_leader st then
      Hashtbl.replace leaders round
        ((pid, Anon_kernel.History.length (C.Ess_consensus.history st))
        :: Option.value ~default:[] (Hashtbl.find_opt leaders round))
  in

  let config =
    G.Runner.default_config ~inputs ~crash:(G.Crash.none ~n) ~seed:5
      (G.Adversary.ess_blocking ~gst ())
  in
  let outcome = Runner.run ~observe config in

  Format.printf "source stabilizes at round %d@." gst;
  for round = 1 to outcome.rounds_executed - 1 do
    let ls =
      Option.value ~default:[] (Hashtbl.find_opt leaders round)
      |> List.sort compare
    in
    Format.printf "round %2d: leaders = {%s}%s@." round
      (String.concat ", " (List.map (fun (p, _) -> "p" ^ string_of_int p) ls))
      (if round = gst then "   <- stabilization" else "")
  done;
  List.iter
    (fun (pid, round, v) -> Format.printf "p%d decided %d in round %d@." pid v round)
    outcome.decisions
