(* Tests for Algorithm 3 (ESS consensus): unit compute semantics including
   the counter machinery, pseudo-leader dynamics, liveness tracking the
   source stabilization, ablation behaviour, and randomized safety. *)

open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module Ess = C.Ess_consensus
module R = G.Runner.Make (Ess)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let msg ?(proposed = []) ?(history = []) ?(counters = []) () =
  {
    Ess.m_proposed = Pvalue.Set.of_list proposed;
    m_history = History.of_list history;
    m_counters =
      List.fold_left
        (fun t (h, c) -> Counter_table.set t (History.of_list h) c)
        Counter_table.empty counters;
  }

let inbox current = { G.Intf.current; fresh = [] }

(* --- unit-level compute -------------------------------------------------------- *)

let test_initialize () =
  let st, m = Ess.initialize 7 in
  check_bool "initial leader (all-zero table)" true (Ess.is_leader st);
  Alcotest.(check (list int)) "history starts as ⟨VAL⟩" [ 7 ]
    (History.to_list (Ess.history st));
  check_bool "round-1 proposal empty" true (Pvalue.Set.is_empty m.Ess.m_proposed)

let test_compute_history_grows () =
  let st, _ = Ess.initialize 7 in
  let st, m, _ = Ess.compute st ~round:1 ~inbox:(inbox [ msg ~history:[ 7 ] () ]) in
  Alcotest.(check (list int)) "appended VAL" [ 7; 7 ] (History.to_list (Ess.history st));
  Alcotest.(check (list int)) "message carries the new history" [ 7; 7 ]
    (History.to_list m.Ess.m_history)

let test_compute_counter_bump () =
  let st, _ = Ess.initialize 7 in
  let other = msg ~history:[ 3 ] () in
  let own = msg ~history:[ 7 ] () in
  let st, _, _ = Ess.compute st ~round:1 ~inbox:(inbox [ own; other ]) in
  let c = Ess.counters st in
  check_int "own history bumped" 1 (Counter_table.get c (History.of_list [ 7 ]));
  check_int "other history bumped" 1 (Counter_table.get c (History.of_list [ 3 ]))

let test_compute_min_merge_drags_down () =
  let st, _ = Ess.initialize 7 in
  (* One message knows ⟨3⟩ with counter 5, the other doesn't know it at
     all: the min-merge drops it to 0 before the bump re-adds 1. *)
  let rich = msg ~history:[ 7 ] ~counters:[ ([ 3 ], 5) ] () in
  let poor = msg ~history:[ 3 ] () in
  let st, _, _ = Ess.compute st ~round:1 ~inbox:(inbox [ rich; poor ]) in
  check_int "min-merged then bumped" 1
    (Counter_table.get (Ess.counters st) (History.of_list [ 3 ]))

let test_compute_adopts_max_written () =
  let st, _ = Ess.initialize 1 in
  let m1 = msg ~proposed:[ Pvalue.v 5; Pvalue.v 9; Pvalue.bot ] ~history:[ 5 ] () in
  let st, _, _ = Ess.compute st ~round:1 ~inbox:(inbox [ m1 ]) in
  let st, _, _ = Ess.compute st ~round:2 ~inbox:(inbox [ m1 ]) in
  check_int "VAL := max(WRITTEN minus bot)" 9 (Ess.current_val st)

let test_non_leader_proposes_bot () =
  let st, _ = Ess.initialize 1 in
  (* Another history dominates the counter table and PROPOSED contains a
     conflicting value, so the process is neither leader nor converged. *)
  let dominant =
    msg ~proposed:[ Pvalue.v 9; Pvalue.v 5 ] ~history:[ 3; 3 ] ~counters:[ ([ 3 ], 8); ([ 3; 3 ], 9) ] ()
  in
  let st, m, _ = Ess.compute st ~round:1 ~inbox:(inbox [ dominant ]) in
  let st, m2, _ = Ess.compute st ~round:2 ~inbox:(inbox [ dominant; m ]) in
  check_bool "not a leader" false (Ess.is_leader st);
  check_bool "proposes bot" true
    (Pvalue.Set.equal m2.Ess.m_proposed (Pvalue.Set.singleton Pvalue.bot))

let test_decide_guard () =
  let st, _ = Ess.initialize 4 in
  let only4 = msg ~proposed:[ Pvalue.v 4 ] ~history:[ 4 ] () in
  let st, _, d1 = Ess.compute st ~round:1 ~inbox:(inbox [ only4 ]) in
  let _, _, d2 =
    Ess.compute st ~round:2
      ~inbox:(inbox [ msg ~proposed:[ Pvalue.v 4; Pvalue.bot ] ~history:[ 4; 4 ] () ])
  in
  check_bool "odd round no decision" true (d1 = None);
  Alcotest.(check (option int)) "decides despite bot in PROPOSED" (Some 4) d2

(* --- replay and liveness --------------------------------------------------------- *)

let ordered n = List.init n (fun i -> i + 1)

let test_sync_replay () =
  let config =
    G.Runner.default_config ~horizon:30 ~inputs:[ 3; 1; 4; 2 ]
      ~crash:(G.Crash.none ~n:4) (G.Adversary.sync ())
  in
  let out = R.run config in
  check_bool "all decided" true out.all_correct_decided;
  check_int "no violations" 0
    (List.length (G.Checker.check_consensus out.trace))

let test_blocking_tracks_stabilization () =
  List.iter
    (fun gst ->
      let config =
        G.Runner.default_config ~horizon:400 ~inputs:(ordered 6)
          ~crash:(G.Crash.none ~n:6)
          (G.Adversary.ess_blocking ~gst ())
      in
      let out = R.run config in
      match G.Runner.decision_round out with
      | None -> Alcotest.fail "must decide after stabilization"
      | Some r ->
        check_bool "after stabilization" true (r >= gst);
        check_bool "within stabilization + 8" true (r <= gst + 8))
    [ 6; 20; 50 ]

let test_leader_set_stabilizes () =
  let n = 6 in
  let gst = 12 in
  let log : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let observe ~pid ~round st =
    if Ess.is_leader st then
      Hashtbl.replace log round
        (pid :: Option.value ~default:[] (Hashtbl.find_opt log round))
  in
  let config =
    G.Runner.default_config ~horizon:400 ~seed:5 ~inputs:(ordered n)
      ~crash:(G.Crash.none ~n)
      (G.Adversary.ess_blocking ~gst ())
  in
  let out = R.run ~observe config in
  check_bool "decided" true out.all_correct_decided;
  (* At the stabilization round the pinned source (p0) must be a leader. *)
  (match Hashtbl.find_opt log gst with
  | Some leaders -> check_bool "p0 leads at gst" true (List.mem 0 leaders)
  | None -> Alcotest.fail "no leader at gst");
  (* The final leader set is a strict subset of the processes. *)
  let last = out.rounds_executed - 1 in
  let final = Option.value ~default:[] (Hashtbl.find_opt log last) in
  check_bool "leaders are few" true (List.length final <= 2)

let test_validity_invariant () =
  (* VAL is always one of the inputs, at every process, every round. *)
  let ok = ref true in
  let inputs = [ 10; 20; 30; 40 ] in
  let observe ~pid:_ ~round:_ st =
    if not (List.mem (Ess.current_val st) inputs) then ok := false
  in
  let config =
    G.Runner.default_config ~horizon:100 ~seed:3 ~inputs ~crash:(G.Crash.none ~n:4)
      (G.Adversary.ess ~gst:10 ~noise:0.3 ())
  in
  ignore (R.run ~observe config);
  check_bool "VAL always an input" true !ok

(* --- ablations -------------------------------------------------------------------- *)

module Leaders_only = Ess.Ablation (struct
  let merge = `Min
  let silent_non_leaders = false
  let converged_disjunct = false
end)

let test_leaders_only_stalls () =
  let gst = 10 in
  let run (module A : G.Intf.ALGORITHM) =
    let module Run = G.Runner.Make (A) in
    let config =
      G.Runner.default_config ~horizon:600 ~seed:11 ~inputs:(ordered 6)
        ~crash:(G.Crash.none ~n:6)
        (G.Adversary.ess_blocking ~gst ())
    in
    Run.run config
  in
  let control = run (module Ess) in
  let ablated = run (module Leaders_only) in
  match G.Runner.decision_round control, G.Runner.decision_round ablated with
  | Some c, Some a ->
    check_bool "ablated at least 3x slower" true (a >= 3 * c);
    check_int "ablated still safe" 0
      (List.length
         (G.Checker.check_consensus ~expect_termination:false ablated.trace))
  | _, None ->
    (* Not deciding at all within the horizon is also the predicted
       failure. *)
    check_bool "control decided" true (control.all_correct_decided)
  | None, _ -> Alcotest.fail "control must decide"

let prop_ess_safety =
  QCheck.Test.make ~name:"ESS safety + admissibility over random adversarial runs"
    ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Rng.make seed in
      let n = 2 + Rng.int rng 8 in
      let inputs = Rng.shuffle rng (List.init n (fun i -> i + 1)) in
      let failures = Rng.int rng (n + 1) in
      let crash = G.Crash.random ~n ~failures ~max_round:40 (Rng.split rng) in
      let adversary =
        match Rng.int rng 4 with
        | 0 -> G.Adversary.ess ~gst:(1 + Rng.int rng 40) ~noise:(Rng.float rng 0.5) ()
        | 1 ->
          G.Adversary.ess ~gst:(1 + Rng.int rng 40) ~noise:(Rng.float rng 0.3)
            ~max_delay:(1 + Rng.int rng 40) ()
        | 2 -> G.Adversary.ess_blocking ~gst:(1 + Rng.int rng 60) ()
        | _ -> G.Adversary.sync ()
      in
      let config = G.Runner.default_config ~horizon:250 ~seed ~inputs ~crash adversary in
      let out = R.run config in
      G.Checker.check_consensus ~expect_termination:false out.trace = []
      && G.Checker.check_env out.trace = [])

let test_ess_terminates () =
  List.iter
    (fun seed ->
      let rng = Rng.make seed in
      let n = 3 + Rng.int rng 6 in
      let inputs = Rng.shuffle rng (List.init n (fun i -> i + 1)) in
      let crash =
        G.Crash.random ~n ~failures:(Rng.int rng n) ~max_round:20 (Rng.split rng)
      in
      let config =
        G.Runner.default_config ~horizon:400 ~seed ~inputs ~crash
          (G.Adversary.ess ~gst:(1 + Rng.int rng 30) ~noise:0.2 ())
      in
      let out = R.run config in
      check_bool "terminates under ESS" true out.all_correct_decided)
    (List.init 40 (fun i -> 700 + i))

(* --- state invariants (observed every round of adversarial runs) ------------ *)

let observe_invariants ~seed =
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let rng = Rng.make seed in
  let n = 3 + Rng.int rng 6 in
  let inputs = Rng.shuffle rng (List.init n (fun i -> i + 1)) in
  let observe ~pid ~round st =
    let value = Ess.current_val st in
    let history = Ess.history st in
    let counters = Ess.counters st in
    (* VAL is always an input (validity). *)
    if not (List.mem value inputs) then note "p%d r%d: VAL %d not an input" pid round value;
    (* HISTORY has the initial value plus one appended entry per round —
       except at the deciding compute, which halts before the append. *)
    if
      round >= 1
      && History.length history <> round + 1
      && History.length history <> round
    then
      note "p%d r%d: history length %d (expected %d)" pid round
        (History.length history) (round + 1);
    (* The history is made of proposal values only. *)
    if not (List.for_all (fun v -> List.mem v inputs) (History.to_list history)) then
      note "p%d r%d: history contains a non-input" pid round;
    (* A counter can never exceed the number of rounds elapsed + 1: it
       grows by at most one per round (Lemma 5's argument). *)
    List.iter
      (fun (h, c) ->
        if c > round + 1 then
          note "p%d r%d: counter %d too high for %s" pid round c
            (Format.asprintf "%a" History.pp h))
      (Counter_table.bindings counters);
    (* PROPOSED carries at most the proposal values and bot. *)
    Pvalue.Set.iter
      (fun pv ->
        match Pvalue.to_value pv with
        | None -> ()
        | Some v ->
          if not (List.mem v inputs) then note "p%d r%d: proposes non-input %d" pid round v)
      (Ess.proposed st)
  in
  let crash = G.Crash.random ~n ~failures:(Rng.int rng n) ~max_round:20 (Rng.split rng) in
  let config =
    G.Runner.default_config ~horizon:200 ~seed ~inputs ~crash
      (G.Adversary.ess ~gst:(1 + Rng.int rng 20) ~noise:0.3 ())
  in
  ignore (R.run ~observe config);
  List.rev !violations

let test_state_invariants () =
  List.iter
    (fun seed ->
      Alcotest.(check (list string))
        (Printf.sprintf "invariants (seed %d)" seed)
        [] (observe_invariants ~seed))
    (List.init 25 (fun i -> 840 + i))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "ess-consensus"
    [
      ( "compute",
        [
          Alcotest.test_case "initialize" `Quick test_initialize;
          Alcotest.test_case "history grows" `Quick test_compute_history_grows;
          Alcotest.test_case "counter bump" `Quick test_compute_counter_bump;
          Alcotest.test_case "min-merge drags down" `Quick test_compute_min_merge_drags_down;
          Alcotest.test_case "adopt max written" `Quick test_compute_adopts_max_written;
          Alcotest.test_case "non-leader proposes bot" `Quick test_non_leader_proposes_bot;
          Alcotest.test_case "decide guard tolerates bot" `Quick test_decide_guard;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "sync replay" `Quick test_sync_replay;
          Alcotest.test_case "tracks stabilization" `Quick test_blocking_tracks_stabilization;
          Alcotest.test_case "leader set stabilizes" `Quick test_leader_set_stabilizes;
          Alcotest.test_case "terminates under ESS" `Quick test_ess_terminates;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "validity of VAL" `Quick test_validity_invariant;
          Alcotest.test_case "state invariants" `Quick test_state_invariants;
          qc prop_ess_safety;
        ] );
      ( "ablations", [ Alcotest.test_case "leaders-only stalls" `Quick test_leaders_only_stalls ] );
    ]
