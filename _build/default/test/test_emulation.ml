(* Tests for the abstract weak-set object and the MS emulation (Alg. 5 /
   Thm. 4). *)

module G = Anon_giraf
module C = Anon_consensus
module Obj = C.Weak_set_obj
module Emu = C.Ms_emulation.Make (C.Es_consensus)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Weak_set_obj ------------------------------------------------------------- *)

let test_obj_visibility () =
  let t = Obj.create ~compare:Int.compare () in
  Obj.begin_add t ~now:10 ~latency:5 42;
  Alcotest.(check (list int)) "invisible before completion" [] (Obj.get t ~now:12);
  Alcotest.(check (list int)) "visible at completion" [ 42 ] (Obj.get t ~now:15);
  check_bool "not completed early" false (Obj.completed t ~now:12 42);
  check_bool "completed at 15" true (Obj.completed t ~now:15 42)

let test_obj_visible_early () =
  let t = Obj.create ~compare:Int.compare () in
  Obj.begin_add t ~now:0 ~latency:10 ~visible_after:2 7;
  Alcotest.(check (list int)) "visible before completion" [ 7 ] (Obj.get t ~now:3);
  check_bool "still not completed" false (Obj.completed t ~now:3 7)

let test_obj_dedup () =
  let t = Obj.create ~compare:Int.compare () in
  Obj.begin_add t ~now:0 ~latency:2 1;
  Obj.begin_add t ~now:1 ~latency:2 1;
  Alcotest.(check (list int)) "single entry" [ 1 ] (Obj.all_started t)

let test_obj_latency_validation () =
  let t = Obj.create ~compare:Int.compare () in
  Alcotest.check_raises "latency >= 1"
    (Invalid_argument "Weak_set_obj.begin_add: latency must be >= 1") (fun () ->
      Obj.begin_add t ~now:0 ~latency:0 1);
  Alcotest.check_raises "visible_after range"
    (Invalid_argument "Weak_set_obj.begin_add: visible_after out of range") (fun () ->
      Obj.begin_add t ~now:0 ~latency:2 ~visible_after:3 1)

(* --- Ms_emulation ---------------------------------------------------------------- *)

let emu_config ?(n = 4) ?(seed = 11) ?(latency = C.Ms_emulation.uniform_latency ~max:4)
    ?(horizon_rounds = 60) ?crash () =
  let crash = Option.value ~default:(G.Crash.none ~n) crash in
  C.Ms_emulation.default_config
    ~inputs:(List.init n (fun i -> i + 1))
    ~crash ~horizon_rounds ~seed ~latency ()

let test_emulation_satisfies_ms () =
  List.iter
    (fun seed ->
      let out = Emu.run (emu_config ~seed ()) in
      check_int
        (Printf.sprintf "MS property (seed %d)" seed)
        0
        (List.length (G.Checker.check_env out.trace));
      check_int "hosted safety" 0
        (List.length (G.Checker.check_consensus ~expect_termination:false out.trace)))
    (List.init 20 (fun i -> 100 + i))

let test_emulation_rounds_progress () =
  let out = Emu.run (emu_config ~latency:(C.Ms_emulation.fixed_latency 1) ()) in
  Array.iter (fun r -> check_bool "made progress" true (r >= 1)) out.rounds_completed;
  check_bool "hosted algorithm decided under fast adds" true out.all_correct_decided

let test_emulation_with_crash () =
  let n = 4 in
  let crash =
    G.Crash.of_events ~n [ { G.Crash.pid = 2; round = 5; broadcast = G.Crash.Silent } ]
  in
  let out = Emu.run (emu_config ~n ~crash ()) in
  check_bool "crashed process stops" true (out.rounds_completed.(2) <= 5);
  check_int "MS property still holds" 0 (List.length (G.Checker.check_env out.trace));
  check_int "safety still holds" 0
    (List.length (G.Checker.check_consensus ~expect_termination:false out.trace))

let test_emulation_alternating_latency () =
  (* The 2-process alternating schedule: the source alternates by parity.
     Anonymity makes early identical messages merge, so the hosted
     algorithm may decide — what Thm. 4 promises (and we check) is only
     the MS property of the emulated rounds. *)
  let config =
    C.Ms_emulation.default_config ~inputs:[ 0; 1 ] ~crash:(G.Crash.none ~n:2)
      ~horizon_rounds:100 ~seed:5
      ~latency:(C.Ms_emulation.alternating_latency ~fast:1 ~slow:4)
      ()
  in
  let out = Emu.run config in
  check_int "MS property" 0 (List.length (G.Checker.check_env out.trace));
  check_int "hosted safety" 0
    (List.length (G.Checker.check_consensus ~expect_termination:false out.trace))

let test_emulation_trace_shape () =
  let out = Emu.run (emu_config ()) in
  let rounds = out.trace.rounds in
  check_bool "rounds recorded" true (rounds <> []);
  List.iteri
    (fun i (info : G.Trace.round_info) -> check_int "consecutive rounds" (i + 1) info.round)
    rounds

let () =
  Alcotest.run "ms-emulation"
    [
      ( "weak-set-object",
        [
          Alcotest.test_case "visibility" `Quick test_obj_visibility;
          Alcotest.test_case "visible early" `Quick test_obj_visible_early;
          Alcotest.test_case "dedup" `Quick test_obj_dedup;
          Alcotest.test_case "latency validation" `Quick test_obj_latency_validation;
        ] );
      ( "emulation",
        [
          Alcotest.test_case "satisfies MS (Thm. 4)" `Quick test_emulation_satisfies_ms;
          Alcotest.test_case "rounds progress" `Quick test_emulation_rounds_progress;
          Alcotest.test_case "with crash" `Quick test_emulation_with_crash;
          Alcotest.test_case "alternating latency" `Quick test_emulation_alternating_latency;
          Alcotest.test_case "trace shape" `Quick test_emulation_trace_shape;
        ] );
    ]
