(* Tests for Algorithm 2 (ES consensus): unit-level compute semantics,
   exact replays, liveness tracking GST, MS non-termination, safety under
   randomized adversarial sweeps. *)

open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module R = G.Runner.Make (C.Es_consensus)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vset = Value.set_of_list

let inbox current = { G.Intf.current; fresh = [] }

(* --- unit-level compute ------------------------------------------------------ *)

let test_initialize () =
  let st, m = C.Es_consensus.initialize 7 in
  check_bool "round-1 message is empty" true (Value.Set.is_empty m);
  check_int "VAL" 7 (C.Es_consensus.current_val st);
  check_bool "PROPOSED empty" true (Value.Set.is_empty (C.Es_consensus.proposed st))

let test_compute_written_intersection () =
  let st, _ = C.Es_consensus.initialize 7 in
  let st, _, dec =
    C.Es_consensus.compute st ~round:1 ~inbox:(inbox [ vset [ 1; 2 ]; vset [ 2; 3 ] ])
  in
  check_bool "no decision in odd round" true (dec = None);
  Alcotest.(check (list int)) "WRITTEN = intersection" [ 2 ]
    (Value.Set.elements (C.Es_consensus.written st));
  Alcotest.(check (list int)) "PROPOSED = union" [ 1; 2; 3 ]
    (Value.Set.elements (C.Es_consensus.proposed st))

let test_compute_even_adopts_max_written () =
  let st, _ = C.Es_consensus.initialize 1 in
  let st, _, _ = C.Es_consensus.compute st ~round:1 ~inbox:(inbox [ vset [ 5; 9 ] ]) in
  let st, m, dec =
    C.Es_consensus.compute st ~round:2 ~inbox:(inbox [ vset [ 5; 9 ] ])
  in
  check_bool "no decision yet" true (dec = None);
  check_int "VAL := max(WRITTEN)" 9 (C.Es_consensus.current_val st);
  Alcotest.(check (list int)) "PROPOSED reset to {VAL}" [ 9 ] (Value.Set.elements m)

let test_compute_decides () =
  (* Drive one process with constant {4} inboxes: round 1 sets
     WRITTENOLD = {4}, and the guard fires at the first even round. *)
  let st, _ = C.Es_consensus.initialize 4 in
  let feed st round = C.Es_consensus.compute st ~round ~inbox:(inbox [ vset [ 4 ] ]) in
  let st, _, d1 = feed st 1 in
  let _, _, d2 = feed st 2 in
  check_bool "no decision in the odd round" true (d1 = None);
  Alcotest.(check (option int)) "decides own value at 2" (Some 4) d2

let test_no_decision_while_written_old_differs () =
  let st, _ = C.Es_consensus.initialize 4 in
  let st, _, _ = C.Es_consensus.compute st ~round:1 ~inbox:(inbox [ vset [ 4; 5 ] ]) in
  let _, _, dec = C.Es_consensus.compute st ~round:2 ~inbox:(inbox [ vset [ 4 ] ]) in
  check_bool "guard blocked by WRITTENOLD" true (dec = None)

(* --- exact replay under full synchrony --------------------------------------- *)

let test_sync_replay () =
  (* n = 4, distinct values, fully synchronous: everyone's WRITTEN at round
     4 is the full value set, all adopt the max and decide it at round 6. *)
  let config =
    G.Runner.default_config ~horizon:20 ~inputs:[ 3; 1; 4; 2 ]
      ~crash:(G.Crash.none ~n:4) (G.Adversary.sync ())
  in
  let out = R.run config in
  check_bool "all decided" true out.all_correct_decided;
  List.iter
    (fun (_, round, v) ->
      check_int "decide max input" 4 v;
      check_int "at round 6" 6 round)
    out.decisions

let test_sync_same_inputs_decide_fast () =
  (* All proposing the same value: written immediately, decide at round 4. *)
  let config =
    G.Runner.default_config ~horizon:20 ~inputs:[ 5; 5; 5 ]
      ~crash:(G.Crash.none ~n:3) (G.Adversary.sync ())
  in
  let out = R.run config in
  List.iter (fun (_, round, v) -> check_int "value" 5 v; check_int "round 4" 4 round)
    out.decisions;
  check_int "everyone" 3 (List.length out.decisions)

(* --- liveness tracks GST ------------------------------------------------------ *)

let ordered n = List.init n (fun i -> i + 1)

let test_blocking_tracks_gst () =
  List.iter
    (fun gst ->
      let config =
        G.Runner.default_config ~horizon:400 ~inputs:(ordered 6)
          ~crash:(G.Crash.none ~n:6)
          (G.Adversary.es_blocking ~gst ())
      in
      let out = R.run config in
      match G.Runner.decision_round out with
      | None -> Alcotest.fail "must decide after GST"
      | Some r ->
        check_bool "no decision before GST" true (r >= gst);
        check_bool "decision within GST+4" true (r <= gst + 4))
    [ 6; 20; 50 ]

let test_ms_never_decides () =
  let config =
    G.Runner.default_config ~horizon:500 ~inputs:(ordered 4)
      ~crash:(G.Crash.none ~n:4)
      (G.Adversary.es_blocking ~gst:max_int ())
  in
  let out = R.run config in
  check_bool "no decision in pure MS" false out.all_correct_decided;
  check_int "still safe" 0
    (List.length (G.Checker.check_consensus ~expect_termination:false out.trace));
  check_int "schedule admissible" 0 (List.length (G.Checker.check_env out.trace))

(* --- safety sweeps -------------------------------------------------------------- *)

let sweep_one (module A : G.Intf.ALGORITHM) seed =
  let rng = Rng.make seed in
  let n = 2 + Rng.int rng 8 in
  let inputs = Rng.shuffle rng (List.init n (fun i -> i + 1)) in
  let failures = Rng.int rng (n + 1) in
  let crash = G.Crash.random ~n ~failures ~max_round:40 (Rng.split rng) in
  let adversary =
    match Rng.int rng 4 with
    | 0 -> G.Adversary.es ~gst:(1 + Rng.int rng 40) ~noise:(Rng.float rng 0.5) ()
    | 1 ->
      G.Adversary.es ~gst:(1 + Rng.int rng 40) ~noise:(Rng.float rng 0.3)
        ~max_delay:(1 + Rng.int rng 40) ()
    | 2 -> G.Adversary.es_blocking ~gst:(1 + Rng.int rng 60) ()
    | _ -> G.Adversary.sync ()
  in
  let config = G.Runner.default_config ~horizon:250 ~seed ~inputs ~crash adversary in
  let module Run = G.Runner.Make (A) in
  let out = Run.run config in
  G.Checker.check_consensus ~expect_termination:false out.trace
  @ G.Checker.check_env out.trace

let prop_es_safety =
  QCheck.Test.make ~name:"ES safety + admissibility over random adversarial runs"
    ~count:150 QCheck.small_int
    (fun seed -> sweep_one (module C.Es_consensus) seed = [])

let test_es_terminates_under_es () =
  (* Termination: for every seed, an ES-grade schedule decides. *)
  List.iter
    (fun seed ->
      let rng = Rng.make seed in
      let n = 3 + Rng.int rng 6 in
      let inputs = Rng.shuffle rng (List.init n (fun i -> i + 1)) in
      let crash = G.Crash.random ~n ~failures:(Rng.int rng n) ~max_round:20 (Rng.split rng) in
      let config =
        G.Runner.default_config ~horizon:300 ~seed ~inputs ~crash
          (G.Adversary.es ~gst:(1 + Rng.int rng 30) ~noise:0.2 ())
      in
      let out = R.run config in
      check_bool "terminates" true out.all_correct_decided)
    (List.init 40 (fun i -> 600 + i))

(* --- the no-guard ablation ----------------------------------------------------- *)

let test_no_guard_vs_guard_literal_schedule () =
  (* Regression pin of experiment A2: under the literal-§2.3 schedule a
     faulty isolated proposer splits the decision, guard or no guard. *)
  let run (module A : G.Intf.ALGORITHM) =
    let crash =
      G.Crash.of_events ~n:3
        [ { G.Crash.pid = 0; round = 12; broadcast = G.Crash.Silent } ]
    in
    let config =
      G.Runner.default_config ~horizon:60 ~seed:1 ~inputs:[ 9; 1; 1 ] ~crash
        (Anon_harness.Exp_ablations.a2_adversary ())
    in
    let module Run = G.Runner.Make (A) in
    Run.run config
  in
  let original = run (module C.Es_consensus) in
  let variant = run (module C.Es_consensus.No_written_old_guard) in
  let p0_round out =
    List.find_map
      (fun (p, r, _) -> if p = 0 then Some r else None)
      out.G.Runner.decisions
  in
  Alcotest.(check (option int)) "guarded p0 decides at 4" (Some 4) (p0_round original);
  Alcotest.(check (option int)) "unguarded p0 decides at 4" (Some 4) (p0_round variant);
  List.iter
    (fun out ->
      check_bool "uniform agreement broken under the literal model" true
        (G.Checker.check_consensus ~expect_termination:false out.G.Runner.trace <> []);
      check_bool "schedule inadmissible under the strengthened model" true
        (G.Checker.check_env out.G.Runner.trace <> []))
    [ original; variant ]

(* --- state invariants (observed every round of adversarial runs) ----------- *)

let observe_invariants ~seed =
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let rng = Rng.make seed in
  let n = 3 + Rng.int rng 6 in
  let inputs = Rng.shuffle rng (List.init n (fun i -> i + 1)) in
  let observe ~pid ~round st =
    let value = C.Es_consensus.current_val st in
    let proposed = C.Es_consensus.proposed st in
    let written = C.Es_consensus.written st in
    if not (List.mem value inputs) then note "p%d r%d: VAL %d not an input" pid round value;
    if round >= 2 && round mod 2 = 0 && not (Value.Set.equal proposed (Value.Set.singleton value))
    then
      (* After an even compute (without decision) PROPOSED = {VAL}. *)
      note "p%d r%d: even-round PROPOSED not {VAL}" pid round;
    if
      (not (Value.Set.is_empty written))
      && not (Value.Set.for_all (fun v -> List.mem v inputs) written)
    then note "p%d r%d: WRITTEN contains a non-input" pid round
  in
  let crash = G.Crash.random ~n ~failures:(Rng.int rng n) ~max_round:20 (Rng.split rng) in
  let config =
    G.Runner.default_config ~horizon:200 ~seed ~inputs ~crash
      (G.Adversary.es ~gst:(1 + Rng.int rng 20) ~noise:0.3 ())
  in
  ignore (R.run ~observe config);
  List.rev !violations

let test_state_invariants () =
  List.iter
    (fun seed ->
      Alcotest.(check (list string))
        (Printf.sprintf "invariants (seed %d)" seed)
        [] (observe_invariants ~seed))
    (List.init 25 (fun i -> 820 + i))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "es-consensus"
    [
      ( "compute",
        [
          Alcotest.test_case "initialize" `Quick test_initialize;
          Alcotest.test_case "written intersection" `Quick test_compute_written_intersection;
          Alcotest.test_case "adopt max written" `Quick test_compute_even_adopts_max_written;
          Alcotest.test_case "decides" `Quick test_compute_decides;
          Alcotest.test_case "written-old guard" `Quick
            test_no_decision_while_written_old_differs;
        ] );
      ( "replay",
        [
          Alcotest.test_case "sync distinct values" `Quick test_sync_replay;
          Alcotest.test_case "sync same values" `Quick test_sync_same_inputs_decide_fast;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "tracks GST" `Quick test_blocking_tracks_gst;
          Alcotest.test_case "MS never decides (FLP)" `Quick test_ms_never_decides;
          Alcotest.test_case "terminates under ES" `Quick test_es_terminates_under_es;
        ] );
      ( "safety",
        [
          qc prop_es_safety;
          Alcotest.test_case "state invariants" `Quick test_state_invariants;
          Alcotest.test_case "A2 literal-model pin" `Quick
            test_no_guard_vs_guard_literal_schedule;
        ] );
    ]
