(* Tests for Prop. 4: the two-run adversary against Σ emulators. *)

module C = Anon_consensus
module S = C.Sigma

let check_bool = Alcotest.(check bool)

let verdict_of (module Cand : S.CANDIDATE) = S.two_run_attack (module Cand) ~horizon:200

let test_window_candidate () =
  match S.builtin_candidates with
  | window :: _ -> (
    match verdict_of window with
    | S.Intersection_violated { out_p0 = [ 0 ]; out_p1 = [ 1 ]; _ } -> ()
    | v -> Alcotest.failf "expected intersection violation, got %a" S.pp_verdict v)
  | [] -> Alcotest.fail "no candidates"

let test_all_candidates_lose () =
  List.iter
    (fun (module Cand : S.CANDIDATE) ->
      match verdict_of (module Cand) with
      | S.Completeness_violated _ | S.Intersection_violated _ -> ())
    S.builtin_candidates

let test_expected_failure_modes () =
  let names_and_kinds =
    List.map
      (fun (module Cand : S.CANDIDATE) ->
        ( Cand.name,
          match verdict_of (module Cand) with
          | S.Completeness_violated { run; _ } ->
            (match run with `R1 -> "completeness-r1" | `R2 -> "completeness-r2")
          | S.Intersection_violated _ -> "intersection" ))
      S.builtin_candidates
  in
  Alcotest.(check (list (pair string string)))
    "failure modes"
    [
      ("trust-heard-within-3", "intersection");
      ("trust-all-ever-heard", "completeness-r2");
      ("trust-static-membership", "completeness-r1");
      ("trust-most-recent-majority", "completeness-r1");
    ]
    names_and_kinds

(* A candidate that aggressively trusts only itself: perfect completeness
   in both runs, so it must lose on intersection — the proof's essence. *)
module Trust_self : S.CANDIDATE = struct
  let name = "trust-only-self"

  type state = int

  let init ~n:_ ~me = me
  let step st ~round:_ ~heard_from:_ = st
  let trusted me = [ me ]
end

let test_trust_self_loses_intersection () =
  match verdict_of (module Trust_self) with
  | S.Intersection_violated { t = 1; _ } -> ()
  | v -> Alcotest.failf "expected immediate intersection violation, got %a" S.pp_verdict v

let test_attack_deterministic () =
  List.iter
    (fun (module Cand : S.CANDIDATE) ->
      check_bool "stable verdict" true
        (verdict_of (module Cand) = verdict_of (module Cand)))
    S.builtin_candidates

let () =
  Alcotest.run "sigma"
    [
      ( "two-run attack",
        [
          Alcotest.test_case "window candidate" `Quick test_window_candidate;
          Alcotest.test_case "all candidates lose" `Quick test_all_candidates_lose;
          Alcotest.test_case "expected failure modes" `Quick test_expected_failure_modes;
          Alcotest.test_case "trust-self loses intersection" `Quick
            test_trust_self_loses_intersection;
          Alcotest.test_case "deterministic" `Quick test_attack_deterministic;
        ] );
    ]
