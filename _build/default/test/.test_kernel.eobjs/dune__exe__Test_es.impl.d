test/test_es.ml: Alcotest Anon_consensus Anon_giraf Anon_harness Anon_kernel List Printf QCheck QCheck_alcotest Rng Value
