test/test_register.ml: Alcotest Anon_consensus Anon_giraf Anon_kernel Fun List Printf QCheck QCheck_alcotest Rng Value
