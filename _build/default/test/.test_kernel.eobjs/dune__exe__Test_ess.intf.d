test/test_ess.mli:
