test/test_sigma.ml: Alcotest Anon_consensus List
