test/test_skew.mli:
