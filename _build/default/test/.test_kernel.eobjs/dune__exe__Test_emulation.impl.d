test/test_emulation.ml: Alcotest Anon_consensus Anon_giraf Array Int List Option Printf
