test/test_baselines.ml: Alcotest Anon_baselines Anon_giraf Anon_kernel Fun List Printf Rng
