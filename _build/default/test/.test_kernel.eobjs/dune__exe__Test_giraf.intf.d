test/test_giraf.mli:
