test/test_es.mli:
