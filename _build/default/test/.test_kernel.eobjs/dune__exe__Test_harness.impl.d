test/test_harness.ml: Alcotest Anon_consensus Anon_giraf Anon_harness Format Int List String
