test/test_weakset.mli:
