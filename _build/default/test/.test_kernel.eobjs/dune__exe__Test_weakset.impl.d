test/test_weakset.ml: Alcotest Anon_consensus Anon_giraf Anon_kernel Format List Option Printf Rng Value
