test/test_kernel.ml: Alcotest Anon_kernel Counter_table Format Fun History Int Int64 List Pvalue QCheck QCheck_alcotest Rng Stats Value
