test/test_giraf.ml: Alcotest Anon_giraf Anon_kernel Format Int List Option QCheck QCheck_alcotest Rng String Value
