test/test_ess.ml: Alcotest Anon_consensus Anon_giraf Anon_kernel Counter_table Format Hashtbl History List Option Printf Pvalue QCheck QCheck_alcotest Rng
