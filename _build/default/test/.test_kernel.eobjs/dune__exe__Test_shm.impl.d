test/test_shm.ml: Alcotest Anon_giraf Anon_kernel Anon_shm Array Format Fun List Printf Rng Value
