test/test_skew.ml: Alcotest Anon_consensus Anon_giraf Anon_kernel Array List Option QCheck QCheck_alcotest Rng
