(* Tests for the known-network baselines: the event-driven simulator, ABD
   register emulation, heartbeat-Ω, and FloodSet. *)

open Anon_kernel
module G = Anon_giraf
module B = Anon_baselines

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Event_net ------------------------------------------------------------------ *)

module Echo = struct
  let name = "echo"

  type state = int list (* senders heard from *)
  type msg = Ping | Pong
  type cmd = Send_ping of int
  type out = Got_pong of int

  let init ~me:_ ~n:_ = ([], [])

  let on_message st ~me:_ ~now:_ ~src msg =
    match msg with
    | Ping -> (st, [ B.Event_net.Send { dst = src; msg = Pong } ])
    | Pong -> (src :: st, [ B.Event_net.Emit (Got_pong src) ])

  let on_timer st ~me:_ ~now:_ ~tag:_ = (st, [])

  let on_command st ~me:_ ~now:_ (Send_ping dst) =
    (st, [ B.Event_net.Send { dst; msg = Ping } ])
end

module Echo_net = B.Event_net.Make (Echo)

let test_event_net_echo () =
  let config = B.Event_net.default_config ~n:3 ~seed:1 () in
  let out = Echo_net.run config ~injections:[ (1, 0, Echo.Send_ping 2) ] in
  check_int "one pong" 1 (List.length out.emissions);
  (match out.emissions with
  | [ (_, pid, Echo.Got_pong src) ] ->
    check_int "pong at p0" 0 pid;
    check_int "from p2" 2 src
  | _ -> Alcotest.fail "unexpected emissions");
  check_int "two messages" 2 out.messages_sent

let test_event_net_crash_ignores () =
  let config = B.Event_net.default_config ~n:3 ~seed:1 ~crash_at:[ (2, 0) ] () in
  let out = Echo_net.run config ~injections:[ (1, 0, Echo.Send_ping 2) ] in
  check_int "no pong from crashed" 0 (List.length out.emissions)

let test_event_net_determinism () =
  let run () =
    let config = B.Event_net.default_config ~n:4 ~seed:8 () in
    (Echo_net.run config
       ~injections:[ (1, 0, Echo.Send_ping 1); (1, 2, Echo.Send_ping 3) ])
      .emissions
  in
  check_bool "same seed same run" true (run () = run ())

(* --- ABD --------------------------------------------------------------------------- *)

let abd_config ?(n = 5) ?(seed = 9) ?(crash_at = []) () =
  B.Event_net.default_config ~n ~seed ~horizon:50_000 ~crash_at ()

let test_abd_read_after_write () =
  let out =
    B.Abd.run ~config:(abd_config ())
      ~injections:[ (1, 0, B.Abd.Write 42); (200, 1, B.Abd.Read) ]
  in
  check_int "both complete" 2 (List.length out.ops);
  let read = List.find (fun (r : B.Abd.op_record) -> r.kind = `Read) out.ops in
  Alcotest.(check (option int)) "reads the write" (Some 42) read.value

let test_abd_atomicity_over_seeds () =
  List.iter
    (fun seed ->
      let rng = Rng.make seed in
      let n = 3 + (2 * Rng.int rng 2) in
      let crash_at = if Rng.bool rng then [ (n - 1, 100 + Rng.int rng 300) ] else [] in
      let injections =
        List.concat_map
          (fun pid ->
            List.init 4 (fun i ->
                let time = 1 + Rng.int rng 500 in
                let cmd =
                  if Rng.bool rng then B.Abd.Write ((1000 * pid) + i) else B.Abd.Read
                in
                (time, pid, cmd)))
          (List.init n Fun.id)
      in
      let out = B.Abd.run ~config:(abd_config ~n ~seed ~crash_at ()) ~injections in
      Alcotest.(check (list string))
        (Printf.sprintf "atomic (seed %d)" seed)
        [] (B.Abd.check_atomic out.ops))
    (List.init 25 (fun i -> i + 1))

let test_abd_hangs_without_majority () =
  (* 3 of 5 crash at time 0: no majority, every op hangs, none misbehaves. *)
  let crash_at = [ (2, 0); (3, 0); (4, 0) ] in
  let out =
    B.Abd.run
      ~config:(abd_config ~crash_at ())
      ~injections:[ (1, 0, B.Abd.Write 1); (5, 1, B.Abd.Read) ]
  in
  check_int "nothing completes" 0 (List.length out.ops);
  check_int "both hung" 2 out.hung

let test_abd_checker_flags_regression () =
  let ops =
    [
      { B.Abd.pid = 0; kind = `Write; value = Some 1; ts = (2, 0); started = 0; completed = 5 };
      { B.Abd.pid = 1; kind = `Read; value = Some 9; ts = (1, 9); started = 10; completed = 15 };
    ]
  in
  check_bool "ts regression flagged" true (B.Abd.check_atomic ops <> [])

(* --- heartbeat Ω --------------------------------------------------------------------- *)

let hb_config ?(n = 5) ?(seed = 4) ?(crash_at = []) ~gst () =
  let slow ~src:_ ~dst:_ ~now:_ rng = Rng.int_in rng 1 40 in
  let fast ~src:_ ~dst:_ ~now:_ rng = Rng.int_in rng 1 3 in
  B.Event_net.default_config ~n ~seed ~horizon:3000 ~crash_at
    ~delay:(B.Event_net.gst_delay ~gst ~before:slow ~after:fast)
    ()

let test_omega_hb_stabilizes () =
  let out = B.Omega_heartbeat.run ~config:(hb_config ~gst:500 ()) ~heartbeat_period:5 ~timeout:15 in
  check_bool "unanimous stable leader" true (out.stabilization_time <> None);
  match out.final_leaders with
  | (_, l) :: _ -> check_bool "leader is a pid" true (l >= 0 && l < 5)
  | [] -> Alcotest.fail "no leaders"

let test_omega_hb_crashed_leader_replaced () =
  (* p0 would win (smallest id) but crashes: the survivors converge on a
     live leader. *)
  let out =
    B.Omega_heartbeat.run
      ~config:(hb_config ~crash_at:[ (0, 600) ] ~gst:100 ())
      ~heartbeat_period:5 ~timeout:15
  in
  List.iter
    (fun (pid, leader) ->
      check_bool (Printf.sprintf "p%d not following the dead" pid) true (leader <> 0))
    out.final_leaders;
  check_bool "still unanimous" true (out.stabilization_time <> None)

(* --- FloodSet ---------------------------------------------------------------------------- *)

module Flood2 = B.Floodset.Make (struct
  let failures_bound = 2
end)

module Flood_runner = G.Runner.Make (Flood2)

let test_floodset_decides_f_plus_1 () =
  let config =
    G.Runner.default_config ~horizon:20 ~inputs:[ 5; 2; 8; 1; 9 ]
      ~crash:(G.Crash.none ~n:5) (G.Adversary.sync ())
  in
  let out = Flood_runner.run config in
  check_bool "all decided" true out.all_correct_decided;
  List.iter
    (fun (_, round, v) ->
      check_int "decides min" 1 v;
      check_int "at round f+1" 3 round)
    out.decisions

let test_floodset_with_crashes () =
  List.iter
    (fun seed ->
      let rng = Rng.make seed in
      let crash = G.Crash.random ~n:5 ~failures:2 ~max_round:3 rng in
      let config =
        G.Runner.default_config ~horizon:20 ~seed ~inputs:[ 5; 2; 8; 1; 9 ] ~crash
          (G.Adversary.sync ())
      in
      let out = Flood_runner.run config in
      check_bool "terminates" true out.all_correct_decided;
      check_int "no violations" 0 (List.length (G.Checker.check_consensus out.trace)))
    (List.init 30 (fun i -> i + 1))

let () =
  Alcotest.run "baselines"
    [
      ( "event-net",
        [
          Alcotest.test_case "echo" `Quick test_event_net_echo;
          Alcotest.test_case "crash ignores" `Quick test_event_net_crash_ignores;
          Alcotest.test_case "determinism" `Quick test_event_net_determinism;
        ] );
      ( "abd",
        [
          Alcotest.test_case "read after write" `Quick test_abd_read_after_write;
          Alcotest.test_case "atomicity over seeds" `Quick test_abd_atomicity_over_seeds;
          Alcotest.test_case "hangs without majority" `Quick test_abd_hangs_without_majority;
          Alcotest.test_case "checker sanity" `Quick test_abd_checker_flags_regression;
        ] );
      ( "omega-heartbeat",
        [
          Alcotest.test_case "stabilizes" `Quick test_omega_hb_stabilizes;
          Alcotest.test_case "crashed leader replaced" `Quick
            test_omega_hb_crashed_leader_replaced;
        ] );
      ( "floodset",
        [
          Alcotest.test_case "decides at f+1" `Quick test_floodset_decides_f_plus_1;
          Alcotest.test_case "with crashes" `Quick test_floodset_with_crashes;
        ] );
    ]
