(* Tests for the regular register layered on the weak-set (Prop. 1). *)

open Anon_kernel
module G = Anon_giraf
module Reg = Anon_consensus.Register_of_weak_set

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- codec ----------------------------------------------------------------------- *)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:300
    QCheck.(pair (int_bound (Reg.value_capacity - 1)) (int_bound 10_000))
    (fun (value, rank) ->
      Reg.decode (Reg.encode ~value ~rank) = (value, rank))

let test_codec_bounds () =
  Alcotest.check_raises "value too large"
    (Invalid_argument "Register_of_weak_set.encode: value out of range") (fun () ->
      ignore (Reg.encode ~value:Reg.value_capacity ~rank:0))

let test_read_of_set () =
  let set =
    Value.set_of_list
      [ Reg.encode ~value:7 ~rank:0; Reg.encode ~value:3 ~rank:2; Reg.encode ~value:9 ~rank:1 ]
  in
  Alcotest.(check (option int)) "max rank wins" (Some 3) (Reg.read_of_set set);
  Alcotest.(check (option int)) "empty register" None (Reg.read_of_set Value.Set.empty);
  let tie =
    Value.set_of_list [ Reg.encode ~value:3 ~rank:2; Reg.encode ~value:8 ~rank:2 ]
  in
  Alcotest.(check (option int)) "rank tie: max value" (Some 8) (Reg.read_of_set tie)

(* --- runs --------------------------------------------------------------------------- *)

let run ?(n = 4) ?(seed = 3) workload =
  Reg.run ~crash:(G.Crash.none ~n)
    ~adversary:(G.Adversary.ms ~rotation:G.Adversary.Round_robin ~noise:0.2 ())
    ~horizon:300 ~seed ~workload

let test_read_after_write () =
  let out =
    run [ (0, [ (2, Reg.Write 11) ]); (1, [ (60, Reg.Read) ]) ]
  in
  let reads = List.filter (fun (r : Reg.record) -> r.op = Reg.Read) out.records in
  List.iter
    (fun (r : Reg.record) ->
      Alcotest.(check (option int)) "reads last write" (Some 11) r.result)
    reads;
  check_int "one read" 1 (List.length reads)

let test_sequential_writes_increase_rank () =
  let out = run [ (0, [ (2, Reg.Write 5); (40, Reg.Write 6) ]); (1, [ (100, Reg.Read) ]) ] in
  let writes =
    List.filter_map
      (fun (r : Reg.record) ->
        match r.op, r.rank with Reg.Write v, Some rank -> Some (v, rank) | _, _ -> None)
      out.records
  in
  (match writes with
  | [ (5, r1); (6, r2) ] -> check_bool "rank strictly grows" true (r2 > r1)
  | _ -> Alcotest.fail "expected two completed writes");
  let reads = List.filter (fun (r : Reg.record) -> r.op = Reg.Read) out.records in
  List.iter
    (fun (r : Reg.record) -> Alcotest.(check (option int)) "latest wins" (Some 6) r.result)
    reads

let test_regularity_over_seeds () =
  List.iter
    (fun seed ->
      let rng = Rng.make seed in
      let n = 2 + Rng.int rng 5 in
      let workload =
        List.init n (fun pid ->
            List.init 5 (fun i ->
                let start = 1 + Rng.int rng 80 in
                if Rng.bool rng then (start, Reg.Write ((100 * pid) + i)) else (start, Reg.Read))
            |> List.sort compare
            |> fun ops -> (pid, ops))
      in
      let out = run ~n ~seed workload in
      check_int
        (Printf.sprintf "regularity (seed %d)" seed)
        0
        (List.length (Reg.check_regular out.records));
      check_int
        (Printf.sprintf "weak-set layer (seed %d)" seed)
        0
        (List.length (G.Checker.check_weak_set ~correct:(List.init n Fun.id) out.ws_ops)))
    (List.init 20 (fun i -> 400 + i))

let test_checker_flags_stale_read () =
  (* Sanity of the checker itself: a read returning an old value after a
     newer write completed must be flagged. *)
  let records =
    [
      { Reg.client = 0; op = Reg.Write 5; invoked = 1; completed = Some 5; result = None; rank = Some 0 };
      { Reg.client = 0; op = Reg.Write 6; invoked = 10; completed = Some 15; result = None; rank = Some 1 };
      { Reg.client = 1; op = Reg.Read; invoked = 20; completed = Some 25; result = Some 5; rank = None };
    ]
  in
  check_int "stale read flagged" 1 (List.length (Reg.check_regular records))

let test_checker_allows_concurrent () =
  let records =
    [
      { Reg.client = 0; op = Reg.Write 5; invoked = 1; completed = Some 5; result = None; rank = Some 0 };
      { Reg.client = 2; op = Reg.Write 7; invoked = 18; completed = Some 30; result = None; rank = Some 1 };
      (* Read overlaps the write of 7: both 5 and 7 acceptable. *)
      { Reg.client = 1; op = Reg.Read; invoked = 20; completed = Some 25; result = Some 7; rank = None };
    ]
  in
  check_int "concurrent value accepted" 0 (List.length (Reg.check_regular records))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "register-of-weak-set"
    [
      ( "codec",
        [
          qc prop_codec_roundtrip;
          Alcotest.test_case "bounds" `Quick test_codec_bounds;
          Alcotest.test_case "read_of_set" `Quick test_read_of_set;
        ] );
      ( "runs",
        [
          Alcotest.test_case "read after write" `Quick test_read_after_write;
          Alcotest.test_case "sequential writes" `Quick test_sequential_writes_increase_rank;
          Alcotest.test_case "regularity over seeds" `Quick test_regularity_over_seeds;
        ] );
      ( "checker",
        [
          Alcotest.test_case "flags stale read" `Quick test_checker_flags_stale_read;
          Alcotest.test_case "allows concurrent" `Quick test_checker_allows_concurrent;
        ] );
    ]
