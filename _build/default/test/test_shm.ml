(* Tests for the shared-memory substrate: scheduler, the two register-based
   weak-set constructions (Props. 2-3), and the Ω-based consensus
   baseline. *)

open Anon_kernel
module G = Anon_giraf
module S = Anon_shm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Program / Scheduler ---------------------------------------------------- *)

let test_program_read_all () =
  let prog = S.Program.read_all ~lo:0 ~hi:2 (fun vs -> S.Program.return vs) in
  (* Execute by hand against a small array. *)
  let regs = [| 10; 20; 30 |] in
  let rec exec = function
    | S.Program.Read (r, k) -> exec (k regs.(r))
    | S.Program.Write (r, v, k) ->
      regs.(r) <- v;
      exec (k ())
    | S.Program.Query k -> exec (k 0)
    | S.Program.Done vs -> vs
  in
  Alcotest.(check (list int)) "reads in order" [ 10; 20; 30 ] (exec prog)

let counter_client ~pid:_ ~op_index =
  if op_index >= 3 then None
  else
    Some
      (S.Program.read 0 (fun v -> S.Program.write 0 (v + 1) (fun () -> S.Program.return v)))

let test_scheduler_runs_all_ops () =
  let config = S.Scheduler.default_config ~n:3 () in
  let registers = [| 0 |] in
  let out = S.Scheduler.run ~config ~registers ~clients:counter_client () in
  check_int "9 completions" 9 (List.length out.completions);
  (* Read-increment-write is not atomic: concurrent increments may be
     lost — evidence the scheduler interleaves at single-access
     granularity. *)
  check_bool "counter between 3 and 9" true (registers.(0) >= 3 && registers.(0) <= 9);
  Alcotest.(check (list int)) "nothing pending" [] out.pending

let test_scheduler_round_robin_counter_exact () =
  (* Under round-robin with equal-length clients the interleaving is
     read/read/read, write/write/write...: each batch of 3 increments
     collapses to 1, so the counter ends at exactly 3. *)
  let config = S.Scheduler.default_config ~n:3 ~policy:S.Scheduler.Round_robin () in
  let registers = [| 0 |] in
  let out = S.Scheduler.run ~config ~registers ~clients:counter_client () in
  check_int "9 completions" 9 (List.length out.completions);
  check_int "lost updates are deterministic" 3 registers.(0)

let test_scheduler_determinism () =
  let run () =
    let config = S.Scheduler.default_config ~n:3 ~seed:5 () in
    let registers = [| 0 |] in
    (S.Scheduler.run ~config ~registers ~clients:counter_client ()).completions
  in
  check_bool "same seed, same schedule" true (run () = run ())

let test_scheduler_crash () =
  let config = S.Scheduler.default_config ~n:2 ~crash_at:[ (1, 0) ] () in
  let registers = [| 0 |] in
  let out = S.Scheduler.run ~config ~registers ~clients:counter_client () in
  check_bool "only client 0 completes" true
    (List.for_all (fun (c : int S.Scheduler.completion) -> c.pid = 0) out.completions);
  check_int "three ops" 3 (List.length out.completions)

let test_scheduler_oracle () =
  let clients ~pid:_ ~op_index =
    if op_index > 0 then None
    else Some (S.Program.query (fun hint -> S.Program.return hint))
  in
  let config = S.Scheduler.default_config ~n:2 () in
  let out =
    S.Scheduler.run ~config ~registers:[| 0 |]
      ~oracle:(fun ~pid ~step:_ -> 100 + pid)
      ~clients ()
  in
  List.iter
    (fun (c : int S.Scheduler.completion) -> check_int "oracle answer" (100 + c.pid) c.result)
    out.completions

(* --- weak-set constructions --------------------------------------------------- *)

let ws_workload ~n rng =
  List.init n (fun pid ->
      let ops =
        List.init 8 (fun i ->
            if Rng.bool rng then S.Ws_common.Add ((16 * pid) + i) else S.Ws_common.Get)
      in
      (pid, ops))

let test_construction name run_it =
  List.iter
    (fun seed ->
      let rng = Rng.make (seed * 3) in
      let n = 2 + Rng.int rng 5 in
      let crash_at = if seed mod 2 = 0 then [ (0, 30 + Rng.int rng 100) ] else [] in
      let config =
        S.Scheduler.default_config ~n ~seed
          ~policy:(if seed mod 3 = 0 then S.Scheduler.Bursty 10 else S.Scheduler.Random_steps)
          ~crash_at ()
      in
      let correct =
        List.filter (fun p -> not (List.mem_assoc p crash_at)) (List.init n Fun.id)
      in
      let ops = run_it ~config ~workload:(ws_workload ~n rng) ~n in
      Alcotest.(check (list string))
        (Printf.sprintf "%s seed %d" name seed)
        []
        (List.map (Format.asprintf "%a" G.Checker.pp_violation)
           (G.Checker.check_weak_set ~correct ops)))
    (List.init 30 (fun i -> i + 1))

let test_swmr_semantics () =
  test_construction "swmr" (fun ~config ~workload ~n:_ ->
      (S.Weak_set_swmr.run ~config ~workload).ops)

let test_mwmr_semantics () =
  test_construction "mwmr" (fun ~config ~workload ~n ->
      (S.Weak_set_mwmr.run ~config ~domain:(16 * n) ~workload).ops)

let test_mwmr_domain_check () =
  let config = S.Scheduler.default_config ~n:1 () in
  Alcotest.check_raises "domain enforced"
    (Invalid_argument "Weak_set_mwmr: value out of domain") (fun () ->
      ignore (S.Weak_set_mwmr.run ~config ~domain:4 ~workload:[ (0, [ S.Ws_common.Add 9 ]) ]))

let test_swmr_sequential_visibility () =
  (* A single client: add then get must see the value (round-robin makes
     it fully sequential). *)
  let config = S.Scheduler.default_config ~n:1 ~policy:S.Scheduler.Round_robin () in
  let out =
    S.Weak_set_swmr.run ~config ~workload:[ (0, [ S.Ws_common.Add 5; S.Ws_common.Get ]) ]
  in
  let got =
    List.filter_map
      (function
        | G.Checker.Ws_get g -> Some (Value.Set.elements g.get_result)
        | G.Checker.Ws_add _ -> None)
      out.ops
  in
  Alcotest.(check (list (list int))) "get after add" [ [ 5 ] ] got

(* --- Omega consensus ------------------------------------------------------------ *)

let test_omega_decides_and_agrees () =
  List.iter
    (fun seed ->
      let n = 5 in
      let config = S.Scheduler.default_config ~n ~seed ~max_steps:500_000 () in
      let proposals = [ 7; 3; 9; 1; 5 ] in
      let oracle =
        S.Omega_consensus.stabilizing_oracle ~n ~stabilize_at:200 ~leader:0 ~seed
      in
      let out = S.Omega_consensus.run ~config ~proposals ~oracle in
      Alcotest.(check (list int)) "everyone decides" [] out.undecided;
      check_int "agreement + validity" 0
        (List.length (S.Omega_consensus.check ~proposals out)))
    (List.init 20 (fun i -> i + 1))

let test_omega_leader_crash () =
  (* The stable leader is p1; p0 (initial random hints' favourite) crashes
     early. Safety and termination must survive. *)
  let n = 4 in
  let config = S.Scheduler.default_config ~n ~seed:9 ~max_steps:500_000 ~crash_at:[ (0, 40) ] () in
  let proposals = [ 4; 3; 2; 1 ] in
  let oracle = S.Omega_consensus.stabilizing_oracle ~n ~stabilize_at:300 ~leader:1 ~seed:9 in
  let out = S.Omega_consensus.run ~config ~proposals ~oracle in
  check_int "no violations" 0 (List.length (S.Omega_consensus.check ~proposals out));
  check_bool "the correct processes decide" true
    (List.for_all (fun pid -> pid = 0) out.undecided)

let test_omega_safe_without_stabilization () =
  (* A forever-random oracle cannot guarantee termination, but Paxos-style
     ballots keep it safe. *)
  let n = 4 in
  let config = S.Scheduler.default_config ~n ~seed:17 ~max_steps:30_000 () in
  let proposals = [ 1; 2; 3; 4 ] in
  let oracle = S.Omega_consensus.stabilizing_oracle ~n ~stabilize_at:max_int ~leader:0 ~seed:17 in
  let out = S.Omega_consensus.run ~config ~proposals ~oracle in
  check_int "safe regardless" 0 (List.length (S.Omega_consensus.check ~proposals out))

let () =
  Alcotest.run "shm"
    [
      ( "scheduler",
        [
          Alcotest.test_case "read_all" `Quick test_program_read_all;
          Alcotest.test_case "runs all ops" `Quick test_scheduler_runs_all_ops;
          Alcotest.test_case "round-robin lost updates" `Quick
            test_scheduler_round_robin_counter_exact;
          Alcotest.test_case "determinism" `Quick test_scheduler_determinism;
          Alcotest.test_case "crash" `Quick test_scheduler_crash;
          Alcotest.test_case "oracle" `Quick test_scheduler_oracle;
        ] );
      ( "weak-sets",
        [
          Alcotest.test_case "swmr semantics (Prop. 2)" `Quick test_swmr_semantics;
          Alcotest.test_case "mwmr semantics (Prop. 3)" `Quick test_mwmr_semantics;
          Alcotest.test_case "mwmr domain" `Quick test_mwmr_domain_check;
          Alcotest.test_case "swmr sequential visibility" `Quick
            test_swmr_sequential_visibility;
        ] );
      ( "omega-consensus",
        [
          Alcotest.test_case "decides and agrees" `Quick test_omega_decides_and_agrees;
          Alcotest.test_case "leader crash" `Quick test_omega_leader_crash;
          Alcotest.test_case "safe without stabilization" `Quick
            test_omega_safe_without_stabilization;
        ] );
    ]
