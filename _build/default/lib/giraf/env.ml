type t = Sync | Ms | Es of { gst : int } | Ess of { gst : int } | Async

let pp ppf = function
  | Sync -> Format.pp_print_string ppf "SYNC"
  | Ms -> Format.pp_print_string ppf "MS"
  | Es { gst } -> Format.fprintf ppf "ES(gst=%d)" gst
  | Ess { gst } -> Format.fprintf ppf "ESS(gst=%d)" gst
  | Async -> Format.pp_print_string ppf "ASYNC"

let to_string t = Format.asprintf "%a" pp t

let requires_source t ~round:_ =
  match t with Sync | Ms | Es _ | Ess _ -> true | Async -> false

let gst = function
  | Sync -> Some 1
  | Ms | Async -> None
  | Es { gst } | Ess { gst } -> Some gst
