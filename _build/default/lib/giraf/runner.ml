open Anon_kernel

type config = {
  inputs : Value.t array;
  crash : Crash.t;
  adversary : Adversary.t;
  horizon : int;
  seed : int;
  stop_on_decision : bool;
}

let default_config ?(horizon = 200) ?(stop_on_decision = true) ?(seed = 42) ~inputs
    ~crash adversary =
  let inputs = Array.of_list inputs in
  if Array.length inputs <> Crash.n crash then
    invalid_arg "Runner.default_config: inputs/crash size mismatch";
  { inputs; crash; adversary; horizon; seed; stop_on_decision }

type outcome = {
  trace : Trace.t;
  decisions : (int * int * Value.t) list;
  all_correct_decided : bool;
  rounds_executed : int;
  messages_sent : int;
  deliveries : int;
  timely_deliveries : int;
}

let decision_round outcome =
  if not outcome.all_correct_decided then None
  else
    let correct_rounds =
      List.filter_map
        (fun (pid, r, _) ->
          if Crash.is_correct outcome.trace.Trace.crash pid then Some r else None)
        outcome.decisions
    in
    match correct_rounds with
    | [] -> None
    | r :: rs -> Some (List.fold_left max r rs)

module Make (A : Intf.ALGORITHM) = struct
  type proc = {
    mutable st : A.state option;  (* None before initialize *)
    mutable halted : bool;  (* decided *)
    mutable crashed : bool;
    mailbox : A.msg Mailbox.t;
  }

  let run ?observe config =
    let n = Array.length config.inputs in
    let rng = Rng.make config.seed in
    let crash_rng = Rng.split rng in
    let procs =
      Array.init n (fun _ ->
          {
            st = None;
            halted = false;
            crashed = false;
            mailbox = Mailbox.create ~compare:A.msg_compare ();
          })
    in
    let correct = Crash.correct config.crash in
    let decisions = ref [] in
    let rounds = ref [] in
    let messages_sent = ref 0 in
    let deliveries = ref 0 in
    let timely_deliveries = ref 0 in
    let undecided_correct () = List.filter (fun p -> not procs.(p).halted) correct in
    let round = ref 1 in
    let continue = ref true in
    while !continue && !round <= config.horizon do
      let k = !round in
      let crashing_events =
        List.filter
          (fun (ev : Crash.event) ->
            (not procs.(ev.pid).crashed) && not procs.(ev.pid).halted)
          (Crash.crashing_at config.crash ~round:k)
      in
      let crashing_pids = List.map (fun (ev : Crash.event) -> ev.pid) crashing_events in
      let participants =
        List.filter
          (fun p -> (not procs.(p).crashed) && not procs.(p).halted)
          (List.init n Fun.id)
      in
      (* Phase 1: each participant's k-th end-of-round — compute round k-1
         (or initialize) and produce the round-k message. Deciders halt and
         send nothing. *)
      let decided_now = ref [] in
      let outgoing =
        List.filter_map
          (fun p ->
            let proc = procs.(p) in
            let fresh = Mailbox.drain proc.mailbox ~upto:(k - 1) in
            let result =
              if k = 1 then begin
                let st, m = A.initialize config.inputs.(p) in
                proc.st <- Some st;
                Some m
              end
              else begin
                let current = Mailbox.current proc.mailbox ~round:(k - 1) in
                let st =
                  match proc.st with Some st -> st | None -> assert false
                in
                let st', m, dec =
                  A.compute st ~round:(k - 1) ~inbox:{ Intf.current; fresh }
                in
                proc.st <- Some st';
                match dec with
                | None -> Some m
                | Some v ->
                  proc.halted <- true;
                  decided_now := (p, v) :: !decided_now;
                  decisions := (p, k - 1, v) :: !decisions;
                  None
              end
            in
            (match observe, proc.st with
            | Some f, Some st -> f ~pid:p ~round:(k - 1) st
            | None, _ | _, None -> ());
            Option.map (fun m -> { Dispatch.sender = p; msg = m }) result)
          participants
      in
      (* Phase 2: adversarial deliveries. A source must reach every process
         that will compute this round — not only the correct ones. The
         paper's §2.3 literally quantifies timely links over correct
         processes, but the Lemma 1 proof ("every other process pj that
         enters round k also has received the message of this source")
         needs the stronger obligation; see DESIGN.md §5 and experiment A2
         for what breaks under the literal reading. *)
      let obligated =
        List.filter
          (fun p -> (not procs.(p).halted) && not (List.mem p crashing_pids))
          participants
      in
      let normal_senders =
        List.filter_map
          (fun { Dispatch.sender; _ } ->
            if List.mem sender crashing_pids then None else Some sender)
          outgoing
      in
      let alive_receivers =
        List.filter
          (fun p ->
            (not procs.(p).crashed)
            && (not procs.(p).halted)
            && not (List.mem p crashing_pids))
          (List.init n Fun.id)
      in
      let ctx =
        {
          Adversary.round = k;
          senders = normal_senders;
          obligated;
          correct;
          alive = alive_receivers;
        }
      in
      let plan = Adversary.plan config.adversary ctx rng in
      let stats =
        Dispatch.dispatch ~round:k ~outgoing ~crashing_events
          ~eligible:(fun q ->
            q < n && (not procs.(q).crashed) && not procs.(q).halted)
          ~receivers:alive_receivers ~plan ~crash_rng
          ~schedule:(fun ~receiver ~arrival ~sent msg ->
            Mailbox.schedule procs.(receiver).mailbox ~arrival ~sent msg)
      in
      messages_sent := !messages_sent + List.length outgoing;
      deliveries := !deliveries + stats.delivered;
      timely_deliveries := !timely_deliveries + stats.timely_count;
      List.iter (fun p -> procs.(p).crashed <- true) crashing_pids;
      let info =
        {
          Trace.round = k;
          senders = List.map (fun { Dispatch.sender; _ } -> sender) outgoing;
          crashing = crashing_pids;
          source = plan.source;
          timely = stats.timely;
          obligated;
          decided = List.rev !decided_now;
          msg_sizes =
            List.map
              (fun { Dispatch.sender; msg } -> (sender, A.msg_size msg))
              outgoing;
        }
      in
      rounds := info :: !rounds;
      if config.stop_on_decision && undecided_correct () = [] then continue := false;
      incr round
    done;
    let trace =
      {
        Trace.n;
        inputs = config.inputs;
        crash = config.crash;
        env = Adversary.env config.adversary;
        rounds = List.rev !rounds;
      }
    in
    {
      trace;
      decisions = List.rev !decisions;
      all_correct_decided = undecided_correct () = [];
      rounds_executed = min (!round - 1) config.horizon;
      messages_sent = !messages_sent;
      deliveries = !deliveries;
      timely_deliveries = !timely_deliveries;
    }
end
