lib/giraf/intf.ml: Anon_kernel Format
