lib/giraf/crash.mli: Anon_kernel Format
