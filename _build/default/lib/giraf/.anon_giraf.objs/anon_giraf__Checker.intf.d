lib/giraf/checker.mli: Anon_kernel Format Trace
