lib/giraf/crash.ml: Anon_kernel Array Format Fun List Rng
