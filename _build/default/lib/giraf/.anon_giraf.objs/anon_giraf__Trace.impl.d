lib/giraf/trace.ml: Anon_kernel Crash Env Format List Value
