lib/giraf/adversary.ml: Anon_kernel Env List Rng
