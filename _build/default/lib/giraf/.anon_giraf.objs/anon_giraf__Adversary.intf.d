lib/giraf/adversary.mli: Anon_kernel Env
