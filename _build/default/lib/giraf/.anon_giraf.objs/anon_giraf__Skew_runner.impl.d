lib/giraf/skew_runner.ml: Anon_kernel Array Crash Env Fun Hashtbl Intf List Option Rng Stdlib Trace Value
