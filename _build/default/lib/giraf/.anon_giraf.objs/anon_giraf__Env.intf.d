lib/giraf/env.mli: Format
