lib/giraf/service_runner.ml: Adversary Anon_kernel Array Checker Crash Dispatch Fun Hashtbl Int Intf List Mailbox Option Rng Trace Value
