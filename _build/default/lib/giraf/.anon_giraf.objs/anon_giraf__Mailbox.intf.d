lib/giraf/mailbox.mli:
