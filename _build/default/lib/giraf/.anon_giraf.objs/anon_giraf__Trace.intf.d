lib/giraf/trace.mli: Anon_kernel Crash Env Format
