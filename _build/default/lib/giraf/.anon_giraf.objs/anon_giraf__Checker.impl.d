lib/giraf/checker.ml: Anon_kernel Array Crash Env Format List Trace Value
