lib/giraf/skew_runner.mli: Anon_kernel Crash Env Intf Trace
