lib/giraf/mailbox.ml: Hashtbl List Option
