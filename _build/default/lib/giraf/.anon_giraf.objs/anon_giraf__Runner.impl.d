lib/giraf/runner.ml: Adversary Anon_kernel Array Crash Dispatch Fun Intf List Mailbox Option Rng Trace Value
