lib/giraf/env.ml: Format
