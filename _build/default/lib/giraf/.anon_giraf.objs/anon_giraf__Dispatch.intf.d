lib/giraf/dispatch.mli: Adversary Anon_kernel Crash
