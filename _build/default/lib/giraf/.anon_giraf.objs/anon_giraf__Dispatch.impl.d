lib/giraf/dispatch.ml: Adversary Anon_kernel Crash List Option Rng
