lib/giraf/service_runner.mli: Adversary Anon_kernel Checker Crash Intf Trace
