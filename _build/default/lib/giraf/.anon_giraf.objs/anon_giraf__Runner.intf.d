lib/giraf/runner.mli: Adversary Anon_kernel Crash Intf Trace
