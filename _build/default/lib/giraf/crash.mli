(** Crash schedules.

    Any number of processes may crash (no majority assumption anywhere in
    the paper). A process crashing at round [r] performs its end-of-round
    for rounds [< r] normally; at round [r] its broadcast reaches only an
    adversary-chosen subset of processes ([Broadcast_to]) — the hardest
    admissible behaviour of a crashing sender — and it takes no further
    steps. *)

type last_broadcast =
  | Silent  (** Crashes before sending its round-[r] message. *)
  | Broadcast_all  (** The round-[r] message reaches everyone (clean stop). *)
  | Broadcast_subset  (** An adversary/RNG-chosen subset receives it. *)

type event = { pid : int; round : int; broadcast : last_broadcast }

type t
(** A crash schedule for a system of [n] processes. *)

val none : n:int -> t
(** No crashes; all [n] processes are correct. *)

val of_events : n:int -> event list -> t
(** Explicit schedule. At most one event per pid; pids in [\[0, n)]. *)

val random :
  n:int -> failures:int -> max_round:int -> Anon_kernel.Rng.t -> t
(** [failures] distinct processes crash at uniform rounds in
    [\[1, max_round\]] with [Broadcast_subset] behaviour. Requires
    [0 <= failures <= n]. *)

val n : t -> int
val events : t -> event list
val correct : t -> int list
(** Processes that never crash, increasing. *)

val is_correct : t -> int -> bool
val crash_round : t -> int -> int option
(** [Some r] if the pid crashes at round [r]. *)

val crashing_at : t -> round:int -> event list
val failures : t -> int
val pp : Format.formatter -> t -> unit
