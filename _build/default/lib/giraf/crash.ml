open Anon_kernel

type last_broadcast = Silent | Broadcast_all | Broadcast_subset
type event = { pid : int; round : int; broadcast : last_broadcast }
type t = { n : int; by_pid : event option array }

let none ~n = { n; by_pid = Array.make n None }

let of_events ~n evs =
  let by_pid = Array.make n None in
  List.iter
    (fun ev ->
      if ev.pid < 0 || ev.pid >= n then invalid_arg "Crash.of_events: pid out of range";
      if ev.round < 1 then invalid_arg "Crash.of_events: round must be >= 1";
      if by_pid.(ev.pid) <> None then invalid_arg "Crash.of_events: duplicate pid";
      by_pid.(ev.pid) <- Some ev)
    evs;
  { n; by_pid }

let random ~n ~failures ~max_round rng =
  if failures < 0 || failures > n then invalid_arg "Crash.random: bad failure count";
  let victims = Rng.shuffle rng (List.init n Fun.id) in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  let evs =
    List.map
      (fun pid ->
        { pid; round = Rng.int_in rng 1 (max max_round 1); broadcast = Broadcast_subset })
      (take failures victims)
  in
  of_events ~n evs

let n t = t.n

let events t =
  Array.to_list t.by_pid |> List.filter_map Fun.id
  |> List.sort (fun a b -> compare (a.round, a.pid) (b.round, b.pid))

let is_correct t pid = t.by_pid.(pid) = None

let correct t =
  List.filter (is_correct t) (List.init t.n Fun.id)

let crash_round t pid =
  match t.by_pid.(pid) with None -> None | Some ev -> Some ev.round

let crashing_at t ~round = List.filter (fun ev -> ev.round = round) (events t)
let failures t = List.length (events t)

let pp_broadcast ppf = function
  | Silent -> Format.pp_print_string ppf "silent"
  | Broadcast_all -> Format.pp_print_string ppf "all"
  | Broadcast_subset -> Format.pp_print_string ppf "subset"

let pp ppf t =
  let pp_event ppf ev =
    Format.fprintf ppf "p%d@@r%d(%a)" ev.pid ev.round pp_broadcast ev.broadcast
  in
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_event)
    (events t)
