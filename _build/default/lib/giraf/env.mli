(** Environment specifications (§2.3 of the paper).

    An environment is a round-based property restricting message arrivals;
    it is what the adversary must satisfy and what the trace checker
    verifies. [gst] parameters make the "eventually" in ES/ESS concrete so
    generated schedules can be checked mechanically. *)

type t =
  | Sync  (** Every process has a timely link in every round. *)
  | Ms  (** Moving source: every round has some source with a timely link. *)
  | Es of { gst : int }
      (** Eventually synchronous: MS always, and from round [gst] on every
          correct process has a timely link in every round. *)
  | Ess of { gst : int }
      (** Eventually stable source: MS always, and from round [gst] on the
          {e same} correct process is a source in every round. *)
  | Async
      (** No timeliness guarantee at all (messages still reliable). Used
          for FLP-style experiments; no consensus liveness expected. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val requires_source : t -> round:int -> bool
(** Whether the environment obliges a source to exist in [round] (true for
    all except [Async]). *)

val gst : t -> int option
(** The round from which the eventual guarantee holds, if any. *)
