lib/baselines/event_net.ml: Anon_kernel Array List Map Rng
