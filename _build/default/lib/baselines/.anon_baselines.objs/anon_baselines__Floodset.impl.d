lib/baselines/floodset.ml: Anon_giraf Anon_kernel List Printf Value
