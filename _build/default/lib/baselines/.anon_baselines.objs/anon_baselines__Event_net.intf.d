lib/baselines/event_net.mli: Anon_kernel
