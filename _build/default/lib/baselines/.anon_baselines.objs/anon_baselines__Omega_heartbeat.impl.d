lib/baselines/omega_heartbeat.ml: Array Event_net Fun List Option
