lib/baselines/abd.ml: Anon_kernel Event_net List Printf Value
