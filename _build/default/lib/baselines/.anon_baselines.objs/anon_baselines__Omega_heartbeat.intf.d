lib/baselines/omega_heartbeat.mli: Event_net
