lib/baselines/floodset.mli: Anon_giraf Anon_kernel
