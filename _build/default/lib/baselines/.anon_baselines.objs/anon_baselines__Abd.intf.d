lib/baselines/abd.mli: Anon_kernel Event_net
