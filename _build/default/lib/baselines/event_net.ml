open Anon_kernel

type ('msg, 'out) effect_ =
  | Send of { dst : int; msg : 'msg }
  | Broadcast of 'msg
  | Timer of { tag : int; delay : int }
  | Emit of 'out

module type PROTO = sig
  val name : string

  type state
  type msg
  type cmd
  type out

  val init : me:int -> n:int -> state * (msg, out) effect_ list
  val on_message :
    state -> me:int -> now:int -> src:int -> msg -> state * (msg, out) effect_ list
  val on_timer :
    state -> me:int -> now:int -> tag:int -> state * (msg, out) effect_ list
  val on_command :
    state -> me:int -> now:int -> cmd -> state * (msg, out) effect_ list
end

type delay_fn = src:int -> dst:int -> now:int -> Rng.t -> int

let uniform_delay ~lo ~hi ~src:_ ~dst:_ ~now:_ rng = Rng.int_in rng (max 1 lo) (max 1 hi)

let gst_delay ~gst ~before ~after ~src ~dst ~now rng =
  if now >= gst then after ~src ~dst ~now rng else before ~src ~dst ~now rng

type config = {
  n : int;
  seed : int;
  horizon : int;
  delay : delay_fn;
  crash_at : (int * int) list;
}

let default_config ?(seed = 42) ?(horizon = 10_000) ?(crash_at = [])
    ?(delay = fun ~src ~dst ~now rng -> uniform_delay ~lo:1 ~hi:3 ~src ~dst ~now rng)
    ~n () =
  { n; seed; horizon; delay; crash_at }

module Make (P : PROTO) = struct
  type event =
    | Deliver of { dst : int; src : int; msg : P.msg }
    | Fire of { pid : int; tag : int }
    | Inject of { pid : int; cmd : P.cmd }

  (* Queue keyed by (time, sequence number): deterministic FIFO within a
     time unit. *)
  module Q = Map.Make (struct
    type t = int * int

    let compare = compare
  end)

  type outcome = {
    emissions : (int * int * P.out) list;
    messages_sent : int;
    final_time : int;
  }

  let run config ~injections =
    let rng = Rng.make config.seed in
    let n = config.n in
    let states = Array.make n None in
    let queue = ref Q.empty in
    let seq = ref 0 in
    let emissions = ref [] in
    let messages_sent = ref 0 in
    let crash_time pid =
      List.fold_left
        (fun acc (p, t) -> if p = pid then Some t else acc)
        None config.crash_at
    in
    let crashed pid now =
      match crash_time pid with Some t -> now >= t | None -> false
    in
    let push time ev =
      incr seq;
      queue := Q.add (time, !seq) ev !queue
    in
    let rec apply pid now effects =
      match effects with
      | [] -> ()
      | Send { dst; msg } :: rest ->
        if dst >= 0 && dst < n then begin
          incr messages_sent;
          let d = max 1 (config.delay ~src:pid ~dst ~now rng) in
          push (now + d) (Deliver { dst; src = pid; msg })
        end;
        apply pid now rest
      | Broadcast msg :: rest ->
        for dst = 0 to n - 1 do
          if dst <> pid then begin
            incr messages_sent;
            let d = max 1 (config.delay ~src:pid ~dst ~now rng) in
            push (now + d) (Deliver { dst; src = pid; msg })
          end
        done;
        apply pid now rest
      | Timer { tag; delay } :: rest ->
        push (now + max 1 delay) (Fire { pid; tag });
        apply pid now rest
      | Emit out :: rest ->
        emissions := (now, pid, out) :: !emissions;
        apply pid now rest
    in
    (* Initialization at time 0. *)
    for pid = 0 to n - 1 do
      let st, effects = P.init ~me:pid ~n in
      states.(pid) <- Some st;
      apply pid 0 effects
    done;
    List.iter (fun (time, pid, cmd) -> push (max 1 time) (Inject { pid; cmd })) injections;
    let final_time = ref 0 in
    let continue = ref true in
    while !continue do
      match Q.min_binding_opt !queue with
      | None -> continue := false
      | Some (((time, _) as key), ev) ->
        queue := Q.remove key !queue;
        if time > config.horizon then continue := false
        else begin
          final_time := time;
          let handle pid f =
            if not (crashed pid time) then
              match states.(pid) with
              | None -> ()
              | Some st ->
                let st', effects = f st in
                states.(pid) <- Some st';
                apply pid time effects
          in
          match ev with
          | Deliver { dst; src; msg } ->
            handle dst (fun st -> P.on_message st ~me:dst ~now:time ~src msg)
          | Fire { pid; tag } -> handle pid (fun st -> P.on_timer st ~me:pid ~now:time ~tag)
          | Inject { pid; cmd } ->
            handle pid (fun st -> P.on_command st ~me:pid ~now:time cmd)
        end
    done;
    {
      emissions = List.rev !emissions;
      messages_sent = !messages_sent;
      final_time = !final_time;
    }
end
