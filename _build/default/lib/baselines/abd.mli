(** Baseline: ABD register emulation (Attiya, Bar-Noy, Dolev [2]) — an
    atomic multi-writer multi-reader register in an asynchronous known
    network with a correct majority.

    This is everything the paper's setting takes away: identities, a known
    [n], and a majority assumption. Writes query a majority for the highest
    timestamp, pick a fresh higher one, and update a majority; reads pick
    the highest-timestamped value from a majority and write it back before
    returning (the read write-back is what makes reads atomic rather than
    merely regular). *)

type ts = int * int
(** Timestamp: [(number, writer id)], ordered lexicographically. *)

type cmd = Read | Write of Anon_kernel.Value.t

type op_record = {
  pid : int;
  kind : [ `Read | `Write ];
  value : Anon_kernel.Value.t option;  (** Written value / read result. *)
  ts : ts;
  started : int;
  completed : int;
}

type outcome = {
  ops : op_record list;  (** Completed operations, chronological. *)
  messages_sent : int;
  final_time : int;
  hung : int;  (** Commands that never completed (e.g. majority lost). *)
}

val run : config:Event_net.config -> injections:(int * int * cmd) list -> outcome
(** Commands injected while an operation is pending are queued and started
    at its completion (one op at a time per client). *)

val check_atomic : op_record list -> string list
(** Atomicity over the completed operations:
    - real-time order implies timestamp order (strict for writes);
    - all operations with one timestamp carry one value. Returns
      human-readable violation descriptions ([] if linearizable). *)
