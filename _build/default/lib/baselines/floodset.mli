(** Baseline: FloodSet — synchronous crash-tolerant consensus deciding
    after [f + 1] rounds (Lynch, ch. 6).

    Needs no identities (flooding value {e sets} is anonymous-friendly) but
    leans on everything else the paper refuses to assume: fully synchronous
    rounds and an a-priori bound [f] on the number of crashes. Runs on the
    same GIRAF runner under the [Sync] adversary, which makes the round
    counts directly comparable with Algs. 2 and 3 (experiment T10). *)

module Make (_ : sig
  val failures_bound : int
  (** [f]: correctness requires at most this many crashes. *)
end) : Anon_giraf.Intf.ALGORITHM with type msg = Anon_kernel.Value.Set.t
