open Anon_kernel

type ts = int * int

type cmd = Read | Write of Value.t

type op_record = {
  pid : int;
  kind : [ `Read | `Write ];
  value : Value.t option;
  ts : ts;
  started : int;
  completed : int;
}

type done_info = {
  d_kind : [ `Read | `Write ];
  d_value : Value.t option;
  d_ts : ts;
  d_started : int;
}

module Proto = struct
  let name = "abd"

  type msg =
    | Query of int  (* rid *)
    | Query_reply of int * ts * Value.t option
    | Update of int * ts * Value.t option
    | Update_ack of int

  type nonrec cmd = cmd

  type out = Op_done of done_info

  type phase =
    | Idle
    | Querying of { rid : int; kind : [ `Read | `Write ]; payload : Value.t option;
                    replies : (ts * Value.t option) list; started : int }
    | Updating of { rid : int; kind : [ `Read | `Write ]; ts : ts;
                    value : Value.t option; acks : int; started : int }

  type state = {
    n : int;
    stored_ts : ts;
    stored_v : Value.t option;
    phase : phase;
    next_rid : int;
    backlog : (cmd * int) list;  (* queued commands with injection times *)
  }

  let init ~me:_ ~n =
    ( { n; stored_ts = (0, -1); stored_v = None; phase = Idle; next_rid = 0; backlog = [] },
      [] )

  let majority st = (st.n / 2) + 1

  let start_op st ~now cmd =
    let rid = st.next_rid in
    let kind, payload = match cmd with Read -> (`Read, None) | Write v -> (`Write, Some v) in
    let st =
      {
        st with
        next_rid = rid + 1;
        phase =
          Querying
            {
              rid;
              kind;
              payload;
              (* The process answers its own query locally. *)
              replies = [ (st.stored_ts, st.stored_v) ];
              started = now;
            };
      }
    in
    (st, [ Event_net.Broadcast (Query rid) ])

  let store st ts v = if ts > st.stored_ts then { st with stored_ts = ts; stored_v = v } else st

  (* Move from the query phase to the update phase once a majority
     answered. *)
  let maybe_update ~me st =
    match st.phase with
    | Querying q when List.length q.replies >= majority st ->
      let max_ts, max_v =
        List.fold_left (fun acc r -> if fst r > fst acc then r else acc)
          ((0, -1), None) q.replies
      in
      let ts, value =
        match q.kind with
        | `Write -> ((fst max_ts + 1, me), q.payload)
        | `Read -> (max_ts, max_v)
      in
      let st = store st ts value in
      let st =
        { st with
          phase = Updating { rid = q.rid; kind = q.kind; ts; value; acks = 1; started = q.started } }
      in
      (st, [ Event_net.Broadcast (Update (q.rid, ts, value)) ])
    | Querying _ | Idle | Updating _ -> (st, [])

  let maybe_finish ~now st =
    match st.phase with
    | Updating u when u.acks >= majority st ->
      let emit =
        Event_net.Emit
          (Op_done { d_kind = u.kind; d_value = u.value; d_ts = u.ts; d_started = u.started })
      in
      let st = { st with phase = Idle } in
      (match st.backlog with
      | [] -> (st, [ emit ])
      | (cmd, _) :: rest ->
        let st, effects = start_op { st with backlog = rest } ~now cmd in
        (st, emit :: effects))
    | Updating _ | Idle | Querying _ -> (st, [])

  let on_message st ~me ~now ~src msg =
    match msg with
    | Query rid ->
      (st, [ Event_net.Send { dst = src; msg = Query_reply (rid, st.stored_ts, st.stored_v) } ])
    | Query_reply (rid, ts, v) -> (
      match st.phase with
      | Querying q when q.rid = rid ->
        let st = { st with phase = Querying { q with replies = (ts, v) :: q.replies } } in
        maybe_update ~me st
      | Querying _ | Idle | Updating _ -> (st, []))
    | Update (rid, ts, v) ->
      let st = store st ts v in
      (st, [ Event_net.Send { dst = src; msg = Update_ack rid } ])
    | Update_ack rid -> (
      match st.phase with
      | Updating u when u.rid = rid ->
        let st = { st with phase = Updating { u with acks = u.acks + 1 } } in
        maybe_finish ~now st
      | Updating _ | Idle | Querying _ -> (st, []))

  let on_timer st ~me:_ ~now:_ ~tag:_ = (st, [])

  let on_command st ~me:_ ~now cmd =
    match st.phase with
    | Idle -> start_op st ~now cmd
    | Querying _ | Updating _ -> ({ st with backlog = st.backlog @ [ (cmd, now) ] }, [])
end

module Net = Event_net.Make (Proto)

type outcome = {
  ops : op_record list;
  messages_sent : int;
  final_time : int;
  hung : int;
}

let run ~config ~injections =
  let out = Net.run config ~injections in
  let ops =
    List.map
      (fun (time, pid, Proto.Op_done d) ->
        {
          pid;
          kind = d.d_kind;
          value = d.d_value;
          ts = d.d_ts;
          started = d.d_started;
          completed = time;
        })
      out.emissions
  in
  {
    ops;
    messages_sent = out.messages_sent;
    final_time = out.final_time;
    hung = List.length injections - List.length ops;
  }

let pp_ts (n, w) = Printf.sprintf "(%d,%d)" n w

let check_atomic ops =
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* Real-time order respects timestamp order. *)
  List.iter
    (fun o1 ->
      List.iter
        (fun o2 ->
          if o1.completed < o2.started then begin
            if o2.ts < o1.ts then
              note "op p%d ts=%s precedes p%d ts=%s in real time but not in ts order"
                o1.pid (pp_ts o1.ts) o2.pid (pp_ts o2.ts);
            if o2.kind = `Write && o2.ts <= o1.ts then
              note "write p%d ts=%s not above earlier op p%d ts=%s" o2.pid (pp_ts o2.ts)
                o1.pid (pp_ts o1.ts)
          end)
        ops)
    ops;
  (* One value per timestamp. *)
  List.iter
    (fun o1 ->
      List.iter
        (fun o2 ->
          if o1.ts = o2.ts && fst o1.ts > 0 && o1.value <> o2.value then
            note "timestamp %s carries two values" (pp_ts o1.ts))
        ops)
    ops;
  List.rev !violations
