type out = Leader of int

module Proto = struct
  let name = "omega-heartbeat"

  type msg = Heartbeat of int array  (* accusation vector *)

  type cmd = unit

  type nonrec out = out

  type state = {
    n : int;
    period : int;
    timeout : int;
    last_hb : int array;
    accusations : int array;
    leader : int option;
  }

  (* Configured through init_params before Make is applied — the functor
     interface has no parameter channel, so the run function sets these. *)
  let params = ref (3, 10)

  let hb_tag = 0
  let check_tag = 1

  let init ~me:_ ~n =
    let period, timeout = !params in
    ( {
        n;
        period;
        timeout;
        last_hb = Array.make n 0;
        accusations = Array.make n 0;
        leader = None;
      },
      [
        Event_net.Timer { tag = hb_tag; delay = 1 };
        Event_net.Timer { tag = check_tag; delay = timeout };
      ] )

  (* Leader: lexicographically smallest (accusation count, id). *)
  let current_leader st =
    let best = ref None in
    Array.iteri
      (fun q acc ->
        match !best with
        | None -> best := Some (acc, q)
        | Some (acc', q') -> if (acc, q) < (acc', q') then best := Some (acc, q))
      st.accusations;
    Option.map snd !best

  let announce st =
    let l = current_leader st in
    if l <> st.leader then
      ({ st with leader = l }, match l with None -> [] | Some l -> [ Event_net.Emit (Leader l) ])
    else (st, [])

  let on_message st ~me:_ ~now ~src msg =
    match msg with
    | Heartbeat acc ->
      st.last_hb.(src) <- now;
      Array.iteri (fun q a -> if a > st.accusations.(q) then st.accusations.(q) <- a) acc;
      announce st

  let on_timer st ~me ~now ~tag =
    if tag = hb_tag then
      ( st,
        [
          Event_net.Broadcast (Heartbeat (Array.copy st.accusations));
          Event_net.Timer { tag = hb_tag; delay = st.period };
        ] )
    else begin
      (* Accuse everybody (except ourselves) whose last heartbeat is stale. *)
      Array.iteri
        (fun q last ->
          if q <> me && now - last > st.timeout then
            st.accusations.(q) <- st.accusations.(q) + 1)
        st.last_hb;
      let st, effects = announce st in
      (st, effects @ [ Event_net.Timer { tag = check_tag; delay = st.timeout } ])
    end

  let on_command st ~me:_ ~now:_ () = (st, [])
end

module Net = Event_net.Make (Proto)

type outcome = {
  emissions : (int * int * out) list;
  stabilization_time : int option;
  final_leaders : (int * int) list;
  messages_sent : int;
}

let run ~config ~heartbeat_period ~timeout =
  Proto.params := (heartbeat_period, timeout);
  let out = Net.run config ~injections:[] in
  let crashed pid =
    List.exists (fun (p, _) -> p = pid) config.Event_net.crash_at
  in
  let final_leaders =
    List.init config.Event_net.n Fun.id
    |> List.filter (fun pid -> not (crashed pid))
    |> List.filter_map (fun pid ->
           List.fold_left
             (fun acc (_, p, Leader l) -> if p = pid then Some (pid, l) else acc)
             None out.emissions)
  in
  let last_change =
    List.fold_left (fun acc (t, _, _) -> max acc t) 0 out.emissions
  in
  let unanimous =
    match final_leaders with
    | [] -> false
    | (_, l) :: rest -> List.for_all (fun (_, l') -> l' = l) rest
  in
  {
    emissions = out.emissions;
    stabilization_time = (if unanimous then Some last_change else None);
    final_leaders;
    messages_sent = out.messages_sent;
  }
