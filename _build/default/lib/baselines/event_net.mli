(** Known-network discrete-event message-passing simulator.

    The contrast substrate: processes {e do} have identities here (and know
    [n]), messages are point-to-point with per-link adversarial delays, and
    protocols are event handlers (message, timer, injected client command).
    Used by the ABD register emulation and the heartbeat-Ω baseline — the
    two classical constructions the paper positions itself against. *)

type ('msg, 'out) effect_ =
  | Send of { dst : int; msg : 'msg }
  | Broadcast of 'msg  (** To every process except the sender. *)
  | Timer of { tag : int; delay : int }
  | Emit of 'out  (** Observable output (measurement hook). *)

module type PROTO = sig
  val name : string

  type state
  type msg

  (** Client commands injected by the harness. *)
  type cmd

  (** Observable outputs. *)
  type out

  val init : me:int -> n:int -> state * (msg, out) effect_ list
  val on_message :
    state -> me:int -> now:int -> src:int -> msg -> state * (msg, out) effect_ list
  val on_timer :
    state -> me:int -> now:int -> tag:int -> state * (msg, out) effect_ list
  val on_command :
    state -> me:int -> now:int -> cmd -> state * (msg, out) effect_ list
end

type delay_fn = src:int -> dst:int -> now:int -> Anon_kernel.Rng.t -> int
(** Message latency chosen by the adversary; clamped to [>= 1]. *)

val uniform_delay : lo:int -> hi:int -> delay_fn

val gst_delay : gst:int -> before:delay_fn -> after:delay_fn -> delay_fn
(** Partial synchrony: [before] until time [gst], [after] from then on. *)

type config = {
  n : int;
  seed : int;
  horizon : int;  (** Simulated time units. *)
  delay : delay_fn;
  crash_at : (int * int) list;  (** [(pid, time)]. *)
}

val default_config :
  ?seed:int -> ?horizon:int -> ?crash_at:(int * int) list ->
  ?delay:delay_fn -> n:int -> unit -> config

module Make (P : PROTO) : sig
  type outcome = {
    emissions : (int * int * P.out) list;  (** [(time, pid, out)], ordered. *)
    messages_sent : int;
    final_time : int;
  }

  val run : config -> injections:(int * int * P.cmd) list -> outcome
  (** [injections]: [(time, pid, cmd)] client commands. Crashed processes
      ignore all events. *)
end
