(** Baseline: heartbeat-based eventual leader election (Ω) in a known,
    partially synchronous network — the Aguilera–Delporte-Gallet–
    Fauconnier–Toueg approach the paper's §4 contrasts with.

    Every process broadcasts heartbeats carrying an accusation vector;
    silence beyond the timeout earns a process an accusation; vectors merge
    pointwise by max. The leader is the process with the lexicographically
    smallest (accusations, id). Once some correct process is eventually
    timely, its accusation count freezes while unstable processes keep
    accumulating, so all processes converge on one leader — a {e real}
    leader election, possible here only because processes have names. This
    is the baseline the pseudo-leader stabilization of Alg. 3 (T4) is
    measured against. *)

type out = Leader of int

type outcome = {
  emissions : (int * int * out) list;  (** [(time, pid, Leader l)]. *)
  stabilization_time : int option;
      (** Earliest time after which no process changed its leader, if
          every surviving process ended on the same leader. *)
  final_leaders : (int * int) list;  (** [(pid, leader)] at the horizon. *)
  messages_sent : int;
}

val run :
  config:Event_net.config ->
  heartbeat_period:int ->
  timeout:int ->
  outcome
