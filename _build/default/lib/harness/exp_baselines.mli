(** T10 — what identities, known membership, and majorities buy you:
    anonymous Algs. 2/3 against FloodSet (synchronous, known f), Ω-based
    shared-memory consensus, heartbeat-Ω leader election, and ABD register
    emulation. *)

val t10 : unit -> Table.t
(** Round/step counts of the consensus algorithms, n sweep. *)

val t10_leaders : unit -> Table.t
(** Leader stabilization: heartbeat-Ω (ids) vs pseudo-leaders (histories). *)

val t10_registers : unit -> Table.t
(** Register emulations: ABD (majority, atomic) vs weak-set register
    (any number of crashes, regular). *)
