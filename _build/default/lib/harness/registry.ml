type experiment = { id : string; build : unit -> Table.t }

let all =
  [
    { id = "T1"; build = Exp_consensus.t1 };
    { id = "T2"; build = Exp_consensus.t2 };
    { id = "T3"; build = Exp_consensus.t3 };
    { id = "T4"; build = Exp_consensus.t4 };
    { id = "T5"; build = Exp_weakset.t5 };
    { id = "T6"; build = Exp_weakset.t6 };
    { id = "T7"; build = Exp_weakset.t7 };
    { id = "T8"; build = Exp_impossibility.t8 };
    { id = "T9"; build = Exp_impossibility.t9 };
    { id = "T10"; build = Exp_baselines.t10 };
    { id = "T10b"; build = Exp_baselines.t10_leaders };
    { id = "T10c"; build = Exp_baselines.t10_registers };
    { id = "T11"; build = Exp_weakset.t11 };
    { id = "T12"; build = Exp_skew.t12 };
    { id = "F1"; build = Exp_consensus.f1 };
    { id = "F2"; build = Exp_consensus.f2 };
    { id = "A1"; build = Exp_ablations.a1 };
    { id = "A2"; build = Exp_ablations.a2 };
    { id = "A3"; build = Exp_ablations.a3 };
  ]

let find id =
  List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all

let run_all ppf =
  List.iter
    (fun e ->
      let table = e.build () in
      Table.render ppf table)
    all
