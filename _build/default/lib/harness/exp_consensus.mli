(** Experiments on the two consensus algorithms (Algs. 2 and 3):
    T1–T4 and the two figure-style series F1 (decision-round distribution)
    and F2 (message growth). See DESIGN.md §4 for the full index. *)

val ordered_inputs : n:int -> Anon_kernel.Rng.t -> Anon_kernel.Value.t list
(** Pid-ordered inputs [1..n] — required for the blocking schedules to
    stall (see the comment in the implementation). *)

val t1 : unit -> Table.t
(** ES decision round vs n and GST (Thm. 1 liveness). *)

val t2 : unit -> Table.t
(** ES safety under crash fractions (Thm. 1 safety). *)

val t3 : unit -> Table.t
(** ESS decision round vs n and source-stabilization time (Thm. 2). *)

val t4 : unit -> Table.t
(** Pseudo-leader stabilization (Lemmas 4–6). *)

val leader_stabilization :
  n:int -> gst:int -> seed:int -> int * int * int option
(** One instrumented ESS run: (self-leader-set stabilization round, final
    leader-set size, decision round). Shared with the baseline comparison
    T10. *)

val f1 : unit -> Table.t
(** Decision-round histogram, ES vs ESS, random schedules. *)

val f2 : unit -> Table.t
(** ESS message-payload growth per round. *)
