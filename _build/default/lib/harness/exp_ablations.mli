(** Ablations: deliberately break the load-bearing details DESIGN.md calls
    out and measure the predicted failures. Each table compares the paper's
    algorithm (control) with the broken variant under identical
    schedules. *)

val a1 : unit -> Table.t
(** A1 — the non-leader proposal machinery of Alg. 3 (§4.1): A1a sends
    empty sets instead of [{⊥}] (observationally equivalent under lockstep
    rounds — the ⊥ device targets unsynchronized rounds); A1b drops the
    converged clause of line 15, which measurably stalls every decision
    after the first leader halts. *)

val a2 : unit -> Table.t
(** A2 — environment-definition sensitivity: under §2.3's literal "timely
    to every correct process", a faulty isolated proposer decides its own
    value and uniform agreement breaks for Alg. 2 itself; the Lemma 1
    proof (and our runners/checker) use the stronger "timely to every
    process entering the round". *)

val a2_adversary : unit -> Anon_giraf.Adversary.t
(** The literal-reading schedule: sources serve only correct processes;
    faulty processes receive everything one round late. Exposed for
    tests. *)

val a3 : unit -> Table.t
(** A3 — Alg. 3 merges counter tables with max instead of min: leader
    stability and liveness degrade under long delays. *)
