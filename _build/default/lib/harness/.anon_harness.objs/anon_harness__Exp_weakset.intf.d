lib/harness/exp_weakset.mli: Anon_consensus Table
