lib/harness/runs.mli: Anon_giraf Anon_kernel
