lib/harness/table.ml: Array Format List Printf String
