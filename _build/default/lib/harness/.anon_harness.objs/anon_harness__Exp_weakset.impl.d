lib/harness/exp_weakset.ml: Anon_consensus Anon_giraf Anon_kernel Anon_shm Fun List Printf Rng Runs Stats Table
