lib/harness/exp_impossibility.mli: Table
