lib/harness/exp_consensus.ml: Anon_consensus Anon_giraf Anon_kernel Counter_table Hashtbl Int List Option Printf Rng Runs Stats Table
