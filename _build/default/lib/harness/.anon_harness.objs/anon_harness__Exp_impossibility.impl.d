lib/harness/exp_impossibility.ml: Anon_consensus Anon_giraf Exp_consensus Format List Runs Table
