lib/harness/exp_baselines.ml: Anon_baselines Anon_consensus Anon_giraf Anon_kernel Anon_shm Exp_consensus Exp_weakset Fun List Option Rng Runs Stats Table
