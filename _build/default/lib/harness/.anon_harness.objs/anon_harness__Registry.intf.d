lib/harness/registry.mli: Format Table
