lib/harness/exp_skew.ml: Anon_consensus Anon_giraf Anon_kernel List Printf Rng Runs Stats Table
