lib/harness/exp_ablations.mli: Anon_giraf Table
