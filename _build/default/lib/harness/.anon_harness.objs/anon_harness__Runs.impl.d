lib/harness/runs.ml: Anon_giraf Anon_kernel List Rng Stats
