lib/harness/exp_ablations.ml: Anon_consensus Anon_giraf Anon_kernel Exp_consensus Hashtbl Int List Option Printf Runs String Table
