lib/harness/registry.ml: Exp_ablations Exp_baselines Exp_consensus Exp_impossibility Exp_skew Exp_weakset List String Table
