lib/harness/exp_consensus.mli: Anon_kernel Table
