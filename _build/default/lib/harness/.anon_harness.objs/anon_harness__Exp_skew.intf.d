lib/harness/exp_skew.mli: Table
