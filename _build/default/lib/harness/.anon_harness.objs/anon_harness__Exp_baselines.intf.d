lib/harness/exp_baselines.mli: Table
