open Anon_kernel
module G = Anon_giraf

type batch = {
  runs : int;
  decided : int;
  decision_rounds : int list;
  env_violations : int;
  agreement_violations : int;
  validity_violations : int;
  messages : int list;
}

let mean_decision b =
  match b.decision_rounds with
  | [] -> None
  | rs -> Some (Stats.mean (List.map float_of_int rs))

let safety_violations b = b.agreement_violations + b.validity_violations

let seeds ?(base = 1000) n = List.init n (fun i -> base + (7919 * i))

let distinct_inputs ~n rng = Rng.shuffle rng (List.init n (fun i -> i + 1))

module Of (A : G.Intf.ALGORITHM) = struct
  module R = G.Runner.Make (A)

  let batch ?(horizon = 300) ?observe ~inputs ~crash ~adversary ~seeds () =
    let empty =
      {
        runs = 0;
        decided = 0;
        decision_rounds = [];
        env_violations = 0;
        agreement_violations = 0;
        validity_violations = 0;
        messages = [];
      }
    in
    List.fold_left
      (fun acc seed ->
        let rng = Rng.make seed in
        let inputs = inputs (Rng.split rng) in
        let crash = crash (Rng.split rng) in
        let adversary = adversary (Rng.split rng) in
        let config = G.Runner.default_config ~horizon ~seed ~inputs ~crash adversary in
        let outcome = R.run ?observe config in
        let env = G.Checker.check_env outcome.trace in
        let cons =
          G.Checker.check_consensus ~expect_termination:false outcome.trace
        in
        let count p l = List.length (List.filter p l) in
        {
          runs = acc.runs + 1;
          decided = (acc.decided + if outcome.all_correct_decided then 1 else 0);
          decision_rounds =
            (match G.Runner.decision_round outcome with
            | Some r -> r :: acc.decision_rounds
            | None -> acc.decision_rounds);
          env_violations = acc.env_violations + List.length env;
          agreement_violations =
            acc.agreement_violations
            + count
                (function G.Checker.Agreement_violation _ -> true | _ -> false)
                cons;
          validity_violations =
            acc.validity_violations
            + count (function G.Checker.Validity_violation _ -> true | _ -> false) cons;
          messages = outcome.messages_sent :: acc.messages;
        })
      empty seeds
end
