(** Impossibility-side experiments: T8 (FLP corollary — no consensus in
    MS) and T9 (Prop. 4 — Σ is not emulatable in MS). *)

val t8 : unit -> Table.t
(** Alg. 2 under an MS-only (never stabilizing) blocking schedule: no
    decision within a long horizon, safety intact. *)

val t9 : unit -> Table.t
(** The two-run adversary defeats every candidate Σ emulator. *)
