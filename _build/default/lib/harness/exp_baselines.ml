open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module S = Anon_shm
module B = Anon_baselines
module Es_runs = Runs.Of (C.Es_consensus)
module Ess_runs = Runs.Of (C.Ess_consensus)

(* --- T10: consensus round counts ----------------------------------------- *)

let consensus_cells ~n batch =
  let mean_msgs =
    match batch.Runs.messages with
    | [] -> "-"
    | ms -> Table.cell_float (Stats.mean (List.map float_of_int ms))
  in
  ignore n;
  [
    Table.cell_opt (Table.cell_float ~decimals:1) (Runs.mean_decision batch);
    mean_msgs;
    Table.cell_int (Runs.safety_violations batch);
  ]

let floodset_row ~n ~failures seeds =
  let module F = B.Floodset.Make (struct
    let failures_bound = failures
  end) in
  let module FR = Runs.Of (F) in
  FR.batch ~horizon:50
    ~inputs:(Runs.distinct_inputs ~n)
    ~crash:(fun rng -> G.Crash.random ~n ~failures ~max_round:(failures + 1) rng)
    ~adversary:(fun _ -> G.Adversary.sync ())
    ~seeds ()

let omega_shm_steps ~n ~seeds =
  let steps =
    List.filter_map
      (fun seed ->
        let config = S.Scheduler.default_config ~n ~seed ~max_steps:500_000 () in
        let proposals = List.init n (fun i -> i + 1) in
        let oracle =
          S.Omega_consensus.stabilizing_oracle ~n ~stabilize_at:0 ~leader:0 ~seed
        in
        let out = S.Omega_consensus.run ~config ~proposals ~oracle in
        assert (S.Omega_consensus.check ~proposals out = []);
        if out.undecided = [] then
          Some
            (float_of_int
               (List.fold_left (fun acc (_, _, _, d) -> max acc d) 0 out.decisions))
        else None)
      seeds
  in
  match steps with [] -> "-" | s -> Table.cell_float (Stats.mean s)

let t10 () =
  let seeds = Runs.seeds 10 in
  let row n =
    let failures = max 1 (n / 4) in
    let es =
      Es_runs.batch ~horizon:100
        ~inputs:(Runs.distinct_inputs ~n)
        ~crash:(fun _ -> G.Crash.none ~n)
        ~adversary:(fun _ -> G.Adversary.sync ())
        ~seeds ()
    in
    let ess =
      Ess_runs.batch ~horizon:100
        ~inputs:(Runs.distinct_inputs ~n)
        ~crash:(fun _ -> G.Crash.none ~n)
        ~adversary:(fun _ -> G.Adversary.sync ())
        ~seeds ()
    in
    let flood = floodset_row ~n ~failures seeds in
    (Table.cell_int n :: consensus_cells ~n es)
    @ consensus_cells ~n ess
    @ consensus_cells ~n flood
    @ [ omega_shm_steps ~n ~seeds ]
  in
  Table.make ~id:"T10"
    ~title:"What ids/known-n buy: consensus cost under full synchrony"
    ~claim:"context — anonymous algorithms pay a constant-factor round overhead"
    ~expectation:"ES/ESS decide in ~4 rounds; FloodSet in f+1; all safe"
    ~headers:
      [
        "n";
        "ES-rounds"; "ES-msgs"; "ES-viol";
        "ESS-rounds"; "ESS-msgs"; "ESS-viol";
        "Flood-rounds"; "Flood-msgs"; "Flood-viol";
        "Omega-shm-steps";
      ]
    ~rows:(List.map row [ 4; 8; 16 ])

(* --- T10b: leader stabilization ------------------------------------------ *)

let t10_leaders () =
  let n = 8 in
  let hb_stab seed =
    let slow ~src:_ ~dst:_ ~now:_ rng = Rng.int_in rng 1 40 in
    let fast ~src:_ ~dst:_ ~now:_ rng = Rng.int_in rng 1 3 in
    let delay = B.Event_net.gst_delay ~gst:300 ~before:slow ~after:fast in
    let config = B.Event_net.default_config ~n ~seed ~horizon:3000 ~delay () in
    let out = B.Omega_heartbeat.run ~config ~heartbeat_period:5 ~timeout:15 in
    Option.map float_of_int out.stabilization_time
  in
  let rows =
    List.map
      (fun gst ->
        let pseudo =
          List.map
            (fun seed ->
              let s, z, _ = Exp_consensus.leader_stabilization ~n ~gst ~seed in
              (float_of_int s, float_of_int z))
            (Runs.seeds 8)
        in
        let hb = List.filter_map hb_stab (Runs.seeds 8) in
        [
          Table.cell_int gst;
          Table.cell_float (Stats.mean (List.map fst pseudo));
          Table.cell_float (Stats.mean (List.map snd pseudo));
          (match hb with [] -> "-" | h -> Table.cell_float (Stats.mean h));
        ])
      [ 10; 40 ]
  in
  Table.make ~id:"T10b"
    ~title:"Leader stabilization: anonymous pseudo-leaders vs heartbeat-Ω (n=8)"
    ~claim:"§4 — history counters replace ids for leader election"
    ~expectation:"pseudo-leader set stabilizes within rounds of GST; heartbeat-Ω needs ids but stabilizes too (its clock is event-time, not rounds)"
    ~headers:
      [ "gst(rounds)"; "pseudo-stab-round"; "pseudo-#leaders"; "hb-omega-stab-time" ]
    ~rows

(* --- T10c: register emulation comparison --------------------------------- *)

let t10_registers () =
  let n = 5 in
  let abd_stats seed =
    let config = B.Event_net.default_config ~n ~seed ~horizon:20_000 () in
    let rng = Rng.make (seed + 3) in
    let injections =
      List.concat_map
        (fun pid ->
          List.init 4 (fun i ->
              let time = Rng.int_in rng 1 400 in
              let cmd =
                if (i + pid) mod 2 = 0 then B.Abd.Write ((100 * pid) + i) else B.Abd.Read
              in
              (time, pid, cmd)))
        (List.init n Fun.id)
    in
    let out = B.Abd.run ~config ~injections in
    let lat =
      List.map (fun (r : B.Abd.op_record) -> float_of_int (r.completed - r.started)) out.ops
    in
    (lat, List.length (B.Abd.check_atomic out.ops))
  in
  let ws_stats seed =
    let out = Exp_weakset.t6_run ~n ~seed in
    let lat =
      List.filter_map
        (fun (r : C.Register_of_weak_set.record) ->
          match r.completed with
          | Some c when r.rank <> None -> Some (float_of_int (c - r.invoked) /. 2.0)
          | Some _ | None -> None)
        out.records
    in
    (lat, List.length (C.Register_of_weak_set.check_regular out.records))
  in
  let abd = List.map abd_stats (Runs.seeds 10) in
  let ws = List.map ws_stats (Runs.seeds 10) in
  let lat l = Stats.mean (List.concat_map fst l) in
  let viol l = List.fold_left (fun acc (_, v) -> acc + v) 0 l in
  Table.make ~id:"T10c" ~title:"Register emulations: ABD vs weak-set register (n=5)"
    ~claim:"context — with ids+majority you get atomicity; anonymously you still get regularity for any number of crashes"
    ~expectation:"0 violations on both; latencies are in different clocks (time units vs rounds)"
    ~headers:[ "emulation"; "guarantee"; "fault model"; "mean-latency"; "violations" ]
    ~rows:
      [
        [ "ABD [2]"; "atomic"; "minority crashes"; Table.cell_float (lat abd); Table.cell_int (viol abd) ];
        [ "weak-set (Prop. 1)"; "regular"; "any crashes"; Table.cell_float (lat ws); Table.cell_int (viol ws) ];
      ]
