module G = Anon_giraf
module C = Anon_consensus

(* --- A1: the non-leader proposal machinery -------------------------------- *)

module Ess_silent = C.Ess_consensus.Ablation (struct
  let merge = `Min
  let silent_non_leaders = true
  let converged_disjunct = true
end)

module Ess_leaders_only = C.Ess_consensus.Ablation (struct
  let merge = `Min
  let silent_non_leaders = false
  let converged_disjunct = false
end)

let a1 () =
  let n = 8 in
  let batch (module A : G.Intf.ALGORITHM) gst =
    let module B = Runs.Of (A) in
    B.batch ~horizon:600
      ~inputs:(Exp_consensus.ordered_inputs ~n)
      ~crash:(fun _ -> G.Crash.none ~n)
      ~adversary:(fun _ -> G.Adversary.ess_blocking ~gst ())
      ~seeds:(Runs.seeds 10) ()
  in
  let row name (module A : G.Intf.ALGORITHM) gst =
    let b = batch (module A) gst in
    [
      name;
      Table.cell_int gst;
      Printf.sprintf "%d/%d" b.decided b.runs;
      Table.cell_int (Runs.safety_violations b);
      Table.cell_opt (Table.cell_float ~decimals:1) (Runs.mean_decision b);
    ]
  in
  Table.make ~id:"A1" ~title:"Ablation: the non-leader proposal machinery of Alg. 3"
    ~claim:"§4.1 — non-leaders must keep relaying; the converged clause (line 15) lets followers re-propose the agreed value"
    ~expectation:"silent ≡ paper in lockstep runs (the ⊥ device targets unsynchronized rounds); leaders-only stalls each decision until the next source out-counts the halted leader's frozen history"
    ~headers:[ "algorithm"; "gst"; "decided"; "safety-viol"; "mean-round" ]
    ~rows:
      [
        row "ESS (paper)" (module C.Ess_consensus) 10;
        row "ESS silent (A1a)" (module Ess_silent) 10;
        row "ESS leaders-only (A1b)" (module Ess_leaders_only) 10;
        row "ESS (paper)" (module C.Ess_consensus) 40;
        row "ESS silent (A1a)" (module Ess_silent) 40;
        row "ESS leaders-only (A1b)" (module Ess_leaders_only) 40;
      ]

(* --- A2: environment-definition sensitivity ------------------------------ *)

(* §2.3 literally says a source's timely link reaches every CORRECT
   process; the Lemma 1 proof uses the stronger "every process that enters
   the round". Under the literal reading this schedule is admissible:
   p0 is faulty (crashes at round 12), proposes 9, and receives nothing
   timely — all sources only serve the correct {p1, p2}, who propose 1.
   p0 then sees only its own value written twice in a row and decides 9 at
   round 6, while p1/p2 decide 1: uniform agreement breaks for the paper's
   own algorithm. Under the strengthened obligation (our default model,
   enforced by the trace checker) the schedule is flagged inadmissible. *)
let a2_adversary () =
  let plan (ctx : G.Adversary.ctx) _rng =
    let source =
      match List.filter (fun p -> List.mem p ctx.correct) ctx.senders with
      | [] -> None
      | s :: _ -> Some s
    in
    let deliveries =
      List.map
        (fun p ->
          let plan_receiver q =
            let timely = Some p = source && List.mem q ctx.correct in
            { G.Adversary.receiver = q;
              arrival = (if timely then ctx.round else ctx.round + 1) }
          in
          (p, List.map plan_receiver (List.filter (fun q -> q <> p) ctx.alive)))
        ctx.senders
    in
    { G.Adversary.source; deliveries }
  in
  G.Adversary.scripted ~name:"a2-literal-ms" ~env:(G.Env.Es { gst = 1_000_000 }) plan

let a2 () =
  let run (module A : G.Intf.ALGORITHM) name =
    let module R = G.Runner.Make (A) in
    let crash =
      G.Crash.of_events ~n:3
        [ { G.Crash.pid = 0; round = 12; broadcast = G.Crash.Silent } ]
    in
    let config =
      G.Runner.default_config ~horizon:60 ~seed:1 ~inputs:[ 9; 1; 1 ] ~crash
        (a2_adversary ())
    in
    let out = R.run config in
    let agreement =
      List.filter
        (function G.Checker.Agreement_violation _ -> true | _ -> false)
        (G.Checker.check_consensus ~expect_termination:false out.trace)
    in
    let env = G.Checker.check_env out.trace in
    let decisions =
      String.concat " "
        (List.map (fun (p, r, v) -> Printf.sprintf "p%d:%d@r%d" p v r) out.decisions)
    in
    [
      name;
      decisions;
      Table.cell_int (List.length agreement);
      Table.cell_int (List.length env);
    ]
  in
  Table.make ~id:"A2"
    ~title:"Model sensitivity: sources timely to correct-only vs to all alive"
    ~claim:"Lemma 1's proof needs sources to reach every process entering the round; §2.3's literal 'every correct process' is too weak for uniform agreement"
    ~expectation:"a faulty isolated proposer decides its own value (agreement violation); the checker flags the schedule as inadmissible under the strengthened model"
    ~headers:[ "algorithm"; "decisions"; "agreement-viol"; "env-viol (strengthened model)" ]
    ~rows:
      [
        run (module C.Es_consensus) "ES (paper), literal-§2.3 schedule";
        run (module C.Es_consensus.No_written_old_guard) "ES no-guard, same schedule";
      ]

(* --- A3: max-merge of counter tables ------------------------------------- *)

module Ess_max = C.Ess_consensus.Ablation (struct
  let merge = `Max
  let silent_non_leaders = false
  let converged_disjunct = true
end)

module Min_leaders_only = Ess_leaders_only

module Max_leaders_only = C.Ess_consensus.Ablation (struct
  let merge = `Max
  let silent_non_leaders = false
  let converged_disjunct = false
end)

(* One instrumented blocking run: decision round plus the size of the
   self-leader set at the end (just before decisions). The post-GST pinned
   source is the LAST pid, which pre-GST never led — so the election has
   real work to do. *)
let a3_run (type s) (module A : C.Ess_consensus.OBSERVABLE with type state = s)
    ~gst ~seed =
  let n = 8 in
  let leaders : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let observe ~pid ~round st =
    if A.is_leader st then
      Hashtbl.replace leaders round
        (pid :: Option.value ~default:[] (Hashtbl.find_opt leaders round))
  in
  let module R = G.Runner.Make (A) in
  let config =
    G.Runner.default_config ~horizon:1200 ~seed
      ~inputs:(Exp_consensus.ordered_inputs ~n (Anon_kernel.Rng.make seed))
      ~crash:(G.Crash.none ~n)
      (G.Adversary.ess_blocking ~gst ~source:(n - 1) ())
  in
  let out = R.run ~observe config in
  let last = out.rounds_executed - 1 in
  let sizes =
    List.init (max 1 last) (fun i ->
        List.length
          (List.sort_uniq Int.compare
             (Option.value ~default:[] (Hashtbl.find_opt leaders (i + 1)))))
  in
  let mean_leaders = Anon_kernel.Stats.mean (List.map float_of_int sizes) in
  (G.Runner.decision_round out, mean_leaders,
   List.length (G.Checker.check_consensus ~expect_termination:false out.trace))

let a3 () =
  let gst = 20 in
  let row (type s) name (module A : C.Ess_consensus.OBSERVABLE with type state = s) =
    let runs = List.map (fun seed -> a3_run (module A) ~gst ~seed) (Runs.seeds 10) in
    let decisions = List.filter_map (fun (d, _, _) -> d) runs in
    let leaders = List.map (fun (_, l, _) -> l) runs in
    let safety = List.fold_left (fun acc (_, _, s) -> acc + s) 0 runs in
    [
      name;
      Printf.sprintf "%d/%d" (List.length decisions) (List.length runs);
      (match decisions with
      | [] -> "-"
      | ds -> Table.cell_float (Anon_kernel.Stats.mean (List.map float_of_int ds)));
      Table.cell_float (Anon_kernel.Stats.mean leaders);
      Table.cell_int safety;
    ]
  in
  Table.make ~id:"A3" ~title:"Ablation: counter tables merged with max instead of min"
    ~claim:"Alg. 3 line 8 — min-merge drags stale counters down; with max, self-counters never decay and everybody stays a leader (the election is void)"
    ~expectation:"min: leader set collapses (mean ~2); max: everybody leads (mean ~n). Decisions stall only when leadership gates proposals (leaders-only rows, cf. A1b): min+LO pays the counter-overtake delay, max+LO decides fast because everybody is a leader"
    ~headers:[ "algorithm"; "decided"; "mean-round"; "mean-leaders/round"; "safety-viol" ]
    ~rows:
      [
        row "ESS min (paper)" (module C.Ess_consensus);
        row "ESS max-merge" (module Ess_max);
        row "ESS min, leaders-only" (module Min_leaders_only);
        row "ESS max, leaders-only" (module Max_leaders_only);
      ]
