(** T12 — unsynchronized rounds (full GIRAF generality).

    The lockstep experiments cover the paper's environments; this table
    exercises the skewed runner: relay-based timeliness, behaviour under
    uniform pace (must match lockstep synchrony), and the instructive
    failures when no environment obligation holds — mild skew splits
    agreement occasionally, a racing schedule splits it every run. That
    is precisely why MS's per-round source is needed even for safety. *)

val t12 : unit -> Table.t
