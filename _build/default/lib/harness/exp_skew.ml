open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module Skew = G.Skew_runner.Make (C.Es_consensus)

let count_violations which (out : G.Skew_runner.outcome) =
  List.length
    (List.filter which (G.Checker.check_consensus ~expect_termination:false out.trace))

let agreement = function G.Checker.Agreement_violation _ -> true | _ -> false
let validity = function G.Checker.Validity_violation _ -> true | _ -> false

let run ~seed ~pace ~delay ~n =
  let rng = Rng.make seed in
  let config =
    G.Skew_runner.default_config ~seed ~horizon_ticks:2_000 ~max_rounds:200 ~pace
      ~delay
      ~inputs:(Rng.shuffle rng (List.init n (fun i -> i + 1)))
      ~crash:(G.Crash.none ~n) ()
  in
  Skew.run config

let t12 () =
  let seeds = Runs.seeds 10 in
  let batch ~pace ~delay ~n =
    let outs = List.map (fun seed -> run ~seed ~pace ~delay ~n) seeds in
    let decided = List.length (List.filter (fun (o : G.Skew_runner.outcome) -> o.all_correct_decided) outs) in
    let agr = List.fold_left (fun acc o -> acc + count_violations agreement o) 0 outs in
    let validity_violations =
      List.fold_left (fun acc o -> acc + count_violations validity o) 0 outs
    in
    let rounds =
      List.filter_map
        (fun (o : G.Skew_runner.outcome) ->
          if o.all_correct_decided then
            Some
              (float_of_int (List.fold_left (fun acc (_, r, _) -> max acc r) 0 o.decisions))
          else None)
        outs
    in
    [
      Printf.sprintf "%d/%d" decided (List.length outs);
      (match rounds with [] -> "-" | rs -> Table.cell_float (Stats.mean rs));
      Table.cell_int agr;
      Table.cell_int validity_violations;
    ]
  in
  let row name ~pace ~delay ~n = name :: batch ~pace ~delay ~n in
  Table.make ~id:"T12" ~title:"Unsynchronized rounds (skewed runner, relay semantics)"
    ~claim:"Alg. 1 in full generality — message-set relays carry timeliness; without any source obligation even safety is forfeit"
    ~expectation:"uniform pace behaves like lockstep synchrony (safe); any obligation-free skew can split agreement - occasionally for mild skew, in every run for the racing schedule; validity always holds"
    ~headers:[ "schedule (n=4)"; "decided"; "mean-round"; "agreement-viol"; "validity-viol" ]
    ~rows:
      [
        row "uniform pace 1, delay 1"
          ~pace:(G.Skew_runner.fixed_pace 1)
          ~delay:(G.Skew_runner.fixed_delay 1) ~n:4;
        row "random pace <=3, delay <=3"
          ~pace:(G.Skew_runner.uniform_pace ~max:3)
          ~delay:(G.Skew_runner.uniform_delay ~max:3) ~n:4;
        row "racing pace 1, delay 30 (no source)"
          ~pace:(G.Skew_runner.fixed_pace 1)
          ~delay:(G.Skew_runner.fixed_delay 30) ~n:4;
      ]
