(** Experiments on the weak-set layer: T5 (Alg. 4 latency), T6 (register of
    Prop. 1), T7 (MS emulation of Alg. 5 / Thm. 4) and T11 (register-based
    constructions of Props. 2–3). *)

val t5 : unit -> Table.t
(** add() completion latency in the MS environment vs n and link noise. *)

val t6 : unit -> Table.t
(** Regular-register semantics over random read/write workloads. *)

val t6_run :
  n:int -> seed:int -> Anon_consensus.Register_of_weak_set.outcome
(** One seeded register workload over the MS weak-set (shared with the
    baseline comparison T10c). *)

val t7 : unit -> Table.t
(** The emulated environment satisfies the MS property (Thm. 4). *)

val t11 : unit -> Table.t
(** Weak-set semantics of the SWMR/MWMR register constructions. *)
