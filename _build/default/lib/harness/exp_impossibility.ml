module G = Anon_giraf
module C = Anon_consensus
module Es_runs = Runs.Of (C.Es_consensus)

let t8 () =
  let horizon = 600 in
  let row n =
    let batch =
      Es_runs.batch ~horizon
        ~inputs:(Exp_consensus.ordered_inputs ~n)
        ~crash:(fun _ -> G.Crash.none ~n)
        ~adversary:(fun _ -> G.Adversary.es_blocking ~gst:max_int ())
        ~seeds:(Runs.seeds 5) ()
    in
    [
      Table.cell_int n;
      Table.cell_int batch.runs;
      Table.cell_int batch.decided;
      Table.cell_int (Runs.safety_violations batch);
      Table.cell_int batch.env_violations;
      Table.cell_int horizon;
    ]
  in
  Table.make ~id:"T8"
    ~title:"FLP corollary: Alg. 2 under a never-stabilizing MS schedule"
    ~claim:"Thm. 4 + FLP — MS alone cannot solve consensus; the blocking schedule runs forever"
    ~expectation:"0 runs decide within the horizon; 0 safety violations"
    ~headers:[ "n"; "runs"; "decided"; "safety-viol"; "env-viol"; "horizon" ]
    ~rows:(List.map row [ 2; 4; 8; 16 ])

let t9 () =
  let row (module Cand : C.Sigma.CANDIDATE) =
    let verdict = C.Sigma.two_run_attack (module Cand) ~horizon:200 in
    [ Cand.name; Format.asprintf "%a" C.Sigma.pp_verdict verdict ]
  in
  Table.make ~id:"T9" ~title:"Prop. 4: the two-run adversary vs Σ emulators"
    ~claim:"Σ cannot be emulated in MS, even with known ids and n"
    ~expectation:"every candidate loses: completeness or intersection violated"
    ~headers:[ "candidate"; "verdict" ]
    ~rows:(List.map row C.Sigma.builtin_candidates)
