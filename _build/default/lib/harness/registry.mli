(** The experiment registry: every table/figure of EXPERIMENTS.md, keyed by
    id, in presentation order. *)

type experiment = {
  id : string;
  build : unit -> Table.t;
}

val all : experiment list
val find : string -> experiment option
val run_all : Format.formatter -> unit
(** Build and render every table (the main entry point of the bench
    harness). *)
