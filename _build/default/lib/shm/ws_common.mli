(** Shared plumbing of the register-based weak-set constructions: the
    client operation alphabet and the translation from scheduler
    completions to checkable weak-set operation records. *)

type op = Add of Anon_kernel.Value.t | Get

type result = Added of Anon_kernel.Value.t | Got of Anon_kernel.Value.Set.t

val ops_of_run :
  n:int ->
  script:(int -> op list) ->
  result Scheduler.outcome ->
  Anon_giraf.Checker.ws_op list
(** Completed operations become [Ws_add]/[Ws_get] records on the step
    clock; an [Add] interrupted by a crash is recorded as an incomplete
    add so the checker knows its value may legitimately surface. *)
