type ('v, 'r) t =
  | Read of int * ('v -> ('v, 'r) t)
  | Write of int * 'v * (unit -> ('v, 'r) t)
  | Query of (int -> ('v, 'r) t)
  | Done of 'r

let read r k = Read (r, k)
let write r v k = Write (r, v, k)
let query k = Query k
let return r = Done r

let read_all ~lo ~hi k =
  let rec go i acc =
    if i > hi then k (List.rev acc) else Read (i, fun v -> go (i + 1) (v :: acc))
  in
  go lo []
