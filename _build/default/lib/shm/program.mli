(** Shared-memory programs in continuation-passing style.

    A program is a tree of atomic steps: each [Read]/[Write] touches one
    register and continues with the observed value. The scheduler
    interleaves programs one atomic step at a time, which makes every
    execution linearizable by construction — registers of the paper are
    abstract atomic objects, and this is their standard operational
    model. *)

type ('v, 'r) t =
  | Read of int * ('v -> ('v, 'r) t)
  | Write of int * 'v * (unit -> ('v, 'r) t)
  | Query of (int -> ('v, 'r) t)
      (** Ask the scheduler's oracle (e.g. an Ω leader hint) — a local
          step, no register access. *)
  | Done of 'r

val read : int -> ('v -> ('v, 'r) t) -> ('v, 'r) t
val write : int -> 'v -> (unit -> ('v, 'r) t) -> ('v, 'r) t
val query : (int -> ('v, 'r) t) -> ('v, 'r) t
val return : 'r -> ('v, 'r) t

val read_all : lo:int -> hi:int -> ('v list -> ('v, 'r) t) -> ('v, 'r) t
(** Read registers [lo..hi] one atomic step at a time (low to high) and
    continue with the values in index order. *)
