open Anon_kernel

type op = Ws_common.op = Add of Value.t | Get

type outcome = { ops : Anon_giraf.Checker.ws_op list; steps : int }

let add_prog v = Program.write v true (fun () -> Program.return (Ws_common.Added v))

let get_prog ~domain =
  Program.read_all ~lo:0 ~hi:(domain - 1) (fun flags ->
      let set =
        List.fold_left
          (fun (i, acc) flag -> (i + 1, if flag then Value.Set.add i acc else acc))
          (0, Value.Set.empty) flags
        |> snd
      in
      Program.return (Ws_common.Got set))

let run ~config ~domain ~workload =
  let registers = Array.make domain false in
  let script pid = Option.value ~default:[] (List.assoc_opt pid workload) in
  let clients ~pid ~op_index =
    match List.nth_opt (script pid) op_index with
    | None -> None
    | Some (Add v) ->
      if v < 0 || v >= domain then invalid_arg "Weak_set_mwmr: value out of domain";
      Some (add_prog v)
    | Some Get -> Some (get_prog ~domain)
  in
  let out = Scheduler.run ~config ~registers ~clients () in
  { ops = Ws_common.ops_of_run ~n:config.Scheduler.n ~script out; steps = out.steps }
