open Anon_kernel
module Checker = Anon_giraf.Checker

type ballot = { mbal : int; bal : int; inp : Value.t option }
type reg = Dec of Value.t option | Bal of ballot

type outcome = {
  decisions : (int * Value.t * int * int) list;
  steps : int;
  undecided : int list;
}

let bal_reg i = 1 + i

let bal_of = function
  | Bal b -> b
  | Dec _ -> invalid_arg "Omega_consensus: decision register where ballot expected"

(* The value to propose at a ballot: the input of the highest accepted
   ballot seen, or the process's own proposal if nobody accepted yet. *)
let choose_input ~own entries =
  let best =
    List.fold_left
      (fun acc e ->
        match e.inp with
        | Some v when e.bal > 0 -> (
          match acc with
          | Some (b, _) when b >= e.bal -> acc
          | Some _ | None -> Some (e.bal, v))
        | Some _ | None -> acc)
      None
      (List.map (fun r -> bal_of r) entries)
  in
  match best with Some (_, v) -> v | None -> own

let consensus_prog ~n ~me ~proposal =
  let open Program in
  (* Local copies of the owned register's fields: only [me] writes it. *)
  let rec main ~bal ~inp ~ballot =
    (* Poll the decision register first. *)
    read 0 (function
      | Dec (Some v) -> return v
      | Dec None | Bal _ ->
        query (fun leader ->
            if leader <> me then main ~bal ~inp ~ballot
            else phase1 ~bal ~inp ~ballot))
  and phase1 ~bal ~inp ~ballot =
    write (bal_reg me) (Bal { mbal = ballot; bal; inp }) (fun () ->
        read_all ~lo:1 ~hi:n (fun entries ->
            if List.exists (fun e -> (bal_of e).mbal > ballot) entries then
              main ~bal ~inp ~ballot:(ballot + n)
            else
              let v = choose_input ~own:proposal entries in
              phase2 ~v ~ballot))
  and phase2 ~v ~ballot =
    write (bal_reg me) (Bal { mbal = ballot; bal = ballot; inp = Some v }) (fun () ->
        read_all ~lo:1 ~hi:n (fun entries ->
            if List.exists (fun e -> (bal_of e).mbal > ballot) entries then
              main ~bal:ballot ~inp:(Some v) ~ballot:(ballot + n)
            else write 0 (Dec (Some v)) (fun () -> return v)))
  in
  main ~bal:0 ~inp:None ~ballot:(me + 1)

let run ~config ~proposals ~oracle =
  let n = config.Scheduler.n in
  if List.length proposals <> n then
    invalid_arg "Omega_consensus.run: proposals size mismatch";
  let registers =
    Array.init (n + 1) (fun i ->
        if i = 0 then Dec None else Bal { mbal = 0; bal = 0; inp = None })
  in
  let proposals_a = Array.of_list proposals in
  let clients ~pid ~op_index =
    if op_index > 0 then None
    else Some (consensus_prog ~n ~me:pid ~proposal:proposals_a.(pid))
  in
  let out = Scheduler.run ~config ~registers ~oracle ~clients () in
  let decisions =
    List.map
      (fun (c : Value.t Scheduler.completion) -> (c.pid, c.result, c.invoked, c.completed))
      out.completions
  in
  { decisions; steps = out.steps; undecided = out.pending }

let stabilizing_oracle ~n ~stabilize_at ~leader ~seed ~pid ~step =
  if step >= stabilize_at then leader
  else
    (* Deterministic pseudo-random pre-stabilization hints. *)
    let h = Int64.to_int (Rng.bits64 (Rng.make (seed + (step * 8191) + pid))) in
    abs h mod n

let check ~proposals (out : outcome) =
  let validity =
    List.filter_map
      (fun (pid, v, _, _) ->
        if List.exists (Value.equal v) proposals then None
        else Some (Checker.Validity_violation { pid; value = v }))
      out.decisions
  in
  let agreement =
    match out.decisions with
    | [] -> []
    | (p1, v1, _, _) :: rest ->
      List.filter_map
        (fun (p2, v2, _, _) ->
          if Value.equal v1 v2 then None
          else Some (Checker.Agreement_violation { p1; v1; p2; v2 }))
        rest
  in
  validity @ agreement
