(** Baseline: consensus from atomic registers plus the leader failure
    detector Ω, in a known network — the route the paper's reference [4]
    takes, and the classical contrast to the anonymous pseudo-leader of
    Alg. 3.

    The implementation is single-memory Disk-Paxos: process [i] owns a
    ballot register [(mbal, bal, inp)]; a process that believes itself
    leader runs ballots [i + 1, i + n + 1, …] — announce the ballot, read
    everybody, adopt the value of the highest accepted ballot, accept, read
    everybody again, and decide through a decision register if no higher
    ballot intervened. Non-leaders poll the decision register. Termination
    needs Ω: once the oracle points every process at one correct leader,
    its next ballot succeeds. *)

type ballot = { mbal : int; bal : int; inp : Anon_kernel.Value.t option }
type reg = Dec of Anon_kernel.Value.t option | Bal of ballot

type outcome = {
  decisions : (int * Anon_kernel.Value.t * int * int) list;
      (** [(pid, value, invoked_step, decided_step)], chronological. *)
  steps : int;
  undecided : int list;  (** Non-crashed clients without a decision. *)
}

val run :
  config:Scheduler.config ->
  proposals:Anon_kernel.Value.t list ->
  oracle:(pid:int -> step:int -> int) ->
  outcome
(** [oracle] is the Ω hint (who each process currently believes is
    leader); termination requires it to eventually settle on one correct
    process for everybody. *)

val stabilizing_oracle :
  n:int -> stabilize_at:int -> leader:int -> seed:int ->
  pid:int -> step:int -> int
(** A convenience oracle: uniformly random hints before [stabilize_at],
    the fixed [leader] afterwards. *)

val check : proposals:Anon_kernel.Value.t list -> outcome ->
  Anon_giraf.Checker.violation list
(** Validity and agreement over the decisions. *)
