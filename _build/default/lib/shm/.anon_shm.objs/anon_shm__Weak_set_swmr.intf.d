lib/shm/weak_set_swmr.mli: Anon_giraf Anon_kernel Scheduler Ws_common
