lib/shm/scheduler.mli: Program
