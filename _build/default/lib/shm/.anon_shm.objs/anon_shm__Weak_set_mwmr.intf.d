lib/shm/weak_set_mwmr.mli: Anon_giraf Anon_kernel Scheduler Ws_common
