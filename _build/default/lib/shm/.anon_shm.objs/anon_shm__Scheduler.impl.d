lib/shm/scheduler.ml: Anon_kernel Array Fun List Program Rng Stdlib
