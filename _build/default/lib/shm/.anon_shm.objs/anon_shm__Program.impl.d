lib/shm/program.ml: List
