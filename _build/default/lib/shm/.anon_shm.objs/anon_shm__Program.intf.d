lib/shm/program.mli:
