lib/shm/omega_consensus.ml: Anon_giraf Anon_kernel Array Int64 List Program Rng Scheduler Value
