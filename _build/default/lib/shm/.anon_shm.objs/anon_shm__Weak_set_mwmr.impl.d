lib/shm/weak_set_mwmr.ml: Anon_giraf Anon_kernel Array List Option Program Scheduler Value Ws_common
