lib/shm/ws_common.mli: Anon_giraf Anon_kernel Scheduler
