lib/shm/ws_common.ml: Anon_giraf Anon_kernel Fun List Scheduler Value
