lib/shm/weak_set_swmr.ml: Anon_giraf Anon_kernel Array List Option Program Scheduler Value Ws_common
