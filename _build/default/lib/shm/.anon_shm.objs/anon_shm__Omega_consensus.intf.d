lib/shm/omega_consensus.mli: Anon_giraf Anon_kernel Scheduler
