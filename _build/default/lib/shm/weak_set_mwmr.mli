(** Proposition 3 — a weak-set from multi-writer multi-reader registers,
    when the value domain is finite.

    One boolean register per possible value: [add v] sets register [v]
    (one atomic step); [get] scans the domain. No process identities are
    needed anywhere — this construction works for anonymous processes,
    which is exactly why the paper cares about it. *)

type op = Ws_common.op = Add of Anon_kernel.Value.t | Get

type outcome = {
  ops : Anon_giraf.Checker.ws_op list;
  steps : int;
}

val run :
  config:Scheduler.config ->
  domain:int ->
  workload:(int * op list) list ->
  outcome
(** [domain] is the (finite) number of possible values; every added value
    must lie in [\[0, domain)]. *)
