open Anon_kernel
module Checker = Anon_giraf.Checker

type op = Add of Value.t | Get
type result = Added of Value.t | Got of Value.Set.t

let ops_of_run ~n ~script (out : result Scheduler.outcome) =
  let completed =
    List.map
      (fun (c : result Scheduler.completion) ->
        match c.result with
        | Added v ->
          Checker.Ws_add
            {
              add_client = c.pid;
              add_value = v;
              add_invoked = c.invoked;
              add_completed = Some c.completed;
            }
        | Got set ->
          Checker.Ws_get
            {
              get_client = c.pid;
              get_result = set;
              get_invoked = c.invoked;
              get_completed = c.completed;
            })
      out.completions
  in
  let interrupted =
    List.concat_map
      (fun pid ->
        let done_ops =
          List.length
            (List.filter
               (fun (c : result Scheduler.completion) -> c.pid = pid)
               out.completions)
        in
        match List.nth_opt (script pid) done_ops with
        | Some (Add v) when List.mem pid out.pending ->
          [
            Checker.Ws_add
              { add_client = pid; add_value = v; add_invoked = 0; add_completed = None };
          ]
        | Some (Add _) | Some Get | None -> [])
      (List.init n Fun.id)
  in
  completed @ interrupted
