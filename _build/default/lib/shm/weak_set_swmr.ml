open Anon_kernel

type op = Ws_common.op = Add of Value.t | Get

type outcome = { ops : Anon_giraf.Checker.ws_op list; steps : int }

let add_prog ~me v =
  Program.read me (fun own ->
      Program.write me (Value.Set.add v own) (fun () ->
          Program.return (Ws_common.Added v)))

let get_prog ~n =
  Program.read_all ~lo:0 ~hi:(n - 1) (fun sets ->
      Program.return
        (Ws_common.Got (List.fold_left Value.Set.union Value.Set.empty sets)))

let run ~config ~workload =
  let n = config.Scheduler.n in
  let registers = Array.make n Value.Set.empty in
  let script pid = Option.value ~default:[] (List.assoc_opt pid workload) in
  let clients ~pid ~op_index =
    match List.nth_opt (script pid) op_index with
    | None -> None
    | Some (Add v) -> Some (add_prog ~me:pid v)
    | Some Get -> Some (get_prog ~n)
  in
  let out = Scheduler.run ~config ~registers ~clients () in
  { ops = Ws_common.ops_of_run ~n ~script out; steps = out.steps }
