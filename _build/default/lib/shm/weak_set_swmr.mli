(** Proposition 2 — a weak-set from single-writer multi-reader registers,
    when the set of participating processes is known.

    Process [i] owns register [i], holding the set of values it has added.
    [add v] reads the own register and writes it back with [v] included
    (two atomic steps, safe because only the owner writes); [get] reads all
    [n] registers and returns their union. Both are wait-free. *)

type op = Ws_common.op = Add of Anon_kernel.Value.t | Get

type outcome = {
  ops : Anon_giraf.Checker.ws_op list;  (** On the scheduler's step clock. *)
  steps : int;
}

val run :
  config:Scheduler.config -> workload:(int * op list) list -> outcome
(** Execute per-process operation scripts under the configured
    interleaving/crash schedule. *)
