(** An abstract, atomic weak-set object with adversary-controlled operation
    timing, on a discrete step clock.

    This is the shared object Alg. 5 runs against: [add] takes an
    adversary-chosen number of steps and the value becomes visible at an
    adversary-chosen instant within the operation interval; [get] is
    instantaneous. The weak-set axioms hold by construction:

    - a [get] returns every value whose [add] completed before it;
    - a [get] never returns a value whose [add] has not started;
    - values of concurrent [add]s may or may not be returned, at the
      adversary's discretion (the visibility instant). *)

type 'a t

val create : compare:('a -> 'a -> int) -> unit -> 'a t

val begin_add : 'a t -> now:int -> latency:int -> ?visible_after:int -> 'a -> unit
(** Start adding at step [now]; the add completes at [now + latency]
    ([latency >= 1]) and the value becomes visible to [get]s from step
    [now + visible_after] on ([1 <= visible_after <= latency], default
    [latency]). *)

val completed : 'a t -> now:int -> 'a -> bool
(** Whether the add of this value has completed by step [now]. *)

val get : 'a t -> now:int -> 'a list
(** Values visible at step [now], sorted by [compare]. *)

val all_started : 'a t -> 'a list
(** Every value whose add has started (diagnostics / checking). *)
