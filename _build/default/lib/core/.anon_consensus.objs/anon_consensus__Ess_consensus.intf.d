lib/core/ess_consensus.mli: Anon_giraf Anon_kernel
