lib/core/weak_set_ms.ml: Anon_giraf Anon_kernel List Value
