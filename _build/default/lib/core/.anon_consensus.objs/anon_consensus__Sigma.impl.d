lib/core/sigma.ml: Format Fun Hashtbl Int List Option Printf
