lib/core/ms_emulation.mli: Anon_giraf Anon_kernel
