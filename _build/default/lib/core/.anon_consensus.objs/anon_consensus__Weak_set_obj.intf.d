lib/core/weak_set_obj.mli:
