lib/core/weak_set_ms.mli: Anon_giraf Anon_kernel
