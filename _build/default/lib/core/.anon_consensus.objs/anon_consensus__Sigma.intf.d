lib/core/sigma.mli: Format
