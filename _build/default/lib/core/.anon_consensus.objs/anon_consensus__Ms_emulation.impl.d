lib/core/ms_emulation.ml: Anon_giraf Anon_kernel Array Hashtbl Int List Option Rng Stdlib Value
