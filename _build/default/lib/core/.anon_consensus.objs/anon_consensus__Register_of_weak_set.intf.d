lib/core/register_of_weak_set.mli: Anon_giraf Anon_kernel
