lib/core/es_consensus.ml: Anon_giraf Anon_kernel List Value
