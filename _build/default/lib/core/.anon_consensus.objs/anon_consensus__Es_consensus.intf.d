lib/core/es_consensus.mli: Anon_giraf Anon_kernel
