lib/core/weak_set_obj.ml: List Option
