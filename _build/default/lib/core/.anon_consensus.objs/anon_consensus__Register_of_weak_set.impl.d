lib/core/register_of_weak_set.ml: Anon_giraf Anon_kernel List Option Value Weak_set_ms
