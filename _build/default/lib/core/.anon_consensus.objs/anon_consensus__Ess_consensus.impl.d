lib/core/ess_consensus.ml: Anon_giraf Anon_kernel Counter_table Format History List Pvalue Value
