type 'a entry = { value : 'a; visible_at : int; complete_at : int }

type 'a t = { compare : 'a -> 'a -> int; mutable entries : 'a entry list }

let create ~compare () = { compare; entries = [] }

let begin_add t ~now ~latency ?visible_after value =
  if latency < 1 then invalid_arg "Weak_set_obj.begin_add: latency must be >= 1";
  let visible_after = Option.value ~default:latency visible_after in
  if visible_after < 1 || visible_after > latency then
    invalid_arg "Weak_set_obj.begin_add: visible_after out of range";
  if List.exists (fun e -> t.compare e.value value = 0) t.entries then ()
  else
    t.entries <-
      { value; visible_at = now + visible_after; complete_at = now + latency }
      :: t.entries

let completed t ~now value =
  List.exists (fun e -> t.compare e.value value = 0 && e.complete_at <= now) t.entries

let get t ~now =
  List.filter_map (fun e -> if e.visible_at <= now then Some e.value else None) t.entries
  |> List.sort t.compare

let all_started t = List.map (fun e -> e.value) t.entries |> List.sort t.compare
