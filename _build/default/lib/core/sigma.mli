(** Proposition 4 — Σ, the weakest failure detector for registers, cannot
    be emulated in the MS environment, {e even} with known identities and a
    known number of processes.

    This module makes the paper's two-run indistinguishability proof
    executable. A candidate Σ-emulator is any deterministic automaton that,
    in the known-network setting, maps what it heard each round to a list
    of trusted processes. The adversary builds:

    - run [r1]: [p0] is the only correct process, is the source of every
      round, and receives nothing from [p1]. Completeness forces [p0]'s
      output to become [{p0}] at some time [t].
    - run [r2]: identical for [p0] up to [t] (messages from [p1] merely
      delayed — admissible in MS since [p0] is the source), but [p0]
      crashes after [t] and [p1] is correct. Completeness forces [p1]'s
      output to become [{p1}]; [{p0} ∩ {p1} = ∅] violates intersection.

    Every candidate must lose one way or the other; [two_run_attack]
    reports which. *)

module type CANDIDATE = sig
  val name : string

  type state

  val init : n:int -> me:int -> state
  val step : state -> round:int -> heard_from:int list -> state
  (** One round: [heard_from] lists the senders of the messages received
      this round (always contains [me] — self-delivery). *)

  val trusted : state -> int list
end

type verdict =
  | Completeness_violated of { run : [ `R1 | `R2 ]; horizon : int }
      (** The candidate kept trusting a crashed process (or never settled)
          for the whole horizon — it is not a Σ emulator at all. *)
  | Intersection_violated of { t : int; out_p0 : int list; out_p1 : int list }
      (** The candidate satisfied completeness in both runs; the two
          outputs are disjoint, violating Σ's intersection property. *)

val pp_verdict : Format.formatter -> verdict -> unit

val two_run_attack : (module CANDIDATE) -> horizon:int -> verdict
(** Execute the proof's adversary against a candidate (with [n = 2]). *)

val builtin_candidates : (module CANDIDATE) list
(** Natural Σ-emulation attempts, all defeated:
    - trust whoever was heard from within a sliding window;
    - trust everybody ever heard from;
    - trust the static full membership;
    - trust a majority of the most recently heard. *)
