module type CANDIDATE = sig
  val name : string

  type state

  val init : n:int -> me:int -> state
  val step : state -> round:int -> heard_from:int list -> state
  val trusted : state -> int list
end

type verdict =
  | Completeness_violated of { run : [ `R1 | `R2 ]; horizon : int }
  | Intersection_violated of { t : int; out_p0 : int list; out_p1 : int list }

let pp_pids ppf pids =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    pids

let pp_verdict ppf = function
  | Completeness_violated { run; horizon } ->
    Format.fprintf ppf "completeness violated in %s within %d rounds"
      (match run with `R1 -> "r1" | `R2 -> "r2")
      horizon
  | Intersection_violated { t; out_p0; out_p1 } ->
    Format.fprintf ppf "intersection violated at t=%d: p0 trusts %a, p1 trusts %a" t
      pp_pids out_p0 pp_pids out_p1

let two_run_attack (module C : CANDIDATE) ~horizon =
  (* Run r1 at p0: hears only itself forever. Find the first time its
     output settles to {p0}. *)
  let rec r1 st round =
    if round > horizon then None
    else
      let st = C.step st ~round ~heard_from:[ 0 ] in
      match C.trusted st with
      | [ 0 ] -> Some round
      | _ -> r1 st (round + 1)
  in
  match r1 (C.init ~n:2 ~me:0) 1 with
  | None -> Completeness_violated { run = `R1; horizon }
  | Some t ->
    (* Run r2 at p1: p0's messages reach p1 timely while p0 is alive
       (p0 is the source up to t), then p0 crashes; p1 hears only itself
       afterwards. Completeness forces p1's output to become {p1}. *)
    let rec r2 st round =
      if round > t + horizon then None
      else
        let heard_from = if round <= t then [ 0; 1 ] else [ 1 ] in
        let st = C.step st ~round ~heard_from in
        match C.trusted st with
        | [ 1 ] -> Some round
        | _ -> r2 st (round + 1)
    in
    (match r2 (C.init ~n:2 ~me:1) 1 with
    | None -> Completeness_violated { run = `R2; horizon }
    | Some _ ->
      (* In r2, p0's view up to t is identical to r1 (indistinguishable),
         so at time t it outputs {p0}; p1 eventually outputs {p1}. *)
      Intersection_violated { t; out_p0 = [ 0 ]; out_p1 = [ 1 ] })

module Trust_window (W : sig
  val window : int
end) : CANDIDATE = struct
  let name = Printf.sprintf "trust-heard-within-%d" W.window

  type state = { me : int; n : int; last_heard : (int, int) Hashtbl.t; round : int }

  let init ~n ~me =
    let last_heard = Hashtbl.create 8 in
    Hashtbl.replace last_heard me 0;
    { me; n; last_heard; round = 0 }

  let step st ~round ~heard_from =
    List.iter (fun p -> Hashtbl.replace st.last_heard p round) heard_from;
    { st with round }

  let trusted st =
    List.filter
      (fun p ->
        match Hashtbl.find_opt st.last_heard p with
        | Some r -> st.round - r <= W.window
        | None -> false)
      (List.init st.n Fun.id)
end

module Trust_all_ever : CANDIDATE = struct
  let name = "trust-all-ever-heard"

  type state = { n : int; heard : int list }

  let init ~n ~me = { n; heard = [ me ] }

  let step st ~round:_ ~heard_from =
    { st with heard = List.sort_uniq Int.compare (heard_from @ st.heard) }

  let trusted st = st.heard
end

module Trust_static : CANDIDATE = struct
  let name = "trust-static-membership"

  type state = int

  let init ~n ~me:_ = n
  let step st ~round:_ ~heard_from:_ = st
  let trusted n = List.init n Fun.id
end

module Trust_majority : CANDIDATE = struct
  let name = "trust-most-recent-majority"

  type state = { me : int; n : int; last_heard : (int, int) Hashtbl.t }

  let init ~n ~me =
    let last_heard = Hashtbl.create 8 in
    Hashtbl.replace last_heard me max_int;
    { me; n; last_heard }

  let step st ~round ~heard_from =
    List.iter
      (fun p -> if p <> st.me then Hashtbl.replace st.last_heard p round)
      heard_from;
    st

  let trusted st =
    let quorum = (st.n / 2) + 1 in
    let ranked =
      List.init st.n Fun.id
      |> List.map (fun p ->
             (p, Option.value ~default:min_int (Hashtbl.find_opt st.last_heard p)))
      |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | (p, _) :: rest -> p :: take (k - 1) rest
    in
    List.sort Int.compare (take quorum ranked)
end

let builtin_candidates =
  [
    (module Trust_window (struct
      let window = 3
    end) : CANDIDATE);
    (module Trust_all_ever : CANDIDATE);
    (module Trust_static : CANDIDATE);
    (module Trust_majority : CANDIDATE);
  ]
