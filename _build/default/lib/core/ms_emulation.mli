(** Algorithm 5 — emulating the MS environment on top of a weak-set.

    Each process executes its GIRAF rounds against a shared weak-set: to
    send its round-[k] message it adds [⟨m, k⟩] to the set (blocking), then
    reads the set, delivers every not-yet-delivered pair, and triggers its
    next end-of-round. Theorem 4: the first process to complete its
    round-[k] add is a source for round [k] — everybody who finishes round
    [k] reads the set after its own add completed, hence after the
    source's, and must see the source's pair.

    Since weak-sets are implementable from registers alone (Props. 2–3),
    consensus over this emulated environment would contradict FLP — which
    is why MS, unlike ES/ESS, cannot solve consensus. The emulation lets us
    check both facts executably: the emulated trace satisfies the MS
    property (T7), and a hosted consensus algorithm with a symmetric
    schedule never terminates while remaining safe (T8). *)

type latency_fn = pid:int -> round:int -> Anon_kernel.Rng.t -> int
(** Steps an [add] takes: the adversary's only lever. *)

val uniform_latency : max:int -> latency_fn
val fixed_latency : int -> latency_fn

val alternating_latency : fast:int -> slow:int -> latency_fn
(** Round-robin "source": in round [k], process [k mod n] is fast — with
    [n] unknown here, the schedule alternates by parity of [pid + round],
    which for two processes yields the classic symmetry-preserving
    schedule. *)

type config = {
  inputs : Anon_kernel.Value.t list;
  crash : Anon_giraf.Crash.t;  (** Crash at emulated round [r]: the process
                                    stops before adding its round-[r] pair. *)
  horizon_rounds : int;
  max_steps : int;
  seed : int;
  latency : latency_fn;
  stop_on_decision : bool;
}

val default_config :
  ?horizon_rounds:int -> ?max_steps:int -> ?seed:int ->
  ?latency:latency_fn -> ?stop_on_decision:bool ->
  inputs:Anon_kernel.Value.t list -> crash:Anon_giraf.Crash.t -> unit -> config

type outcome = {
  trace : Anon_giraf.Trace.t;
      (** Emulated rounds, with [env = Ms]; feed to [Checker.check_env]. *)
  decisions : (int * int * Anon_kernel.Value.t) list;
  all_correct_decided : bool;
  steps : int;
  rounds_completed : int array;  (** Per pid, last end-of-round performed. *)
}

module Make (A : Anon_giraf.Intf.ALGORITHM) : sig
  val run : config -> outcome
end
