(** Proposition 1 — a regular multi-writer multi-reader register layered on
    a weak-set.

    A write reads the weak-set, counts its content (the proof stores the
    whole content and compares lengths; the cardinality is the only part
    used) and adds the pair [(value, rank)]; a read returns the value of
    the lexicographically maximal [(rank, value)] pair. Non-overlapping
    writes get strictly increasing ranks, so a read with no concurrent
    write returns the last value written.

    Pairs are packed into weak-set elements arithmetically; values must lie
    in [\[0, value_capacity)]. *)

val value_capacity : int
(** Exclusive upper bound on register values (2^20). *)

val encode : value:Anon_kernel.Value.t -> rank:int -> Anon_kernel.Value.t
val decode : Anon_kernel.Value.t -> Anon_kernel.Value.t * int
(** [decode e] is [(value, rank)]. *)

val read_of_set : Anon_kernel.Value.Set.t -> Anon_kernel.Value.t option
(** The register-read view of a weak-set content: the value of the maximal
    [(rank, value)] pair, [None] on the never-written register. *)

val rank_of_set : Anon_kernel.Value.Set.t -> int
(** The rank a write starting now would pick: the set's cardinality. *)

(** Register operations, their schedule, and the run record. *)
type op = Write of Anon_kernel.Value.t | Read

type record = {
  client : int;
  op : op;
  invoked : int;  (** Logical clock of the underlying run. *)
  completed : int option;  (** [None] if still pending at run end. *)
  result : Anon_kernel.Value.t option;  (** For completed reads. *)
  rank : int option;  (** For writes: the rank the write chose. *)
}

type outcome = {
  records : record list;
  ws_ops : Anon_giraf.Checker.ws_op list;  (** Underlying weak-set trace. *)
  trace : Anon_giraf.Trace.t;
}

val run :
  crash:Anon_giraf.Crash.t ->
  adversary:Anon_giraf.Adversary.t ->
  horizon:int ->
  seed:int ->
  workload:(int * (int * op) list) list ->
  outcome
(** Execute register operations over the MS weak-set (Alg. 4). Workload
    entries are [(pid, (earliest_round, op) list)]; operations run in order,
    one at a time per client. *)

val check_regular : record list -> Anon_giraf.Checker.violation list
(** Regular-register semantics with max-resolution of concurrent writes: a
    completed read must return either the strongest (max [(rank, value)])
    write completed before it started, or a value being written
    concurrently. *)
