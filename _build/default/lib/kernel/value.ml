type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp = Format.pp_print_int
let to_string = string_of_int

let max_of = function
  | [] -> invalid_arg "Value.max_of: empty list"
  | v :: vs -> List.fold_left max v vs

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let pp_set ppf s =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
    (Set.elements s)

let set_compare = Set.compare
let set_of_list = Set.of_list
