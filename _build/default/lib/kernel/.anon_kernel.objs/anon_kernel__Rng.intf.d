lib/kernel/rng.mli:
