lib/kernel/rng.ml: Array Int64 List
