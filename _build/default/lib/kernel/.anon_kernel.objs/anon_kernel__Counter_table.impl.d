lib/kernel/counter_table.ml: Format History Int List
