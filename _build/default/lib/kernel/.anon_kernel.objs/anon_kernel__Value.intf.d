lib/kernel/value.mli: Format Map Set
