lib/kernel/counter_table.mli: Format History
