lib/kernel/pvalue.ml: Format List Set Value
