lib/kernel/stats.ml: Float Format Hashtbl Int List Option
