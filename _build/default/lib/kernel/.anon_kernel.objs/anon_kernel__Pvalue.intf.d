lib/kernel/pvalue.mli: Format Set Value
