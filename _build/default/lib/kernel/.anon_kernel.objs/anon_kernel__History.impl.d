lib/kernel/history.ml: Format Hashtbl Int List Map Set Value
