lib/kernel/history.mli: Format Map Set Value
