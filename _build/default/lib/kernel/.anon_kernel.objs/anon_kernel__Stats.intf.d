lib/kernel/stats.mli: Format
