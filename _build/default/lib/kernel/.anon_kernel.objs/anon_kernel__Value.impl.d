lib/kernel/value.ml: Format Hashtbl Int List Map Set
