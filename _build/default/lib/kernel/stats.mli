(** Small summary-statistics helpers for the experiment harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

val summarize : float list -> summary
(** Summary of a non-empty sample. @raise Invalid_argument on []. *)

val summarize_ints : int list -> summary

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank on the sorted
    sample. Non-empty sample required. *)

val mean : float list -> float
val stddev : float list -> float

val histogram : bucket:int -> int list -> (int * int) list
(** [histogram ~bucket xs] buckets integer samples into intervals of width
    [bucket]; returns [(bucket_start, count)] pairs, increasing, skipping
    empty buckets. *)

val pp_summary : Format.formatter -> summary -> unit
