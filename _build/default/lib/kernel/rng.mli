(** Deterministic, splittable pseudo-random number generator (splitmix64).

    All randomness in the simulator flows through this module so that every
    run is reproducible from a single integer seed, independently of the
    OCaml standard library's global [Random] state. *)

type t
(** Mutable generator state. *)

val make : int -> t
(** [make seed] creates a generator from an integer seed. Equal seeds yield
    equal streams. *)

val copy : t -> t
(** Independent copy carrying the current state. *)

val split : t -> t
(** [split t] derives a new generator whose stream is statistically
    independent of [t]'s future stream, advancing [t] once. Used to give
    each simulated process or experiment its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). Requires
    [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. @raise Invalid_argument on []. *)

val pick_array : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform random permutation. *)

val subset : t -> p:float -> 'a list -> 'a list
(** Independent inclusion of each element with probability [p], preserving
    order. *)
