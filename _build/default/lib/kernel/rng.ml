type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 finalizer: good avalanche, passes BigCrush when driven by a
   Weyl sequence. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (bits64 t) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny w.r.t. 2^62. *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  x mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let subset t ~p l = List.filter (fun _ -> chance t p) l
