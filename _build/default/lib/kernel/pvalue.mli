(** Proposal values extended with the special value [⊥] (bottom).

    In the ESS consensus algorithm (Alg. 3), processes that do not consider
    themselves leaders propose [⊥] instead of staying silent: the safety
    argument needs every process to relay {e something} every round so that
    the current source's value reaches everybody. *)

type t = Bot | Val of Value.t

val bot : t
val v : Value.t -> t

val compare : t -> t -> int
(** Total order with [Bot] strictly below every [Val _]. *)

val equal : t -> t -> bool
val is_bot : t -> bool
val pp : Format.formatter -> t -> unit

val to_value : t -> Value.t option
(** [Some v] for [Val v], [None] for [Bot]. *)

module Set : Set.S with type elt = t

val pp_set : Format.formatter -> Set.t -> unit

val values_of_set : Set.t -> Value.t list
(** All non-[⊥] members, increasing. *)

val max_value : Set.t -> Value.t option
(** Maximum non-[⊥] member, i.e. [max (S \ {⊥})] — [None] if the set
    contains only [⊥] or is empty. *)

val subset_of_val_bot : Value.t -> Set.t -> bool
(** [subset_of_val_bot v s] is [s ⊆ {v, ⊥}] — the decision guard of
    Alg. 3 line 11. *)
