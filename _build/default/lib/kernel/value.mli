(** Consensus proposal values.

    The paper's algorithms only require a totally ordered value domain (they
    take maxima of non-empty sets); integers are sufficient and keep message
    comparison cheap. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val max_of : t list -> t
(** Maximum of a non-empty list. @raise Invalid_argument on []. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val pp_set : Format.formatter -> Set.t -> unit
(** Prints as [{v1, v2, ...}] in increasing order. *)

val set_compare : Set.t -> Set.t -> int
val set_of_list : t list -> Set.t
