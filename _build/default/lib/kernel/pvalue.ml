type t = Bot | Val of Value.t

let bot = Bot
let v x = Val x

let compare a b =
  match a, b with
  | Bot, Bot -> 0
  | Bot, Val _ -> -1
  | Val _, Bot -> 1
  | Val x, Val y -> Value.compare x y

let equal a b = compare a b = 0
let is_bot = function Bot -> true | Val _ -> false

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "⊥"
  | Val x -> Value.pp ppf x

let to_value = function Bot -> None | Val x -> Some x

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let pp_set ppf s =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
    (Set.elements s)

let values_of_set s =
  Set.fold (fun x acc -> match x with Bot -> acc | Val v -> v :: acc) s []
  |> List.rev

let max_value s =
  match Set.max_elt_opt s with
  | None | Some Bot -> None
  | Some (Val x) -> Some x

let subset_of_val_bot v s =
  Set.for_all (function Bot -> true | Val x -> Value.equal x v) s
