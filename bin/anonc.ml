(* anonc — command-line driver for the anonymous-consensus simulator.

   Subcommands:
     run        one consensus run (ES or ESS), with trace and checker output
     weakset    drive the MS weak-set with a random workload
     emulate    run Alg. 5's MS emulation hosting the ES algorithm
     sigma      replay the Prop. 4 two-run adversary
     metrics    run a seed batch with instrumentation on; print the merged snapshot
     fuzz       random-config fuzzing with shrinking + JSON repro/replay
     mc         bounded exhaustive model checking (symmetry-reduced)
     load       open-loop multi-shot load generator over the RSM layer
     live       consensus on the live async backend (threads + faulty wire)
     experiment run one experiment table (or all) from the registry
     list       list experiment ids *)

open Cmdliner
module G = Anon_giraf
module C = Anon_consensus
module H = Anon_harness
module O = Anon_obs
module Ch = Anon_chaos

let ppf = Format.std_formatter

(* --- shared options ------------------------------------------------------- *)

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let gst_arg =
  Arg.(value & opt int 10 & info [ "gst" ] ~docv:"ROUND" ~doc:"Stabilization round.")

(* One definition for every subcommand's --horizon (they differ only in
   the default that suits the workload). *)
let horizon_arg ?(default = 300) () =
  Arg.(value & opt int default & info [ "horizon" ] ~docv:"ROUNDS" ~doc:"Round limit.")

let failures_arg =
  Arg.(value & opt int 0 & info [ "failures" ] ~docv:"F" ~doc:"Crashing processes.")

(* One definition for every fan-out subcommand's --jobs. Results are
   bit-identical for every value (DESIGN.md §9); the flag only buys wall
   time. *)
let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for independent runs: 1 sequential, 0 autodetect \
                 from the machine, N>1 a fixed pool. Output is identical for \
                 every value.")

let set_jobs jobs =
  if jobs < 0 then begin
    Format.eprintf "anonc: --jobs must be >= 0@.";
    exit 2
  end;
  Anon_exec.Pool.default_jobs := jobs

let rounds_trace_arg =
  Arg.(value & flag
       & info [ "rounds" ] ~doc:"Print the full round-by-round textual trace.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ] ~doc:"Collect run metrics and print them after the run.")

let json_trace_arg =
  Arg.(value & opt (some string) None
       & info [ "json-trace" ] ~docv:"FILE"
           ~doc:"Stream structured events (one JSON object per line) to $(docv).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file to $(docv): per-process \
                 round spans, message flow edges, decide/crash instants. Open \
                 it in ui.perfetto.dev or chrome://tracing. Deterministic at a \
                 fixed seed.")

(* Build a recorder from the [--metrics] / [--json-trace FILE] /
   [--trace FILE] options, run [f] with it, then print the metrics table
   and write/close the trace files. *)
let with_recorder ?(trace = None) ~metrics ~json_trace f =
  let registry = if metrics then O.Metrics.create () else O.Metrics.disabled in
  let oc =
    Option.map
      (fun path ->
        try open_out path
        with Sys_error msg ->
          Format.eprintf "anonc: cannot open trace file: %s@." msg;
          exit 1)
      json_trace
  in
  let tracer = Option.map (fun _ -> O.Trace.create ()) trace in
  let sink =
    match
      (match oc with None -> [] | Some oc -> [ O.Sink.jsonl oc ])
      @ (match tracer with None -> [] | Some tr -> [ O.Trace.sink tr ])
    with
    | [] -> O.Sink.null
    | [ s ] -> s
    | sinks -> O.Sink.tee sinks
  in
  let recorder = O.Recorder.create ~metrics:registry ~sink () in
  let finally () =
    O.Recorder.flush recorder;
    Option.iter close_out oc
  in
  Fun.protect ~finally (fun () ->
      let result = f recorder in
      if metrics then O.Metrics.render ppf (O.Metrics.snapshot registry);
      (match json_trace with
      | Some path -> Format.fprintf ppf "json trace written to %s@." path
      | None -> ());
      (match (trace, tracer) with
      | Some path, Some tr -> (
        match O.Trace.write ~path tr with
        | () ->
          Format.fprintf ppf
            "chrome trace written to %s (open in ui.perfetto.dev)@." path
        | exception Sys_error msg ->
          Format.eprintf "anonc: cannot write trace file: %s@." msg;
          exit 1)
      | _ -> ());
      result)

(* --- run ------------------------------------------------------------------ *)

type algo = Es | Ess

let algo_arg =
  let of_string = Arg.enum [ ("es", Es); ("ess", Ess) ] in
  Arg.(value & opt of_string Es & info [ "algo" ] ~docv:"ALGO" ~doc:"es or ess.")

type schedule = Blocking | Noisy | Synchronous

let schedule_arg =
  let of_string =
    Arg.enum [ ("blocking", Blocking); ("noisy", Noisy); ("sync", Synchronous) ]
  in
  Arg.(value & opt of_string Noisy
       & info [ "schedule" ] ~docv:"SCHED"
           ~doc:"blocking (worst case), noisy (random extra links) or sync.")

let adversary_of ~algo ~schedule ~gst =
  match algo, schedule with
  | _, Synchronous -> G.Adversary.sync ()
  | Es, Blocking -> G.Adversary.es_blocking ~gst ()
  | Es, Noisy -> G.Adversary.es ~gst ~noise:0.25 ()
  | Ess, Blocking -> G.Adversary.ess_blocking ~gst ()
  | Ess, Noisy -> G.Adversary.ess ~gst ~noise:0.25 ()

(* "p0@3,p2@1-4": p0 leaves at round 3 forever, p2 leaves at 1 and rejoins
   at 4. *)
let churn_of_spec ~n spec =
  if spec = "" then G.Churn.none ~n
  else
    let parse_one part =
      let fail () =
        Format.eprintf
          "anonc: bad --churn entry %S (expected pN@LEAVE or pN@LEAVE-REJOIN)@."
          part;
        exit 2
      in
      match String.split_on_char '@' part with
      | [ pid; rounds ] ->
        let pid =
          match int_of_string_opt (
            if String.length pid > 1 && pid.[0] = 'p' then
              String.sub pid 1 (String.length pid - 1)
            else pid)
          with
          | Some p -> p
          | None -> fail ()
        in
        (match String.split_on_char '-' rounds with
        | [ leave ] -> (
          match int_of_string_opt leave with
          | Some leave -> { G.Churn.pid; leave; rejoin = None }
          | None -> fail ())
        | [ leave; rejoin ] -> (
          match (int_of_string_opt leave, int_of_string_opt rejoin) with
          | Some leave, Some rejoin -> { G.Churn.pid; leave; rejoin = Some rejoin }
          | _ -> fail ())
        | _ -> fail ())
      | _ -> fail ()
    in
    match G.Churn.of_events ~n (List.map parse_one (String.split_on_char ',' spec)) with
    | churn -> churn
    | exception Invalid_argument msg ->
      Format.eprintf "anonc: bad --churn spec: %s@." msg;
      exit 2

let env_override_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "env" ] ~docv:"ENV"
        ~doc:"Environment override; currently dynamic:S or dynamic:S:unrooted \
              (per-round communication graphs, healed for S-round windows). \
              Replaces --schedule's adversary.")

let churn_spec_arg =
  Cmdliner.Arg.(
    value & opt string ""
    & info [ "churn" ] ~docv:"SPEC"
        ~doc:"Join/leave schedule, e.g. p0@3,p2@1-4 (p2 leaves at round 1, \
              rejoins at 4 with a fresh state). Churners may not also crash.")

let report_outcome ~rounds (outcome : G.Runner.outcome) =
  if rounds then Format.fprintf ppf "%a@." G.Trace.pp outcome.trace;
  List.iter
    (fun (p, r, v) -> Format.fprintf ppf "decision: p%d at round %d = %d@." p r v)
    outcome.decisions;
  Format.fprintf ppf "all correct decided: %b (rounds executed: %d)@."
    outcome.all_correct_decided outcome.rounds_executed;
  Format.fprintf ppf "messages broadcast: %d; deliveries: %d (timely %d)@."
    outcome.messages_sent outcome.deliveries outcome.timely_deliveries;
  let report label vs =
    if vs = [] then Format.fprintf ppf "%s: ok@." label
    else
      List.iter (fun v -> Format.fprintf ppf "%s: %a@." label G.Checker.pp_violation v) vs
  in
  report "environment" (G.Checker.check_env outcome.trace);
  report "consensus"
    (G.Checker.check_consensus ~expect_termination:false outcome.trace)

let run_cmd =
  let run algo schedule env_override churn_spec n gst seed horizon failures
      rounds trace metrics json_trace jobs =
    (* A single simulation is one task; --jobs is accepted for interface
       uniformity and to set the pool default for anything that fans out. *)
    set_jobs jobs;
    let rng = Anon_kernel.Rng.make seed in
    let inputs =
      match schedule with
      | Blocking -> H.Exp_consensus.ordered_inputs ~n rng
      | Noisy | Synchronous -> H.Runs.distinct_inputs ~n rng
    in
    let churn = churn_of_spec ~n churn_spec in
    let crash =
      G.Crash.random ~n ~failures ~max_round:(max 1 (min horizon (gst + 10))) rng
    in
    let adversary =
      match env_override with
      | None -> adversary_of ~algo ~schedule ~gst
      | Some spec -> (
        match G.Env.of_string spec with
        | Ok (G.Env.Dynamic { stability; rooted }) ->
          let noise = match schedule with Noisy -> 0.25 | _ -> 0. in
          G.Adversary.dynamic ~stability ~rooted ~noise ()
        | Ok env ->
          Format.eprintf
            "anonc run: --env %s not supported here (only dynamic:...; use \
             --schedule for the static environments)@."
            (G.Env.to_string env);
          exit 2
        | Error e ->
          Format.eprintf "anonc run: %s@." e;
          exit 2)
    in
    let config =
      G.Runner.default_config ~horizon ~seed ~inputs ~crash ~churn adversary
    in
    Format.fprintf ppf "algorithm: %s; env: %a; inputs: [%s]; crash: %a; churn: %a@."
      (match algo with Es -> C.Es_consensus.name | Ess -> C.Ess_consensus.name)
      G.Env.pp (G.Adversary.env adversary)
      (String.concat ";" (List.map string_of_int inputs))
      G.Crash.pp crash G.Churn.pp churn;
    with_recorder ~trace ~metrics ~json_trace (fun recorder ->
        match algo with
        | Es ->
          let module R = G.Runner.Make (C.Es_consensus) in
          report_outcome ~rounds (R.run ~recorder config)
        | Ess ->
          let module R = G.Runner.Make (C.Ess_consensus) in
          report_outcome ~rounds (R.run ~recorder config))
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one consensus simulation.")
    Term.(
      const run $ algo_arg $ schedule_arg $ env_override_arg $ churn_spec_arg
      $ n_arg $ gst_arg $ seed_arg $ horizon_arg () $ failures_arg
      $ rounds_trace_arg $ trace_arg $ metrics_arg $ json_trace_arg $ jobs_arg)

(* --- weakset -------------------------------------------------------------- *)

let weakset_cmd =
  let run n seed horizon failures ops trace metrics json_trace =
    let rng = Anon_kernel.Rng.make seed in
    let crash = G.Crash.random ~n ~failures ~max_round:(max 1 horizon) rng in
    let workload =
      G.Service_runner.random_workload ~n ~ops_per_client:ops
        ~max_start:(horizon / 2) ~value_range:10_000 rng
    in
    let config =
      {
        G.Service_runner.n;
        crash;
        churn = G.Churn.none ~n;
        adversary = G.Adversary.ms ();
        horizon;
        seed;
      }
    in
    let module W = G.Service_runner.Make (C.Weak_set_ms) in
    with_recorder ~trace ~metrics ~json_trace (fun recorder ->
        let out = W.run ~recorder config ~workload in
        List.iter
          (fun (a : G.Service_runner.add_record) ->
            Format.fprintf ppf "add p%d v=%d: round %d to %s@." a.client a.value
              a.invoked_round
              (match a.completed_round with None -> "pending" | Some r -> string_of_int r))
          out.adds;
        let viol = G.Checker.check_weak_set ~correct:(G.Crash.correct crash) out.ops in
        Format.fprintf ppf "ops: %d; weak-set semantics: %s@." (List.length out.ops)
          (if viol = [] then "ok" else string_of_int (List.length viol) ^ " violations");
        List.iter (fun v -> Format.fprintf ppf "  %a@." G.Checker.pp_violation v) viol)
  in
  let ops_arg =
    Arg.(value & opt int 6 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per client.")
  in
  Cmd.v (Cmd.info "weakset" ~doc:"Drive the MS weak-set (Alg. 4).")
    Term.(
      const run $ n_arg $ seed_arg $ horizon_arg ~default:120 () $ failures_arg
      $ ops_arg $ trace_arg $ metrics_arg $ json_trace_arg)

(* --- emulate -------------------------------------------------------------- *)

let emulate_cmd =
  let run n seed rounds =
    let rng = Anon_kernel.Rng.make seed in
    let inputs = H.Runs.distinct_inputs ~n rng in
    let config =
      C.Ms_emulation.default_config ~inputs ~crash:(G.Crash.none ~n)
        ~horizon_rounds:rounds ~seed ()
    in
    let module E = C.Ms_emulation.Make (C.Es_consensus) in
    let out = E.run config in
    Format.fprintf ppf
      "emulated %d steps; per-process rounds: [%s]; hosted decisions: %d@." out.steps
      (String.concat ";" (Array.to_list (Array.map string_of_int out.rounds_completed)))
      (List.length out.decisions);
    let env = G.Checker.check_env out.trace in
    Format.fprintf ppf "MS property over emulated rounds: %s@."
      (if env = [] then "ok (Thm. 4 holds)" else string_of_int (List.length env) ^ " violations")
  in
  Cmd.v (Cmd.info "emulate" ~doc:"Emulate MS from a weak-set (Alg. 5).")
    Term.(const run $ n_arg $ seed_arg
          $ Arg.(value & opt int 60 & info [ "rounds" ] ~doc:"Emulated rounds."))

(* --- skew ------------------------------------------------------------------ *)

let skew_cmd =
  let run n seed max_pace max_delay ticks =
    let module S = G.Skew_runner.Make (C.Es_consensus) in
    let rng = Anon_kernel.Rng.make seed in
    let config =
      G.Skew_runner.default_config ~seed ~horizon_ticks:ticks
        ~pace:(G.Skew_runner.uniform_pace ~max:max_pace)
        ~delay:(G.Skew_runner.uniform_delay ~max:max_delay)
        ~inputs:(H.Runs.distinct_inputs ~n rng)
        ~crash:(G.Crash.none ~n) ()
    in
    let out = S.run config in
    Format.fprintf ppf "rounds completed: [%s] in %d ticks@."
      (String.concat ";" (Array.to_list (Array.map string_of_int out.rounds_completed)))
      out.ticks;
    List.iter
      (fun (p, r, v) -> Format.fprintf ppf "decision: p%d at its round %d = %d@." p r v)
      out.decisions;
    let cons = G.Checker.check_consensus ~expect_termination:false out.trace in
    if cons = [] then Format.fprintf ppf "consensus properties: ok@."
    else begin
      Format.fprintf ppf
        "consensus violations (no environment obligation was promised!):@.";
      List.iter (fun v -> Format.fprintf ppf "  %a@." G.Checker.pp_violation v) cons
    end
  in
  Cmd.v
    (Cmd.info "skew"
       ~doc:"Run ES consensus with unsynchronized rounds (relay semantics).")
    Term.(
      const run $ n_arg $ seed_arg
      $ Arg.(value & opt int 3 & info [ "max-pace" ] ~doc:"Max ticks between a process's rounds.")
      $ Arg.(value & opt int 4 & info [ "max-delay" ] ~doc:"Max broadcast latency in ticks.")
      $ Arg.(value & opt int 2000 & info [ "ticks" ] ~doc:"Tick horizon."))

(* --- sigma ---------------------------------------------------------------- *)

let sigma_cmd =
  let run horizon =
    List.iter
      (fun (module Cand : C.Sigma.CANDIDATE) ->
        let verdict = C.Sigma.two_run_attack (module Cand) ~horizon in
        Format.fprintf ppf "%-28s %a@." Cand.name C.Sigma.pp_verdict verdict)
      C.Sigma.builtin_candidates
  in
  Cmd.v (Cmd.info "sigma" ~doc:"Prop. 4: defeat candidate Σ emulators.")
    Term.(const run $ horizon_arg ~default:200 ())

(* --- metrics --------------------------------------------------------------- *)

let metrics_cmd =
  let run algo schedule n gst seed horizon failures runs json out jobs =
    set_jobs jobs;
    let batch =
      let inputs rng =
        match schedule with
        | Blocking -> H.Exp_consensus.ordered_inputs ~n rng
        | Noisy | Synchronous -> H.Runs.distinct_inputs ~n rng
      in
      let crash rng =
        G.Crash.random ~n ~failures ~max_round:(max 1 (min horizon (gst + 10))) rng
      in
      let adversary _ = adversary_of ~algo ~schedule ~gst in
      let seeds = H.Runs.seeds ~base:seed runs in
      match algo with
      | Es ->
        let module B = H.Runs.Of (C.Es_consensus) in
        B.batch ~horizon ~metrics:true ~inputs ~crash ~adversary ~seeds ()
      | Ess ->
        let module B = H.Runs.Of (C.Ess_consensus) in
        B.batch ~horizon ~metrics:true ~inputs ~crash ~adversary ~seeds ()
    in
    match batch.metrics with
    | None -> ()
    | Some snap ->
      (match out with
      | Some path -> (
        match
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (O.Json.to_string (O.Metrics.to_json snap));
              output_char oc '\n')
        with
        | () -> Format.fprintf ppf "metrics snapshot written to %s@." path
        | exception Sys_error msg ->
          Format.eprintf "anonc metrics: cannot write %s: %s@." path msg;
          exit 1)
      | None -> ());
      if json then print_endline (O.Json.to_string (O.Metrics.to_json snap))
      else begin
        Format.fprintf ppf
          "%d runs (n=%d, gst=%d): %d decided, %d safety violations@."
          batch.runs n gst batch.decided (H.Runs.safety_violations batch);
        O.Metrics.render ppf snap;
        match H.Runs.metrics_note batch with
        | Some note -> Format.fprintf ppf "%s@." note
        | None -> ()
      end
  in
  let runs_arg =
    Arg.(value & opt int 10 & info [ "runs" ] ~docv:"K" ~doc:"Seeds in the batch.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the merged snapshot as JSON.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Also write the full merged snapshot (counters, gauges, \
                   histogram summaries) as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a batch with instrumentation on; print the merged metrics.")
    Term.(
      const run $ algo_arg $ schedule_arg $ n_arg $ gst_arg $ seed_arg
      $ horizon_arg () $ failures_arg $ runs_arg $ json_arg $ out_arg $ jobs_arg)

(* --- fuzz ------------------------------------------------------------------ *)

let fuzz_cmd =
  let run runs seed inadmissible dynamic churn out replay jobs =
    set_jobs jobs;
    match replay with
    | Some path -> (
      match Ch.Fuzz.replay ~path with
      | Error e ->
        Format.eprintf "anonc fuzz: cannot replay %s: %s@." path e;
        exit 2
      | Ok r ->
        Format.fprintf ppf "replaying %a@." Ch.Scenario.pp r.case;
        List.iter
          (fun s -> Format.fprintf ppf "violation: %s@." s)
          (Ch.Fuzz.violation_strings r.actual);
        if r.matches then
          Format.fprintf ppf "replay: reproduced the recorded violations@."
        else begin
          Format.fprintf ppf "replay: MISMATCH — repro file recorded %d violations@."
            (List.length r.expected);
          exit 1
        end)
    | None -> (
      let report = Ch.Fuzz.campaign ~inadmissible ~dynamic ~churn ~runs ~seed () in
      match report.finding with
      | None ->
        Format.fprintf ppf "fuzz: %d runs, no violations@." report.runs_done;
        if inadmissible then begin
          Format.eprintf
            "anonc fuzz: inadmissible mode found nothing — the checker missed a \
             forced model violation@.";
          exit 1
        end
      | Some f ->
        Format.fprintf ppf "fuzz: violation after %d runs@." report.runs_done;
        Format.fprintf ppf "original: %a@." Ch.Scenario.pp f.original;
        Format.fprintf ppf "shrunk:   %a (%d shrink candidates)@." Ch.Scenario.pp
          f.case f.explored;
        List.iter
          (fun s -> Format.fprintf ppf "violation: %s@." s)
          (Ch.Fuzz.violation_strings f.violations);
        let path = Option.value out ~default:"fuzz-repro.json" in
        Ch.Fuzz.write_repro ~path f;
        Format.fprintf ppf "repro written to %s (replay with --replay)@." path;
        exit 1)
  in
  let runs_arg =
    Arg.(value & opt int 100 & info [ "runs" ] ~docv:"K" ~doc:"Cases to sample.")
  in
  let inadmissible_arg =
    Arg.(value & flag
         & info [ "inadmissible" ]
             ~doc:"Arm a deliberately model-violating fault mode in every case; the \
                   campaign must then find a violation (checker self-test).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Repro file path (default fuzz-repro.json).")
  in
  let dynamic_arg =
    Arg.(value & flag
         & info [ "dynamic" ]
             ~doc:"Sample dynamic-graph environment overrides (per-round \
                   communication graphs with stability windows).")
  in
  let churn_arg =
    Arg.(value & flag
         & info [ "churn" ]
             ~doc:"Sample join/leave schedules (distinct from crashes; \
                   rejoiners restart from their input with empty state).")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay a repro file instead of fuzzing; exits 0 iff the recorded \
                   violations reproduce identically.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz random configurations against the checker; shrink and save \
             counterexamples.")
    Term.(const run $ runs_arg $ seed_arg $ inadmissible_arg $ dynamic_arg
          $ churn_arg $ out_arg $ replay_arg $ jobs_arg)

(* --- mc -------------------------------------------------------------------- *)

let mc_cmd =
  let module Mc = Anon_mc.Mc in
  let run algo env gst n rounds crashes churn max_delay search armed jobs seed
      ops_per_client out progress trace metrics json_trace =
    set_jobs jobs;
    let env =
      match env with
      | None -> (
        match algo with
        | Mc.Es | Mc.Es_unguarded -> G.Env.Es { gst }
        | Mc.Ess -> G.Env.Ess { gst }
        | Mc.Ms_weakset -> G.Env.Ms)
      | Some "sync" -> G.Env.Sync
      | Some "ms" -> G.Env.Ms
      | Some "es" -> G.Env.Es { gst }
      | Some "ess" -> G.Env.Ess { gst }
      | Some "async" -> G.Env.Async
      | Some spec -> (
        match G.Env.of_string spec with
        | Ok env -> env
        | Error _ ->
          Format.eprintf
            "anonc mc: unknown --env %s (sync|ms|es|ess|async|dynamic:S[:unrooted])@."
            spec;
          exit 2)
    in
    let config =
      {
        Mc.algo;
        n;
        env;
        rounds;
        crashes;
        churn;
        max_delay;
        search;
        armed;
        jobs = Some jobs;
        seed;
        ops_per_client;
      }
    in
    with_recorder ~trace ~metrics ~json_trace (fun recorder ->
        let report =
          Mc.run ~recorder
            ?progress:(if progress then Some Format.err_formatter else None)
            ?out config
        in
        Format.fprintf ppf "%a@." Mc.pp_report report;
        (match (out, report.Mc.witness) with
        | Some path, Some _ ->
          Format.fprintf ppf "repro written to %s (replay with anonc fuzz --replay)@."
            path
        | _ -> ());
        if report.Mc.verdict = Mc.Violation then exit 1)
  in
  let algo_arg =
    let of_string =
      Arg.enum
        [
          ("es", Mc.Es);
          ("ess", Mc.Ess);
          ("ms-weakset", Mc.Ms_weakset);
          ("es-unguarded", Mc.Es_unguarded);
        ]
    in
    Arg.(value & opt of_string Mc.Es
         & info [ "algo" ] ~docv:"ALGO" ~doc:"es, ess, ms-weakset or es-unguarded.")
  in
  let env_arg =
    Arg.(value & opt (some string) None
         & info [ "env" ] ~docv:"ENV"
             ~doc:"Environment to enumerate plans for: sync, ms, es, ess, async or \
                   dynamic:S[:unrooted] (default: the algorithm's native one).")
  in
  let n_arg =
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")
  in
  let rounds_arg =
    Arg.(value & opt int 4
         & info [ "rounds" ] ~docv:"K" ~doc:"Depth bound (adversary rounds per branch).")
  in
  let crashes_arg =
    Arg.(value & opt int 0
         & info [ "crashes" ] ~docv:"F" ~doc:"Crash budget (max crashing processes).")
  in
  let churn_arg =
    Arg.(value & opt int 0
         & info [ "churn" ] ~docv:"C"
             ~doc:"Churn budget (max join/leave processes; schedules enumerated \
                   like crashes and crossed with them, pid-disjoint).")
  in
  let max_delay_arg =
    Arg.(value & opt int 1
         & info [ "max-delay" ] ~docv:"D" ~doc:"Late arrivals span round+1 .. round+D.")
  in
  let search_arg =
    let of_string = Arg.enum [ ("bfs", Mc.Bfs); ("dfs", Mc.Dfs) ] in
    Arg.(value & opt of_string Mc.Bfs
         & info [ "search" ] ~docv:"ORDER"
             ~doc:"bfs (shortest counterexamples, parallel) or dfs (sequential, \
                   memory-light).")
  in
  let armed_arg =
    Arg.(value & flag
         & info [ "armed"; "inadmissible" ]
             ~doc:"Also branch on one deliberately obligation-dropping plan per \
                   demanding round; the checker must flag it (self-test).")
  in
  let ops_arg =
    Arg.(value & opt int 2
         & info [ "ops-per-client" ] ~docv:"K" ~doc:"ms-weakset workload size per client.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the witness repro JSON to $(docv).")
  in
  let progress_arg =
    Arg.(value & flag
         & info [ "progress" ]
             ~doc:"Print live exploration progress to stderr: one line per crash \
                   schedule and per BFS level (frontier size, canonical states, \
                   states/sec, dedup hit-rate).")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:"Exhaustively model-check bounded schedules (symmetry-reduced); exits 1 \
             iff a violation is found.")
    Term.(
      const run $ algo_arg $ env_arg $ gst_arg $ n_arg $ rounds_arg $ crashes_arg
      $ churn_arg $ max_delay_arg $ search_arg $ armed_arg $ jobs_arg $ seed_arg
      $ ops_arg $ out_arg $ progress_arg $ trace_arg $ metrics_arg
      $ json_trace_arg)

(* --- load ------------------------------------------------------------------ *)

let load_cmd =
  let write_json ~what path json =
    match
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (O.Json.to_string json);
          output_char oc '\n')
    with
    | () -> Format.fprintf ppf "%s written to %s@." what path
    | exception Sys_error msg ->
      Format.eprintf "anonc load: cannot write %s: %s@." path msg;
      exit 1
  in
  let run algo n gst env_override rate sweep proposals window batch shards skew
      value_range hot_value horizon seed failures churn_spec label out bench_out
      metrics json_trace jobs =
    set_jobs jobs;
    (* Validate before Crash.random can trip its bare [invalid_arg]: bad
       CLI input must surface as Invalid_config / exit 2, like every other
       subcommand. *)
    if failures < 0 || failures > n then
      G.Config_error.fail ~where:"anonc load"
        (Printf.sprintf "failures must be in [0, n] (got %d of n=%d)" failures n);
    let rates = match sweep with [] -> [ rate ] | rs -> rs in
    let make_adversary =
      match env_override with
      | None -> (
        fun ~shard:_ ~instance:_ ->
          match algo with
          | Es -> G.Adversary.es ~gst ()
          | Ess -> G.Adversary.ess ~gst ())
      | Some spec -> (
        match G.Env.of_string spec with
        | Ok (G.Env.Dynamic { stability; rooted }) ->
          fun ~shard:_ ~instance:_ -> G.Adversary.dynamic ~stability ~rooted ()
        | Ok env ->
          Format.eprintf
            "anonc load: --env %s not supported here (only dynamic:...; use \
             --algo/--gst for the static environments)@."
            (G.Env.to_string env);
          exit 2
        | Error e ->
          Format.eprintf "anonc load: %s@." e;
          exit 2)
    in
    let env_label =
      match env_override with
      | Some spec -> spec
      | None ->
        Printf.sprintf "%s:%d" (match algo with Es -> "es" | Ess -> "ess") gst
    in
    let churn ~shard:_ = churn_of_spec ~n churn_spec in
    (* Crash schedules are a pure function of (seed, shard), so the report
       stays byte-identical at any --jobs. *)
    let crash ~shard =
      if failures = 0 then G.Crash.none ~n
      else
        let rng = Anon_kernel.Rng.make (seed + (7919 * (shard + 1))) in
        G.Crash.random ~n ~failures
          ~max_round:(max 1 (min horizon (gst + 10)))
          rng
    in
    let reports =
      with_recorder ~metrics ~json_trace (fun recorder ->
          List.map
            (fun rate ->
              let workload =
                Anon_rsm.Workload.make ~where:"anonc load" ~skew ~value_range
                  ~hot_value ~shards ~proposals ~rate ~seed ()
              in
              let report =
                match algo with
                | Es ->
                  let module L = Anon_rsm.Load.Make (C.Es_consensus) in
                  L.run ~jobs ~metrics ~recorder ~env:env_label ~crash ~churn
                    ~n ~window ~batch ~horizon ~adversary:make_adversary
                    workload
                | Ess ->
                  let module L = Anon_rsm.Load.Make (C.Ess_consensus) in
                  L.run ~jobs ~metrics ~recorder ~env:env_label ~crash ~churn
                    ~n ~window ~batch ~horizon ~adversary:make_adversary
                    workload
              in
              Anon_rsm.Load.render ppf report;
              (match report.Anon_rsm.Load.metrics with
              | Some snap -> O.Metrics.render ppf snap
              | None -> ());
              report)
            rates)
    in
    (match out with
    | None -> ()
    | Some path ->
      let doc =
        match reports with
        | [ r ] -> Anon_rsm.Load.to_json r
        | rs -> O.Json.List (List.map Anon_rsm.Load.to_json rs)
      in
      write_json ~what:"load report" path doc);
    (match bench_out with
    | None -> ()
    | Some path ->
      let doc =
        O.Json.Obj
          [
            ("schema", O.Json.String "anon-bench/3");
            ("label", O.Json.String label);
            ("git_revision", O.Json.String (H.Bench_diff.git_revision ()));
            ("cores", O.Json.Int (Domain.recommended_domain_count ()));
            ("jobs", O.Json.Int (Anon_exec.Pool.resolve ~jobs ()));
            ("load", O.Json.List (List.map Anon_rsm.Load.row_json reports));
          ]
      in
      write_json ~what:"anon-bench/3 baseline" path doc);
    if
      List.exists
        (fun (r : Anon_rsm.Load.report) ->
          not (r.agreement_ok && r.validity_ok))
        reports
    then begin
      Format.eprintf "anonc load: safety violation in a committed log@.";
      exit 1
    end
  in
  let rate_arg =
    Arg.(value & opt float 4.0
         & info [ "rate" ] ~docv:"R" ~doc:"Offered load, proposals per round.")
  in
  let sweep_arg =
    Arg.(value & opt (list float) []
         & info [ "sweep" ] ~docv:"R1,R2,..."
             ~doc:"Run one report per rate instead of --rate (the saturation \
                   series --bench-out persists).")
  in
  let proposals_arg =
    Arg.(value & opt int 1_000
         & info [ "proposals" ] ~docv:"K" ~doc:"Total proposals per run.")
  in
  let window_arg =
    Arg.(value & opt int 4
         & info [ "window" ] ~docv:"W" ~doc:"In-flight consensus instances.")
  in
  let batch_arg =
    Arg.(value & opt int 1
         & info [ "batch" ] ~docv:"B"
             ~doc:"Max proposals folded into one instance (must be <= window).")
  in
  let shards_arg =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"S"
             ~doc:"Independent log partitions (a workload parameter — the \
                   report is identical at any --jobs).")
  in
  let skew_arg =
    Arg.(value & opt float 0.
         & info [ "skew" ] ~docv:"P"
             ~doc:"Probability a proposal carries the hot value, in [0,1].")
  in
  let value_range_arg =
    Arg.(value & opt int 16
         & info [ "value-range" ] ~docv:"V" ~doc:"Cold values are uniform in [0,V).")
  in
  let hot_value_arg =
    Arg.(value & opt int 0 & info [ "hot-value" ] ~docv:"V" ~doc:"The skewed value.")
  in
  let label_arg =
    Arg.(value & opt string "PR9"
         & info [ "label" ] ~docv:"LABEL" ~doc:"Baseline label for --bench-out.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the deterministic anon-load/1 report JSON to $(docv) \
                   (byte-identical at any --jobs; a list when --sweep).")
  in
  let bench_out_arg =
    Arg.(value & opt (some string) None
         & info [ "bench-out" ] ~docv:"FILE"
             ~doc:"Write the runs as an anon-bench/3 baseline (one load row \
                   per rate) for $(b,anonc bench diff).")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Drive the multi-shot consensus service with an open-loop \
             workload; exits 1 on a safety violation, 2 on invalid \
             parameters.")
    Term.(
      const run $ algo_arg $ n_arg $ gst_arg $ env_override_arg $ rate_arg
      $ sweep_arg $ proposals_arg $ window_arg $ batch_arg $ shards_arg
      $ skew_arg $ value_range_arg $ hot_value_arg
      $ horizon_arg ~default:200_000 () $ seed_arg $ failures_arg
      $ churn_spec_arg $ label_arg $ out_arg $ bench_out_arg $ metrics_arg
      $ json_trace_arg $ jobs_arg)

(* --- live ------------------------------------------------------------------ *)

type live_algo = L_es | L_ess | L_floodset | L_es_unguarded

let live_algo_name = function
  | L_es -> "es"
  | L_ess -> "ess"
  | L_floodset -> "floodset"
  | L_es_unguarded -> "es-unguarded"

let live_cmd =
  let module Lv = Anon_live in
  let pct h p = O.Hist.percentile h p in
  let render_report ppf ~algo ~n ~faults ~(config : Lv.Runner.config)
      (o : Lv.Runner.outcome) =
    Format.fprintf ppf "live run: algo=%s n=%d net=%s seed=%d@." algo n
      (Ch.Netfault.to_string faults) config.Lv.Runner.seed;
    Format.fprintf ppf
      "  backend=live threads=%d timeout=%gs..%gs growth=%g decay=%g retries=%d@."
      n config.Lv.Runner.timeout_init_s config.Lv.Runner.timeout_max_s
      config.Lv.Runner.growth config.Lv.Runner.decay config.Lv.Runner.retries;
    let decided = List.length o.Lv.Runner.decisions in
    let correct = List.length (G.Crash.correct config.Lv.Runner.crash) in
    if o.Lv.Runner.all_correct_decided then begin
      let values =
        List.sort_uniq Anon_kernel.Value.compare
          (List.map (fun (_, _, v) -> v) o.Lv.Runner.decisions)
      in
      let rounds = List.map (fun (_, r, _) -> r) o.Lv.Runner.decisions in
      let decided_correct = correct - List.length o.Lv.Runner.undecided in
      Format.fprintf ppf
        "outcome: DECIDED %d/%d correct%s, value%s %s, decide round %d..%d, \
         wall=%.2fs@."
        decided_correct correct
        (if decided > decided_correct then
           Printf.sprintf " (+%d crashed deciders)" (decided - decided_correct)
         else "")
        (if List.length values = 1 then "" else "s")
        (String.concat "," (List.map string_of_int values))
        (List.fold_left min max_int rounds)
        (List.fold_left max 0 rounds)
        o.Lv.Runner.wall_s
    end
    else begin
      Format.fprintf ppf
        "outcome: UNDECIDED (%d/%d correct undecided after %d rounds, \
         wall=%.2fs)@."
        (List.length o.Lv.Runner.undecided)
        correct o.Lv.Runner.rounds_max o.Lv.Runner.wall_s;
      (* Diagnostics: why each straggler stopped (capped at 8 lines). *)
      List.iteri
        (fun i pid ->
          if i < 8 then
            let p = o.Lv.Runner.processes.(pid) in
            Format.fprintf ppf "  diag: p%d stop=%s round=%d timeouts=%d@." pid
              (match p.Lv.Runner.stop with
              | Lv.Runner.Decided -> "decided"
              | Lv.Runner.Crashed -> "crashed"
              | Lv.Runner.Round_budget_exhausted -> "round-budget"
              | Lv.Runner.Wall_budget_exhausted -> "wall-budget")
              p.Lv.Runner.rounds_executed p.Lv.Runner.timeouts_expired)
        o.Lv.Runner.undecided;
      if List.length o.Lv.Runner.undecided > 8 then
        Format.fprintf ppf "  diag: ... %d more@."
          (List.length o.Lv.Runner.undecided - 8)
    end;
    if not (O.Hist.is_empty o.Lv.Runner.decide_latency) then
      Format.fprintf ppf
        "  decide latency: mean=%.3fs p50=%.3fs p99=%.3fs max=%.3fs@."
        (O.Hist.mean o.Lv.Runner.decide_latency)
        (pct o.Lv.Runner.decide_latency 50.)
        (pct o.Lv.Runner.decide_latency 99.)
        (O.Hist.max_value o.Lv.Runner.decide_latency);
    let t = o.Lv.Runner.transport in
    Format.fprintf ppf
      "  wire: copies=%d retransmissions=%d dups=%d delayed=%d severed=%d@."
      t.Lv.Transport.copies_sent t.Lv.Transport.retransmissions
      t.Lv.Transport.duplicated t.Lv.Transport.delayed t.Lv.Transport.severed;
    let rebroadcasts =
      Array.fold_left (fun a p -> a + p.Lv.Runner.rebroadcasts) 0 o.Lv.Runner.processes
    in
    let expirations =
      Array.fold_left
        (fun a p -> a + p.Lv.Runner.timeouts_expired)
        0 o.Lv.Runner.processes
    in
    let curve_max = List.fold_left Float.max 0. o.Lv.Runner.timeout_curve in
    Format.fprintf ppf
      "  pacing: rebroadcasts=%d timeouts=%d curve=[%s%s] max=%gs@." rebroadcasts
      expirations
      (String.concat ";"
         (List.filteri (fun i _ -> i < 10)
            (List.map (Printf.sprintf "%.3g") o.Lv.Runner.timeout_curve)))
      (if List.length o.Lv.Runner.timeout_curve > 10 then ";..." else "")
      curve_max;
    match o.Lv.Runner.safety with
    | Lv.Runner.Safe -> Format.fprintf ppf "  safety: agreement+validity OK@."
    | Lv.Runner.Violations vs ->
      List.iter (fun v -> Format.fprintf ppf "  SAFETY VIOLATION: %s@." v) vs
  in
  let report_json ~algo ~n ~faults ~(config : Lv.Runner.config)
      (o : Lv.Runner.outcome) =
    let t = o.Lv.Runner.transport in
    O.Json.Obj
      [
        ("schema", O.Json.String "anon-live/1");
        ("algo", O.Json.String algo);
        ("n", O.Json.Int n);
        ("net", O.Json.String (Ch.Netfault.to_string faults));
        ("seed", O.Json.Int config.Lv.Runner.seed);
        ("timeout_init_s", O.Json.Float config.Lv.Runner.timeout_init_s);
        ("timeout_max_s", O.Json.Float config.Lv.Runner.timeout_max_s);
        ("decided", O.Json.Bool o.Lv.Runner.all_correct_decided);
        ( "decisions",
          O.Json.List
            (List.map
               (fun (pid, round, value) ->
                 O.Json.Obj
                   [
                     ("pid", O.Json.Int pid);
                     ("round", O.Json.Int round);
                     ("value", O.Json.Int value);
                   ])
               o.Lv.Runner.decisions) );
        ("undecided", O.Json.List (List.map (fun p -> O.Json.Int p) o.Lv.Runner.undecided));
        ("rounds_max", O.Json.Int o.Lv.Runner.rounds_max);
        ("wall_s", O.Json.Float o.Lv.Runner.wall_s);
        ( "decide_latency_s",
          if O.Hist.is_empty o.Lv.Runner.decide_latency then O.Json.Null
          else
            O.Json.Obj
              [
                ("mean", O.Json.Float (O.Hist.mean o.Lv.Runner.decide_latency));
                ("p50", O.Json.Float (pct o.Lv.Runner.decide_latency 50.));
                ("p99", O.Json.Float (pct o.Lv.Runner.decide_latency 99.));
                ("max", O.Json.Float (O.Hist.max_value o.Lv.Runner.decide_latency));
              ] );
        ( "transport",
          O.Json.Obj
            [
              ("copies_sent", O.Json.Int t.Lv.Transport.copies_sent);
              ("retransmissions", O.Json.Int t.Lv.Transport.retransmissions);
              ("duplicated", O.Json.Int t.Lv.Transport.duplicated);
              ("delayed", O.Json.Int t.Lv.Transport.delayed);
              ("severed", O.Json.Int t.Lv.Transport.severed);
            ] );
        ( "rebroadcasts",
          O.Json.Int
            (Array.fold_left
               (fun a p -> a + p.Lv.Runner.rebroadcasts)
               0 o.Lv.Runner.processes) );
        ( "timeouts_expired",
          O.Json.Int
            (Array.fold_left
               (fun a p -> a + p.Lv.Runner.timeouts_expired)
               0 o.Lv.Runner.processes) );
        ( "timeout_curve_s",
          O.Json.List (List.map (fun v -> O.Json.Float v) o.Lv.Runner.timeout_curve) );
        ( "safety",
          match o.Lv.Runner.safety with
          | Lv.Runner.Safe -> O.Json.String "ok"
          | Lv.Runner.Violations vs ->
            O.Json.List (List.map (fun v -> O.Json.String v) vs) );
      ]
  in
  let run algo n net_spec timeout_init timeout_max growth decay retries miss_grace
      round_budget wall_budget seed failures failures_bound sweep_drop out
      bench_out label metrics json_trace =
    let where = "anonc live" in
    if n < 1 then
      G.Config_error.fail ~where (Printf.sprintf "n must be >= 1 (got %d)" n);
    if failures < 0 || failures >= n then
      G.Config_error.fail ~where
        (Printf.sprintf "failures must be in [0, n) (got %d of n=%d)" failures n);
    let faults = Ch.Netfault.of_string net_spec in
    let inputs = List.init n (fun i -> (i mod 4) + 1) in
    let crash =
      if failures = 0 then G.Crash.none ~n
      else
        G.Crash.random ~n ~failures
          ~max_round:(max 1 (min round_budget 6))
          (Anon_kernel.Rng.make (seed + 7919))
    in
    let fb = match failures_bound with Some f -> f | None -> max failures 1 in
    if fb < 0 then
      G.Config_error.fail ~where
        (Printf.sprintf "failures-bound must be >= 0 (got %d)" fb);
    let algo_mod : (module G.Intf.ALGORITHM) =
      match algo with
      | L_es -> (module C.Es_consensus)
      | L_ess -> (module C.Ess_consensus)
      | L_es_unguarded -> (module C.Es_consensus.No_written_old_guard)
      | L_floodset ->
        (module Anon_baselines.Floodset.Make (struct
          let failures_bound = fb
        end))
    in
    let module A = (val algo_mod : G.Intf.ALGORITHM) in
    let module LR = Lv.Runner.Make (A) in
    let config_for faults =
      Lv.Runner.default_config ~timeout_init_s:timeout_init
        ~timeout_max_s:timeout_max ~growth ~decay ~retries ~miss_grace
        ~round_budget ~wall_budget_s:wall_budget ~seed ~faults ~inputs ~crash ()
    in
    let drops = match sweep_drop with [] -> [ None ] | ds -> List.map Option.some ds in
    let runs =
      with_recorder ~metrics ~json_trace (fun recorder ->
          List.map
            (fun drop_override ->
              let faults =
                match drop_override with
                | None -> faults
                | Some d ->
                  Ch.Netfault.validate ~where
                    { faults with Ch.Netfault.drop = d }
              in
              let config = config_for faults in
              let o = LR.run ~recorder config in
              render_report ppf ~algo:(live_algo_name algo) ~n ~faults ~config o;
              (faults, config, o))
            drops)
    in
    (match out with
    | None -> ()
    | Some path -> (
      let doc =
        match
          List.map
            (fun (faults, config, o) ->
              report_json ~algo:(live_algo_name algo) ~n ~faults ~config o)
            runs
        with
        | [ r ] -> r
        | rs -> O.Json.List rs
      in
      match
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (O.Json.to_string doc);
            output_char oc '\n')
      with
      | () -> Format.fprintf ppf "live report written to %s@." path
      | exception Sys_error msg ->
        Format.eprintf "anonc live: cannot write %s: %s@." path msg;
        exit 1));
    (match bench_out with
    | None -> ()
    | Some path -> (
      (* anon-bench/3 micro rows (ns, lower-better) so `anonc bench diff`
         can gate live-backend latency like any other baseline. *)
      let micro =
        List.concat_map
          (fun (faults, _, (o : Lv.Runner.outcome)) ->
            if O.Hist.is_empty o.Lv.Runner.decide_latency then []
            else
              let tag p =
                Printf.sprintf "live_%s_n%d_drop%g_decide_p%g"
                  (live_algo_name algo) n faults.Ch.Netfault.drop p
              in
              List.map
                (fun p ->
                  O.Json.Obj
                    [
                      ("name", O.Json.String (tag p));
                      ( "ns",
                        O.Json.Float (pct o.Lv.Runner.decide_latency p *. 1e9) );
                    ])
                [ 50.; 99. ])
          runs
      in
      let doc =
        O.Json.Obj
          [
            ("schema", O.Json.String "anon-bench/3");
            ("label", O.Json.String label);
            ("git_revision", O.Json.String (H.Bench_diff.git_revision ()));
            ("cores", O.Json.Int (Domain.recommended_domain_count ()));
            ("jobs", O.Json.Int 1);
            ("micro", O.Json.List micro);
          ]
      in
      match
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (O.Json.to_string doc);
            output_char oc '\n')
      with
      | () -> Format.fprintf ppf "anon-bench/3 baseline written to %s@." path
      | exception Sys_error msg ->
        Format.eprintf "anonc live: cannot write %s: %s@." path msg;
        exit 1));
    if
      List.exists
        (fun (_, _, (o : Lv.Runner.outcome)) -> o.Lv.Runner.safety <> Lv.Runner.Safe)
        runs
    then begin
      Format.eprintf "anonc live: safety violation@.";
      exit 1
    end
  in
  let algo_arg =
    let of_string =
      Arg.enum
        [
          ("es", L_es);
          ("ess", L_ess);
          ("floodset", L_floodset);
          ("es-unguarded", L_es_unguarded);
        ]
    in
    Arg.(value & opt of_string L_es
         & info [ "algo" ] ~docv:"ALGO" ~doc:"es, ess, floodset or es-unguarded.")
  in
  let net_arg =
    Arg.(value & opt string "none"
         & info [ "net" ] ~docv:"SPEC"
             ~doc:"Wire faults: comma-separated drop:P, dup:P, delay:P[:MAX_S], \
                   sever:NAME clauses (e.g. drop:0.1,dup:0.05,delay:0.2:0.005); \
                   none for a clean wire.")
  in
  let timeout_init_arg =
    Arg.(value & opt float 0.02
         & info [ "timeout-init" ] ~docv:"S" ~doc:"Initial round timeout, seconds.")
  in
  let timeout_max_arg =
    Arg.(value & opt float 1.0
         & info [ "timeout-max" ] ~docv:"S"
             ~doc:"Timeout backoff cap, seconds (must be >= timeout-init).")
  in
  let growth_arg =
    Arg.(value & opt float 2.0
         & info [ "growth" ] ~docv:"X" ~doc:"Timeout growth per expiry (>= 1).")
  in
  let decay_arg =
    Arg.(value & opt float 0.9
         & info [ "decay" ] ~docv:"X" ~doc:"Timeout decay per quiet round ((0,1]).")
  in
  let retries_arg =
    Arg.(value & opt int 3
         & info [ "retries" ] ~docv:"K"
             ~doc:"Timeout expiries (with rebroadcast) before a round proceeds \
                   short.")
  in
  let miss_grace_arg =
    Arg.(value & opt int 2
         & info [ "miss-grace" ] ~docv:"K"
             ~doc:"Consecutive short rounds before a silent peer stops being \
                   expected.")
  in
  let round_budget_arg =
    Arg.(value & opt int 200
         & info [ "round-budget" ] ~docv:"ROUNDS" ~doc:"Max rounds per process.")
  in
  let wall_budget_arg =
    Arg.(value & opt float 30.0
         & info [ "wall-budget" ] ~docv:"S"
             ~doc:"Wall-clock ceiling; an over-budget run reports undecided \
                   with diagnostics instead of hanging.")
  in
  let failures_bound_arg =
    Arg.(value & opt (some int) None
         & info [ "failures-bound" ] ~docv:"F"
             ~doc:"floodset's a-priori failure bound (default: --failures, \
                   at least 1).")
  in
  let sweep_drop_arg =
    Arg.(value & opt (list float) []
         & info [ "sweep-drop" ] ~docv:"P1,P2,..."
             ~doc:"Run one report per drop probability (overriding --net's \
                   drop) — the T17 timeout-vs-decide-round sweep.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the anon-live/1 report JSON to $(docv) (a list when \
                   sweeping).")
  in
  let bench_out_arg =
    Arg.(value & opt (some string) None
         & info [ "bench-out" ] ~docv:"FILE"
             ~doc:"Write decide-latency percentiles as an anon-bench/3 \
                   baseline for $(b,anonc bench diff).")
  in
  let label_arg =
    Arg.(value & opt string "PR10"
         & info [ "label" ] ~docv:"LABEL" ~doc:"Baseline label for --bench-out.")
  in
  Cmd.v
    (Cmd.info "live"
       ~doc:"Run consensus on the live async backend: one thread per process, \
             real in-process channels, wire-level fault injection, and \
             adaptive timeouts standing in for GST. Exits 1 on a safety \
             violation, 2 on invalid parameters; an over-budget run reports \
             undecided and exits 0.")
    Term.(
      const run $ algo_arg $ n_arg $ net_arg $ timeout_init_arg $ timeout_max_arg
      $ growth_arg $ decay_arg $ retries_arg $ miss_grace_arg $ round_budget_arg
      $ wall_budget_arg $ seed_arg $ failures_arg $ failures_bound_arg
      $ sweep_drop_arg $ out_arg $ bench_out_arg $ label_arg $ metrics_arg
      $ json_trace_arg)

(* --- bench ----------------------------------------------------------------- *)

let bench_cmd =
  let diff_run old_path new_path threshold force =
    let load path =
      match H.Bench_diff.load ~path with
      | Ok b -> b
      | Error e ->
        Format.eprintf "anonc bench diff: %s@." e;
        exit 2
    in
    let old_b = load old_path in
    let new_b = load new_path in
    let report = H.Bench_diff.diff ~threshold ~old_b ~new_b () in
    if report.H.Bench_diff.cross_cores && not force then begin
      Format.eprintf
        "anonc bench diff: %s was measured on %d cores but %s on %d — timings \
         are not comparable across machines; pass --force to compare anyway@."
        old_path old_b.H.Bench_diff.cores new_path new_b.H.Bench_diff.cores;
      exit 2
    end;
    Format.fprintf ppf "%a@." H.Bench_diff.render report;
    if H.Bench_diff.regressions report <> [] then exit 1
  in
  let old_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OLD"
             ~doc:"Baseline JSON (anon-bench/2 or /3) to compare against.")
  in
  let new_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"NEW" ~doc:"Fresh baseline JSON to check for regressions.")
  in
  let threshold_arg =
    Arg.(value & opt float H.Bench_diff.default_threshold
         & info [ "threshold" ] ~docv:"PCT"
             ~doc:"Regression threshold in percent: a row regresses when it \
                   moves more than $(docv) in the worse direction.")
  in
  let force_arg =
    Arg.(value & flag
         & info [ "force" ]
             ~doc:"Compare baselines even when they were measured on different \
                   core counts.")
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff"
         ~doc:"Compare two persisted bench baselines row by row; exits 1 iff a \
               row regressed beyond the threshold, 2 on unreadable/incomparable \
               baselines.")
      Term.(const diff_run $ old_arg $ new_arg $ threshold_arg $ force_arg)
  in
  Cmd.group (Cmd.info "bench" ~doc:"Benchmark baseline tooling.") [ diff_cmd ]

(* --- experiment / list ---------------------------------------------------- *)

let experiment_cmd =
  let run ids csv jobs =
    set_jobs jobs;
    let experiments =
      match ids with
      | [] -> H.Registry.all
      | ids ->
        List.map
          (fun id ->
            match H.Registry.find id with
            | Some e -> e
            | None -> failwith ("unknown experiment: " ^ id))
          ids
    in
    List.iter
      (fun (e : H.Registry.experiment) ->
        let table = e.build () in
        if csv then print_string (H.Table.to_csv table)
        else H.Table.render ppf table)
      experiments
  in
  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate experiment tables.")
    Term.(const run $ ids_arg $ csv_arg $ jobs_arg)

let list_cmd =
  let run json =
    if json then
      print_endline
        (O.Json.to_string
           (O.Json.List
              (List.map
                 (fun (e : H.Registry.experiment) ->
                   O.Json.Obj
                     [ ("id", O.Json.String e.id); ("title", O.Json.String e.title) ])
                 H.Registry.all)))
    else
      List.iter (fun (e : H.Registry.experiment) -> print_endline e.id) H.Registry.all
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit ids and titles as JSON.")
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids.") Term.(const run $ json_arg)

let () =
  let info =
    Cmd.info "anonc" ~version:"1.0.0"
      ~doc:"Fault-tolerant consensus in unknown and anonymous networks (ICDCS'09 reproduction)."
  in
  let group =
    Cmd.group info
      [ run_cmd; weakset_cmd; emulate_cmd; skew_cmd; sigma_cmd; metrics_cmd;
        fuzz_cmd; mc_cmd; load_cmd; live_cmd; bench_cmd; experiment_cmd;
        list_cmd ]
  in
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception G.Config_error.Invalid_config e ->
    Format.eprintf "anonc: invalid configuration — %s@." (G.Config_error.to_string e);
    exit 2
