open Anon_kernel

module Make (P : sig
  val failures_bound : int
end) =
struct
  let name = Printf.sprintf "floodset(f=%d)" P.failures_bound

  type msg = Value.Set.t

  type state = { seen : Value.Set.t }

  let msg_compare = Value.Set.compare
  let msg_size = Value.Set.cardinal
  let pp_msg = Value.pp_set
  let leader _ = None

  let initialize v =
    let st = { seen = Value.Set.singleton v } in
    (st, st.seen)

  let compute st ~round ~inbox:{ Anon_giraf.Intf.current; fresh = _ } =
    let seen = List.fold_left Value.Set.union st.seen current in
    let st = { seen } in
    if round >= P.failures_bound + 1 then
      (st, st.seen, Some (Value.Set.min_elt seen))
    else (st, st.seen, None)
end
