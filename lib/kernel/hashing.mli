(** Run-independent structural hashing (64-bit FNV-1a).

    The model checker keys canonical states by strings and hashes them for
    compact reporting. [Hashtbl.hash] is unsuitable because it truncates
    deep structures, and [Marshal] digests are unsuitable because
    hash-consed values ([History.t]) and balanced-set internals have
    run-dependent physical layout. FNV-1a over an explicit serialization is
    stable across runs, domains and interner scopes. *)

type t = int64
(** Accumulated hash state. *)

val init : t
(** The FNV-1a 64-bit offset basis. *)

val byte : t -> char -> t
val string : t -> string -> t

val int : t -> int -> t
(** Feeds the 8 little-endian bytes of the integer. *)

val hash_string : string -> t
(** [hash_string s = string init s]. *)

val to_hex : t -> string
(** 16-digit lowercase hex rendering. *)

(** FNV-style hashing over native [int] state — the same fold shape
    truncated to OCaml's 63-bit integers, for hot paths where the boxed
    [int64] accumulator of {!string} costs an allocation per byte (the
    model checker hashes every process view of every generated state).
    Not interchangeable with the [int64] stream: use it only where the
    hash never leaves the process (in-memory keys), never for values that
    appear in reports or golden files. *)
module Fast : sig
  type h = int

  val init : h
  (** Offset basis (63-bit). *)

  val prime : h

  val byte : h -> char -> h
  (** [(h lxor byte) * prime], wrapping mod 2{^63}. *)

  val string : h -> string -> h
end
