(** Run-independent structural hashing (64-bit FNV-1a).

    The model checker keys canonical states by strings and hashes them for
    compact reporting. [Hashtbl.hash] is unsuitable because it truncates
    deep structures, and [Marshal] digests are unsuitable because
    hash-consed values ([History.t]) and balanced-set internals have
    run-dependent physical layout. FNV-1a over an explicit serialization is
    stable across runs, domains and interner scopes. *)

type t = int64
(** Accumulated hash state. *)

val init : t
(** The FNV-1a 64-bit offset basis. *)

val byte : t -> char -> t
val string : t -> string -> t

val int : t -> int -> t
(** Feeds the 8 little-endian bytes of the integer. *)

val hash_string : string -> t
(** [hash_string s = string init s]. *)

val to_hex : t -> string
(** 16-digit lowercase hex rendering. *)
