(** Small summary-statistics helpers for the experiment harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;  (** True sample minimum (folded from the first element,
                    so infinities are reported faithfully). *)
  p50 : float;  (** [percentile xs 50.0] — the nearest-rank median (the
                    lower of the two middle elements for even counts). *)
  p95 : float;
  max : float;  (** True sample maximum (negative samples included). *)
}

val summarize : float list -> summary
(** Summary of a non-empty sample. @raise Invalid_argument on []. *)

val summarize_ints : int list -> summary

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank on the sorted
    sample. Non-empty sample required.
    @raise Invalid_argument if [p] is outside [\[0,100\]] (or NaN) or the
    sample is empty. *)

val mean : float list -> float
val stddev : float list -> float

val histogram : bucket:int -> int list -> (int * int) list
(** [histogram ~bucket xs] buckets integer samples into intervals of width
    [bucket]; returns [(bucket_start, count)] pairs, increasing, skipping
    empty buckets. *)

val pp_summary : Format.formatter -> summary -> unit
