(** History counter tables (the [C] variable of Alg. 3).

    Conceptually [C] maps {e every} history to a natural number, defaulting
    to 0; only non-zero entries are stored ("no memory is allocated for
    histories it has not yet heard of"). The two operations the algorithm
    performs each round are:

    - line 8: pointwise [min] over all received tables (with default 0 this
      keeps exactly the keys present in {e all} tables), and
    - line 9: [C\[m.HISTORY\] := 1 + max {C\[H\] | H prefix of m.HISTORY}].

    Tables travel inside messages, so they support structural comparison for
    message-set deduplication. *)

type t

val empty : t

val get : t -> History.t -> int
(** Counter of a history, defaulting to 0. *)

val set : t -> History.t -> int -> t
(** [set t h c] stores [c]; storing 0 removes the entry. *)

val min_merge : t list -> t
(** Pointwise minimum with default 0 of a list of tables: a key survives
    only if present (non-zero) in every table, with the minimum value.
    [min_merge []] is [empty]. *)

val bump_prefix_max : t -> History.t -> t
(** Alg. 3 line 9: [C\[h\] := 1 + max {C\[H\] | H prefix of h}] (the max is
    at least 0, over the default). *)

val is_max : t -> History.t -> bool
(** Alg. 3 leader test: [∀H, C\[h\] ≥ C\[H\]] — whether [h]'s counter ties
    the table's maximum (trivially true on an all-zero table). *)

val max_binding : t -> (History.t * int) option
(** Some entry of maximal counter, [None] if the table is all-zero. Ties
    are broken by lexicographic history order so the result is
    deterministic. *)

val min_merge_ops : unit -> int
(** Domain-local count of [min_merge] calls. Monotone within a domain;
    observability samples it before/after a run for deltas. *)

val prefix_bump_ops : unit -> int
(** Domain-local count of [bump_prefix_max] calls. *)

val bindings : t -> (History.t * int) list
val cardinal : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
