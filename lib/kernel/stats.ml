type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

let mean = function
  | [] -> invalid_arg "Stats.mean: empty sample"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let percentile xs p =
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg "Stats.percentile: p must be in [0, 100]";
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | sorted ->
    let n = List.length sorted in
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int n)) |> max 1 |> min n
    in
    List.nth sorted (rank - 1)

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | x :: rest ->
    (* Fold from the first element: seeding with Float.max_float /
       Float.min_float misreports samples containing infinities (and
       Float.min_float is the smallest positive normal, not a negative
       sentinel — an all-negative sample would report max ≈ 2.2e-308). *)
    {
      count = List.length xs;
      mean = mean xs;
      stddev = stddev xs;
      min = List.fold_left Float.min x rest;
      p50 = percentile xs 50.0;
      p95 = percentile xs 95.0;
      max = List.fold_left Float.max x rest;
    }

let summarize_ints xs = summarize (List.map float_of_int xs)

let histogram ~bucket xs =
  if bucket <= 0 then invalid_arg "Stats.histogram: bucket must be positive";
  let tbl = Hashtbl.create 16 in
  let bucket_of x = if x >= 0 then x / bucket * bucket else ((x - bucket + 1) / bucket) * bucket in
  List.iter
    (fun x ->
      let b = bucket_of x in
      Hashtbl.replace tbl b (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
    xs;
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.0f p50=%.0f p95=%.0f max=%.0f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.max
