type t = { id : int; len : int; node : node }

and node = Root | Snoc of t * Value.t

(* Intern table: (parent id, value) -> history.  Append-only within a
   scope, so ids are stable for the lifetime of the scope. *)

module Key = struct
  type t = int * Value.t

  let equal (i1, v1) (i2, v2) = Int.equal i1 i2 && Value.equal v1 v2
  let hash (i, v) = (i * 0x9e3779b1) lxor Value.hash v
end

module Table = Hashtbl.Make (Key)

(* The interner is domain-local state: worker domains of the execution
   pool each intern into their own table, so parallel simulations never
   contend on (or corrupt) a shared hashtable. [with_fresh_interner]
   additionally isolates one task from whatever its domain interned
   before, which keeps id assignment — and hence the intern hit/miss
   statistics — a pure function of the task. *)
type interner = {
  table : t Table.t;
  mutable next_id : int;
  mutable hits : int;
  mutable misses : int;
}

let fresh_interner () = { table = Table.create 4096; next_id = 1; hits = 0; misses = 0 }

let interner_key : interner Domain.DLS.key = Domain.DLS.new_key fresh_interner

let empty = { id = 0; len = 0; node = Root }

let snoc h v =
  let st = Domain.DLS.get interner_key in
  let key = (h.id, v) in
  match Table.find_opt st.table key with
  | Some h' ->
    st.hits <- st.hits + 1;
    h'
  | None ->
    st.misses <- st.misses + 1;
    let h' = { id = st.next_id; len = h.len + 1; node = Snoc (h, v) } in
    st.next_id <- st.next_id + 1;
    Table.add st.table key h';
    h'

let with_fresh_interner f =
  let saved = Domain.DLS.get interner_key in
  Domain.DLS.set interner_key (fresh_interner ());
  Fun.protect ~finally:(fun () -> Domain.DLS.set interner_key saved) f

let of_list vs = List.fold_left snoc empty vs

let to_list h =
  let rec go acc h =
    match h.node with Root -> acc | Snoc (p, v) -> go (v :: acc) p
  in
  go [] h

let length h = h.len
let last h = match h.node with Root -> None | Snoc (_, v) -> Some v
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let compare_lexicographic a b = List.compare Value.compare (to_list a) (to_list b)
let hash h = Hashtbl.hash h.id

let rec drop_to len h = if h.len <= len then h else
  match h.node with
  | Root -> h
  | Snoc (p, _) -> drop_to len p

let is_prefix ~prefix h =
  prefix.len <= h.len && equal prefix (drop_to prefix.len h)

let prefixes h =
  let rec go acc h =
    match h.node with Root -> h :: acc | Snoc (p, _) -> go (h :: acc) p
  in
  go [] h

let fold_prefixes f h init = List.fold_left (fun acc p -> f p acc) init (prefixes h)

let pp ppf h =
  Format.fprintf ppf "⟨@[%a@]⟩"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "·") Value.pp)
    (to_list h)

let interned_count () = (Domain.DLS.get interner_key).next_id
let intern_hits () = (Domain.DLS.get interner_key).hits
let intern_misses () = (Domain.DLS.get interner_key).misses

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
