type t = { id : int; len : int; node : node }

and node = Root | Snoc of t * Value.t

(* Intern table: (parent id, value) -> history.  Append-only; the table can
   only grow, so ids are stable for the lifetime of the process. *)

module Key = struct
  type t = int * Value.t

  let equal (i1, v1) (i2, v2) = Int.equal i1 i2 && Value.equal v1 v2
  let hash (i, v) = (i * 0x9e3779b1) lxor Value.hash v
end

module Table = Hashtbl.Make (Key)

let table : t Table.t = Table.create 4096
let next_id = ref 1
let empty = { id = 0; len = 0; node = Root }

(* Process-global interning statistics. Two int bumps on the hot path; the
   observability layer reads them as per-run deltas. *)
let hits = ref 0
let misses = ref 0

let snoc h v =
  let key = (h.id, v) in
  match Table.find_opt table key with
  | Some h' ->
    incr hits;
    h'
  | None ->
    incr misses;
    let h' = { id = !next_id; len = h.len + 1; node = Snoc (h, v) } in
    incr next_id;
    Table.add table key h';
    h'

let of_list vs = List.fold_left snoc empty vs

let to_list h =
  let rec go acc h =
    match h.node with Root -> acc | Snoc (p, v) -> go (v :: acc) p
  in
  go [] h

let length h = h.len
let last h = match h.node with Root -> None | Snoc (_, v) -> Some v
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let compare_lexicographic a b = List.compare Value.compare (to_list a) (to_list b)
let hash h = Hashtbl.hash h.id

let rec drop_to len h = if h.len <= len then h else
  match h.node with
  | Root -> h
  | Snoc (p, _) -> drop_to len p

let is_prefix ~prefix h =
  prefix.len <= h.len && equal prefix (drop_to prefix.len h)

let prefixes h =
  let rec go acc h =
    match h.node with Root -> h :: acc | Snoc (p, _) -> go (h :: acc) p
  in
  go [] h

let fold_prefixes f h init = List.fold_left (fun acc p -> f p acc) init (prefixes h)

let pp ppf h =
  Format.fprintf ppf "⟨@[%a@]⟩"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "·") Value.pp)
    (to_list h)

let interned_count () = !next_id
let intern_hits () = !hits
let intern_misses () = !misses

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
