(** Hash-consed proposal histories (Alg. 3).

    A history is the sequence of values a process has appended to its
    [HISTORY] variable, one per round. Histories are interned in a global
    table so that equality is O(1), hashing is O(1), and the prefix walks
    required by the counter table (Alg. 3 line 9) are O(length difference).

    Interning is append-only and shared between simulations; it only caches
    structure and never affects algorithm semantics. *)

type t

val empty : t
(** The empty history (the root of the intern trie). *)

val snoc : t -> Value.t -> t
(** [snoc h v] is the history [h] extended with [v]. *)

val of_list : Value.t list -> t
val to_list : t -> Value.t list

val length : t -> int
val last : t -> Value.t option
(** Last appended value; [None] on [empty]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Arbitrary total order (by intern id), suitable for [Map]/[Set] keys.
    Not the prefix order. *)

val compare_lexicographic : t -> t -> int
(** Lexicographic order on the underlying value sequences: a deterministic,
    run-independent total order used where observable tie-breaking matters. *)

val hash : t -> int

val is_prefix : prefix:t -> t -> bool
(** [is_prefix ~prefix:h1 h2] holds iff [h1] is a (not necessarily proper)
    prefix of [h2]. [empty] is a prefix of everything. *)

val prefixes : t -> t list
(** All prefixes of [h] from [empty] up to and including [h] itself,
    shortest first. Length [length h + 1]. *)

val fold_prefixes : (t -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_prefixes f h init] folds [f] over every prefix of [h] (including
    [empty] and [h]), shortest first. *)

val pp : Format.formatter -> t -> unit
(** Prints as [⟨v1·v2·…⟩]. *)

val interned_count : unit -> int
(** Number of distinct histories interned so far (diagnostics / benches). *)

val intern_hits : unit -> int
(** Process-global count of [snoc] calls answered from the intern table.
    Monotone; observability samples it before/after a run for deltas. *)

val intern_misses : unit -> int
(** Process-global count of [snoc] calls that allocated a new history. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
