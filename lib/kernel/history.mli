(** Hash-consed proposal histories (Alg. 3).

    A history is the sequence of values a process has appended to its
    [HISTORY] variable, one per round. Histories are interned so that
    equality is O(1), hashing is O(1), and the prefix walks required by
    the counter table (Alg. 3 line 9) are O(length difference).

    The intern table is {e domain-local}: each domain of the execution
    pool (lib/exec) interns into its own table, so parallel simulations
    never share mutable state. Interning is append-only within a scope;
    it only caches structure and never affects algorithm semantics.
    Histories from different interner scopes (different domains, or
    different {!with_fresh_interner} extents) must not be compared with
    {!equal}/{!compare} — ids are only unique within one scope. *)

type t

val empty : t
(** The empty history (the root of the intern trie). *)

val snoc : t -> Value.t -> t
(** [snoc h v] is the history [h] extended with [v]. *)

val of_list : Value.t list -> t
val to_list : t -> Value.t list

val length : t -> int
val last : t -> Value.t option
(** Last appended value; [None] on [empty]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Arbitrary total order (by intern id), suitable for [Map]/[Set] keys.
    Not the prefix order. *)

val compare_lexicographic : t -> t -> int
(** Lexicographic order on the underlying value sequences: a deterministic,
    run-independent total order used where observable tie-breaking matters. *)

val hash : t -> int

val is_prefix : prefix:t -> t -> bool
(** [is_prefix ~prefix:h1 h2] holds iff [h1] is a (not necessarily proper)
    prefix of [h2]. [empty] is a prefix of everything. *)

val prefixes : t -> t list
(** All prefixes of [h] from [empty] up to and including [h] itself,
    shortest first. Length [length h + 1]. *)

val fold_prefixes : (t -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_prefixes f h init] folds [f] over every prefix of [h] (including
    [empty] and [h]), shortest first. *)

val pp : Format.formatter -> t -> unit
(** Prints as [⟨v1·v2·…⟩]. *)

val with_fresh_interner : (unit -> 'a) -> 'a
(** [with_fresh_interner f] runs [f] against a brand-new, empty intern
    table and restores the previous one afterwards (also on exceptions).
    The execution pool wraps every task in this, making each run's id
    assignment and hit/miss statistics independent of whatever ran before
    it — the determinism argument for sequential/parallel equivalence
    (DESIGN.md §9). Histories created inside must not escape and be
    compared against histories from other scopes. *)

val interned_count : unit -> int
(** Number of distinct histories interned so far in the current scope
    (diagnostics / benches). *)

val intern_hits : unit -> int
(** Count of [snoc] calls answered from the current scope's intern table.
    Monotone within a scope; observability samples it before/after a run
    for deltas. *)

val intern_misses : unit -> int
(** Count of [snoc] calls that allocated a new history in the current
    scope. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
