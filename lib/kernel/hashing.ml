type t = int64

let init = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let byte h c =
  Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) prime

let string h s =
  let acc = ref h in
  String.iter (fun c -> acc := byte !acc c) s;
  !acc

let int h n =
  let acc = ref h in
  for shift = 0 to 7 do
    let b = Int64.to_int (Int64.logand (Int64.shift_right_logical (Int64.of_int n) (shift * 8)) 0xffL) in
    acc := byte !acc (Char.chr b)
  done;
  !acc

let hash_string s = string init s

let to_hex h = Printf.sprintf "%016Lx" h

module Fast = struct
  type h = int

  let init = 0x1cf29ce484222325
  let prime = 0x100000001b3
  let byte h c = (h lxor Char.code c) * prime

  let string h s =
    let acc = ref h in
    for i = 0 to String.length s - 1 do
      acc := (!acc lxor Char.code (String.unsafe_get s i)) * prime
    done;
    !acc
end
