type t = int History.Map.t
(* Invariant: all stored values are >= 1; absent means 0. *)

let empty = History.Map.empty
let get t h = match History.Map.find_opt h t with None -> 0 | Some c -> c
let set t h c = if c <= 0 then History.Map.remove h t else History.Map.add h c t

(* Operation counts, read as per-run deltas by the observability layer.
   Domain-local so parallel simulations never race on them. *)
type ops = { mutable min_merges : int; mutable prefix_bumps : int }

let ops_key : ops Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { min_merges = 0; prefix_bumps = 0 })

let min_merge_ops () = (Domain.DLS.get ops_key).min_merges
let prefix_bump_ops () = (Domain.DLS.get ops_key).prefix_bumps

let min_merge ts =
  let ops = Domain.DLS.get ops_key in
  ops.min_merges <- ops.min_merges + 1;
  match ts with
  | [] -> empty
  | t0 :: ts ->
    (* Keys must be present in every table; fold keeps the running minimum
       and drops keys missing from any later table. *)
    let keep_min acc t =
      History.Map.filter_map
        (fun h c -> match History.Map.find_opt h t with
          | None -> None
          | Some c' -> Some (min c c'))
        acc
    in
    List.fold_left keep_min t0 ts

let prefix_max t h =
  History.fold_prefixes (fun p acc -> max acc (get t p)) h 0

let bump_prefix_max t h =
  let ops = Domain.DLS.get ops_key in
  ops.prefix_bumps <- ops.prefix_bumps + 1;
  set t h (1 + prefix_max t h)

let table_max t = History.Map.fold (fun _ c acc -> max acc c) t 0

let is_max t h = get t h >= table_max t

let max_binding t =
  History.Map.fold
    (fun h c best ->
      match best with
      | None -> Some (h, c)
      | Some (h', c') ->
        if c > c' || (c = c' && History.compare_lexicographic h h' < 0)
        then Some (h, c)
        else best)
    t None

let bindings t = History.Map.bindings t
let cardinal t = History.Map.cardinal t
let compare = History.Map.compare Int.compare
let equal a b = compare a b = 0

let pp ppf t =
  let pp_binding ppf (h, c) = Format.fprintf ppf "%a↦%d" History.pp h c in
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_binding)
    (bindings t)
