module R = Anon_obs.Recorder
module M = Anon_obs.Metrics
module E = Anon_obs.Event
module Hashing = Anon_kernel.Hashing

type t = { name : string; edge : n:int -> round:int -> src:int -> dst:int -> bool }

let name t = t.name
let edge t = t.edge
let make ~name edge = { name; edge }

(* Deterministic per-(salt, ints) hash — topology must be a pure function
   of the round so repro replays rebuild the identical graph sequence. *)
let det ~salt xs =
  let acc = List.fold_left Hashing.int (Hashing.string Hashing.init salt) xs in
  Int64.to_int (Int64.logand acc 0x3FFF_FFFF_FFFF_FFFFL)

let complete = { name = "complete"; edge = (fun ~n:_ ~round:_ ~src:_ ~dst:_ -> true) }

let rotating_root ?(period = 1) () =
  if period < 1 then invalid_arg "Topology.rotating_root: period must be >= 1";
  let edge ~n ~round ~src ~dst =
    let root = (round - 1) / period mod max 1 n in
    src = root || dst = root
  in
  { name = Printf.sprintf "rotating-root(p=%d)" period; edge }

let spanning_star ?(seed = 0) () =
  let edge ~n ~round ~src ~dst =
    let center = det ~salt:"star" [ seed; round ] mod max 1 n in
    src = center || dst = center
  in
  { name = Printf.sprintf "spanning-star(seed=%d)" seed; edge }

let t_interval ~t () =
  if t < 1 then invalid_arg "Topology.t_interval: t must be >= 1";
  let edge ~n ~round ~src ~dst =
    let interval = (round - 1) / t in
    let center = det ~salt:"interval" [ t; interval ] mod max 1 n in
    src = center || dst = center
  in
  { name = Printf.sprintf "t-interval(t=%d)" t; edge }

let partition_pulse ~period () =
  if period < 1 then invalid_arg "Topology.partition_pulse: period must be >= 1";
  let edge ~n:_ ~round ~src ~dst =
    if (round - 1) mod period = 0 then
      (* Pulse round: split by pid parity, no cross-partition links. *)
      src mod 2 = dst mod 2
    else true
  in
  { name = Printf.sprintf "partition-pulse(p=%d)" period; edge }

let random_graph ?(seed = 0) ~density () =
  if not (density >= 0. && density <= 1.) then
    invalid_arg "Topology.random_graph: density must be in [0,1]";
  let threshold = int_of_float (density *. 1_000_000.) in
  let edge ~n:_ ~round ~src ~dst =
    det ~salt:"random" [ seed; round; src; dst ] mod 1_000_000 < threshold
  in
  { name = Printf.sprintf "random(seed=%d,density=%.2f)" seed density; edge }

let builtins =
  [
    complete;
    rotating_root ();
    rotating_root ~period:3 ();
    spanning_star ();
    t_interval ~t:2 ();
    partition_pulse ~period:3 ();
    random_graph ~density:0.5 ();
  ]

(* Rounds in which the environment obliges {e every} correct sender to be
   timely to every obligated receiver — severing any such link would break
   the declared environment, so [sever] must protect all of them. *)
let full_sync env ~round =
  match (env : Env.t) with
  | Env.Sync -> true
  | Env.Es { gst } -> round >= gst
  | Env.Dynamic { stability; _ } -> not (Env.pulse ~stability ~round)
  | Env.Ms | Env.Ess _ | Env.Async -> false

let sever ?(recorder = R.off) top adv =
  let env = Adversary.env adv in
  let c_severed = R.counter recorder "graph.severed_links" in
  let apply (ctx : Adversary.ctx) _rng (plan : Adversary.plan) =
    let k = ctx.round in
    let n =
      1 + List.fold_left max (-1) (ctx.correct @ ctx.alive @ ctx.senders)
    in
    let sync_round = full_sync env ~round:k in
    let protected src dst =
      List.mem dst ctx.obligated
      && ((Env.requires_source env ~round:k && plan.Adversary.source = Some src)
         || (sync_round && List.mem src ctx.correct))
    in
    let deliveries =
      List.map
        (fun (src, ds) ->
          ( src,
            List.map
              (fun (d : Adversary.delivery) ->
                if
                  d.arrival = k
                  && (not (top.edge ~n ~round:k ~src ~dst:d.receiver))
                  && not (protected src d.receiver)
                then begin
                  M.incr c_severed;
                  R.emit recorder (fun () ->
                      E.Fault { kind = "sever"; round = k; sender = src; receiver = d.receiver });
                  { d with arrival = k + 1 }
                end
                else d)
              ds ))
        plan.Adversary.deliveries
    in
    { plan with Adversary.deliveries }
  in
  Adversary.map_plan ~rename:(fun name -> name ^ "+" ^ top.name) apply adv
