(** Shared broadcast-delivery phase of the runners.

    Applies an adversary plan (and the crash-round partial broadcasts) to
    the messages produced in one round, scheduling arrivals into receiver
    mailboxes and accounting timeliness for the trace. *)

type 'msg outbound = { sender : int; msg : 'msg }

type stats = {
  timely : (int * int list) list;  (** sender -> timely receivers (w/o self) *)
  delivered : int;
  timely_count : int;
}

val dispatch :
  round:int ->
  outgoing:'msg outbound list ->
  crashing_events:Crash.event list ->
  eligible:(int -> bool) ->
  receivers:int list ->
  plan:Adversary.plan ->
  crash_rng:Anon_kernel.Rng.t ->
  ?on_deliver:(sender:int -> receiver:int -> arrival:int -> unit) ->
  schedule:(receiver:int -> arrival:int -> sent:int -> 'msg -> unit) ->
  unit ->
  stats
(** Self-delivery (always timely) is performed for every outbound message;
    crashing senders reach only the subset dictated by their crash event
    — for [Broadcast_subset] a plan entry for the crashing sender, when
    present, pins the subset (and arrivals) deterministically, otherwise
    the subset is chosen with [crash_rng]; all other senders follow
    [plan]. [eligible] says whether a pid may still receive (alive,
    not halted); [receivers] lists the pids a crashing sender may target.
    Arrivals are clamped to [>= round]. [on_deliver] observes every
    point-to-point delivery (self-deliveries excluded), after the
    corresponding [schedule] call. *)
