(** Per-round communication graphs.

    A topology is a deterministic per-round directed-graph predicate; links
    absent from the graph carry no timely messages. {!sever} plugs a
    topology under any adversary: every timely delivery over a non-edge is
    demoted to one round late — {e except} links the declared environment
    obligates (the round's source to obligated receivers; every correct
    sender in fully synchronous rounds), which are protected so an
    admissible adversary stays admissible. Late deliveries are left alone:
    the model's reliable channels mean a severed link's message still
    crosses once the graph changes.

    Generators are pure functions of the round (hash-based, no RNG) so a
    replayed repro rebuilds the identical graph sequence. *)

type t

val name : t -> string
val edge : t -> n:int -> round:int -> src:int -> dst:int -> bool
val make : name:string -> (n:int -> round:int -> src:int -> dst:int -> bool) -> t

val complete : t
(** The static fully connected graph ([sever] with it is the identity). *)

val rotating_root : ?period:int -> unit -> t
(** A star around a root that advances every [period] rounds (default 1):
    round [r]'s root is [(r-1)/period mod n]. *)

val spanning_star : ?seed:int -> unit -> t
(** A spanning star whose center is re-drawn every round from a
    deterministic hash of [(seed, round)]. *)

val t_interval : t:int -> unit -> t
(** T-interval connectivity: a spanning star whose center only changes
    every [t] rounds — within each interval the graph is static. *)

val partition_pulse : period:int -> unit -> t
(** Every [period]-th round the network splits into two halves (pids by
    parity) with no cross-partition links; all other rounds are complete. *)

val random_graph : ?seed:int -> density:float -> unit -> t
(** Each directed link exists independently per round with probability
    [density], drawn from a deterministic hash. Requires
    [density] in [\[0,1\]]. *)

val builtins : t list
(** The generator zoo the fuzzer samples from. *)

val sever : ?recorder:Anon_obs.Recorder.t -> t -> Adversary.t -> Adversary.t
(** [sever top adv] post-processes every plan of [adv]: timely arrivals
    over non-edges of [top] become late (arrival + 1) unless the link is
    environment-obligated. Severed links are counted as
    [graph.severed_links] and emitted as [Fault] events with kind
    ["sever"]. The adversary name gains a ["+<topology>"] suffix. *)
