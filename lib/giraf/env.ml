type t =
  | Sync
  | Ms
  | Es of { gst : int }
  | Ess of { gst : int }
  | Async
  | Dynamic of { stability : int; rooted : bool }

let pp ppf = function
  | Sync -> Format.pp_print_string ppf "SYNC"
  | Ms -> Format.pp_print_string ppf "MS"
  | Es { gst } -> Format.fprintf ppf "ES(gst=%d)" gst
  | Ess { gst } -> Format.fprintf ppf "ESS(gst=%d)" gst
  | Async -> Format.pp_print_string ppf "ASYNC"
  | Dynamic { stability; rooted } ->
    Format.fprintf ppf "DYN(s=%d%s)" stability (if rooted then "" else ",unrooted")

let to_string t = Format.asprintf "%a" pp t

(* Rounds are grouped into windows of [stability]; each window opens with a
   reconfiguration pulse and then holds still for the remaining rounds. *)
let pulse ~stability ~round = (round - 1) mod stability = 0

let requires_source t ~round =
  match t with
  | Sync | Ms | Es _ | Ess _ -> true
  | Async -> false
  | Dynamic { stability; rooted } -> rooted || not (pulse ~stability ~round)

let gst = function
  | Sync -> Some 1
  | Ms | Async | Dynamic _ -> None
  | Es { gst } | Ess { gst } -> Some gst

let of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "unknown environment %S (sync|ms|async|es:GST|ess:GST|dynamic:S[:unrooted])" s)
  in
  let int_of s = int_of_string_opt s in
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "sync" ] -> Ok Sync
  | [ "ms" ] -> Ok Ms
  | [ "async" ] -> Ok Async
  | [ "es" ] -> Ok (Es { gst = 10 })
  | [ "ess" ] -> Ok (Ess { gst = 10 })
  | [ "es"; g ] -> (
    match int_of g with Some gst when gst >= 1 -> Ok (Es { gst }) | _ -> fail ())
  | [ "ess"; g ] -> (
    match int_of g with Some gst when gst >= 1 -> Ok (Ess { gst }) | _ -> fail ())
  | [ "dynamic"; st ] | [ "dyn"; st ] -> (
    match int_of st with
    | Some stability when stability >= 1 -> Ok (Dynamic { stability; rooted = true })
    | _ -> fail ())
  | [ "dynamic"; st; "unrooted" ] | [ "dyn"; st; "unrooted" ] -> (
    match int_of st with
    | Some stability when stability >= 1 -> Ok (Dynamic { stability; rooted = false })
    | _ -> fail ())
  | _ -> fail ()
