open Anon_kernel

type pace_fn = pid:int -> round:int -> Rng.t -> int
type delay_fn = sender:int -> receiver:int -> round:int -> Rng.t -> int

let uniform_pace ~max ~pid:_ ~round:_ rng = Rng.int_in rng 1 (Stdlib.max 1 max)
let fixed_pace p ~pid:_ ~round:_ _rng = Stdlib.max 1 p
let uniform_delay ~max ~sender:_ ~receiver:_ ~round:_ rng =
  Rng.int_in rng 1 (Stdlib.max 1 max)
let fixed_delay d ~sender:_ ~receiver:_ ~round:_ _rng = Stdlib.max 1 d

type config = {
  inputs : Value.t list;
  crash : Crash.t;
  horizon_ticks : int;
  max_rounds : int;
  seed : int;
  pace : pace_fn;
  delay : delay_fn;
  stop_on_decision : bool;
}

let validate ~where config =
  let n = List.length config.inputs in
  if n < 1 then Config_error.fail ~where "inputs must be non-empty";
  if config.horizon_ticks < 1 then
    Config_error.fail ~where
      (Printf.sprintf "horizon_ticks must be >= 1 (got %d)" config.horizon_ticks);
  if config.max_rounds < 1 then
    Config_error.fail ~where
      (Printf.sprintf "max_rounds must be >= 1 (got %d)" config.max_rounds);
  if Crash.n config.crash <> n then
    Config_error.fail ~where
      (Printf.sprintf "inputs/crash size mismatch (%d inputs, crash schedule for %d)"
         n (Crash.n config.crash))

let default_config ?(horizon_ticks = 2_000) ?(max_rounds = 400) ?(seed = 42)
    ?(pace = fixed_pace 1) ?(delay = fixed_delay 1) ?(stop_on_decision = true)
    ~inputs ~crash () =
  let config =
    { inputs; crash; horizon_ticks; max_rounds; seed; pace; delay; stop_on_decision }
  in
  validate ~where:"Skew_runner.default_config" config;
  config

type outcome = {
  trace : Trace.t;
  decisions : (int * int * Value.t) list;
  all_correct_decided : bool;
  ticks : int;
  rounds_completed : int array;
}

module Make (A : Intf.ALGORITHM) = struct
  type proc = {
    pid : int;
    mutable st : A.state option;
    mutable round : int;  (* end-of-rounds performed (k_i) *)
    mutable stopped : bool;  (* halted, crashed, or past max_rounds *)
    mutable halted : bool;  (* decided *)
    rounds_msgs : (int, A.msg list) Hashtbl.t;  (* M_i[k], deduped+sorted *)
    mutable fresh : (int * A.msg) list;  (* arrivals since last compute, reversed *)
    mutable next_fire : int;
    compute_log : (int, A.msg list) Hashtbl.t;  (* round -> current at compute *)
  }

  let current_of proc k =
    Option.value ~default:[] (Hashtbl.find_opt proc.rounds_msgs k)

  (* Merge a message into M_i[k]; returns whether it was new. *)
  let insert proc ~k msg =
    let existing = current_of proc k in
    if List.exists (fun m -> A.msg_compare m msg = 0) existing then false
    else begin
      Hashtbl.replace proc.rounds_msgs k (List.sort A.msg_compare (msg :: existing));
      true
    end

  let run ?(env = Env.Async) ?(recorder = Anon_obs.Recorder.off) config =
    let module R = Anon_obs.Recorder in
    let module M = Anon_obs.Metrics in
    let module E = Anon_obs.Event in
    let obs_on = R.active recorder in
    let kernel_before = if obs_on then Some (R.kernel_baseline ()) else None in
    let m_broadcasts = R.counter recorder "skew.broadcasts" in
    let m_deliveries = R.counter recorder "skew.deliveries" in
    let m_decisions = R.counter recorder "skew.decisions" in
    let m_crashes = R.counter recorder "skew.crashes" in
    let m_ticks = R.gauge recorder "skew.ticks" in
    let m_msg_size = R.histogram recorder "skew.msg_size" in
    let t_compute = R.histogram recorder "phase.compute_us" in
    validate ~where:"Skew_runner.run" config;
    let inputs = Array.of_list config.inputs in
    let n = Array.length inputs in
    R.emit recorder (fun () ->
        E.Run_start { algo = A.name; n; seed = config.seed });
    let rng = Rng.make config.seed in
    let crash_rng = Rng.split rng in
    let correct = Crash.correct config.crash in
    let procs =
      Array.init n (fun pid ->
          {
            pid;
            st = None;
            round = 0;
            stopped = false;
            halted = false;
            rounds_msgs = Hashtbl.create 64;
            fresh = [];
            next_fire = 0;
            compute_log = Hashtbl.create 64;
          })
    in
    (* Delivery events: tick -> (sender, receiver, round, message set) list. *)
    let events : (int, (int * int * int * A.msg list) list) Hashtbl.t =
      Hashtbl.create 256
    in
    let schedule_delivery tick ev =
      Hashtbl.replace events tick (ev :: Option.value ~default:[] (Hashtbl.find_opt events tick))
    in
    let decisions = ref [] in
    let sent_msgs : (int * int, A.msg) Hashtbl.t = Hashtbl.create 256 in
    let crashed_at : (int, int list) Hashtbl.t = Hashtbl.create 16 in
    let decided_at : (int, (int * Value.t) list) Hashtbl.t = Hashtbl.create 16 in
    let messages_broadcast = ref 0 in
    let push tbl k x =
      Hashtbl.replace tbl k (x :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
    in
    let all_correct_decided () =
      List.for_all (fun p -> procs.(p).halted) correct
    in
    (* One end-of-round of [proc] at tick [t] (Alg. 1 lines 5-12). *)
    let fire proc t =
      let next = proc.round + 1 in
      let crashing_now = Crash.crash_round config.crash proc.pid = Some next in
      if next > config.max_rounds then proc.stopped <- true
      else begin
          let result =
            M.time t_compute (fun () ->
                if next = 1 then begin
                  let st, m = A.initialize inputs.(proc.pid) in
                  proc.st <- Some st;
                  Some m
                end
                else begin
                  let current = current_of proc (next - 1) in
                  Hashtbl.replace proc.compute_log (next - 1) current;
                  let fresh = List.rev proc.fresh in
                  proc.fresh <- [];
                  let st = match proc.st with Some st -> st | None -> assert false in
                  let st', m, dec =
                    A.compute st ~round:(next - 1) ~inbox:{ Intf.current; fresh }
                  in
                  proc.st <- Some st';
                  match dec with
                  | Some v ->
                    decisions := (proc.pid, next - 1, v) :: !decisions;
                    push decided_at (next - 1) (proc.pid, v);
                    proc.halted <- true;
                    proc.stopped <- true;
                    M.incr m_decisions;
                    R.emit recorder (fun () ->
                        E.Decide { pid = proc.pid; round = next - 1; value = v });
                    None
                  | None -> Some m
                end)
          in
          match result with
          | None -> ()
          | Some m ->
            proc.round <- next;
            ignore (insert proc ~k:next m);
            proc.fresh <- (next, m) :: proc.fresh;
            Hashtbl.replace sent_msgs (proc.pid, next) m;
            incr messages_broadcast;
            if obs_on then begin
              M.incr m_broadcasts;
              M.observe m_msg_size (float_of_int (A.msg_size m));
              R.emit recorder (fun () ->
                  E.Broadcast { pid = proc.pid; round = next; size = A.msg_size m })
            end;
            (* Broadcast the whole round set: the relay that lets a
               receiver obtain a message through a third party. *)
            let snapshot = current_of proc next in
            let receivers =
              let others =
                List.filter
                  (fun q -> q <> proc.pid && not procs.(q).stopped)
                  (List.init n Fun.id)
              in
              if crashing_now then
                match
                  List.find_opt
                    (fun (e : Crash.event) -> e.pid = proc.pid)
                    (Crash.crashing_at config.crash ~round:next)
                with
                | Some { broadcast = Crash.Silent; _ } -> []
                | Some { broadcast = Crash.Broadcast_all; _ } -> others
                | Some { broadcast = Crash.Broadcast_subset; _ } | None ->
                  Rng.subset crash_rng ~p:0.5 others
              else others
            in
            List.iter
              (fun q ->
                let d =
                  Stdlib.max 1
                    (config.delay ~sender:proc.pid ~receiver:q ~round:next rng)
                in
                schedule_delivery (t + d) (proc.pid, q, next, snapshot))
              receivers;
            if crashing_now then begin
              proc.stopped <- true;
              push crashed_at next proc.pid;
              M.incr m_crashes;
              R.emit recorder (fun () -> E.Crash { pid = proc.pid; round = next })
            end
            else
              proc.next_fire <-
                t + Stdlib.max 1 (config.pace ~pid:proc.pid ~round:next rng)
        end
    in
    let t = ref 0 in
    let running = ref true in
    while !running && !t <= config.horizon_ticks do
      (match Hashtbl.find_opt events !t with
      | None -> ()
      | Some evs ->
        List.iter
          (fun (s, q, k, msgs) ->
            let proc = procs.(q) in
            if not proc.stopped then
              List.iter
                (fun m ->
                  if insert proc ~k m then begin
                    proc.fresh <- (k, m) :: proc.fresh;
                    M.incr m_deliveries;
                    (* Arrival round: the first round whose compute sees
                       this message as fresh (the relay carries round-k
                       sets, so [s] may not be the original sender of
                       every copy — it is the flow edge's source). *)
                    R.emit recorder (fun () ->
                        E.Deliver
                          {
                            sender = s;
                            receiver = q;
                            round = k;
                            arrival = Stdlib.max k (proc.round + 1);
                          })
                  end)
                msgs)
          (List.rev evs);
        Hashtbl.remove events !t);
      Array.iter
        (fun proc -> if (not proc.stopped) && proc.next_fire = !t then fire proc !t)
        procs;
      if config.stop_on_decision && all_correct_decided () then running := false;
      if Array.for_all (fun proc -> proc.stopped) procs then running := false;
      incr t
    done;
    (* Post-hoc, content-based trace: sender s's round-k message is timely
       to q iff (a copy of) it sat in q's round-k set when q computed
       round k. *)
    let max_round = Array.fold_left (fun acc p -> Stdlib.max acc p.round) 0 procs in
    let round_info k =
      let senders =
        List.filter (fun p -> Hashtbl.mem sent_msgs (p, k)) (List.init n Fun.id)
      in
      let computed =
        List.filter (fun q -> Hashtbl.mem procs.(q).compute_log k) (List.init n Fun.id)
      in
      let timely =
        List.filter_map
          (fun s ->
            match Hashtbl.find_opt sent_msgs (s, k) with
            | None -> None
            | Some m ->
              let receivers =
                List.filter
                  (fun q ->
                    q <> s
                    && List.exists
                         (fun m' -> A.msg_compare m m' = 0)
                         (Option.value ~default:[]
                            (Hashtbl.find_opt procs.(q).compute_log k)))
                  computed
              in
              if receivers = [] then None else Some (s, receivers))
          senders
      in
      {
        Trace.round = k;
        senders;
        crashing = Option.value ~default:[] (Hashtbl.find_opt crashed_at k);
        source = None;
        timely;
        obligated = computed;
        decided = Option.value ~default:[] (Hashtbl.find_opt decided_at k);
        msg_sizes =
          List.filter_map
            (fun s ->
              Option.map (fun m -> (s, A.msg_size m)) (Hashtbl.find_opt sent_msgs (s, k)))
            senders;
      }
    in
    let trace =
      {
        Trace.n;
        inputs;
        crash = config.crash;
        churn = Churn.none ~n;
        env;
        rounds = List.init max_round (fun i -> round_info (i + 1));
      }
    in
    let decided = all_correct_decided () in
    let ticks = Stdlib.min !t config.horizon_ticks in
    if obs_on then begin
      M.set_gauge m_ticks (float_of_int ticks);
      (match kernel_before with
      | Some b -> R.record_kernel recorder b
      | None -> ());
      R.emit recorder (fun () -> E.Run_end { rounds = max_round; decided });
      R.flush recorder
    end;
    {
      trace;
      decisions = List.rev !decisions;
      all_correct_decided = decided;
      ticks;
      rounds_completed = Array.map (fun p -> p.round) procs;
    }
end
