(** Execution engine for consensus-style algorithms (Alg. 1 semantics).

    The runner is lockstep in structure — iteration [k] runs every live
    process's [k]-th end-of-round (computing round [k-1] and broadcasting
    the round-[k] message) — but deliveries are fully adversarial: a
    round-[k] message reaches each receiver either timely (consumed by the
    receiver's [compute] of round [k]) or at an adversary-chosen later
    round. A process that decides halts immediately and broadcasts nothing
    further. *)

type config = {
  inputs : Anon_kernel.Value.t array;  (** One proposal per process; defines [n]. *)
  crash : Crash.t;
  churn : Churn.t;
      (** Join/leave schedule ({!Churn.none} for a static membership). An
          away process takes no steps, receives nothing, and loses its
          mailbox; a rejoiner restarts from [initialize] on its original
          input. Halted (decided) processes ignore their churn event. *)
  adversary : Adversary.t;
  horizon : int;  (** Maximum number of rounds to simulate. *)
  seed : int;
  stop_on_decision : bool;
      (** Stop as soon as every correct stayer has decided (default
          behaviour of [default_config]). *)
}

val default_config :
  ?horizon:int -> ?stop_on_decision:bool -> ?seed:int -> ?churn:Churn.t ->
  inputs:Anon_kernel.Value.t list -> crash:Crash.t -> Adversary.t -> config
(** [horizon] defaults to 200 rounds, [seed] to 42, [churn] to
    {!Churn.none}.

    @raise Config_error.Invalid_config on empty [inputs], [horizon < 1],
    an inputs/crash or inputs/churn size mismatch, or a pid that both
    crashes and churns. [run] re-validates, so directly constructed
    configs are rejected too. *)

type outcome = {
  trace : Trace.t;
  decisions : (int * int * Anon_kernel.Value.t) list;
      (** [(pid, round, value)], chronological. *)
  all_correct_decided : bool;  (** Every correct stayer decided. *)
  rounds_executed : int;
  messages_sent : int;  (** Broadcast invocations. *)
  deliveries : int;  (** Point-to-point deliveries (excluding self). *)
  timely_deliveries : int;
}

val decision_round : outcome -> int option
(** Round by which the {e last} correct process decided, if all did. *)

module Make (A : Intf.ALGORITHM) : sig
  val run :
    ?observe:(pid:int -> round:int -> A.state -> unit) ->
    ?recorder:Anon_obs.Recorder.t ->
    config -> outcome
  (** Simulate. [observe] is called after every [compute] with the
      post-state (for algorithm-specific instrumentation such as
      pseudo-leader tracking); it must not mutate the state.

      [recorder] (default {!Anon_obs.Recorder.off}) receives the full
      event stream (round/broadcast/deliver/decide/crash/leader) and the
      [runner.*], [phase.*] and [kernel.*] metrics; see DESIGN.md §7. *)
end
