(** Execution engine for weak-set services (Alg. 4 semantics).

    Processes run rounds forever (services never decide); clients — one per
    process — invoke [add]/[get] operations between rounds, sequentially
    per process. The run produces operation records on a global logical
    clock suitable for [Checker.check_weak_set]:

    - computes of round [k-1] (where pending [add]s complete) happen at
      time [2k];
    - operations invoked while a process is in round [k] happen at time
      [2k + 1]. *)

type op_spec = Step_core.op_spec =
  | Do_add of Anon_kernel.Value.t
  | Do_get
  | Do_add_with of (Anon_kernel.Value.Set.t -> Anon_kernel.Value.t)
      (** Add a value computed from the client's current [get] view at
          invocation time (used by layered objects such as the register of
          Prop. 1, whose writes read the set first). *)

type workload = Step_core.workload
(** Per pid: [(earliest_round, op)] scripts. Operations run in list order,
    each starting no earlier than its round and only after the previous
    operation of the same client completed. *)

val random_workload :
  n:int ->
  ops_per_client:int ->
  max_start:int ->
  value_range:int ->
  Anon_kernel.Rng.t ->
  workload
(** Mixed add/get scripts with distinct add values across all clients (so
    that semantic checking is exact). *)

type config = {
  n : int;
  crash : Crash.t;
  churn : Churn.t;
      (** Join/leave schedule ({!Churn.none} for static membership). A
          leaver's pending add is recorded incomplete; a rejoiner restarts
          with a fresh replica and empty mailbox, its remaining client
          script intact. *)
  adversary : Adversary.t;
  horizon : int;
  seed : int;
}

type add_record = {
  client : int;
  value : Anon_kernel.Value.t;
  invoked_round : int;
  completed_round : int option;
}

type outcome = {
  trace : Trace.t;
  ops : Checker.ws_op list;  (** Chronological. *)
  adds : add_record list;  (** Latency data for the benches. *)
  rounds_executed : int;
  messages_sent : int;
}

module Make (S : Intf.SERVICE) : sig
  val run :
    ?observe:(pid:int -> round:int -> S.state -> unit) ->
    ?recorder:Anon_obs.Recorder.t ->
    config -> workload:workload -> outcome
  (** [observe] is called after every [compute] (and after [initialize])
      with the post-state, once any pending [add] completion has been
      detected — the same instant the model checker's node states are
      defined at. It must not mutate the state.

      [recorder] (default {!Anon_obs.Recorder.off}) receives weak-set
      operation events ([Ws_add]/[Ws_add_done]/[Ws_get]) alongside the
      generic delivery/crash stream, plus [service.*] and [phase.*]
      metrics; see DESIGN.md §7.

      @raise Config_error.Invalid_config on [n < 1], [horizon < 1], a
      crash or churn schedule sized for a different [n], or a pid that
      both crashes and churns. *)
end
