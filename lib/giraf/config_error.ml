type t = { where : string; what : string }

exception Invalid_config of t

let fail ~where what = raise (Invalid_config { where; what })
let to_string { where; what } = where ^ ": " ^ what
let pp ppf t = Format.pp_print_string ppf (to_string t)

let () =
  Printexc.register_printer (function
    | Invalid_config t -> Some ("Invalid_config: " ^ to_string t)
    | _ -> None)
