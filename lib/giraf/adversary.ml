open Anon_kernel

type ctx = {
  round : int;
  senders : int list;
  obligated : int list;
  correct : int list;
  alive : int list;
}

type delivery = { receiver : int; arrival : int }
type plan = { source : int option; deliveries : (int * delivery list) list }

type t = {
  name : string;
  env : Env.t;
  plan : ctx -> Rng.t -> plan;
}

let name t = t.name
let env t = t.env
let plan t = t.plan

type rotation = Round_robin | Random_source | Pinned of int

let receivers_of ctx sender = List.filter (fun q -> q <> sender) ctx.alive

let timely_all ctx =
  let deliveries =
    List.map
      (fun p ->
        (p, List.map (fun q -> { receiver = q; arrival = ctx.round }) (receivers_of ctx p)))
      ctx.senders
  in
  let source = match ctx.senders with [] -> None | s :: _ -> Some s in
  { source; deliveries }

let late_arrival ctx rng max_delay = ctx.round + Rng.int_in rng 1 (max 1 max_delay)

(* Source candidates must be correct (so they survive the round) and
   actually broadcasting this round. *)
let source_candidates ctx =
  List.filter (fun p -> List.mem p ctx.correct) ctx.senders

let pick_source ~rotation ctx rng =
  match source_candidates ctx with
  | [] -> None
  | candidates ->
    (match rotation with
    | Round_robin -> Some (List.nth candidates (ctx.round mod List.length candidates))
    | Random_source -> Some (Rng.pick rng candidates)
    | Pinned p -> if List.mem p candidates then Some p else Some (List.hd candidates))

(* One round of "minimal + noise" schedule: [source] (if any) is timely to
   all obligated receivers; every other (sender, receiver) link is timely
   with probability [noise], late otherwise. *)
let noisy_round ~source ~noise ~max_delay ctx rng =
  let deliveries =
    List.map
      (fun p ->
        let is_source = match source with Some s -> s = p | None -> false in
        let plan_receiver q =
          let must_be_timely = is_source && List.mem q ctx.obligated in
          let arrival =
            if must_be_timely || Rng.chance rng noise then ctx.round
            else late_arrival ctx rng max_delay
          in
          { receiver = q; arrival }
        in
        (p, List.map plan_receiver (receivers_of ctx p)))
      ctx.senders
  in
  { source; deliveries }

let sync () = { name = "sync"; env = Env.Sync; plan = (fun ctx _rng -> timely_all ctx) }

let ms ?(rotation = Round_robin) ?(noise = 0.0) ?(max_delay = 3) () =
  let plan ctx rng =
    let source = pick_source ~rotation ctx rng in
    noisy_round ~source ~noise ~max_delay ctx rng
  in
  { name = "ms"; env = Env.Ms; plan }

let es ~gst ?(noise = 0.0) ?(max_delay = 3) () =
  let plan ctx rng =
    if ctx.round >= gst then timely_all ctx
    else
      let source = pick_source ~rotation:Round_robin ctx rng in
      noisy_round ~source ~noise ~max_delay ctx rng
  in
  { name = "es"; env = Env.Es { gst }; plan }

let ess ~gst ?source ?(rotation = Round_robin) ?(noise = 0.0) ?(max_delay = 3) () =
  let plan ctx rng =
    let stable =
      match source with
      | Some p -> Pinned p
      | None -> (match ctx.correct with [] -> Round_robin | p :: _ -> Pinned p)
    in
    let rotation = if ctx.round >= gst then stable else rotation in
    let source = pick_source ~rotation ctx rng in
    noisy_round ~source ~noise ~max_delay ctx rng
  in
  { name = "ess"; env = Env.Ess { gst }; plan }

(* Pre-GST schedule that provably stalls Alg. 2: two camps, the source
   alternating between the two smallest correct senders by round parity,
   all other links exactly one round late. Each camp's champion keeps
   seeing its own value written while the other value stays in PROPOSED, so
   the decide guard never fires. *)
let blocking_round ctx =
  let candidates = source_candidates ctx in
  let source =
    match candidates with
    | [] -> None
    | [ s ] -> Some s
    | s0 :: s1 :: _ -> Some (if ctx.round mod 2 = 1 then s0 else s1)
  in
  let deliveries =
    List.map
      (fun p ->
        let is_source = match source with Some s -> s = p | None -> false in
        let plan q =
          let arrival =
            if is_source && List.mem q ctx.obligated then ctx.round
            else ctx.round + 1
          in
          { receiver = q; arrival }
        in
        (p, List.map plan (receivers_of ctx p)))
      ctx.senders
  in
  { source; deliveries }

let es_blocking ~gst () =
  let plan ctx _rng =
    if ctx.round >= gst then timely_all ctx else blocking_round ctx
  in
  { name = "es-blocking"; env = Env.Es { gst }; plan }

let ess_blocking ~gst ?source () =
  let plan ctx rng =
    if ctx.round >= gst then
      let rotation =
        match source with
        | Some p -> Pinned p
        | None -> (match ctx.correct with [] -> Round_robin | p :: _ -> Pinned p)
      in
      let source = pick_source ~rotation ctx rng in
      noisy_round ~source ~noise:0.0 ~max_delay:1 ctx rng
    else blocking_round ctx
  in
  { name = "ess-blocking"; env = Env.Ess { gst }; plan }

let dynamic ~stability ?(rooted = true) ?(rotation = Round_robin) ?(noise = 0.0)
    ?(max_delay = 3) () =
  if stability < 1 then invalid_arg "Adversary.dynamic: stability must be >= 1";
  let plan ctx rng =
    if not (Env.pulse ~stability ~round:ctx.round) then
      (* Healed remainder of the window: full synchrony. *)
      timely_all ctx
    else if rooted then
      (* Reconfiguration pulse: rewire to a minimal covering star around a
         rotating root, plus noise. *)
      let source = pick_source ~rotation ctx rng in
      noisy_round ~source ~noise ~max_delay ctx rng
    else noisy_round ~source:None ~noise ~max_delay ctx rng
  in
  {
    name = Printf.sprintf "dynamic(s=%d%s)" stability (if rooted then "" else ",unrooted");
    env = Env.Dynamic { stability; rooted };
    plan;
  }

let async ?(max_delay = 5) ?(timely_chance = 0.3) () =
  let plan ctx rng = noisy_round ~source:None ~noise:timely_chance ~max_delay ctx rng in
  { name = "async"; env = Env.Async; plan }

let scripted ~name ~env plan = { name; env; plan }

let of_schedule ?(name = "schedule") ~env plans =
  let plans = Array.of_list plans in
  let plan ctx _rng =
    if ctx.round >= 1 && ctx.round <= Array.length plans then
      plans.(ctx.round - 1)
    else timely_all ctx
  in
  { name; env; plan }

let map_plan ?(rename = Fun.id) f t =
  { t with name = rename t.name; plan = (fun ctx rng -> f ctx rng (t.plan ctx rng)) }
