(** Module signatures of the extended GIRAF framework (Alg. 1).

    The framework executes {e anonymous} round-based algorithms: a process
    automaton never observes process identifiers, only the round number and
    the {e set} of messages received — duplicates from distinct senders are
    indistinguishable and merged, exactly as in the paper's model. Simulator
    process ids exist only on the runner side (schedules, traces, metrics).

    Round numbering follows Alg. 1: the [k]-th [end-of-round] runs
    [compute] on round [k-1]'s mailbox (or [initialize] when [k = 1]) and
    broadcasts the round-[k] message. A message sent for round [k] is
    {e timely} towards [q] iff it is in [q]'s round-[k] mailbox when [q]
    computes round [k]. *)

type 'msg inbox = {
  current : 'msg list;
      (** The round-[k] message set [M_i\[k\]] at [compute (k, M_i)] time:
          deduplicated, sorted by the algorithm's message order, and always
          containing the process's own round-[k] message (Alg. 1 line 10). *)
  fresh : (int * 'msg) list;
      (** Every [(sent_round, msg)] arrival since the previous [compute],
          including late messages for earlier rounds and the process's own
          round-[k] message. Needed by algorithms that read
          [M_i\[k'\], 1 ≤ k' ≤ k_i] (Alg. 4 line 15). *)
}

(** Consensus-style automaton: proposes a value at initialization and may
    decide (and halt) during a [compute]. *)
module type ALGORITHM = sig
  val name : string

  type state
  type msg

  val msg_compare : msg -> msg -> int
  (** Total order used to deduplicate message sets. Messages equal under
      [msg_compare] are the same message (anonymity). *)

  val msg_size : msg -> int
  (** Abstract payload size (number of values / history entries / counter
      entries carried), for message-growth metrics. *)

  val pp_msg : Format.formatter -> msg -> unit

  val leader : state -> bool option
  (** Pseudo-leader introspection for instrumented runners: [Some flag]
      when the algorithm maintains a self-leader estimate (Alg. 3 line 15),
      [None] when it has no leader concept. Observability only — never
      consulted by the execution semantics. *)

  val initialize : Anon_kernel.Value.t -> state * msg
  (** [initialize v] is the process's first step (Alg. 1 line 7): its
      proposal is [v]; returns the round-1 message. *)

  val compute :
    state -> round:int -> inbox:msg inbox -> state * msg * Anon_kernel.Value.t option
  (** [compute st ~round ~inbox] is Alg. 1 line 9 for round [round];
      returns the next state, the round-[round+1] message, and [Some v] if
      the process decides [v] now. A deciding process halts: the returned
      message is {e not} broadcast and the process takes no further steps
      ("decide VAL; halt"). *)
end

(** Weak-set-style service automaton: no decision, but client operations
    [add]/[get] invoked between rounds (Alg. 4). *)
module type SERVICE = sig
  val name : string

  type state
  type msg

  val msg_compare : msg -> msg -> int
  val msg_size : msg -> int
  val pp_msg : Format.formatter -> msg -> unit

  val initialize : unit -> state * msg

  val compute : state -> round:int -> inbox:msg inbox -> state * msg
  (** End-of-round transition; completion of a pending [add] is observed
      via [add_pending] flipping to [false]. *)

  val add : state -> Anon_kernel.Value.t -> state
  (** Start an [add]. Precondition: [not (add_pending st)] — the paper's
      automaton serves one blocking [add] at a time per process. *)

  val add_pending : state -> bool
  (** The [BLOCK] flag of Alg. 4: [true] while an [add] is in progress. *)

  val get : state -> Anon_kernel.Value.Set.t
  (** The non-blocking [get] (Alg. 4 lines 5–6). *)
end
