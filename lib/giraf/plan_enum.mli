(** Exhaustive enumeration of admissible delivery plans.

    The model checker branches, per round, over every schedule the
    environment admits: a choice of source (where the environment demands
    one), a timely/late fate for every non-obligated link, and a
    delivered/late/dropped fate for every link out of a sender crashing
    this round. The enumeration mirrors {!Checker.check_env} exactly — a
    plan marked [admissible] here is never flagged by the checker when the
    resulting trace is replayed, and (up to the documented restrictions
    below) every checker-admissible delivery pattern over arrivals within
    [max_delay] is generated.

    Restrictions, argued in DESIGN.md §10:
    - Late arrivals range over [round + 1 .. round + max_delay]. For the
      consensus algorithms (Alg. 2/3) this is WLOG at [max_delay = 1]:
      their [compute] reads only the timely inbox ([current]), so a late
      message is never read no matter how late it is.
    - Under ESS from [gst] on, non-source senders never cover the whole
      obligated set, so the checker's stable-source candidate set stays the
      singleton chosen source. The excluded patterns (a non-source sender
      incidentally timely to everyone) are explored by the same
      configuration under ES, which forces them.
    - Crashing senders are assumed to use [Crash.Broadcast_subset] with a
      plan entry pinning the subset (see {!Dispatch}); each of their links
      is timely, late, or dropped. *)

type spec = {
  env : Env.t;
  stable : int option;
      (** ESS only: the current segment's stable source. From [gst] on, if
          it is still sending it is the forced source; if it has halted (or
          [None] at the first post-[gst] round) the enumeration branches
          over every correct sender as the new segment source — the chosen
          one is recorded as the plan's [source]. *)
  max_delay : int;  (** Late arrivals span [round + 1 .. round + max_delay]. *)
  crashing : int list;
      (** Senders crashing this round (their links may also be dropped). *)
  include_inadmissible : bool;
      (** Also emit one deliberately obligation-dropping plan per demanding
          round (everything late, crashers silent) — the armed mode used to
          prove the checker catches environment violations. *)
}

type choice = { plan : Adversary.plan; admissible : bool }

val default : env:Env.t -> spec
(** [max_delay = 1], no stable source, no crashers, not armed. *)

val enumerate : spec -> Adversary.ctx -> choice list
(** All distinct delivery patterns for this round, deterministically
    ordered, deduplicated by {!plan_key}. *)

val plan_key : Adversary.plan -> string
(** Canonical rendering of a plan's delivery pattern (sender and receiver
    order normalised, declared source ignored) — the deduplication key. *)

type memo
(** A cache over [enumerate] results. Many states of one exploration share
    their (round, stable, crashing, process-set) signature and therefore
    their exact choice list; memoizing skips the combinatorial rebuild.
    The cache assumes a fixed [spec] apart from its [stable]/[crashing]
    fields and a fixed [ctx.correct] — one exploration's worth. Not
    domain-safe: create it where it is used (the model checker creates one
    per [init], so at [jobs > 1] each task replays with its own). *)

val memo : unit -> memo

val enumerate_memo : memo -> spec -> Adversary.ctx -> choice list
(** [enumerate] through the cache; the returned list is shared, treat it
    as immutable. *)
