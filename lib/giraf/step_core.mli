(** The single per-round stepping core shared by the execution engines and
    the model checker.

    One iteration of Alg. 1 is three phases, each owned here and nowhere
    else:

    - {b begin_round}: churn transitions (a leaver goes absent, a rejoiner
      restarts from scratch with an empty mailbox), then the round's crash
      events are latched against the fates as they stand;
    - {b compute}: iteration [k] consumes every arrival [<= k-1] and runs
      [compute] on round [k-1]'s mailbox (or [initialize] when the process
      has no state), producing the round-[k] broadcast; consensus deciders
      halt and send nothing;
    - {b deliver}: the round-[k] messages are dispatched under the
      adversary plan ({!Dispatch} semantics: arrivals clamped to [>= k],
      receivers must be live, a plan entry pins a [Broadcast_subset]
      crasher's partial broadcast, a [Broadcast_all] crasher reaches every
      live non-crashing process timely), the crashers are marked, and the
      ESS stable-source bookkeeping advances.

    {!Runner} and {!Service_runner} drive a core round-by-round with
    observation hooks; [Anon_mc.Consensus_sys] and [Anon_mc.Ws_sys] cut
    the same cycle after the compute phase, [copy] the core to branch, and
    read states through the accessors. The hooks default to no-ops so the
    checker pays nothing for the runner's observability.

    Per-process [version] counters increment whenever that process's
    observable view (state, broadcast, mailbox, fate, stable flag)
    changes; the checker uses them to update canonical-key digests
    incrementally instead of re-rendering every view.

    {b Pinned adversary stack order.} The plan fed to [deliver] may pass
    through wrapper layers before it arrives here; their order is fixed,
    not a caller choice: base adversary, then the chaos fault layers
    ([Anon_chaos.Fault.wrap]), then topology severing
    ({!Topology.sever}) outermost. Severing must see the final plan (the
    unstable-source injector rewrites the source whose obligated links
    severing protects), and the admissible fault layers only touch
    already-late arrivals — so a severed link reaches [deliver] exactly
    one round late regardless of fault draws. [Anon_chaos.Fault.compose]
    is the canonical constructor for the full stack. *)

type fate = Live | Crashed | Halted | Away

type op_spec = Do_add of Anon_kernel.Value.t | Do_get | Do_add_with of (Anon_kernel.Value.Set.t -> Anon_kernel.Value.t)
(** One client operation of a weak-set workload (see {!Service_runner},
    which re-exports this type). *)

type workload = (int * (int * op_spec) list) list
(** Per pid: [(earliest_round, op)] scripts, in execution order. *)

(** Consensus-style stepping (Alg. 2/3 families): processes may decide
    and halt. *)
module Consensus (A : Intf.ALGORITHM) : sig
  type t

  val create :
    inputs:Anon_kernel.Value.t array ->
    crash:Crash.t ->
    churn:Churn.t ->
    env:Env.t ->
    t
  (** A core at round 0, before the first {!begin_round}. Inputs are read
      at every [initialize] (round 1 and each rejoin). *)

  val copy : t -> t
  (** Independent snapshot: phase calls on the copy never affect the
      original (algorithm states are immutable and shared). *)

  val begin_round : ?on_leave:(pid:int -> unit) -> ?on_rejoin:(pid:int -> unit) -> t -> unit
  (** Advance to the next round: churn transitions, then the crash latch.
      Halted processes ignore churn; a rejoiner's state and mailbox are
      discarded here and rebuilt at the next {!compute}. *)

  val compute :
    ?observe:(pid:int -> round:int -> A.state -> unit) ->
    ?on_decide:(pid:int -> round:int -> value:Anon_kernel.Value.t -> unit) ->
    t ->
    A.msg Dispatch.outbound list
  (** The round's compute phase over every live process in pid order;
      returns the broadcasts (ascending pid). [observe] sees every
      post-compute state (deciders included) labelled with the algorithm
      round [k-1]; [on_decide] fires as the decider halts. *)

  val ctx : t -> Adversary.ctx
  (** The adversary context after {!compute}: senders, obligated and alive
      receivers all coincide — the live processes not crashing this
      round. *)

  val deliver :
    ?on_deliver:(sender:int -> receiver:int -> arrival:int -> unit) ->
    ?on_crash:(pid:int -> unit) ->
    t ->
    plan:Adversary.plan ->
    crash_rng:Anon_kernel.Rng.t ->
    Dispatch.stats
  (** Dispatch the round's broadcasts under [plan], mark the latched
      crashers, and (ESS, past GST) latch the plan's source as the stable
      source. [crash_rng] is consumed only for an {e unscripted}
      [Broadcast_subset] crasher — the model checker's plans always script
      those, so it may pass any generator. *)

  val n : t -> int
  val round : t -> int
  val fate : t -> int -> fate
  val state : t -> int -> A.state option
  val out : t -> int -> A.msg option
  (** The broadcast produced by the last {!compute}, [None] when the
      process sent nothing (halted, crashed, away). *)

  val inflight : t -> int -> (int * int * A.msg) list
  (** Undrained [(arrival, sent, msg)] deliveries, newest first. *)

  val version : t -> int -> int
  val crashing_now : t -> Crash.event list
  val crashing_pids : t -> int list
  val stable : t -> int option
  val correct : t -> int list
  val correct_stayers : t -> int list
  val undecided_correct_stayers : t -> int list
  (** Liveness is owed to correct stayers only: a churner may rejoin after
      everyone halted and run alone forever. *)

  val mailbox_pending : t -> int -> int
end

(** Weak-set-style stepping (Alg. 4): no decisions, but a per-round
    client-operation phase between {!Service.deliver} and the next
    {!Service.begin_round}. *)
module Service (S : Intf.SERVICE) : sig
  type t

  val create :
    n:int -> crash:Crash.t -> churn:Churn.t -> env:Env.t -> workload:workload -> t

  val copy : t -> t

  val begin_round :
    ?on_leave:(pid:int -> pending:(Anon_kernel.Value.t * int) option -> unit) ->
    ?on_rejoin:(pid:int -> unit) ->
    t ->
    unit
  (** As for consensus; a leaver's pending add (value, invoked round) is
      handed to [on_leave] for recording as incomplete. *)

  val compute :
    ?observe:(pid:int -> round:int -> S.state -> unit) ->
    ?on_add_complete:(pid:int -> value:Anon_kernel.Value.t -> invoked_round:int -> unit) ->
    t ->
    S.msg Dispatch.outbound list
  (** The compute phase; a pending add completes ([on_add_complete]) the
      moment the BLOCK flag clears, before [observe] sees the state. *)

  val ctx : t -> Adversary.ctx

  val deliver :
    ?on_deliver:(sender:int -> receiver:int -> arrival:int -> unit) ->
    ?on_crash:(pid:int -> unit) ->
    t ->
    plan:Adversary.plan ->
    crash_rng:Anon_kernel.Rng.t ->
    Dispatch.stats

  val ops :
    ?on_get:(pid:int -> result:Anon_kernel.Value.Set.t -> unit) ->
    ?on_add:(pid:int -> value:Anon_kernel.Value.t -> unit) ->
    t ->
    unit
  (** The round-[round] operation phase: one operation per unblocked live
      client in pid order, each starting no earlier than its scripted
      round. Adds set the BLOCK flag; gets are non-blocking. *)

  val n : t -> int
  val round : t -> int
  val fate : t -> int -> fate
  val state : t -> int -> S.state option
  val out : t -> int -> S.msg option
  val inflight : t -> int -> (int * int * S.msg) list
  val version : t -> int -> int
  val script : t -> int -> (int * op_spec) list
  val blocked : t -> int -> (Anon_kernel.Value.t * int) option
  val crashing_now : t -> Crash.event list
  val crashing_pids : t -> int list
  val correct : t -> int list
  val mailbox_pending : t -> int -> int
end
