(** Environment specifications (§2.3 of the paper).

    An environment is a round-based property restricting message arrivals;
    it is what the adversary must satisfy and what the trace checker
    verifies. [gst] parameters make the "eventually" in ES/ESS concrete so
    generated schedules can be checked mechanically. *)

type t =
  | Sync  (** Every process has a timely link in every round. *)
  | Ms  (** Moving source: every round has some source with a timely link. *)
  | Es of { gst : int }
      (** Eventually synchronous: MS always, and from round [gst] on every
          correct process has a timely link in every round. *)
  | Ess of { gst : int }
      (** Eventually stable source: MS always, and from round [gst] on the
          {e same} correct process is a source in every round. *)
  | Async
      (** No timeliness guarantee at all (messages still reliable). Used
          for FLP-style experiments; no consensus liveness expected. *)
  | Dynamic of { stability : int; rooted : bool }
      (** Per-round communication graphs with short-lived stability (after
          Winkler et al., arXiv:1602.05852): rounds are grouped into windows
          of [stability]. The first round of each window is a
          {e reconfiguration pulse} — the graph may be rewired arbitrarily;
          if [rooted], some correct process must still reach every obligated
          receiver timely (a covering root). The remaining [stability - 1]
          rounds of the window are {e healed}: every correct sender is
          timely to every obligated receiver. [stability = 1] with [rooted]
          is the pure rotating-root regime (every round a pulse); large
          [stability] approaches ES-from-round-2. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val pulse : stability:int -> round:int -> bool
(** Whether [round] opens a stability window (rounds [1], [1 + stability],
    [1 + 2*stability], ...). Requires [stability >= 1]. *)

val requires_source : t -> round:int -> bool
(** Whether the environment obliges a source to exist in [round] (true for
    all except [Async], and for [Dynamic] pulse rounds when unrooted). *)

val gst : t -> int option
(** The round from which the eventual guarantee holds, if any. *)

val of_string : string -> (t, string) result
(** Parse a CLI spelling: [sync], [ms], [async], [es:GST], [ess:GST],
    [dynamic:S] (rooted) or [dynamic:S:unrooted]; [es]/[ess] without a GST
    default to 10. *)
