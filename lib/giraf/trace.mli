(** Execution traces.

    The runner records, for every round, who sent, who crashed, which links
    were timely and who had decided — enough for the checkers to re-verify
    both the environment constraints (the adversary kept its promises) and
    the consensus properties, without trusting either the adversary or the
    algorithm. *)

type round_info = {
  round : int;
  senders : int list;  (** Broadcast a round-[round] message. *)
  crashing : int list;  (** Crashed at this round (possibly partial broadcast). *)
  source : int option;  (** The adversary's declared source (advisory). *)
  timely : (int * int list) list;
      (** [(sender, receivers)] pairs actually delivered timely; the
          implicit self-delivery is {e not} listed. *)
  obligated : int list;
      (** Alive, non-halted processes at sending time (everyone who will
          compute this round) — whom a source was required to reach. This
          is deliberately stronger than the paper's literal §2.3 wording
          ("every correct process"): the Lemma 1 proof needs it, and
          experiment A2 shows uniform agreement breaks without it. *)
  decided : (int * Anon_kernel.Value.t) list;
      (** Decisions taken at this round's [compute] (i.e. on the mailbox of
          round [round - 1]). *)
  msg_sizes : (int * int) list;  (** Abstract payload size per sender. *)
}

type t = {
  n : int;
  inputs : Anon_kernel.Value.t array;
  crash : Crash.t;
  churn : Churn.t;  (** Join/leave schedule ({!Churn.none} when static). *)
  env : Env.t;  (** What the adversary promised. *)
  rounds : round_info list;  (** Chronological. *)
}

val timely_to : round_info -> int -> int list
(** Receivers (other than itself) that got [sender]'s message timely. *)

val decisions : t -> (int * int * Anon_kernel.Value.t) list
(** All [(pid, round, value)] decisions, chronological. *)

val last_round : t -> int
val pp_round : Format.formatter -> round_info -> unit
val pp : Format.formatter -> t -> unit
