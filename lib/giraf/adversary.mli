(** Message-scheduling adversaries.

    An adversary is consulted once per round with the current round context
    and decides, for every sender, which receivers get the round-[k]
    message {e timely} (in their own round [k]) and at which later round
    everyone else receives it. Constructors produce the hardest schedules
    admissible in each environment of §2.3, optionally softened by [noise]
    (probability that a non-obligated link happens to be timely). *)

type ctx = {
  round : int;
  senders : int list;  (** Broadcasting normally this round (alive, not halted, not crashing). *)
  obligated : int list;
      (** Correct, non-halted processes — the receivers a source must reach
          timely. *)
  correct : int list;  (** Statically correct processes. *)
  alive : int list;  (** All processes still taking steps (receivers). *)
}

type delivery = { receiver : int; arrival : int }
(** [arrival = ctx.round] means timely; otherwise [arrival > ctx.round]. *)

type plan = {
  source : int option;
      (** The sender the adversary designates as this round's source
          (recorded in the trace; the checker re-verifies coverage). *)
  deliveries : (int * delivery list) list;
      (** Per sender, the delivery schedule to every receiver except
          itself (self-delivery is implicit and always timely). *)
}

type t

val name : t -> string
val env : t -> Env.t
(** The environment specification this adversary's schedules satisfy. *)

val plan : t -> ctx -> Anon_kernel.Rng.t -> plan

type rotation =
  | Round_robin  (** Source cycles through correct processes. *)
  | Random_source  (** Fresh uniform source each round. *)
  | Pinned of int  (** Always the same source (must be correct). *)

val sync : unit -> t
(** Everybody timely to everybody, always. *)

val ms :
  ?rotation:rotation -> ?noise:float -> ?max_delay:int -> unit -> t
(** Moving source forever: each round exactly the obligations of MS, plus
    [noise] extra timely links; all other messages arrive with a delay
    uniform in [\[1, max_delay\]]. Defaults: [Round_robin], [noise = 0.],
    [max_delay = 3]. *)

val es : gst:int -> ?noise:float -> ?max_delay:int -> unit -> t
(** MS-grade schedule before [gst], fully timely from round [gst] on. *)

val ess :
  gst:int -> ?source:int -> ?rotation:rotation -> ?noise:float ->
  ?max_delay:int -> unit -> t
(** MS-grade schedule before [gst]; from round [gst] on the pinned [source]
    (default: the smallest correct pid) is timely to everyone every round.
    Non-source links stay as noisy/late as before [gst]. *)

val es_blocking : gst:int -> unit -> t
(** The hardest ES schedule we know for Alg. 2: before [gst], the source
    alternates between the two smallest correct processes (odd/even
    rounds) and every non-source link is one round late — this preserves
    disagreement between the two camps indefinitely, so decisions only
    happen after [gst]. From [gst] on, fully timely. *)

val ess_blocking : gst:int -> ?source:int -> unit -> t
(** Same pre-[gst] two-source alternation; from [gst] on only the pinned
    stable source is timely (minimal ESS). *)

val dynamic :
  stability:int -> ?rooted:bool -> ?rotation:rotation -> ?noise:float ->
  ?max_delay:int -> unit -> t
(** Per-round graphs with stability windows ({!Env.Dynamic}): each pulse
    round rewires the graph to a minimal covering star around a rotating
    root (no root at all when [rooted = false], default [true]); the
    remaining [stability - 1] rounds of each window are fully timely.
    Compose with {!Topology.sever} to restrict the non-obligated links to a
    generated graph. Requires [stability >= 1]. *)

val async : ?max_delay:int -> ?timely_chance:float -> unit -> t
(** No obligations: each link is timely with probability [timely_chance]
    (default 0.3), late otherwise. *)

val scripted :
  name:string -> env:Env.t -> (ctx -> Anon_kernel.Rng.t -> plan) -> t
(** Fully custom schedule (used by tests to force worst cases). *)

val of_schedule : ?name:string -> env:Env.t -> plan list -> t
(** [of_schedule ~env plans] replays a recorded schedule: round [k] gets
    [List.nth plans (k - 1)] verbatim (the context and RNG are ignored),
    and rounds past the end of the list fall back to [timely_all]. This is
    how model-checker witnesses re-execute through the runners: deliveries
    naming receivers that have meanwhile crashed or halted are dropped by
    dispatch, everything else is deterministic. *)

val map_plan :
  ?rename:(string -> string) -> (ctx -> Anon_kernel.Rng.t -> plan -> plan) -> t -> t
(** [map_plan f t] post-processes every plan [t] emits with [f] (same
    declared environment). This is the wrapping hook the chaos layer's
    fault injectors build on: [f] receives the round context, the RNG
    (already advanced by the inner adversary), and the inner plan. The
    wrapper is responsible for keeping the transformed schedule admissible
    — or deliberately not, to exercise the checker. *)

val timely_all : ctx -> plan
(** Helper: the fully synchronous plan for [ctx] (every sender timely to
    every alive receiver). *)
