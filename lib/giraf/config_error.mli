(** Structured configuration errors.

    Every runner validates its configuration before executing and rejects
    bad inputs with {!Invalid_config} — a structured error carrying the
    rejecting component and a human-readable reason — instead of ad-hoc
    [invalid_arg] strings or silent misbehavior. The CLI catches it at the
    top level and prints [to_string]. *)

type t = {
  where : string;  (** The rejecting component, e.g. ["Runner.default_config"]. *)
  what : string;  (** What was wrong, e.g. ["horizon must be >= 1 (got 0)"]. *)
}

exception Invalid_config of t

val fail : where:string -> string -> 'a
(** [fail ~where what] raises {!Invalid_config}. *)

val to_string : t -> string
(** ["<where>: <what>"]. *)

val pp : Format.formatter -> t -> unit
