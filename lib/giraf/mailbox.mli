(** Per-process message buffers: in-flight arrivals bucketed by the
    receiver round at which they land, and the per-round message sets
    [M_i\[k\]] of Alg. 1 (deduplicated — anonymity merges identical
    messages). *)

type 'msg t

val create : compare:('msg -> 'msg -> int) -> unit -> 'msg t

val schedule : 'msg t -> arrival:int -> sent:int -> 'msg -> unit
(** Enqueue a delivery landing at receiver round [arrival]. *)

val drain : 'msg t -> upto:int -> (int * 'msg) list
(** Move every arrival bucket [<= upto] into the round message sets;
    returns the drained [(sent_round, msg)] list in arrival order. Buckets
    are drained at most once. *)

val current : 'msg t -> round:int -> 'msg list
(** The deduplicated, sorted message set [M_i\[round\]] as filled by
    [drain] so far. *)

val pending : 'msg t -> int
(** Number of scheduled deliveries not yet drained — the mailbox-growth
    quantity sampled by instrumented runners. *)
