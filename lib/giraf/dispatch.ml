open Anon_kernel

type 'msg outbound = { sender : int; msg : 'msg }

type stats = {
  timely : (int * int list) list;
  delivered : int;
  timely_count : int;
}

let dispatch ~round ~outgoing ~crashing_events ~eligible ~receivers ~plan ~crash_rng
    ?(on_deliver = fun ~sender:_ ~receiver:_ ~arrival:_ -> ()) ~schedule () =
  let timely = ref [] in
  let delivered = ref 0 in
  let timely_count = ref 0 in
  (* Each sender's deliveries are contiguous (one outbound per sender), so
     its timely receivers accumulate in [cur] and join [timely] as a
     single entry once the sender is done. *)
  let cur = ref [] in
  let deliver ~sender ~msg (d : Adversary.delivery) =
    if d.receiver <> sender && eligible d.receiver then begin
      let arrival = max d.arrival round in
      schedule ~receiver:d.receiver ~arrival ~sent:round msg;
      on_deliver ~sender ~receiver:d.receiver ~arrival;
      incr delivered;
      if arrival = round then begin
        incr timely_count;
        cur := d.receiver :: !cur
      end
    end
  in
  let flush_timely sender =
    if !cur <> [] then begin
      timely := (sender, !cur) :: !timely;
      cur := []
    end
  in
  let crashing pid =
    List.find_opt (fun (ev : Crash.event) -> ev.pid = pid) crashing_events
  in
  List.iter
    (fun { sender; msg } ->
      schedule ~receiver:sender ~arrival:round ~sent:round msg;
      (match crashing sender with
      | Some ev -> (
        let scripted =
          match ev.broadcast with
          | Crash.Broadcast_subset ->
            List.assoc_opt sender plan.Adversary.deliveries
          | Crash.Silent | Crash.Broadcast_all -> None
        in
        match scripted with
        | Some ds ->
          (* A plan entry for a [Broadcast_subset] crasher pins the partial
             broadcast deterministically (model-checker witnesses replay
             the exact subset); without one the RNG picks as before. *)
          List.iter (fun d -> deliver ~sender ~msg d) ds
        | None ->
          let others = List.filter (fun q -> q <> sender) receivers in
          (match ev.broadcast with
          | Crash.Silent -> ()
          | Crash.Broadcast_all ->
            (* Clean stop: the final broadcast reaches everyone timely
               (crash.mli). Drawing arrivals from [crash_rng] here used to
               let the last message slip past its own round, diverging from
               the model checker's reading. *)
            List.iter
              (fun q -> deliver ~sender ~msg { Adversary.receiver = q; arrival = round })
              others
          | Crash.Broadcast_subset ->
            List.iter
              (fun q ->
                let arrival =
                  if Rng.bool crash_rng then round
                  else round + Rng.int_in crash_rng 1 3
                in
                deliver ~sender ~msg { Adversary.receiver = q; arrival })
              (Rng.subset crash_rng ~p:0.5 others)))
      | None -> (
        match List.assoc_opt sender plan.Adversary.deliveries with
        | None -> ()
        | Some ds -> List.iter (fun d -> deliver ~sender ~msg d) ds));
      flush_timely sender)
    outgoing;
  { timely = !timely; delivered = !delivered; timely_count = !timely_count }
