open Anon_kernel

type event = { pid : int; leave : int; rejoin : int option }
type t = { n : int; by_pid : event option array }

let none ~n = { n; by_pid = Array.make n None }

let of_events ~n evs =
  let by_pid = Array.make n None in
  List.iter
    (fun ev ->
      if ev.pid < 0 || ev.pid >= n then invalid_arg "Churn.of_events: pid out of range";
      if ev.leave < 1 then invalid_arg "Churn.of_events: leave round must be >= 1";
      (match ev.rejoin with
      | Some r when r <= ev.leave ->
        invalid_arg "Churn.of_events: rejoin round must be after leave round"
      | Some _ | None -> ());
      if by_pid.(ev.pid) <> None then invalid_arg "Churn.of_events: duplicate pid";
      by_pid.(ev.pid) <- Some ev)
    evs;
  { n; by_pid }

let random ~n ~churners ~max_round rng =
  if churners < 0 || churners > n then invalid_arg "Churn.random: bad churner count";
  let victims = Rng.shuffle rng (List.init n Fun.id) in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  let evs =
    List.map
      (fun pid ->
        let leave = Rng.int_in rng 1 (max max_round 1) in
        let rejoin =
          if Rng.bool rng then Some (leave + Rng.int_in rng 1 3) else None
        in
        { pid; leave; rejoin })
      (take churners victims)
  in
  of_events ~n evs

let n t = t.n

let events t =
  Array.to_list t.by_pid |> List.filter_map Fun.id
  |> List.sort (fun a b -> compare (a.leave, a.pid) (b.leave, b.pid))

let event t pid = t.by_pid.(pid)
let is_stayer t pid = t.by_pid.(pid) = None
let stayers t = List.filter (is_stayer t) (List.init t.n Fun.id)

let away t ~pid ~round =
  match t.by_pid.(pid) with
  | None -> false
  | Some ev -> (
    round >= ev.leave
    && match ev.rejoin with None -> true | Some r -> round < r)

let leaving_at t ~round = List.filter (fun ev -> ev.leave = round) (events t)

let rejoining_at t ~round =
  List.filter (fun ev -> ev.rejoin = Some round) (events t)

let churners t = List.length (events t)

let pp ppf t =
  let pp_event ppf ev =
    match ev.rejoin with
    | None -> Format.fprintf ppf "p%d leaves@@r%d" ev.pid ev.leave
    | Some r -> Format.fprintf ppf "p%d away@@r%d-r%d" ev.pid ev.leave r
  in
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_event)
    (events t)
