(* The dispatch-backend seam: the mailbox semantics both backends share.
   See backend.mli. *)

type kind = Lockstep | Live

let kind_name = function Lockstep -> "lockstep" | Live -> "live"

type 'msg arrival = int * int * 'msg

(* Inbox assembly shared by every execution backend: partition the
   in-flight list at [arrival <= round], sort the ready arrivals
   canonically by (arrival, sent, message), and split into the
   deduplicated current-round set and the fresh list. The canonical order
   is what lets the lockstep runner, the model checker and the live
   backend share one reading of Alg. 1 line 10: no algorithm can
   distinguish any other order (messages are sets — anonymity merges
   duplicates). *)
let ready_inbox ~compare ~round inflight =
  (* Same-object messages compare equal without walking the structure — a
     broadcast shares one message value across its receivers, and late
     entries resurface across rounds. *)
  let compare m1 m2 = if m1 == m2 then 0 else compare m1 m2 in
  let ready, rest =
    (* Post-GST steady state: everything in flight is ready. Checking
       first skips the two-list rebuild of [partition]. *)
    if List.for_all (fun (a, _, _) -> a <= round) inflight then (inflight, [])
    else List.partition (fun (a, _, _) -> a <= round) inflight
  in
  let ready =
    List.sort
      (fun (a1, s1, m1) (a2, s2, m2) ->
        match Int.compare a1 a2 with
        | 0 -> ( match Int.compare s1 s2 with 0 -> compare m1 m2 | c -> c)
        | c -> c)
      ready
  in
  (* Arrivals never precede sends (every backend clamps [arrival >=
     sent]), so a ready entry with [sent = round] has [arrival = round]
     too: the current-round messages are one contiguous run of the sorted
     list, already in message order — deduplication is adjacent-uniq, no
     second sort. *)
  let rec uniq_current = function
    | [] -> []
    | (_, s, m) :: tl ->
      if s = round then
        match tl with
        | (_, s', m') :: _ when s' = round && compare m m' = 0 -> uniq_current tl
        | _ -> m :: uniq_current tl
      else uniq_current tl
  in
  let current = uniq_current ready in
  let fresh = List.map (fun (_, sent, m) -> (sent, m)) ready in
  (current, fresh, rest)
