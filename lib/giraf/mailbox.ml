type 'msg t = {
  compare : 'msg -> 'msg -> int;
  rounds : (int, 'msg list) Hashtbl.t;
  buckets : (int, (int * 'msg) list) Hashtbl.t;
  mutable next_bucket : int;
}

let create ~compare () =
  { compare; rounds = Hashtbl.create 64; buckets = Hashtbl.create 64; next_bucket = 1 }

let schedule t ~arrival ~sent msg =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.buckets arrival) in
  Hashtbl.replace t.buckets arrival ((sent, msg) :: existing)

let insert_round t ~sent msg =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.rounds sent) in
  if List.exists (fun m -> t.compare m msg = 0) existing then ()
  else Hashtbl.replace t.rounds sent (List.sort t.compare (msg :: existing))

let drain t ~upto =
  let fresh = ref [] in
  for b = t.next_bucket to upto do
    match Hashtbl.find_opt t.buckets b with
    | None -> ()
    | Some items ->
      List.iter
        (fun (sent, msg) ->
          insert_round t ~sent msg;
          fresh := (sent, msg) :: !fresh)
        (List.rev items);
      Hashtbl.remove t.buckets b
  done;
  t.next_bucket <- max t.next_bucket (upto + 1);
  List.rev !fresh

let current t ~round = Option.value ~default:[] (Hashtbl.find_opt t.rounds round)

let pending t =
  Hashtbl.fold (fun _ items acc -> acc + List.length items) t.buckets 0
