open Anon_kernel

type violation =
  | Agreement_violation of { p1 : int; v1 : Value.t; p2 : int; v2 : Value.t }
  | Validity_violation of { pid : int; value : Value.t }
  | Termination_violation of { undecided : int list; horizon : int }
  | No_source of { round : int }
  | Source_not_timely of { round : int; sender : int; missing : int list }
  | Unstable_source of { gst : int }
  | No_root of { round : int; window : int; senders : (int * int list) list }
  | Stability_violation of { round : int; window : int; sender : int; missing : int list }
  | Weak_set_lost_add of { value : Value.t; get_client : int; get_invoked : int }
  | Weak_set_phantom_value of { value : Value.t; get_client : int }
  | Register_stale_read of { reader : int; read_value : Value.t; expected : Value.t }

let pp_violation ppf = function
  | Agreement_violation { p1; v1; p2; v2 } ->
    Format.fprintf ppf "agreement: p%d decided %a but p%d decided %a" p1 Value.pp v1
      p2 Value.pp v2
  | Validity_violation { pid; value } ->
    Format.fprintf ppf "validity: p%d decided %a, never proposed" pid Value.pp value
  | Termination_violation { undecided; horizon } ->
    Format.fprintf ppf "termination: correct processes %a undecided after %d rounds"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      undecided horizon
  | No_source { round } -> Format.fprintf ppf "env: round %d has no source" round
  | Source_not_timely { round; sender; missing } ->
    Format.fprintf ppf "env: round %d sender p%d not timely to %a" round sender
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      missing
  | Unstable_source { gst } ->
    Format.fprintf ppf "env: no single source covers every round from %d on" gst
  | No_root { round; window; senders } ->
    let pp_sender ppf (s, missing) =
      Format.fprintf ppf "p%d late to %a" s
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           (fun ppf q -> Format.fprintf ppf "p%d" q))
        missing
    in
    Format.fprintf ppf
      "env: round %d (window %d) root reachability failed — no covering root: %a"
      round window
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_sender)
      senders
  | Stability_violation { round; window; sender; missing } ->
    Format.fprintf ppf
      "env: round %d (window %d) stability failed — sender p%d late to %a"
      round window sender
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf q -> Format.fprintf ppf "p%d" q))
      missing
  | Weak_set_lost_add { value; get_client; get_invoked } ->
    Format.fprintf ppf
      "weak-set: get by client %d (at %d) missed value %a added before it"
      get_client get_invoked Value.pp value
  | Weak_set_phantom_value { value; get_client } ->
    Format.fprintf ppf "weak-set: get by client %d returned %a, never added"
      get_client Value.pp value
  | Register_stale_read { reader; read_value; expected } ->
    Format.fprintf ppf "register: p%d read %a but last complete write was %a" reader
      Value.pp read_value Value.pp expected

(* --- Environment checking ----------------------------------------------- *)

(* The obligated processes that sender [s]'s timely receivers, plus
   itself, fail to include — the diagnostic payload when [covers] says
   no. *)
let missing_receivers (info : Trace.round_info) s =
  let reached = s :: Trace.timely_to info s in
  List.filter (fun q -> not (List.mem q reached)) info.obligated

(* [covers info s] without materializing the missing list — the common
   "is there a source?" probe in the per-round checks. *)
let covers (info : Trace.round_info) s =
  let reached = Trace.timely_to info s in
  List.for_all (fun q -> q = s || List.mem q reached) info.obligated

let correct_senders (t : Trace.t) (info : Trace.round_info) =
  List.filter (Crash.is_correct t.crash) info.senders

(* Rounds in which the environment owes anything: some correct, non-halted
   process was still listening and some correct process was still sending. *)
let demanding_rounds (t : Trace.t) =
  List.filter
    (fun (info : Trace.round_info) ->
      info.obligated <> [] && correct_senders t info <> [])
    t.rounds

(* A per-round MS source need not be correct — it only needs its
   end-of-round to occur in this round and its message to reach every
   obligated process timely. *)
let check_ms_round _t (info : Trace.round_info) =
  let has_source = List.exists (covers info) info.senders in
  if has_source then [] else [ No_source { round = info.round } ]

let check_all_timely t (info : Trace.round_info) =
  List.concat_map
    (fun s ->
      if covers info s then []
      else
        [ Source_not_timely
            { round = info.round; sender = s; missing = missing_receivers info s } ])
    (correct_senders t info)

(* From [gst] on the same process must be a source every round — except
   that a source which decides and halts stops executing rounds, so the
   obligation passes to a new stable source. We therefore require a single
   covering source per maximal segment, with segment boundaries only where
   every remaining candidate stopped sending (halted). *)
let check_stable_source t ~gst rounds =
  let late = List.filter (fun (i : Trace.round_info) -> i.round >= gst) rounds in
  let candidates_of info = List.filter (covers info) (correct_senders t info) in
  let rec walk candidates = function
    | [] -> []
    | (info : Trace.round_info) :: rest ->
      let now = candidates_of info in
      let still = List.filter (fun s -> List.mem s now) candidates in
      if still <> [] then walk still rest
      else if List.for_all (fun s -> not (List.mem s info.senders)) candidates then
        (* every previous candidate halted: a new stable source may begin *)
        if now = [] then [ Unstable_source { gst } ] else walk now rest
      else [ Unstable_source { gst } ]
  in
  match late with
  | [] -> []
  | first :: rest -> (
    match candidates_of first with
    | [] -> [ Unstable_source { gst } ]
    | candidates -> walk candidates rest)

(* Pulse round of a rooted dynamic environment: some sender must cover
   every obligated receiver (a root of the round's graph). The diagnostic
   carries every sender's missing receivers — the offending links. *)
let check_root t ~stability (info : Trace.round_info) =
  let window = ((info.round - 1) / stability) + 1 in
  let has_root = List.exists (covers info) info.senders in
  if has_root then []
  else
    [
      No_root
        {
          round = info.round;
          window;
          senders =
            List.map (fun s -> (s, missing_receivers info s)) (correct_senders t info);
        };
    ]

(* Healed round of a stability window: every correct sender timely to every
   obligated receiver. *)
let check_stability t ~stability (info : Trace.round_info) =
  let window = ((info.round - 1) / stability) + 1 in
  List.concat_map
    (fun s ->
      match missing_receivers info s with
      | [] -> []
      | missing -> [ Stability_violation { round = info.round; window; sender = s; missing } ])
    (correct_senders t info)

let check_env (t : Trace.t) =
  let rounds = demanding_rounds t in
  match t.env with
  | Env.Async -> []
  | Env.Ms -> List.concat_map (check_ms_round t) rounds
  | Env.Sync -> List.concat_map (check_all_timely t) rounds
  | Env.Es { gst } ->
    List.concat_map (check_ms_round t) rounds
    @ List.concat_map (check_all_timely t)
        (List.filter (fun (i : Trace.round_info) -> i.round >= gst) rounds)
  | Env.Ess { gst } ->
    List.concat_map (check_ms_round t) rounds @ check_stable_source t ~gst rounds
  | Env.Dynamic { stability; rooted } ->
    List.concat_map
      (fun (info : Trace.round_info) ->
        if Env.pulse ~stability ~round:info.round then
          if rooted then check_root t ~stability info else []
        else check_stability t ~stability info)
      rounds

(* --- Consensus checking -------------------------------------------------- *)

let check_consensus ?(expect_termination = true) (t : Trace.t) =
  let decisions = Trace.decisions t in
  let proposed = Array.to_list t.inputs in
  let validity =
    List.filter_map
      (fun (pid, _, v) ->
        if List.exists (Value.equal v) proposed then None
        else Some (Validity_violation { pid; value = v }))
      decisions
  in
  (* Agreement and termination are promised to correct {e stayers} only: a
     churner that rejoins after every stayer halted runs alone on a fresh
     state and may legitimately decide its own value (anonymity leaves it
     nothing to recover). With [Churn.none] every pid is a stayer, so this
     is the classic check. Validity binds everyone. *)
  let stayer pid = Churn.is_stayer t.churn pid in
  let agreement =
    match List.filter (fun (p, _, _) -> stayer p) decisions with
    | [] -> []
    | (p1, _, v1) :: rest ->
      List.filter_map
        (fun (p2, _, v2) ->
          if Value.equal v1 v2 then None
          else Some (Agreement_violation { p1; v1; p2; v2 }))
        rest
  in
  let termination =
    if not expect_termination then []
    else
      let decided = List.map (fun (pid, _, _) -> pid) decisions in
      let undecided =
        List.filter
          (fun p -> stayer p && not (List.mem p decided))
          (Crash.correct t.crash)
      in
      if undecided = [] then []
      else [ Termination_violation { undecided; horizon = Trace.last_round t } ]
  in
  validity @ agreement @ termination

(* --- Weak-set semantics --------------------------------------------------- *)

type ws_add = {
  add_client : int;
  add_value : Value.t;
  add_invoked : int;
  add_completed : int option;
}

type ws_get = {
  get_client : int;
  get_result : Value.Set.t;
  get_invoked : int;
  get_completed : int;
}

type ws_op = Ws_add of ws_add | Ws_get of ws_get

let check_weak_set ?correct ops =
  let adds = List.filter_map (function Ws_add a -> Some a | Ws_get _ -> None) ops in
  let gets = List.filter_map (function Ws_get g -> Some g | Ws_add _ -> None) ops in
  let is_correct client =
    match correct with None -> true | Some cs -> List.mem client cs
  in
  let lost_for_get g =
    List.filter_map
      (fun a ->
        match a.add_completed with
        | Some c when c < g.get_invoked && not (Value.Set.mem a.add_value g.get_result)
          ->
          Some
            (Weak_set_lost_add
               {
                 value = a.add_value;
                 get_client = g.get_client;
                 get_invoked = g.get_invoked;
               })
        | Some _ | None -> None)
      adds
  in
  let phantom_for_get g =
    Value.Set.fold
      (fun v acc ->
        let justified =
          List.exists
            (fun a -> Value.equal a.add_value v && a.add_invoked <= g.get_completed)
            adds
        in
        if justified then acc
        else Weak_set_phantom_value { value = v; get_client = g.get_client } :: acc)
      g.get_result []
  in
  List.concat_map lost_for_get (List.filter (fun g -> is_correct g.get_client) gets)
  @ List.concat_map phantom_for_get gets
