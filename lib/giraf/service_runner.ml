open Anon_kernel

type op_spec = Step_core.op_spec =
  | Do_add of Value.t
  | Do_get
  | Do_add_with of (Value.Set.t -> Value.t)

type workload = (int * (int * op_spec) list) list

let random_workload ~n ~ops_per_client ~max_start ~value_range rng =
  let fresh_value =
    let used = Hashtbl.create 64 in
    fun () ->
      let rec pick () =
        let v = Rng.int rng (max value_range 1) in
        if Hashtbl.mem used v then pick ()
        else begin
          Hashtbl.add used v ();
          v
        end
      in
      pick ()
  in
  List.init n (fun pid ->
      let script =
        List.init ops_per_client (fun _ ->
            let start = Rng.int_in rng 1 (max max_start 1) in
            let op = if Rng.bool rng then Do_add (fresh_value ()) else Do_get in
            (start, op))
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      (pid, script))

type config = {
  n : int;
  crash : Crash.t;
  churn : Churn.t;
  adversary : Adversary.t;
  horizon : int;
  seed : int;
}

type add_record = {
  client : int;
  value : Value.t;
  invoked_round : int;
  completed_round : int option;
}

type outcome = {
  trace : Trace.t;
  ops : Checker.ws_op list;
  adds : add_record list;
  rounds_executed : int;
  messages_sent : int;
}

module Make (S : Intf.SERVICE) = struct
  module Core = Step_core.Service (S)

  let run ?observe ?(recorder = Anon_obs.Recorder.off) config ~workload =
    let module R = Anon_obs.Recorder in
    let module M = Anon_obs.Metrics in
    let module E = Anon_obs.Event in
    let obs_on = R.active recorder in
    let m_broadcasts = R.counter recorder "service.broadcasts" in
    let m_deliveries = R.counter recorder "service.deliveries" in
    let m_adds = R.counter recorder "service.ws_adds" in
    let m_gets = R.counter recorder "service.ws_gets" in
    let m_crashes = R.counter recorder "service.crashes" in
    let m_leaves = R.counter recorder "churn.leaves" in
    let m_rejoins = R.counter recorder "churn.rejoins" in
    let m_add_latency = R.histogram recorder "service.ws_add_latency_rounds" in
    let t_compute = R.histogram recorder "phase.compute_us" in
    let t_deliver = R.histogram recorder "phase.deliver_us" in
    let n = config.n in
    let where = "Service_runner.run" in
    if n < 1 then Config_error.fail ~where "n must be >= 1";
    if config.horizon < 1 then
      Config_error.fail ~where
        (Printf.sprintf "horizon must be >= 1 (got %d)" config.horizon);
    if Crash.n config.crash <> n then
      Config_error.fail ~where
        (Printf.sprintf "crash schedule size mismatch (n = %d, crash schedule for %d)"
           n (Crash.n config.crash));
    if Churn.n config.churn <> n then
      Config_error.fail ~where
        (Printf.sprintf "churn schedule size mismatch (n = %d, churn schedule for %d)"
           n (Churn.n config.churn));
    List.iter
      (fun (ev : Churn.event) ->
        if Crash.crash_round config.crash ev.pid <> None then
          Config_error.fail ~where
            (Printf.sprintf "p%d both crashes and churns — pick one" ev.pid))
      (Churn.events config.churn);
    R.emit recorder (fun () -> E.Run_start { algo = S.name; n; seed = config.seed });
    let rng = Rng.make config.seed in
    let crash_rng = Rng.split rng in
    let core =
      Core.create ~n ~crash:config.crash ~churn:config.churn
        ~env:(Adversary.env config.adversary) ~workload
    in
    let ops = ref [] in
    let adds = ref [] in
    let rounds = ref [] in
    let messages_sent = ref 0 in
    let record_incomplete ~client ~value ~invoked_round =
      ops :=
        Checker.Ws_add
          {
            add_client = client;
            add_value = value;
            add_invoked = (2 * invoked_round) + 1;
            add_completed = None;
          }
        :: !ops;
      adds := { client; value; invoked_round; completed_round = None } :: !adds
    in
    for k = 1 to config.horizon do
      let compute_time = 2 * k in
      let op_time = (2 * k) + 1 in
      Core.begin_round core
        ~on_leave:(fun ~pid ~pending ->
          (* A leaver's pending add is recorded incomplete — the value may
             or may not have propagated; the weak-set axioms only bind
             completed adds. *)
          (match pending with
          | Some (value, invoked_round) ->
            record_incomplete ~client:pid ~value ~invoked_round
          | None -> ());
          M.incr m_leaves;
          R.emit recorder (fun () -> E.Churn { pid; round = k; rejoin = false }))
        ~on_rejoin:(fun ~pid ->
          M.incr m_rejoins;
          R.emit recorder (fun () -> E.Churn { pid; round = k; rejoin = true }));
      let outgoing =
        M.time t_compute (fun () ->
            Core.compute core ?observe
              ~on_add_complete:(fun ~pid ~value ~invoked_round ->
                M.observe m_add_latency (float_of_int (k - 1 - invoked_round));
                R.emit recorder (fun () ->
                    E.Ws_add_done { pid; round = k - 1; value });
                ops :=
                  Checker.Ws_add
                    {
                      add_client = pid;
                      add_value = value;
                      add_invoked = (2 * invoked_round) + 1;
                      add_completed = Some compute_time;
                    }
                  :: !ops;
                adds :=
                  {
                    client = pid;
                    value;
                    invoked_round;
                    completed_round = Some (k - 1);
                  }
                  :: !adds))
      in
      (* Deliveries. As in Runner, sources must reach every process that
         computes the round (not only correct ones). *)
      let ctx = Core.ctx core in
      let plan = Adversary.plan config.adversary ctx rng in
      let stats =
        M.time t_deliver (fun () ->
            Core.deliver core ~plan ~crash_rng
              ~on_deliver:(fun ~sender ~receiver ~arrival ->
                R.emit recorder (fun () ->
                    E.Deliver { sender; receiver; round = k; arrival }))
              ~on_crash:(fun ~pid ->
                M.incr m_crashes;
                R.emit recorder (fun () -> E.Crash { pid; round = k })))
      in
      messages_sent := !messages_sent + List.length outgoing;
      if obs_on then begin
        M.incr ~by:(List.length outgoing) m_broadcasts;
        M.incr ~by:stats.delivered m_deliveries
      end;
      (* Client operations while in round k. One operation at a time per
         client; adds block until their value is written. *)
      Core.ops core
        ~on_get:(fun ~pid ~result ->
          M.incr m_gets;
          R.emit recorder (fun () ->
              E.Ws_get { pid; round = k; size = Value.Set.cardinal result });
          ops :=
            Checker.Ws_get
              {
                get_client = pid;
                get_result = result;
                get_invoked = op_time;
                get_completed = op_time;
              }
            :: !ops)
        ~on_add:(fun ~pid ~value ->
          M.incr m_adds;
          R.emit recorder (fun () -> E.Ws_add { pid; round = k; value }));
      let info =
        {
          Trace.round = k;
          senders = List.map (fun { Dispatch.sender; _ } -> sender) outgoing;
          crashing = Core.crashing_pids core;
          source = plan.source;
          timely = stats.timely;
          obligated = ctx.obligated;
          decided = [];
          msg_sizes =
            List.map (fun { Dispatch.sender; msg } -> (sender, S.msg_size msg)) outgoing;
        }
      in
      rounds := info :: !rounds
    done;
    (* Adds still pending at the end of the run are recorded as
       incomplete. *)
    for p = 0 to n - 1 do
      match Core.blocked core p with
      | None -> ()
      | Some (value, invoked_round) -> record_incomplete ~client:p ~value ~invoked_round
    done;
    let trace =
      {
        Trace.n;
        inputs = Array.make n 0;
        crash = config.crash;
        churn = config.churn;
        env = Adversary.env config.adversary;
        rounds = List.rev !rounds;
      }
    in
    if obs_on then begin
      R.emit recorder (fun () ->
          E.Run_end { rounds = config.horizon; decided = false });
      R.flush recorder
    end;
    {
      trace;
      ops = List.rev !ops;
      adds = List.rev !adds;
      rounds_executed = config.horizon;
      messages_sent = !messages_sent;
    }
end
