open Anon_kernel

type op_spec = Do_add of Value.t | Do_get | Do_add_with of (Value.Set.t -> Value.t)

type workload = (int * (int * op_spec) list) list

let random_workload ~n ~ops_per_client ~max_start ~value_range rng =
  let fresh_value =
    let used = Hashtbl.create 64 in
    fun () ->
      let rec pick () =
        let v = Rng.int rng (max value_range 1) in
        if Hashtbl.mem used v then pick ()
        else begin
          Hashtbl.add used v ();
          v
        end
      in
      pick ()
  in
  List.init n (fun pid ->
      let script =
        List.init ops_per_client (fun _ ->
            let start = Rng.int_in rng 1 (max max_start 1) in
            let op = if Rng.bool rng then Do_add (fresh_value ()) else Do_get in
            (start, op))
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      (pid, script))

type config = {
  n : int;
  crash : Crash.t;
  churn : Churn.t;
  adversary : Adversary.t;
  horizon : int;
  seed : int;
}

type add_record = {
  client : int;
  value : Value.t;
  invoked_round : int;
  completed_round : int option;
}

type outcome = {
  trace : Trace.t;
  ops : Checker.ws_op list;
  adds : add_record list;
  rounds_executed : int;
  messages_sent : int;
}

module Make (S : Intf.SERVICE) = struct
  type pending_add = { value : Value.t; invoked : int; invoked_round : int }

  type proc = {
    mutable st : S.state option;
    mutable crashed : bool;
    mutable mailbox : S.msg Mailbox.t;  (* replaced wholesale on rejoin *)
    mutable script : (int * op_spec) list;
    mutable pending : pending_add option;
  }

  let run ?(recorder = Anon_obs.Recorder.off) config ~workload =
    let module R = Anon_obs.Recorder in
    let module M = Anon_obs.Metrics in
    let module E = Anon_obs.Event in
    let obs_on = R.active recorder in
    let m_broadcasts = R.counter recorder "service.broadcasts" in
    let m_deliveries = R.counter recorder "service.deliveries" in
    let m_adds = R.counter recorder "service.ws_adds" in
    let m_gets = R.counter recorder "service.ws_gets" in
    let m_crashes = R.counter recorder "service.crashes" in
    let m_leaves = R.counter recorder "churn.leaves" in
    let m_rejoins = R.counter recorder "churn.rejoins" in
    let m_add_latency = R.histogram recorder "service.ws_add_latency_rounds" in
    let t_compute = R.histogram recorder "phase.compute_us" in
    let t_deliver = R.histogram recorder "phase.deliver_us" in
    let n = config.n in
    let where = "Service_runner.run" in
    if n < 1 then Config_error.fail ~where "n must be >= 1";
    if config.horizon < 1 then
      Config_error.fail ~where
        (Printf.sprintf "horizon must be >= 1 (got %d)" config.horizon);
    if Crash.n config.crash <> n then
      Config_error.fail ~where
        (Printf.sprintf "crash schedule size mismatch (n = %d, crash schedule for %d)"
           n (Crash.n config.crash));
    if Churn.n config.churn <> n then
      Config_error.fail ~where
        (Printf.sprintf "churn schedule size mismatch (n = %d, churn schedule for %d)"
           n (Churn.n config.churn));
    List.iter
      (fun (ev : Churn.event) ->
        if Crash.crash_round config.crash ev.pid <> None then
          Config_error.fail ~where
            (Printf.sprintf "p%d both crashes and churns — pick one" ev.pid))
      (Churn.events config.churn);
    R.emit recorder (fun () -> E.Run_start { algo = S.name; n; seed = config.seed });
    let rng = Rng.make config.seed in
    let crash_rng = Rng.split rng in
    let procs =
      Array.init n (fun pid ->
          {
            st = None;
            crashed = false;
            mailbox = Mailbox.create ~compare:S.msg_compare ();
            script = Option.value ~default:[] (List.assoc_opt pid workload);
            pending = None;
          })
    in
    let correct = Crash.correct config.crash in
    let ops = ref [] in
    let adds = ref [] in
    let rounds = ref [] in
    let messages_sent = ref 0 in
    for k = 1 to config.horizon do
      let compute_time = 2 * k in
      let op_time = (2 * k) + 1 in
      (* Churn transitions. A leaver's pending add is recorded incomplete —
         the value may or may not have propagated; the weak-set axioms only
         bind completed adds. A rejoiner restarts with a fresh replica and
         an empty mailbox, its remaining client script intact. *)
      let away p = Churn.away config.churn ~pid:p ~round:k in
      List.iter
        (fun (ev : Churn.event) ->
          let proc = procs.(ev.pid) in
          if not proc.crashed then begin
            (match proc.pending with
            | Some pa ->
              proc.pending <- None;
              ops :=
                Checker.Ws_add
                  {
                    add_client = ev.pid;
                    add_value = pa.value;
                    add_invoked = pa.invoked;
                    add_completed = None;
                  }
                :: !ops;
              adds :=
                {
                  client = ev.pid;
                  value = pa.value;
                  invoked_round = pa.invoked_round;
                  completed_round = None;
                }
                :: !adds
            | None -> ());
            M.incr m_leaves;
            R.emit recorder (fun () ->
                E.Churn { pid = ev.pid; round = k; rejoin = false })
          end)
        (Churn.leaving_at config.churn ~round:k);
      List.iter
        (fun (ev : Churn.event) ->
          let proc = procs.(ev.pid) in
          if not proc.crashed then begin
            proc.st <- None;
            proc.mailbox <- Mailbox.create ~compare:S.msg_compare ();
            M.incr m_rejoins;
            R.emit recorder (fun () ->
                E.Churn { pid = ev.pid; round = k; rejoin = true })
          end)
        (Churn.rejoining_at config.churn ~round:k);
      let crashing_events =
        List.filter
          (fun (ev : Crash.event) -> not procs.(ev.pid).crashed)
          (Crash.crashing_at config.crash ~round:k)
      in
      let crashing_pids = List.map (fun (ev : Crash.event) -> ev.pid) crashing_events in
      let participants =
        List.filter
          (fun p -> (not procs.(p).crashed) && not (away p))
          (List.init n Fun.id)
      in
      (* Phase 1: end-of-round — compute round k-1 (or initialize), send
         round-k message. Pending adds complete when BLOCK clears. *)
      let outgoing =
        M.time t_compute (fun () ->
            List.map
              (fun p ->
                let proc = procs.(p) in
                let fresh = Mailbox.drain proc.mailbox ~upto:(k - 1) in
                let m =
                  (* [st = None] at round 1 and just after a rejoin. *)
                  if proc.st = None then begin
                    let st, m = S.initialize () in
                    proc.st <- Some st;
                    m
                  end
                  else begin
                    let current = Mailbox.current proc.mailbox ~round:(k - 1) in
                    let st =
                      match proc.st with Some st -> st | None -> assert false
                    in
                    let st', m =
                      S.compute st ~round:(k - 1) ~inbox:{ Intf.current; fresh }
                    in
                    proc.st <- Some st';
                    (match proc.pending with
                    | Some pa when not (S.add_pending st') ->
                      proc.pending <- None;
                      M.observe m_add_latency
                        (float_of_int (k - 1 - pa.invoked_round));
                      R.emit recorder (fun () ->
                          E.Ws_add_done
                            { pid = p; round = k - 1; value = pa.value });
                      ops :=
                        Checker.Ws_add
                          {
                            add_client = p;
                            add_value = pa.value;
                            add_invoked = pa.invoked;
                            add_completed = Some compute_time;
                          }
                        :: !ops;
                      adds :=
                        {
                          client = p;
                          value = pa.value;
                          invoked_round = pa.invoked_round;
                          completed_round = Some (k - 1);
                        }
                        :: !adds
                    | Some _ | None -> ());
                    m
                  end
                in
                { Dispatch.sender = p; msg = m })
              participants)
      in
      (* Phase 2: deliveries. As in Runner, sources must reach every
         process that computes the round (not only correct ones). *)
      let obligated =
        List.filter (fun p -> not (List.mem p crashing_pids)) participants
      in
      let alive_receivers =
        List.filter
          (fun p ->
            (not procs.(p).crashed) && (not (away p)) && not (List.mem p crashing_pids))
          (List.init n Fun.id)
      in
      let normal_senders =
        List.filter (fun p -> not (List.mem p crashing_pids)) participants
      in
      let ctx =
        {
          Adversary.round = k;
          senders = normal_senders;
          obligated;
          correct;
          alive = alive_receivers;
        }
      in
      let plan = Adversary.plan config.adversary ctx rng in
      let stats =
        M.time t_deliver (fun () ->
            Dispatch.dispatch ~round:k ~outgoing ~crashing_events
              ~eligible:(fun q -> q < n && (not procs.(q).crashed) && not (away q))
              ~receivers:alive_receivers ~plan ~crash_rng
              ~on_deliver:(fun ~sender ~receiver ~arrival ->
                R.emit recorder (fun () ->
                    E.Deliver { sender; receiver; round = k; arrival }))
              ~schedule:(fun ~receiver ~arrival ~sent msg ->
                Mailbox.schedule procs.(receiver).mailbox ~arrival ~sent msg)
              ())
      in
      messages_sent := !messages_sent + List.length outgoing;
      if obs_on then begin
        M.incr ~by:(List.length outgoing) m_broadcasts;
        M.incr ~by:stats.delivered m_deliveries
      end;
      List.iter
        (fun p ->
          procs.(p).crashed <- true;
          M.incr m_crashes;
          R.emit recorder (fun () -> E.Crash { pid = p; round = k }))
        crashing_pids;
      (* Phase 3: client operations while in round k. One operation at a
         time per client; adds block until their value is written. *)
      List.iter
        (fun p ->
          let proc = procs.(p) in
          if (not proc.crashed) && proc.pending = None then
            match proc.script with
            | (start, op) :: rest when start <= k -> (
              match proc.st with
              | None -> ()
              | Some st -> (
                match op with
                | Do_get ->
                  let result = S.get st in
                  proc.script <- rest;
                  M.incr m_gets;
                  R.emit recorder (fun () ->
                      E.Ws_get
                        { pid = p; round = k; size = Value.Set.cardinal result });
                  ops :=
                    Checker.Ws_get
                      {
                        get_client = p;
                        get_result = result;
                        get_invoked = op_time;
                        get_completed = op_time;
                      }
                    :: !ops
                | Do_add v ->
                  proc.st <- Some (S.add st v);
                  proc.script <- rest;
                  M.incr m_adds;
                  R.emit recorder (fun () ->
                      E.Ws_add { pid = p; round = k; value = v });
                  proc.pending <- Some { value = v; invoked = op_time; invoked_round = k }
                | Do_add_with f ->
                  let v = f (S.get st) in
                  proc.st <- Some (S.add st v);
                  proc.script <- rest;
                  M.incr m_adds;
                  R.emit recorder (fun () ->
                      E.Ws_add { pid = p; round = k; value = v });
                  proc.pending <- Some { value = v; invoked = op_time; invoked_round = k }))
            | _ -> ())
        participants;
      let info =
        {
          Trace.round = k;
          senders = participants;
          crashing = crashing_pids;
          source = plan.source;
          timely = stats.timely;
          obligated;
          decided = [];
          msg_sizes =
            List.map (fun { Dispatch.sender; msg } -> (sender, S.msg_size msg)) outgoing;
        }
      in
      rounds := info :: !rounds
    done;
    (* Adds still pending at the end of the run are recorded as
       incomplete. *)
    Array.iteri
      (fun p proc ->
        match proc.pending with
        | None -> ()
        | Some pa ->
          ops :=
            Checker.Ws_add
              {
                add_client = p;
                add_value = pa.value;
                add_invoked = pa.invoked;
                add_completed = None;
              }
            :: !ops;
          adds :=
            {
              client = p;
              value = pa.value;
              invoked_round = pa.invoked_round;
              completed_round = None;
            }
            :: !adds)
      procs;
    let trace =
      {
        Trace.n;
        inputs = Array.make n 0;
        crash = config.crash;
        churn = config.churn;
        env = Adversary.env config.adversary;
        rounds = List.rev !rounds;
      }
    in
    if obs_on then begin
      R.emit recorder (fun () ->
          E.Run_end { rounds = config.horizon; decided = false });
      R.flush recorder
    end;
    {
      trace;
      ops = List.rev !ops;
      adds = List.rev !adds;
      rounds_executed = config.horizon;
      messages_sent = !messages_sent;
    }
end
