(** Join/leave churn schedules, distinct from crashes.

    A process that {e leaves} at round [l] stops participating exactly like
    a silent crash — but it may {e rejoin} at a later round [r], at which
    point it restarts the algorithm from its initial state with an empty
    mailbox. Anonymity makes this the only sound semantics: there is no
    identifier under which state could have been parked, so a rejoiner is
    indistinguishable from a fresh process proposing its original input.

    Churn is orthogonal to crashes: a schedule may combine both, but a pid
    may appear in at most one of the two (validated by the runners). A
    process that has already decided and halted ignores its churn event —
    decisions are irrevocable, so there is nothing left to leave. *)

type event = { pid : int; leave : int; rejoin : int option }
(** [pid] is away for rounds [leave <= round < rejoin]; [rejoin = None]
    means it never comes back (observationally a silent crash). *)

type t
(** A churn schedule for a system of [n] processes. *)

val none : n:int -> t
(** No churn; all [n] processes are stayers. *)

val of_events : n:int -> event list -> t
(** Explicit schedule. At most one event per pid; pids in [\[0, n)];
    [leave >= 1]; [rejoin > leave] when present.
    @raise Invalid_argument otherwise. *)

val random :
  n:int -> churners:int -> max_round:int -> Anon_kernel.Rng.t -> t
(** [churners] distinct processes leave at uniform rounds in
    [\[1, max_round\]]; each rejoins 1–3 rounds later with probability 1/2,
    else never. Requires [0 <= churners <= n]. *)

val n : t -> int

val events : t -> event list
(** Sorted by (leave round, pid). *)

val event : t -> int -> event option
val is_stayer : t -> int -> bool
(** The pid has no churn event. *)

val stayers : t -> int list
(** Processes with no churn event, increasing. Consensus termination and
    agreement are checked over correct stayers; validity over everyone. *)

val away : t -> pid:int -> round:int -> bool
(** Whether [pid] is absent for [round]'s compute and broadcast. *)

val leaving_at : t -> round:int -> event list
val rejoining_at : t -> round:int -> event list
val churners : t -> int
val pp : Format.formatter -> t -> unit
