(** The dispatch-backend seam.

    Two kinds of backend execute the same algorithm functors
    ({!Intf.ALGORITHM} / {!Intf.SERVICE}):

    - {b lockstep} — {!Step_core} driven by {!Runner}, {!Service_runner}
      and the model checker: one thread, rounds advance globally, and
      deliveries follow an adversary plan. Fully deterministic; this is
      the Tier-1 and model-checking path, and nothing here changes it.
    - {b live} — [Anon_live]: every process is a concurrent task, messages
      cross real in-process channels through a faulty transport, and round
      advancement is driven by wall-clock timeouts with adaptive backoff
      (synchrony is discovered, not scripted).

    What the backends must agree on {e exactly} — and what this module
    therefore owns — is the mailbox semantics of Alg. 1: how a process's
    undrained arrivals become the inbox of its next [compute]. Keeping
    {!ready_inbox} here and nowhere else is what makes the zero-fault
    live-vs-lockstep differential suite an equality of decisions rather
    than a family resemblance. *)

type kind = Lockstep | Live

val kind_name : kind -> string

type 'msg arrival = int * int * 'msg
(** [(arrival_round, sent_round, msg)] with [arrival_round >= sent_round].
    The lockstep backend takes arrival rounds from the adversary plan; the
    live backend assigns the local round at which the packet was drained
    from the wire (clamped to [>= sent_round]). *)

val ready_inbox :
  compare:('msg -> 'msg -> int) ->
  round:int ->
  'msg arrival list ->
  'msg list * (int * 'msg) list * 'msg arrival list
(** [ready_inbox ~compare ~round inflight] is [(current, fresh, rest)]:
    the arrivals with [arrival_round <= round] sorted canonically by
    [(arrival, sent, message)], split into the deduplicated round-[round]
    message set [current] (Alg. 1 line 10; adjacent-uniq under [compare]),
    the full [(sent_round, msg)] list [fresh] (late messages included, for
    algorithms that read earlier-round mailboxes), and the still-undrained
    remainder [rest]. The caller guarantees the process's own round-
    [round] message is among the arrivals (self-delivery is implicit and
    always timely). *)
