open Anon_kernel

type config = {
  inputs : Value.t array;
  crash : Crash.t;
  churn : Churn.t;
  adversary : Adversary.t;
  horizon : int;
  seed : int;
  stop_on_decision : bool;
}

let validate ~where config =
  let n = Array.length config.inputs in
  if n < 1 then Config_error.fail ~where "inputs must be non-empty";
  if config.horizon < 1 then
    Config_error.fail ~where
      (Printf.sprintf "horizon must be >= 1 (got %d)" config.horizon);
  if Crash.n config.crash <> n then
    Config_error.fail ~where
      (Printf.sprintf "inputs/crash size mismatch (%d inputs, crash schedule for %d)"
         n (Crash.n config.crash));
  if Churn.n config.churn <> n then
    Config_error.fail ~where
      (Printf.sprintf "inputs/churn size mismatch (%d inputs, churn schedule for %d)"
         n (Churn.n config.churn));
  List.iter
    (fun (ev : Churn.event) ->
      if Crash.crash_round config.crash ev.pid <> None then
        Config_error.fail ~where
          (Printf.sprintf "p%d both crashes and churns — pick one" ev.pid))
    (Churn.events config.churn)

let default_config ?(horizon = 200) ?(stop_on_decision = true) ?(seed = 42) ?churn
    ~inputs ~crash adversary =
  let inputs = Array.of_list inputs in
  let churn =
    match churn with Some c -> c | None -> Churn.none ~n:(Array.length inputs)
  in
  let config = { inputs; crash; churn; adversary; horizon; seed; stop_on_decision } in
  validate ~where:"Runner.default_config" config;
  config

type outcome = {
  trace : Trace.t;
  decisions : (int * int * Value.t) list;
  all_correct_decided : bool;
  rounds_executed : int;
  messages_sent : int;
  deliveries : int;
  timely_deliveries : int;
}

let decision_round outcome =
  if not outcome.all_correct_decided then None
  else
    let correct_rounds =
      List.filter_map
        (fun (pid, r, _) ->
          if Crash.is_correct outcome.trace.Trace.crash pid then Some r else None)
        outcome.decisions
    in
    match correct_rounds with
    | [] -> None
    | r :: rs -> Some (List.fold_left max r rs)

module Make (A : Intf.ALGORITHM) = struct
  module Core = Step_core.Consensus (A)

  let run ?observe ?(recorder = Anon_obs.Recorder.off) config =
    let module R = Anon_obs.Recorder in
    let module M = Anon_obs.Metrics in
    let module E = Anon_obs.Event in
    let obs_on = R.active recorder in
    let kernel_before = if obs_on then Some (R.kernel_baseline ()) else None in
    let m_broadcasts = R.counter recorder "runner.broadcasts" in
    let m_deliveries = R.counter recorder "runner.deliveries" in
    let m_timely = R.counter recorder "runner.timely_deliveries" in
    let m_decisions = R.counter recorder "runner.decisions" in
    let m_crashes = R.counter recorder "runner.crashes" in
    let m_leaves = R.counter recorder "churn.leaves" in
    let m_rejoins = R.counter recorder "churn.rejoins" in
    let m_leader_changes = R.counter recorder "runner.leader_changes" in
    let m_rounds = R.gauge recorder "runner.rounds" in
    let m_msg_size = R.histogram recorder "runner.msg_size" in
    let m_mailbox = R.histogram recorder "runner.mailbox_pending" in
    let t_compute = R.histogram recorder "phase.compute_us" in
    let t_deliver = R.histogram recorder "phase.deliver_us" in
    validate ~where:"Runner.run" config;
    let n = Array.length config.inputs in
    let rng = Rng.make config.seed in
    let crash_rng = Rng.split rng in
    let core =
      Core.create ~inputs:config.inputs ~crash:config.crash ~churn:config.churn
        ~env:(Adversary.env config.adversary)
    in
    R.emit recorder (fun () -> E.Run_start { algo = A.name; n; seed = config.seed });
    let was_leader = Array.make n false in
    let decisions = ref [] in
    let rounds = ref [] in
    let messages_sent = ref 0 in
    let deliveries = ref 0 in
    let timely_deliveries = ref 0 in
    let decided_now = ref [] in
    let on_leave ~pid:_ = M.incr m_leaves in
    let on_rejoin ~pid:_ = M.incr m_rejoins in
    let on_decide ~pid ~round ~value =
      decided_now := (pid, value) :: !decided_now;
      decisions := (pid, round, value) :: !decisions
    in
    let observe_hook ~pid ~round st =
      (match observe with Some f -> f ~pid ~round st | None -> ());
      if obs_on then
        match A.leader st with
        | Some l when l <> was_leader.(pid) ->
          was_leader.(pid) <- l;
          M.incr m_leader_changes;
          R.emit recorder (fun () -> E.Leader { pid; round; leader = l })
        | Some _ | None -> ()
    in
    let round = ref 1 in
    let continue = ref true in
    while !continue && !round <= config.horizon do
      let k = !round in
      R.emit recorder (fun () -> E.Round_start { round = k });
      if obs_on then begin
        Core.begin_round core
          ~on_leave:(fun ~pid ->
            on_leave ~pid;
            R.emit recorder (fun () -> E.Churn { pid; round = k; rejoin = false }))
          ~on_rejoin:(fun ~pid ->
            on_rejoin ~pid;
            R.emit recorder (fun () -> E.Churn { pid; round = k; rejoin = true }))
      end
      else Core.begin_round core;
      decided_now := [];
      let outgoing =
        if obs_on || Option.is_some observe then
          M.time t_compute (fun () ->
              Core.compute core ~observe:observe_hook ~on_decide)
        else Core.compute core ~on_decide
      in
      List.iter
        (fun (p, v) ->
          M.incr m_decisions;
          R.emit recorder (fun () -> E.Decide { pid = p; round = k - 1; value = v }))
        (List.rev !decided_now);
      (* Adversarial deliveries. A source must reach every process that
         will compute this round — not only the correct ones; see
         DESIGN.md §5 and experiment A2 for what breaks under the paper's
         literal §2.3 reading. *)
      let ctx = Core.ctx core in
      let plan = Adversary.plan config.adversary ctx rng in
      let stats =
        (* The hooks only feed observability; skipping them when the
           recorder is off saves a per-delivery closure invocation. *)
        if obs_on then
          M.time t_deliver (fun () ->
              Core.deliver core ~plan ~crash_rng
                ~on_deliver:(fun ~sender ~receiver ~arrival ->
                  R.emit recorder (fun () ->
                      E.Deliver { sender; receiver; round = k; arrival }))
                ~on_crash:(fun ~pid ->
                  M.incr m_crashes;
                  R.emit recorder (fun () -> E.Crash { pid; round = k })))
        else Core.deliver core ~plan ~crash_rng
      in
      messages_sent := !messages_sent + List.length outgoing;
      deliveries := !deliveries + stats.delivered;
      timely_deliveries := !timely_deliveries + stats.timely_count;
      if obs_on then begin
        M.incr ~by:(List.length outgoing) m_broadcasts;
        M.incr ~by:stats.delivered m_deliveries;
        M.incr ~by:stats.timely_count m_timely
      end;
      let info =
        {
          Trace.round = k;
          senders = List.map (fun { Dispatch.sender; _ } -> sender) outgoing;
          crashing = Core.crashing_pids core;
          source = plan.source;
          timely = stats.timely;
          obligated = ctx.obligated;
          decided = List.rev !decided_now;
          msg_sizes =
            List.map
              (fun { Dispatch.sender; msg } -> (sender, A.msg_size msg))
              outgoing;
        }
      in
      rounds := info :: !rounds;
      if obs_on then begin
        List.iter
          (fun ({ Dispatch.sender; _ }, (_, size)) ->
            M.observe m_msg_size (float_of_int size);
            R.emit recorder (fun () ->
                E.Broadcast { pid = sender; round = k; size }))
          (List.combine outgoing info.msg_sizes);
        for p = 0 to n - 1 do
          if Core.fate core p <> Step_core.Crashed then
            M.observe m_mailbox (float_of_int (Core.mailbox_pending core p))
        done;
        R.emit recorder (fun () ->
            E.Round_end
              {
                round = k;
                senders = List.length outgoing;
                delivered = stats.delivered;
                timely = stats.timely_count;
              })
      end;
      if config.stop_on_decision && Core.undecided_correct_stayers core = [] then
        continue := false;
      incr round
    done;
    let trace =
      {
        Trace.n;
        inputs = config.inputs;
        crash = config.crash;
        churn = config.churn;
        env = Adversary.env config.adversary;
        rounds = List.rev !rounds;
      }
    in
    let all_correct_decided = Core.undecided_correct_stayers core = [] in
    let rounds_executed = min (!round - 1) config.horizon in
    if obs_on then begin
      M.set_gauge m_rounds (float_of_int rounds_executed);
      (match kernel_before with
      | Some b -> R.record_kernel recorder b
      | None -> ());
      R.emit recorder (fun () ->
          E.Run_end { rounds = rounds_executed; decided = all_correct_decided });
      R.flush recorder
    end;
    {
      trace;
      decisions = List.rev !decisions;
      all_correct_decided;
      rounds_executed;
      messages_sent = !messages_sent;
      deliveries = !deliveries;
      timely_deliveries = !timely_deliveries;
    }
  end
