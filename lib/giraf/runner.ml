open Anon_kernel

type config = {
  inputs : Value.t array;
  crash : Crash.t;
  churn : Churn.t;
  adversary : Adversary.t;
  horizon : int;
  seed : int;
  stop_on_decision : bool;
}

let validate ~where config =
  let n = Array.length config.inputs in
  if n < 1 then Config_error.fail ~where "inputs must be non-empty";
  if config.horizon < 1 then
    Config_error.fail ~where
      (Printf.sprintf "horizon must be >= 1 (got %d)" config.horizon);
  if Crash.n config.crash <> n then
    Config_error.fail ~where
      (Printf.sprintf "inputs/crash size mismatch (%d inputs, crash schedule for %d)"
         n (Crash.n config.crash));
  if Churn.n config.churn <> n then
    Config_error.fail ~where
      (Printf.sprintf "inputs/churn size mismatch (%d inputs, churn schedule for %d)"
         n (Churn.n config.churn));
  List.iter
    (fun (ev : Churn.event) ->
      if Crash.crash_round config.crash ev.pid <> None then
        Config_error.fail ~where
          (Printf.sprintf "p%d both crashes and churns — pick one" ev.pid))
    (Churn.events config.churn)

let default_config ?(horizon = 200) ?(stop_on_decision = true) ?(seed = 42) ?churn
    ~inputs ~crash adversary =
  let inputs = Array.of_list inputs in
  let churn =
    match churn with Some c -> c | None -> Churn.none ~n:(Array.length inputs)
  in
  let config = { inputs; crash; churn; adversary; horizon; seed; stop_on_decision } in
  validate ~where:"Runner.default_config" config;
  config

type outcome = {
  trace : Trace.t;
  decisions : (int * int * Value.t) list;
  all_correct_decided : bool;
  rounds_executed : int;
  messages_sent : int;
  deliveries : int;
  timely_deliveries : int;
}

let decision_round outcome =
  if not outcome.all_correct_decided then None
  else
    let correct_rounds =
      List.filter_map
        (fun (pid, r, _) ->
          if Crash.is_correct outcome.trace.Trace.crash pid then Some r else None)
        outcome.decisions
    in
    match correct_rounds with
    | [] -> None
    | r :: rs -> Some (List.fold_left max r rs)

module Make (A : Intf.ALGORITHM) = struct
  type proc = {
    mutable st : A.state option;  (* None before initialize / while away *)
    mutable halted : bool;  (* decided *)
    mutable crashed : bool;
    mutable was_leader : bool;  (* last sampled A.leader, for transitions *)
    mutable mailbox : A.msg Mailbox.t;  (* replaced wholesale on rejoin *)
  }

  let run ?observe ?(recorder = Anon_obs.Recorder.off) config =
    let module R = Anon_obs.Recorder in
    let module M = Anon_obs.Metrics in
    let module E = Anon_obs.Event in
    let obs_on = R.active recorder in
    let kernel_before = if obs_on then Some (R.kernel_baseline ()) else None in
    let m_broadcasts = R.counter recorder "runner.broadcasts" in
    let m_deliveries = R.counter recorder "runner.deliveries" in
    let m_timely = R.counter recorder "runner.timely_deliveries" in
    let m_decisions = R.counter recorder "runner.decisions" in
    let m_crashes = R.counter recorder "runner.crashes" in
    let m_leaves = R.counter recorder "churn.leaves" in
    let m_rejoins = R.counter recorder "churn.rejoins" in
    let m_leader_changes = R.counter recorder "runner.leader_changes" in
    let m_rounds = R.gauge recorder "runner.rounds" in
    let m_msg_size = R.histogram recorder "runner.msg_size" in
    let m_mailbox = R.histogram recorder "runner.mailbox_pending" in
    let t_compute = R.histogram recorder "phase.compute_us" in
    let t_deliver = R.histogram recorder "phase.deliver_us" in
    validate ~where:"Runner.run" config;
    let n = Array.length config.inputs in
    let rng = Rng.make config.seed in
    let crash_rng = Rng.split rng in
    let procs =
      Array.init n (fun _ ->
          {
            st = None;
            halted = false;
            crashed = false;
            was_leader = false;
            mailbox = Mailbox.create ~compare:A.msg_compare ();
          })
    in
    R.emit recorder (fun () -> E.Run_start { algo = A.name; n; seed = config.seed });
    let correct = Crash.correct config.crash in
    let correct_stayers = List.filter (Churn.is_stayer config.churn) correct in
    let decisions = ref [] in
    let rounds = ref [] in
    let messages_sent = ref 0 in
    let deliveries = ref 0 in
    let timely_deliveries = ref 0 in
    (* Liveness is owed to correct stayers only; a churner may rejoin after
       everyone halted and run alone forever. *)
    let undecided_correct () =
      List.filter (fun p -> not procs.(p).halted) correct_stayers
    in
    let round = ref 1 in
    let continue = ref true in
    while !continue && !round <= config.horizon do
      let k = !round in
      R.emit recorder (fun () -> E.Round_start { round = k });
      (* Churn transitions. Halted processes ignore their churn event —
         decisions are irrevocable, there is nothing left to leave. A
         rejoiner restarts from scratch: anonymity leaves no identifier
         under which state or mail could have been parked. *)
      let away p = (not procs.(p).halted) && Churn.away config.churn ~pid:p ~round:k in
      List.iter
        (fun (ev : Churn.event) ->
          if (not procs.(ev.pid).halted) && not procs.(ev.pid).crashed then begin
            M.incr m_leaves;
            R.emit recorder (fun () ->
                E.Churn { pid = ev.pid; round = k; rejoin = false })
          end)
        (Churn.leaving_at config.churn ~round:k);
      List.iter
        (fun (ev : Churn.event) ->
          let proc = procs.(ev.pid) in
          if (not proc.halted) && not proc.crashed then begin
            proc.st <- None;
            proc.mailbox <- Mailbox.create ~compare:A.msg_compare ();
            M.incr m_rejoins;
            R.emit recorder (fun () ->
                E.Churn { pid = ev.pid; round = k; rejoin = true })
          end)
        (Churn.rejoining_at config.churn ~round:k);
      let crashing_events =
        List.filter
          (fun (ev : Crash.event) ->
            (not procs.(ev.pid).crashed) && not procs.(ev.pid).halted)
          (Crash.crashing_at config.crash ~round:k)
      in
      let crashing_pids = List.map (fun (ev : Crash.event) -> ev.pid) crashing_events in
      let participants =
        List.filter
          (fun p -> (not procs.(p).crashed) && (not procs.(p).halted) && not (away p))
          (List.init n Fun.id)
      in
      (* Phase 1: each participant's k-th end-of-round — compute round k-1
         (or initialize) and produce the round-k message. Deciders halt and
         send nothing. *)
      let decided_now = ref [] in
      let outgoing =
        M.time t_compute (fun () ->
            List.filter_map
              (fun p ->
                let proc = procs.(p) in
                let fresh = Mailbox.drain proc.mailbox ~upto:(k - 1) in
                let result =
                  (* [st = None] at round 1 and just after a rejoin: both
                     start the algorithm fresh from the original input. *)
                  if proc.st = None then begin
                    let st, m = A.initialize config.inputs.(p) in
                    proc.st <- Some st;
                    Some m
                  end
                  else begin
                    let current = Mailbox.current proc.mailbox ~round:(k - 1) in
                    let st =
                      match proc.st with Some st -> st | None -> assert false
                    in
                    let st', m, dec =
                      A.compute st ~round:(k - 1) ~inbox:{ Intf.current; fresh }
                    in
                    proc.st <- Some st';
                    match dec with
                    | None -> Some m
                    | Some v ->
                      proc.halted <- true;
                      decided_now := (p, v) :: !decided_now;
                      decisions := (p, k - 1, v) :: !decisions;
                      None
                  end
                in
                (match observe, proc.st with
                | Some f, Some st -> f ~pid:p ~round:(k - 1) st
                | None, _ | _, None -> ());
                (if obs_on then
                   match proc.st with
                   | None -> ()
                   | Some st -> (
                     match A.leader st with
                     | Some l when l <> proc.was_leader ->
                       proc.was_leader <- l;
                       M.incr m_leader_changes;
                       R.emit recorder (fun () ->
                           E.Leader { pid = p; round = k - 1; leader = l })
                     | Some _ | None -> ()));
                Option.map (fun m -> { Dispatch.sender = p; msg = m }) result)
              participants)
      in
      List.iter
        (fun (p, v) ->
          M.incr m_decisions;
          R.emit recorder (fun () -> E.Decide { pid = p; round = k - 1; value = v }))
        (List.rev !decided_now);
      (* Phase 2: adversarial deliveries. A source must reach every process
         that will compute this round — not only the correct ones. The
         paper's §2.3 literally quantifies timely links over correct
         processes, but the Lemma 1 proof ("every other process pj that
         enters round k also has received the message of this source")
         needs the stronger obligation; see DESIGN.md §5 and experiment A2
         for what breaks under the literal reading. *)
      let obligated =
        List.filter
          (fun p -> (not procs.(p).halted) && not (List.mem p crashing_pids))
          participants
      in
      let normal_senders =
        List.filter_map
          (fun { Dispatch.sender; _ } ->
            if List.mem sender crashing_pids then None else Some sender)
          outgoing
      in
      let alive_receivers =
        List.filter
          (fun p ->
            (not procs.(p).crashed)
            && (not procs.(p).halted)
            && (not (away p))
            && not (List.mem p crashing_pids))
          (List.init n Fun.id)
      in
      let ctx =
        {
          Adversary.round = k;
          senders = normal_senders;
          obligated;
          correct;
          alive = alive_receivers;
        }
      in
      let plan = Adversary.plan config.adversary ctx rng in
      let stats =
        M.time t_deliver (fun () ->
            Dispatch.dispatch ~round:k ~outgoing ~crashing_events
              ~eligible:(fun q ->
                q < n && (not procs.(q).crashed) && (not procs.(q).halted)
                && not (away q))
              ~receivers:alive_receivers ~plan ~crash_rng
              ~on_deliver:(fun ~sender ~receiver ~arrival ->
                R.emit recorder (fun () ->
                    E.Deliver { sender; receiver; round = k; arrival }))
              ~schedule:(fun ~receiver ~arrival ~sent msg ->
                Mailbox.schedule procs.(receiver).mailbox ~arrival ~sent msg)
              ())
      in
      messages_sent := !messages_sent + List.length outgoing;
      deliveries := !deliveries + stats.delivered;
      timely_deliveries := !timely_deliveries + stats.timely_count;
      if obs_on then begin
        M.incr ~by:(List.length outgoing) m_broadcasts;
        M.incr ~by:stats.delivered m_deliveries;
        M.incr ~by:stats.timely_count m_timely
      end;
      List.iter
        (fun p ->
          procs.(p).crashed <- true;
          M.incr m_crashes;
          R.emit recorder (fun () -> E.Crash { pid = p; round = k }))
        crashing_pids;
      let info =
        {
          Trace.round = k;
          senders = List.map (fun { Dispatch.sender; _ } -> sender) outgoing;
          crashing = crashing_pids;
          source = plan.source;
          timely = stats.timely;
          obligated;
          decided = List.rev !decided_now;
          msg_sizes =
            List.map
              (fun { Dispatch.sender; msg } -> (sender, A.msg_size msg))
              outgoing;
        }
      in
      rounds := info :: !rounds;
      if obs_on then begin
        List.iter
          (fun ({ Dispatch.sender; _ }, (_, size)) ->
            M.observe m_msg_size (float_of_int size);
            R.emit recorder (fun () ->
                E.Broadcast { pid = sender; round = k; size }))
          (List.combine outgoing info.msg_sizes);
        Array.iter
          (fun proc ->
            if not proc.crashed then
              M.observe m_mailbox (float_of_int (Mailbox.pending proc.mailbox)))
          procs;
        R.emit recorder (fun () ->
            E.Round_end
              {
                round = k;
                senders = List.length outgoing;
                delivered = stats.delivered;
                timely = stats.timely_count;
              })
      end;
      if config.stop_on_decision && undecided_correct () = [] then continue := false;
      incr round
    done;
    let trace =
      {
        Trace.n;
        inputs = config.inputs;
        crash = config.crash;
        churn = config.churn;
        env = Adversary.env config.adversary;
        rounds = List.rev !rounds;
      }
    in
    let all_correct_decided = undecided_correct () = [] in
    let rounds_executed = min (!round - 1) config.horizon in
    if obs_on then begin
      M.set_gauge m_rounds (float_of_int rounds_executed);
      (match kernel_before with
      | Some b -> R.record_kernel recorder b
      | None -> ());
      R.emit recorder (fun () ->
          E.Run_end { rounds = rounds_executed; decided = all_correct_decided });
      R.flush recorder
    end;
    {
      trace;
      decisions = List.rev !decisions;
      all_correct_decided;
      rounds_executed;
      messages_sent = !messages_sent;
      deliveries = !deliveries;
      timely_deliveries = !timely_deliveries;
    }
end
