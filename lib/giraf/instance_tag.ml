module Make (A : Intf.ALGORITHM) = struct
  type bundle = (int * A.msg) list

  let rec compare a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | (ia, ma) :: ra, (ib, mb) :: rb ->
      let c = Int.compare ia ib in
      if c <> 0 then c
      else
        let c = A.msg_compare ma mb in
        if c <> 0 then c else compare ra rb

  let size bundle =
    List.fold_left (fun acc (_, msg) -> acc + 1 + A.msg_size msg) 0 bundle

  let of_rounds per_instance =
    (* One pass per instance, accumulating reversed bundles per sender;
       instances arrive in ascending id order so each per-sender list comes
       out ascending after the final reverse. *)
    let by_sender : (int, (int * A.msg) list ref) Hashtbl.t = Hashtbl.create 16 in
    let senders = ref [] in
    List.iter
      (fun (instance, outgoing) ->
        List.iter
          (fun { Dispatch.sender; msg } ->
            match Hashtbl.find_opt by_sender sender with
            | Some cell -> cell := (instance, msg) :: !cell
            | None ->
              Hashtbl.add by_sender sender (ref [ (instance, msg) ]);
              senders := sender :: !senders)
          outgoing)
      per_instance;
    List.sort Stdlib.compare !senders
    |> List.map (fun sender ->
           let cell = Hashtbl.find by_sender sender in
           { Dispatch.sender; msg = List.rev !cell })

  let split ~instance bundle = List.assoc_opt instance bundle

  let pp ppf bundle =
    Format.fprintf ppf "@[<hov 1>[";
    List.iteri
      (fun i (instance, msg) ->
        if i > 0 then Format.fprintf ppf ";@ ";
        Format.fprintf ppf "#%d:%a" instance A.pp_msg msg)
      bundle;
    Format.fprintf ppf "]@]"
end
