type spec = {
  env : Env.t;
  stable : int option;
  max_delay : int;
  crashing : int list;
  include_inadmissible : bool;
}

type choice = { plan : Adversary.plan; admissible : bool }

let default ~env =
  { env; stable = None; max_delay = 1; crashing = []; include_inadmissible = false }

(* Cartesian product, first axis varying slowest (deterministic order). *)
let rec product = function
  | [] -> [ [] ]
  | choices :: rest ->
    let tails = product rest in
    List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let plan_key (p : Adversary.plan) =
  let deliveries =
    List.sort compare
      (List.map
         (fun (s, ds) ->
           ( s,
             List.sort compare
               (List.map (fun (d : Adversary.delivery) -> (d.receiver, d.arrival)) ds)
           ))
         p.deliveries)
  in
  let buf = Buffer.create 64 in
  List.iter
    (fun (s, ds) ->
      Buffer.add_string buf (string_of_int s);
      Buffer.add_char buf ':';
      List.iter
        (fun (r, a) ->
          Buffer.add_string buf (string_of_int r);
          Buffer.add_char buf '@';
          Buffer.add_string buf (string_of_int a);
          Buffer.add_char buf ';')
        ds;
      Buffer.add_char buf '|')
    deliveries;
  Buffer.contents buf

type fate = Timely | Late of int | Absent

let enumerate spec (ctx : Adversary.ctx) =
  let round = ctx.round in
  let all_senders =
    ctx.senders @ List.filter (fun c -> not (List.mem c ctx.senders)) spec.crashing
  in
  let correct_senders = List.filter (fun s -> List.mem s ctx.correct) ctx.senders in
  let demanding = ctx.obligated <> [] && correct_senders <> [] in
  (* Senders whose links to every obligated receiver are forced timely
     regardless of the source choice. *)
  let forced_senders =
    if not demanding then []
    else
      match spec.env with
      | Env.Sync -> correct_senders
      | Env.Es { gst } when round >= gst -> correct_senders
      | Env.Dynamic { stability; _ } when not (Env.pulse ~stability ~round) ->
        (* Healed round of a stability window: full synchrony. *)
        correct_senders
      | Env.Es _ | Env.Ess _ | Env.Ms | Env.Async | Env.Dynamic _ -> []
  in
  let source_choices =
    if not demanding then [ None ]
    else
      match spec.env with
      | Env.Async -> [ None ]
      | Env.Sync -> [ Some (List.hd correct_senders) ]
      | Env.Es { gst } when round >= gst -> [ Some (List.hd correct_senders) ]
      | Env.Ess { gst } when round >= gst -> (
        match spec.stable with
        | Some s when List.mem s ctx.senders -> [ Some s ]
        | Some _ | None -> List.map (fun s -> Some s) correct_senders)
      | Env.Dynamic { stability; rooted } ->
        if not (Env.pulse ~stability ~round) then
          (* Healed: everyone is forced timely anyway; one source suffices. *)
          [ Some (List.hd correct_senders) ]
        else if rooted then
          (* Pulse: any sender (even a crasher) may be the covering root. *)
          List.map (fun s -> Some s) all_senders
        else [ None ]
      | Env.Ms | Env.Es _ | Env.Ess _ -> List.map (fun s -> Some s) all_senders
  in
  let restrict_cover ~source s =
    match spec.env with
    | Env.Ess { gst } ->
      round >= gst && demanding && Some s <> source
      && not (List.mem s spec.crashing)
    | Env.Sync | Env.Ms | Env.Es _ | Env.Async | Env.Dynamic _ -> false
  in
  let assignments ~source s =
    let receivers = List.filter (fun q -> q <> s) ctx.alive in
    let crashing = List.mem s spec.crashing in
    let forced q =
      List.mem q ctx.obligated
      && (List.mem s forced_senders || source = Some s)
    in
    let fates =
      Timely
      :: (List.init spec.max_delay (fun i -> Late (i + 1))
         @ if crashing then [ Absent ] else [])
    in
    let per_receiver =
      List.map (fun q -> (q, if forced q then [ Timely ] else fates)) receivers
    in
    let combos = product (List.map snd per_receiver) in
    let tagged =
      List.map (fun fs -> List.combine (List.map fst per_receiver) fs) combos
    in
    let covers fs =
      List.for_all (fun q -> q = s || List.assoc_opt q fs = Some Timely) ctx.obligated
    in
    let tagged =
      if restrict_cover ~source s then
        match List.filter (fun fs -> not (covers fs)) tagged with
        | [] -> tagged (* defensive: never empty a sender's choice set *)
        | restricted -> restricted
      else tagged
    in
    List.map
      (fun fs ->
        List.filter_map
          (fun (q, f) ->
            match f with
            | Timely -> Some { Adversary.receiver = q; arrival = round }
            | Late d -> Some { Adversary.receiver = q; arrival = round + d }
            | Absent -> None)
          fs)
      tagged
  in
  let plans_for source =
    let per_sender =
      List.map
        (fun s -> List.map (fun ds -> (s, ds)) (assignments ~source s))
        all_senders
    in
    List.map
      (fun deliveries -> { Adversary.source; deliveries })
      (product per_sender)
  in
  let admissible = List.concat_map plans_for source_choices in
  let armed =
    let trivially_covered =
      List.exists
        (fun s -> List.for_all (fun q -> q = s) ctx.obligated)
        all_senders
    in
    (* Rounds where the environment owes nothing: an all-late plan there
       is admissible, not armed. *)
    let unobligated =
      match spec.env with
      | Env.Async -> true
      | Env.Dynamic { stability; rooted } ->
        (not rooted) && Env.pulse ~stability ~round
      | Env.Sync | Env.Ms | Env.Es _ | Env.Ess _ -> false
    in
    if
      (not spec.include_inadmissible)
      || (not demanding)
      || trivially_covered
      || unobligated
    then []
    else
      let deliveries =
        List.map
          (fun s ->
            let receivers = List.filter (fun q -> q <> s) ctx.alive in
            if List.mem s spec.crashing then (s, [])
            else
              ( s,
                List.map
                  (fun q -> { Adversary.receiver = q; arrival = round + 1 })
                  receivers ))
          all_senders
      in
      [ { Adversary.source = None; deliveries } ]
  in
  let seen = Hashtbl.create 64 in
  let dedup admissible plans =
    List.filter_map
      (fun plan ->
        let key = plan_key plan in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some { plan; admissible }
        end)
      plans
  in
  dedup true admissible @ dedup false armed

type memo = (string, choice list) Hashtbl.t

let memo () : memo = Hashtbl.create 128

(* Everything [enumerate] reads besides the constant parts of the spec:
   the round, the ESS stable source, the crashers, and the ctx process
   lists ([correct] is fixed by the crash schedule the memo's exploration
   runs under). *)
let memo_key spec (ctx : Adversary.ctx) =
  let buf = Buffer.create 64 in
  let ints label xs =
    Buffer.add_char buf label;
    List.iter
      (fun x ->
        Buffer.add_string buf (string_of_int x);
        Buffer.add_char buf ',')
      xs
  in
  Buffer.add_string buf (string_of_int ctx.round);
  Buffer.add_char buf '|';
  (match spec.stable with
  | None -> ()
  | Some s -> Buffer.add_string buf (string_of_int s));
  ints '|' spec.crashing;
  ints 's' ctx.senders;
  ints 'o' ctx.obligated;
  ints 'a' ctx.alive;
  Buffer.contents buf

let enumerate_memo memo spec ctx =
  let key = memo_key spec ctx in
  match Hashtbl.find_opt memo key with
  | Some choices -> choices
  | None ->
    let choices = enumerate spec ctx in
    Hashtbl.add memo key choices;
    choices
