open Anon_kernel

type fate = Live | Crashed | Halted | Away

type op_spec = Do_add of Value.t | Do_get | Do_add_with of (Value.Set.t -> Value.t)

type workload = (int * (int * op_spec) list) list

(* The two cores share the round skeleton: [begin_round] (churn
   transitions, then the crash latch), [compute] (iteration [k] consumes
   arrivals <= k-1 and runs round k-1), [deliver] (Dispatch under the
   plan, crasher marking, ESS stable bookkeeping). They differ only where
   the automata differ — consensus processes halt on decision, services
   run a client-operation phase instead. *)

(* Inbox assembly is owned by the backend seam ({!Backend.ready_inbox}):
   the live backend must consume arrivals with byte-identical semantics,
   so the one implementation lives there and both backends call it. *)
let ready_inbox = Backend.ready_inbox

module Consensus (A : Intf.ALGORITHM) = struct
  type t = {
    n : int;
    inputs : Value.t array;
    crash : Crash.t;
    churn : Churn.t;
    env : Env.t;
    st : A.state option array;  (* None before initialize / while away *)
    out : A.msg option array;  (* this round's broadcast; None = sends nothing *)
    inflight : (int * int * A.msg) list array;  (* (arrival, sent, msg), undrained *)
    fate : fate array;
    version : int array;  (* bumped whenever p's observable view changes *)
    is_crashing : bool array;  (* scratch mirror of crashing_now pids *)
    mutable round : int;  (* 0 before the first begin_round *)
    mutable crashing_now : Crash.event list;  (* latched round-[round] events *)
    mutable outgoing : A.msg Dispatch.outbound list;  (* ascending pid *)
    mutable stable : int option;  (* ESS: the current segment's stable source *)
    correct : int list;
    correct_stayers : int list;
  }

  let create ~inputs ~crash ~churn ~env =
    let n = Array.length inputs in
    let correct = Crash.correct crash in
    {
      n;
      inputs;
      crash;
      churn;
      env;
      st = Array.make n None;
      out = Array.make n None;
      inflight = Array.make n [];
      fate = Array.make n Live;
      version = Array.make n 0;
      is_crashing = Array.make n false;
      round = 0;
      crashing_now = [];
      outgoing = [];
      stable = None;
      correct;
      correct_stayers = List.filter (Churn.is_stayer churn) correct;
    }

  let copy t =
    {
      t with
      st = Array.copy t.st;
      out = Array.copy t.out;
      inflight = Array.copy t.inflight;
      fate = Array.copy t.fate;
      version = Array.copy t.version;
      is_crashing = Array.copy t.is_crashing;
    }

  let n t = t.n
  let round t = t.round
  let fate t p = t.fate.(p)
  let state t p = t.st.(p)
  let out t p = t.out.(p)
  let inflight t p = t.inflight.(p)
  let version t p = t.version.(p)
  let stable t = t.stable
  let correct t = t.correct
  let correct_stayers t = t.correct_stayers
  let crashing_now t = t.crashing_now
  let crashing_pids t = List.map (fun (ev : Crash.event) -> ev.pid) t.crashing_now
  let mailbox_pending t p = List.length t.inflight.(p)
  let bump t p = t.version.(p) <- t.version.(p) + 1

  let begin_round ?on_leave ?on_rejoin t =
    let k = t.round + 1 in
    t.round <- k;
    (* Churn transitions. Halted processes ignore churn — decisions are
       irrevocable, there is nothing left to leave. A rejoiner restarts
       from scratch: anonymity leaves no identifier under which state or
       mail could have been parked. *)
    List.iter
      (fun (ev : Churn.event) ->
        match t.fate.(ev.pid) with
        | Live ->
          t.fate.(ev.pid) <- Away;
          t.out.(ev.pid) <- None;
          bump t ev.pid;
          (match on_leave with Some f -> f ~pid:ev.pid | None -> ())
        | Crashed | Halted | Away -> ())
      (Churn.leaving_at t.churn ~round:k);
    List.iter
      (fun (ev : Churn.event) ->
        match t.fate.(ev.pid) with
        | Away | Live ->
          t.fate.(ev.pid) <- Live;
          t.st.(ev.pid) <- None;
          t.inflight.(ev.pid) <- [];
          bump t ev.pid;
          (match on_rejoin with Some f -> f ~pid:ev.pid | None -> ())
        | Crashed | Halted -> ())
      (Churn.rejoining_at t.churn ~round:k);
    (* Latch the round's crash events against the fates as they stand
       before the compute: a process that already crashed or decided
       cannot crash again. *)
    List.iter (fun (ev : Crash.event) -> t.is_crashing.(ev.pid) <- false) t.crashing_now;
    t.crashing_now <-
      List.filter
        (fun (ev : Crash.event) ->
          match t.fate.(ev.pid) with
          | Live | Away -> true
          | Crashed | Halted -> false)
        (Crash.crashing_at t.crash ~round:k);
    List.iter (fun (ev : Crash.event) -> t.is_crashing.(ev.pid) <- true) t.crashing_now

  let compute ?observe ?on_decide t =
    let k = t.round in
    let rev_out = ref [] in
    for p = 0 to t.n - 1 do
      match t.fate.(p) with
      | Crashed | Halted | Away -> ()
      | Live ->
        bump t p;
        (match t.st.(p) with
        | None ->
          (* Round 1 and just after a rejoin: start fresh from the
             original input. *)
          let st, m = A.initialize t.inputs.(p) in
          t.st.(p) <- Some st;
          t.out.(p) <- Some m;
          rev_out := { Dispatch.sender = p; msg = m } :: !rev_out
        | Some st -> (
          let current, fresh, rest =
            ready_inbox ~compare:A.msg_compare ~round:(k - 1) t.inflight.(p)
          in
          t.inflight.(p) <- rest;
          let st', m, dec =
            A.compute st ~round:(k - 1) ~inbox:{ Intf.current; fresh }
          in
          t.st.(p) <- Some st';
          match dec with
          | None ->
            t.out.(p) <- Some m;
            rev_out := { Dispatch.sender = p; msg = m } :: !rev_out
          | Some v ->
            (* Deciders halt and send nothing. *)
            t.fate.(p) <- Halted;
            t.out.(p) <- None;
            (match on_decide with
            | Some f -> f ~pid:p ~round:(k - 1) ~value:v
            | None -> ())));
        (match (observe, t.st.(p)) with
        | Some f, Some st -> f ~pid:p ~round:(k - 1) st
        | None, _ | _, None -> ())
    done;
    t.outgoing <- List.rev !rev_out;
    t.outgoing

  (* After the compute phase the normal senders, the obligated receivers
     and the alive receivers all coincide: the live processes (every one
     of which broadcast) not crashing this round. Deciders left both sets
     when they halted. *)
  let alive t =
    let acc = ref [] in
    for p = t.n - 1 downto 0 do
      if t.fate.(p) = Live && not t.is_crashing.(p) then acc := p :: !acc
    done;
    !acc

  let ctx t =
    let alive = alive t in
    {
      Adversary.round = t.round;
      senders = alive;
      obligated = alive;
      correct = t.correct;
      alive;
    }

  let deliver ?on_deliver ?on_crash t ~plan ~crash_rng =
    let k = t.round in
    let stats =
      Dispatch.dispatch ~round:k ~outgoing:t.outgoing
        ~crashing_events:t.crashing_now
        ~eligible:(fun q -> q >= 0 && q < t.n && t.fate.(q) = Live)
        ~receivers:(alive t) ~plan ~crash_rng
        ?on_deliver
        ~schedule:(fun ~receiver ~arrival ~sent msg ->
          t.inflight.(receiver) <- (arrival, sent, msg) :: t.inflight.(receiver);
          bump t receiver)
        ()
    in
    List.iter
      (fun (ev : Crash.event) ->
        t.fate.(ev.pid) <- Crashed;
        t.st.(ev.pid) <- None;
        t.out.(ev.pid) <- None;
        t.inflight.(ev.pid) <- [];
        bump t ev.pid;
        match on_crash with Some f -> f ~pid:ev.pid | None -> ())
      t.crashing_now;
    (match t.env with
    | Env.Ess { gst } when k >= gst -> (
      match plan.Adversary.source with
      | Some _ as src when src <> t.stable ->
        (match t.stable with Some p -> bump t p | None -> ());
        (match src with Some p -> bump t p | None -> ());
        t.stable <- src
      | Some _ | None -> ())
    | Env.Sync | Env.Ms | Env.Es _ | Env.Ess _ | Env.Async | Env.Dynamic _ -> ());
    stats

  let undecided_correct_stayers t =
    List.filter (fun p -> t.fate.(p) <> Halted) t.correct_stayers
end

module Service (S : Intf.SERVICE) = struct
  type t = {
    n : int;
    crash : Crash.t;
    churn : Churn.t;
    env : Env.t;
    st : S.state option array;
    out : S.msg option array;
    inflight : (int * int * S.msg) list array;
    fate : fate array;  (* services never halt: Live / Crashed / Away *)
    version : int array;
    is_crashing : bool array;
    script : (int * op_spec) list array;
    blocked : (Value.t * int) option array;  (* pending add: value, invoked round *)
    mutable round : int;
    mutable crashing_now : Crash.event list;
    mutable outgoing : S.msg Dispatch.outbound list;
    correct : int list;
  }

  let create ~n ~crash ~churn ~env ~workload =
    {
      n;
      crash;
      churn;
      env;
      st = Array.make n None;
      out = Array.make n None;
      inflight = Array.make n [];
      fate = Array.make n Live;
      version = Array.make n 0;
      is_crashing = Array.make n false;
      script =
        Array.init n (fun p -> Option.value ~default:[] (List.assoc_opt p workload));
      blocked = Array.make n None;
      round = 0;
      crashing_now = [];
      outgoing = [];
      correct = Crash.correct crash;
    }

  let copy t =
    {
      t with
      st = Array.copy t.st;
      out = Array.copy t.out;
      inflight = Array.copy t.inflight;
      fate = Array.copy t.fate;
      version = Array.copy t.version;
      is_crashing = Array.copy t.is_crashing;
      script = Array.copy t.script;
      blocked = Array.copy t.blocked;
    }

  let n t = t.n
  let round t = t.round
  let fate t p = t.fate.(p)
  let state t p = t.st.(p)
  let out t p = t.out.(p)
  let inflight t p = t.inflight.(p)
  let version t p = t.version.(p)
  let script t p = t.script.(p)
  let blocked t p = t.blocked.(p)
  let correct t = t.correct
  let crashing_now t = t.crashing_now
  let crashing_pids t = List.map (fun (ev : Crash.event) -> ev.pid) t.crashing_now
  let mailbox_pending t p = List.length t.inflight.(p)
  let bump t p = t.version.(p) <- t.version.(p) + 1

  let begin_round ?on_leave ?on_rejoin t =
    let k = t.round + 1 in
    t.round <- k;
    (* A leaver's pending add is surfaced to the shell (recorded
       incomplete — the value may or may not have propagated; the weak-set
       axioms only bind completed adds). A rejoiner restarts with a fresh
       replica and an empty mailbox, its remaining client script intact. *)
    List.iter
      (fun (ev : Churn.event) ->
        match t.fate.(ev.pid) with
        | Live ->
          let pending = t.blocked.(ev.pid) in
          t.fate.(ev.pid) <- Away;
          t.out.(ev.pid) <- None;
          t.blocked.(ev.pid) <- None;
          bump t ev.pid;
          (match on_leave with Some f -> f ~pid:ev.pid ~pending | None -> ())
        | Crashed | Halted | Away -> ())
      (Churn.leaving_at t.churn ~round:k);
    List.iter
      (fun (ev : Churn.event) ->
        match t.fate.(ev.pid) with
        | Away | Live ->
          t.fate.(ev.pid) <- Live;
          t.st.(ev.pid) <- None;
          t.inflight.(ev.pid) <- [];
          bump t ev.pid;
          (match on_rejoin with Some f -> f ~pid:ev.pid | None -> ())
        | Crashed | Halted -> ())
      (Churn.rejoining_at t.churn ~round:k);
    List.iter (fun (ev : Crash.event) -> t.is_crashing.(ev.pid) <- false) t.crashing_now;
    t.crashing_now <-
      List.filter
        (fun (ev : Crash.event) ->
          match t.fate.(ev.pid) with
          | Live | Away | Halted -> true
          | Crashed -> false)
        (Crash.crashing_at t.crash ~round:k);
    List.iter (fun (ev : Crash.event) -> t.is_crashing.(ev.pid) <- true) t.crashing_now

  let compute ?observe ?on_add_complete t =
    let k = t.round in
    let rev_out = ref [] in
    for p = 0 to t.n - 1 do
      match t.fate.(p) with
      | Crashed | Halted | Away -> ()
      | Live ->
        bump t p;
        (match t.st.(p) with
        | None ->
          let st, m = S.initialize () in
          t.st.(p) <- Some st;
          t.out.(p) <- Some m;
          rev_out := { Dispatch.sender = p; msg = m } :: !rev_out
        | Some st ->
          let current, fresh, rest =
            ready_inbox ~compare:S.msg_compare ~round:(k - 1) t.inflight.(p)
          in
          t.inflight.(p) <- rest;
          let st', m = S.compute st ~round:(k - 1) ~inbox:{ Intf.current; fresh } in
          t.st.(p) <- Some st';
          t.out.(p) <- Some m;
          (* A pending add completes the moment BLOCK clears. *)
          (match t.blocked.(p) with
          | Some (v, invoked_round) when not (S.add_pending st') ->
            t.blocked.(p) <- None;
            (match on_add_complete with
            | Some f -> f ~pid:p ~value:v ~invoked_round
            | None -> ())
          | Some _ | None -> ());
          rev_out := { Dispatch.sender = p; msg = m } :: !rev_out);
        (match (observe, t.st.(p)) with
        | Some f, Some st -> f ~pid:p ~round:(k - 1) st
        | None, _ | _, None -> ())
    done;
    t.outgoing <- List.rev !rev_out;
    t.outgoing

  let alive t =
    let acc = ref [] in
    for p = t.n - 1 downto 0 do
      if t.fate.(p) = Live && not t.is_crashing.(p) then acc := p :: !acc
    done;
    !acc

  let ctx t =
    let alive = alive t in
    {
      Adversary.round = t.round;
      senders = alive;
      obligated = alive;
      correct = t.correct;
      alive;
    }

  let deliver ?on_deliver ?on_crash t ~plan ~crash_rng =
    let stats =
      Dispatch.dispatch ~round:t.round ~outgoing:t.outgoing
        ~crashing_events:t.crashing_now
        ~eligible:(fun q -> q >= 0 && q < t.n && t.fate.(q) = Live)
        ~receivers:(alive t) ~plan ~crash_rng
        ?on_deliver
        ~schedule:(fun ~receiver ~arrival ~sent msg ->
          t.inflight.(receiver) <- (arrival, sent, msg) :: t.inflight.(receiver);
          bump t receiver)
        ()
    in
    List.iter
      (fun (ev : Crash.event) ->
        t.fate.(ev.pid) <- Crashed;
        t.st.(ev.pid) <- None;
        t.out.(ev.pid) <- None;
        t.inflight.(ev.pid) <- [];
        bump t ev.pid;
        match on_crash with Some f -> f ~pid:ev.pid | None -> ())
      t.crashing_now;
    stats

  (* The round-[round] client-operation phase: one operation per unblocked
     live client, in pid order, reading the post-compute state. *)
  let ops ?on_get ?on_add t =
    let k = t.round in
    for p = 0 to t.n - 1 do
      if t.fate.(p) = Live && t.blocked.(p) = None then
        match t.script.(p) with
        | (start, op) :: rest when start <= k -> (
          match t.st.(p) with
          | None -> ()
          | Some st -> (
            match op with
            | Do_get ->
              let result = S.get st in
              t.script.(p) <- rest;
              bump t p;
              (match on_get with Some f -> f ~pid:p ~result | None -> ())
            | Do_add v ->
              t.st.(p) <- Some (S.add st v);
              t.script.(p) <- rest;
              t.blocked.(p) <- Some (v, k);
              bump t p;
              (match on_add with Some f -> f ~pid:p ~value:v | None -> ())
            | Do_add_with f ->
              let v = f (S.get st) in
              t.st.(p) <- Some (S.add st v);
              t.script.(p) <- rest;
              t.blocked.(p) <- Some (v, k);
              bump t p;
              (match on_add with Some g -> g ~pid:p ~value:v | None -> ())))
        | _ -> ()
    done
end
