(** Independent trace verification.

    Nothing here trusts the runner's bookkeeping beyond the raw delivery
    facts: environment obligations are re-derived from the timely sets, and
    the consensus properties are re-derived from inputs and decisions. *)

type violation =
  | Agreement_violation of { p1 : int; v1 : Anon_kernel.Value.t; p2 : int; v2 : Anon_kernel.Value.t }
  | Validity_violation of { pid : int; value : Anon_kernel.Value.t }
  | Termination_violation of { undecided : int list; horizon : int }
  | No_source of { round : int }
  | Source_not_timely of { round : int; sender : int; missing : int list }
  | Unstable_source of { gst : int }
  | No_root of { round : int; window : int; senders : (int * int list) list }
      (** A rooted [Dynamic] pulse round where no sender covered the
          obligated receivers; [senders] lists every correct sender with
          the receivers it missed (the offending links). *)
  | Stability_violation of { round : int; window : int; sender : int; missing : int list }
      (** A healed round of a [Dynamic] stability window where a correct
          [sender] was late to [missing] obligated receivers. *)
  | Weak_set_lost_add of { value : Anon_kernel.Value.t; get_client : int; get_invoked : int }
  | Weak_set_phantom_value of { value : Anon_kernel.Value.t; get_client : int }
  | Register_stale_read of {
      reader : int;
      read_value : Anon_kernel.Value.t;
      expected : Anon_kernel.Value.t;
    }

val pp_violation : Format.formatter -> violation -> unit

val check_env : Trace.t -> violation list
(** Verify that the trace satisfies the environment recorded in it:
    - [Sync]: every correct sender covered every obligated receiver timely,
      in every round;
    - [Ms]: every round with obligations had {e some} sender covering them;
    - [Es gst]: MS always, and from [gst] on every correct sender covered
      the obligated receivers;
    - [Ess gst]: MS always, and one single correct process covered the
      obligated receivers in {e every} round from [gst] on — allowing the
      stable source to change only when the previous one decided and
      halted (halted processes execute no rounds, so the obligation
      passes on);
    - [Async]: nothing;
    - [Dynamic (stability, rooted)]: each pulse round (the first of every
      [stability]-round window) needs, when [rooted], some sender covering
      every obligated receiver (root reachability); every other round of
      the window needs every correct sender timely to every obligated
      receiver (the healed graph). *)

val check_consensus :
  ?expect_termination:bool -> Trace.t -> violation list
(** Validity of every decision; agreement and (when [expect_termination],
    default [true]) termination of every correct {e stayer} — processes
    with a churn event are exempt from the latter two, because a rejoiner
    restarting after the stayers halted can legitimately decide alone. *)

(** Operation records for weak-set semantics checking. Timestamps come from
    any totally ordered logical clock shared by all operations of a run. *)
type ws_add = {
  add_client : int;
  add_value : Anon_kernel.Value.t;
  add_invoked : int;
  add_completed : int option;  (** [None] while still pending at run end. *)
}

type ws_get = {
  get_client : int;
  get_result : Anon_kernel.Value.Set.t;
  get_invoked : int;
  get_completed : int;
}

type ws_op = Ws_add of ws_add | Ws_get of ws_get

val check_weak_set : ?correct:int list -> ws_op list -> violation list
(** The two weak-set axioms (§5):
    - every [get] returns every value whose [add] completed before the
      [get] was invoked;
    - no [get] returns a value whose [add] had not been invoked before the
      [get] completed.

    When [correct] is given, the first (liveness-flavoured) axiom is only
    enforced for [get]s by correct clients: Alg. 4's guarantee rides on
    the source reaching every {e correct} process (Lemma 8), so a process
    that later crashes may see a stale subset. The second axiom is safety
    and is enforced for everybody. *)
