(** Unsynchronized-round execution of GIRAF algorithms.

    The lockstep [Runner] advances every process's end-of-round together;
    this runner implements Alg. 1's full generality: each process fires
    its end-of-rounds at its own adversary-chosen pace, and — crucially —
    a broadcast carries the {e whole round message set} [⟨M_i[k], k⟩]
    (Alg. 1 line 12), so processes relay each other's messages. A receiver
    can thereby obtain a sender's round-[k] message through a third party
    (footnote 2 of the paper): timeliness is judged on message {e content}
    present in the receiver's round-[k] set when it computes round [k],
    not on direct links.

    Time is measured in global ticks; paces and delays are tick-valued
    functions supplied by the adversary. *)

type pace_fn = pid:int -> round:int -> Anon_kernel.Rng.t -> int
(** Ticks between a process's consecutive end-of-rounds (clamped to
    [>= 1]). *)

type delay_fn =
  sender:int -> receiver:int -> round:int -> Anon_kernel.Rng.t -> int
(** Broadcast latency in ticks (clamped to [>= 1]). *)

val uniform_pace : max:int -> pace_fn
val fixed_pace : int -> pace_fn
val uniform_delay : max:int -> delay_fn
val fixed_delay : int -> delay_fn

type config = {
  inputs : Anon_kernel.Value.t list;
  crash : Crash.t;  (** Rounds refer to the process's own round counter. *)
  horizon_ticks : int;
  max_rounds : int;  (** Per-process round cap. *)
  seed : int;
  pace : pace_fn;
  delay : delay_fn;
  stop_on_decision : bool;
}

val default_config :
  ?horizon_ticks:int -> ?max_rounds:int -> ?seed:int -> ?pace:pace_fn ->
  ?delay:delay_fn -> ?stop_on_decision:bool ->
  inputs:Anon_kernel.Value.t list -> crash:Crash.t -> unit -> config
(** @raise Config_error.Invalid_config on empty [inputs],
    [horizon_ticks < 1], [max_rounds < 1], or an inputs/crash size
    mismatch. [run] re-validates directly constructed configs. *)

type outcome = {
  trace : Trace.t;
      (** Round-indexed trace with content-based timeliness (relayed
          copies count); [env = Ms] is claimed only by [run_ms]. *)
  decisions : (int * int * Anon_kernel.Value.t) list;
  all_correct_decided : bool;
  ticks : int;
  rounds_completed : int array;
}

module Make (A : Intf.ALGORITHM) : sig
  val run : ?env:Env.t -> ?recorder:Anon_obs.Recorder.t -> config -> outcome
  (** Simulate; [env] (default [Async]) is recorded in the trace for the
      checker — this runner's pace/delay adversaries make no environment
      promise by themselves, so check against the guarantee your functions
      actually provide.

      [recorder] (default {!Anon_obs.Recorder.off}) receives the
      broadcast/decide/crash event stream and [skew.*] / [phase.*] /
      [kernel.*] metrics; see DESIGN.md §7. *)
end
