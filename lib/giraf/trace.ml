open Anon_kernel

type round_info = {
  round : int;
  senders : int list;
  crashing : int list;
  source : int option;
  timely : (int * int list) list;
  obligated : int list;
  decided : (int * Value.t) list;
  msg_sizes : (int * int) list;
}

type t = {
  n : int;
  inputs : Value.t array;
  crash : Crash.t;
  churn : Churn.t;
  env : Env.t;
  rounds : round_info list;
}

let timely_to info sender =
  match List.assoc_opt sender info.timely with None -> [] | Some rs -> rs

let decisions t =
  List.concat_map
    (fun info -> List.map (fun (pid, v) -> (pid, info.round, v)) info.decided)
    t.rounds

let last_round t =
  match List.rev t.rounds with [] -> 0 | info :: _ -> info.round

let pp_pids ppf pids =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    pids

let pp_round ppf info =
  Format.fprintf ppf "@[<h>r%-3d src=%s senders=%a"
    info.round
    (match info.source with None -> "-" | Some s -> "p" ^ string_of_int s)
    pp_pids info.senders;
  if info.crashing <> [] then Format.fprintf ppf " crash=%a" pp_pids info.crashing;
  if info.decided <> [] then
    Format.fprintf ppf " decided=[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
         (fun ppf (p, v) -> Format.fprintf ppf "p%d:%a" p Value.pp v))
      info.decided;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>trace n=%d env=%a crash=%a" t.n Env.pp t.env
    Crash.pp t.crash;
  if Churn.events t.churn <> [] then Format.fprintf ppf " churn=%a" Churn.pp t.churn;
  Format.fprintf ppf "@,%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_round)
    t.rounds
