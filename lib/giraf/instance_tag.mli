(** Instance-tagged message bundles — the multiplexing seam for multi-shot
    consensus.

    A replicated-state-machine layer (see [Anon_rsm]) runs a window of
    concurrent consensus instances over one algorithm. Each instance is a
    complete one-shot execution with its own rounds, but physically every
    process broadcasts {e once} per global round: a {e bundle} of
    [(instance, msg)] pairs, one entry per in-flight instance the process
    is still participating in. The receiver demultiplexes by instance id
    and feeds each entry to that instance's automaton.

    The bundle never reaches the anonymous algorithms — instance ids are
    service-level sequence numbers shared by agreement itself (the log
    position), not process identities, so anonymity is preserved: two
    processes sending equal bundles remain indistinguishable, exactly as
    for single messages ({!Intf.ALGORITHM.msg_compare} lifted entrywise).

    Today the lockstep multiplexer uses bundles only for physical-broadcast
    accounting (how many wire messages a window of W instances costs); a
    future async backend serializes exactly this type on the transport. *)

module Make (A : Intf.ALGORITHM) : sig
  type bundle = (int * A.msg) list
  (** Per-sender payload of one global round: strictly ascending instance
      ids, each with the message that instance's automaton broadcast. *)

  val compare : bundle -> bundle -> int
  (** Lexicographic over [(instance, msg)] entries with
      {!Intf.ALGORITHM.msg_compare} on payloads — bundles equal under
      [compare] are the same wire message (anonymity lifts). *)

  val size : bundle -> int
  (** Abstract wire size: [Σ (1 + A.msg_size msg)] — one unit of framing
      (the instance tag) per entry plus the payload sizes. *)

  val of_rounds : (int * A.msg Dispatch.outbound list) list -> bundle Dispatch.outbound list
  (** [of_rounds per_instance] merges the per-instance broadcast lists of
      one global round — [(instance, outbound list)] pairs in ascending
      instance order — into one bundle per distinct sender, ascending by
      sender pid. A sender appearing in no instance sends nothing. *)

  val split : instance:int -> bundle -> A.msg option
  (** The entry for [instance], if the bundle carries one. *)

  val pp : Format.formatter -> bundle -> unit
end
