type ring = {
  slots : Event.t option array;
  mutable next : int;  (* write cursor *)
  mutable stored : int;  (* <= capacity *)
  mutable overwritten : int;
}

type stream = { oc : out_channel; mutable unflushed : int; mutable closed : bool }

(* Every open JSONL stream is registered here so that an abnormal exit
   (uncaught exception, [exit] from a CLI error path, a live run cut
   short) still flushes complete buffered lines to disk: events are
   written line-atomically, so a flush at any instant leaves a valid
   JSONL prefix — never a truncated, unparseable trace file. [close]
   (and the caller closing the channel after an explicit flush)
   unregisters; the hook tolerates channels closed behind its back. *)
let open_streams : stream list ref = ref []
let at_exit_installed = ref false

let flush_open_streams () =
  List.iter
    (fun s ->
      if not s.closed then try Stdlib.flush s.oc with Sys_error _ -> ())
    !open_streams

let register_stream s =
  if not !at_exit_installed then begin
    at_exit_installed := true;
    Stdlib.at_exit flush_open_streams
  end;
  open_streams := s :: !open_streams

let unregister_stream s =
  open_streams := List.filter (fun s' -> s' != s) !open_streams

type t =
  | Null
  | Memory of ring
  | Jsonl of stream
  | Handler of (Event.t -> unit)
  | Tee of t list

let null = Null

let memory ~capacity =
  if capacity <= 0 then invalid_arg "Sink.memory: capacity must be positive";
  Memory { slots = Array.make capacity None; next = 0; stored = 0; overwritten = 0 }

let jsonl oc =
  let s = { oc; unflushed = 0; closed = false } in
  register_stream s;
  Jsonl s
let handler f = Handler f
let tee ts = Tee ts

let rec is_null = function
  | Null -> true
  | Memory _ | Jsonl _ | Handler _ -> false
  | Tee ts -> List.for_all is_null ts

let rec emit t ev =
  match t with
  | Null -> ()
  | Memory r ->
    let cap = Array.length r.slots in
    if r.stored = cap then r.overwritten <- r.overwritten + 1
    else r.stored <- r.stored + 1;
    r.slots.(r.next) <- Some ev;
    r.next <- (r.next + 1) mod cap
  | Jsonl s ->
    output_string s.oc (Json.to_string (Event.to_json ev));
    output_char s.oc '\n';
    s.unflushed <- s.unflushed + 1;
    if s.unflushed >= 256 then begin
      flush_channel s;
      s.unflushed <- 0
    end
  | Handler f -> f ev
  | Tee ts -> List.iter (fun t -> emit t ev) ts

and flush_channel s = Stdlib.flush s.oc

let rec events = function
  | Null | Jsonl _ | Handler _ -> []
  | Memory r ->
    let cap = Array.length r.slots in
    let start = (r.next - r.stored + cap) mod cap in
    List.init r.stored (fun i ->
        match r.slots.((start + i) mod cap) with
        | Some ev -> ev
        | None -> assert false)
  | Tee ts -> List.concat_map events ts

let rec dropped = function
  | Null | Jsonl _ | Handler _ -> 0
  | Memory r -> r.overwritten
  | Tee ts -> List.fold_left (fun acc t -> acc + dropped t) 0 ts

let rec flush = function
  | Null | Memory _ | Handler _ -> ()
  | Jsonl s -> if not s.closed then flush_channel s
  | Tee ts -> List.iter flush ts

let rec close = function
  | Null | Memory _ | Handler _ -> ()
  | Jsonl s ->
    if not s.closed then begin
      s.closed <- true;
      unregister_stream s;
      (try flush_channel s with Sys_error _ -> ());
      try close_out s.oc with Sys_error _ -> ()
    end
  | Tee ts -> List.iter close ts
