(* Fixed-bucket log-scale histogram (HDR-style).

   Storage is one int array whose length never depends on the number of
   observations, so million-sample fuzz/batch runs stay bounded-memory.
   Buckets are geometric: [sub] sub-buckets per power-of-two octave,
   which bounds the relative quantization error of any reconstructed
   sample at 2^(1/sub) - 1 (~4.4% with sub = 16). Exact integer counts
   plus exact float min/max make {!merge} associative and commutative in
   the strict, byte-identical sense — there is no float accumulation
   whose grouping could matter. Moments (mean/stddev) and percentiles
   are reconstructed from bucket representatives at read time. *)

let sub = 16

(* frexp exponents covered by the log buckets: a positive value
   [v = m * 2^e] with [m] in [0.5, 1) is bucketed when
   [min_exp <= e < max_exp], i.e. v in [2^-21, 2^43) — generous for
   microsecond timings, message sizes and queue depths alike. Smaller
   positives clamp into the first log bucket; larger ones land in the
   overflow bucket. *)
let min_exp = -20
let max_exp = 44
let log_buckets = (max_exp - min_exp) * sub

(* bucket 0: v <= 0 (and non-finite); buckets 1..log_buckets: geometric;
   bucket [log_buckets + 1]: overflow. *)
let bucket_count = log_buckets + 2

type t = {
  counts : int array;
  mutable n : int;
  mutable min_v : float;  (* exact; +inf when empty *)
  mutable max_v : float;  (* exact; -inf when empty *)
}

let create () =
  { counts = Array.make bucket_count 0; n = 0; min_v = infinity; max_v = neg_infinity }

let clear t =
  Array.fill t.counts 0 bucket_count 0;
  t.n <- 0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let copy t = { t with counts = Array.copy t.counts }

(* mantissa_bounds.(s) = 0.5 * 2^(s/sub): the lower mantissa bound of
   sub-bucket [s]. Comparisons against these precomputed constants are
   exact, so bucketing is deterministic across runs and platforms. *)
let mantissa_bounds =
  Array.init sub (fun s -> 0.5 *. Float.pow 2.0 (float_of_int s /. float_of_int sub))

let sub_index m =
  (* largest s with mantissa_bounds.(s) <= m; m in [0.5, 1) so s exists. *)
  let rec go lo hi =
    (* invariant: bounds.(lo) <= m < bounds.(hi) (hi = sub means 1.0) *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if m >= mantissa_bounds.(mid) then go mid hi else go lo mid
  in
  go 0 sub

let index_of v =
  if not (v > 0.0) || not (Float.is_finite v) then 0
  else
    let m, e = Float.frexp v in
    if e < min_exp then 1
    else if e >= max_exp then bucket_count - 1
    else 1 + (((e - min_exp) * sub) + sub_index m)

(* Geometric midpoint of log bucket [i] (1-based within the log range):
   lower bound * 2^(1/(2*sub)). *)
let representative =
  let half_step = Float.pow 2.0 (1.0 /. float_of_int (2 * sub)) in
  fun i ->
    if i = 0 then 0.0
    else if i = bucket_count - 1 then Float.ldexp 1.0 max_exp
    else
      let p = i - 1 in
      let e = min_exp + (p / sub) and s = p mod sub in
      Float.ldexp mantissa_bounds.(s) e *. half_step

let observe t v =
  t.counts.(index_of v) <- t.counts.(index_of v) + 1;
  t.n <- t.n + 1;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let is_empty t = t.n = 0
let min_value t = t.min_v
let max_value t = t.max_v

let clamp t x = Float.min t.max_v (Float.max t.min_v x)

let mean t =
  if t.n = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to bucket_count - 1 do
      if t.counts.(i) > 0 then
        sum := !sum +. (float_of_int t.counts.(i) *. representative i)
    done;
    clamp t (!sum /. float_of_int t.n)
  end

let stddev t =
  if t.n <= 1 then 0.0
  else begin
    let mu = mean t in
    let acc = ref 0.0 in
    for i = 0 to bucket_count - 1 do
      if t.counts.(i) > 0 then begin
        let d = representative i -. mu in
        acc := !acc +. (float_of_int t.counts.(i) *. d *. d)
      end
    done;
    sqrt (Float.max 0.0 (!acc /. float_of_int t.n))
  end

let percentile t p =
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg "Hist.percentile: p must be in [0,100]";
  if t.n = 0 then invalid_arg "Hist.percentile: empty histogram";
  (* nearest-rank, matching Anon_kernel.Stats.percentile *)
  let rank =
    Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.n)))
  in
  let rec walk i seen =
    if i >= bucket_count then t.max_v
    else
      let seen = seen + t.counts.(i) in
      if seen >= rank then
        if i = 0 then t.min_v
        else if i = bucket_count - 1 then t.max_v
        else clamp t (representative i)
      else walk (i + 1) seen
  in
  walk 0 0

(* Element-wise integer adds plus float min/max: exactly associative and
   commutative, so any merge tree over the same multiset of snapshots is
   byte-identical. *)
let merge ts =
  let r = create () in
  List.iter
    (fun t ->
      for i = 0 to bucket_count - 1 do
        r.counts.(i) <- r.counts.(i) + t.counts.(i)
      done;
      r.n <- r.n + t.n;
      if t.min_v < r.min_v then r.min_v <- t.min_v;
      if t.max_v > r.max_v then r.max_v <- t.max_v)
    ts;
  r

let equal a b = a.n = b.n && a.min_v = b.min_v && a.max_v = b.max_v && a.counts = b.counts

let summary t : Anon_kernel.Stats.summary option =
  if t.n = 0 then None
  else
    Some
      {
        count = t.n;
        mean = mean t;
        stddev = stddev t;
        min = t.min_v;
        p50 = percentile t 50.0;
        p95 = percentile t 95.0;
        max = t.max_v;
      }
