(** Minimal JSON values for the observability layer.

    The container ships no JSON library, so the event sink and metric
    exporters carry their own codec: a small value type, a canonical
    single-line printer (what the JSONL sink writes), and a parser used by
    tests and tooling to read the stream back. Only what JSONL export needs
    is supported — no trailing commas, no comments, numbers are OCaml
    [int]/[float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Canonical one-line rendering (no newlines, minimal whitespace), with
    full string escaping — safe to embed as one JSONL record. *)

val of_string : string -> (t, string) result
(** Parse one JSON document. [Error msg] carries the byte offset of the
    failure. Accepts exactly the subset [to_string] emits plus arbitrary
    inter-token whitespace and [\u....] escapes, which are decoded to
    UTF-8 bytes (surrogate pairs combine into one astral code point;
    lone surrogates are rejected). *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int n] (or an integral [Float]) as [n]. *)

val to_bool : t -> bool option
val to_str : t -> string option

val equal : t -> t -> bool
(** Structural equality; [Obj] field order is significant (canonical
    printers keep it stable). *)

val pp : Format.formatter -> t -> unit
