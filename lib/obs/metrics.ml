type counter = No_counter | Counter of { mutable c : int }
type gauge = No_gauge | Gauge of { mutable g : float; mutable set : bool }
type histogram = No_histogram | Histogram of Hist.t

type t = {
  enabled : bool;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    enabled = true;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 16;
  }

let disabled =
  {
    enabled = false;
    counters = Hashtbl.create 1;
    gauges = Hashtbl.create 1;
    histograms = Hashtbl.create 1;
  }

let is_enabled t = t.enabled

let find_or_add tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some h -> h
  | None ->
    let h = make () in
    Hashtbl.add tbl name h;
    h

let counter t name =
  if not t.enabled then No_counter
  else find_or_add t.counters name (fun () -> Counter { c = 0 })

let incr ?(by = 1) = function No_counter -> () | Counter r -> r.c <- r.c + by
let counter_value = function No_counter -> 0 | Counter r -> r.c

let gauge t name =
  if not t.enabled then No_gauge
  else find_or_add t.gauges name (fun () -> Gauge { g = 0.0; set = false })

let set_gauge g x =
  match g with
  | No_gauge -> ()
  | Gauge r ->
    r.g <- x;
    r.set <- true

let histogram t name =
  if not t.enabled then No_histogram
  else find_or_add t.histograms name (fun () -> Histogram (Hist.create ()))

let observe h x = match h with No_histogram -> () | Histogram s -> Hist.observe s x

let time h f =
  match h with
  | No_histogram -> f ()
  | Histogram s ->
    let t0 = Clock.now_ns () in
    let result = f () in
    Hist.observe s (Clock.ns_to_us (Clock.since_ns t0));
    result

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Hist.t) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun name h acc -> (name, f h) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot (t : t) =
  {
    counters = sorted_bindings t.counters counter_value;
    gauges =
      (Hashtbl.fold
         (fun name g acc ->
           match g with
           | Gauge r when r.set -> (name, r.g) :: acc
           | Gauge _ | No_gauge -> acc)
         t.gauges []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b));
    histograms =
      sorted_bindings t.histograms (function
        | No_histogram -> Hist.create ()
        | Histogram s -> Hist.copy s);
  }

let reset (t : t) =
  Hashtbl.iter (fun _ -> function No_counter -> () | Counter r -> r.c <- 0) t.counters;
  Hashtbl.iter
    (fun _ -> function
      | No_gauge -> ()
      | Gauge r ->
        r.g <- 0.0;
        r.set <- false)
    t.gauges;
  Hashtbl.iter
    (fun _ -> function No_histogram -> () | Histogram s -> Hist.clear s)
    t.histograms

(* Merge sorted association lists, combining values under equal keys. *)
let merge_assoc combine lists =
  let tbl = Hashtbl.create 32 in
  List.iter
    (List.iter (fun (k, v) ->
         Hashtbl.replace tbl k
           (match Hashtbl.find_opt tbl k with
           | None -> [ v ]
           | Some vs -> v :: vs)))
    lists;
  Hashtbl.fold (fun k vs acc -> (k, combine (List.rev vs)) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge snapshots =
  {
    counters =
      merge_assoc
        (List.fold_left ( + ) 0)
        (List.map (fun s -> s.counters) snapshots);
    gauges =
      merge_assoc Anon_kernel.Stats.mean (List.map (fun s -> s.gauges) snapshots);
    histograms = merge_assoc Hist.merge (List.map (fun s -> s.histograms) snapshots);
  }

let summaries s =
  List.filter_map
    (fun (name, h) -> Option.map (fun sm -> (name, sm)) (Hist.summary h))
    s.histograms

let width rows =
  List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 rows

let render ppf s =
  let w =
    List.fold_left max 0 [ width s.counters; width s.gauges; width s.histograms ]
  in
  let pad name = name ^ String.make (w - String.length name) ' ' in
  List.iter
    (fun (name, c) -> Format.fprintf ppf "  %s %12d@." (pad name) c)
    s.counters;
  List.iter
    (fun (name, g) -> Format.fprintf ppf "  %s %12.2f@." (pad name) g)
    s.gauges;
  List.iter
    (fun (name, summary) ->
      Format.fprintf ppf "  %s %a@." (pad name)
        Anon_kernel.Stats.pp_summary summary)
    (summaries s)

let summary_to_json (s : Anon_kernel.Stats.summary) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean", Json.Float s.mean);
      ("stddev", Json.Float s.stddev);
      ("min", Json.Float s.min);
      ("p50", Json.Float s.p50);
      ("p95", Json.Float s.p95);
      ("max", Json.Float s.max);
    ]

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (k, v) -> (k, summary_to_json v)) (summaries s)) );
    ]
