type t =
  | Run_start of { algo : string; n : int; seed : int }
  | Run_end of { rounds : int; decided : bool }
  | Round_start of { round : int }
  | Round_end of { round : int; senders : int; delivered : int; timely : int }
  | Broadcast of { pid : int; round : int; size : int }
  | Deliver of { sender : int; receiver : int; round : int; arrival : int }
  | Decide of { pid : int; round : int; value : int }
  | Commit of { instance : int; round : int; value : int }
  | Crash of { pid : int; round : int }
  | Churn of { pid : int; round : int; rejoin : bool }
  | Leader of { pid : int; round : int; leader : bool }
  | Ws_add of { pid : int; round : int; value : int }
  | Ws_add_done of { pid : int; round : int; value : int }
  | Ws_get of { pid : int; round : int; size : int }
  | Shm_step of { step : int; pid : int }
  | Shm_done of { pid : int; op_index : int; invoked : int; completed : int }
  | Fault of { kind : string; round : int; sender : int; receiver : int }

let to_json ev =
  let obj tag fields = Json.Obj (("ev", Json.String tag) :: fields) in
  let int k v = (k, Json.Int v) in
  match ev with
  | Run_start { algo; n; seed } ->
    obj "run_start" [ ("algo", Json.String algo); int "n" n; int "seed" seed ]
  | Run_end { rounds; decided } ->
    obj "run_end" [ int "rounds" rounds; ("decided", Json.Bool decided) ]
  | Round_start { round } -> obj "round_start" [ int "round" round ]
  | Round_end { round; senders; delivered; timely } ->
    obj "round_end"
      [ int "round" round; int "senders" senders; int "delivered" delivered;
        int "timely" timely ]
  | Broadcast { pid; round; size } ->
    obj "broadcast" [ int "pid" pid; int "round" round; int "size" size ]
  | Deliver { sender; receiver; round; arrival } ->
    obj "deliver"
      [ int "sender" sender; int "receiver" receiver; int "round" round;
        int "arrival" arrival ]
  | Decide { pid; round; value } ->
    obj "decide" [ int "pid" pid; int "round" round; int "value" value ]
  | Commit { instance; round; value } ->
    obj "commit" [ int "instance" instance; int "round" round; int "value" value ]
  | Crash { pid; round } -> obj "crash" [ int "pid" pid; int "round" round ]
  | Churn { pid; round; rejoin } ->
    obj "churn" [ int "pid" pid; int "round" round; ("rejoin", Json.Bool rejoin) ]
  | Leader { pid; round; leader } ->
    obj "leader" [ int "pid" pid; int "round" round; ("leader", Json.Bool leader) ]
  | Ws_add { pid; round; value } ->
    obj "ws_add" [ int "pid" pid; int "round" round; int "value" value ]
  | Ws_add_done { pid; round; value } ->
    obj "ws_add_done" [ int "pid" pid; int "round" round; int "value" value ]
  | Ws_get { pid; round; size } ->
    obj "ws_get" [ int "pid" pid; int "round" round; int "size" size ]
  | Shm_step { step; pid } -> obj "shm_step" [ int "step" step; int "pid" pid ]
  | Shm_done { pid; op_index; invoked; completed } ->
    obj "shm_done"
      [ int "pid" pid; int "op_index" op_index; int "invoked" invoked;
        int "completed" completed ]
  | Fault { kind; round; sender; receiver } ->
    obj "fault"
      [ ("kind", Json.String kind); int "round" round; int "sender" sender;
        int "receiver" receiver ]

let of_json j =
  let ( let* ) o f = match o with Some x -> f x | None -> Error "missing field" in
  let int k = Json.member k j |> Option.map Json.to_int |> Option.join in
  let bool k = Json.member k j |> Option.map Json.to_bool |> Option.join in
  let str k = Json.member k j |> Option.map Json.to_str |> Option.join in
  match str "ev" with
  | None -> Error "missing \"ev\" tag"
  | Some tag -> (
    match tag with
    | "run_start" ->
      let* algo = str "algo" in
      let* n = int "n" in
      let* seed = int "seed" in
      Ok (Run_start { algo; n; seed })
    | "run_end" ->
      let* rounds = int "rounds" in
      let* decided = bool "decided" in
      Ok (Run_end { rounds; decided })
    | "round_start" ->
      let* round = int "round" in
      Ok (Round_start { round })
    | "round_end" ->
      let* round = int "round" in
      let* senders = int "senders" in
      let* delivered = int "delivered" in
      let* timely = int "timely" in
      Ok (Round_end { round; senders; delivered; timely })
    | "broadcast" ->
      let* pid = int "pid" in
      let* round = int "round" in
      let* size = int "size" in
      Ok (Broadcast { pid; round; size })
    | "deliver" ->
      let* sender = int "sender" in
      let* receiver = int "receiver" in
      let* round = int "round" in
      let* arrival = int "arrival" in
      Ok (Deliver { sender; receiver; round; arrival })
    | "decide" ->
      let* pid = int "pid" in
      let* round = int "round" in
      let* value = int "value" in
      Ok (Decide { pid; round; value })
    | "commit" ->
      let* instance = int "instance" in
      let* round = int "round" in
      let* value = int "value" in
      Ok (Commit { instance; round; value })
    | "crash" ->
      let* pid = int "pid" in
      let* round = int "round" in
      Ok (Crash { pid; round })
    | "churn" ->
      let* pid = int "pid" in
      let* round = int "round" in
      let* rejoin = bool "rejoin" in
      Ok (Churn { pid; round; rejoin })
    | "leader" ->
      let* pid = int "pid" in
      let* round = int "round" in
      let* leader = bool "leader" in
      Ok (Leader { pid; round; leader })
    | "ws_add" ->
      let* pid = int "pid" in
      let* round = int "round" in
      let* value = int "value" in
      Ok (Ws_add { pid; round; value })
    | "ws_add_done" ->
      let* pid = int "pid" in
      let* round = int "round" in
      let* value = int "value" in
      Ok (Ws_add_done { pid; round; value })
    | "ws_get" ->
      let* pid = int "pid" in
      let* round = int "round" in
      let* size = int "size" in
      Ok (Ws_get { pid; round; size })
    | "shm_step" ->
      let* step = int "step" in
      let* pid = int "pid" in
      Ok (Shm_step { step; pid })
    | "shm_done" ->
      let* pid = int "pid" in
      let* op_index = int "op_index" in
      let* invoked = int "invoked" in
      let* completed = int "completed" in
      Ok (Shm_done { pid; op_index; invoked; completed })
    | "fault" ->
      let* kind = str "kind" in
      let* round = int "round" in
      let* sender = int "sender" in
      let* receiver = int "receiver" in
      Ok (Fault { kind; round; sender; receiver })
    | tag -> Error ("unknown event tag: " ^ tag))

let equal a b = a = b
let pp ppf ev = Json.pp ppf (to_json ev)
