open Anon_kernel

type t = {
  metrics : Metrics.t;
  sink : Sink.t;
  events_live : bool;  (* cached [not (Sink.is_null sink)] *)
  mutable drops_seen : int;  (* sink drops already surfaced as a counter *)
}

let off =
  { metrics = Metrics.disabled; sink = Sink.null; events_live = false; drops_seen = 0 }

let create ?metrics ?(sink = Sink.null) () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  { metrics; sink; events_live = not (Sink.is_null sink); drops_seen = 0 }

let active t = t.events_live || Metrics.is_enabled t.metrics
let metrics t = t.metrics
let sink t = t.sink
let emit t mk = if t.events_live then Sink.emit t.sink (mk ())

let surface_drops t =
  if t.events_live && Metrics.is_enabled t.metrics then begin
    let now = Sink.dropped t.sink in
    if now > t.drops_seen then begin
      Metrics.incr ~by:(now - t.drops_seen)
        (Metrics.counter t.metrics "obs.events_dropped");
      t.drops_seen <- now
    end
  end

let flush t =
  surface_drops t;
  Sink.flush t.sink

let counter t name = Metrics.counter t.metrics name
let histogram t name = Metrics.histogram t.metrics name
let gauge t name = Metrics.gauge t.metrics name

type kernel_baseline = {
  intern_hits : int;
  intern_misses : int;
  min_merges : int;
  prefix_bumps : int;
}

let kernel_baseline () =
  {
    intern_hits = History.intern_hits ();
    intern_misses = History.intern_misses ();
    min_merges = Counter_table.min_merge_ops ();
    prefix_bumps = Counter_table.prefix_bump_ops ();
  }

let record_kernel t b =
  if Metrics.is_enabled t.metrics then begin
    let record name now was =
      Metrics.incr ~by:(now - was) (counter t name)
    in
    record "kernel.history.intern_hits" (History.intern_hits ()) b.intern_hits;
    record "kernel.history.intern_misses" (History.intern_misses ()) b.intern_misses;
    record "kernel.counter_table.min_merges"
      (Counter_table.min_merge_ops ())
      b.min_merges;
    record "kernel.counter_table.prefix_bumps"
      (Counter_table.prefix_bump_ops ())
      b.prefix_bumps
  end
