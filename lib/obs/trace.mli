(** Causal trace collector: Chrome trace-event export of a run.

    A tracer accumulates the {!Event.t} stream of a single run (feed it
    through the {!Recorder} seam via {!sink}) and renders it as a Chrome
    trace-event JSON document that Perfetto ([ui.perfetto.dev]) or
    [chrome://tracing] can open: per-process round spans, message
    send→deliver flow arrows, decide/crash instants, plus a global round
    timeline carrying the per-round senders/delivered/timely counts.

    Timestamps are {e logical}: round [k] owns ticks
    [[(k-1)*1000, k*1000)] and each event kind sits at a fixed offset in
    its round, so a fixed-seed run exports a byte-identical trace every
    time (DESIGN.md §11). *)

type t

val create : unit -> t

val feed : t -> Event.t -> unit
(** Append one event (O(1)). *)

val sink : t -> Sink.t
(** A {!Sink.handler} feeding this tracer — tee it with other sinks and
    pass the result to [Recorder.create]. *)

val events : t -> Event.t list
(** Everything fed so far, oldest first. *)

val to_json : t -> Json.t
(** Render the Chrome trace-event document
    [{"traceEvents": [...], ...}]. Pure: does not consume the tracer. *)

val write : path:string -> t -> unit
(** [to_json] serialized to [path] (plus a trailing newline). *)
