(** Metrics registry: named counters, gauges, and histograms.

    Handles are obtained once (hashtable lookup) and then updated on hot
    paths with a single mutation; handles from a disabled registry are a
    shared no-op constructor, so instrumented code pays one branch when
    observability is off. Registries are single-run scoped: the harness
    snapshots one registry per run and {!merge}s the snapshots for batch
    aggregation.

    Naming convention (see DESIGN.md §7): dot-separated subsystem paths,
    with a unit suffix on histograms — e.g. [runner.broadcasts],
    [kernel.history.intern_hits], [phase.compute_us]. *)

type t
(** A registry. *)

val create : unit -> t
(** A fresh, enabled registry. *)

val disabled : t
(** The shared disabled registry: every handle it returns is a no-op and
    [snapshot] is empty. *)

val is_enabled : t -> bool

(* --- instruments ---------------------------------------------------------- *)

type counter

val counter : t -> string -> counter
(** Find-or-create. Two calls with the same name return the same
    underlying cell. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> float -> unit
(** Record one sample into a fixed-size log-scale bucket array (O(1),
    bounded memory — see {!Hist}). *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f] and observes its monotonic duration in
    {e microseconds}. When [h] is a no-op handle, [f] is called with no
    clock reads. *)

(* --- snapshots ------------------------------------------------------------ *)

type snapshot = {
  counters : (string * int) list;  (** Sorted by name. *)
  gauges : (string * float) list;  (** Sorted by name. *)
  histograms : (string * Hist.t) list;
      (** Independent histogram copies, sorted by name. *)
}

val snapshot : t -> snapshot

val reset : t -> unit
(** Zero every counter, clear every gauge and histogram; handles stay
    valid. *)

val merge : snapshot list -> snapshot
(** Batch aggregation: counters sum, gauges average (a merged gauge is the
    mean of the runs that set it), histograms merge bucket-wise
    ({!Hist.merge} — associative, commutative, byte-deterministic at any
    [--jobs]). *)

val summaries : snapshot -> (string * Anon_kernel.Stats.summary) list
(** One {!Anon_kernel.Stats} summary per non-empty histogram. *)

val render : Format.formatter -> snapshot -> unit
(** Human-readable table: counters, gauges, then histogram summaries. *)

val to_json : snapshot -> Json.t
(** [{"counters":{..},"gauges":{..},"histograms":{name:{count,mean,...}}}] *)
