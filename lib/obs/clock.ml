let now_ns () = Monotonic_clock.now ()
let since_ns t0 = Int64.sub (now_ns ()) t0
let ns_to_us ns = Int64.to_float ns /. 1e3
let ns_to_ms ns = Int64.to_float ns /. 1e6
let ns_to_s ns = Int64.to_float ns /. 1e9
