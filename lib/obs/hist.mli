(** Fixed-bucket log-scale histogram (HDR-style).

    A histogram is a fixed array of {!bucket_count} integer bucket counts
    plus exact count/min/max — O(buckets) memory however many samples are
    observed. Buckets are geometric with 16 sub-buckets per power-of-two
    octave, so reconstructed samples (percentiles, moments) carry at most
    ~4.4% relative quantization error; [count], [min_value] and
    [max_value] are exact.

    {!merge} is associative {e and} commutative in the byte-identical
    sense: it only adds integer counts and takes float min/max, so any
    grouping or ordering of the same snapshots produces structurally
    equal results. This is what lets {!Anon_exec.Pool} merge per-domain
    metric snapshots deterministically at any [--jobs].

    Values [<= 0] (and non-finite values) land in a dedicated zero
    bucket and contribute [0.0] to reconstructed moments; values beyond
    [2^43] land in an overflow bucket and are reported via the exact
    maximum. *)

type t

val bucket_count : int
(** Fixed storage size (in buckets) of every histogram. *)

val create : unit -> t
val clear : t -> unit

val copy : t -> t
(** Snapshot copy: further {!observe}s on the original leave it alone. *)

val observe : t -> float -> unit
(** O(log sub-buckets): one frexp, a 4-step binary search, one add. *)

val count : t -> int
val is_empty : t -> bool

val min_value : t -> float
(** Exact sample minimum; [+inf] when empty. *)

val max_value : t -> float
(** Exact sample maximum; [-inf] when empty. *)

val mean : t -> float
(** Bucket-reconstructed mean, clamped into [[min, max]]. [0.0] when
    empty. *)

val stddev : t -> float
(** Bucket-reconstructed standard deviation ([0.0] for [count <= 1]). *)

val percentile : t -> float -> float
(** Nearest-rank percentile over bucket representatives, clamped into
    [[min, max]].
    @raise Invalid_argument on an empty histogram or [p] outside
    [\[0,100\]]. *)

val merge : t list -> t
(** Associative, commutative, deterministic; the result is fresh. *)

val equal : t -> t -> bool

val summary : t -> Anon_kernel.Stats.summary option
(** [None] when empty; otherwise a {!Anon_kernel.Stats.summary} with
    exact count/min/max and bucket-reconstructed mean/stddev/p50/p95. *)
