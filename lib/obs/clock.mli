(** Monotonic time source for phase timers and benchmarks.

    Wall-clock time ([Unix.gettimeofday]) jumps under NTP adjustment and
    must never feed latency measurements; everything in the observability
    layer reads CLOCK_MONOTONIC through bechamel's no-alloc stub instead. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary (but fixed) origin; strictly
    non-decreasing within a process. *)

val since_ns : int64 -> int64
(** [since_ns t0] is [now_ns () - t0]. *)

val ns_to_us : int64 -> float
val ns_to_ms : int64 -> float
val ns_to_s : int64 -> float
