(* Causal trace collector: turns the flat {!Event.t} stream of a run into
   a Chrome trace-event JSON document (Perfetto / chrome://tracing).

   Time is logical, not wall-clock: round [k] occupies the tick interval
   [[(k-1)*1000, k*1000)] and every event is pinned at a fixed integer
   offset inside its round. Two runs at the same seed therefore produce
   byte-identical traces — the trace shows *where rounds go*, and wall
   clock stays the job of {!Metrics}.

   Track layout (one Chrome "process", pid 0):
   - tid 0              the global round timeline (Round_start/Round_end
                        spans, with senders/delivered/timely args)
   - tid p+1            simulated process [p]: one span per round it is
                        alive, plus broadcast/decide/crash/... instants
                        and message flow arrows.

   In-round offsets (ticks):
     +0    round span start        +500  message delivery (flow finish)
     +100  broadcast instant       +900  decide instant
                                   +920  rsm commit instant (rounds track)
     +120  leader instant          +950  crash instant
     +150  message send (flow)
     +160  fault instant (on the sender's track)
     +960  churn leave/rejoin instant
     +200/+800/+250 weak-set add / add-done / get instants *)

type t = { mutable rev_events : Event.t list }

let create () = { rev_events = [] }
let feed t ev = t.rev_events <- ev :: t.rev_events
let sink t = Sink.handler (feed t)
let events t = List.rev t.rev_events

(* --- logical clock -------------------------------------------------------- *)

let round_ticks = 1000
let tick k off = if k < 1 then off else ((k - 1) * round_ticks) + off

(* --- trace-event constructors ---------------------------------------------- *)

let str s = Json.String s
let int i = Json.Int i

let meta ~name ~tid ~value =
  Json.Obj
    [
      ("name", str name); ("ph", str "M"); ("pid", int 0); ("tid", int tid);
      ("args", Json.Obj [ ("name", str value) ]);
    ]

let span ~name ~cat ~tid ~ts ~dur ?(args = []) () =
  let base =
    [
      ("name", str name); ("cat", str cat); ("ph", str "X"); ("ts", int ts);
      ("dur", int dur); ("pid", int 0); ("tid", int tid);
    ]
  in
  Json.Obj (if args = [] then base else base @ [ ("args", Json.Obj args) ])

let instant ~name ~cat ~tid ~ts ?(args = []) () =
  let base =
    [
      ("name", str name); ("cat", str cat); ("ph", str "i"); ("ts", int ts);
      ("pid", int 0); ("tid", int tid); ("s", str "t");
    ]
  in
  Json.Obj (if args = [] then base else base @ [ ("args", Json.Obj args) ])

let flow ~phase ~id ~tid ~ts =
  let base =
    [
      ("name", str "msg"); ("cat", str "msg"); ("ph", str phase); ("id", int id);
      ("ts", int ts); ("pid", int 0); ("tid", int tid);
    ]
  in
  Json.Obj (if phase = "f" then base @ [ ("bp", str "e") ] else base)

(* --- export ---------------------------------------------------------------- *)

let to_json t =
  let evs = events t in
  (* Pass 1: run shape — population, horizon, per-process crash rounds. *)
  let algo = ref "" and n_opt = ref None and seed = ref 0 in
  let rounds_end = ref None and max_round = ref 0 and max_pid = ref (-1) in
  let crash_round : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let see_round k = if k > !max_round then max_round := k in
  let see_pid p = if p > !max_pid then max_pid := p in
  List.iter
    (fun ev ->
      match (ev : Event.t) with
      | Run_start { algo = a; n; seed = s } ->
        algo := a;
        n_opt := Some n;
        seed := s
      | Run_end { rounds; _ } -> rounds_end := Some rounds
      | Round_start { round } | Round_end { round; _ } | Commit { round; _ } ->
        see_round round
      | Broadcast { pid; round; _ }
      | Decide { pid; round; _ }
      | Churn { pid; round; _ }
      | Leader { pid; round; _ }
      | Ws_add { pid; round; _ }
      | Ws_add_done { pid; round; _ }
      | Ws_get { pid; round; _ } ->
        see_pid pid;
        see_round round
      | Deliver { sender; receiver; round; arrival } ->
        see_pid sender;
        see_pid receiver;
        see_round round;
        see_round arrival
      | Crash { pid; round } ->
        see_pid pid;
        see_round round;
        if not (Hashtbl.mem crash_round pid) then Hashtbl.add crash_round pid round
      | Fault { sender; receiver; round; _ } ->
        see_pid sender;
        see_pid receiver;
        see_round round
      | Shm_step { pid; _ } | Shm_done { pid; _ } -> see_pid pid)
    evs;
  let n = match !n_opt with Some n -> n | None -> !max_pid + 1 in
  let horizon =
    match !rounds_end with Some r -> max r !max_round | None -> !max_round
  in
  let out = ref [] in
  let push j = out := j :: !out in
  (* Track names. *)
  push
    (meta ~name:"process_name" ~tid:0
       ~value:
         (if !algo = "" then "anonc run"
          else Printf.sprintf "anonc run %s n=%d seed=%d" !algo n !seed));
  push (meta ~name:"thread_name" ~tid:0 ~value:"rounds");
  for p = 0 to n - 1 do
    push (meta ~name:"thread_name" ~tid:(p + 1) ~value:(Printf.sprintf "p%d" p))
  done;
  (* Per-process lifetime spans: one per round while alive. A process that
     crashes in round k keeps its round-k span (the crash instant sits
     inside it) and disappears afterwards. *)
  for p = 0 to n - 1 do
    let limit =
      match Hashtbl.find_opt crash_round p with
      | Some k -> min k horizon
      | None -> horizon
    in
    for k = 1 to limit do
      push
        (span
           ~name:(Printf.sprintf "round %d" k)
           ~cat:"round" ~tid:(p + 1) ~ts:(tick k 0) ~dur:round_ticks ())
    done
  done;
  (* Pass 2: the event stream itself, in emission order. *)
  let flow_id = ref 0 in
  List.iter
    (fun ev ->
      match (ev : Event.t) with
      | Run_start _ -> ()
      | Run_end { rounds; decided } ->
        push
          (instant ~name:"run_end" ~cat:"run" ~tid:0
             ~ts:(tick rounds round_ticks)
             ~args:[ ("rounds", int rounds); ("decided", Json.Bool decided) ]
             ())
      | Round_start _ -> ()
      | Round_end { round; senders; delivered; timely } ->
        push
          (span
             ~name:(Printf.sprintf "round %d" round)
             ~cat:"round" ~tid:0 ~ts:(tick round 0) ~dur:round_ticks
             ~args:
               [
                 ("senders", int senders); ("delivered", int delivered);
                 ("timely", int timely);
               ]
             ())
      | Broadcast { pid; round; size } ->
        push
          (instant ~name:"broadcast" ~cat:"net" ~tid:(pid + 1)
             ~ts:(tick round 100) ~args:[ ("size", int size) ] ())
      | Deliver { sender; receiver; round; arrival } ->
        incr flow_id;
        push (flow ~phase:"s" ~id:!flow_id ~tid:(sender + 1) ~ts:(tick round 150));
        push
          (flow ~phase:"f" ~id:!flow_id ~tid:(receiver + 1) ~ts:(tick arrival 500))
      | Decide { pid; round; value } ->
        push
          (instant ~name:"decide" ~cat:"consensus" ~tid:(pid + 1)
             ~ts:(tick round 900) ~args:[ ("value", int value) ] ())
      | Commit { instance; round; value } ->
        push
          (instant ~name:"commit" ~cat:"rsm" ~tid:0 ~ts:(tick round 920)
             ~args:[ ("instance", int instance); ("value", int value) ]
             ())
      | Crash { pid; round } ->
        push
          (instant ~name:"crash" ~cat:"fault" ~tid:(pid + 1) ~ts:(tick round 950)
             ())
      | Churn { pid; round; rejoin } ->
        push
          (instant
             ~name:(if rejoin then "churn:rejoin" else "churn:leave")
             ~cat:"churn" ~tid:(pid + 1) ~ts:(tick round 960) ())
      | Leader { pid; round; leader } ->
        push
          (instant ~name:"leader" ~cat:"consensus" ~tid:(pid + 1)
             ~ts:(tick round 120) ~args:[ ("leader", Json.Bool leader) ] ())
      | Ws_add { pid; round; value } ->
        push
          (instant ~name:"ws_add" ~cat:"service" ~tid:(pid + 1)
             ~ts:(tick round 200) ~args:[ ("value", int value) ] ())
      | Ws_add_done { pid; round; value } ->
        push
          (instant ~name:"ws_add_done" ~cat:"service" ~tid:(pid + 1)
             ~ts:(tick round 800) ~args:[ ("value", int value) ] ())
      | Ws_get { pid; round; size } ->
        push
          (instant ~name:"ws_get" ~cat:"service" ~tid:(pid + 1)
             ~ts:(tick round 250) ~args:[ ("size", int size) ] ())
      | Shm_step { step; pid } ->
        push
          (instant ~name:"shm_step" ~cat:"shm" ~tid:(pid + 1) ~ts:(step * 10) ())
      | Shm_done { pid; op_index; invoked; completed } ->
        push
          (instant ~name:"shm_done" ~cat:"shm" ~tid:(pid + 1)
             ~ts:((op_index * 10) + 5)
             ~args:[ ("invoked", int invoked); ("completed", int completed) ]
             ())
      | Fault { kind; round; sender; receiver } ->
        push
          (instant ~name:("fault:" ^ kind) ~cat:"fault" ~tid:(sender + 1)
             ~ts:(tick round 160)
             ~args:[ ("receiver", int receiver) ] ()))
    evs;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !out));
      ("displayTimeUnit", str "ms");
      ( "otherData",
        Json.Obj
          [ ("clockDomain", str "logical:1000-ticks-per-round") ] );
    ]

let write ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')
