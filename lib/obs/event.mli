(** Typed observability events.

    One constructor per observable fact in the simulators; every event
    round-trips through {!Json} so that a JSONL trace can be replayed or
    audited offline. All ids are simulator-side process ids — the events
    describe the {e execution}, never leak into the anonymous algorithms.

    Taxonomy (the ["ev"] tag of the JSON encoding):
    - lifecycle: [run_start], [run_end]
    - rounds: [round_start], [round_end]
    - messaging: [broadcast], [deliver]
    - protocol: [decide], [crash], [churn], [leader]
    - rsm layer: [commit]
    - weak-set service: [ws_add], [ws_add_done], [ws_get]
    - shared-memory scheduler: [shm_step], [shm_done]
    - chaos layer: [fault] *)

type t =
  | Run_start of { algo : string; n : int; seed : int }
  | Run_end of { rounds : int; decided : bool }
  | Round_start of { round : int }
  | Round_end of { round : int; senders : int; delivered : int; timely : int }
  | Broadcast of { pid : int; round : int; size : int }
  | Deliver of { sender : int; receiver : int; round : int; arrival : int }
      (** [round] is the sender round; timely iff [arrival = round]. *)
  | Decide of { pid : int; round : int; value : int }
  | Commit of { instance : int; round : int; value : int }
      (** The RSM layer commits instance [instance]'s decided value into
          the log at global round [round] (see [Anon_rsm]). [instance] is a
          log position, not a process id. *)
  | Crash of { pid : int; round : int }
  | Churn of { pid : int; round : int; rejoin : bool }
      (** A process leaves ([rejoin = false]) or rejoins with empty state
          ([rejoin = true]) at [round]. *)
  | Leader of { pid : int; round : int; leader : bool }
      (** Pseudo-leader flag {e transition} (Alg. 3 line 15): emitted only
          when a process's self-leader estimate changes. *)
  | Ws_add of { pid : int; round : int; value : int }
  | Ws_add_done of { pid : int; round : int; value : int }
  | Ws_get of { pid : int; round : int; size : int }
  | Shm_step of { step : int; pid : int }
  | Shm_done of { pid : int; op_index : int; invoked : int; completed : int }
  | Fault of { kind : string; round : int; sender : int; receiver : int }
      (** An injected fault from the chaos layer ([kind] names the
          injector, e.g. ["duplicate"], ["drop_obligated"]); [sender] /
          [receiver] are [-1] when the fault is not link-scoped. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
