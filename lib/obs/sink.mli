(** Pluggable event sinks.

    A sink consumes {!Event.t}s as a run executes. Three built-ins:
    [null] discards, [memory] keeps the last [capacity] events in a ring
    buffer (for tests and interactive inspection), and [jsonl] streams one
    JSON object per line to a channel (the machine-readable trace export).
    [tee] fans one stream out to several sinks. *)

type t

val null : t
(** Discards everything. [is_null null = true]; recorders skip event
    construction entirely for a null sink. *)

val memory : capacity:int -> t
(** Ring buffer of the most recent [capacity] events. Older events are
    overwritten; {!dropped} counts the overwrites. *)

val jsonl : out_channel -> t
(** Streams [Json.to_string (Event.to_json ev)] plus a newline per event.
    The channel is flushed by {!flush} (and on every 256th event), and —
    because events are written line-atomically — also by an [at_exit]
    hook, so an abnormal exit mid-run still leaves a valid JSONL prefix
    on disk rather than a truncated line. {!close} flushes, closes the
    channel and detaches the hook. *)

val handler : (Event.t -> unit) -> t
(** Calls the function on every event — the hook used to feed live
    consumers such as {!Trace.sink}. Never null, buffers nothing. *)

val tee : t list -> t

val is_null : t -> bool

val emit : t -> Event.t -> unit

val events : t -> Event.t list
(** Buffered events, oldest first. Memory sinks only; [[]] otherwise
    ([tee] concatenates its children's buffers). *)

val dropped : t -> int
(** Ring-buffer overwrites so far (0 for non-memory sinks). *)

val flush : t -> unit
(** Flushes buffered output of any JSONL sinks in [t] (no-op for the
    rest, and for already-closed streams). Safe at any instant: the file
    left behind is always whole lines. *)

val close : t -> unit
(** Flushes and closes the underlying channels of any JSONL sinks in [t]
    and unregisters them from the exit-time flush hook. Idempotent; no-op
    for non-stream sinks. *)
