(** The recorder: one handle threaded through a simulator run.

    Bundles a {!Metrics.t} registry and an event {!Sink.t}. [off] is the
    universal default — every runner takes [?recorder] and pays one branch
    per instrumentation point when it is off (events are constructed
    lazily, metric handles are no-ops).

    Kernel-level quantities (history interning, counter-table merge work)
    are process-global monotone counters; {!kernel_baseline} /
    {!record_kernel} turn them into per-run deltas. *)

type t

val off : t
(** Inert: no metrics, null sink. *)

val create : ?metrics:Metrics.t -> ?sink:Sink.t -> unit -> t
(** Defaults: a fresh enabled registry; a null sink. *)

val active : t -> bool
(** Whether any instrumentation is live (metrics enabled or sink non-null). *)

val metrics : t -> Metrics.t
val sink : t -> Sink.t

val emit : t -> (unit -> Event.t) -> unit
(** [emit r mk] sends [mk ()] to the sink. [mk] is not called when the
    sink is null — keep event construction inside the thunk. *)

val flush : t -> unit
(** Flushes the sink, first surfacing any new ring-buffer drops (see
    {!surface_drops}). *)

val surface_drops : t -> unit
(** Fold the sink's {!Sink.dropped} count into the metrics registry as
    the [obs.events_dropped] counter. Delta-based and idempotent: calling
    it twice without new drops adds nothing. Called automatically by
    {!flush}. *)

(* --- hot-path handle helpers ---------------------------------------------- *)

val counter : t -> string -> Metrics.counter
val histogram : t -> string -> Metrics.histogram
val gauge : t -> string -> Metrics.gauge

(* --- kernel probes --------------------------------------------------------- *)

type kernel_baseline

val kernel_baseline : unit -> kernel_baseline
(** Sample the kernel's global instrumentation counters (cheap: four int
    reads). *)

val record_kernel : t -> kernel_baseline -> unit
(** Record the deltas since [kernel_baseline] as counters
    [kernel.history.intern_hits], [kernel.history.intern_misses],
    [kernel.counter_table.min_merges], [kernel.counter_table.prefix_bumps]. *)
