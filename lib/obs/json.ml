type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing -------------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* nan/inf are not JSON; degrade to null rather than corrupt the line *)
    if Float.is_finite f then Buffer.add_string buf (float_to_string f)
    else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 128 in
  write buf j;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit value =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               let hex4 () =
                 if !pos + 4 > n then fail "truncated \\u escape";
                 let digit c =
                   match c with
                   | '0' .. '9' -> Char.code c - Char.code '0'
                   | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                   | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                   | _ -> fail "bad \\u escape"
                 in
                 let v =
                   (digit s.[!pos] lsl 12)
                   lor (digit s.[!pos + 1] lsl 8)
                   lor (digit s.[!pos + 2] lsl 4)
                   lor digit s.[!pos + 3]
                 in
                 pos := !pos + 4;
                 v
               in
               let code = hex4 () in
               let code =
                 if code >= 0xd800 && code <= 0xdbff then
                   (* High surrogate: only valid as the first half of a
                      \uXXXX\uXXXX pair encoding an astral code point. *)
                   if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let low = hex4 () in
                     if low >= 0xdc00 && low <= 0xdfff then
                       0x10000 + ((code - 0xd800) lsl 10) + (low - 0xdc00)
                     else fail "unpaired surrogate in \\u escape"
                   end
                   else fail "unpaired surrogate in \\u escape"
                 else if code >= 0xdc00 && code <= 0xdfff then
                   fail "unpaired surrogate in \\u escape"
                 else code
               in
               Buffer.add_utf_8_uchar buf (Uchar.of_int code)
             | _ -> fail "unknown escape");
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number: " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "%s at offset %d" msg at)

(* --- accessors ------------------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | String x, String y -> String.equal x y
  | List xs, List ys -> List.equal equal xs ys
  | Obj xs, Obj ys ->
    List.equal (fun (k, v) (k', v') -> String.equal k k' && equal v v') xs ys
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false

let pp ppf j = Format.pp_print_string ppf (to_string j)
