module O = Anon_obs

let default_jobs = ref 1

let auto_jobs () = max 1 (Domain.recommended_domain_count ())

let resolve ?jobs () =
  let value = match jobs with Some j -> j | None -> !default_jobs in
  if value < 0 then invalid_arg "Pool.resolve: jobs must be >= 0";
  if value = 0 then auto_jobs () else value

let isolate f x = Anon_kernel.History.with_fresh_interner (fun () -> f x)

(* Workers mark their domain so nested [map] calls degrade to the
   sequential path instead of spawning domains-within-domains. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map ?jobs ?(recorder = O.Recorder.off) f items =
  let jobs = resolve ?jobs () in
  let items = Array.of_list items in
  let n = Array.length items in
  let results = Array.make n Pending in
  let task_us = Array.make n 0.0 in
  let wait_us = Array.make n 0.0 in
  let wall0 = O.Clock.now_ns () in
  let run_task i =
    let t0 = O.Clock.now_ns () in
    (* Queue wait: how long the task sat between submission (all tasks
       are submitted when [map] starts) and a worker picking it up. *)
    wait_us.(i) <- O.Clock.ns_to_us (Int64.sub t0 wall0);
    results.(i) <-
      (match isolate f items.(i) with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ()));
    task_us.(i) <- O.Clock.ns_to_us (O.Clock.since_ns t0)
  in
  let parallel = jobs > 1 && n > 1 && not (Domain.DLS.get in_worker_key) in
  if not parallel then
    for i = 0 to n - 1 do
      run_task i
    done
  else begin
    (* Slots are written at distinct indices by exactly one worker each,
       and [Domain.join] orders those writes before the coordinator's
       reads. *)
    let next = Atomic.make 0 in
    let worker () =
      Domain.DLS.set in_worker_key true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_task i;
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains
  end;
  (* exec.* metrics, coordinator-side only: the registry is not
     thread-safe and worker tasks may create recorders of their own. *)
  if O.Recorder.active recorder then begin
    let wall = O.Clock.ns_to_us (O.Clock.since_ns wall0) in
    let busy = Array.fold_left ( +. ) 0.0 task_us in
    let module M = O.Metrics in
    M.incr ~by:n (O.Recorder.counter recorder "exec.tasks");
    M.incr ~by:(int_of_float wall) (O.Recorder.counter recorder "exec.wall_us");
    M.incr ~by:(int_of_float busy) (O.Recorder.counter recorder "exec.busy_us");
    M.incr
      ~by:(int_of_float (Float.max 0.0 ((float_of_int jobs *. wall) -. busy)))
      (O.Recorder.counter recorder "exec.idle_us");
    M.set_gauge (O.Recorder.gauge recorder "exec.jobs") (float_of_int jobs);
    if wall > 0.0 then begin
      M.set_gauge (O.Recorder.gauge recorder "exec.speedup") (busy /. wall);
      (* Fraction of the pool's total capacity (jobs × wall) spent inside
         tasks: 1.0 means every domain was busy the whole call. *)
      M.set_gauge
        (O.Recorder.gauge recorder "exec.utilization")
        (busy /. (float_of_int jobs *. wall))
    end;
    let h = O.Recorder.histogram recorder "exec.task_us" in
    Array.iter (fun us -> M.observe h us) task_us;
    let hw = O.Recorder.histogram recorder "exec.queue_wait_us" in
    Array.iter (fun us -> M.observe hw us) wait_us
  end;
  for i = 0 to n - 1 do
    match results.(i) with
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending | Done _ -> ()
  done;
  List.init n (fun i ->
      match results.(i) with Done v -> v | Pending | Failed _ -> assert false)
