(** Deterministic Domain-based worker pool for embarrassingly parallel
    simulation batches.

    Every seeded run of Algorithms 2–5 is a pure function of
    [(config, seed)], so experiment tables, fuzz campaigns and benchmark
    macro-runs fan out over independent tasks. {!map} executes those
    tasks on [jobs] domains and returns results in submission order, and
    every task runs inside a fresh kernel interner scope
    ({!Anon_kernel.History.with_fresh_interner}), so the output — runs,
    checker verdicts, and merged metrics snapshots alike — is
    bit-identical whatever [jobs] is. See DESIGN.md §9 for the
    determinism argument. *)

val default_jobs : int ref
(** Pool-wide default for {!map}'s [?jobs], initially [1] (sequential).
    The CLI and the bench harness set it from [--jobs] so that fan-out
    sites deep inside the harness parallelize without threading an
    argument through every experiment. *)

val auto_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val resolve : ?jobs:int -> unit -> int
(** The job count {!map} will use: [Some 0] means autodetect
    ({!auto_jobs}), [Some j] with [j >= 1] is taken as-is, [None] falls
    back to [!default_jobs] (itself resolved the same way).
    @raise Invalid_argument on negative [jobs]. *)

val isolate : ('a -> 'b) -> 'a -> 'b
(** [isolate f x] runs [f x] inside a fresh kernel interner scope. This
    is what {!map} applies to every task; it is exposed so sequential
    re-executions (e.g. fuzz shrinking, repro replay) can match the
    pool's isolation exactly. *)

val map : ?jobs:int -> ?recorder:Anon_obs.Recorder.t -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [isolate f] to every item and returns
    the results in submission order.

    - [jobs] (via {!resolve}) domains pull tasks from a shared index;
      [jobs = 1] runs in the calling domain with no domain spawned (the
      sequential fallback) but with identical per-task isolation.
    - A call made from inside a pool worker runs sequentially — nested
      fan-out does not multiply domain counts.
    - If tasks raise, the exception of the {e lowest-index} failing task
      is re-raised in the caller (with its backtrace) once all tasks have
      settled — deterministic regardless of [jobs]. Remaining tasks are
      not cancelled.
    - [recorder] (default off) receives [exec.*] metrics, recorded by
      the coordinating domain only: counters [exec.tasks] and
      [exec.busy_us]/[exec.wall_us]/[exec.idle_us] totals (µs, rounded),
      histograms [exec.task_us] (per-task latency) and
      [exec.queue_wait_us] (submission-to-start wait), gauges
      [exec.jobs], [exec.speedup] (busy/wall — the cpu-vs-wall parallel
      speedup) and [exec.utilization] (busy / (jobs × wall), 1.0 = all
      domains busy throughout). Worker domains never touch the recorder,
      so [f] may freely create its own.

    Tasks must not let interned histories escape into shared state: each
    task's interner scope is private (see {!Anon_kernel.History}). *)
