(** Chaos-layer experiments. *)

val t13 : unit -> Table.t
(** T13 — fuzzing coverage: admissible fault-injected campaigns over every
    algorithm find zero violations; an armed inadmissible campaign is
    caught by the checker and greedily shrunk. *)
