type experiment = { id : string; title : string; build : unit -> Table.t }

let all =
  [
    { id = "T1"; title = "ES consensus: decision round vs n and GST";
      build = Exp_consensus.t1 };
    { id = "T2"; title = "ES consensus under crashes";
      build = Exp_consensus.t2 };
    { id = "T3"; title = "ESS consensus: decision round vs source stabilization";
      build = Exp_consensus.t3 };
    { id = "T4"; title = "Pseudo-leader stabilization";
      build = Exp_consensus.t4 };
    { id = "T5"; title = "Weak-set add() latency in MS (rounds)";
      build = Exp_weakset.t5 };
    { id = "T6"; title = "Regular register over the weak-set (Prop. 1)";
      build = Exp_weakset.t6 };
    { id = "T7"; title = "Alg. 5: every emulated round has a source (Thm. 4)";
      build = Exp_weakset.t7 };
    { id = "T8"; title = "FLP corollary: Alg. 2 under a never-stabilizing MS schedule";
      build = Exp_impossibility.t8 };
    { id = "T9"; title = "Prop. 4: the two-run adversary vs Sigma emulators";
      build = Exp_impossibility.t9 };
    { id = "T10"; title = "What ids/known-n buy: consensus cost under full synchrony";
      build = Exp_baselines.t10 };
    { id = "T10b"; title = "Leader stabilization: anonymous pseudo-leaders vs heartbeat-Omega";
      build = Exp_baselines.t10_leaders };
    { id = "T10c"; title = "Register emulations: ABD vs weak-set register";
      build = Exp_baselines.t10_registers };
    { id = "T11"; title = "Register-based weak-sets under random interleavings";
      build = Exp_weakset.t11 };
    { id = "T12"; title = "Unsynchronized rounds (skewed runner, relay semantics)";
      build = Exp_skew.t12 };
    { id = "T13"; title = "Fuzzing coverage: random configs vs the checker";
      build = Exp_chaos.t13 };
    { id = "T14"; title = "Model checking: exhaustive schedule exploration, symmetry-reduced";
      build = Exp_mc.t14 };
    { id = "T15"; title = "Dynamic graphs and churn: verdict vs stability window";
      build = Exp_mc.t15 };
    { id = "T16"; title = "Multi-shot service saturation: throughput vs offered load";
      build = Exp_load.t16 };
    { id = "F1"; title = "Decision-round distribution";
      build = Exp_consensus.f1 };
    { id = "F2"; title = "ESS message growth per round";
      build = Exp_consensus.f2 };
    { id = "A1"; title = "Ablation: the non-leader proposal machinery of Alg. 3";
      build = Exp_ablations.a1 };
    { id = "A2"; title = "Model sensitivity: sources timely to correct-only vs to all alive";
      build = Exp_ablations.a2 };
    { id = "A3"; title = "Ablation: counter tables merged with max instead of min";
      build = Exp_ablations.a3 };
  ]

let find id =
  List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all

let run_all ppf =
  List.iter
    (fun e ->
      let table = e.build () in
      Table.render ppf table)
    all
