(** Shared run helpers for the experiment suite: execute a consensus
    algorithm over a batch of seeds and summarize decisions and checker
    verdicts. *)

type batch = {
  runs : int;
  decided : int;  (** Runs where every correct process decided. *)
  decision_rounds : int list;  (** Last correct decision round, per decided run. *)
  env_violations : int;
  agreement_violations : int;
  validity_violations : int;
  messages : int list;  (** Broadcasts per run. *)
  metrics : Anon_obs.Metrics.snapshot option;
      (** Merged per-run snapshots; [Some] iff the batch ran with
          [~metrics:true]. Counters are batch totals, histogram samples
          pool across runs. *)
}

val mean_decision : batch -> float option
val safety_violations : batch -> int

val note_of_snapshot : Anon_obs.Metrics.snapshot -> string
(** One-line instrumentation summary (broadcast/delivery/timeliness
    totals, history-interning hit rate, mean compute time) for table
    footnotes. *)

val metrics_note : batch -> string option
(** [note_of_snapshot] over {!batch.metrics}; [None] when the batch
    carried no metrics. *)

module Of (A : Anon_giraf.Intf.ALGORITHM) : sig
  val batch :
    ?horizon:int ->
    ?observe:(pid:int -> round:int -> A.state -> unit) ->
    ?metrics:bool ->
    ?jobs:int ->
    inputs:(Anon_kernel.Rng.t -> Anon_kernel.Value.t list) ->
    crash:(Anon_kernel.Rng.t -> Anon_giraf.Crash.t) ->
    adversary:(Anon_kernel.Rng.t -> Anon_giraf.Adversary.t) ->
    seeds:int list ->
    unit ->
    batch
  (** One run per seed; [inputs]/[crash]/[adversary] are drawn from a
      seed-derived stream so batches are reproducible. [metrics] (default
      false) gives every run a fresh registry and merges the snapshots
      into {!batch.metrics}.

      Runs execute through {!Anon_exec.Pool.map} — [jobs] as there
      (default [!Anon_exec.Pool.default_jobs]). Each run is a pool task
      in its own interner scope, so the batch — merged metrics included —
      is bit-identical for every [jobs] value. [observe], if given, is
      called from worker domains when [jobs > 1]; it must be
      thread-safe in that case. *)
end

val seeds : ?base:int -> int -> int list
(** [seeds n] is [n] distinct seeds. *)

val distinct_inputs : n:int -> Anon_kernel.Rng.t -> Anon_kernel.Value.t list
(** [n] distinct values in a small range, shuffled. *)
