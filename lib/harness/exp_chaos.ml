module Ch = Anon_chaos

(* --- T13 ----------------------------------------------------------------- *)

let t13 () =
  let admissible_row algo =
    let runs = 40 in
    let report =
      Ch.Fuzz.campaign ~algo ~runs ~seed:(2000 + Hashtbl.hash (Ch.Scenario.algo_name algo)) ()
    in
    let violations =
      match report.finding with
      | None -> 0
      | Some f -> List.length f.violations
    in
    [
      Ch.Scenario.algo_name algo;
      Table.cell_int report.runs_done;
      Table.cell_int violations;
      "-";
      "-";
    ]
  in
  let inadmissible_row () =
    let report = Ch.Fuzz.campaign ~inadmissible:true ~runs:20 ~seed:2100 () in
    match report.finding with
    | None -> [ "inadmissible"; Table.cell_int report.runs_done; "0"; "-"; "-" ]
    | Some f ->
      [
        Printf.sprintf "inadmissible (%s)" (Ch.Scenario.algo_name f.case.algo);
        Table.cell_int report.runs_done;
        Table.cell_int (List.length f.violations);
        Table.cell_int f.case.n;
        Table.cell_int f.case.horizon;
      ]
  in
  Table.make ~id:"T13" ~title:"Fuzzing coverage: random configs vs the checker"
    ~claim:
      "Admissible fault injection (duplicates, extra delay, reordering, crash \
       bursts) never produces a model or semantic violation; armed inadmissible \
       modes are caught by the checker and shrink to small counterexamples"
    ~expectation:
      "0 violations on every admissible row; the inadmissible row finds one and \
       shrinks it"
    ~headers:[ "mode"; "runs"; "violations"; "shrunk-n"; "shrunk-horizon" ]
    ~rows:
      (List.map admissible_row Ch.Scenario.all_algos @ [ inadmissible_row () ])
