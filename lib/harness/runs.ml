open Anon_kernel
module G = Anon_giraf

type batch = {
  runs : int;
  decided : int;
  decision_rounds : int list;
  env_violations : int;
  agreement_violations : int;
  validity_violations : int;
  messages : int list;
  metrics : Anon_obs.Metrics.snapshot option;
}

let mean_decision b =
  match b.decision_rounds with
  | [] -> None
  | rs -> Some (Stats.mean (List.map float_of_int rs))

let safety_violations b = b.agreement_violations + b.validity_violations

let note_of_snapshot snap =
    let c name =
      Option.value ~default:0 (List.assoc_opt name snap.Anon_obs.Metrics.counters)
    in
    let broadcasts = c "runner.broadcasts" in
    let deliveries = c "runner.deliveries" in
    let timely = c "runner.timely_deliveries" in
    let hits = c "kernel.history.intern_hits" in
    let misses = c "kernel.history.intern_misses" in
    let timely_pct =
      if deliveries = 0 then 0.
      else 100. *. float_of_int timely /. float_of_int deliveries
    in
    let hit_pct =
      if hits + misses = 0 then 0.
      else 100. *. float_of_int hits /. float_of_int (hits + misses)
    in
    let compute_us =
      match List.assoc_opt "phase.compute_us" snap.histograms with
      | Some h when not (Anon_obs.Hist.is_empty h) ->
        Printf.sprintf "; compute %.1fus/round mean" (Anon_obs.Hist.mean h)
      | Some _ | None -> ""
    in
    Printf.sprintf
      "metrics: %d broadcasts, %d deliveries (%.1f%% timely), history \
       interning %.1f%% hits (%d/%d)%s"
      broadcasts deliveries timely_pct hit_pct hits (hits + misses) compute_us

let metrics_note b = Option.map note_of_snapshot b.metrics

let seeds ?(base = 1000) n = List.init n (fun i -> base + (7919 * i))

let distinct_inputs ~n rng = Rng.shuffle rng (List.init n (fun i -> i + 1))

(* What one seeded run contributes to a batch. Runs execute as pool
   tasks, so everything here is plain data computed inside the task —
   no interned state crosses task boundaries. *)
type run_result = {
  r_decided : bool;
  r_decision_round : int option;
  r_env : int;
  r_agreement : int;
  r_validity : int;
  r_messages : int;
  r_snapshot : Anon_obs.Metrics.snapshot option;
}

module Of (A : G.Intf.ALGORITHM) = struct
  module R = G.Runner.Make (A)

  let one_run ?observe ~horizon ~metrics ~inputs ~crash ~adversary seed =
    let rng = Rng.make seed in
    let inputs = inputs (Rng.split rng) in
    let crash = crash (Rng.split rng) in
    let adversary = adversary (Rng.split rng) in
    let config = G.Runner.default_config ~horizon ~seed ~inputs ~crash adversary in
    let recorder =
      if metrics then
        Anon_obs.Recorder.create ~metrics:(Anon_obs.Metrics.create ()) ()
      else Anon_obs.Recorder.off
    in
    let outcome = R.run ?observe ~recorder config in
    let env = G.Checker.check_env outcome.trace in
    let cons = G.Checker.check_consensus ~expect_termination:false outcome.trace in
    let count p l = List.length (List.filter p l) in
    {
      r_decided = outcome.all_correct_decided;
      r_decision_round = G.Runner.decision_round outcome;
      r_env = List.length env;
      r_agreement =
        count (function G.Checker.Agreement_violation _ -> true | _ -> false) cons;
      r_validity =
        count (function G.Checker.Validity_violation _ -> true | _ -> false) cons;
      r_messages = outcome.messages_sent;
      r_snapshot =
        (if metrics then
           Some (Anon_obs.Metrics.snapshot (Anon_obs.Recorder.metrics recorder))
         else None);
    }

  let batch ?(horizon = 300) ?observe ?(metrics = false) ?jobs ~inputs ~crash
      ~adversary ~seeds () =
    let results =
      Anon_exec.Pool.map ?jobs
        (one_run ?observe ~horizon ~metrics ~inputs ~crash ~adversary)
        seeds
    in
    let empty =
      {
        runs = 0;
        decided = 0;
        decision_rounds = [];
        env_violations = 0;
        agreement_violations = 0;
        validity_violations = 0;
        messages = [];
        metrics = None;
      }
    in
    let result =
      List.fold_left
        (fun acc r ->
          {
            runs = acc.runs + 1;
            decided = (acc.decided + if r.r_decided then 1 else 0);
            decision_rounds =
              (match r.r_decision_round with
              | Some round -> round :: acc.decision_rounds
              | None -> acc.decision_rounds);
            env_violations = acc.env_violations + r.r_env;
            agreement_violations = acc.agreement_violations + r.r_agreement;
            validity_violations = acc.validity_violations + r.r_validity;
            messages = r.r_messages :: acc.messages;
            metrics = acc.metrics;
          })
        empty results
    in
    {
      result with
      metrics =
        (match List.filter_map (fun r -> r.r_snapshot) results with
        | [] -> None
        | snaps -> Some (Anon_obs.Metrics.merge snaps));
    }
end
