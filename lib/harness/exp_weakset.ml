open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module S = Anon_shm
module Ws = G.Service_runner.Make (C.Weak_set_ms)

(* --- T5 ------------------------------------------------------------------ *)

(* Every process adds one distinct value early; the add latency is driven
   by how fast the rotating source relays everybody's value. *)
let t5_latencies ~n ~noise ~seeds =
  List.concat_map
    (fun seed ->
      let workload =
        List.init n (fun pid -> (pid, [ (2, G.Service_runner.Do_add (100 + pid)) ]))
      in
      let config =
        {
          G.Service_runner.n;
          crash = G.Crash.none ~n;
          churn = G.Churn.none ~n;
          adversary = G.Adversary.ms ~rotation:Round_robin ~noise ();
          horizon = 40 * (n + 2);
          seed;
        }
      in
      let out = Ws.run config ~workload in
      assert (G.Checker.check_weak_set ~correct:(G.Crash.correct config.crash) out.ops = []);
      List.filter_map
        (fun (a : G.Service_runner.add_record) ->
          match a.completed_round with
          | Some r -> Some (float_of_int (r - a.invoked_round))
          | None -> None)
        out.adds)
    seeds

let t5 () =
  let noises = [ 0.0; 0.2; 0.5 ] in
  let row n =
    Table.cell_int n
    :: List.map
         (fun noise ->
           match t5_latencies ~n ~noise ~seeds:(Runs.seeds 5) with
           | [] -> "-"
           | ls -> Table.cell_float (Stats.mean ls))
         noises
  in
  Table.make ~id:"T5" ~title:"Weak-set add() latency in MS (rounds)"
    ~claim:"Thm. 3 — adds always complete; latency is set by source rotation"
    ~expectation:"latency grows with n at noise 0 and collapses as extra links appear"
    ~headers:("n" :: List.map (fun z -> Printf.sprintf "noise=%.1f" z) noises)
    ~rows:(List.map row [ 2; 4; 8; 16 ])

(* --- T6 ------------------------------------------------------------------ *)

let t6_run ~n ~seed =
  let rng = Rng.make (seed * 31) in
  let workload =
    List.init n (fun pid ->
        let ops =
          List.init 6 (fun i ->
              let start = Rng.int_in rng 1 60 in
              if (i + pid) mod 2 = 0 then
                (start, C.Register_of_weak_set.Write ((100 * pid) + i))
              else (start, C.Register_of_weak_set.Read))
          |> List.sort compare
        in
        (pid, ops))
  in
  C.Register_of_weak_set.run ~crash:(G.Crash.none ~n)
    ~adversary:(G.Adversary.ms ~rotation:Round_robin ~noise:0.2 ())
    ~horizon:400 ~seed ~workload

let t6 () =
  let row n =
    let outs = List.map (fun seed -> t6_run ~n ~seed) (Runs.seeds 10) in
    let records = List.concat_map (fun (o : C.Register_of_weak_set.outcome) -> o.records) outs in
    let reads =
      List.filter (fun (r : C.Register_of_weak_set.record) -> r.op = Read) records
    in
    let writes = List.length records - List.length reads in
    let viol =
      List.concat_map
        (fun (o : C.Register_of_weak_set.outcome) ->
          C.Register_of_weak_set.check_regular o.records)
        outs
    in
    let ws_viol =
      List.concat_map
        (fun (o : C.Register_of_weak_set.outcome) ->
          G.Checker.check_weak_set ~correct:(List.init n Fun.id) o.ws_ops)
        outs
    in
    [
      Table.cell_int n;
      Table.cell_int writes;
      Table.cell_int (List.length reads);
      Table.cell_int (List.length viol);
      Table.cell_int (List.length ws_viol);
    ]
  in
  Table.make ~id:"T6" ~title:"Regular register over the weak-set (Prop. 1)"
    ~claim:"Prop. 1 — a weak-set implements a regular MWMR register"
    ~expectation:"0 regularity violations, 0 weak-set violations"
    ~headers:[ "n"; "writes"; "reads"; "regularity-viol"; "weak-set-viol" ]
    ~rows:(List.map row [ 2; 4; 8 ])

(* --- T7 ------------------------------------------------------------------ *)

module Emu = C.Ms_emulation.Make (C.Es_consensus)

let t7 () =
  let row n =
    let outs =
      List.map
        (fun seed ->
          let rng = Rng.make seed in
          let inputs = Runs.distinct_inputs ~n rng in
          let config =
            C.Ms_emulation.default_config ~inputs ~crash:(G.Crash.none ~n)
              ~horizon_rounds:60 ~seed
              ~latency:(C.Ms_emulation.uniform_latency ~max:4)
              ()
          in
          Emu.run config)
        (Runs.seeds 20)
    in
    let env =
      List.concat_map (fun (o : C.Ms_emulation.outcome) -> G.Checker.check_env o.trace) outs
    in
    let cons =
      List.concat_map
        (fun (o : C.Ms_emulation.outcome) ->
          G.Checker.check_consensus ~expect_termination:false o.trace)
        outs
    in
    let decided = List.length (List.filter (fun (o : C.Ms_emulation.outcome) -> o.all_correct_decided) outs) in
    [
      Table.cell_int n;
      Table.cell_int (List.length outs);
      Table.cell_int (List.length env);
      Table.cell_int (List.length cons);
      Table.cell_int decided;
    ]
  in
  Table.make ~id:"T7" ~title:"Alg. 5: every emulated round has a source (Thm. 4)"
    ~claim:"Thm. 4 — running GIRAF against a weak-set emulates the MS environment"
    ~expectation:"0 MS-property violations; hosted Alg. 2 stays safe"
    ~headers:[ "n"; "runs"; "MS-violations"; "safety-violations"; "hosted-decided" ]
    ~rows:(List.map row [ 2; 4; 8 ])

(* --- T11 ----------------------------------------------------------------- *)

let t11_workload ~n rng =
  List.init n (fun pid ->
      let ops =
        List.init 8 (fun i ->
            if Rng.bool rng then S.Ws_common.Add ((16 * pid) + i) else S.Ws_common.Get)
      in
      (pid, ops))

let t11 () =
  let run_one construction n seed =
    let rng = Rng.make (seed + 17) in
    let workload = t11_workload ~n rng in
    let crash_at = if seed mod 3 = 0 then [ (n - 1, 40 + seed mod 50) ] else [] in
    let config =
      S.Scheduler.default_config ~n ~seed ~policy:S.Scheduler.Random_steps ~crash_at ()
    in
    let correct =
      List.filter (fun p -> not (List.mem_assoc p crash_at)) (List.init n Fun.id)
    in
    let ops =
      match construction with
      | `Swmr -> (S.Weak_set_swmr.run ~config ~workload).ops
      | `Mwmr -> (S.Weak_set_mwmr.run ~config ~domain:(16 * n) ~workload).ops
    in
    List.length (G.Checker.check_weak_set ~correct ops)
  in
  let row name construction =
    List.map
      (fun n ->
        let total =
          List.fold_left (fun acc s -> acc + run_one construction n s) 0 (Runs.seeds 30)
        in
        Table.cell_int total)
      [ 2; 4; 8 ]
    |> fun cells -> name :: cells
  in
  Table.make ~id:"T11" ~title:"Register-based weak-sets under random interleavings"
    ~claim:"Props. 2/3 — weak-sets from SWMR (known ids) and MWMR (finite domain) registers"
    ~expectation:"0 violations everywhere (30 seeded schedules per cell, some with crashes)"
    ~headers:[ "construction"; "n=2"; "n=4"; "n=8" ]
    ~rows:[ row "SWMR (Prop. 2)" `Swmr; row "MWMR (Prop. 3)" `Mwmr ]
