module Json = Anon_obs.Json

type direction = Lower_better | Higher_better

type baseline = {
  path : string;
  label : string;
  git_revision : string;
  cores : int;
  jobs : int;
  rows : (string * float * direction) list;  (* metric, value, better-direction *)
}

(* --- loading ---------------------------------------------------------------- *)

let to_float = function
  | Some (Json.Float f) when Float.is_finite f -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some _ | None -> None

let to_int j = Option.bind j Json.to_int
let to_str j = Option.bind j Json.to_str

(* Flatten a baseline document into named metric rows. Rows whose value is
   missing, null or non-finite are skipped (e.g. experiments run without
   [--compare] have no [sequential_s]). *)
let rows_of_json j =
  let rows = ref [] in
  let add name v dir =
    match v with Some v -> rows := (name, v, dir) :: !rows | None -> ()
  in
  (match Json.member "experiments" j with
  | Some (Json.List exps) ->
    List.iter
      (fun e ->
        match to_str (Json.member "id" e) with
        | Some id ->
          add
            (Printf.sprintf "experiment/%s.parallel_s" id)
            (to_float (Json.member "parallel_s" e))
            Lower_better
        | None -> ())
      exps
  | Some _ | None -> ());
  (match Json.member "pool" j with
  | Some (Json.List pools) ->
    List.iter
      (fun p ->
        match to_int (Json.member "jobs" p) with
        | Some jobs ->
          add
            (Printf.sprintf "pool/jobs=%d.ns_per_run" jobs)
            (to_float (Json.member "ns_per_run" p))
            Lower_better
        | None -> ())
      pools
  | Some _ | None -> ());
  (match Json.member "mc" j with
  | Some mc ->
    add "mc.states_per_sec" (to_float (Json.member "states_per_sec" mc)) Higher_better
  | None -> ());
  (match Json.member "load" j with
  | Some (Json.List loads) ->
    List.iter
      (fun l ->
        match to_float (Json.member "rate" l) with
        | Some rate ->
          let key metric = Printf.sprintf "load/rate=%g.%s" rate metric in
          add (key "throughput")
            (to_float (Json.member "throughput" l))
            Higher_better;
          add (key "p99_rounds")
            (to_float (Json.member "p99_rounds" l))
            Lower_better
        | None -> ())
      loads
  | Some _ | None -> ());
  (match Json.member "micro" j with
  | Some (Json.List micros) ->
    List.iter
      (fun m ->
        match to_str (Json.member "name" m) with
        | Some name ->
          add
            (Printf.sprintf "micro/%s.ns" name)
            (to_float (Json.member "ns" m))
            Lower_better
        | None -> ())
      micros
  | Some _ | None -> ());
  List.rev !rows

let of_json ~path j =
  match to_str (Json.member "schema" j) with
  (* anon-bench/3 = /2 plus the [load] saturation rows; older baselines
     simply have no such section, so one loader covers both. *)
  | Some ("anon-bench/2" | "anon-bench/3") ->
    Ok
      {
        path;
        label = Option.value ~default:"?" (to_str (Json.member "label" j));
        git_revision =
          Option.value ~default:"unknown" (to_str (Json.member "git_revision" j));
        cores = Option.value ~default:0 (to_int (Json.member "cores" j));
        jobs = Option.value ~default:0 (to_int (Json.member "jobs" j));
        rows = rows_of_json j;
      }
  | Some s ->
    Error
      (Printf.sprintf "%s: unsupported schema %S (want anon-bench/2 or anon-bench/3)"
         path s)
  | None -> Error (Printf.sprintf "%s: missing \"schema\" field" path)

let load ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> (
    match Json.of_string (String.trim contents) with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j -> of_json ~path j)

(* --- baseline provenance ----------------------------------------------------- *)

(* The current commit, read straight from .git (no subprocess): HEAD is
   either a detached hash or a "ref: ..." pointer into refs/ or
   packed-refs. Shared by every baseline writer (bench/main, anonc load). *)
let git_revision () =
  let read_file path =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Some (String.trim (input_line ic)))
    with Sys_error _ | End_of_file -> None
  in
  let resolve_ref r =
    match read_file (Filename.concat ".git" r) with
    | Some hash -> Some hash
    | None -> (
      (* packed-refs lines: "<hash> <ref>" *)
      try
        let ic = open_in (Filename.concat ".git" "packed-refs") in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let rec scan () =
              let line = input_line ic in
              match String.index_opt line ' ' with
              | Some i when String.sub line (i + 1) (String.length line - i - 1) = r
                -> Some (String.sub line 0 i)
              | _ -> scan ()
            in
            try scan () with End_of_file -> None)
      with Sys_error _ -> None)
  in
  match read_file (Filename.concat ".git" "HEAD") with
  | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " ->
    Option.value ~default:"unknown"
      (resolve_ref (String.sub head 5 (String.length head - 5)))
  | Some hash -> hash
  | None -> "unknown"

(* --- diffing ---------------------------------------------------------------- *)

type row = {
  metric : string;
  old_v : float;
  new_v : float;
  delta_pct : float;  (* (new - old) / old * 100 *)
  direction : direction;
  regressed : bool;
  improved : bool;
}

type report = {
  old_b : baseline;
  new_b : baseline;
  threshold : float;
  rows : row list;
  missing : string list;  (* in OLD, absent from NEW — warn only *)
  added : string list;  (* in NEW, absent from OLD *)
  cross_cores : bool;
}

let default_threshold = 20.0

let diff ?(threshold = default_threshold) ~(old_b : baseline)
    ~(new_b : baseline) () =
  if threshold < 0.0 then invalid_arg "Bench_diff.diff: threshold must be >= 0";
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun (m, v, _) -> Hashtbl.replace new_tbl m v) new_b.rows;
  let old_names = List.map (fun (m, _, _) -> m) old_b.rows in
  let rows =
    List.filter_map
      (fun (metric, old_v, direction) ->
        match Hashtbl.find_opt new_tbl metric with
        | None -> None
        | Some new_v ->
          let delta_pct =
            if old_v = 0.0 then if new_v = 0.0 then 0.0 else infinity
            else (new_v -. old_v) /. Float.abs old_v *. 100.0
          in
          let worse =
            match direction with
            | Lower_better -> delta_pct
            | Higher_better -> -.delta_pct
          in
          Some
            {
              metric;
              old_v;
              new_v;
              delta_pct;
              direction;
              regressed = worse > threshold;
              improved = worse < -.threshold;
            })
      old_b.rows
  in
  let missing =
    List.filter (fun m -> not (Hashtbl.mem new_tbl m)) old_names
  in
  let added =
    let old_tbl = Hashtbl.create 64 in
    List.iter (fun m -> Hashtbl.replace old_tbl m ()) old_names;
    List.filter_map
      (fun (m, _, _) -> if Hashtbl.mem old_tbl m then None else Some m)
      new_b.rows
  in
  {
    old_b;
    new_b;
    threshold;
    rows;
    missing;
    added;
    cross_cores = old_b.cores <> new_b.cores;
  }

let regressions r = List.filter (fun row -> row.regressed) r.rows
let improvements r = List.filter (fun row -> row.improved) r.rows

(* --- rendering -------------------------------------------------------------- *)

let render ppf r =
  Format.fprintf ppf "@[<v>bench diff: %s (%s, %d cores, jobs=%d)@,"
    r.old_b.label
    (String.sub r.old_b.git_revision 0
       (min 12 (String.length r.old_b.git_revision)))
    r.old_b.cores r.old_b.jobs;
  Format.fprintf ppf "        vs  %s (%s, %d cores, jobs=%d)@,"
    r.new_b.label
    (String.sub r.new_b.git_revision 0
       (min 12 (String.length r.new_b.git_revision)))
    r.new_b.cores r.new_b.jobs;
  if r.cross_cores then
    Format.fprintf ppf
      "warning: baselines were measured on different core counts — timings \
       are not comparable@,";
  let w =
    List.fold_left (fun acc row -> max acc (String.length row.metric)) 0 r.rows
  in
  List.iter
    (fun row ->
      let flag =
        if row.regressed then "  REGRESSED"
        else if row.improved then "  improved"
        else ""
      in
      Format.fprintf ppf "  %s%s  %12.4g -> %12.4g  %+7.1f%%%s@," row.metric
        (String.make (w - String.length row.metric) ' ')
        row.old_v row.new_v row.delta_pct flag)
    r.rows;
  List.iter
    (fun m -> Format.fprintf ppf "  %s: missing from %s (skipped)@," m r.new_b.path)
    r.missing;
  List.iter
    (fun m -> Format.fprintf ppf "  %s: new in %s (not compared)@," m r.new_b.path)
    r.added;
  let regs = regressions r and imps = improvements r in
  Format.fprintf ppf "%d rows compared, %d regressed, %d improved (threshold %.1f%%)@]"
    (List.length r.rows) (List.length regs) (List.length imps) r.threshold
