(** Model-checker experiments. *)

val t14 : unit -> Table.t
(** T14 — bounded exhaustive exploration per algorithm and environment at
    n in [{2,3}]: states explored, canonical states, symmetry-reduction
    factor, and verdict. *)

val t15 : unit -> Table.t
(** T15 — stability sweep over the rooted dynamic-graph environment
    (verdict vs window length for ES and ESS) plus one churn row that
    exhibits the rejoin agreement split. *)
