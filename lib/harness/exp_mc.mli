(** Model-checker experiments. *)

val t14 : unit -> Table.t
(** T14 — bounded exhaustive exploration per algorithm and environment at
    n in [{2,3}]: states explored, canonical states, symmetry-reduction
    factor, and verdict. *)
