module G = Anon_giraf
module C = Anon_consensus
module L = Anon_rsm.Load.Make (C.Es_consensus)

(* The canonical saturation configuration: a window of 8 instances
   batching 4 proposals each over ES (gst 4) with two shards. Capacity is
   roughly (window/batch-amortized) instances per decide interval — the
   sweep crosses it so the curve shows both regimes: throughput tracking
   the offered rate below saturation, then flattening while queueing
   pushes the latency percentiles up. *)
let gst = 4

let saturation_reports ?(proposals = 2_000) ?(seed = 42) ~rates () =
  List.map
    (fun rate ->
      let w =
        Anon_rsm.Workload.make ~where:"Exp_load.saturation" ~skew:0.2
          ~value_range:8 ~shards:2 ~proposals ~rate ~seed ()
      in
      let r =
        L.run ~env:(Printf.sprintf "es:%d" gst) ~n:3 ~window:8 ~batch:4
          ~horizon:200_000
          ~adversary:(fun ~shard:_ ~instance:_ -> G.Adversary.es ~gst ())
          w
      in
      (rate, r))
    rates

let t16 () =
  let reports = saturation_reports ~rates:[ 1.; 2.; 4.; 8.; 16.; 32. ] () in
  let rows =
    List.map
      (fun (rate, (r : Anon_rsm.Load.report)) ->
        [
          Printf.sprintf "%g" rate;
          Table.cell_int r.Anon_rsm.Load.decided;
          Table.cell_int r.Anon_rsm.Load.rounds;
          Table.cell_float ~decimals:3 r.Anon_rsm.Load.throughput;
          Table.cell_float ~decimals:1 r.Anon_rsm.Load.p50_rounds;
          Table.cell_float ~decimals:1 r.Anon_rsm.Load.p99_rounds;
          Table.cell_float ~decimals:1 r.Anon_rsm.Load.p999_rounds;
          Table.cell_bool
            (r.Anon_rsm.Load.agreement_ok && r.Anon_rsm.Load.validity_ok);
        ])
      reports
  in
  Table.make ~id:"T16"
    ~title:"Multi-shot service saturation: throughput vs offered load"
    ~claim:
      "The RSM layer multiplexes a window of consensus instances over the \
       one-shot ES algorithm; batching amortizes one round-trip across \
       [batch] proposals, so the service sustains offered loads up to \
       window-limited capacity with flat decide latency, then saturates \
       with queueing latency"
    ~expectation:
      "throughput ≈ offered rate until the knee, then flat at capacity; \
       p50/p99 decide latency flat below the knee, growing with queue depth \
       past it; agreement and validity hold at every rate"
    ~headers:
      [
        "rate (prop/round)"; "decided"; "rounds"; "throughput"; "p50";
        "p99"; "p99.9"; "safe";
      ]
    ~rows
