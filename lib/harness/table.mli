(** Result tables: the harness's output format.

    One table per experiment (per paper claim); rendered as aligned ASCII
    for the console and as CSV for downstream plotting. *)

type t = {
  id : string;  (** Experiment id, e.g. "T1". *)
  title : string;
  claim : string;  (** The paper claim being validated. *)
  expectation : string;  (** The predicted shape of the numbers. *)
  notes : string list;  (** Footnotes (e.g. instrumentation summaries). *)
  headers : string list;
  rows : string list list;
}

val make :
  id:string -> title:string -> claim:string -> expectation:string ->
  headers:string list -> rows:string list list -> t
(** [notes] starts empty; attach footnotes with {!with_notes}. *)

val with_notes : string list -> t -> t
(** Append footnotes (rendered after the rows, skipped in CSV). *)

val render : Format.formatter -> t -> unit
val to_csv : t -> string

val csv_escape : string -> string
(** RFC 4180 field quoting: fields containing a comma, double quote, CR
    or LF are wrapped in double quotes with embedded quotes doubled;
    anything else passes through unchanged. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
val cell_opt : ('a -> string) -> 'a option -> string
