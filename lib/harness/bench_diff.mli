(** The bench-regression gate: row-by-row comparison of persisted
    [anon-bench/2] / [anon-bench/3] baselines (BENCH_PR*.json written by
    [bench/main.ml], saturation baselines written by [anonc load
    --bench-out]).

    A baseline is flattened into named metric rows with a
    better-direction each:
    - [experiment/<id>.parallel_s] — lower is better
    - [pool/jobs=<j>.ns_per_run] — lower is better
    - [mc.states_per_sec] — higher is better
    - [micro/<name>.ns] — lower is better
    - [load/rate=<r>.throughput] — higher is better (anon-bench/3)
    - [load/rate=<r>.p99_rounds] — lower is better (anon-bench/3)

    Rows with missing/null/non-finite values are skipped; rows present in
    only one baseline are reported but never count as regressions. A row
    regresses when it moves in the worse direction by more than the
    threshold (percent, relative to the old value).

    Baselines carry the core count they were measured on; [anonc bench
    diff] refuses cross-core comparisons unless forced ([cross_cores]
    here), because single-core timings say nothing about multi-core ones
    (the BENCH_PR4 caveat in ROADMAP.md). *)

type direction = Lower_better | Higher_better

type baseline = {
  path : string;
  label : string;
  git_revision : string;
  cores : int;
  jobs : int;
  rows : (string * float * direction) list;
}

val load : path:string -> (baseline, string) result
(** Parse a baseline file. Errors on unreadable files, invalid JSON, or a
    schema other than [anon-bench/2] / [anon-bench/3]. Older schemas load
    as before — /3 only adds the [load] rows. *)

val git_revision : unit -> string
(** The commit hash of [./.git]'s HEAD, read without a subprocess
    (detached head, loose ref, or packed-refs); ["unknown"] when
    unreadable. Every baseline writer stamps its output with this. *)

val of_json : path:string -> Anon_obs.Json.t -> (baseline, string) result
(** [load] minus the file read ([path] only labels messages). *)

type row = {
  metric : string;
  old_v : float;
  new_v : float;
  delta_pct : float;  (** [(new - old) / |old| * 100]. *)
  direction : direction;
  regressed : bool;  (** Moved > threshold in the worse direction. *)
  improved : bool;  (** Moved > threshold in the better direction. *)
}

type report = {
  old_b : baseline;
  new_b : baseline;
  threshold : float;
  rows : row list;  (** Old-baseline row order. *)
  missing : string list;  (** In OLD only — warned, never a regression. *)
  added : string list;  (** In NEW only. *)
  cross_cores : bool;  (** Core counts differ — timings not comparable. *)
}

val default_threshold : float
(** 20.0 (percent). *)

val diff : ?threshold:float -> old_b:baseline -> new_b:baseline -> unit -> report
(** Pure row-by-row comparison.
    @raise Invalid_argument on a negative threshold. *)

val regressions : report -> row list
val improvements : report -> row list

val render : Format.formatter -> report -> unit
(** Human-readable table: header (labels/revisions/cores), the cross-core
    warning when applicable, one line per compared row with delta and
    REGRESSED/improved flags, then totals. *)
