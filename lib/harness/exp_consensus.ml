open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module Es_runs = Runs.Of (C.Es_consensus)
module Ess_runs = Runs.Of (C.Ess_consensus)

let gsts = [ 1; 10; 40 ]
let ns = [ 2; 4; 8; 16; 32 ]

(* --- T1 ------------------------------------------------------------------ *)

(* The blocking schedule stalls only while the even-round champion (p1)
   holds a larger value than the odd-round champion (p0): p1 keeps
   max(v0, v1) and p0 keeps v0. Pid-ordered inputs guarantee that. *)
let ordered_inputs ~n _rng = List.init n (fun i -> i + 1)

let t1 () =
  let snaps = ref [] in
  let cell n gst =
    let batch =
      Es_runs.batch ~horizon:400 ~metrics:true
        ~inputs:(ordered_inputs ~n)
        ~crash:(fun _ -> G.Crash.none ~n)
        ~adversary:(fun _ -> G.Adversary.es_blocking ~gst ())
        ~seeds:(Runs.seeds 10) ()
    in
    assert (Runs.safety_violations batch = 0);
    (match batch.metrics with Some s -> snaps := s :: !snaps | None -> ());
    Table.cell_opt (Table.cell_float ~decimals:1) (Runs.mean_decision batch)
  in
  let rows =
    List.map
      (fun n -> Table.cell_int n :: List.map (fun gst -> cell n gst) gsts)
      ns
  in
  let notes =
    match !snaps with
    | [] -> []
    | ss -> [ Runs.note_of_snapshot (Anon_obs.Metrics.merge (List.rev ss)) ]
  in
  Table.with_notes notes
    (Table.make ~id:"T1" ~title:"ES consensus: decision round vs n and GST"
       ~claim:"Thm. 1 — Alg. 2 terminates in ES; the blocking pre-GST schedule stalls it"
       ~expectation:"decision lands a constant ~2 rounds after GST, independent of n"
       ~headers:("n" :: List.map (fun g -> Printf.sprintf "gst=%d" g) gsts)
       ~rows)

(* --- T2 ------------------------------------------------------------------ *)

let t2 () =
  let n = 16 in
  let notes = ref [] in
  let row failures =
    let batch =
      Es_runs.batch ~horizon:400 ~metrics:true
        ~inputs:(Runs.distinct_inputs ~n)
        ~crash:(fun rng -> G.Crash.random ~n ~failures ~max_round:30 rng)
        ~adversary:(fun _ -> G.Adversary.es ~gst:25 ~noise:0.2 ())
        ~seeds:(Runs.seeds 100) ()
    in
    (match Runs.metrics_note batch with
    | Some note -> notes := Printf.sprintf "crashes=%d %s" failures note :: !notes
    | None -> ());
    [
      Table.cell_int failures;
      Table.cell_int batch.runs;
      Table.cell_int batch.decided;
      Table.cell_int batch.agreement_violations;
      Table.cell_int batch.validity_violations;
      Table.cell_int batch.env_violations;
      Table.cell_opt (Table.cell_float ~decimals:1) (Runs.mean_decision batch);
    ]
  in
  let rows = List.map row [ 0; 4; 8; 12 ] in
  Table.with_notes (List.rev !notes)
    (Table.make ~id:"T2" ~title:"ES consensus under crashes (n=16, gst=25)"
       ~claim:"Thm. 1 — safety and termination hold for any number of crashes"
       ~expectation:"0 violations in every column; all runs decide"
       ~headers:[ "crashes"; "runs"; "decided"; "agreement-viol"; "validity-viol"; "env-viol"; "mean-round" ]
       ~rows)

(* --- T3 ------------------------------------------------------------------ *)

let t3 () =
  let cell n gst =
    let batch =
      Ess_runs.batch ~horizon:400
        ~inputs:(ordered_inputs ~n)
        ~crash:(fun _ -> G.Crash.none ~n)
        ~adversary:(fun _ -> G.Adversary.ess_blocking ~gst ())
        ~seeds:(Runs.seeds 10) ()
    in
    assert (Runs.safety_violations batch = 0);
    Table.cell_opt (Table.cell_float ~decimals:1) (Runs.mean_decision batch)
  in
  Table.make ~id:"T3" ~title:"ESS consensus: decision round vs n and source stabilization"
    ~claim:"Thm. 2 — Alg. 3 terminates once a stable source exists"
    ~expectation:"decision tracks the stabilization round plus a small constant"
    ~headers:("n" :: List.map (fun g -> Printf.sprintf "stable@%d" g) gsts)
    ~rows:
      (List.map
         (fun n -> Table.cell_int n :: List.map (fun gst -> cell n gst) gsts)
         ns)

(* --- T4 ------------------------------------------------------------------ *)

(* Track, per round, which processes consider themselves leaders; the
   stabilization round is the first round from which the self-leader set
   never changes again. *)
let leader_stabilization ~n ~gst ~seed =
  let log : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let observe ~pid ~round st =
    if C.Ess_consensus.is_leader st then
      Hashtbl.replace log round
        (pid :: Option.value ~default:[] (Hashtbl.find_opt log round))
  in
  let module R = G.Runner.Make (C.Ess_consensus) in
  let rng = Rng.make seed in
  let inputs = ordered_inputs ~n rng in
  let config =
    G.Runner.default_config ~horizon:400 ~seed ~inputs ~crash:(G.Crash.none ~n)
      (G.Adversary.ess_blocking ~gst ())
  in
  let outcome = R.run ~observe config in
  let last = outcome.rounds_executed - 1 in
  let set_at r = List.sort_uniq Int.compare (Option.value ~default:[] (Hashtbl.find_opt log r)) in
  let final = set_at last in
  let rec stabilization r = if r >= 1 && set_at r = final then stabilization (r - 1) else r + 1 in
  let stab = if last < 1 then 0 else stabilization last in
  (stab, List.length final, G.Runner.decision_round outcome)

let t4 () =
  let row n gst =
    let stabs, sizes, decisions =
      List.fold_left
        (fun (ss, zs, ds) seed ->
          let s, z, d = leader_stabilization ~n ~gst ~seed in
          (float_of_int s :: ss, float_of_int z :: zs,
           (match d with Some r -> float_of_int r :: ds | None -> ds)))
        ([], [], []) (Runs.seeds 10)
    in
    [
      Table.cell_int n;
      Table.cell_int gst;
      Table.cell_float (Stats.mean stabs);
      Table.cell_float (Stats.mean sizes);
      (match decisions with [] -> "-" | ds -> Table.cell_float (Stats.mean ds));
    ]
  in
  Table.make ~id:"T4" ~title:"Pseudo-leader stabilization (Alg. 3 history counters)"
    ~claim:"Lemmas 4-6 — the self-leader set stabilizes to eventual sources"
    ~expectation:"stabilization lands at/before decision; final leader set is small"
    ~headers:[ "n"; "stable@"; "leader-stab-round"; "final-leaders"; "decision-round" ]
    ~rows:(List.concat_map (fun n -> List.map (row n) [ 10; 40 ]) [ 4; 8; 16 ])

(* --- F1 ------------------------------------------------------------------ *)

let f1 () =
  let n = 16 in
  let run_batch adversary =
    let module B = Runs.Of (C.Es_consensus) in
    B.batch ~horizon:400
      ~inputs:(Runs.distinct_inputs ~n)
      ~crash:(fun _ -> G.Crash.none ~n)
      ~adversary
      ~seeds:(Runs.seeds 300) ()
  in
  let es = run_batch (fun _ -> G.Adversary.es ~gst:15 ~noise:0.3 ()) in
  let ess_batch =
    Ess_runs.batch ~horizon:400
      ~inputs:(Runs.distinct_inputs ~n)
      ~crash:(fun _ -> G.Crash.none ~n)
      ~adversary:(fun _ -> G.Adversary.ess ~gst:15 ~noise:0.3 ())
      ~seeds:(Runs.seeds 300) ()
  in
  let hist rounds = Stats.histogram ~bucket:2 rounds in
  let h_es = hist es.decision_rounds in
  let h_ess = hist ess_batch.decision_rounds in
  let buckets =
    List.sort_uniq Int.compare (List.map fst h_es @ List.map fst h_ess)
  in
  let count h b = Option.value ~default:0 (List.assoc_opt b h) in
  Table.make ~id:"F1" ~title:"Decision-round distribution (n=16, gst=15, 300 runs)"
    ~claim:"Thms. 1/2 — both algorithms decide shortly after stabilization"
    ~expectation:"mass concentrated in low buckets; ESS shifted right of ES"
    ~headers:[ "round-bucket"; "ES-runs"; "ESS-runs" ]
    ~rows:
      (List.map
         (fun b ->
           [
             Printf.sprintf "%d-%d" b (b + 1);
             Table.cell_int (count h_es b);
             Table.cell_int (count h_ess b);
           ])
         buckets)

(* --- F2 ------------------------------------------------------------------ *)

let f2 () =
  let n = 8 in
  let module R = G.Runner.Make (C.Ess_consensus) in
  let sizes : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let proposed : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let counters : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let push tbl k v =
    Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  let observe ~pid:_ ~round st =
    push proposed round (Anon_kernel.Pvalue.Set.cardinal (C.Ess_consensus.proposed st));
    push counters round (Counter_table.cardinal (C.Ess_consensus.counters st))
  in
  List.iter
    (fun seed ->
      let rng = Rng.make seed in
      let config =
        (* A never-stabilizing blocking schedule: nobody decides, so the
           series runs the full horizon. *)
        G.Runner.default_config ~horizon:40 ~stop_on_decision:false ~seed
          ~inputs:(ordered_inputs ~n rng)
          ~crash:(G.Crash.none ~n)
          (G.Adversary.ess_blocking ~gst:100_000 ())
      in
      let outcome = R.run ~observe config in
      List.iter
        (fun (info : G.Trace.round_info) ->
          List.iter (fun (_, s) -> push sizes info.round s) info.msg_sizes)
        outcome.trace.rounds)
    (Runs.seeds 5);
  let mean tbl r =
    match Hashtbl.find_opt tbl r with
    | None | Some [] -> "-"
    | Some xs -> Table.cell_float (Stats.mean (List.map float_of_int xs))
  in
  let rounds = List.init 20 (fun i -> (2 * i) + 1) in
  Table.make ~id:"F2" ~title:"ESS message growth per round (n=8, no decision stop)"
    ~claim:"§4.1 — histories grow linearly; per-round space stays finite"
    ~expectation:"history term grows ~1/round; PROPOSED collapses to <=2 after GST"
    ~headers:[ "round"; "mean-msg-size"; "mean-|PROPOSED|"; "mean-|C|" ]
    ~rows:
      (List.map
         (fun r -> [ Table.cell_int r; mean sizes r; mean proposed r; mean counters r ])
         rounds)
