type t = {
  id : string;
  title : string;
  claim : string;
  expectation : string;
  notes : string list;
  headers : string list;
  rows : string list list;
}

let make ~id ~title ~claim ~expectation ~headers ~rows =
  List.iter
    (fun row ->
      if List.length row <> List.length headers then
        invalid_arg ("Table.make: ragged row in " ^ id))
    rows;
  { id; title; claim; expectation; notes = []; headers; rows }

let with_notes notes t = { t with notes = t.notes @ notes }

let widths t =
  let cols = List.length t.headers in
  let w = Array.make cols 0 in
  let measure row =
    List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row
  in
  measure t.headers;
  List.iter measure t.rows;
  w

let render ppf t =
  let w = widths t in
  let pad i s = s ^ String.make (w.(i) - String.length s) ' ' in
  let render_row row =
    Format.fprintf ppf "  %s@." (String.concat "  " (List.mapi pad row))
  in
  Format.fprintf ppf "@.== %s: %s ==@." t.id t.title;
  Format.fprintf ppf "   claim: %s@." t.claim;
  Format.fprintf ppf "   expectation: %s@." t.expectation;
  render_row t.headers;
  render_row (List.mapi (fun i _ -> String.make w.(i) '-') t.headers);
  List.iter render_row t.rows;
  List.iter (fun note -> Format.fprintf ppf "   note: %s@." note) t.notes

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (line t.headers :: List.map line t.rows) ^ "\n"

let cell_int = string_of_int
let cell_float ?(decimals = 1) f = Printf.sprintf "%.*f" decimals f
let cell_bool b = if b then "yes" else "no"
let cell_opt f = function None -> "-" | Some x -> f x
