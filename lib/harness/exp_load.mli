(** T16 — the saturation curve of the multi-shot consensus service:
    achieved throughput and decide-latency percentiles vs offered load
    (see EXPERIMENTS.md §T16 and DESIGN.md §14). *)

val t16 : unit -> Table.t

val saturation_reports :
  ?proposals:int ->
  ?seed:int ->
  rates:float list ->
  unit ->
  (float * Anon_rsm.Load.report) list
(** The runs behind the table, one per offered rate (the canonical T16
    configuration: ES, n=3, window 8, batch 4, 2 shards). Exposed so the
    bench harness persists the same series as anon-bench/3 [load] rows. *)
