module G = Anon_giraf
module Mc = Anon_mc.Mc
module Explore = Anon_mc.Explore

(* --- T14 ----------------------------------------------------------------- *)

(* Each row is one full model-checking run: algorithm, environment, system
   size, depth/crash bounds chosen so the run closes (or demonstrably does
   not, for the MS liveness witness) in well under a minute. *)

let config ~algo ~env ~n ~rounds ~crashes =
  {
    Mc.algo;
    n;
    env;
    rounds;
    crashes;
    max_delay = 1;
    search = Mc.Bfs;
    armed = false;
    jobs = None;
    seed = 42;
    ops_per_client = 1;
  }

let row cfg =
  let r = Mc.run cfg in
  let s = r.Mc.stats in
  [
    Mc.algo_name cfg.Mc.algo;
    G.Env.to_string cfg.Mc.env;
    Table.cell_int cfg.Mc.n;
    Table.cell_int cfg.Mc.rounds;
    Table.cell_int cfg.Mc.crashes;
    Table.cell_int r.Mc.schedules;
    Table.cell_int s.Explore.raw_states;
    Table.cell_int s.Explore.canonical_states;
    Table.cell_float ~decimals:2 (Mc.reduction_factor r);
    Mc.verdict_name r.Mc.verdict;
  ]

let t14 () =
  let es = G.Env.Es { gst = 2 } in
  let ess = G.Env.Ess { gst = 2 } in
  let rows =
    List.map row
      [
        config ~algo:Mc.Es ~env:es ~n:2 ~rounds:6 ~crashes:0;
        config ~algo:Mc.Es ~env:es ~n:3 ~rounds:6 ~crashes:0;
        config ~algo:Mc.Es ~env:es ~n:3 ~rounds:6 ~crashes:1;
        config ~algo:Mc.Ess ~env:ess ~n:2 ~rounds:8 ~crashes:0;
        config ~algo:Mc.Ess ~env:ess ~n:3 ~rounds:5 ~crashes:0;
        config ~algo:Mc.Ms_weakset ~env:G.Env.Ms ~n:2 ~rounds:4 ~crashes:0;
        config ~algo:Mc.Ms_weakset ~env:G.Env.Ms ~n:3 ~rounds:4 ~crashes:0;
        config ~algo:Mc.Es_unguarded ~env:es ~n:3 ~rounds:6 ~crashes:1;
      ]
  in
  Table.make ~id:"T14"
    ~title:"Model checking: exhaustive schedule exploration, symmetry-reduced"
    ~claim:
      "Every admissible delivery schedule and crash timing within the bounds \
       preserves agreement, validity, irrevocability (and the weak-set \
       axioms); anonymity makes states equal modulo process permutation, so \
       canonicalization shrinks the explored space"
    ~expectation:
      "verdict 'verified' on every row that closes (all but ESS n=3, whose \
       non-source links may stay late beyond any bound: 'bounded' with zero \
       violations); reduction factor > 1 everywhere"
    ~headers:
      [ "algo"; "env"; "n"; "rounds"; "crashes"; "schedules"; "raw"; "canonical";
        "reduction"; "verdict" ]
    ~rows
  |> Table.with_notes
       [
         "raw/canonical: states before/after hashing modulo process \
          permutation; schedules: crash timings explored (budget x rounds).";
         "ESS n=3 is depth-limited: Alg. 3's counters converge slowly when \
          the adversary keeps non-source links late, so the run reports a \
          bounded non-deciding witness rather than closure.";
       ]
