module G = Anon_giraf
module Mc = Anon_mc.Mc
module Explore = Anon_mc.Explore

(* --- T14 ----------------------------------------------------------------- *)

(* Each row is one full model-checking run: algorithm, environment, system
   size, depth/crash bounds chosen so the run closes (or demonstrably does
   not, for the MS liveness witness) in well under a minute. *)

let config ?(churn = 0) ~algo ~env ~n ~rounds ~crashes () =
  {
    Mc.algo;
    n;
    env;
    rounds;
    crashes;
    churn;
    max_delay = 1;
    search = Mc.Bfs;
    armed = false;
    jobs = None;
    seed = 42;
    ops_per_client = 1;
  }

let row cfg =
  let r = Mc.run cfg in
  let s = r.Mc.stats in
  [
    Mc.algo_name cfg.Mc.algo;
    G.Env.to_string cfg.Mc.env;
    Table.cell_int cfg.Mc.n;
    Table.cell_int cfg.Mc.rounds;
    Table.cell_int cfg.Mc.crashes;
    Table.cell_int r.Mc.schedules;
    Table.cell_int s.Explore.raw_states;
    Table.cell_int s.Explore.canonical_states;
    Table.cell_float ~decimals:2 (Mc.reduction_factor r);
    Mc.verdict_name r.Mc.verdict;
  ]

let t14 () =
  let es = G.Env.Es { gst = 2 } in
  let ess = G.Env.Ess { gst = 2 } in
  let rows =
    List.map row
      [
        config ~algo:Mc.Es ~env:es ~n:2 ~rounds:6 ~crashes:0 ();
        config ~algo:Mc.Es ~env:es ~n:3 ~rounds:6 ~crashes:0 ();
        config ~algo:Mc.Es ~env:es ~n:3 ~rounds:6 ~crashes:1 ();
        config ~algo:Mc.Ess ~env:ess ~n:2 ~rounds:8 ~crashes:0 ();
        config ~algo:Mc.Ess ~env:ess ~n:3 ~rounds:5 ~crashes:0 ();
        config ~algo:Mc.Ms_weakset ~env:G.Env.Ms ~n:2 ~rounds:4 ~crashes:0 ();
        config ~algo:Mc.Ms_weakset ~env:G.Env.Ms ~n:3 ~rounds:4 ~crashes:0 ();
        config ~algo:Mc.Es_unguarded ~env:es ~n:3 ~rounds:6 ~crashes:1 ();
      ]
  in
  Table.make ~id:"T14"
    ~title:"Model checking: exhaustive schedule exploration, symmetry-reduced"
    ~claim:
      "Every admissible delivery schedule and crash timing within the bounds \
       preserves agreement, validity, irrevocability (and the weak-set \
       axioms); anonymity makes states equal modulo process permutation, so \
       canonicalization shrinks the explored space"
    ~expectation:
      "verdict 'verified' on every row that closes (all but ESS n=3, whose \
       non-source links may stay late beyond any bound: 'bounded' with zero \
       violations); reduction factor > 1 everywhere"
    ~headers:
      [ "algo"; "env"; "n"; "rounds"; "crashes"; "schedules"; "raw"; "canonical";
        "reduction"; "verdict" ]
    ~rows
  |> Table.with_notes
       [
         "raw/canonical: states before/after hashing modulo process \
          permutation; schedules: crash timings explored (budget x rounds).";
         "ESS n=3 is depth-limited: Alg. 3's counters converge slowly when \
          the adversary keeps non-source links late, so the run reports a \
          bounded non-deciding witness rather than closure.";
       ]

(* --- T15 ----------------------------------------------------------------- *)

(* Stability sweep over the rooted dynamic-graph environment, plus the
   churn finding.  Each dynamic row explores every admissible per-round
   communication graph whose stability windows are [stability] rounds
   long; the last row swaps the dynamic graph for a late GST and a churn
   budget, exhibiting the rejoin agreement split (a genuine property of
   anonymous consensus under state-resetting rejoins, committed as
   repros/churn-rejoin-split.json). *)

let t15 () =
  let dyn s = G.Env.Dynamic { stability = s; rooted = true } in
  let row_churn cfg =
    let r = row cfg in
    (* Splice the churn budget in after the crash column. *)
    match r with
    | a :: e :: n :: k :: c :: rest ->
      a :: e :: n :: k :: c :: Table.cell_int cfg.Mc.churn :: rest
    | _ -> r
  in
  let rows =
    List.map row_churn
      [
        config ~algo:Mc.Es ~env:(dyn 1) ~n:2 ~rounds:8 ~crashes:0 ();
        config ~algo:Mc.Es ~env:(dyn 2) ~n:2 ~rounds:8 ~crashes:0 ();
        config ~algo:Mc.Es ~env:(dyn 3) ~n:2 ~rounds:8 ~crashes:0 ();
        config ~algo:Mc.Ess ~env:(dyn 1) ~n:2 ~rounds:6 ~crashes:0 ();
        config ~algo:Mc.Ess ~env:(dyn 2) ~n:2 ~rounds:8 ~crashes:0 ();
        config ~algo:Mc.Ess ~env:(dyn 3) ~n:2 ~rounds:9 ~crashes:0 ();
        config ~algo:Mc.Es ~env:(G.Env.Es { gst = 5 }) ~n:3 ~rounds:8 ~crashes:0
          ~churn:1 ();
      ]
  in
  Table.make ~id:"T15"
    ~title:"Dynamic graphs and churn: verdict vs stability window"
    ~claim:
      "A rooted dynamic graph whose root holds still for >= 2 rounds lets \
       both consensus algorithms close; a root that may rotate every round \
       (stability 1) starves them within any bound; and a state-resetting \
       rejoiner can split agreement between stayers even in the classic ES \
       environment"
    ~expectation:
      "verdict 'verified' at stability 2 and 3 for both algorithms; \
       'bounded' (non-deciding witness, zero violations) at stability 1; \
       'violation' on the churn row — the committed rejoin-split \
       counterexample"
    ~headers:
      [ "algo"; "env"; "n"; "rounds"; "crashes"; "churn"; "schedules"; "raw";
        "canonical"; "reduction"; "verdict" ]
    ~rows
  |> Table.with_notes
       [
         "stability S: every window of S rounds opens with an arbitrary \
          rooted pulse graph and heals to full synchrony for the rest of \
          the window; S=1 is the rotating-root regime.";
         "churn row: one process may leave and rejoin; the rejoiner's empty \
          re-initialized PROPOSED set erases the WRITTEN intersection that \
          otherwise forces stayers to adopt a decider's value (DESIGN.md \
          section 12).";
       ]
