(** The experiment registry: every table/figure of EXPERIMENTS.md, keyed by
    id, in presentation order. *)

type experiment = {
  id : string;
  title : string;  (** Static short title (no build needed to list it). *)
  build : unit -> Table.t;
}

val all : experiment list
val find : string -> experiment option
val run_all : Format.formatter -> unit
(** Build and render every table (the main entry point of the bench
    harness). *)
