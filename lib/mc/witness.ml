module G = Anon_giraf
module Scenario = Anon_chaos.Scenario
module Fuzz = Anon_chaos.Fuzz

type t = {
  case : Scenario.t;
  mc_violations : G.Checker.violation list;
  replay_violations : G.Checker.violation list;
}

let build ?recorder ~algo ~env ~n ~seed ~ops_per_client ~crashes ?(churn = [])
    ~plans ~mc_violations () =
  let case =
    {
      Scenario.algo;
      n;
      gst = Option.value ~default:0 (G.Env.gst env);
      rotation = G.Adversary.Round_robin;
      noise = 0.;
      horizon = List.length plans + 1;
      seed;
      crashes;
      churn;
      (* The explicit schedule replaces the adversary wholesale; its
         [sched_env] already carries the (possibly dynamic) environment. *)
      env = None;
      ops_per_client;
      faults = Anon_chaos.Fault.none;
      schedule = Some { Scenario.sched_env = env; plans };
    }
  in
  { case; mc_violations; replay_violations = Fuzz.run_case ?recorder case }

let confirmed t = t.replay_violations <> []

let write ~path t =
  Fuzz.write_repro ~path
    {
      Fuzz.original = t.case;
      original_violations = t.replay_violations;
      case = t.case;
      violations = t.replay_violations;
      explored = 0;
    }
