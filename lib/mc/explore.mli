(** Bounded exhaustive exploration over admissible schedules.

    The engine is generic over a {!SYSTEM}: a deterministic lockstep state
    machine whose only nondeterminism is the per-round adversary plan. A
    node is identified by its canonical key ({!Canon}); visited keys prune
    permutation-equivalent branches, which is sound because every checked
    property is permutation-invariant (DESIGN.md §10).

    Two search orders are provided. {!bfs} explores layer by layer, so the
    first counterexample it reports is at minimal round depth; its frontier
    is a set of {e plan prefixes}, re-simulated from [init] inside worker
    tasks on {!Anon_exec.Pool}, which keeps every node construction inside
    the task's own kernel interner scope — only plain data (plans, keys,
    violations) crosses task boundaries, and the sequential submission-order
    merge makes reports independent of [jobs]. {!dfs} is sequential and
    memory-light: it holds one live branch and shares immutable ancestor
    nodes, stopping at the first violation in deterministic branch order. *)

module type SYSTEM = sig
  type sys

  val init : unit -> sys
  (** Build the root node. Called once per worker task, {e inside} the
      task, so hash-consed kernel state never leaks across interner
      scopes. *)

  val apply : sys -> Anon_giraf.Adversary.plan -> sys
  (** Deterministically replay one recorded plan (prefix re-simulation). *)

  val expand : sys -> (Anon_giraf.Adversary.plan * sys * Anon_giraf.Checker.violation list) list
  (** All successors under the round's admissible (and, when armed,
      deliberately inadmissible) plans, in a deterministic order, each with
      the safety violations the transition triggers. *)

  val key : sys -> string
  (** Canonical key modulo process permutation. *)

  val terminal : sys -> bool
  (** No further transition can affect any checked property (consensus:
      every correct process decided; weak set: workload drained and no add
      pending). Terminal nodes are not expanded. *)

  val pending : sys -> int list
  (** The processes still owed progress (undecided correct processes /
      clients with a blocked add) — reported when the depth bound cuts a
      branch. *)
end

(** A {!SYSTEM} that can also render a pid-indexed, human-diffable view of
    a node — per-process fate and state key plus the global facts — for the
    runner-vs-checker differential test. Unlike {!SYSTEM.key} this is not
    permutation-canonicalized: pid [i]'s line describes pid [i]. *)
module type SYSTEM_DEBUG = sig
  include SYSTEM

  val snapshot : sys -> string

  val key_full : sys -> string
  (** {!SYSTEM.key} recomputed from scratch, bypassing the incremental
      per-process digest cache ({!Canon.Digest}). Must equal [key] on
      every reachable node — the property the differential test pins. *)
end

type stats = {
  raw_states : int;  (** Nodes generated, before canonicalization. *)
  canonical_states : int;  (** Distinct canonical keys (including the root). *)
  dedup_hits : int;  (** Generated nodes pruned as permutation-equivalent. *)
  expanded : int;  (** Nodes whose successor sets were generated. *)
  frontier_peak : int;  (** Largest BFS layer (DFS: deepest stack). *)
  terminal_branches : int;  (** Distinct nodes closed as terminal. *)
  bound_branches : int;  (** Distinct nodes cut by the depth bound. *)
  pending_at_bound : int;
      (** Bound-cut nodes still owing progress to someone. *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

type witness = {
  w_plans : Anon_giraf.Adversary.plan list;  (** Plan for round [k] at index [k-1]. *)
  w_violations : Anon_giraf.Checker.violation list;
}

type bounded = {
  b_plans : Anon_giraf.Adversary.plan list;
  b_blocked : int list;  (** [pending] at the cut node. *)
}

type result = {
  stats : stats;
  violation : witness option;
      (** First safety violation in search order ([bfs]: shallowest). *)
  non_deciding : bounded option;
      (** First depth-bound cut with nonempty [pending] — the bounded
          liveness witness (e.g. ES under an MS-only environment). *)
}

val bfs :
  ?jobs:int ->
  ?recorder:Anon_obs.Recorder.t ->
  ?progress:Format.formatter ->
  depth:int ->
  (module SYSTEM) ->
  result
(** Explore every admissible schedule of up to [depth] rounds.
    [jobs] as in {!Anon_exec.Pool.resolve}. Reports (verdict, stats,
    witnesses) are byte-identical for every [jobs] value; at [jobs = 1]
    the frontier holds live states (no prefix re-simulation, and a
    system's internal caches persist across the search). [progress]
    (e.g. [Format.err_formatter]) receives one live status line per BFS
    level — frontier size, canonical states, states/sec, dedup hit-rate;
    wall clock feeds only these lines, never the result. *)

val dfs :
  ?recorder:Anon_obs.Recorder.t ->
  ?progress:Format.formatter ->
  depth:int ->
  (module SYSTEM) ->
  result
(** Depth-first variant: same node ordering per level, first violation in
    branch order (not necessarily shallowest), single-domain. [progress]
    prints a status line every 10k expansions. *)
