module R = Anon_obs.Recorder
module M = Anon_obs.Metrics

module type SYSTEM = sig
  type sys

  val init : unit -> sys
  val apply : sys -> Anon_giraf.Adversary.plan -> sys
  val expand : sys -> (Anon_giraf.Adversary.plan * sys * Anon_giraf.Checker.violation list) list
  val key : sys -> string
  val terminal : sys -> bool
  val pending : sys -> int list
end

module type SYSTEM_DEBUG = sig
  include SYSTEM

  val snapshot : sys -> string
  val key_full : sys -> string
end

type stats = {
  raw_states : int;
  canonical_states : int;
  dedup_hits : int;
  expanded : int;
  frontier_peak : int;
  terminal_branches : int;
  bound_branches : int;
  pending_at_bound : int;
}

let zero_stats =
  {
    raw_states = 0;
    canonical_states = 0;
    dedup_hits = 0;
    expanded = 0;
    frontier_peak = 0;
    terminal_branches = 0;
    bound_branches = 0;
    pending_at_bound = 0;
  }

let add_stats a b =
  {
    raw_states = a.raw_states + b.raw_states;
    canonical_states = a.canonical_states + b.canonical_states;
    dedup_hits = a.dedup_hits + b.dedup_hits;
    expanded = a.expanded + b.expanded;
    frontier_peak = max a.frontier_peak b.frontier_peak;
    terminal_branches = a.terminal_branches + b.terminal_branches;
    bound_branches = a.bound_branches + b.bound_branches;
    pending_at_bound = a.pending_at_bound + b.pending_at_bound;
  }

type witness = {
  w_plans : Anon_giraf.Adversary.plan list;
  w_violations : Anon_giraf.Checker.violation list;
}

type bounded = { b_plans : Anon_giraf.Adversary.plan list; b_blocked : int list }

type result = {
  stats : stats;
  violation : witness option;
  non_deciding : bounded option;
}

(* Plain-data summary of one successor — the only thing (besides the plan
   prefix) that crosses a worker-task boundary. *)
type succ = {
  s_plan : Anon_giraf.Adversary.plan;
  s_key : string;
  s_violations : Anon_giraf.Checker.violation list;
  s_terminal : bool;
  s_pending : int list;
}

let chunk size l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

(* Shared accumulator for both search orders; every mutation happens in a
   deterministic sequential order (BFS: submission-order merge; DFS: branch
   order), so reports are reproducible and jobs-independent. *)
type acc = {
  visited : (string, unit) Hashtbl.t;
  mutable raw : int;
  mutable canonical : int;
  mutable dedup : int;
  mutable n_expanded : int;
  mutable peak : int;
  mutable term : int;
  mutable bound : int;
  mutable pend_bound : int;
  mutable viol : witness option;
  mutable nondec : bounded option;
}

let make_acc () =
  {
    visited = Hashtbl.create 4096;
    raw = 0;
    canonical = 0;
    dedup = 0;
    n_expanded = 0;
    peak = 0;
    term = 0;
    bound = 0;
    pend_bound = 0;
    viol = None;
    nondec = None;
  }

(* One successor, in deterministic order. Returns [Some prefix'] when the
   node should be explored further. Violations are reported before the
   dedup check — a violating transition may well land on a visited state. *)
let admit acc ~prefix ~level ~depth sc =
  acc.raw <- acc.raw + 1;
  if sc.s_violations <> [] then begin
    (if acc.viol = None then
       acc.viol <-
         Some { w_plans = prefix @ [ sc.s_plan ]; w_violations = sc.s_violations });
    None
  end
  else if Hashtbl.mem acc.visited sc.s_key then begin
    acc.dedup <- acc.dedup + 1;
    None
  end
  else begin
    Hashtbl.replace acc.visited sc.s_key ();
    acc.canonical <- acc.canonical + 1;
    if sc.s_terminal then begin
      acc.term <- acc.term + 1;
      None
    end
    else if level + 1 >= depth then begin
      acc.bound <- acc.bound + 1;
      if sc.s_pending <> [] then begin
        acc.pend_bound <- acc.pend_bound + 1;
        if acc.nondec = None then
          acc.nondec <-
            Some { b_plans = prefix @ [ sc.s_plan ]; b_blocked = sc.s_pending }
      end;
      None
    end
    else Some (prefix @ [ sc.s_plan ])
  end

let finish acc =
  {
    stats =
      {
        raw_states = acc.raw;
        canonical_states = acc.canonical;
        dedup_hits = acc.dedup;
        expanded = acc.n_expanded;
        frontier_peak = acc.peak;
        terminal_branches = acc.term;
        bound_branches = acc.bound;
        pending_at_bound = acc.pend_bound;
      };
    violation = acc.viol;
    non_deciding = acc.nondec;
  }

let emit_metrics recorder r =
  if R.active recorder then begin
    let c name by = M.incr ~by (R.counter recorder name) in
    c "mc.raw_states" r.stats.raw_states;
    c "mc.canonical_states" r.stats.canonical_states;
    c "mc.dedup_hits" r.stats.dedup_hits;
    c "mc.expanded" r.stats.expanded;
    c "mc.terminal_branches" r.stats.terminal_branches;
    c "mc.bound_branches" r.stats.bound_branches;
    c "mc.violations" (match r.violation with None -> 0 | Some _ -> 1);
    M.set_gauge (R.gauge recorder "mc.frontier_peak")
      (float_of_int r.stats.frontier_peak)
  end

(* Live progress lines (stderr under [anonc mc --progress]). Wall clock
   feeds only this reporting — never the result — so verdicts stay
   deterministic. *)
let report_progress ppf ~t0 ~label ~depth ~frontier acc =
  let secs = Anon_obs.Clock.ns_to_s (Anon_obs.Clock.since_ns t0) in
  let rate = if secs > 0.0 then float_of_int acc.raw /. secs else 0.0 in
  let dedup_pct =
    if acc.raw > 0 then 100.0 *. float_of_int acc.dedup /. float_of_int acc.raw
    else 0.0
  in
  Format.fprintf ppf
    "mc: %s=%d frontier=%d canonical=%d states/s=%.0f dedup-hit=%.1f%%@." label
    depth frontier acc.canonical rate dedup_pct

(* Root bookkeeping shared by both orders: returns [true] when the root
   itself still needs expansion. *)
let seed_root acc ~depth ~key ~terminal ~pending =
  Hashtbl.replace acc.visited key ();
  acc.raw <- 1;
  acc.canonical <- 1;
  if terminal then begin
    acc.term <- 1;
    false
  end
  else if depth <= 0 then begin
    acc.bound <- 1;
    if pending <> [] then begin
      acc.pend_bound <- 1;
      acc.nondec <- Some { b_plans = []; b_blocked = pending }
    end;
    false
  end
  else true

(* Sequential BFS holding the frontier states. Replaying each prefix from
   [init] is what makes the parallel path safe (workers exchange only
   plain data), but at [jobs = 1] it is pure overhead — O(depth) [apply]
   calls per expansion. Holding [(prefix, sys)] pairs removes the replay
   entirely and lets a system's caches (plan-enumeration memo, key
   digests) persist across the whole search. Admission order — and
   therefore every stat, the winning witness and the first non-deciding
   branch — is byte-identical to the parallel path's submission-order
   merge. *)
let bfs_held ~recorder ?progress ~depth (module S : SYSTEM) =
  let t0 = Anon_obs.Clock.now_ns () in
  let r =
    Anon_exec.Pool.isolate
      (fun () ->
        let acc = make_acc () in
        let root = S.init () in
        let expand_root =
          seed_root acc ~depth ~key:(S.key root) ~terminal:(S.terminal root)
            ~pending:(S.pending root)
        in
        let frontier = ref (if expand_root then [ ([], root) ] else []) in
        let level = ref 0 in
        while !frontier <> [] && acc.viol = None do
          let len = List.length !frontier in
          acc.peak <- max acc.peak len;
          (match progress with
          | Some ppf ->
            report_progress ppf ~t0 ~label:"level" ~depth:!level ~frontier:len acc
          | None -> ());
          let next = ref [] in
          List.iter
            (fun (prefix, sys) ->
              acc.n_expanded <- acc.n_expanded + 1;
              List.iter
                (fun (plan, s', viols) ->
                  let sc =
                    {
                      s_plan = plan;
                      s_key = S.key s';
                      s_violations = viols;
                      s_terminal = S.terminal s';
                      s_pending = S.pending s';
                    }
                  in
                  match admit acc ~prefix ~level:!level ~depth sc with
                  | None -> ()
                  | Some prefix' -> next := (prefix', s') :: !next)
                (S.expand sys))
            !frontier;
          frontier := List.rev !next;
          incr level
        done;
        finish acc)
      ()
  in
  emit_metrics recorder r;
  r

let bfs ?jobs ?(recorder = R.off) ?progress ~depth (module S : SYSTEM) =
  let jobs = Anon_exec.Pool.resolve ?jobs () in
  if jobs = 1 then bfs_held ~recorder ?progress ~depth (module S)
  else
  let t0 = Anon_obs.Clock.now_ns () in
  let acc = make_acc () in
  let successors sys =
    List.map
      (fun (plan, s', viols) ->
        {
          s_plan = plan;
          s_key = S.key s';
          s_violations = viols;
          s_terminal = S.terminal s';
          s_pending = S.pending s';
        })
      (S.expand sys)
  in
  let replay prefix = List.fold_left S.apply (S.init ()) prefix in
  let root_key, root_term, root_pending =
    Anon_exec.Pool.isolate
      (fun () ->
        let s = S.init () in
        (S.key s, S.terminal s, S.pending s))
      ()
  in
  let expand_root =
    seed_root acc ~depth ~key:root_key ~terminal:root_term ~pending:root_pending
  in
  let frontier = ref (if expand_root then [ [] ] else []) in
  let level = ref 0 in
  while !frontier <> [] && acc.viol = None do
    let len = List.length !frontier in
    acc.peak <- max acc.peak len;
    (match progress with
    | Some ppf -> report_progress ppf ~t0 ~label:"level" ~depth:!level ~frontier:len acc
    | None -> ());
    (* Workers re-simulate each prefix from a fresh [init] inside their own
       task (own interner scope) and return only plain successor records;
       the merge below is sequential in submission order, so the whole
       layer's accounting — and the winning witness — is identical for
       every [jobs] value. *)
    let chunk_size = max 1 ((len + (4 * jobs) - 1) / (4 * jobs)) in
    let results =
      Anon_exec.Pool.map ~jobs
        (fun prefixes ->
          List.map (fun prefix -> (prefix, successors (replay prefix))) prefixes)
        (chunk chunk_size !frontier)
    in
    let next = ref [] in
    List.iter
      (fun per_chunk ->
        List.iter
          (fun (prefix, succs) ->
            acc.n_expanded <- acc.n_expanded + 1;
            List.iter
              (fun sc ->
                match admit acc ~prefix ~level:!level ~depth sc with
                | None -> ()
                | Some prefix' -> next := prefix' :: !next)
              succs)
          per_chunk)
      results;
    frontier := List.rev !next;
    incr level
  done;
  let r = finish acc in
  emit_metrics recorder r;
  r

let dfs ?(recorder = R.off) ?progress ~depth (module S : SYSTEM) =
  let t0 = Anon_obs.Clock.now_ns () in
  let r =
    Anon_exec.Pool.isolate
      (fun () ->
        let acc = make_acc () in
        let root = S.init () in
        let expand_root =
          seed_root acc ~depth ~key:(S.key root) ~terminal:(S.terminal root)
            ~pending:(S.pending root)
        in
        let rec go sys prefix level stack =
          if acc.viol = None then begin
            acc.n_expanded <- acc.n_expanded + 1;
            (match progress with
            | Some ppf when acc.n_expanded mod 10_000 = 0 ->
              report_progress ppf ~t0 ~label:"stack" ~depth:stack ~frontier:stack
                acc
            | Some _ | None -> ());
            acc.peak <- max acc.peak stack;
            List.iter
              (fun (plan, s', viols) ->
                if acc.viol = None then
                  let sc =
                    {
                      s_plan = plan;
                      s_key = S.key s';
                      s_violations = viols;
                      s_terminal = S.terminal s';
                      s_pending = S.pending s';
                    }
                  in
                  match admit acc ~prefix ~level ~depth sc with
                  | None -> ()
                  | Some prefix' -> go s' prefix' (level + 1) (stack + 1))
              (S.expand sys)
          end
        in
        if expand_root then go root [] 0 1;
        finish acc)
      ()
  in
  emit_metrics recorder r;
  r
