(** Canonical state keys modulo process permutation.

    Anonymous processes are interchangeable: permuting the process indices
    of a reachable global state yields a reachable global state with a
    permuted behaviour tree, and every property we check (agreement,
    validity, environment admissibility, weak-set axioms) is
    permutation-invariant. The explorer therefore identifies states by the
    {e multiset} of per-process views — a sorted list of view strings —
    rather than the tuple, which is the anonymity symmetry reduction
    (DESIGN.md §10).

    A view must capture everything that influences the process's future
    observable behaviour: local algorithm state, the message it just
    broadcast, undelivered in-flight messages, its crash fate under the
    (fixed, per-exploration) crash schedule, and any per-process
    environment marker (the ESS stable source). Views are built from the
    run-independent [state_key]/[msg_key] serializations of lib/core, so
    keys agree across domains and interner scopes. *)

val key : round:int -> global:string -> views:string list -> string
(** The canonical key: round and permutation-invariant global facts,
    followed by the sorted view multiset. *)

val hash_hex : string -> string
(** 64-bit FNV-1a of a key, in hex — the compact fingerprint used in
    reports. Keys themselves are the visited-set members (no collision
    risk); hashes are for display. *)

(** Incremental multiset digests — the fast path behind {!key}.

    Each process view is hashed under two independent FNV-1a streams and
    the per-view hashes are combined by wrapping 64-bit addition; the pair
    of sums is a commutative function of the view multiset, i.e. exactly
    as permutation-invariant as sorting the views. A per-slot cache keyed
    on {!Anon_giraf.Step_core} version counters means only the processes
    whose views changed since the parent state are re-rendered and
    re-hashed.

    The digest key is 128 bits, not injective like the string {!key}; two
    salted streams push accidental collisions far below the state counts
    any exploration reaches (test_step_core checks digests against full
    recomputation on every sampled node). *)
module Digest : sig
  type t

  val create : n:int -> t
  (** All slots empty (version [-1]); refresh every slot before reading
      {!key}. *)

  val copy : t -> t
  (** Independent snapshot — branch the digest alongside the system. *)

  val refresh : t -> slot:int -> version:int -> (unit -> string) -> unit
  (** [refresh t ~slot ~version render] replaces [slot]'s contribution
      with the hash of [render ()] — skipped entirely when the cached
      version already matches, so [render] must be a pure function of the
      versioned view. *)

  (** A dual-stream hash accumulator fed piecewise, so hot callers can
      hash a view without building the intermediate string. Feeding a
      view's pieces must reproduce the rendered string byte for byte
      ([feed_int] matches [string_of_int]); test_step_core pins
      [key = full_key] to keep the two paths honest. *)
  type stream

  val stream : unit -> stream
  val feed_char : stream -> char -> unit
  val feed_string : stream -> string -> unit
  val feed_int : stream -> int -> unit

  val refresh_stream : t -> slot:int -> version:int -> (stream -> unit) -> unit
  (** [refresh] with a piecewise-fed view: replaces [slot]'s contribution
      with the sums accumulated by [fill] on a fresh stream. *)

  val key : t -> round:int -> global:string -> string
  (** The digest key over the current slot contributions. *)

  val full_key : round:int -> global:string -> views:string list -> string
  (** Reference implementation: the same key computed from scratch over
      explicit views. [key] after refreshing every slot must equal
      [full_key] on the slots' rendered views — the property
      test_step_core pins. *)
end
