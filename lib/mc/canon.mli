(** Canonical state keys modulo process permutation.

    Anonymous processes are interchangeable: permuting the process indices
    of a reachable global state yields a reachable global state with a
    permuted behaviour tree, and every property we check (agreement,
    validity, environment admissibility, weak-set axioms) is
    permutation-invariant. The explorer therefore identifies states by the
    {e multiset} of per-process views — a sorted list of view strings —
    rather than the tuple, which is the anonymity symmetry reduction
    (DESIGN.md §10).

    A view must capture everything that influences the process's future
    observable behaviour: local algorithm state, the message it just
    broadcast, undelivered in-flight messages, its crash fate under the
    (fixed, per-exploration) crash schedule, and any per-process
    environment marker (the ESS stable source). Views are built from the
    run-independent [state_key]/[msg_key] serializations of lib/core, so
    keys agree across domains and interner scopes. *)

val key : round:int -> global:string -> views:string list -> string
(** The canonical key: round and permutation-invariant global facts,
    followed by the sorted view multiset. *)

val hash_hex : string -> string
(** 64-bit FNV-1a of a key, in hex — the compact fingerprint used in
    reports. Keys themselves are the visited-set members (no collision
    risk); hashes are for display. *)
