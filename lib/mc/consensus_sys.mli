(** Consensus algorithms as explorable systems.

    Wraps any key-serializable {!Anon_giraf.Intf.ALGORITHM} into an
    {!Explore.SYSTEM} whose transitions replicate {!Anon_giraf.Runner.Make}
    exactly, phase-shifted so the adversary's plan is the branch label: a
    node is the system {e after} the compute phase of iteration [k]
    (round-[k] messages produced, round-[k] crash events latched), and one
    step applies a round-[k] delivery plan, marks the crashers, and runs the
    compute phase of iteration [k+1]. Decisions feed
    {!Anon_consensus.Invariants.Consensus} online, so a violating schedule
    is reported at the transition that commits it.

    The crash schedule is fixed per exploration (enumerated outside, see
    {!Mc}), which keeps the static [correct] set — and therefore the
    environment obligations — identical to what {!Anon_giraf.Runner} and
    {!Anon_giraf.Checker} would use when the witness is replayed. *)

module type MODEL = sig
  include Anon_giraf.Intf.ALGORITHM

  val state_key : state -> string
  (** Run-independent canonical serialization (equal iff states equal). *)

  val msg_key : msg -> string
end

type spec = {
  inputs : Anon_kernel.Value.t list;
  crash : Anon_giraf.Crash.t;
  churn : Anon_giraf.Churn.t;
      (** Join/leave schedule, fixed per exploration like [crash]. A
          leaver's state and mail are discarded; a rejoiner re-initializes
          from its original input (anonymity leaves nothing to recover).
          Churners are exempt from the online agreement/termination
          obligations, mirroring {!Anon_giraf.Checker.check_consensus}. *)
  env : Anon_giraf.Env.t;  (** Environment whose admissible plans are enumerated. *)
  max_delay : int;  (** {!Plan_enum} late-arrival horizon ([1] is WLOG here). *)
  armed : bool;  (** Also branch on one inadmissible plan per demanding round. *)
}

val make : (module MODEL) -> spec -> (module Explore.SYSTEM)
(** @raise Invalid_argument when [inputs] size disagrees with [crash] or
    [churn], or when a pid both crashes and churns. *)

val make_probe : (module MODEL) -> spec -> (module Explore.SYSTEM_DEBUG)
(** Same system with the pid-indexed {!Explore.SYSTEM_DEBUG.snapshot}
    rendering, for the runner-vs-checker differential test. *)
