(** The weak-set service (Alg. 4) as an explorable system.

    Mirrors {!Anon_giraf.Service_runner.Make} phase-shifted the same way as
    {!Consensus_sys}: a node is the system after the compute phase of
    iteration [k]; one step delivers the round-[k] messages per the plan,
    marks the crashers, runs the round-[k] client-operation phase (one
    operation per unblocked client, on the service-runner logical clock:
    computes at [2k], operations at [2k + 1]), and computes iteration
    [k+1], detecting [add] completions. Each completed [get] is judged
    online against {!Anon_consensus.Invariants.Weak_set}.

    The workload is {!Anon_chaos.Scenario.mc_workload} — deterministic and
    pid-pinned, so emitted witnesses replay through the chaos path
    unchanged. *)

type spec = {
  n : int;
  crash : Anon_giraf.Crash.t;
  env : Anon_giraf.Env.t;
  max_delay : int;
      (** Late-arrival horizon. Unlike the consensus algorithms, Alg. 4
          reads late messages (fresh inbox), so values above [1] genuinely
          enlarge the explored behaviour. *)
  armed : bool;
  ops_per_client : int;
}

val make : spec -> (module Explore.SYSTEM)
(** @raise Invalid_argument when [n] disagrees with [crash]. *)

val make_probe : spec -> (module Explore.SYSTEM_DEBUG)
(** Same system with the pid-indexed {!Explore.SYSTEM_DEBUG.snapshot}
    rendering, for the runner-vs-checker differential test. *)
