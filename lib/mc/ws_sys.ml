open Anon_kernel
module G = Anon_giraf
module S = Anon_consensus.Weak_set_ms
module Inv = Anon_consensus.Invariants

type spec = {
  n : int;
  crash : G.Crash.t;
  env : G.Env.t;
  max_delay : int;
  armed : bool;
  ops_per_client : int;
}

module Make (Cfg : sig
  val spec : spec
end) =
struct
  let spec = Cfg.spec
  let n = spec.n

  let () =
    if G.Crash.n spec.crash <> n then
      invalid_arg "Ws_sys.make: n/crash size mismatch"

  let correct = G.Crash.correct spec.crash

  let workload =
    Anon_chaos.Scenario.mc_workload ~n ~ops_per_client:spec.ops_per_client

  type live = {
    st : S.state;
    out : S.msg;
    inflight : (int * int * S.msg) list;  (* (arrival, sent, msg), arrival >= round *)
    script : (int * G.Service_runner.op_spec) list;
    blocked : Value.t option;  (* value of the pending (blocking) add *)
  }

  type proc = Crashed | Live of live

  type sys = {
    round : int;  (** Node = system after the compute phase of iteration [round]. *)
    procs : proc array;
    crashing_now : G.Crash.event list;
    inv : Inv.Weak_set.t;
  }

  (* The service runner filters crash events only on the crashed flag
     (services never halt). *)
  let crash_events_at ~round procs =
    List.filter
      (fun (ev : G.Crash.event) ->
        match procs.(ev.pid) with Live _ -> true | Crashed -> false)
      (G.Crash.crashing_at spec.crash ~round)

  let init () =
    let procs =
      Array.init n (fun p ->
          let st, m = S.initialize () in
          Live
            {
              st;
              out = m;
              inflight = [];
              script = Option.value ~default:[] (List.assoc_opt p workload);
              blocked = None;
            })
    in
    {
      round = 1;
      procs;
      crashing_now = crash_events_at ~round:1 procs;
      inv = Inv.Weak_set.create ();
    }

  let crashing_pids s = List.map (fun (ev : G.Crash.event) -> ev.pid) s.crashing_now

  let ctx s =
    let crashing = crashing_pids s in
    let alive =
      List.filter
        (fun p ->
          (match s.procs.(p) with Live _ -> true | Crashed -> false)
          && not (List.mem p crashing))
        (List.init n Fun.id)
    in
    { G.Adversary.round = s.round; senders = alive; obligated = alive; correct; alive }

  (* One transition: round-[k] deliveries per plan, crashers die, the
     round-[k] operation phase runs (one op per unblocked live client, in
     pid order, reading the post-compute state — adds invoked first, gets
     judged after every invocation of the phase is recorded), then every
     survivor computes iteration [k+1], completing adds whose BLOCK flag
     cleared. *)
  let step s (plan : G.Adversary.plan) =
    let k = s.round in
    let additions = Array.make n [] in
    let eligible q =
      q >= 0 && q < n && match s.procs.(q) with Live _ -> true | Crashed -> false
    in
    let deliver ~sender ~msg (d : G.Adversary.delivery) =
      if d.receiver <> sender && eligible d.receiver then begin
        let arrival = max d.arrival k in
        additions.(d.receiver) <- (arrival, k, msg) :: additions.(d.receiver)
      end
    in
    let crashing = crashing_pids s in
    let non_crashing_alive =
      List.filter (fun q -> not (List.mem q crashing)) (List.init n Fun.id)
    in
    Array.iteri
      (fun p proc ->
        match proc with
        | Crashed -> ()
        | Live { out; _ } -> (
          additions.(p) <- (k, k, out) :: additions.(p);
          let ev =
            List.find_opt (fun (e : G.Crash.event) -> e.pid = p) s.crashing_now
          in
          let scripted = List.assoc_opt p plan.G.Adversary.deliveries in
          match (ev, scripted) with
          | None, None -> ()
          | None, Some ds | Some { broadcast = G.Crash.Broadcast_subset; _ }, Some ds
            ->
            List.iter (fun d -> deliver ~sender:p ~msg:out d) ds
          | Some { broadcast = G.Crash.Silent; _ }, _ -> ()
          | Some { broadcast = G.Crash.Broadcast_all; _ }, _ ->
            List.iter
              (fun q ->
                if eligible q then
                  deliver ~sender:p ~msg:out { G.Adversary.receiver = q; arrival = k })
              non_crashing_alive
          | Some { broadcast = G.Crash.Broadcast_subset; _ }, None -> ()))
      s.procs;
    let procs' =
      Array.mapi
        (fun p proc -> if List.mem p crashing then Crashed else proc)
        s.procs
    in
    (* Operation phase of round [k] (op_time = 2k + 1). *)
    let inv = ref s.inv in
    let gets = ref [] in
    let op_time = (2 * k) + 1 in
    for p = 0 to n - 1 do
      match procs'.(p) with
      | Crashed -> ()
      | Live ({ st; script; blocked = None; _ } as l) -> (
        match script with
        | (start, op) :: rest when start <= k -> (
          match op with
          | G.Service_runner.Do_get ->
            gets := (p, S.get st) :: !gets;
            procs'.(p) <- Live { l with script = rest }
          | G.Service_runner.Do_add v ->
            inv := Inv.Weak_set.invoke_add !inv v;
            procs'.(p) <- Live { l with st = S.add st v; script = rest; blocked = Some v }
          | G.Service_runner.Do_add_with f ->
            let v = f (S.get st) in
            inv := Inv.Weak_set.invoke_add !inv v;
            procs'.(p) <- Live { l with st = S.add st v; script = rest; blocked = Some v }
          )
        | _ -> ())
      | Live _ -> ()
    done;
    let viols =
      List.concat_map
        (fun (p, result) ->
          Inv.Weak_set.observe_get !inv ~client:p
            ~correct:(G.Crash.is_correct spec.crash p)
            ~invoked_at:op_time ~result)
        (List.rev !gets)
    in
    let crashing_next = crash_events_at ~round:(k + 1) procs' in
    (* Compute phase of iteration [k+1] (compute_time = 2(k+1)). *)
    for p = 0 to n - 1 do
      match procs'.(p) with
      | Crashed -> ()
      | Live ({ st; inflight; blocked; _ } as l) ->
        let all = inflight @ List.rev additions.(p) in
        let ready, rest = List.partition (fun (a, _, _) -> a <= k) all in
        let ready =
          List.sort
            (fun (a1, s1, m1) (a2, s2, m2) ->
              match Int.compare a1 a2 with
              | 0 -> (
                match Int.compare s1 s2 with 0 -> S.msg_compare m1 m2 | c -> c)
              | c -> c)
            ready
        in
        let current =
          List.sort_uniq S.msg_compare
            (List.filter_map
               (fun (_, sent, m) -> if sent = k then Some m else None)
               ready)
        in
        let fresh = List.map (fun (_, sent, m) -> (sent, m)) ready in
        let st', m = S.compute st ~round:k ~inbox:{ G.Intf.current; fresh } in
        let blocked' =
          match blocked with
          | Some v when not (S.add_pending st') ->
            inv := Inv.Weak_set.complete_add !inv v ~time:(2 * (k + 1));
            None
          | other -> other
        in
        procs'.(p) <- Live { l with st = st'; out = m; inflight = rest; blocked = blocked' }
    done;
    ( { round = k + 1; procs = procs'; crashing_now = crashing_next; inv = !inv },
      viols )

  let apply s plan = fst (step s plan)

  let expand s =
    let pspec =
      {
        G.Plan_enum.env = spec.env;
        stable = None;
        max_delay = spec.max_delay;
        crashing = crashing_pids s;
        include_inadmissible = spec.armed;
      }
    in
    List.map
      (fun (c : G.Plan_enum.choice) ->
        let s', vs = step s c.plan in
        let vs =
          if c.admissible then vs else G.Checker.No_source { round = s.round } :: vs
        in
        (c.plan, s', vs))
      (G.Plan_enum.enumerate pspec (ctx s))

  let fate p =
    match G.Crash.crash_round spec.crash p with
    | None -> ""
    | Some r ->
      let kind =
        match
          List.find_opt
            (fun (e : G.Crash.event) -> e.pid = p)
            (G.Crash.events spec.crash)
        with
        | Some { broadcast = G.Crash.Silent; _ } -> 's'
        | Some { broadcast = G.Crash.Broadcast_all; _ } -> 'a'
        | Some { broadcast = G.Crash.Broadcast_subset; _ } | None -> 'b'
      in
      Printf.sprintf "c%d%c" r kind

  let pp_op buf (start, op) =
    Buffer.add_string buf
      (match op with
      | G.Service_runner.Do_get -> Printf.sprintf "%dG" start
      | G.Service_runner.Do_add v -> Printf.sprintf "%dA%s" start (Value.to_string v)
      | G.Service_runner.Do_add_with _ -> Printf.sprintf "%dF" start)

  let key s =
    let views =
      List.init n (fun p ->
          match s.procs.(p) with
          | Crashed -> "X"
          | Live { st; out; inflight; script; blocked } ->
            let fl =
              List.sort compare
                (List.map (fun (a, sent, m) -> (a, sent, S.msg_key m)) inflight)
            in
            let b = Buffer.create 64 in
            Buffer.add_string b (S.state_key st);
            Buffer.add_string b "|m:";
            Buffer.add_string b (S.msg_key out);
            Buffer.add_char b '|';
            Buffer.add_string b (fate p);
            (match blocked with
            | Some v ->
              Buffer.add_string b "|b:";
              Buffer.add_string b (Value.to_string v)
            | None -> ());
            Buffer.add_string b "|w:";
            List.iter (fun o -> pp_op b o) script;
            List.iter
              (fun (a, sent, mk) ->
                Buffer.add_string b (Printf.sprintf "|i:%d@%d=%s" sent a mk))
              fl;
            Buffer.contents b)
    in
    let set_str set =
      String.concat "," (List.map Value.to_string (Value.Set.elements set))
    in
    let global =
      Printf.sprintf "inv:%s/comp:%s"
        (set_str (Inv.Weak_set.invoked s.inv))
        (set_str (Inv.Weak_set.completed_values s.inv))
    in
    Canon.key ~round:s.round ~global ~views

  (* The explored workload is finite: once every live client's script is
     drained and no add is blocked, no transition can complete another
     operation, so no future get exists to judge — the branch is closed. *)
  let terminal s =
    Array.for_all
      (function Crashed -> true | Live { script; blocked; _ } -> script = [] && blocked = None)
      s.procs

  let pending s =
    List.filter
      (fun p ->
        match s.procs.(p) with
        | Crashed -> false
        | Live { blocked; _ } -> blocked <> None)
      (List.init n Fun.id)
end

let make spec =
  (module Make (struct
    let spec = spec
  end) : Explore.SYSTEM)
