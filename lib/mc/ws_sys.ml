open Anon_kernel
module G = Anon_giraf
module S = Anon_consensus.Weak_set_ms
module Inv = Anon_consensus.Invariants

type spec = {
  n : int;
  crash : G.Crash.t;
  env : G.Env.t;
  max_delay : int;
  armed : bool;
  ops_per_client : int;
}

module Make (Cfg : sig
  val spec : spec
end) =
struct
  module Core = G.Step_core.Service (S)

  let spec = Cfg.spec
  let n = spec.n

  let () =
    if G.Crash.n spec.crash <> n then
      invalid_arg "Ws_sys.make: n/crash size mismatch"

  let workload =
    Anon_chaos.Scenario.mc_workload ~n ~ops_per_client:spec.ops_per_client

  let fate_str =
    Array.init n (fun p ->
        match G.Crash.crash_round spec.crash p with
        | None -> ""
        | Some r ->
          let kind =
            match
              List.find_opt
                (fun (e : G.Crash.event) -> e.pid = p)
                (G.Crash.events spec.crash)
            with
            | Some { broadcast = G.Crash.Silent; _ } -> 's'
            | Some { broadcast = G.Crash.Broadcast_all; _ } -> 'a'
            | Some { broadcast = G.Crash.Broadcast_subset; _ } | None -> 'b'
          in
          Printf.sprintf "c%d%c" r kind)

  type sys = {
    core : Core.t;  (** Node = core after the compute phase of iteration [round]. *)
    inv : Inv.Weak_set.t;
    digest : Canon.Digest.t;
    memo : G.Plan_enum.memo;  (** See {!Consensus_sys}. *)
  }

  let init () =
    let core =
      Core.create ~n ~crash:spec.crash ~churn:(G.Churn.none ~n) ~env:spec.env
        ~workload
    in
    Core.begin_round core;
    ignore (Core.compute core : S.msg G.Dispatch.outbound list);
    {
      core;
      inv = Inv.Weak_set.create ();
      digest = Canon.Digest.create ~n;
      memo = G.Plan_enum.memo ();
    }

  (* One transition: round-[k] deliveries per plan and crasher marking
     (shared Step_core/Dispatch semantics), the round-[k] operation phase
     (op_time = 2k + 1; adds invoked as the phase runs, gets judged after
     every invocation of the phase is recorded), then round [k+1]'s
     compute, completing adds whose BLOCK flag cleared at
     compute_time = 2(k+1). *)
  let step s (plan : G.Adversary.plan) =
    let core = Core.copy s.core in
    ignore (Core.deliver core ~plan ~crash_rng:(Rng.make 0) : G.Dispatch.stats);
    let k = Core.round core in
    let inv = ref s.inv in
    let gets = ref [] in
    Core.ops core
      ~on_get:(fun ~pid ~result -> gets := (pid, result) :: !gets)
      ~on_add:(fun ~pid:_ ~value -> inv := Inv.Weak_set.invoke_add !inv value);
    let op_time = (2 * k) + 1 in
    let viols =
      List.concat_map
        (fun (p, result) ->
          Inv.Weak_set.observe_get !inv ~client:p
            ~correct:(G.Crash.is_correct spec.crash p)
            ~invoked_at:op_time ~result)
        (List.rev !gets)
    in
    Core.begin_round core;
    ignore
      (Core.compute core ~on_add_complete:(fun ~pid:_ ~value ~invoked_round:_ ->
           inv := Inv.Weak_set.complete_add !inv value ~time:(2 * (k + 1)))
        : S.msg G.Dispatch.outbound list);
    ( { core; inv = !inv; digest = Canon.Digest.copy s.digest; memo = s.memo },
      viols )

  let apply s plan = fst (step s plan)
  let ctx s = Core.ctx s.core

  let expand s =
    let pspec =
      {
        G.Plan_enum.env = spec.env;
        (* The weak-set explorations never latch an ESS stable source (the
           service scenarios run the simpler environments); keep the
           enumeration unconstrained as before the Step_core refactor. *)
        stable = None;
        max_delay = spec.max_delay;
        crashing = Core.crashing_pids s.core;
        include_inadmissible = spec.armed;
      }
    in
    let round = Core.round s.core in
    List.map
      (fun (c : G.Plan_enum.choice) ->
        let s', vs = step s c.plan in
        let vs =
          if c.admissible then vs else G.Checker.No_source { round } :: vs
        in
        (c.plan, s', vs))
      (G.Plan_enum.enumerate_memo s.memo pspec (ctx s))

  let pp_op buf (start, op) =
    Buffer.add_string buf
      (match op with
      | G.Step_core.Do_get -> Printf.sprintf "%dG" start
      | G.Step_core.Do_add v -> Printf.sprintf "%dA%s" start (Value.to_string v)
      | G.Step_core.Do_add_with _ -> Printf.sprintf "%dF" start)

  let render_view core p =
    match Core.fate core p with
    | G.Step_core.Crashed -> "X"
    | G.Step_core.Halted | G.Step_core.Away -> "?"  (* unreachable: no churn, no halting *)
    | G.Step_core.Live ->
      let fl =
        List.sort
          (fun (a1, s1, (k1 : string)) (a2, s2, k2) ->
            match Int.compare a1 a2 with
            | 0 -> (
              match Int.compare s1 s2 with 0 -> String.compare k1 k2 | c -> c)
            | c -> c)
          (List.map
             (fun (a, sent, m) -> (a, sent, S.msg_key m))
             (Core.inflight core p))
      in
      let b = Buffer.create 64 in
      (match Core.state core p with
      | Some st -> Buffer.add_string b (S.state_key st)
      | None -> ());
      Buffer.add_string b "|m:";
      (match Core.out core p with
      | Some out -> Buffer.add_string b (S.msg_key out)
      | None -> ());
      Buffer.add_char b '|';
      Buffer.add_string b fate_str.(p);
      (match Core.blocked core p with
      | Some (v, _) ->
        Buffer.add_string b "|b:";
        Buffer.add_string b (Value.to_string v)
      | None -> ());
      Buffer.add_string b "|w:";
      List.iter (fun o -> pp_op b o) (Core.script core p);
      List.iter
        (fun (a, sent, mk) ->
          Buffer.add_string b "|i:";
          Buffer.add_string b (string_of_int sent);
          Buffer.add_char b '@';
          Buffer.add_string b (string_of_int a);
          Buffer.add_char b '=';
          Buffer.add_string b mk)
        fl;
      Buffer.contents b

  let set_str set =
    String.concat "," (List.map Value.to_string (Value.Set.elements set))

  let global s =
    Printf.sprintf "inv:%s/comp:%s"
      (set_str (Inv.Weak_set.invoked s.inv))
      (set_str (Inv.Weak_set.completed_values s.inv))

  let key s =
    for p = 0 to n - 1 do
      Canon.Digest.refresh s.digest ~slot:p ~version:(Core.version s.core p)
        (fun () -> render_view s.core p)
    done;
    Canon.Digest.key s.digest ~round:(Core.round s.core) ~global:(global s)

  let key_full s =
    Canon.Digest.full_key ~round:(Core.round s.core) ~global:(global s)
      ~views:(List.init n (render_view s.core))

  (* The explored workload is finite: once every live client's script is
     drained and no add is blocked, no transition can complete another
     operation, so no future get exists to judge — the branch is closed. *)
  let terminal s =
    let closed = ref true in
    for p = 0 to n - 1 do
      if
        Core.fate s.core p = G.Step_core.Live
        && (Core.script s.core p <> [] || Core.blocked s.core p <> None)
      then closed := false
    done;
    !closed

  let pending s =
    List.filter
      (fun p ->
        Core.fate s.core p = G.Step_core.Live && Core.blocked s.core p <> None)
      (List.init n Fun.id)

  (* Pid-indexed rendering for the differential test: fate, state key,
     blocked add and remaining script per process, then the invoked /
     completed add sets. *)
  let snapshot s =
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "r%d\n" (Core.round s.core));
    for p = 0 to n - 1 do
      match Core.fate s.core p with
      | G.Step_core.Crashed -> Buffer.add_string b (Printf.sprintf "p%d X\n" p)
      | G.Step_core.Halted | G.Step_core.Away ->
        Buffer.add_string b (Printf.sprintf "p%d ?\n" p)
      | G.Step_core.Live ->
        let sk =
          match Core.state s.core p with Some st -> S.state_key st | None -> "?"
        in
        Buffer.add_string b (Printf.sprintf "p%d L %s b:" p sk);
        Buffer.add_string b
          (match Core.blocked s.core p with
          | Some (v, _) -> Value.to_string v
          | None -> "-");
        Buffer.add_string b " w:";
        List.iter (fun o -> pp_op b o) (Core.script s.core p);
        Buffer.add_char b '\n'
    done;
    Buffer.add_string b (global s);
    Buffer.contents b
end

let make spec =
  (module Make (struct
    let spec = spec
  end) : Explore.SYSTEM)

let make_probe spec =
  (module Make (struct
    let spec = spec
  end) : Explore.SYSTEM_DEBUG)
