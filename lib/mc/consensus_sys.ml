open Anon_kernel
module G = Anon_giraf
module Inv = Anon_consensus.Invariants

module type MODEL = sig
  include G.Intf.ALGORITHM

  val state_key : state -> string
  val msg_key : msg -> string
end

type spec = {
  inputs : Value.t list;
  crash : G.Crash.t;
  churn : G.Churn.t;
  env : G.Env.t;
  max_delay : int;
  armed : bool;
}

module Make
    (A : MODEL) (Cfg : sig
      val spec : spec
    end) =
struct
  let spec = Cfg.spec
  let n = G.Crash.n spec.crash

  let () =
    if List.length spec.inputs <> n then
      invalid_arg "Consensus_sys.make: inputs/crash size mismatch";
    if G.Churn.n spec.churn <> n then
      invalid_arg "Consensus_sys.make: churn/crash size mismatch";
    List.iter
      (fun (ev : G.Churn.event) ->
        if G.Crash.crash_round spec.crash ev.pid <> None then
          invalid_arg
            (Printf.sprintf "Consensus_sys.make: p%d both crashes and churns" ev.pid))
      (G.Churn.events spec.churn)

  let inputs = Array.of_list spec.inputs
  let correct = G.Crash.correct spec.crash
  let correct_stayers = List.filter (G.Churn.is_stayer spec.churn) correct

  type live = { st : A.state; out : A.msg; inflight : (int * int * A.msg) list }
  (** [inflight]: [(arrival, sent, msg)] not yet drained. At a node for
      iteration [k], every arrival is [>= k] — buckets [M_i\[j\]] for
      [j < k] are never re-read by any algorithm, so the in-flight list is
      the whole mailbox. *)

  type proc =
    | Crashed
    | Halted
    | Away  (** Churned out; state and mail discarded (see Runner). *)
    | Live of live

  type sys = {
    round : int;  (** Node = system after the compute phase of iteration [round]. *)
    procs : proc array;
    crashing_now : G.Crash.event list;
        (** Round-[round] crash events, filtered against the crashed/halted
            flags exactly when Runner's loop iteration would filter them. *)
    inv : Inv.Consensus.t;
    stable : int option;  (** ESS: the current segment's stable source. *)
  }

  let crash_events_at ~round procs =
    List.filter
      (fun (ev : G.Crash.event) ->
        match procs.(ev.pid) with
        | Live _ -> true
        | Crashed | Halted | Away -> false)
      (G.Crash.crashing_at spec.crash ~round)

  let init () =
    let procs =
      Array.init n (fun p ->
          if G.Churn.away spec.churn ~pid:p ~round:1 then Away
          else
            let st, m = A.initialize inputs.(p) in
            Live { st; out = m; inflight = [] })
    in
    {
      round = 1;
      procs;
      crashing_now = crash_events_at ~round:1 procs;
      inv =
        Inv.Consensus.create
          ~agreement_exempt:
            (List.map (fun (ev : G.Churn.event) -> ev.pid)
               (G.Churn.events spec.churn))
          ~inputs:spec.inputs ();
      stable = None;
    }

  let crashing_pids s = List.map (fun (ev : G.Crash.event) -> ev.pid) s.crashing_now

  (* In Runner every live non-halted process broadcasts, so the normal
     senders, the obligated receivers and the alive receivers all coincide:
     the live processes not crashing this round. *)
  let ctx s =
    let crashing = crashing_pids s in
    let alive =
      List.filter
        (fun p ->
          (match s.procs.(p) with
          | Live _ -> true
          | Crashed | Halted | Away -> false)
          && not (List.mem p crashing))
        (List.init n Fun.id)
    in
    { G.Adversary.round = s.round; senders = alive; obligated = alive; correct; alive }

  (* One transition, mirroring one Runner loop iteration phase-shifted:
     deliver the round-[k] messages per [plan] (Dispatch semantics: arrivals
     clamped to [>= k], receivers must be live, a plan entry pins a
     [Broadcast_subset] crasher's partial broadcast), mark the crashers
     crashed, latch the round-[k+1] crash events against the flags as they
     stand before the next compute, then run iteration [k+1]'s compute on
     every survivor in pid order, feeding decisions to the invariants. *)
  let step s (plan : G.Adversary.plan) =
    let k = s.round in
    let additions = Array.make n [] in
    let eligible q =
      q >= 0 && q < n
      &&
      match s.procs.(q) with Live _ -> true | Crashed | Halted | Away -> false
    in
    let deliver ~sender ~msg (d : G.Adversary.delivery) =
      if d.receiver <> sender && eligible d.receiver then begin
        let arrival = max d.arrival k in
        additions.(d.receiver) <- (arrival, k, msg) :: additions.(d.receiver)
      end
    in
    let non_crashing_alive =
      List.filter (fun q -> not (List.mem q (crashing_pids s))) (List.init n Fun.id)
    in
    Array.iteri
      (fun p proc ->
        match proc with
        | Crashed | Halted | Away -> ()
        | Live { out; _ } -> (
          additions.(p) <- (k, k, out) :: additions.(p);
          let ev =
            List.find_opt (fun (e : G.Crash.event) -> e.pid = p) s.crashing_now
          in
          let scripted = List.assoc_opt p plan.G.Adversary.deliveries in
          match (ev, scripted) with
          | None, None -> ()
          | None, Some ds | Some { broadcast = G.Crash.Broadcast_subset; _ }, Some ds
            ->
            List.iter (fun d -> deliver ~sender:p ~msg:out d) ds
          | Some { broadcast = G.Crash.Silent; _ }, _ -> ()
          | Some { broadcast = G.Crash.Broadcast_all; _ }, _ ->
            List.iter
              (fun q ->
                if eligible q then
                  deliver ~sender:p ~msg:out { G.Adversary.receiver = q; arrival = k })
              non_crashing_alive
          | Some { broadcast = G.Crash.Broadcast_subset; _ }, None ->
            (* An unscripted partial broadcast would need the runner's RNG;
               Plan_enum always emits an entry for a crasher (possibly
               empty), so this branch is unreachable from [expand]. *)
            ()))
      s.procs;
    let crashing = crashing_pids s in
    let procs' =
      Array.mapi
        (fun p proc -> if List.mem p crashing then Crashed else proc)
        s.procs
    in
    let crashing_next = crash_events_at ~round:(k + 1) procs' in
    (* Churn transitions of Runner round [k+1] happen before its compute
       phase: a leaver skips the round-[k] compute entirely (its state and
       mail are gone — anonymity parks nothing under which to resume), a
       rejoiner re-initializes from its original input with an empty
       mailbox and broadcasts a fresh round-[k+1] message. Halted processes
       ignore churn; crashers never churn (disjoint by validation). *)
    List.iter
      (fun (ev : G.Churn.event) ->
        match procs'.(ev.pid) with
        | Live _ -> procs'.(ev.pid) <- Away
        | Crashed | Halted | Away -> ())
      (G.Churn.leaving_at spec.churn ~round:(k + 1));
    let rejoining =
      List.filter_map
        (fun (ev : G.Churn.event) ->
          match procs'.(ev.pid) with
          | Away -> Some ev.pid
          | Crashed | Halted | Live _ -> None)
        (G.Churn.rejoining_at spec.churn ~round:(k + 1))
    in
    let decided_now = ref [] in
    for p = 0 to n - 1 do
      match procs'.(p) with
      | Crashed | Halted -> ()
      | Away ->
        if List.mem p rejoining then begin
          let st, m = A.initialize inputs.(p) in
          procs'.(p) <- Live { st; out = m; inflight = [] }
        end
      | Live { st; inflight; _ } ->
        let all = inflight @ List.rev additions.(p) in
        let ready, rest = List.partition (fun (a, _, _) -> a <= k) all in
        let ready =
          List.sort
            (fun (a1, s1, m1) (a2, s2, m2) ->
              match Int.compare a1 a2 with
              | 0 -> (
                match Int.compare s1 s2 with 0 -> A.msg_compare m1 m2 | c -> c)
              | c -> c)
            ready
        in
        let current =
          List.sort_uniq A.msg_compare
            (List.filter_map
               (fun (_, sent, m) -> if sent = k then Some m else None)
               ready)
        in
        let fresh = List.map (fun (_, sent, m) -> (sent, m)) ready in
        let st', m, dec = A.compute st ~round:k ~inbox:{ G.Intf.current; fresh } in
        (match dec with
        | Some v ->
          decided_now := (p, v) :: !decided_now;
          procs'.(p) <- Halted
        | None -> procs'.(p) <- Live { st = st'; out = m; inflight = rest })
    done;
    let inv = ref s.inv in
    let viols = ref [] in
    List.iter
      (fun (p, v) ->
        let inv', vs = Inv.Consensus.observe !inv ~pid:p ~value:v in
        inv := inv';
        viols := !viols @ vs)
      (List.rev !decided_now);
    let stable =
      match spec.env with
      | G.Env.Ess { gst } when k >= gst -> (
        match plan.G.Adversary.source with Some _ as src -> src | None -> s.stable)
      | _ -> s.stable
    in
    ( {
        round = k + 1;
        procs = procs';
        crashing_now = crashing_next;
        inv = !inv;
        stable;
      },
      !viols )

  let apply s plan = fst (step s plan)

  let expand s =
    let pspec =
      {
        G.Plan_enum.env = spec.env;
        stable = s.stable;
        max_delay = spec.max_delay;
        crashing = crashing_pids s;
        include_inadmissible = spec.armed;
      }
    in
    (* The marker attached to an armed (inadmissible) plan names the
       obligation the all-late plan breaks in this environment — exactly
       what the offline checker will report for the replayed trace. *)
    let armed_violations (c : G.Adversary.ctx) =
      let round = c.round in
      match spec.env with
      | G.Env.Dynamic { stability; _ } ->
        let window = ((round - 1) / stability) + 1 in
        let correct_senders =
          List.filter (fun p -> List.mem p c.correct) c.senders
        in
        if G.Env.pulse ~stability ~round then
          [
            G.Checker.No_root
              {
                round;
                window;
                senders =
                  List.map
                    (fun p -> (p, List.filter (fun q -> q <> p) c.obligated))
                    correct_senders;
              };
          ]
        else
          List.map
            (fun p ->
              G.Checker.Stability_violation
                {
                  round;
                  window;
                  sender = p;
                  missing = List.filter (fun q -> q <> p) c.obligated;
                })
            correct_senders
      | G.Env.Sync | G.Env.Ms | G.Env.Es _ | G.Env.Ess _ | G.Env.Async ->
        [ G.Checker.No_source { round } ]
    in
    let c0 = ctx s in
    List.map
      (fun (c : G.Plan_enum.choice) ->
        let s', vs = step s c.plan in
        let vs = if c.admissible then vs else armed_violations c0 @ vs in
        (c.plan, s', vs))
      (G.Plan_enum.enumerate pspec c0)

  let fate p =
    match G.Crash.crash_round spec.crash p with
    | None -> ""
    | Some r ->
      let kind =
        match
          List.find_opt
            (fun (e : G.Crash.event) -> e.pid = p)
            (G.Crash.events spec.crash)
        with
        | Some { broadcast = G.Crash.Silent; _ } -> 's'
        | Some { broadcast = G.Crash.Broadcast_all; _ } -> 'a'
        | Some { broadcast = G.Crash.Broadcast_subset; _ } | None -> 'b'
      in
      Printf.sprintf "c%d%c" r kind

  (* Like [fate]: the scheduled churn window is part of a process's view
     key, so symmetry reduction never merges processes whose futures
     differ. *)
  let churn_fate p =
    match G.Churn.event spec.churn p with
    | None -> ""
    | Some { leave; rejoin; _ } ->
      Printf.sprintf "l%d%s" leave
        (match rejoin with Some r -> Printf.sprintf "j%d" r | None -> "")

  let key s =
    let views =
      List.init n (fun p ->
          match s.procs.(p) with
          | Crashed -> "X"
          | Halted -> "H"
          | Away -> "A|" ^ churn_fate p
          | Live { st; out; inflight } ->
            let fl =
              List.sort compare
                (List.map (fun (a, sent, m) -> (a, sent, A.msg_key m)) inflight)
            in
            let b = Buffer.create 64 in
            Buffer.add_string b (A.state_key st);
            Buffer.add_string b "|m:";
            Buffer.add_string b (A.msg_key out);
            Buffer.add_char b '|';
            Buffer.add_string b (fate p);
            Buffer.add_string b (churn_fate p);
            if s.stable = Some p then Buffer.add_string b "|S";
            List.iter
              (fun (a, sent, mk) ->
                Buffer.add_string b (Printf.sprintf "|i:%d@%d=%s" sent a mk))
              fl;
            Buffer.contents b)
    in
    let decided =
      List.sort_uniq Value.compare (List.map snd (Inv.Consensus.decided s.inv))
    in
    Canon.key ~round:s.round
      ~global:(String.concat "," (List.map Value.to_string decided))
      ~views

  (* Liveness is owed to correct stayers only (cf. Runner/Checker): a
     churner may rejoin after everyone halted and run alone forever. *)
  let terminal s =
    List.for_all
      (fun p ->
        match s.procs.(p) with
        | Halted -> true
        | Crashed | Away | Live _ -> false)
      correct_stayers

  let pending s =
    List.filter
      (fun p ->
        match s.procs.(p) with
        | Halted -> false
        | Crashed | Away | Live _ -> true)
      correct_stayers
end

let make (module A : MODEL) spec =
  (module Make
            (A)
            (struct
              let spec = spec
            end) : Explore.SYSTEM)
