open Anon_kernel
module G = Anon_giraf
module Inv = Anon_consensus.Invariants

module type MODEL = sig
  include G.Intf.ALGORITHM

  val state_key : state -> string
  val msg_key : msg -> string
end

type spec = {
  inputs : Value.t list;
  crash : G.Crash.t;
  churn : G.Churn.t;
  env : G.Env.t;
  max_delay : int;
  armed : bool;
}

module Make
    (A : MODEL) (Cfg : sig
      val spec : spec
    end) =
struct
  module Core = G.Step_core.Consensus (A)

  let spec = Cfg.spec
  let n = G.Crash.n spec.crash

  let () =
    if List.length spec.inputs <> n then
      invalid_arg "Consensus_sys.make: inputs/crash size mismatch";
    if G.Churn.n spec.churn <> n then
      invalid_arg "Consensus_sys.make: churn/crash size mismatch";
    List.iter
      (fun (ev : G.Churn.event) ->
        if G.Crash.crash_round spec.crash ev.pid <> None then
          invalid_arg
            (Printf.sprintf "Consensus_sys.make: p%d both crashes and churns" ev.pid))
      (G.Churn.events spec.churn)

  let inputs = Array.of_list spec.inputs

  (* The scheduled crash and churn windows are part of a process's view
     key, so symmetry reduction never merges processes whose futures
     differ. Both are fixed per exploration — render once. *)
  let fate_str =
    Array.init n (fun p ->
        match G.Crash.crash_round spec.crash p with
        | None -> ""
        | Some r ->
          let kind =
            match
              List.find_opt
                (fun (e : G.Crash.event) -> e.pid = p)
                (G.Crash.events spec.crash)
            with
            | Some { broadcast = G.Crash.Silent; _ } -> 's'
            | Some { broadcast = G.Crash.Broadcast_all; _ } -> 'a'
            | Some { broadcast = G.Crash.Broadcast_subset; _ } | None -> 'b'
          in
          Printf.sprintf "c%d%c" r kind)

  let churn_fate_str =
    Array.init n (fun p ->
        match G.Churn.event spec.churn p with
        | None -> ""
        | Some { leave; rejoin; _ } ->
          Printf.sprintf "l%d%s" leave
            (match rejoin with Some r -> Printf.sprintf "j%d" r | None -> ""))

  type sys = {
    core : Core.t;  (** Node = core after the compute phase of iteration [round]. *)
    inv : Inv.Consensus.t;
    digest : Canon.Digest.t;
    memo : G.Plan_enum.memo;
        (** Plan-enumeration cache. Shared along the whole search at
            [jobs = 1] (states of one exploration repeat their enumeration
            signature constantly); per-replay at [jobs > 1], where tasks
            must not share tables across domains. *)
  }

  let init () =
    let core =
      Core.create ~inputs ~crash:spec.crash ~churn:spec.churn ~env:spec.env
    in
    Core.begin_round core;
    (* Iteration 1 is [initialize] everywhere — no process can decide. *)
    ignore (Core.compute core : A.msg G.Dispatch.outbound list);
    {
      core;
      inv =
        Inv.Consensus.create
          ~agreement_exempt:
            (List.map (fun (ev : G.Churn.event) -> ev.pid)
               (G.Churn.events spec.churn))
          ~inputs:spec.inputs ();
      digest = Canon.Digest.create ~n;
      memo = G.Plan_enum.memo ();
    }

  (* One transition, phase-shifted against the runner's loop: deliver the
     round-[k] messages per [plan] and mark the crashers (Dispatch
     semantics, shared with Runner through Step_core), advance to round
     [k+1] (churn transitions, crash latch), then run iteration [k+1]'s
     compute, feeding decisions to the invariants. The crash RNG is never
     consumed: Plan_enum scripts every crasher's deliveries. *)
  let step s (plan : G.Adversary.plan) =
    let core = Core.copy s.core in
    ignore (Core.deliver core ~plan ~crash_rng:(Rng.make 0) : G.Dispatch.stats);
    Core.begin_round core;
    let inv = ref s.inv in
    let viols = ref [] in
    ignore
      (Core.compute core ~on_decide:(fun ~pid ~round:_ ~value ->
           let inv', vs = Inv.Consensus.observe !inv ~pid ~value in
           inv := inv';
           viols := !viols @ vs)
        : A.msg G.Dispatch.outbound list);
    ( { core; inv = !inv; digest = Canon.Digest.copy s.digest; memo = s.memo },
      !viols )

  let apply s plan = fst (step s plan)
  let ctx s = Core.ctx s.core

  let expand s =
    let pspec =
      {
        G.Plan_enum.env = spec.env;
        stable = Core.stable s.core;
        max_delay = spec.max_delay;
        crashing = Core.crashing_pids s.core;
        include_inadmissible = spec.armed;
      }
    in
    (* The marker attached to an armed (inadmissible) plan names the
       obligation the all-late plan breaks in this environment — exactly
       what the offline checker will report for the replayed trace. *)
    let armed_violations (c : G.Adversary.ctx) =
      let round = c.round in
      match spec.env with
      | G.Env.Dynamic { stability; _ } ->
        let window = ((round - 1) / stability) + 1 in
        let correct_senders =
          List.filter (fun p -> List.mem p c.correct) c.senders
        in
        if G.Env.pulse ~stability ~round then
          [
            G.Checker.No_root
              {
                round;
                window;
                senders =
                  List.map
                    (fun p -> (p, List.filter (fun q -> q <> p) c.obligated))
                    correct_senders;
              };
          ]
        else
          List.map
            (fun p ->
              G.Checker.Stability_violation
                {
                  round;
                  window;
                  sender = p;
                  missing = List.filter (fun q -> q <> p) c.obligated;
                })
            correct_senders
      | G.Env.Sync | G.Env.Ms | G.Env.Es _ | G.Env.Ess _ | G.Env.Async ->
        [ G.Checker.No_source { round } ]
    in
    let c0 = ctx s in
    List.map
      (fun (c : G.Plan_enum.choice) ->
        let s', vs = step s c.plan in
        let vs = if c.admissible then vs else armed_violations c0 @ vs in
        (c.plan, s', vs))
      (G.Plan_enum.enumerate_memo s.memo pspec c0)

  let render_view core p =
    match Core.fate core p with
    | G.Step_core.Crashed -> "X"
    | G.Step_core.Halted -> "H"
    | G.Step_core.Away -> "A|" ^ churn_fate_str.(p)
    | G.Step_core.Live ->
      let fl =
        List.sort
          (fun (a1, s1, (k1 : string)) (a2, s2, k2) ->
            match Int.compare a1 a2 with
            | 0 -> (
              match Int.compare s1 s2 with 0 -> String.compare k1 k2 | c -> c)
            | c -> c)
          (List.map
             (fun (a, sent, m) -> (a, sent, A.msg_key m))
             (Core.inflight core p))
      in
      let b = Buffer.create 64 in
      (match Core.state core p with
      | Some st -> Buffer.add_string b (A.state_key st)
      | None -> ());
      Buffer.add_string b "|m:";
      (match Core.out core p with
      | Some out -> Buffer.add_string b (A.msg_key out)
      | None -> ());
      Buffer.add_char b '|';
      Buffer.add_string b fate_str.(p);
      Buffer.add_string b churn_fate_str.(p);
      if Core.stable core = Some p then Buffer.add_string b "|S";
      List.iter
        (fun (a, sent, mk) ->
          Buffer.add_string b "|i:";
          Buffer.add_string b (string_of_int sent);
          Buffer.add_char b '@';
          Buffer.add_string b (string_of_int a);
          Buffer.add_char b '=';
          Buffer.add_string b mk)
        fl;
      Buffer.contents b

  (* [render_view] fed straight into the digest streams, piece by piece —
     the hot path behind [key] skips the intermediate view string. Must
     mirror [render_view] byte for byte; [key = key_full] along sampled
     walks (test_step_core) pins the two. *)
  let fill_view core p st =
    match Core.fate core p with
    | G.Step_core.Crashed -> Canon.Digest.feed_char st 'X'
    | G.Step_core.Halted -> Canon.Digest.feed_char st 'H'
    | G.Step_core.Away ->
      Canon.Digest.feed_string st "A|";
      Canon.Digest.feed_string st churn_fate_str.(p)
    | G.Step_core.Live ->
      let fl =
        List.sort
          (fun (a1, s1, (k1 : string)) (a2, s2, k2) ->
            match Int.compare a1 a2 with
            | 0 -> (
              match Int.compare s1 s2 with 0 -> String.compare k1 k2 | c -> c)
            | c -> c)
          (List.map
             (fun (a, sent, m) -> (a, sent, A.msg_key m))
             (Core.inflight core p))
      in
      (match Core.state core p with
      | Some stv -> Canon.Digest.feed_string st (A.state_key stv)
      | None -> ());
      Canon.Digest.feed_string st "|m:";
      (match Core.out core p with
      | Some out -> Canon.Digest.feed_string st (A.msg_key out)
      | None -> ());
      Canon.Digest.feed_char st '|';
      Canon.Digest.feed_string st fate_str.(p);
      Canon.Digest.feed_string st churn_fate_str.(p);
      if Core.stable core = Some p then Canon.Digest.feed_string st "|S";
      List.iter
        (fun (a, sent, mk) ->
          Canon.Digest.feed_string st "|i:";
          Canon.Digest.feed_int st sent;
          Canon.Digest.feed_char st '@';
          Canon.Digest.feed_int st a;
          Canon.Digest.feed_char st '=';
          Canon.Digest.feed_string st mk)
        fl

  let global s =
    let decided =
      List.sort_uniq Value.compare (List.map snd (Inv.Consensus.decided s.inv))
    in
    String.concat "," (List.map Value.to_string decided)

  let key s =
    for p = 0 to n - 1 do
      Canon.Digest.refresh_stream s.digest ~slot:p
        ~version:(Core.version s.core p) (fill_view s.core p)
    done;
    Canon.Digest.key s.digest ~round:(Core.round s.core) ~global:(global s)

  (* Reference key, bypassing the per-slot version cache — the
     differential test pins [key = key_full] along sampled walks. *)
  let key_full s =
    Canon.Digest.full_key ~round:(Core.round s.core) ~global:(global s)
      ~views:(List.init n (render_view s.core))

  (* Liveness is owed to correct stayers only (cf. Runner/Checker): a
     churner may rejoin after everyone halted and run alone forever. *)
  let terminal s = Core.undecided_correct_stayers s.core = []
  let pending s = Core.undecided_correct_stayers s.core

  (* Pid-indexed rendering for the differential test: fate and state key
     per process, then the decisions recorded so far. *)
  let snapshot s =
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "r%d\n" (Core.round s.core));
    for p = 0 to n - 1 do
      Buffer.add_string b
        (match Core.fate s.core p with
        | G.Step_core.Crashed -> Printf.sprintf "p%d X\n" p
        | G.Step_core.Halted -> Printf.sprintf "p%d H\n" p
        | G.Step_core.Away -> Printf.sprintf "p%d A\n" p
        | G.Step_core.Live -> (
          match Core.state s.core p with
          | Some st -> Printf.sprintf "p%d L %s\n" p (A.state_key st)
          | None -> Printf.sprintf "p%d L ?\n" p))
    done;
    let decided =
      List.sort compare
        (List.map
           (fun (p, v) -> (p, Value.to_string v))
           (Inv.Consensus.decided s.inv))
    in
    Buffer.add_string b
      ("decided "
      ^ String.concat ";"
          (List.map (fun (p, v) -> Printf.sprintf "p%d=%s" p v) decided));
    Buffer.contents b
end

let make (module A : MODEL) spec =
  (module Make
            (A)
            (struct
              let spec = spec
            end) : Explore.SYSTEM)

let make_probe (module A : MODEL) spec =
  (module Make
            (A)
            (struct
              let spec = spec
            end) : Explore.SYSTEM_DEBUG)
