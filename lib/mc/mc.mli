(** Top-level bounded model checking: crash-schedule enumeration, per-
    schedule exploration, aggregation, verdicts, and witness emission.

    Crash schedules are enumerated {e outside} the per-schedule exploration
    (every subset of at most [crashes] processes, each with a crash round in
    [1..rounds] and [Broadcast_subset] behaviour — the partial-broadcast
    fates are then branched by {!Anon_giraf.Plan_enum}, which subsumes the
    clean-stop and silent kinds). Fixing the schedule per exploration keeps
    the static correct set, and hence the environment obligations, exactly
    what the runners and the checker use on replay. *)

type algo =
  | Es  (** Alg. 2 under its ES environment (or any [env] you pass). *)
  | Ess  (** Alg. 3. *)
  | Ms_weakset  (** Alg. 4 as a service (weak-set axioms). *)
  | Es_unguarded
      (** Ablation ([Es_consensus.No_written_old_guard]). Exploration shows
          it stays safe on {e admissible} schedules at small [n] —
          complementing experiment A2, where the agreement split needs the
          literal-§2.3 schedule the strengthened checker rejects. No
          chaos-replay witness exists for this variant. *)

val algo_name : algo -> string
val algo_of_string : string -> (algo, string) result

type search = Bfs | Dfs

type config = {
  algo : algo;
  n : int;
  env : Anon_giraf.Env.t;
  rounds : int;  (** Depth bound (adversary plan choices per branch). *)
  crashes : int;  (** Max number of crashing processes. *)
  churn : int;
      (** Max number of churning (join/leave) processes; schedules are
          enumerated like crashes (leave round in [1..rounds], rejoin in
          [(leave, rounds]] or never) and crossed with the crash schedules
          under pid-disjointness. Rejected for {!Ms_weakset}. *)
  max_delay : int;
  search : search;
  armed : bool;  (** Include one inadmissible plan per demanding round. *)
  jobs : int option;  (** BFS only; as {!Anon_exec.Pool.resolve}. *)
  seed : int;  (** Input-assignment seed (shared with {!Anon_chaos.Scenario.inputs}). *)
  ops_per_client : int;  (** [Ms_weakset] workload size. *)
}

type verdict =
  | Violation  (** A safety/environment violation was found. *)
  | Verified
      (** Every branch of every schedule reached a terminal state within
          the bound: exhaustive up to the crash budget and plan
          granularity. *)
  | Bounded
      (** No violation, but some branches were cut by the depth bound
          (e.g. a non-deciding run under an MS-only environment). *)

val verdict_name : verdict -> string

type report = {
  config : config;
  schedules : int;  (** Crash x churn schedules explored. *)
  stats : Explore.stats;  (** Summed over schedules. *)
  violation :
    (Anon_giraf.Crash.event list * Anon_giraf.Churn.event list * Explore.witness)
    option;
  non_deciding :
    (Anon_giraf.Crash.event list * Anon_giraf.Churn.event list * Explore.bounded)
    option;
  witness : Witness.t option;
      (** Replay-validated packaging of [violation] (or, failing that, of
          [non_deciding]); [None] for {!Es_unguarded}. *)
  verdict : verdict;
}

val reduction_factor : report -> float
(** [raw_states / canonical_states] — the symmetry-reduction payoff. *)

val run :
  ?recorder:Anon_obs.Recorder.t ->
  ?progress:Format.formatter ->
  ?out:string ->
  config ->
  report
(** Explore schedules in order, stopping at the first violating one.
    When [out] is given and a witness exists, the repro JSON is written
    there. Emits [mc.*] metrics through [recorder]; the witness replay
    (when any) also runs under [recorder], so an attached
    {!Anon_obs.Trace} sink captures the counterexample timeline.
    [progress] (e.g. [Format.err_formatter] under [anonc mc --progress])
    prints one live line per crash schedule and per BFS level — frontier
    depth, canonical states/sec, dedup hit-rate. *)

val pp_report : Format.formatter -> report -> unit
val report_json : report -> Anon_obs.Json.t
