let key ~round ~global ~views =
  let views = List.sort String.compare views in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "r=";
  Buffer.add_string buf (string_of_int round);
  Buffer.add_char buf '#';
  Buffer.add_string buf global;
  List.iter
    (fun v ->
      Buffer.add_char buf '\x01';
      Buffer.add_string buf v)
    views;
  Buffer.contents buf

let hash_hex s = Anon_kernel.Hashing.(to_hex (hash_string s))

module Digest = struct
  module H = Anon_kernel.Hashing.Fast

  (* Two independent FNV-style streams per view (the second offset basis
     is the standard one salted with a byte), combined across processes by
     wrapping addition. Addition is commutative, so the pair of sums
     identifies the view {e multiset} — the same quotient the sorted
     string key takes — and replacing one view is a subtract-and-add,
     which is what makes per-process updates O(changed processes). The
     native-int streams keep the per-byte fold allocation-free. *)
  let basis2 = H.byte H.init '\xa5'

  (* A dual-stream accumulator, fed piecewise so callers can hash a view
     without first materializing it as a string. Feeding the pieces of a
     view must produce the same bytes as rendering it — the differential
     suite pins [key = full_key] to hold that invariant. *)
  type stream = { mutable a : int; mutable b : int }

  let stream () = { a = H.init; b = basis2 }

  let feed_char st c =
    let c = Char.code c in
    st.a <- (st.a lxor c) * H.prime;
    st.b <- (st.b lxor c) * H.prime

  let feed_string st s =
    for i = 0 to String.length s - 1 do
      let c = Char.code (String.unsafe_get s i) in
      st.a <- (st.a lxor c) * H.prime;
      st.b <- (st.b lxor c) * H.prime
    done

  (* Decimal digits, matching [string_of_int] byte for byte. *)
  let rec feed_nat st n =
    if n >= 10 then feed_nat st (n / 10);
    feed_char st (Char.unsafe_chr (48 + (n mod 10)))

  let feed_int st n =
    if n < 0 then begin
      feed_char st '-';
      feed_nat st (-n)
    end
    else feed_nat st n

  (* One pass over the view feeding both streams. *)
  let view_hashes v =
    let st = stream () in
    feed_string st v;
    (st.a, st.b)

  type t = {
    versions : int array;  (* last refreshed Step_core version; -1 = never *)
    h1 : int array;
    h2 : int array;
    mutable sum1 : int;
    mutable sum2 : int;
  }

  let create ~n =
    {
      versions = Array.make n (-1);
      h1 = Array.make n 0;
      h2 = Array.make n 0;
      sum1 = 0;
      sum2 = 0;
    }

  let copy t =
    {
      versions = Array.copy t.versions;
      h1 = Array.copy t.h1;
      h2 = Array.copy t.h2;
      sum1 = t.sum1;
      sum2 = t.sum2;
    }

  let commit t ~slot ~version a b =
    t.sum1 <- t.sum1 - t.h1.(slot) + a;
    t.sum2 <- t.sum2 - t.h2.(slot) + b;
    t.h1.(slot) <- a;
    t.h2.(slot) <- b;
    t.versions.(slot) <- version

  let refresh t ~slot ~version render =
    if t.versions.(slot) <> version then begin
      let a, b = view_hashes (render ()) in
      commit t ~slot ~version a b
    end

  let refresh_stream t ~slot ~version fill =
    if t.versions.(slot) <> version then begin
      let st = stream () in
      fill st;
      commit t ~slot ~version st.a st.b
    end

  let render ~round ~global sum1 sum2 =
    let b = Buffer.create (String.length global + 24) in
    Buffer.add_string b (string_of_int round);
    Buffer.add_char b '#';
    Buffer.add_string b global;
    Buffer.add_char b '\x01';
    Buffer.add_int64_be b (Int64.of_int sum1);
    Buffer.add_int64_be b (Int64.of_int sum2);
    Buffer.contents b

  let key t ~round ~global = render ~round ~global t.sum1 t.sum2

  let full_key ~round ~global ~views =
    let sum1 = ref 0 and sum2 = ref 0 in
    List.iter
      (fun v ->
        let a, b = view_hashes v in
        sum1 := !sum1 + a;
        sum2 := !sum2 + b)
      views;
    render ~round ~global !sum1 !sum2
end
