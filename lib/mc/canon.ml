let key ~round ~global ~views =
  let views = List.sort String.compare views in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "r=";
  Buffer.add_string buf (string_of_int round);
  Buffer.add_char buf '#';
  Buffer.add_string buf global;
  List.iter
    (fun v ->
      Buffer.add_char buf '\x01';
      Buffer.add_string buf v)
    views;
  Buffer.contents buf

let hash_hex s = Anon_kernel.Hashing.(to_hex (hash_string s))
