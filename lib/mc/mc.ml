open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module R = Anon_obs.Recorder
module M = Anon_obs.Metrics
module Json = Anon_obs.Json

type algo = Es | Ess | Ms_weakset | Es_unguarded

let algo_name = function
  | Es -> "es"
  | Ess -> "ess"
  | Ms_weakset -> "ms-weakset"
  | Es_unguarded -> "es-unguarded"

let algo_of_string = function
  | "es" -> Ok Es
  | "ess" -> Ok Ess
  | "ms-weakset" -> Ok Ms_weakset
  | "es-unguarded" -> Ok Es_unguarded
  | s -> Error (Printf.sprintf "unknown algorithm %S (es|ess|ms-weakset|es-unguarded)" s)

type search = Bfs | Dfs

type config = {
  algo : algo;
  n : int;
  env : G.Env.t;
  rounds : int;
  crashes : int;
  churn : int;
  max_delay : int;
  search : search;
  armed : bool;
  jobs : int option;
  seed : int;
  ops_per_client : int;
}

type verdict = Violation | Verified | Bounded

let verdict_name = function
  | Violation -> "violation"
  | Verified -> "verified"
  | Bounded -> "bounded"

type report = {
  config : config;
  schedules : int;
  stats : Explore.stats;
  violation : (G.Crash.event list * G.Churn.event list * Explore.witness) option;
  non_deciding : (G.Crash.event list * G.Churn.event list * Explore.bounded) option;
  witness : Witness.t option;
  verdict : verdict;
}

let reduction_factor r =
  if r.stats.Explore.canonical_states = 0 then 1.
  else float_of_int r.stats.Explore.raw_states /. float_of_int r.stats.Explore.canonical_states

(* --- crash-schedule enumeration --------------------------------------------- *)

let rec cartesian = function
  | [] -> [ [] ]
  | xs :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun x -> List.map (fun t -> x :: t) tails) xs

(* k-subsets of [0..n), lexicographic. *)
let rec combos k lo n =
  if k = 0 then [ [] ]
  else if lo >= n then []
  else
    List.map (fun rest -> lo :: rest) (combos (k - 1) (lo + 1) n) @ combos k (lo + 1) n

(* Churn schedules: every subset of at most [budget] processes, each with a
   leave round in [1..rounds] and either a rejoin round in (leave, rounds]
   or none (within the explored depth, "rejoins past the bound" and "never
   rejoins" coincide). Crossed with the crash schedules under a
   pid-disjointness filter (a crasher cannot churn, and vice versa). *)
let churn_schedules ~n ~budget ~rounds =
  let event_options pid =
    List.concat_map
      (fun leave ->
        { G.Churn.pid; leave; rejoin = None }
        :: List.filter_map
             (fun r ->
               if r > leave then Some { G.Churn.pid; leave; rejoin = Some r }
               else None)
             (List.init rounds (fun i -> i + 1)))
      (List.init rounds (fun i -> i + 1))
  in
  List.concat_map
    (fun k ->
      List.concat_map
        (fun pids -> cartesian (List.map event_options pids))
        (combos k 0 n))
    (List.init (budget + 1) Fun.id)

let crash_schedules ~n ~budget ~rounds =
  List.concat_map
    (fun k ->
      List.concat_map
        (fun pids ->
          List.map
            (List.map2
               (fun pid round ->
                 { G.Crash.pid; round; broadcast = G.Crash.Broadcast_subset })
               pids)
            (cartesian (List.map (fun _ -> List.init rounds (fun r -> r + 1)) pids)))
        (combos k 0 n))
    (List.init (budget + 1) Fun.id)

(* --- per-schedule system ----------------------------------------------------- *)

module Es_unguarded_model = struct
  include C.Es_consensus.No_written_old_guard

  let state_key = C.Es_consensus.state_key
  let msg_key = C.Es_consensus.msg_key
end

let system config ~inputs ~crash ~churn =
  let cspec model =
    Consensus_sys.make model
      {
        Consensus_sys.inputs;
        crash;
        churn;
        env = config.env;
        max_delay = config.max_delay;
        armed = config.armed;
      }
  in
  match config.algo with
  | Es -> cspec (module C.Es_consensus)
  | Es_unguarded -> cspec (module Es_unguarded_model)
  | Ess -> cspec (module C.Ess_consensus)
  | Ms_weakset ->
    Ws_sys.make
      {
        Ws_sys.n = config.n;
        crash;
        env = config.env;
        max_delay = config.max_delay;
        armed = config.armed;
        ops_per_client = config.ops_per_client;
      }

(* --- the run ------------------------------------------------------------------ *)

let run ?(recorder = R.off) ?progress ?out config =
  if config.n < 1 then invalid_arg "Mc.run: n must be >= 1";
  if config.rounds < 1 then invalid_arg "Mc.run: rounds must be >= 1";
  if config.crashes < 0 || config.crashes > config.n then
    invalid_arg "Mc.run: crashes must be in [0, n]";
  if config.churn < 0 || config.churn > config.n then
    invalid_arg "Mc.run: churn must be in [0, n]";
  if config.churn > 0 && config.algo = Ms_weakset then
    invalid_arg "Mc.run: churn is not supported for ms-weakset";
  (* The same derivation as Scenario.inputs, so an emitted witness (which
     carries only the seed) replays against identical proposals. *)
  let inputs =
    Rng.shuffle (Rng.make config.seed) (List.init config.n (fun i -> i + 1))
  in
  let explore sysmod =
    match config.search with
    | Bfs ->
      Explore.bfs ?jobs:config.jobs ~recorder ?progress ~depth:config.rounds
        sysmod
    | Dfs -> Explore.dfs ~recorder ?progress ~depth:config.rounds sysmod
  in
  let stats = ref Explore.zero_stats in
  let violation = ref None in
  let non_deciding = ref None in
  let schedules = ref 0 in
  let combined_schedules =
    let churn_scheds =
      churn_schedules ~n:config.n ~budget:config.churn ~rounds:config.rounds
    in
    List.concat_map
      (fun crash_events ->
        let crash_pids =
          List.map (fun (ev : G.Crash.event) -> ev.pid) crash_events
        in
        List.filter_map
          (fun churn_events ->
            if
              List.exists
                (fun (ev : G.Churn.event) -> List.mem ev.pid crash_pids)
                churn_events
            then None
            else Some (crash_events, churn_events))
          churn_scheds)
      (crash_schedules ~n:config.n ~budget:config.crashes ~rounds:config.rounds)
  in
  List.iter
    (fun (events, churn_events) ->
      if !violation = None then begin
        incr schedules;
        (match progress with
        | Some ppf ->
          Format.fprintf ppf "mc: schedule %d (crashes: %s; churn: %s)@." !schedules
            (match events with
            | [] -> "none"
            | evs ->
              String.concat ","
                (List.map
                   (fun (ev : G.Crash.event) ->
                     Printf.sprintf "p%d@r%d" ev.pid ev.round)
                   evs))
            (match churn_events with
            | [] -> "none"
            | evs ->
              String.concat ","
                (List.map
                   (fun (ev : G.Churn.event) ->
                     Printf.sprintf "p%d@r%d%s" ev.pid ev.leave
                       (match ev.rejoin with
                       | Some r -> Printf.sprintf "-r%d" r
                       | None -> ""))
                   evs))
        | None -> ());
        let crash = G.Crash.of_events ~n:config.n events in
        let churn = G.Churn.of_events ~n:config.n churn_events in
        let r = explore (system config ~inputs ~crash ~churn) in
        stats := Explore.add_stats !stats r.Explore.stats;
        (match r.Explore.violation with
        | Some w -> violation := Some (events, churn_events, w)
        | None -> ());
        match r.Explore.non_deciding with
        | Some b when !non_deciding = None ->
          non_deciding := Some (events, churn_events, b)
        | Some _ | None -> ()
      end)
    combined_schedules;
  let scen_algo =
    match config.algo with
    | Es -> Some Anon_chaos.Scenario.Es
    | Ess -> Some Anon_chaos.Scenario.Ess
    | Ms_weakset -> Some Anon_chaos.Scenario.Weak_set
    | Es_unguarded -> None
  in
  let witness =
    let build ~crashes ~churn ~plans ~mc_violations =
      Option.map
        (fun algo ->
          Witness.build ~recorder ~algo ~env:config.env ~n:config.n
            ~seed:config.seed ~ops_per_client:config.ops_per_client ~crashes
            ~churn ~plans ~mc_violations ())
        scen_algo
    in
    match (!violation, !non_deciding) with
    | Some (events, churn_events, w), _ ->
      build ~crashes:events ~churn:churn_events ~plans:w.Explore.w_plans
        ~mc_violations:w.Explore.w_violations
    | None, Some (events, churn_events, b) ->
      build ~crashes:events ~churn:churn_events ~plans:b.Explore.b_plans
        ~mc_violations:[]
    | None, None -> None
  in
  (match (out, witness) with
  | Some path, Some w -> Witness.write ~path w
  | _ -> ());
  let verdict =
    if !violation <> None then Violation
    else if !stats.Explore.bound_branches > 0 then Bounded
    else Verified
  in
  let report =
    {
      config;
      schedules = !schedules;
      stats = !stats;
      violation = !violation;
      non_deciding = !non_deciding;
      witness;
      verdict;
    }
  in
  if R.active recorder then begin
    M.incr ~by:report.schedules (R.counter recorder "mc.schedules");
    M.set_gauge (R.gauge recorder "mc.reduction_factor") (reduction_factor report);
    R.flush recorder
  end;
  report

(* --- rendering ---------------------------------------------------------------- *)

let pp_events ppf events =
  match events with
  | [] -> Format.fprintf ppf "none"
  | evs ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf (ev : G.Crash.event) -> Format.fprintf ppf "p%d@r%d" ev.pid ev.round)
      ppf evs

let pp_churn_events ppf events =
  match events with
  | [] -> Format.fprintf ppf "none"
  | evs ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf (ev : G.Churn.event) ->
        Format.fprintf ppf "p%d@r%d%s" ev.pid ev.leave
          (match ev.rejoin with
          | Some r -> Printf.sprintf "-r%d" r
          | None -> ""))
      ppf evs

let pp_report ppf r =
  let s = r.stats in
  Format.fprintf ppf "@[<v>mc %s: n=%d env=%a rounds<=%d crashes<=%d churn<=%d %s%s@,"
    (algo_name r.config.algo) r.config.n G.Env.pp r.config.env r.config.rounds
    r.config.crashes r.config.churn
    (match r.config.search with Bfs -> "bfs" | Dfs -> "dfs")
    (if r.config.armed then " (armed)" else "");
  Format.fprintf ppf
    "schedules=%d states: raw=%d canonical=%d dedup=%d (reduction %.2fx)@,"
    r.schedules s.Explore.raw_states s.Explore.canonical_states
    s.Explore.dedup_hits (reduction_factor r);
  Format.fprintf ppf
    "branches: terminal=%d at-bound=%d (blocked %d); expanded=%d peak-frontier=%d@,"
    s.Explore.terminal_branches s.Explore.bound_branches s.Explore.pending_at_bound
    s.Explore.expanded s.Explore.frontier_peak;
  (match r.violation with
  | Some (events, churn_events, w) ->
    Format.fprintf ppf "violation at depth %d (crashes: %a; churn: %a):@,"
      (List.length w.Explore.w_plans) pp_events events pp_churn_events
      churn_events;
    List.iter
      (fun v -> Format.fprintf ppf "  %a@," G.Checker.pp_violation v)
      w.Explore.w_violations
  | None -> ());
  (match r.non_deciding with
  | Some (events, churn_events, b) when r.violation = None ->
    Format.fprintf ppf
      "non-deciding witness at depth %d (crashes: %a; churn: %a; blocked: %s)@,"
      (List.length b.Explore.b_plans) pp_events events pp_churn_events
      churn_events
      (String.concat "," (List.map string_of_int b.Explore.b_blocked))
  | Some _ | None -> ());
  (match r.witness with
  | Some w ->
    Format.fprintf ppf "witness replay: %s@,"
      (if Witness.confirmed w then "confirmed by checker" else "no checker violation (bounded witness)")
  | None -> ());
  Format.fprintf ppf "verdict: %s@]" (verdict_name r.verdict)

let report_json r =
  let s = r.stats in
  Json.Obj
    [
      ("algo", Json.String (algo_name r.config.algo));
      ("n", Json.Int r.config.n);
      ("env", Json.String (G.Env.to_string r.config.env));
      ("rounds", Json.Int r.config.rounds);
      ("crashes", Json.Int r.config.crashes);
      ("churn", Json.Int r.config.churn);
      ("max_delay", Json.Int r.config.max_delay);
      ( "search",
        Json.String (match r.config.search with Bfs -> "bfs" | Dfs -> "dfs") );
      ("armed", Json.Bool r.config.armed);
      ("seed", Json.Int r.config.seed);
      ("schedules", Json.Int r.schedules);
      ("raw_states", Json.Int s.Explore.raw_states);
      ("canonical_states", Json.Int s.Explore.canonical_states);
      ("dedup_hits", Json.Int s.Explore.dedup_hits);
      ("expanded", Json.Int s.Explore.expanded);
      ("frontier_peak", Json.Int s.Explore.frontier_peak);
      ("terminal_branches", Json.Int s.Explore.terminal_branches);
      ("bound_branches", Json.Int s.Explore.bound_branches);
      ("pending_at_bound", Json.Int s.Explore.pending_at_bound);
      ("reduction_factor", Json.Float (reduction_factor r));
      ("verdict", Json.String (verdict_name r.verdict));
      ( "violations",
        Json.List
          (match r.violation with
          | None -> []
          | Some (_, _, w) ->
            List.map
              (fun v -> Json.String (Format.asprintf "%a" G.Checker.pp_violation v))
              w.Explore.w_violations) );
      ( "witness_confirmed",
        match r.witness with
        | None -> Json.Null
        | Some w -> Json.Bool (Witness.confirmed w) );
    ]
