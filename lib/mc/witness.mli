(** Counterexample emission: model-checker witnesses as chaos repro files.

    A witness (a plan prefix plus the exploration's crash schedule) is
    packaged as a {!Anon_chaos.Scenario.t} with an explicit [schedule], so
    the ordinary fuzz replay path ([anonc fuzz --replay]) re-executes it
    through {!Anon_giraf.Runner} / {!Anon_giraf.Service_runner} and the
    independent {!Anon_giraf.Checker}. The scenario is replayed {e at
    emission time} and the violations the replay actually produces are the
    ones stored in the file — replay determinism is therefore validated
    before the file exists, and [--replay] always reports a match. *)

type t = {
  case : Anon_chaos.Scenario.t;
  mc_violations : Anon_giraf.Checker.violation list;
      (** What the explorer reported at the violating transition ([] for a
          bounded non-deciding witness). *)
  replay_violations : Anon_giraf.Checker.violation list;
      (** What {!Anon_chaos.Fuzz.run_case} reports for [case] — the
          end-to-end confirmation (may include a trailing termination
          violation the online invariants don't track, or, for a bounded
          witness, consist of it entirely). *)
}

val build :
  ?recorder:Anon_obs.Recorder.t ->
  algo:Anon_chaos.Scenario.algo ->
  env:Anon_giraf.Env.t ->
  n:int ->
  seed:int ->
  ops_per_client:int ->
  crashes:Anon_giraf.Crash.event list ->
  ?churn:Anon_giraf.Churn.event list ->
  plans:Anon_giraf.Adversary.plan list ->
  mc_violations:Anon_giraf.Checker.violation list ->
  unit ->
  t
(** Package and immediately re-execute. [horizon = length plans + 1]: the
    recorded plans drive rounds [1..k] and the round past the prefix falls
    back to fully-timely, which is enough for the runner to perform the
    compute phase in which the violation (or the blocked progress)
    manifests. [recorder] observes the replay — attach a {!Anon_obs.Trace}
    sink to capture the counterexample's causal timeline. *)

val confirmed : t -> bool
(** The replay exhibits at least one checker violation. *)

val write : path:string -> t -> unit
(** Write the repro JSON ({!Anon_chaos.Fuzz.repro_json} format). *)
