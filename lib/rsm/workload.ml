open Anon_kernel

type t = {
  proposals : int;
  rate : float;
  skew : float;
  value_range : int;
  hot_value : Value.t;
  shards : int;
  seed : int;
}

let make ?(where = "Workload.make") ?(skew = 0.) ?(value_range = 16)
    ?(hot_value = 0) ?(shards = 1) ~proposals ~rate ~seed () =
  let fail what = Anon_giraf.Config_error.fail ~where what in
  if proposals < 1 then
    fail (Printf.sprintf "proposals must be >= 1 (got %d)" proposals);
  (* [not (rate > 0.)] also catches NaN, which fails every comparison. *)
  if Float.is_nan rate then fail "rate must not be NaN";
  if not (Float.is_finite rate && rate > 0.) then
    fail (Printf.sprintf "rate must be a finite positive number (got %g)" rate);
  if Float.is_nan skew then fail "skew must not be NaN";
  if not (skew >= 0. && skew <= 1.) then
    fail (Printf.sprintf "skew must be in [0,1] (got %g)" skew);
  if value_range < 1 then
    fail (Printf.sprintf "value-range must be >= 1 (got %d)" value_range);
  if shards < 1 then fail (Printf.sprintf "shards must be >= 1 (got %d)" shards);
  { proposals; rate; skew; value_range; hot_value; shards; seed }

type proposal = { id : int; arrival : int; value : Value.t }

let arrival t j = 1 + int_of_float (float_of_int j /. t.rate)

let value t j =
  (* A fresh splitmix stream per proposal id keeps the draw a pure
     function of [(seed, j)] — shard order and window scheduling cannot
     perturb it. *)
  let rng = Rng.make (t.seed lxor ((j + 1) * 0x9E3779B9)) in
  if Rng.chance rng t.skew then t.hot_value else Rng.int rng t.value_range

let shard_of t j = j mod t.shards

let shard_proposals t shard =
  let rec collect j acc =
    if j < 0 then acc
    else
      collect (j - t.shards) ({ id = j; arrival = arrival t j; value = value t j } :: acc)
  in
  let last =
    let r = (t.proposals - 1) mod t.shards in
    t.proposals - 1 - ((r - shard + t.shards) mod t.shards)
  in
  if shard >= t.shards || last < 0 then []
  else collect last []

let pp ppf t =
  Format.fprintf ppf
    "workload: %d proposals @@ %g/round, skew %g (hot=%d, range %d), %d shard%s, seed %d"
    t.proposals t.rate t.skew t.hot_value t.value_range t.shards
    (if t.shards = 1 then "" else "s")
    t.seed
