(** The open-loop load driver: a {!Workload} fanned out over sharded
    {!Rsm} log partitions.

    Shards are independent logs (disjoint proposal subsets, own seeds and
    fault schedules), so they run as {!Anon_exec.Pool} tasks. The shard
    count is a {e workload} parameter; [jobs] only chooses how many
    domains execute the fixed shard list, and {!Pool.map}'s
    submission-order results plus {!Anon_obs.Hist.merge}'s commutativity
    make the report — percentiles included — byte-identical at any
    [jobs] (DESIGN.md §14 has the argument).

    Decide latency is measured in {e rounds} per proposal, open-loop
    (queue wait included): [decided_round - arrival + 1]. Round-based
    latency and [decided / rounds] throughput are what the deterministic
    report and the anon-bench/3 saturation rows carry; wall-clock rates
    ([wall_s], [rsm.decide_latency_us]) are observability-only and never
    enter the report JSON. *)

type shard_report = {
  shard : int;
  proposals : int;
  decided : int;  (** Proposals whose instance decided. *)
  committed : int;  (** Proposals in the contiguous committed prefix. *)
  instances : int;
  stalled : int;
  rounds : int;
  broadcasts : int;
  instance_msgs : int;
  agreement_ok : bool;
  validity_ok : bool;
}

type report = {
  algo : string;
  env : string;  (** Environment label, e.g. ["es:5"]. *)
  n : int;
  window : int;
  batch : int;
  horizon : int;
  workload : Workload.t;
  shards : shard_report list;  (** Ascending shard id. *)
  decided : int;
  committed : int;
  stalled : int;  (** Stalled instances, summed over shards. *)
  rounds : int;  (** Max over shards — shards run concurrently. *)
  broadcasts : int;
  instance_msgs : int;
  throughput : float;  (** [decided / rounds] (proposals per round). *)
  mean_rounds : float;  (** Mean decide latency (rounds); [0.] if none decided. *)
  p50_rounds : float;
  p99_rounds : float;
  p999_rounds : float;
  agreement_ok : bool;
  validity_ok : bool;
  wall_s : float;  (** Wall-clock duration — excluded from {!to_json}. *)
  metrics : Anon_obs.Metrics.snapshot option;
      (** Merged per-shard [rsm.*] snapshots when run with [~metrics:true];
          excluded from {!to_json} (wall-clock histograms inside). *)
}

val to_json : report -> Anon_obs.Json.t
(** Deterministic report document (schema ["anon-load/1"]): pure function
    of the workload and configuration — byte-identical at any [jobs]. *)

val row_json : report -> Anon_obs.Json.t
(** One anon-bench/3 [load] row:
    [{"rate","proposals","throughput","p50_rounds","p99_rounds","p999_rounds"}]. *)

val render : Format.formatter -> report -> unit
(** Human-readable summary (includes the wall-clock rate). *)

val shard_seed : workload:Workload.t -> shard:int -> int
(** The base seed shard [s]'s {!Rsm} runs at — exported for tests that
    replay one shard sequentially. *)

module Make (A : Anon_giraf.Intf.ALGORITHM) : sig
  val run :
    ?jobs:int ->
    ?metrics:bool ->
    ?recorder:Anon_obs.Recorder.t ->
    ?env:string ->
    ?crash:(shard:int -> Anon_giraf.Crash.t) ->
    ?churn:(shard:int -> Anon_giraf.Churn.t) ->
    n:int ->
    window:int ->
    batch:int ->
    horizon:int ->
    adversary:(shard:int -> instance:int -> Anon_giraf.Adversary.t) ->
    Workload.t ->
    report
  (** Run every shard to completion (or [horizon]) and aggregate.
      [recorder] is coordinator-side: it receives the pool's [exec.*]
      metrics, and — when its sink is live — the full
      {!Anon_obs.Event.Commit} stream, re-emitted after the run in
      global round order (shards return their commit sequences; worker
      domains never touch the coordinator sink), deterministic at any
      [jobs]. Per-shard [rsm.*] metrics live in fresh worker registries
      and are merged into [report.metrics] when [metrics = true]
      (default false). [crash]/[churn] default to fault-free schedules.
      Validates the combined configuration through {!Rsm.validate}
      before any shard runs. *)
end
