module G = Anon_giraf
module Json = Anon_obs.Json
module Hist = Anon_obs.Hist

type shard_report = {
  shard : int;
  proposals : int;
  decided : int;
  committed : int;
  instances : int;
  stalled : int;
  rounds : int;
  broadcasts : int;
  instance_msgs : int;
  agreement_ok : bool;
  validity_ok : bool;
}

type report = {
  algo : string;
  env : string;
  n : int;
  window : int;
  batch : int;
  horizon : int;
  workload : Workload.t;
  shards : shard_report list;
  decided : int;
  committed : int;
  stalled : int;
  rounds : int;
  broadcasts : int;
  instance_msgs : int;
  throughput : float;
  mean_rounds : float;
  p50_rounds : float;
  p99_rounds : float;
  p999_rounds : float;
  agreement_ok : bool;
  validity_ok : bool;
  wall_s : float;
  metrics : Anon_obs.Metrics.snapshot option;
}

let shard_seed ~workload ~shard = workload.Workload.seed + (524_287 * shard)

let shard_json s =
  Json.Obj
    [
      ("shard", Json.Int s.shard);
      ("proposals", Json.Int s.proposals);
      ("decided", Json.Int s.decided);
      ("committed", Json.Int s.committed);
      ("instances", Json.Int s.instances);
      ("stalled", Json.Int s.stalled);
      ("rounds", Json.Int s.rounds);
      ("broadcasts", Json.Int s.broadcasts);
      ("instance_msgs", Json.Int s.instance_msgs);
      ("agreement_ok", Json.Bool s.agreement_ok);
      ("validity_ok", Json.Bool s.validity_ok);
    ]

let to_json r =
  let w = r.workload in
  Json.Obj
    [
      ("schema", Json.String "anon-load/1");
      ("algo", Json.String r.algo);
      ("env", Json.String r.env);
      ("n", Json.Int r.n);
      ("window", Json.Int r.window);
      ("batch", Json.Int r.batch);
      ("horizon", Json.Int r.horizon);
      ( "workload",
        Json.Obj
          [
            ("proposals", Json.Int w.Workload.proposals);
            ("rate", Json.Float w.Workload.rate);
            ("skew", Json.Float w.Workload.skew);
            ("value_range", Json.Int w.Workload.value_range);
            ("hot_value", Json.Int w.Workload.hot_value);
            ("shards", Json.Int w.Workload.shards);
            ("seed", Json.Int w.Workload.seed);
          ] );
      ("decided", Json.Int r.decided);
      ("committed", Json.Int r.committed);
      ("stalled_instances", Json.Int r.stalled);
      ("rounds", Json.Int r.rounds);
      ("broadcasts", Json.Int r.broadcasts);
      ("instance_msgs", Json.Int r.instance_msgs);
      ("throughput", Json.Float r.throughput);
      ("mean_rounds", Json.Float r.mean_rounds);
      ("p50_rounds", Json.Float r.p50_rounds);
      ("p99_rounds", Json.Float r.p99_rounds);
      ("p999_rounds", Json.Float r.p999_rounds);
      ("agreement_ok", Json.Bool r.agreement_ok);
      ("validity_ok", Json.Bool r.validity_ok);
      ("shards_detail", Json.List (List.map shard_json r.shards));
    ]

let row_json r =
  Json.Obj
    [
      ("rate", Json.Float r.workload.Workload.rate);
      ("proposals", Json.Int r.workload.Workload.proposals);
      ("throughput", Json.Float r.throughput);
      ("p50_rounds", Json.Float r.p50_rounds);
      ("p99_rounds", Json.Float r.p99_rounds);
      ("p999_rounds", Json.Float r.p999_rounds);
    ]

let render ppf r =
  let w = r.workload in
  Format.fprintf ppf
    "@[<v>load: %s (%s), n=%d window=%d batch=%d, %d shard%s@,%a@,"
    r.algo r.env r.n r.window r.batch w.Workload.shards
    (if w.Workload.shards = 1 then "" else "s")
    Workload.pp w;
  Format.fprintf ppf
    "  decided %d / committed %d of %d proposals in %d rounds (%d stalled instance%s)@,"
    r.decided r.committed w.Workload.proposals r.rounds r.stalled
    (if r.stalled = 1 then "" else "s");
  Format.fprintf ppf
    "  throughput %.3f proposals/round  latency (rounds) mean %.1f p50 %.1f p99 %.1f p99.9 %.1f@,"
    r.throughput r.mean_rounds r.p50_rounds r.p99_rounds r.p999_rounds;
  Format.fprintf ppf "  broadcasts %d (%d instance msgs, %.2f msgs/bundle)@,"
    r.broadcasts r.instance_msgs
    (if r.broadcasts = 0 then 0.
     else float_of_int r.instance_msgs /. float_of_int r.broadcasts);
  Format.fprintf ppf "  agreement %s  validity %s  wall %.2fs (%.0f proposals/s)@]@."
    (if r.agreement_ok then "ok" else "VIOLATED")
    (if r.validity_ok then "ok" else "VIOLATED")
    r.wall_s
    (if r.wall_s > 0. then float_of_int r.decided /. r.wall_s else 0.)

module Make (A : G.Intf.ALGORITHM) = struct
  module R = Rsm.Make (A)

  let run ?jobs ?(metrics = false) ?recorder ?(env = "?")
      ?(crash = fun ~shard:_ -> G.Crash.none ~n:0)
      ?(churn = fun ~shard:_ -> G.Churn.none ~n:0) ~n ~window ~batch ~horizon
      ~adversary workload =
    let shard_config shard =
      let crash =
        let c = crash ~shard in
        if G.Crash.n c = 0 then G.Crash.none ~n else c
      in
      let churn =
        let c = churn ~shard in
        if G.Churn.n c = 0 then G.Churn.none ~n else c
      in
      {
        Rsm.n;
        window;
        batch;
        horizon;
        seed = shard_seed ~workload ~shard;
        crash;
        churn;
        adversary = (fun instance -> adversary ~shard ~instance);
      }
    in
    (* Reject bad configurations before any shard spawns. *)
    let shard_ids = List.init workload.Workload.shards Fun.id in
    List.iter (fun s -> Rsm.validate ~where:"Load.run" (shard_config s)) shard_ids;
    (* Worker domains cannot share the coordinator's sink, so shards
       return their commit sequences and the coordinator re-emits them
       (globally round-ordered, hence deterministic at any [jobs]) —
       collected only when someone is listening. *)
    let commit_sink =
      match recorder with
      | Some r when not (Anon_obs.Sink.is_null (Anon_obs.Recorder.sink r)) ->
        Some r
      | Some _ | None -> None
    in
    let collect_commits = commit_sink <> None in
    let t0 = Anon_obs.Clock.now_ns () in
    let per_shard =
      Anon_exec.Pool.map ?jobs ?recorder
        (fun shard ->
          let reg =
            if metrics then Anon_obs.Metrics.create ()
            else Anon_obs.Metrics.disabled
          in
          let rec_ =
            if metrics then Anon_obs.Recorder.create ~metrics:reg ()
            else Anon_obs.Recorder.off
          in
          let commits = ref [] in
          let on_commit ~instance ~round ~value =
            if collect_commits then commits := (round, instance, value) :: !commits
          in
          let proposals = Workload.shard_proposals workload shard in
          let outcome =
            R.run ~recorder:rec_ ~on_commit (shard_config shard) ~proposals
          in
          let hist = Hist.create () in
          List.iter (Hist.observe hist) (Rsm.latencies outcome);
          let sr =
            {
              shard;
              proposals = List.length proposals;
              decided = outcome.Rsm.decided_proposals;
              committed = outcome.Rsm.committed_proposals;
              instances = List.length outcome.Rsm.instances;
              stalled = outcome.Rsm.stalled;
              rounds = outcome.Rsm.rounds;
              broadcasts = outcome.Rsm.broadcasts;
              instance_msgs = outcome.Rsm.instance_msgs;
              agreement_ok = outcome.Rsm.agreement_ok;
              validity_ok = outcome.Rsm.validity_ok;
            }
          in
          ( sr,
            hist,
            (if metrics then Some (Anon_obs.Metrics.snapshot reg) else None),
            List.rev !commits ))
        shard_ids
    in
    let wall_s = Anon_obs.Clock.(ns_to_s (since_ns t0)) in
    let shards = List.map (fun (sr, _, _, _) -> sr) per_shard in
    let latency = Hist.merge (List.map (fun (_, h, _, _) -> h) per_shard) in
    let snapshots = List.filter_map (fun (_, _, s, _) -> s) per_shard in
    (match commit_sink with
    | None -> ()
    | Some r ->
      (* Interleave the per-shard commit streams chronologically; ties
         break on (shard, instance), so the order is deterministic. *)
      List.concat_map
        (fun ((sr : shard_report), _, _, commits) ->
          List.map (fun (round, i, v) -> (round, sr.shard, i, v)) commits)
        per_shard
      |> List.sort compare
      |> List.iter (fun (round, _, instance, value) ->
             Anon_obs.Recorder.emit r (fun () ->
                 Anon_obs.Event.Commit { instance; round; value })));
    let sum f = List.fold_left (fun acc (s : shard_report) -> acc + f s) 0 shards in
    let decided = sum (fun s -> s.decided) in
    let rounds =
      List.fold_left (fun acc (s : shard_report) -> max acc s.rounds) 0 shards
    in
    let pct p =
      if Hist.is_empty latency then 0. else Hist.percentile latency p
    in
    {
      algo = A.name;
      env;
      n;
      window;
      batch;
      horizon;
      workload;
      shards;
      decided;
      committed = sum (fun s -> s.committed);
      stalled = sum (fun s -> s.stalled);
      rounds;
      broadcasts = sum (fun s -> s.broadcasts);
      instance_msgs = sum (fun s -> s.instance_msgs);
      throughput =
        (if rounds = 0 then 0. else float_of_int decided /. float_of_int rounds);
      mean_rounds = (if Hist.is_empty latency then 0. else Hist.mean latency);
      p50_rounds = pct 50.;
      p99_rounds = pct 99.;
      p999_rounds = pct 99.9;
      agreement_ok =
        List.for_all (fun (s : shard_report) -> s.agreement_ok) shards;
      validity_ok = List.for_all (fun (s : shard_report) -> s.validity_ok) shards;
      wall_s;
      metrics =
        (if metrics && snapshots <> [] then
           Some (Anon_obs.Metrics.merge snapshots)
         else None);
    }
end
