open Anon_kernel
module G = Anon_giraf

type config = {
  n : int;
  window : int;
  batch : int;
  horizon : int;
  seed : int;
  crash : G.Crash.t;
  churn : G.Churn.t;
  adversary : int -> G.Adversary.t;
}

let validate ?(where = "Rsm.validate") config =
  let fail what = G.Config_error.fail ~where what in
  if config.n < 1 then fail (Printf.sprintf "n must be >= 1 (got %d)" config.n);
  if config.window < 1 then
    fail (Printf.sprintf "window must be >= 1 (got %d)" config.window);
  if config.batch < 1 then
    fail (Printf.sprintf "batch must be >= 1 (got %d)" config.batch);
  if config.batch > config.window then
    fail
      (Printf.sprintf "batch must be <= window (got batch %d, window %d)"
         config.batch config.window);
  if config.horizon < 1 then
    fail (Printf.sprintf "horizon must be >= 1 (got %d)" config.horizon);
  if G.Crash.n config.crash <> config.n then
    fail
      (Printf.sprintf "n/crash size mismatch (n = %d, crash schedule for %d)"
         config.n (G.Crash.n config.crash));
  if G.Churn.n config.churn <> config.n then
    fail
      (Printf.sprintf "n/churn size mismatch (n = %d, churn schedule for %d)"
         config.n (G.Churn.n config.churn));
  List.iter
    (fun (ev : G.Churn.event) ->
      if G.Crash.crash_round config.crash ev.pid <> None then
        fail (Printf.sprintf "p%d both crashes and churns — pick one" ev.pid))
    (G.Churn.events config.churn)

let instance_seed ~seed ~instance = seed + (1_000_003 * instance)

type instance_result = {
  instance : int;
  first_proposal : int;
  batch_values : Value.t list;
  arrivals : int list;
  opened : int;
  decided : int option;
  value : Value.t option;
  decisions : (int * int * Value.t) list;
  local_rounds : int;
}

type outcome = {
  instances : instance_result list;
  commit : int;
  committed_proposals : int;
  decided_proposals : int;
  stalled : int;
  rounds : int;
  broadcasts : int;
  instance_msgs : int;
  agreement_ok : bool;
  validity_ok : bool;
}

let latencies outcome =
  List.concat_map
    (fun ir ->
      match ir.decided with
      | None -> []
      | Some d -> List.map (fun a -> float_of_int (d - a + 1)) ir.arrivals)
    outcome.instances

(* Schedules are declared in global rounds; an instance opened at global
   round [g0] lives in a local frame where [local = global - g0 + 1]. A
   crash that already happened is a silent crash at local round 1; an
   absence that already ended is no event at all. *)

let translate_crash ~g0 ~n crash =
  G.Crash.events crash
  |> List.map (fun (ev : G.Crash.event) ->
         let local = ev.round - g0 + 1 in
         if local >= 1 then { ev with round = local }
         else { ev with round = 1; broadcast = G.Crash.Silent })
  |> G.Crash.of_events ~n

let translate_churn ~g0 ~n churn =
  G.Churn.events churn
  |> List.filter_map (fun (ev : G.Churn.event) ->
         let leave = ev.leave - g0 + 1 in
         let rejoin = Option.map (fun r -> r - g0 + 1) ev.rejoin in
         match rejoin with
         | Some r when r <= 1 -> None
         | _ -> Some { ev with leave = max 1 leave; rejoin })
  |> G.Churn.of_events ~n

module Make (A : G.Intf.ALGORITHM) = struct
  module Core = G.Step_core.Consensus (A)
  module Tag = G.Instance_tag.Make (A)

  type live = {
    id : int;
    core : Core.t;
    adversary : G.Adversary.t;
    rng : Rng.t;
    crash_rng : Rng.t;
    opened : int;
    opened_ns : int64;
    first_proposal : int;
    batch_values : Value.t list;
    arrivals : int list;
    mutable decisions : (int * int * Value.t) list;  (* reversed *)
    mutable local_rounds : int;
  }

  let run ?(recorder = Anon_obs.Recorder.off) ?on_commit config ~proposals =
    let module R = Anon_obs.Recorder in
    let module M = Anon_obs.Metrics in
    let module E = Anon_obs.Event in
    validate ~where:"Rsm.run" config;
    let obs_on = R.active recorder in
    let m_proposals = R.counter recorder "rsm.proposals" in
    let m_instances = R.counter recorder "rsm.instances" in
    let m_decides = R.counter recorder "rsm.decides" in
    let m_commits = R.counter recorder "rsm.commits" in
    let m_stalled = R.counter recorder "rsm.stalled" in
    let m_broadcasts = R.counter recorder "rsm.broadcasts" in
    let m_instance_msgs = R.counter recorder "rsm.instance_msgs" in
    let g_rounds = R.gauge recorder "rsm.rounds" in
    let g_inflight = R.gauge recorder "rsm.inflight" in
    let h_latency_rounds = R.histogram recorder "rsm.decide_latency_rounds" in
    let h_latency_us = R.histogram recorder "rsm.decide_latency_us" in
    let h_inflight = R.histogram recorder "rsm.inflight" in
    let h_queue = R.histogram recorder "rsm.queue_depth" in
    let h_batch_fill = R.histogram recorder "rsm.batch_fill" in
    let h_bundle = R.histogram recorder "rsm.bundle_size" in
    let queue = Array.of_list proposals in
    let nq = Array.length queue in
    let next = ref 0 in  (* next unopened proposal *)
    let arrived = ref 0 in  (* proposals with arrival <= current round *)
    let next_instance = ref 0 in
    let inflight : live list ref = ref [] in  (* ascending id *)
    let closed : (int, instance_result) Hashtbl.t = Hashtbl.create 64 in
    let commit = ref 0 in
    let committed_proposals = ref 0 in
    let decided_proposals = ref 0 in
    let stalled = ref 0 in
    let broadcasts = ref 0 in
    let instance_msgs = ref 0 in
    let open_instance gr =
      let id = !next_instance in
      incr next_instance;
      let first = !next in
      let covered = ref [] in
      let count = ref 0 in
      while
        !count < config.batch && !next < nq && queue.(!next).Workload.arrival <= gr
      do
        covered := queue.(!next) :: !covered;
        incr next;
        incr count
      done;
      let covered = List.rev !covered in
      let batch_values = List.map (fun p -> p.Workload.value) covered in
      let arrivals = List.map (fun p -> p.Workload.arrival) covered in
      let vs = Array.of_list batch_values in
      let b = Array.length vs in
      let inputs = Array.init config.n (fun i -> vs.(i mod b)) in
      let crash = translate_crash ~g0:gr ~n:config.n config.crash in
      let churn = translate_churn ~g0:gr ~n:config.n config.churn in
      let adversary = config.adversary id in
      let rng = Rng.make (instance_seed ~seed:config.seed ~instance:id) in
      let crash_rng = Rng.split rng in
      let core =
        Core.create ~inputs ~crash ~churn ~env:(G.Adversary.env adversary)
      in
      M.incr ~by:b m_proposals;
      M.incr m_instances;
      if obs_on then M.observe h_batch_fill (float_of_int b);
      inflight :=
        !inflight
        @ [
            {
              id;
              core;
              adversary;
              rng;
              crash_rng;
              opened = gr;
              opened_ns = (if obs_on then Anon_obs.Clock.now_ns () else 0L);
              first_proposal = first;
              batch_values;
              arrivals;
              decisions = [];
              local_rounds = 0;
            };
          ]
    in
    (* One local round of one instance — the exact Runner.run round body:
       begin_round, compute, plan from the instance's own adversary and
       RNG stream, deliver. *)
    let step inst =
      inst.local_rounds <- inst.local_rounds + 1;
      Core.begin_round inst.core;
      let on_decide ~pid ~round ~value =
        inst.decisions <- (pid, round, value) :: inst.decisions;
        M.incr m_decides
      in
      let outgoing = Core.compute inst.core ~on_decide in
      let ctx = Core.ctx inst.core in
      let plan = G.Adversary.plan inst.adversary ctx inst.rng in
      let (_ : G.Dispatch.stats) =
        Core.deliver inst.core ~plan ~crash_rng:inst.crash_rng
      in
      (inst.id, outgoing)
    in
    let close ~gr ~done_ inst =
      let value, decided =
        if done_ && inst.decisions <> [] then
          let _, _, v = List.hd inst.decisions in
          (Some v, Some gr)
        else (None, None)
      in
      (match value with
      | Some _ ->
        decided_proposals := !decided_proposals + List.length inst.arrivals;
        if obs_on then begin
          List.iter
            (fun a -> M.observe h_latency_rounds (float_of_int (gr - a + 1)))
            inst.arrivals;
          M.observe h_latency_us
            (Anon_obs.Clock.ns_to_us (Anon_obs.Clock.since_ns inst.opened_ns))
        end
      | None ->
        incr stalled;
        M.incr m_stalled);
      Hashtbl.add closed inst.id
        {
          instance = inst.id;
          first_proposal = inst.first_proposal;
          batch_values = inst.batch_values;
          arrivals = inst.arrivals;
          opened = inst.opened;
          decided;
          value;
          decisions = List.rev inst.decisions;
          local_rounds = inst.local_rounds;
        }
    in
    let advance_commit gr =
      let continue = ref true in
      while !continue do
        match Hashtbl.find_opt closed !commit with
        | Some { value = Some v; arrivals; _ } ->
          let instance = !commit in
          incr commit;
          committed_proposals := !committed_proposals + List.length arrivals;
          M.incr m_commits;
          (match on_commit with
          | Some f -> f ~instance ~round:gr ~value:v
          | None -> ());
          R.emit recorder (fun () -> E.Commit { instance; round = gr; value = v })
        | Some { value = None; _ } | None -> continue := false
      done
    in
    let g = ref 0 in
    let finished = nq = 0 in
    let finished = ref finished in
    while (not !finished) && !g < config.horizon do
      incr g;
      let gr = !g in
      while !arrived < nq && queue.(!arrived).Workload.arrival <= gr do
        incr arrived
      done;
      while
        List.length !inflight < config.window
        && !next < nq
        && queue.(!next).Workload.arrival <= gr
      do
        open_instance gr
      done;
      if obs_on then begin
        let depth = float_of_int (List.length !inflight) in
        M.observe h_inflight depth;
        M.set_gauge g_inflight depth;
        M.observe h_queue (float_of_int (!arrived - !next))
      end;
      let per_instance = List.map step !inflight in
      let bundles = Tag.of_rounds per_instance in
      let nb = List.length bundles in
      broadcasts := !broadcasts + nb;
      M.incr ~by:nb m_broadcasts;
      List.iter
        (fun { G.Dispatch.msg = bundle; _ } ->
          instance_msgs := !instance_msgs + List.length bundle;
          M.incr ~by:(List.length bundle) m_instance_msgs;
          if obs_on then M.observe h_bundle (float_of_int (Tag.size bundle)))
        bundles;
      inflight :=
        List.filter
          (fun inst ->
            if Core.undecided_correct_stayers inst.core = [] then begin
              close ~gr ~done_:true inst;
              false
            end
            else true)
          !inflight;
      advance_commit gr;
      if !inflight = [] && !next >= nq then finished := true
    done;
    let rounds = !g in
    (* Instances still open at the horizon never became committable. *)
    List.iter (fun inst -> close ~gr:rounds ~done_:false inst) !inflight;
    inflight := [];
    let instances =
      List.init !next_instance (fun i -> Hashtbl.find closed i)
    in
    let agreement_ok =
      List.for_all
        (fun (ir : instance_result) ->
          match ir.decisions with
          | [] -> true
          | (_, _, v0) :: rest -> List.for_all (fun (_, _, v) -> v = v0) rest)
        instances
    in
    let validity_ok =
      List.for_all
        (fun (ir : instance_result) ->
          List.for_all (fun (_, _, v) -> List.mem v ir.batch_values) ir.decisions)
        instances
    in
    if obs_on then begin
      M.set_gauge g_rounds (float_of_int rounds);
      R.flush recorder
    end;
    {
      instances;
      commit = !commit;
      committed_proposals = !committed_proposals;
      decided_proposals = !decided_proposals;
      stalled = !stalled;
      rounds;
      broadcasts = !broadcasts;
      instance_msgs = !instance_msgs;
      agreement_ok;
      validity_ok;
    }
end
