(** Multi-shot consensus as a service: the instance multiplexer.

    One shard of the replicated-state-machine layer. A window of up to
    [window] consensus {e instances} is in flight at once; each instance
    is a complete one-shot execution of the underlying algorithm (its own
    {!Anon_giraf.Step_core.Consensus} core, adversary, and RNG streams,
    seeded from {!instance_seed} — the per-instance semantics are the
    exact {!Anon_giraf.Runner} code path, which is what the W=1/B=1
    differential test pins). Each global round, every in-flight instance
    advances one local round; the per-instance broadcasts of the round
    are merged into one instance-tagged bundle per sender
    ({!Anon_giraf.Instance_tag}), so the window shares each round's
    physical broadcast and [batch] proposals amortize one round-trip.

    An instance opened at global round [g] covers up to [batch] queued
    proposals that have already arrived ([arrival <= g]); process [i]
    proposes value [i mod b] of the batch, so validity confines the
    decision to the batch. Decided values commit into a contiguous log:
    the commit pointer advances across instances in log order and stops
    at the first undecided position — a crashed/stalled instance leaves a
    hole that blocks commit (but not decides) behind it, keeping the
    exposed prefix contiguous.

    Crash and churn schedules are given in {e global} rounds and
    translated into each instance's local frame: a process already
    crashed when an instance opens is silent from that instance's round 1;
    a churner mid-absence leaves at local round 1 and rejoins on the
    global schedule. Liveness is owed per instance to its correct stayers
    only — if none remain, the instance closes as {e stalled}
    ([value = None]). *)

type config = {
  n : int;  (** Processes per instance. *)
  window : int;  (** Max instances in flight, [>= 1]. *)
  batch : int;  (** Max proposals per instance, [1 <= batch <= window]. *)
  horizon : int;  (** Global round budget, [>= 1]. *)
  seed : int;  (** Base seed; instance [k] runs at {!instance_seed}. *)
  crash : Anon_giraf.Crash.t;  (** Global-round crash schedule, size [n]. *)
  churn : Anon_giraf.Churn.t;  (** Global-round churn schedule, size [n]. *)
  adversary : int -> Anon_giraf.Adversary.t;
      (** Fresh adversary for instance [k] (instances must not share
          mutable adversary state; local rounds restart at 1). *)
}

val validate : ?where:string -> config -> unit
(** Raises {!Anon_giraf.Config_error.Invalid_config} (default [where]:
    ["Rsm.validate"]) on [n < 1], [window < 1], [batch < 1],
    [batch > window], [horizon < 1], crash/churn schedules sized other
    than [n], or a pid appearing in both schedules. *)

val instance_seed : seed:int -> instance:int -> int
(** The seed instance [k] runs at — exported so differential tests can
    replay one instance through {!Anon_giraf.Runner} verbatim. *)

type instance_result = {
  instance : int;  (** Log position. *)
  first_proposal : int;  (** Id of the first covered proposal. *)
  batch_values : Anon_kernel.Value.t list;  (** Covered proposal values, arrival order. *)
  arrivals : int list;  (** Covered proposals' arrival rounds, same order. *)
  opened : int;  (** Global round of the instance's local round 1. *)
  decided : int option;  (** Global round the last correct stayer decided. *)
  value : Anon_kernel.Value.t option;  (** Committed value; [None] = stalled. *)
  decisions : (int * int * Anon_kernel.Value.t) list;
      (** [(pid, local_round, value)] in decision order — comparable to
          {!Anon_giraf.Runner.outcome.decisions} of the one-shot run. *)
  local_rounds : int;  (** Local rounds executed. *)
}

type outcome = {
  instances : instance_result list;  (** Ascending instance id. *)
  commit : int;  (** Instances in the contiguous committed prefix. *)
  committed_proposals : int;  (** Proposals covered by that prefix. *)
  decided_proposals : int;  (** Proposals whose instance decided (>= committed). *)
  stalled : int;  (** Instances closed without a decision. *)
  rounds : int;  (** Global rounds executed. *)
  broadcasts : int;  (** Physical bundle broadcasts (one per sender per round). *)
  instance_msgs : int;  (** Per-instance messages inside those bundles. *)
  agreement_ok : bool;  (** No instance saw two distinct decided values. *)
  validity_ok : bool;  (** Every decision is one of its instance's batch values. *)
}

val latencies : outcome -> float list
(** Decide latency in rounds, one sample per decided proposal:
    [decided - arrival + 1] (open-loop — queue wait included). Order
    follows the log. *)

module Make (A : Anon_giraf.Intf.ALGORITHM) : sig
  val run :
    ?recorder:Anon_obs.Recorder.t ->
    ?on_commit:(instance:int -> round:int -> value:Anon_kernel.Value.t -> unit) ->
    config ->
    proposals:Workload.proposal list ->
    outcome
  (** Drive the full proposal queue (ascending arrival) to completion or
      to [config.horizon], whichever is first; instances still open at the
      horizon close as stalled. [on_commit] fires as the commit pointer
      passes each instance. With an active recorder, emits [rsm.*]
      metrics (see DESIGN.md §14) and {!Anon_obs.Event.Commit} events. *)
end
