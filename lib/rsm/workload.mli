(** Open-loop proposal workloads for the multi-shot consensus service.

    A workload is a deterministic stream of [proposals] client commands:
    proposal [j] arrives at round [1 + ⌊j / rate⌋] (open-loop — arrivals
    never wait for the service) carrying a value drawn from a skewed
    distribution ([skew] probability of the hot value, uniform over
    [value_range] otherwise). Values and arrivals are pure functions of
    [(seed, j)], so any sharding or execution order reproduces the same
    stream.

    Sharding assigns proposal [j] to shard [j mod shards] — round-robin,
    so every shard sees the same arrival-rate profile. Shards are
    {e independent log partitions}: proposals in different shards never
    contend for the same consensus instance, which is what lets
    [Load] fan them out over [Anon_exec.Pool] without coordination. The
    shard count is a workload parameter (not the job count): reports are
    a pure function of the workload, byte-identical at any [--jobs]. *)

type t = private {
  proposals : int;  (** Total proposal count, [>= 1]. *)
  rate : float;  (** Offered load, proposals per round, finite [> 0]. *)
  skew : float;  (** Probability of drawing [hot_value], in [\[0,1\]]. *)
  value_range : int;  (** Cold values are uniform in [\[0, value_range)]. *)
  hot_value : Anon_kernel.Value.t;
  shards : int;  (** Independent log partitions, [>= 1]. *)
  seed : int;
}

val make :
  ?where:string ->
  ?skew:float ->
  ?value_range:int ->
  ?hot_value:Anon_kernel.Value.t ->
  ?shards:int ->
  proposals:int ->
  rate:float ->
  seed:int ->
  unit ->
  t
(** Validates every field and raises {!Anon_giraf.Config_error.Invalid_config}
    (component [where], default ["Workload.make"]) on: [proposals < 1],
    a rate that is NaN, infinite or [<= 0], a skew that is NaN or outside
    [\[0,1\]], [value_range < 1], or [shards < 1]. Defaults: [skew = 0.],
    [value_range = 16], [hot_value = 0], [shards = 1]. *)

type proposal = { id : int; arrival : int; value : Anon_kernel.Value.t }
(** [id] is the global proposal index in [\[0, proposals)]; [arrival] the
    round it enters the queue; [value] the proposed command. *)

val arrival : t -> int -> int
(** [arrival w j] is [1 + ⌊j / rate⌋]. *)

val value : t -> int -> Anon_kernel.Value.t
(** The value of proposal [j] — deterministic in [(seed, j)],
    shard-independent. *)

val shard_of : t -> int -> int
(** [j mod shards]. *)

val shard_proposals : t -> int -> proposal list
(** All proposals of one shard, ascending id (hence ascending arrival). *)

val pp : Format.formatter -> t -> unit
