(** Interleaving scheduler for shared-memory programs.

    Register accesses are atomic global-state updates, so every run is
    linearizable by construction; the adversary only controls the
    interleaving (which process takes the next step) and crashes. The step
    counter is the logical clock used in operation records. *)

type policy =
  | Round_robin
  | Random_steps
  | Bursty of int
      (** A random process runs up to the given number of consecutive
          steps before the scheduler re-draws — produces long solo runs
          (obstruction-freedom-style schedules). *)

type config = {
  n : int;  (** Number of client processes. *)
  policy : policy;
  seed : int;
  max_steps : int;
  crash_at : (int * int) list;  (** [(pid, step)]: pid halts at that step. *)
}

val default_config : ?policy:policy -> ?seed:int -> ?max_steps:int ->
  ?crash_at:(int * int) list -> n:int -> unit -> config

type 'r completion = {
  pid : int;
  op_index : int;  (** Index in this client's operation sequence. *)
  result : 'r;
  invoked : int;  (** Step of the operation's first action. *)
  completed : int;  (** Step of its [Done]. *)
}

type 'r outcome = {
  completions : 'r completion list;  (** Chronological. *)
  steps : int;
  pending : int list;
      (** Clients with an unfinished operation at the end, including
          clients that crashed mid-operation (whose partial effects may be
          visible). *)
}

val run :
  ?recorder:Anon_obs.Recorder.t ->
  config:config ->
  registers:'v array ->
  ?oracle:(pid:int -> step:int -> int) ->
  clients:(pid:int -> op_index:int -> ('v, 'r) Program.t option) ->
  unit ->
  'r outcome
(** Execute until every client's [clients] generator returns [None] (and
    all operations finished), or [max_steps] elapse. [oracle] answers
    [Program.Query] steps (default: constantly 0). The [registers] array is
    mutated in place and left in its final state.

    [recorder] (default {!Anon_obs.Recorder.off}) receives [Shm_step] /
    [Shm_done] / [Crash] events and the [shm.*] metrics (step/completion
    counts, read/write counts, op latency in steps); see DESIGN.md §7. *)
