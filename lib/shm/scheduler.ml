open Anon_kernel

type policy = Round_robin | Random_steps | Bursty of int

type config = {
  n : int;
  policy : policy;
  seed : int;
  max_steps : int;
  crash_at : (int * int) list;
}

let default_config ?(policy = Random_steps) ?(seed = 42) ?(max_steps = 100_000)
    ?(crash_at = []) ~n () =
  { n; policy; seed; max_steps; crash_at }

type 'r completion = {
  pid : int;
  op_index : int;
  result : 'r;
  invoked : int;
  completed : int;
}

type 'r outcome = {
  completions : 'r completion list;
  steps : int;
  pending : int list;
}

type ('v, 'r) client_state =
  | Idle of int  (* next op index *)
  | Running of { op_index : int; invoked : int; prog : ('v, 'r) Program.t }
  | Finished
  | Crashed

let run ?(recorder = Anon_obs.Recorder.off) ~config ~registers
    ?(oracle = fun ~pid:_ ~step:_ -> 0) ~clients () =
  let module R = Anon_obs.Recorder in
  let module M = Anon_obs.Metrics in
  let module E = Anon_obs.Event in
  let obs_on = R.active recorder in
  let m_steps = R.gauge recorder "shm.steps" in
  let m_completions = R.counter recorder "shm.completions" in
  let m_reads = R.counter recorder "shm.reads" in
  let m_writes = R.counter recorder "shm.writes" in
  let m_crashes = R.counter recorder "shm.crashes" in
  let m_latency = R.histogram recorder "shm.op_latency_steps" in
  let n = config.n in
  let rng = Rng.make config.seed in
  let states = Array.make n (Idle 0) in
  let completions = ref [] in
  let step = ref 0 in
  let crashed_now pid =
    List.exists (fun (p, s) -> p = pid && !step >= s) config.crash_at
  in
  let progress pid prog =
    match prog with
    | Program.Read (r, k) ->
      M.incr m_reads;
      `Continue (k registers.(r))
    | Program.Write (r, v, k) ->
      M.incr m_writes;
      registers.(r) <- v;
      `Continue (k ())
    | Program.Query k -> `Continue (k (oracle ~pid ~step:!step))
    | Program.Done r -> `Done r
  in
  (* One atomic step of client [pid]; returns false if it can no longer
     take steps. *)
  let interrupted = ref [] in
  let step_client pid =
    if crashed_now pid then begin
      (match states.(pid) with
      | Running _ -> interrupted := pid :: !interrupted
      | Idle _ | Finished | Crashed -> ());
      (match states.(pid) with
      | Crashed -> ()
      | Idle _ | Running _ | Finished ->
        M.incr m_crashes;
        R.emit recorder (fun () -> E.Crash { pid; round = !step }));
      states.(pid) <- Crashed;
      false
    end
    else
      match states.(pid) with
      | Finished | Crashed -> false
      | Idle op_index -> (
        match clients ~pid ~op_index with
        | None ->
          states.(pid) <- Finished;
          false
        | Some prog ->
          states.(pid) <- Running { op_index; invoked = !step; prog };
          true)
      | Running { op_index; invoked; prog } ->
        (match progress pid prog with
        | `Continue prog' -> states.(pid) <- Running { op_index; invoked; prog = prog' }
        | `Done result ->
          completions :=
            { pid; op_index; result; invoked; completed = !step } :: !completions;
          if obs_on then begin
            M.incr m_completions;
            M.observe m_latency (float_of_int (!step - invoked));
            R.emit recorder (fun () ->
                E.Shm_done { pid; op_index; invoked; completed = !step })
          end;
          states.(pid) <- Idle (op_index + 1));
        true
  in
  let runnable () =
    List.filter
      (fun pid -> match states.(pid) with Finished | Crashed -> false | Idle _ | Running _ -> true)
      (List.init n Fun.id)
  in
  let burst_pid = ref 0 in
  let burst_left = ref 0 in
  let pick () =
    match runnable () with
    | [] -> None
    | pids -> (
      match config.policy with
      | Round_robin -> Some (List.nth pids (!step mod List.length pids))
      | Random_steps -> Some (Rng.pick rng pids)
      | Bursty burst ->
        if !burst_left > 0 && List.mem !burst_pid pids then begin
          decr burst_left;
          Some !burst_pid
        end
        else begin
          burst_pid := Rng.pick rng pids;
          burst_left := Stdlib.max 0 (Rng.int rng (Stdlib.max 1 burst));
          Some !burst_pid
        end)
  in
  let continue = ref true in
  while !continue && !step < config.max_steps do
    (match pick () with
    | None -> continue := false
    | Some pid ->
      R.emit recorder (fun () -> E.Shm_step { step = !step; pid });
      let (_ : bool) = step_client pid in
      ());
    incr step
  done;
  if obs_on then begin
    M.set_gauge m_steps (float_of_int !step);
    R.flush recorder
  end;
  let pending =
    List.filter
      (fun pid ->
        List.mem pid !interrupted
        || match states.(pid) with
           | Running _ -> true
           | Idle _ | Finished | Crashed -> false)
      (List.init n Fun.id)
  in
  { completions = List.rev !completions; steps = !step; pending }
