(* The loopback wire. See transport.mli. *)

open Anon_kernel
module Netfault = Anon_chaos.Netfault
module Topology = Anon_giraf.Topology
module Config_error = Anon_giraf.Config_error

type stats = {
  copies_sent : int;
  dropped : int;
  retransmissions : int;
  duplicated : int;
  delayed : int;
  severed : int;
}

(* Per-sender mutable counters: each sender thread touches only its own
   slot, so no locking; [stats] sums after the threads join. *)
type counters = {
  mutable c_sent : int;
  mutable c_dropped : int;
  mutable c_duplicated : int;
  mutable c_delayed : int;
  mutable c_severed : int;
}

type 'a t = {
  n : int;
  faults : Netfault.spec;
  mailboxes : (int * int * 'a) Chan.t array;
  rngs : Rng.t array;  (* one per sender *)
  counters : counters array;  (* one per sender *)
}

let now_s () = Anon_obs.Clock.ns_to_s (Anon_obs.Clock.now_ns ())

(* Retransmission timing: the first resend fires after [base_rto_s],
   doubling per consecutive loss up to [rto_cap_s]; past [max_attempts]
   losses the copy goes through regardless (the wire keeps its reliable-
   link promise even at drop probability 1). *)
let base_rto_s = 0.01
let rto_cap_s = 0.16
let max_attempts = 12

(* A severed link's copy waits out the graph change: one full delay bound
   (at least [sever_floor_s]), the maximal admissible lateness. *)
let sever_floor_s = 0.05

let create ~n ~faults ~seed () =
  if n < 1 then
    Config_error.fail ~where:"Live.Transport.create"
      (Printf.sprintf "n must be >= 1 (got %d)" n);
  let faults = Netfault.validate ~where:"Live.Transport.create" faults in
  let root = Rng.make seed in
  {
    n;
    faults;
    mailboxes = Array.init n (fun _ -> Chan.create ());
    rngs = Array.init n (fun _ -> Rng.split root);
    counters =
      Array.init n (fun _ ->
          { c_sent = 0; c_dropped = 0; c_duplicated = 0; c_delayed = 0; c_severed = 0 });
  }

let n t = t.n

let send_one t ~src ~round ~dst payload =
  let rng = t.rngs.(src) in
  let c = t.counters.(src) in
  let f = t.faults in
  let now = now_s () in
  let due = ref now in
  c.c_sent <- c.c_sent + 1;
  (match f.Netfault.sever with
  | Some top when not (Topology.edge top ~n:t.n ~round ~src ~dst) ->
    c.c_severed <- c.c_severed + 1;
    due := !due +. Float.max f.Netfault.max_delay_s sever_floor_s
  | Some _ | None -> ());
  if f.Netfault.delay > 0. && Rng.chance rng f.Netfault.delay then begin
    c.c_delayed <- c.c_delayed + 1;
    due := !due +. Rng.float rng f.Netfault.max_delay_s
  end;
  if f.Netfault.drop > 0. then begin
    let rto = ref base_rto_s in
    let attempts = ref 0 in
    while !attempts < max_attempts && Rng.chance rng f.Netfault.drop do
      incr attempts;
      due := !due +. !rto;
      rto := Float.min (!rto *. 2.) rto_cap_s
    done;
    c.c_dropped <- c.c_dropped + !attempts
  end;
  Chan.post t.mailboxes.(dst) ~due:!due (src, round, payload);
  if f.Netfault.duplicate > 0. && Rng.chance rng f.Netfault.duplicate then begin
    c.c_duplicated <- c.c_duplicated + 1;
    let echo_lag = Rng.float rng (Float.max f.Netfault.max_delay_s base_rto_s) in
    Chan.post t.mailboxes.(dst) ~due:(!due +. echo_lag) (src, round, payload)
  end

let send_to t ~src ~round ~dsts payload =
  List.iter
    (fun dst -> if dst <> src then send_one t ~src ~round ~dst payload)
    dsts

let broadcast t ~src ~round payload =
  for dst = 0 to t.n - 1 do
    if dst <> src then send_one t ~src ~round ~dst payload
  done

let drain t ~dst = Chan.drain_ready t.mailboxes.(dst) ~now:(now_s ())
let pending t ~dst = Chan.pending t.mailboxes.(dst)

let stats t =
  Array.fold_left
    (fun acc c ->
      {
        copies_sent = acc.copies_sent + c.c_sent;
        dropped = acc.dropped + c.c_dropped;
        retransmissions = acc.retransmissions + c.c_dropped;
        duplicated = acc.duplicated + c.c_duplicated;
        delayed = acc.delayed + c.c_delayed;
        severed = acc.severed + c.c_severed;
      })
    {
      copies_sent = 0;
      dropped = 0;
      retransmissions = 0;
      duplicated = 0;
      delayed = 0;
      severed = 0;
    }
    t.counters
