(** The loopback wire: n mailboxes plus a faulty link layer.

    Every transmitted copy passes the {!Anon_chaos.Netfault.spec} gauntlet
    independently: severing (link absent from the topology at the send
    round) and extra delay push its due time out; a drop is recovered by
    the built-in reliability layer — bounded exponential backoff stands in
    for retransmission, so the copy's due time absorbs the lost attempts
    and the paper's reliable-link model survives intact (messages are
    delayed, never lost); a duplicate posts a late echo copy. Reordering
    emerges for free from independent per-copy delays.

    Fault draws use one RNG {e per sender} (split deterministically from
    the seed), so sender threads never contend and a fixed seed yields a
    reproducible fault pattern up to wall-clock jitter. Statistics are
    kept per sender and summed on read — no cross-thread mutation.

    Self-delivery is the caller's job (a process's own message is always
    timely and never crosses the wire), matching the lockstep dispatch. *)

type 'a t

type stats = {
  copies_sent : int;  (** Point-to-point copies offered to the wire. *)
  dropped : int;  (** Copies lost and recovered by retransmission. *)
  retransmissions : int;  (** Backoff resends (= [dropped]; kept for reports). *)
  duplicated : int;  (** Echo copies delivered in addition to the original. *)
  delayed : int;  (** Copies given extra wire latency. *)
  severed : int;  (** Copies over links absent from the topology. *)
}

val now_s : unit -> float
(** Monotonic wall clock, seconds ({!Anon_obs.Clock}). The time base for
    every due time and deadline in the live backend. *)

val create : n:int -> faults:Anon_chaos.Netfault.spec -> seed:int -> unit -> 'a t
(** @raise Anon_giraf.Config_error.Invalid_config on [n < 1] or an
    invalid fault spec. *)

val n : 'a t -> int

val send_to : 'a t -> src:int -> round:int -> dsts:int list -> 'a -> unit
(** Offer one copy per destination (self silently skipped), each drawn
    through the fault gauntlet. [round] is the message's send round —
    the topology is evaluated at it, and receivers recover it from the
    packet. *)

val broadcast : 'a t -> src:int -> round:int -> 'a -> unit
(** {!send_to} every process except [src]. *)

val drain : 'a t -> dst:int -> (int * int * 'a) list
(** Packets ripe for [dst] now, in due order: [(src, sent_round, payload)]. *)

val pending : 'a t -> dst:int -> int
(** Copies queued for [dst], ripe or not (in-flight diagnostics). *)

val stats : 'a t -> stats
(** Summed across senders. Safe to call after the sender threads joined;
    mid-run reads are approximate. *)
