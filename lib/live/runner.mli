(** The live execution backend: one thread per anonymous process.

    Where {!Anon_giraf.Runner} advances every process in lockstep under an
    adversary's delivery plan, this runner gives each process its own
    thread and lets synchrony emerge from the wall clock: processes
    exchange round messages over the faulty {!Transport}, pace their
    rounds with an adaptive {!Pacer}, and assemble inboxes through the
    shared {!Anon_giraf.Backend.ready_inbox} — the seam that makes a
    zero-fault live run decide {e exactly} what the lockstep runner
    decides at the same rounds (the differential suite pins this).

    Per-process protocol, mirroring Alg. 1 end-of-round [k]:
    initialize (k = 1) or compute round [k-1]'s mailbox; halt on decision;
    crash at the scheduled round with the scheduled last-broadcast
    behaviour; otherwise broadcast the round-[k] message and wait for
    round-[k] messages from every still-expected peer. A wait expires
    after the pacer's timeout: up to [retries] expiries rebroadcast the
    round message (harmless under anonymity — duplicates merge) and grow
    the timeout; then the round proceeds short, and peers silent for
    [miss_grace] consecutive short rounds stop being expected (halted and
    crashed peers are discovered, not announced).

    Every run is bounded twice — [round_budget] rounds and
    [wall_budget_s] seconds — so an undecidable configuration returns a
    structured [outcome] with diagnostics; it never hangs. Agreement and
    validity over the decided processes are checked on {e every} run. *)

type config = {
  inputs : Anon_kernel.Value.t array;  (** One proposal per process; defines [n]. *)
  crash : Anon_giraf.Crash.t;
  faults : Anon_chaos.Netfault.spec;  (** The wire. *)
  timeout_init_s : float;  (** First-round pacer timeout. *)
  timeout_max_s : float;  (** Backoff cap. *)
  growth : float;  (** Pacer growth per expiry (>= 1). *)
  decay : float;  (** Pacer decay per quiet round ((0,1]). *)
  retries : int;  (** Timeout expiries (with rebroadcast) before a round proceeds short. *)
  miss_grace : int;  (** Consecutive short rounds before a silent peer is unexpected. *)
  round_budget : int;  (** Max end-of-rounds per process. *)
  wall_budget_s : float;  (** Wall-clock ceiling for the whole run. *)
  seed : int;  (** Transport faults, subset crashes. *)
}

val default_config :
  ?timeout_init_s:float ->
  ?timeout_max_s:float ->
  ?growth:float ->
  ?decay:float ->
  ?retries:int ->
  ?miss_grace:int ->
  ?round_budget:int ->
  ?wall_budget_s:float ->
  ?seed:int ->
  ?faults:Anon_chaos.Netfault.spec ->
  inputs:Anon_kernel.Value.t list ->
  crash:Anon_giraf.Crash.t ->
  unit ->
  config
(** Defaults: 20ms initial timeout, 1s cap, growth 2.0, decay 0.9,
    3 retries, miss grace 2, 200-round budget, 30s wall budget, seed 42,
    faultless wire.

    @raise Anon_giraf.Config_error.Invalid_config on empty inputs, an
    inputs/crash size mismatch, a non-positive or inverted timeout pair,
    non-finite probabilities, or negative retry/budget knobs. [run]
    re-validates direct constructions. *)

(** Why a process thread stopped. *)
type stop_reason =
  | Decided
  | Crashed
  | Round_budget_exhausted
  | Wall_budget_exhausted

type process_report = {
  pid : int;
  decision : (int * Anon_kernel.Value.t) option;  (** [(round, value)]. *)
  stop : stop_reason;
  rounds_executed : int;  (** End-of-rounds performed. *)
  timeouts_expired : int;
  rebroadcasts : int;  (** Application-level retransmissions on expiry. *)
  decide_latency_s : float option;  (** Run start to decision, wall seconds. *)
}

type safety = Safe | Violations of string list

type outcome = {
  decisions : (int * int * Anon_kernel.Value.t) list;
      (** [(pid, round, value)] in wall-clock decide order. *)
  all_correct_decided : bool;
  undecided : int list;  (** Correct pids that did not decide, increasing. *)
  processes : process_report array;
  rounds_max : int;  (** Highest end-of-round any process reached. *)
  wall_s : float;  (** Run duration, start to last thread joined. *)
  transport : Transport.stats;
  timeout_curve : float list;
      (** Per wait-round maximum of the processes' pacer trajectories —
          the run's discovered-synchrony profile. *)
  decide_latency : Anon_obs.Hist.t;  (** Seconds; one observation per decision. *)
  safety : safety;
      (** Agreement + validity over the decided processes, checked on
          every run (fault-heavy and undecided runs included). *)
}

module Make (A : Anon_giraf.Intf.ALGORITHM) : sig
  val run : ?recorder:Anon_obs.Recorder.t -> config -> outcome
  (** Execute with one thread per process and block until all joined
      (bounded by the budgets — never a hang). [recorder] receives the
      run/decide/crash event stream and [live.*] metrics after the join;
      per-thread observability is aggregated, not streamed, because
      recorders are not thread-safe. *)
end
