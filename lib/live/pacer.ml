(* Adaptive round timeouts. See pacer.mli. *)

module Config_error = Anon_giraf.Config_error

type t = {
  init_s : float;
  max_s : float;
  growth : float;
  decay : float;
  mutable current : float;
  mutable expiries : int;
  mutable trajectory : float list;  (* reversed *)
}

let create ?(growth = 2.0) ?(decay = 0.9) ~init_s ~max_s () =
  let where = "Live.Pacer.create" in
  if not (Float.is_finite init_s && init_s > 0.) then
    Config_error.fail ~where
      (Printf.sprintf "timeout_init must be finite and > 0 (got %g)" init_s);
  if not (Float.is_finite max_s && max_s >= init_s) then
    Config_error.fail ~where
      (Printf.sprintf "timeout_max must be finite and >= timeout_init (got max %g, init %g)"
         max_s init_s);
  if not (Float.is_finite growth && growth >= 1.) then
    Config_error.fail ~where
      (Printf.sprintf "growth must be finite and >= 1 (got %g)" growth);
  if not (Float.is_finite decay && decay > 0. && decay <= 1.) then
    Config_error.fail ~where
      (Printf.sprintf "decay must be in (0,1] (got %g)" decay);
  { init_s; max_s; growth; decay; current = init_s; expiries = 0; trajectory = [] }

let current t = t.current
let note_wait t = t.trajectory <- t.current :: t.trajectory

let on_expiry t =
  t.expiries <- t.expiries + 1;
  t.current <- Float.min t.max_s (t.current *. t.growth)

let on_quorum t = t.current <- Float.max t.init_s (t.current *. t.decay)
let expiries t = t.expiries
let trajectory t = List.rev t.trajectory
