(* The live execution backend. See runner.mli. *)

open Anon_kernel
module Backend = Anon_giraf.Backend
module Crash = Anon_giraf.Crash
module Config_error = Anon_giraf.Config_error
module Netfault = Anon_chaos.Netfault

type config = {
  inputs : Value.t array;
  crash : Crash.t;
  faults : Netfault.spec;
  timeout_init_s : float;
  timeout_max_s : float;
  growth : float;
  decay : float;
  retries : int;
  miss_grace : int;
  round_budget : int;
  wall_budget_s : float;
  seed : int;
}

let validate ~where config =
  let n = Array.length config.inputs in
  if n < 1 then Config_error.fail ~where "inputs must be non-empty";
  if Crash.n config.crash <> n then
    Config_error.fail ~where
      (Printf.sprintf "inputs/crash size mismatch (%d inputs, crash schedule for %d)"
         n (Crash.n config.crash));
  ignore (Netfault.validate ~where config.faults);
  (* Pacer.create re-checks at run time; validating here too gives config
     construction the same fail-fast contract as the lockstep runner. *)
  ignore
    (Pacer.create ~growth:config.growth ~decay:config.decay
       ~init_s:config.timeout_init_s ~max_s:config.timeout_max_s ());
  if config.retries < 0 then
    Config_error.fail ~where
      (Printf.sprintf "retries must be >= 0 (got %d)" config.retries);
  if config.miss_grace < 1 then
    Config_error.fail ~where
      (Printf.sprintf "miss_grace must be >= 1 (got %d)" config.miss_grace);
  if config.round_budget < 1 then
    Config_error.fail ~where
      (Printf.sprintf "round_budget must be >= 1 (got %d)" config.round_budget);
  if not (Float.is_finite config.wall_budget_s && config.wall_budget_s > 0.) then
    Config_error.fail ~where
      (Printf.sprintf "wall_budget must be finite and > 0 (got %g)"
         config.wall_budget_s)

let default_config ?(timeout_init_s = 0.02) ?(timeout_max_s = 1.0) ?(growth = 2.0)
    ?(decay = 0.9) ?(retries = 3) ?(miss_grace = 2) ?(round_budget = 200)
    ?(wall_budget_s = 30.0) ?(seed = 42) ?(faults = Netfault.none) ~inputs ~crash () =
  let config =
    {
      inputs = Array.of_list inputs;
      crash;
      faults;
      timeout_init_s;
      timeout_max_s;
      growth;
      decay;
      retries;
      miss_grace;
      round_budget;
      wall_budget_s;
      seed;
    }
  in
  validate ~where:"Live.Runner.default_config" config;
  config

type stop_reason = Decided | Crashed | Round_budget_exhausted | Wall_budget_exhausted

type process_report = {
  pid : int;
  decision : (int * Value.t) option;
  stop : stop_reason;
  rounds_executed : int;
  timeouts_expired : int;
  rebroadcasts : int;
  decide_latency_s : float option;
}

type safety = Safe | Violations of string list

type outcome = {
  decisions : (int * int * Value.t) list;
  all_correct_decided : bool;
  undecided : int list;
  processes : process_report array;
  rounds_max : int;
  wall_s : float;
  transport : Transport.stats;
  timeout_curve : float list;
  decide_latency : Anon_obs.Hist.t;
  safety : safety;
}

(* Per-process scratch: written only by the owning thread, read by the
   main thread after the join. *)
type cell = {
  mutable c_decision : (int * Value.t) option;
  mutable c_decide_at : float;  (* seconds since run start; decisions only *)
  mutable c_stop : stop_reason;
  mutable c_rounds : int;
  mutable c_rebroadcasts : int;
  pacer : Pacer.t;
}

let check_safety ~inputs decisions =
  let violations = ref [] in
  (match decisions with
  | [] | [ _ ] -> ()
  | (p0, _, v0) :: rest ->
    List.iter
      (fun (p, _, v) ->
        if Value.compare v v0 <> 0 then
          violations :=
            Printf.sprintf "agreement: p%d decided %s but p%d decided %s" p
              (Value.to_string v) p0 (Value.to_string v0)
            :: !violations)
      rest);
  List.iter
    (fun (p, _, v) ->
      if not (Array.exists (fun i -> Value.compare i v = 0) inputs) then
        violations :=
          Printf.sprintf "validity: p%d decided %s, proposed by nobody" p
            (Value.to_string v)
          :: !violations)
    decisions;
  match List.rev !violations with [] -> Safe | vs -> Violations vs

module Make (A : Anon_giraf.Intf.ALGORITHM) = struct
  (* One process's end-of-round loop (Alg. 1), run on its own thread. *)
  let run_process ~config ~transport ~start_s ~wall_deadline ~rng ~cell pid =
    let n = Array.length config.inputs in
    let inflight = ref [] in
    let st = ref None in
    let expected = Array.make n true in
    let heard = Array.make n 0 in  (* highest sent round seen per peer *)
    let miss = Array.make n 0 in
    expected.(pid) <- false;
    (* Wait until every still-expected peer's round-[k] message arrived,
       pacing with the adaptive timeout. Returns [false] on wall-budget
       exhaustion. Drained packets join [inflight] with
       [arrival = max sent k]: ripe-now packets for rounds <= k are late
       by exactly the lockstep clamp, faster peers' future rounds stay
       timely for when this process gets there. *)
    let wait_round k my_msg =
      Pacer.note_wait cell.pacer;
      let expiries = ref 0 in
      let result = ref None in
      let deadline = ref (Transport.now_s () +. Pacer.current cell.pacer) in
      while !result = None do
        List.iter
          (fun (src, sent, payload) ->
            if sent > heard.(src) then heard.(src) <- sent;
            inflight := (max sent k, sent, payload) :: !inflight)
          (Transport.drain transport ~dst:pid);
        let missing = ref 0 in
        for q = 0 to n - 1 do
          if expected.(q) && heard.(q) < k then incr missing
        done;
        if !missing = 0 then begin
          if !expiries = 0 then Pacer.on_quorum cell.pacer;
          for q = 0 to n - 1 do
            miss.(q) <- 0
          done;
          result := Some true
        end
        else begin
          let now = Transport.now_s () in
          if now >= wall_deadline then result := Some false
          else if now >= !deadline then begin
            Pacer.on_expiry cell.pacer;
            incr expiries;
            if !expiries > config.retries then begin
              (* Proceed short. Peers silent this round accumulate a
                 miss; [miss_grace] in a row and they stop being
                 expected — that is how halted deciders and crashers are
                 discovered without any announcement. *)
              for q = 0 to n - 1 do
                if expected.(q) then
                  if heard.(q) < k then begin
                    miss.(q) <- miss.(q) + 1;
                    if miss.(q) >= config.miss_grace then expected.(q) <- false
                  end
                  else miss.(q) <- 0
              done;
              result := Some true
            end
            else begin
              (* Retransmit: our broadcast may be what a slow peer is
                 waiting on; duplicates merge under anonymity. *)
              Transport.broadcast transport ~src:pid ~round:k my_msg;
              cell.c_rebroadcasts <- cell.c_rebroadcasts + 1;
              deadline := Transport.now_s () +. Pacer.current cell.pacer
            end
          end
          else Thread.delay 0.0003
        end
      done;
      Option.get !result
    in
    let halted = ref false in
    let k = ref 1 in
    while not !halted do
      let kk = !k in
      if kk > config.round_budget then begin
        cell.c_stop <- Round_budget_exhausted;
        halted := true
      end
      else begin
        cell.c_rounds <- kk;
        (* End-of-round [kk]: initialize, or compute round [kk-1]'s
           mailbox through the shared backend seam. *)
        let outgoing =
          match !st with
          | None ->
            let s, m = A.initialize config.inputs.(pid) in
            st := Some s;
            Some m
          | Some s -> (
            let current, fresh, rest =
              Backend.ready_inbox ~compare:A.msg_compare ~round:(kk - 1) !inflight
            in
            inflight := rest;
            let s', m, dec =
              A.compute s ~round:(kk - 1) ~inbox:{ Anon_giraf.Intf.current; fresh }
            in
            st := Some s';
            match dec with
            | Some v ->
              (* Decide and halt: the round-[kk] message is not sent. *)
              cell.c_decision <- Some (kk - 1, v);
              cell.c_decide_at <- Transport.now_s () -. start_s;
              cell.c_stop <- Decided;
              halted := true;
              None
            | None -> Some m)
        in
        match outgoing with
        | None -> ()
        | Some m -> (
          (* Self-delivery is implicit and always timely (dispatch.ml
             does the same for the lockstep backend). *)
          inflight := (kk, kk, m) :: !inflight;
          match Crash.crash_round config.crash pid with
          | Some r when r = kk ->
            (match (Crash.crashing_at config.crash ~round:kk
                    |> List.find (fun (ev : Crash.event) -> ev.pid = pid))
                     .broadcast
            with
            | Crash.Silent -> ()
            | Crash.Broadcast_all -> Transport.broadcast transport ~src:pid ~round:kk m
            | Crash.Broadcast_subset ->
              let others =
                List.filter (fun q -> q <> pid) (List.init n Fun.id)
              in
              Transport.send_to transport ~src:pid ~round:kk
                ~dsts:(Rng.subset rng ~p:0.5 others)
                m);
            cell.c_stop <- Crashed;
            halted := true
          | Some _ | None ->
            Transport.broadcast transport ~src:pid ~round:kk m;
            if wait_round kk m then incr k
            else begin
              cell.c_stop <- Wall_budget_exhausted;
              halted := true
            end)
      end
    done

  let run ?(recorder = Anon_obs.Recorder.off) config =
    let module R = Anon_obs.Recorder in
    let module M = Anon_obs.Metrics in
    let module E = Anon_obs.Event in
    validate ~where:"Live.Runner.run" config;
    let n = Array.length config.inputs in
    let transport =
      Transport.create ~n ~faults:config.faults ~seed:config.seed ()
    in
    let root_rng = Rng.make (config.seed lxor 0x5f3759df) in
    let rngs = Array.init n (fun _ -> Rng.split root_rng) in
    let cells =
      Array.init n (fun _ ->
          {
            c_decision = None;
            c_decide_at = 0.;
            c_stop = Wall_budget_exhausted;
            c_rounds = 0;
            c_rebroadcasts = 0;
            pacer =
              Pacer.create ~growth:config.growth ~decay:config.decay
                ~init_s:config.timeout_init_s ~max_s:config.timeout_max_s ();
          })
    in
    let start_s = Transport.now_s () in
    let wall_deadline = start_s +. config.wall_budget_s in
    let threads =
      Array.init n (fun pid ->
          Thread.create
            (fun () ->
              run_process ~config ~transport ~start_s ~wall_deadline
                ~rng:rngs.(pid) ~cell:cells.(pid) pid)
            ())
    in
    Array.iter Thread.join threads;
    let wall_s = Transport.now_s () -. start_s in
    let processes =
      Array.mapi
        (fun pid c ->
          {
            pid;
            decision = c.c_decision;
            stop = c.c_stop;
            rounds_executed = c.c_rounds;
            timeouts_expired = Pacer.expiries c.pacer;
            rebroadcasts = c.c_rebroadcasts;
            decide_latency_s =
              (match c.c_decision with Some _ -> Some c.c_decide_at | None -> None);
          })
        cells
    in
    let decisions =
      Array.to_list cells
      |> List.mapi (fun pid c ->
             match c.c_decision with
             | Some (r, v) -> [ (c.c_decide_at, (pid, r, v)) ]
             | None -> [])
      |> List.concat
      |> List.sort (fun (t1, _) (t2, _) -> Float.compare t1 t2)
      |> List.map snd
    in
    let undecided =
      List.filter
        (fun pid -> cells.(pid).c_decision = None)
        (Crash.correct config.crash)
    in
    let rounds_max = Array.fold_left (fun acc c -> max acc c.c_rounds) 0 cells in
    let decide_latency = Anon_obs.Hist.create () in
    Array.iter
      (fun c ->
        match c.c_decision with
        | Some _ -> Anon_obs.Hist.observe decide_latency c.c_decide_at
        | None -> ())
      cells;
    (* Elementwise max across the per-process pacer trajectories: the
       run's worst-case discovered timeout at each wait-round index. *)
    let timeout_curve =
      let trajectories = Array.map (fun c -> Pacer.trajectory c.pacer) cells in
      let len = Array.fold_left (fun acc t -> max acc (List.length t)) 0 trajectories in
      List.init len (fun i ->
          Array.fold_left
            (fun acc t -> match List.nth_opt t i with Some v -> Float.max acc v | None -> acc)
            0. trajectories)
    in
    let safety = check_safety ~inputs:config.inputs decisions in
    (* Observability is aggregated post-join: recorders are not
       thread-safe, and the event stream only needs decide order, which
       the wall-clock timestamps preserve. *)
    if R.active recorder then begin
      R.emit recorder (fun () -> E.Run_start { algo = A.name; n; seed = config.seed });
      let m_decisions = R.counter recorder "live.decisions" in
      let m_crashes = R.counter recorder "live.crashes" in
      let m_timeouts = R.counter recorder "live.timeouts" in
      let m_rebroadcasts = R.counter recorder "live.rebroadcasts" in
      let m_retrans = R.counter recorder "live.wire_retransmissions" in
      let h_latency = R.histogram recorder "live.decide_latency_s" in
      let h_timeout = R.histogram recorder "live.timeout_s" in
      List.iter
        (fun (pid, round, value) ->
          M.incr m_decisions;
          R.emit recorder (fun () -> E.Decide { pid; round; value }))
        decisions;
      Array.iter
        (fun p ->
          if p.stop = Crashed then begin
            M.incr m_crashes;
            R.emit recorder (fun () -> E.Crash { pid = p.pid; round = p.rounds_executed })
          end;
          M.incr ~by:p.timeouts_expired m_timeouts;
          M.incr ~by:p.rebroadcasts m_rebroadcasts;
          Option.iter (M.observe h_latency) p.decide_latency_s)
        processes;
      List.iter (M.observe h_timeout) timeout_curve;
      M.incr ~by:(Transport.stats transport).Transport.retransmissions m_retrans;
      R.emit recorder (fun () ->
          E.Run_end { rounds = rounds_max; decided = undecided = [] });
      R.flush recorder
    end;
    {
      decisions;
      all_correct_decided = undecided = [];
      undecided;
      processes;
      rounds_max;
      wall_s;
      transport = Transport.stats transport;
      timeout_curve;
      decide_latency;
      safety;
    }
end
