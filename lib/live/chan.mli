(** Thread-safe mailboxes with per-item due times.

    The live transport's unit of delay is the {e due time}: a posted item
    becomes visible to {!drain_ready} only once the clock passes it. That
    one primitive carries the whole wire fault model — extra latency,
    retransmission backoff and severed-link penalties are all just later
    due times — without a timer thread: the receiver polls, and the
    mailbox answers with whatever is ripe.

    Ready items come out ordered by [(due, post sequence)], so two copies
    posted with equal due times preserve post order — on a faultless wire
    every link is FIFO, which the differential suite relies on. Safe for
    many posters and one drainer (or several of each; every operation
    holds the mailbox lock). *)

type 'a t

val create : unit -> 'a t

val post : 'a t -> due:float -> 'a -> unit
(** Enqueue [x], visible to drains at times [>= due] (seconds, same clock
    as the [now] passed to {!drain_ready}). *)

val drain_ready : 'a t -> now:float -> 'a list
(** Remove and return every item with [due <= now], ordered by
    [(due, post sequence)]. Items still in the future stay queued. *)

val pending : 'a t -> int
(** Queued items, ripe or not. *)
