(** Adaptive round timeouts: GST discovered, not scripted.

    The lockstep adversary {e declares} when rounds become timely; the
    live backend has to find out. Each process paces its rounds with this
    estimator: wait [current] seconds for the round's messages; every
    expiry grows the timeout geometrically (bounded by [max_s]) — the
    classic partial-synchrony move of probing for the unknown
    post-GST message bound — while a round that fills within its first
    deadline decays the timeout back toward [init_s], so a transient
    disruption doesn't tax the steady state forever.

    The per-wait-round [trajectory] is the experiment artifact: under a
    faulty wire it traces exactly how the process discovered a workable
    synchrony bound. *)

type t

val create : ?growth:float -> ?decay:float -> init_s:float -> max_s:float -> unit -> t
(** [growth] defaults to 2.0, [decay] to 0.9.
    @raise Anon_giraf.Config_error.Invalid_config unless
    [0 < init_s <= max_s] (both finite), [growth >= 1] and
    [0 < decay <= 1]. *)

val current : t -> float
(** The timeout (seconds) to use for the next wait. *)

val note_wait : t -> unit
(** Record [current] as the next point of {!trajectory}; call once at the
    start of each wait round. *)

val on_expiry : t -> unit
(** A deadline passed with messages missing: grow, capped at [max_s]. *)

val on_quorum : t -> unit
(** The round filled within its first deadline: decay toward [init_s]. *)

val expiries : t -> int
(** Total {!on_expiry} calls. *)

val trajectory : t -> float list
(** Timeout per wait round, oldest first. *)
