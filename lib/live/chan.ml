(* Due-time mailboxes. See chan.mli. *)

type 'a t = {
  mutex : Mutex.t;
  mutable items : (float * int * 'a) list;  (* (due, seq, item), unordered *)
  mutable seq : int;
}

let create () = { mutex = Mutex.create (); items = []; seq = 0 }

let post t ~due x =
  Mutex.lock t.mutex;
  t.items <- (due, t.seq, x) :: t.items;
  t.seq <- t.seq + 1;
  Mutex.unlock t.mutex

let drain_ready t ~now =
  Mutex.lock t.mutex;
  let ready, rest = List.partition (fun (due, _, _) -> due <= now) t.items in
  t.items <- rest;
  Mutex.unlock t.mutex;
  ready
  |> List.sort (fun (d1, s1, _) (d2, s2, _) ->
         match Float.compare d1 d2 with 0 -> Int.compare s1 s2 | c -> c)
  |> List.map (fun (_, _, x) -> x)

let pending t =
  Mutex.lock t.mutex;
  let n = List.length t.items in
  Mutex.unlock t.mutex;
  n
