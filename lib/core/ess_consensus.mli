(** Algorithm 3 — consensus in the eventually-stable-source (ESS)
    environment, via {e pseudo leader election}.

    A true leader election is impossible without identities, so processes
    identify each other by the {e history} of their proposal values: two
    processes that ever propose differently have diverged histories
    forever. Every message carries the sender's history and a counter table
    [C]; counters of histories belonging to eventual sources grow by one
    every round at every out-connected process (Lemma 4), while counters of
    other processes' histories are dragged down by the pointwise-[min]
    merge. A process considers itself a leader when its own history's
    counter ties the maximum — eventually exactly the processes converging
    to one common infinite history do (Lemmas 5–6).

    Crucially, non-leaders do not fall silent: they propose [⊥] so the
    current source's value still reaches everybody every round (§4.1). *)

type state

type message = {
  m_proposed : Anon_kernel.Pvalue.Set.t;
  m_history : Anon_kernel.History.t;
  m_counters : Anon_kernel.Counter_table.t;
}

include
  Anon_giraf.Intf.ALGORITHM with type state := state and type msg = message

val is_leader : state -> bool
(** Whether the process currently considers itself a leader
    ([∀H, C\[HISTORY\] ≥ C\[H\]]). *)

val current_val : state -> Anon_kernel.Value.t
val history : state -> Anon_kernel.History.t
val counters : state -> Anon_kernel.Counter_table.t
val proposed : state -> Anon_kernel.Pvalue.Set.t

val state_key : state -> string
(** Canonical, run-independent serialization of the full local state:
    histories render as value sequences and counter tables are sorted by
    that rendering, never by intern id — so keys agree across interner
    scopes and domains (the model checker compares them cross-task). *)

val msg_key : msg -> string
(** Canonical serialization of a message. *)

(** Merge rule for the counter tables (line 8): the paper uses pointwise
    minimum; [`Max] is the deliberately broken ablation A3. *)
type merge_rule = [ `Min | `Max ]

(** An ESS-consensus variant whose pseudo-leader flag is observable (for
    the instrumentation harness). *)
module type OBSERVABLE = sig
  include Anon_giraf.Intf.ALGORITHM with type msg = message

  val is_leader : state -> bool
end

module Ablation (_ : sig
  val merge : merge_rule

  val silent_non_leaders : bool
  (** Ablation A1a: non-leaders send an empty proposal set instead of
      [{⊥}]. *)

  val converged_disjunct : bool
  (** [false] is ablation A1b: drop line 15's [PROPOSED ⊆ {VAL, ⊥}]
      clause, so non-leaders propose ⊥ even once everybody agrees — each
      decision then stalls until a fresh source's history counter
      overtakes the halted leader's frozen one. *)
end) : OBSERVABLE
