open Anon_kernel
module Giraf = Anon_giraf

let value_capacity = 1 lsl 20

let encode ~value ~rank =
  if value < 0 || value >= value_capacity then
    invalid_arg "Register_of_weak_set.encode: value out of range";
  if rank < 0 then invalid_arg "Register_of_weak_set.encode: negative rank";
  (rank * value_capacity) + value

let decode e = (e mod value_capacity, e / value_capacity)

let read_of_set set =
  let best =
    Value.Set.fold
      (fun e acc ->
        let value, rank = decode e in
        match acc with
        | None -> Some (rank, value)
        | Some (r, v) -> if (rank, value) > (r, v) then Some (rank, value) else acc)
      set None
  in
  Option.map snd best

let rank_of_set = Value.Set.cardinal

type op = Write of Value.t | Read

type record = {
  client : int;
  op : op;
  invoked : int;
  completed : int option;
  result : Value.t option;
  rank : int option;
}

type outcome = {
  records : record list;
  ws_ops : Giraf.Checker.ws_op list;
  trace : Giraf.Trace.t;
}

module Ws_runner = Giraf.Service_runner.Make (Weak_set_ms)

let to_service_workload workload =
  List.map
    (fun (pid, script) ->
      let ops =
        List.map
          (fun (start, op) ->
            match op with
            | Read -> (start, Giraf.Service_runner.Do_get)
            | Write v ->
              ( start,
                Giraf.Service_runner.Do_add_with
                  (fun set -> encode ~value:v ~rank:(rank_of_set set)) ))
          script
      in
      (pid, ops))
    workload

(* Zip each client's register script with its chronological weak-set
   operations (one per register operation: clients are sequential). *)
let records_of_ops workload ops =
  List.concat_map
    (fun (pid, script) ->
      let mine =
        List.filter
          (fun op ->
            match op with
            | Giraf.Checker.Ws_add a -> a.add_client = pid
            | Giraf.Checker.Ws_get g -> g.get_client = pid)
          ops
      in
      let rec zip script ops =
        match script, ops with
        | [], _ | _, [] -> []
        | (_, Read) :: script', Giraf.Checker.Ws_get g :: ops' ->
          {
            client = pid;
            op = Read;
            invoked = g.get_invoked;
            completed = Some g.get_completed;
            result = read_of_set g.get_result;
            rank = None;
          }
          :: zip script' ops'
        | (_, Write v) :: script', Giraf.Checker.Ws_add a :: ops' ->
          let value, rank = decode a.add_value in
          assert (Value.equal value v);
          {
            client = pid;
            op = Write v;
            invoked = a.add_invoked;
            completed = a.add_completed;
            result = None;
            rank = Some rank;
          }
          :: zip script' ops'
        | (_, Read) :: _, Giraf.Checker.Ws_add _ :: _
        | (_, Write _) :: _, Giraf.Checker.Ws_get _ :: _ ->
          assert false (* per-client op order matches script order *)
      in
      zip script mine)
    workload

let run ~crash ~adversary ~horizon ~seed ~workload =
  let config =
    {
      Giraf.Service_runner.n = Giraf.Crash.n crash;
      crash;
      churn = Giraf.Churn.none ~n:(Giraf.Crash.n crash);
      adversary;
      horizon;
      seed;
    }
  in
  let svc = Ws_runner.run config ~workload:(to_service_workload workload) in
  { records = records_of_ops workload svc.ops; ws_ops = svc.ops; trace = svc.trace }

let check_regular records =
  let writes =
    List.filter_map
      (fun r ->
        match r.op, r.rank with
        | Write v, Some rank -> Some (v, rank, r.invoked, r.completed)
        | Write _, None | Read, _ -> None)
      records
  in
  let reads =
    List.filter_map
      (fun r ->
        match r.op, r.completed with
        | Read, Some c -> Some (r.client, r.result, r.invoked, c)
        | Read, None | Write _, _ -> None)
      records
  in
  let check_read (client, result, invoked, completed) =
    let prior =
      List.filter
        (fun (_, _, _, wc) -> match wc with Some c -> c < invoked | None -> false)
        writes
    in
    let concurrent =
      List.filter
        (fun (_, _, wi, wc) ->
          wi <= completed && match wc with None -> true | Some c -> c >= invoked)
        writes
    in
    let strongest =
      List.fold_left
        (fun acc (v, rank, _, _) ->
          match acc with
          | None -> Some (rank, v)
          | Some (r, v') -> if (rank, v) > (r, v') then Some (rank, v) else acc)
        None prior
    in
    let allowed =
      (match strongest with None -> [] | Some (_, v) -> [ v ])
      @ List.map (fun (v, _, _, _) -> v) concurrent
    in
    match result with
    | None ->
      if prior = [] then []
      else
        [
          Giraf.Checker.Register_stale_read
            {
              reader = client;
              read_value = -1;
              expected = (match strongest with Some (_, v) -> v | None -> -1);
            };
        ]
    | Some v ->
      if List.exists (Value.equal v) allowed then []
      else
        [
          Giraf.Checker.Register_stale_read
            {
              reader = client;
              read_value = v;
              expected = (match strongest with Some (_, v) -> v | None -> -1);
            };
        ]
  in
  List.concat_map check_read reads
