(** Algorithm 2 — consensus in the eventually synchronous (ES) environment.

    Safety idea: a value is {e written} when it appears in {e every} message
    received in a round — in particular in the current source's message, so
    it is known to everybody. A process decides its value [VAL] once
    [PROPOSED = WRITTENOLD = {VAL}]: the value was written in the previous
    round and nothing else is in flight.

    Liveness: once the environment is synchronous, everyone receives the
    same message sets, selects the same maximum written value, and decides
    two even rounds later (Thm. 1). *)

type state

(** Messages are the [PROPOSED] value sets. *)
include
  Anon_giraf.Intf.ALGORITHM
    with type state := state
     and type msg = Anon_kernel.Value.Set.t

val proposed : state -> Anon_kernel.Value.Set.t
val written : state -> Anon_kernel.Value.Set.t

val current_val : state -> Anon_kernel.Value.t
(** The process's current estimate [VAL]. *)

val state_key : state -> string
(** Canonical, run-independent serialization of the full local state —
    equal strings iff equal states. The model checker's symmetry reduction
    builds its multiset keys from this. *)

val msg_key : msg -> string
(** Canonical serialization of a message ([PROPOSED] set). *)

module No_written_old_guard :
  Anon_giraf.Intf.ALGORITHM
    with type msg = Anon_kernel.Value.Set.t
     and type state = state
(** Ablation A2: decides as soon as [PROPOSED = {VAL}] with a non-empty
    [WRITTEN], skipping the [WRITTENOLD] guard of line 9. Violates
    agreement under adversarial ES schedules — the guard is load-bearing. *)
