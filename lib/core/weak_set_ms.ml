open Anon_kernel

let name = "weak-set-ms"

type msg = Value.Set.t

type state = {
  value : Value.t option;  (* VAL, None encodes the initial ⊥ *)
  proposed : Value.Set.t;
  written : Value.Set.t;
  block : bool;
}

let msg_compare = Value.Set.compare
let msg_size = Value.Set.cardinal
let pp_msg = Value.pp_set

let initialize () =
  let st =
    { value = None; proposed = Value.Set.empty; written = Value.Set.empty; block = false }
  in
  (st, st.proposed)

let intersect_all = function
  | [] -> Value.Set.empty (* unreachable: own message always present *)
  | m :: ms -> List.fold_left Value.Set.inter m ms

let compute st ~round:_ ~inbox:{ Anon_giraf.Intf.current; fresh } =
  let written = intersect_all current in
  (* Line 15 unions messages of every round heard so far; [fresh] carries
     exactly the arrivals (including late ones) since the last round. *)
  let proposed =
    List.fold_left (fun acc (_, m) -> Value.Set.union acc m) st.proposed fresh
  in
  let block =
    st.block
    && not (match st.value with None -> false | Some v -> Value.Set.mem v written)
  in
  let st = { st with written; proposed; block } in
  (st, st.proposed)

let add st v =
  if st.block then invalid_arg "Weak_set_ms.add: an add is already pending";
  { st with proposed = Value.Set.add v st.proposed; value = Some v; block = true }

let add_pending st = st.block
let get st = st.proposed
let written st = st.written
let pending_value st = if st.block then st.value else None

let set_key s =
  "{" ^ String.concat "," (List.map Value.to_string (Value.Set.elements s)) ^ "}"

let msg_key = set_key

let state_key st =
  Printf.sprintf "v%s p%s w%s b%b"
    (match st.value with None -> "_" | Some v -> Value.to_string v)
    (set_key st.proposed) (set_key st.written) st.block
