open Anon_kernel

type msg = Value.Set.t

type state = {
  value : Value.t;  (* VAL *)
  proposed : Value.Set.t;
  written : Value.Set.t;
  written_old : Value.Set.t;
}

module Impl (P : sig
  val name : string
  val use_written_old_guard : bool
end) =
struct
  let name = P.name

  type nonrec msg = msg
  type nonrec state = state

  let msg_compare = Value.Set.compare
  let msg_size = Value.Set.cardinal
  let pp_msg = Value.pp_set
  let leader _ = None

  let initialize v =
    let st =
      {
        value = v;
        proposed = Value.Set.empty;
        written = Value.Set.empty;
        written_old = Value.Set.empty;
      }
    in
    (st, st.proposed)

  let intersect_all = function
    | [] -> Value.Set.empty (* unreachable: own message is always present *)
    | m :: ms -> List.fold_left Value.Set.inter m ms

  let union_all ms = List.fold_left Value.Set.union Value.Set.empty ms

  let should_decide st =
    let singleton_val = Value.Set.singleton st.value in
    if P.use_written_old_guard then
      (* Line 9: PROPOSED = WRITTENOLD = {VAL}. *)
      Value.Set.equal st.proposed st.written_old
      && Value.Set.equal st.written_old singleton_val
    else
      (* Ablation A2: no memory of the previous even round. *)
      Value.Set.equal st.proposed singleton_val
      && not (Value.Set.is_empty st.written)

  (* Placement of the updates (the listing's indentation is ambiguous;
     the proofs pin it down): PROPOSED is reset only in even rounds
     ("no value is removed from a set PROPOSED in odd rounds", Lemma 2),
     while WRITTENOLD := WRITTEN runs every round (Lemma 2 equates
     WRITTENOLD at even round k with WRITTEN at round k-1). *)
  let compute st ~round ~inbox:{ Anon_giraf.Intf.current; fresh = _ } =
    let written = intersect_all current in
    let proposed = Value.Set.union (union_all current) st.proposed in
    let st = { st with written; proposed } in
    if round mod 2 <> 0 then begin
      let st = { st with written_old = written } in
      (st, st.proposed, None)
    end
    else if should_decide st then (st, st.proposed, Some st.value)
    else begin
      let value =
        if Value.Set.is_empty written then st.value else Value.Set.max_elt written
      in
      let st =
        { value; proposed = Value.Set.singleton value; written; written_old = written }
      in
      (st, st.proposed, None)
    end
end

module Default = Impl (struct
  let name = "es-consensus"
  let use_written_old_guard = true
end)

include (
  Default : module type of Default with type msg := msg and type state := state)

module No_written_old_guard = Impl (struct
  let name = "es-consensus/no-written-old"
  let use_written_old_guard = false
end)

let proposed st = st.proposed
let written st = st.written
let current_val st = st.value

let add_set b s =
  Buffer.add_char b '{';
  let first = ref true in
  Value.Set.iter
    (fun v ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b (Value.to_string v))
    s;
  Buffer.add_char b '}'

let set_key s =
  let b = Buffer.create 32 in
  add_set b s;
  Buffer.contents b

let msg_key = set_key

let state_key st =
  let b = Buffer.create 64 in
  Buffer.add_char b 'v';
  Buffer.add_string b (Value.to_string st.value);
  Buffer.add_string b " p";
  add_set b st.proposed;
  Buffer.add_string b " w";
  add_set b st.written;
  Buffer.add_string b " o";
  add_set b st.written_old;
  Buffer.contents b
