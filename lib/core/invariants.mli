(** Online safety predicates for the model checker.

    {!Anon_giraf.Checker} judges a complete trace after the fact; the
    bounded explorer needs the same judgements {e incrementally}, at the
    transition that makes them false, so a counterexample is reported at
    the shallowest depth that exhibits it. Violations are reported in the
    checker's vocabulary ({!Anon_giraf.Checker.violation}) so witnesses
    render identically on both paths. *)

module Consensus : sig
  type t

  val create : ?agreement_exempt:int list -> inputs:Anon_kernel.Value.t list -> unit -> t
  (** [agreement_exempt] (default [\[\]]) lists pids outside the agreement
      obligation — churners, whose post-rejoin solo decisions are
      legitimate (see {!Anon_giraf.Checker.check_consensus}). *)

  val observe :
    t -> pid:int -> value:Anon_kernel.Value.t -> t * Anon_giraf.Checker.violation list
  (** Record one decision. Flags validity (value never proposed) against
      [inputs], agreement against the earliest recorded decision among
      non-exempt pids (exempt deciders are skipped in both directions), and
      irrevocability — a process deciding twice with different values —
      as an agreement violation of the process with itself. *)

  val decided : t -> (int * Anon_kernel.Value.t) list
  (** All decisions observed so far, earliest first. *)
end

module Weak_set : sig
  type t

  val create : unit -> t

  val invoke_add : t -> Anon_kernel.Value.t -> t
  val complete_add : t -> Anon_kernel.Value.t -> time:int -> t

  val invoked : t -> Anon_kernel.Value.Set.t
  val completed_values : t -> Anon_kernel.Value.Set.t
  (** The invoked / completed value sets — the permutation-invariant facts
      the model checker folds into its canonical keys (completion {e times}
      are irrelevant to future judgements: any past completion precedes any
      future invocation). *)

  val observe_get :
    t ->
    client:int ->
    correct:bool ->
    invoked_at:int ->
    result:Anon_kernel.Value.Set.t ->
    Anon_giraf.Checker.violation list
  (** Judge one completed [get] (times in the service-runner logical
      clock: computes at [2k], ops at [2k + 1]). Inclusion: every add
      completed strictly before [invoked_at] must appear in [result]
      (only enforced for correct clients, as in
      {!Anon_giraf.Checker.check_weak_set}); non-triviality: every member
      of [result] must stem from some invoked add. Call it only after
      recording every add invocation of the same ops phase. *)
end
