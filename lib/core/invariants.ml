open Anon_kernel
module Checker = Anon_giraf.Checker

module Consensus = struct
  type t = {
    inputs : Value.Set.t;
    exempt : int list;  (* pids outside the agreement obligation *)
    first : (int * Value.t) option;
    decided : (int * Value.t) list;  (* latest first *)
  }

  let create ?(agreement_exempt = []) ~inputs () =
    {
      inputs = Value.set_of_list inputs;
      exempt = agreement_exempt;
      first = None;
      decided = [];
    }

  let observe t ~pid ~value =
    let exempt = List.mem pid t.exempt in
    let validity =
      if Value.Set.mem value t.inputs then []
      else [ Checker.Validity_violation { pid; value } ]
    in
    let agreement =
      if exempt then []
      else
        match t.first with
        | Some (p1, v1) when not (Value.equal v1 value) ->
          [ Checker.Agreement_violation { p1; v1; p2 = pid; v2 = value } ]
        | Some _ | None -> []
    in
    let irrevocability =
      match List.assoc_opt pid t.decided with
      | Some v0 when not (Value.equal v0 value) ->
        [ Checker.Agreement_violation { p1 = pid; v1 = v0; p2 = pid; v2 = value } ]
      | Some _ | None -> []
    in
    let t =
      {
        t with
        first =
          (if exempt then t.first
           else match t.first with None -> Some (pid, value) | some -> some);
        decided = (pid, value) :: t.decided;
      }
    in
    (t, validity @ agreement @ irrevocability)

  let decided t = List.rev t.decided
end

module Weak_set = struct
  type t = {
    invoked : Value.Set.t;
    completed : (Value.t * int) list;  (* (value, completion time), latest first *)
  }

  let create () = { invoked = Value.Set.empty; completed = [] }
  let invoke_add t v = { t with invoked = Value.Set.add v t.invoked }
  let complete_add t v ~time = { t with completed = (v, time) :: t.completed }

  let invoked t = t.invoked

  let completed_values t =
    Value.set_of_list (List.map fst t.completed)

  let observe_get t ~client ~correct ~invoked_at ~result =
    let lost =
      if not correct then []
      else
        List.filter_map
          (fun (v, completed_at) ->
            if completed_at < invoked_at && not (Value.Set.mem v result) then
              Some
                (Checker.Weak_set_lost_add
                   { value = v; get_client = client; get_invoked = invoked_at })
            else None)
          (List.rev t.completed)
    in
    let phantom =
      Value.Set.fold
        (fun v acc ->
          if Value.Set.mem v t.invoked then acc
          else Checker.Weak_set_phantom_value { value = v; get_client = client } :: acc)
        result []
    in
    lost @ phantom
end
