open Anon_kernel

type message = {
  m_proposed : Pvalue.Set.t;
  m_history : History.t;
  m_counters : Counter_table.t;
}

type merge_rule = [ `Min | `Max ]

module type PARAMS = sig
  val merge : merge_rule
  val silent_non_leaders : bool

  val converged_disjunct : bool
  (** Line 15's second clause [PROPOSED ⊆ {VAL, ⊥}] — lets a non-leader
      keep proposing the value everybody already agrees on. *)
end

module type OBSERVABLE = sig
  include Anon_giraf.Intf.ALGORITHM with type msg = message

  val is_leader : state -> bool
end

module Impl (P : PARAMS) = struct
  let name =
    let base =
      match P.merge, P.silent_non_leaders with
      | `Min, false -> "ess-consensus"
      | `Max, false -> "ess-consensus/max-merge"
      | `Min, true -> "ess-consensus/silent"
      | `Max, true -> "ess-consensus/max-merge-silent"
    in
    if P.converged_disjunct then base else base ^ "/leaders-only"

  type msg = message

  type state = {
    value : Value.t;  (* VAL *)
    counters : Counter_table.t;  (* C *)
    history : History.t;
    proposed : Pvalue.Set.t;
    written : Pvalue.Set.t;
    written_old : Pvalue.Set.t;
    leader_flag : bool;
        (* The line-15 leader test as last evaluated (the history is
           appended to afterwards, so re-evaluating against the current
           state would always be stale). *)
  }

  let msg_compare a b =
    let c = Pvalue.Set.compare a.m_proposed b.m_proposed in
    if c <> 0 then c
    else
      let c = History.compare a.m_history b.m_history in
      if c <> 0 then c else Counter_table.compare a.m_counters b.m_counters

  let msg_size m =
    Pvalue.Set.cardinal m.m_proposed
    + History.length m.m_history
    + Counter_table.cardinal m.m_counters

  let pp_msg ppf m =
    Format.fprintf ppf "⟨%a,%a,%a⟩" Pvalue.pp_set m.m_proposed History.pp m.m_history
      Counter_table.pp m.m_counters

  let leader st = Some st.leader_flag

  let message_of st =
    { m_proposed = st.proposed; m_history = st.history; m_counters = st.counters }

  let initialize v =
    let st =
      {
        value = v;
        counters = Counter_table.empty;
        history = History.of_list [ v ];
        proposed = Pvalue.Set.empty;
        written = Pvalue.Set.empty;
        written_old = Pvalue.Set.empty;
        (* An all-zero counter table makes everybody a leader. *)
        leader_flag = true;
      }
    in
    (st, message_of st)

  let intersect_proposed = function
    | [] -> Pvalue.Set.empty (* unreachable: own message always present *)
    | m :: ms ->
      List.fold_left (fun acc m -> Pvalue.Set.inter acc m.m_proposed) m.m_proposed ms

  let union_proposed ms =
    List.fold_left (fun acc m -> Pvalue.Set.union acc m.m_proposed) Pvalue.Set.empty ms

  (* Line 8. The paper merges with pointwise [min] (default 0): a history's
     counter is only as high as the slowest table that travelled this
     round. [`Max] is ablation A3. *)
  let merge_counters ms =
    let tables = List.map (fun m -> m.m_counters) ms in
    match P.merge with
    | `Min -> Counter_table.min_merge tables
    | `Max ->
      List.fold_left
        (fun acc t ->
          List.fold_left
            (fun acc (h, c) -> if c > Counter_table.get acc h then Counter_table.set acc h c else acc)
            acc (Counter_table.bindings t))
        Counter_table.empty tables

  let is_leader_in counters history = Counter_table.is_max counters history

  let compute st ~round ~inbox:{ Anon_giraf.Intf.current; fresh = _ } =
    let written = intersect_proposed current in
    let proposed = Pvalue.Set.union (union_proposed current) st.proposed in
    let counters = merge_counters current in
    (* Line 9: bump the counter of every received history to one more than
       the best counter among its prefixes. *)
    let counters =
      List.fold_left
        (fun c m -> Counter_table.bump_prefix_max c m.m_history)
        counters current
    in
    let st = { st with written; proposed; counters } in
    (* As in Alg. 2, WRITTENOLD := WRITTEN runs every round (the agreement
       proof of Thm. 2 "compares Lemma 2", which needs WRITTENOLD at an
       even round to be the previous round's WRITTEN); PROPOSED is only
       rewritten in even rounds. *)
    if round mod 2 <> 0 then begin
      let st =
        { st with written_old = written; history = History.snoc st.history st.value }
      in
      (st, message_of st, None)
    end
    else if
      Pvalue.Set.equal st.written_old (Pvalue.Set.singleton (Pvalue.v st.value))
      && Pvalue.subset_of_val_bot st.value st.proposed
    then (st, message_of st, Some st.value)
    else begin
      let value =
        match Pvalue.max_value written with None -> st.value | Some v -> v
      in
      let converged =
        P.converged_disjunct && Pvalue.subset_of_val_bot value proposed
      in
      let leader_flag = is_leader_in counters st.history in
      let proposed =
        if leader_flag || converged then Pvalue.Set.singleton (Pvalue.v value)
        else if P.silent_non_leaders then Pvalue.Set.empty
        else Pvalue.Set.singleton Pvalue.bot
      in
      let st =
        {
          st with
          value;
          proposed;
          leader_flag;
          written_old = written;
          written = proposed;
          history = History.snoc st.history value;
        }
      in
      (st, message_of st, None)
    end

  let is_leader st = st.leader_flag
  let current_val st = st.value
  let history st = st.history
  let counters st = st.counters
  let proposed st = st.proposed

  (* Canonical, run-independent serializations: histories render as their
     value sequences and counter tables sort bindings by that rendering, so
     keys never depend on intern ids (which vary across interner scopes). *)
  let pset_key s =
    "{"
    ^ String.concat ","
        (List.map
           (function Pvalue.Bot -> "_" | Pvalue.Val v -> Value.to_string v)
           (Pvalue.Set.elements s))
    ^ "}"

  let history_key h =
    "<" ^ String.concat "." (List.map Value.to_string (History.to_list h)) ^ ">"

  let counters_key c =
    let bindings =
      List.sort compare
        (List.map (fun (h, cnt) -> (History.to_list h, cnt)) (Counter_table.bindings c))
    in
    "["
    ^ String.concat ";"
        (List.map
           (fun (vs, cnt) ->
             String.concat "." (List.map Value.to_string vs) ^ "=" ^ string_of_int cnt)
           bindings)
    ^ "]"

  let msg_key m =
    Printf.sprintf "p%s h%s c%s" (pset_key m.m_proposed) (history_key m.m_history)
      (counters_key m.m_counters)

  let state_key st =
    Printf.sprintf "v%s c%s h%s p%s w%s o%s l%b" (Value.to_string st.value)
      (counters_key st.counters) (history_key st.history) (pset_key st.proposed)
      (pset_key st.written) (pset_key st.written_old) st.leader_flag
end

module Default = Impl (struct
  let merge = `Min
  let silent_non_leaders = false
  let converged_disjunct = true
end)

include Default

module Ablation (P : PARAMS) = Impl (P)
