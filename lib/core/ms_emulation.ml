open Anon_kernel
module Giraf = Anon_giraf

type latency_fn = pid:int -> round:int -> Rng.t -> int

let uniform_latency ~max ~pid:_ ~round:_ rng = Rng.int_in rng 1 (Stdlib.max 1 max)
let fixed_latency l ~pid:_ ~round:_ _rng = Stdlib.max 1 l

let alternating_latency ~fast ~slow ~pid ~round _rng =
  if (pid + round) mod 2 = 1 then Stdlib.max 1 fast else Stdlib.max 1 slow

type config = {
  inputs : Value.t list;
  crash : Giraf.Crash.t;
  horizon_rounds : int;
  max_steps : int;
  seed : int;
  latency : latency_fn;
  stop_on_decision : bool;
}

let default_config ?(horizon_rounds = 100) ?(max_steps = 100_000) ?(seed = 42)
    ?(latency = fun ~pid ~round rng -> uniform_latency ~max:3 ~pid ~round rng)
    ?(stop_on_decision = true) ~inputs ~crash () =
  if List.length inputs <> Giraf.Crash.n crash then
    invalid_arg "Ms_emulation.default_config: inputs/crash size mismatch";
  { inputs; crash; horizon_rounds; max_steps; seed; latency; stop_on_decision }

type outcome = {
  trace : Giraf.Trace.t;
  decisions : (int * int * Value.t) list;
  all_correct_decided : bool;
  steps : int;
  rounds_completed : int array;
}

module Make (A : Giraf.Intf.ALGORITHM) = struct
  (* Shared weak-set elements are ⟨message, round⟩ pairs — identical
     messages from different processes merge, exactly as anonymity
     dictates (footnote 2 of the paper: receiving an identical message
     from another process is as good). *)
  module Elt = struct
    type t = int * A.msg (* round, message *)

    let compare (k1, m1) (k2, m2) =
      let c = Int.compare k1 k2 in
      if c <> 0 then c else A.msg_compare m1 m2
  end

  type phase =
    | Ready  (** About to trigger its next end-of-round. *)
    | Waiting of { complete_at : int; sent_round : int }
    | Stopped  (** Crashed, decided, or past the round horizon. *)

  type proc = {
    pid : int;
    mutable st : A.state option;
    mutable round : int;  (* end-of-rounds performed *)
    mutable phase : phase;
    mailbox : A.msg Giraf.Mailbox.t;
    mutable delivered : Elt.t list;
    mutable delivery_log : (Elt.t * int) list;
        (* (element, round the process was in when it got the element);
           timeliness is derived post-hoc because identical messages from
           several senders merge into one element whose owner set is only
           complete at the end of the run. *)
  }

  (* Per-element add bookkeeping, for visibility and per-owner completion. *)
  type add_op = { owner : int; elt : Elt.t; started : int; complete_at : int }

  let run config =
    let inputs = Array.of_list config.inputs in
    let n = Array.length inputs in
    let rng = Rng.make config.seed in
    let correct = Giraf.Crash.correct config.crash in
    let procs =
      Array.init n (fun pid ->
          {
            pid;
            st = None;
            round = 0;
            phase = Ready;
            mailbox = Giraf.Mailbox.create ~compare:A.msg_compare ();
            delivered = [];
            delivery_log = [];
          })
    in
    let ops : add_op list ref = ref [] in
    (* An element is visible once the earliest add of it completed. *)
    let visible_elements now =
      List.filter_map (fun op -> if op.complete_at <= now then Some op.elt else None) !ops
      |> List.sort_uniq Elt.compare
    in
    let decisions = ref [] in
    let halted = Array.make n false in
    (* Per emulated round bookkeeping for the trace. *)
    let senders : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    let computed : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    let decided_at : (int, (int * Value.t) list) Hashtbl.t = Hashtbl.create 64 in
    let crashed_at : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    let msg_sizes : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
    let push tbl k x =
      Hashtbl.replace tbl k (x :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
    in
    let owners_of elt =
      List.filter_map
        (fun op -> if Elt.compare op.elt elt = 0 then Some op.owner else None)
        !ops
      |> List.sort_uniq Int.compare
    in
    let all_correct_decided () =
      List.for_all (fun p -> halted.(p)) correct
    in
    let steps = ref 0 in
    let running = ref true in
    (* One end-of-round for process p at time t: compute the previous round
       (or initialize), then begin adding the next round's pair. *)
    let end_of_round proc t =
      let next = proc.round + 1 in
      match Giraf.Crash.crash_round config.crash proc.pid with
      | Some r when r <= next ->
        proc.phase <- Stopped;
        push crashed_at next proc.pid
      | Some _ | None ->
        if next > config.horizon_rounds then proc.phase <- Stopped
        else begin
          let outcome =
            if next = 1 then begin
              let st, m = A.initialize inputs.(proc.pid) in
              proc.st <- Some st;
              Some m
            end
            else begin
              let fresh = Giraf.Mailbox.drain proc.mailbox ~upto:(next - 1) in
              let current = Giraf.Mailbox.current proc.mailbox ~round:(next - 1) in
              let st = match proc.st with Some st -> st | None -> assert false in
              let st', m, dec =
                A.compute st ~round:(next - 1) ~inbox:{ Giraf.Intf.current; fresh }
              in
              proc.st <- Some st';
              push computed (next - 1) proc.pid;
              match dec with
              | Some v ->
                decisions := (proc.pid, next - 1, v) :: !decisions;
                push decided_at (next - 1) (proc.pid, v);
                halted.(proc.pid) <- true;
                proc.phase <- Stopped;
                None
              | None -> Some m
            end
          in
          match outcome with
          | None -> ()
          | Some m ->
            proc.round <- next;
            push senders next proc.pid;
            push msg_sizes next (proc.pid, A.msg_size m);
            let lat = config.latency ~pid:proc.pid ~round:next rng in
            let lat = Stdlib.max 1 lat in
            ops := { owner = proc.pid; elt = (next, m); started = t; complete_at = t + lat }
                   :: !ops;
            (* Own message is delivered to itself immediately (Alg. 1
               line 10 keeps the process's own message in its mailbox). *)
            Giraf.Mailbox.schedule proc.mailbox ~arrival:next ~sent:next m;
            proc.delivered <- (next, m) :: proc.delivered;
            proc.delivery_log <- ((next, m), next) :: proc.delivery_log;
            proc.phase <- Waiting { complete_at = t + lat; sent_round = next }
        end
    in
    while !running && !steps <= config.max_steps do
      let t = !steps in
      Array.iter
        (fun proc ->
          match proc.phase with
          | Stopped -> ()
          | Ready -> end_of_round proc t
          | Waiting { complete_at; sent_round = _ } when complete_at <= t ->
            (* Our own add completed: read the set, deliver everything new,
               then trigger the next end-of-round (Alg. 5 lines 5–9). *)
            let fresh =
              List.filter
                (fun elt ->
                  not (List.exists (fun d -> Elt.compare d elt = 0) proc.delivered))
                (visible_elements t)
            in
            List.iter
              (fun ((k, m) as elt) ->
                proc.delivered <- elt :: proc.delivered;
                proc.delivery_log <- (elt, proc.round) :: proc.delivery_log;
                (* Receive ⟨m, k⟩: lands in M[k]; it is timely for round k
                   iff the process is still in a round <= k, i.e. will
                   consume it at its compute(k). *)
                let arrival = Stdlib.max proc.round k in
                Giraf.Mailbox.schedule proc.mailbox ~arrival ~sent:k m)
              fresh;
            end_of_round proc t
          | Waiting _ -> ())
        procs;
      if config.stop_on_decision && all_correct_decided () then running := false;
      incr steps
    done;
    (* Assemble the emulated-round trace. *)
    let max_round =
      Array.fold_left (fun acc proc -> Stdlib.max acc proc.round) 0 procs
    in
    (* Timeliness is derived post-hoc: process q received sender s's
       round-k message timely iff q got an element ⟨m, k⟩ while still in a
       round <= k and s is one of its (merged, anonymous) owners. *)
    let timely_pairs_of k =
      Array.to_list procs
      |> List.concat_map (fun proc ->
             List.concat_map
               (fun (((k', _) as elt), j) ->
                 if k' = k && j <= k then
                   List.filter_map
                     (fun owner ->
                       if owner <> proc.pid then Some (owner, proc.pid) else None)
                     (owners_of elt)
                 else [])
               proc.delivery_log)
      |> List.sort_uniq compare
    in
    let round_info k =
      let timely_pairs = timely_pairs_of k in
      let timely_by_sender =
        List.sort_uniq Int.compare (List.map fst timely_pairs)
        |> List.map (fun s ->
               (s, List.filter_map (fun (s', q) -> if s' = s then Some q else None) timely_pairs))
      in
      let computed_k = Option.value ~default:[] (Hashtbl.find_opt computed k) in
      {
        Giraf.Trace.round = k;
        senders = List.sort Int.compare (Option.value ~default:[] (Hashtbl.find_opt senders k));
        crashing = Option.value ~default:[] (Hashtbl.find_opt crashed_at k);
        source = None;
        timely = timely_by_sender;
        (* Every process that computed round k was owed the source's
           round-k pair (same strengthening as in Runner). *)
        obligated = List.sort Int.compare computed_k;
        decided = Option.value ~default:[] (Hashtbl.find_opt decided_at k);
        msg_sizes = Option.value ~default:[] (Hashtbl.find_opt msg_sizes k);
      }
    in
    let rounds = List.init max_round (fun i -> round_info (i + 1)) in
    let trace =
      {
        Giraf.Trace.n;
        inputs;
        crash = config.crash;
        churn = Giraf.Churn.none ~n;
        env = Giraf.Env.Ms;
        rounds;
      }
    in
    {
      trace;
      decisions = List.rev !decisions;
      all_correct_decided = all_correct_decided ();
      steps = !steps;
      rounds_completed = Array.map (fun proc -> proc.round) procs;
    }
end
