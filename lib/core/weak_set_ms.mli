(** Algorithm 4 — a weak-set in the moving-source (MS) environment.

    [add v] inserts [v] into the local [PROPOSED] set and blocks until [v]
    is {e written} — contained in every message received in some round,
    hence relayed by that round's source and known to everybody. [get]
    returns the local [PROPOSED] set, which accumulates the union of every
    message ever received (including late ones, Alg. 4 line 15).

    Together with Alg. 5 this shows weak-sets capture exactly the power of
    the MS environment (Thms. 3 and 4). *)

type state

include
  Anon_giraf.Intf.SERVICE
    with type state := state
     and type msg = Anon_kernel.Value.Set.t

val written : state -> Anon_kernel.Value.Set.t
val pending_value : state -> Anon_kernel.Value.t option
(** The value of the in-progress [add], if any ([VAL] while [BLOCK]). *)

val state_key : state -> string
(** Canonical, run-independent serialization of the full local state (for
    the model checker's symmetry reduction). *)

val msg_key : msg -> string
