open Anon_kernel
module Adv = Anon_giraf.Adversary
module Crash = Anon_giraf.Crash
module Churn = Anon_giraf.Churn
module Env = Anon_giraf.Env
module Json = Anon_obs.Json

type algo = Es | Ess | Weak_set | Register

let algo_name = function
  | Es -> "es"
  | Ess -> "ess"
  | Weak_set -> "weak_set"
  | Register -> "register"

let all_algos = [ Es; Ess; Weak_set; Register ]

type schedule = { sched_env : Env.t; plans : Adv.plan list }

type t = {
  algo : algo;
  n : int;
  gst : int;
  rotation : Adv.rotation;
  noise : float;
  horizon : int;
  seed : int;
  crashes : Crash.event list;
  churn : Churn.event list;
  env : Env.t option;
  ops_per_client : int;
  faults : Fault.spec;
  schedule : schedule option;
}

(* Horizons generous enough for the liveness theorems (Thm. 1/2/3) to have
   fired long before the run is cut off, leaving slack for fault-injected
   delays on non-obligated links. A dynamic environment only promises full
   synchrony on the healed tail of each window, so progress slows by a
   factor of the window length. *)
let horizon_for ?env algo ~n ~gst =
  let base =
    match algo with
    | Es -> gst + (6 * n) + 40
    | Ess -> gst + (20 * n) + 80
    | Weak_set -> 40 * (n + 2)
    | Register -> 300 + (40 * n)
  in
  match env with
  | Some (Env.Dynamic { stability; _ }) -> stability * base
  | Some _ | None -> base

let sample ?algo ?(inadmissible = false) ?(dynamic = false) ?(churn = false) rng =
  let algo = match algo with Some a -> a | None -> Rng.pick rng all_algos in
  let n = if inadmissible then Rng.int_in rng 3 6 else Rng.int_in rng 2 6 in
  let gst = Rng.int_in rng 3 12 in
  let rotation = if Rng.bool rng then Adv.Round_robin else Adv.Random_source in
  let noise = Rng.pick rng [ 0.0; 0.1; 0.3 ] in
  let seed = Rng.int_in rng 1 1_000_000 in
  let max_failures =
    (* Keep >= 2 correct processes when forcing inadmissible schedules
       (source alternation needs two correct senders); the register checker
       assumes crash-free clients (see T6), so keep those runs clean. *)
    match algo with
    | Register -> 0
    | _ -> if inadmissible then n - 2 else n - 1
  in
  let crashes =
    if max_failures <= 0 then []
    else
      let failures = Rng.int_in rng 0 max_failures in
      if failures = 0 then []
      else if Rng.bool rng then
        Fault.burst_crashes ~n ~failures ~at:(Rng.int_in rng 1 8)
          ~width:(Rng.int_in rng 0 3) rng
      else
        Fault.cascade_crashes ~n ~failures ~start:(Rng.int_in rng 1 6)
          ~gap:(Rng.int_in rng 1 5) rng
  in
  (* Dynamic-graph override: only consensus and weak-set cases take it
     (the register stack layers on the MS emulation), and the admissible
     pool keeps stability >= 2 and a covering root — a rotating-root
     stability-1 regime legitimately never decides (that is the model
     checker's counterexample, not a fuzzing bug). *)
  let env =
    if (not dynamic) || algo = Register then None
    else Some (Env.Dynamic { stability = Rng.int_in rng 2 4; rooted = true })
  in
  (* Churn: disjoint from crashers, with at least one correct stayer.
     For the consensus algorithms only permanent leaves are sampled — a
     leaver is observationally a silent crash, which Alg. 2/3 tolerate,
     whereas a rejoiner re-initializes from its original input and can
     re-inject a value that never circulated before a stayer decided,
     legitimately splitting agreement (see DESIGN.md: the committed
     model-checker counterexample pins this down). The weak-set service is
     join-tolerant — its axioms are monotone in the set contents — so
     rejoiners are admissible there. *)
  let churn_events =
    if (not churn) || algo = Register then []
    else
      let crashed = List.map (fun (ev : Crash.event) -> ev.pid) crashes in
      let free =
        List.filter (fun p -> not (List.mem p crashed)) (List.init n Fun.id)
      in
      match free with
      | [] | [ _ ] -> []
      | free ->
        let count = Rng.int_in rng 1 (min 2 (List.length free - 1)) in
        let pids = List.filteri (fun i _ -> i < count) (Rng.shuffle rng free) in
        let may_rejoin = algo = Weak_set in
        List.map
          (fun pid ->
            let leave = Rng.int_in rng 2 (max 2 (gst - 1)) in
            let rejoin =
              if may_rejoin && Rng.chance rng 0.7 then
                Some (min gst (leave + Rng.int_in rng 1 2))
              else None
            in
            { Churn.pid; leave; rejoin })
          pids
  in
  let mode =
    if not inadmissible then None
    else
      match env with
      | Some (Env.Dynamic _) ->
        Some
          (if Rng.bool rng then Fault.Root_starvation { from_round = 2 }
           else Fault.Stability_break { from_round = 2 })
      | Some _ | None -> (
        match algo with
        | Ess when Rng.bool rng -> Some (Fault.Unstable_source { from_round = 2 })
        | _ -> Some (Fault.Drop_obligated { from_round = 2 }))
  in
  let faults = Fault.sample ~inadmissible:mode rng in
  {
    algo;
    n;
    gst;
    rotation;
    noise;
    horizon = horizon_for ?env algo ~n ~gst;
    seed;
    crashes;
    churn = churn_events;
    env;
    ops_per_client = Rng.int_in rng 2 6;
    faults;
    schedule = None;
  }

let adversary ?recorder t =
  let base =
    match t.schedule with
    | Some { sched_env; plans } ->
      Adv.of_schedule ~name:("mc-" ^ algo_name t.algo) ~env:sched_env plans
    | None -> (
      match t.env with
      | Some (Env.Dynamic { stability; rooted }) ->
        Adv.dynamic ~stability ~rooted ~rotation:t.rotation ~noise:t.noise ()
      | Some _ | None -> (
        match t.algo with
        | Es -> Adv.es ~gst:t.gst ~noise:t.noise ()
        | Ess -> Adv.ess ~gst:t.gst ~rotation:t.rotation ~noise:t.noise ()
        | Weak_set | Register -> Adv.ms ~rotation:t.rotation ~noise:t.noise ()))
  in
  (* Through the canonical composition point, so a future topology field
     cannot pick its own fault/sever order. *)
  Fault.compose ?recorder t.faults base

let crash t = Crash.of_events ~n:t.n t.crashes
let churn t = Churn.of_events ~n:t.n t.churn

let inputs t = Rng.shuffle (Rng.make t.seed) (List.init t.n (fun i -> i + 1))

(* The deterministic workload explicit-schedule (model-checker) cases use:
   each client alternates adds of distinct values with gets, one op queued
   per round from round 1 on (the service runner serializes them, one per
   round while no add is pending). *)
let mc_workload ~n ~ops_per_client =
  List.init n (fun pid ->
      ( pid,
        List.init ops_per_client (fun i ->
            ( i + 1,
              if i mod 2 = 0 then
                Anon_giraf.Service_runner.Do_add ((100 * (pid + 1)) + i)
              else Anon_giraf.Service_runner.Do_get )) ))

let pp ppf t =
  Format.fprintf ppf "%s n=%d gst=%d noise=%.2f horizon=%d seed=%d crashes=%d%s%s%s"
    (algo_name t.algo) t.n t.gst t.noise t.horizon t.seed (List.length t.crashes)
    (match t.env with
    | None -> ""
    | Some e -> Format.asprintf " env=%a" Env.pp e)
    (if t.churn = [] then ""
     else Printf.sprintf " churn=%d" (List.length t.churn))
    (match t.faults.inadmissible with
    | None -> ""
    | Some (Fault.Drop_obligated _) -> " [drop-obligated]"
    | Some (Fault.Unstable_source _) -> " [unstable-source]"
    | Some (Fault.Root_starvation _) -> " [root-starvation]"
    | Some (Fault.Stability_break _) -> " [stability-break]")

(* --- JSON ------------------------------------------------------------------ *)

let json_of_rotation = function
  | Adv.Round_robin -> Json.String "round_robin"
  | Adv.Random_source -> Json.String "random"
  | Adv.Pinned p -> Json.Obj [ ("pinned", Json.Int p) ]

let rotation_of_json = function
  | Json.String "round_robin" -> Ok Adv.Round_robin
  | Json.String "random" -> Ok Adv.Random_source
  | Json.Obj _ as j -> (
    match Json.member "pinned" j |> Option.map Json.to_int |> Option.join with
    | Some p -> Ok (Adv.Pinned p)
    | None -> Error "rotation: bad pinned object")
  | _ -> Error "rotation: expected round_robin/random/pinned"

let json_of_broadcast = function
  | Crash.Silent -> "silent"
  | Crash.Broadcast_all -> "all"
  | Crash.Broadcast_subset -> "subset"

let broadcast_of_json = function
  | "silent" -> Ok Crash.Silent
  | "all" -> Ok Crash.Broadcast_all
  | "subset" -> Ok Crash.Broadcast_subset
  | s -> Error ("crash broadcast: unknown mode " ^ s)

let json_of_crash (ev : Crash.event) =
  Json.Obj
    [
      ("pid", Json.Int ev.pid);
      ("round", Json.Int ev.round);
      ("broadcast", Json.String (json_of_broadcast ev.broadcast));
    ]

let json_of_churn (ev : Churn.event) =
  Json.Obj
    [
      ("pid", Json.Int ev.pid);
      ("leave", Json.Int ev.leave);
      ("rejoin", match ev.rejoin with None -> Json.Null | Some r -> Json.Int r);
    ]

let json_of_inadmissible = function
  | Fault.Drop_obligated { from_round } ->
    Json.Obj
      [ ("kind", Json.String "drop_obligated"); ("from_round", Json.Int from_round) ]
  | Fault.Unstable_source { from_round } ->
    Json.Obj
      [ ("kind", Json.String "unstable_source"); ("from_round", Json.Int from_round) ]
  | Fault.Root_starvation { from_round } ->
    Json.Obj
      [ ("kind", Json.String "root_starvation"); ("from_round", Json.Int from_round) ]
  | Fault.Stability_break { from_round } ->
    Json.Obj
      [ ("kind", Json.String "stability_break"); ("from_round", Json.Int from_round) ]

let json_of_faults (f : Fault.spec) =
  Json.Obj
    [
      ("duplicate", Json.Float f.duplicate);
      ("extra_delay", Json.Float f.extra_delay);
      ("max_extra", Json.Int f.max_extra);
      ("reorder", Json.Float f.reorder);
      ( "inadmissible",
        match f.inadmissible with None -> Json.Null | Some m -> json_of_inadmissible m
      );
    ]

let json_of_env = function
  | Env.Sync -> Json.String "sync"
  | Env.Ms -> Json.String "ms"
  | Env.Async -> Json.String "async"
  | Env.Es { gst } -> Json.Obj [ ("es", Json.Int gst) ]
  | Env.Ess { gst } -> Json.Obj [ ("ess", Json.Int gst) ]
  | Env.Dynamic { stability; rooted } ->
    Json.Obj [ ("dynamic", Json.Int stability); ("rooted", Json.Bool rooted) ]

let env_of_json = function
  | Json.String "sync" -> Ok Env.Sync
  | Json.String "ms" -> Ok Env.Ms
  | Json.String "async" -> Ok Env.Async
  | Json.Obj _ as j -> (
    match
      ( Json.member "es" j |> Option.map Json.to_int |> Option.join,
        Json.member "ess" j |> Option.map Json.to_int |> Option.join,
        Json.member "dynamic" j |> Option.map Json.to_int |> Option.join )
    with
    | Some gst, None, None -> Ok (Env.Es { gst })
    | None, Some gst, None -> Ok (Env.Ess { gst })
    | None, None, Some stability ->
      let rooted =
        match Json.member "rooted" j |> Option.map Json.to_bool |> Option.join with
        | Some b -> b
        | None -> true
      in
      Ok (Env.Dynamic { stability; rooted })
    | _ -> Error "env: expected {es: gst}, {ess: gst} or {dynamic: stability}")
  | _ -> Error "env: expected sync/ms/async/{es}/{ess}/{dynamic}"

let json_of_plan (p : Adv.plan) =
  Json.Obj
    [
      ("source", match p.source with None -> Json.Null | Some s -> Json.Int s);
      ( "deliveries",
        Json.List
          (List.map
             (fun (sender, ds) ->
               Json.Obj
                 [
                   ("from", Json.Int sender);
                   ( "links",
                     Json.List
                       (List.map
                          (fun (d : Adv.delivery) ->
                            Json.Obj
                              [
                                ("to", Json.Int d.receiver);
                                ("at", Json.Int d.arrival);
                              ])
                          ds) );
                 ])
             p.deliveries) );
    ]

let json_of_schedule s =
  Json.Obj
    [
      ("env", json_of_env s.sched_env);
      ("plans", Json.List (List.map json_of_plan s.plans));
    ]

(* Schema version: v1 (PR 2/4 repro files, no field) has neither dynamic
   environments nor churn; v2 adds the optional [env] override and the
   [churn] schedule. Decoding accepts both; encoding always writes v2. *)
let version = 2

let to_json t =
  Json.Obj
    ([
       ("v", Json.Int version);
       ("algo", Json.String (algo_name t.algo));
       ("n", Json.Int t.n);
       ("gst", Json.Int t.gst);
       ("rotation", json_of_rotation t.rotation);
       ("noise", Json.Float t.noise);
       ("horizon", Json.Int t.horizon);
       ("seed", Json.Int t.seed);
       ("crashes", Json.List (List.map json_of_crash t.crashes));
       ("ops_per_client", Json.Int t.ops_per_client);
       ("faults", json_of_faults t.faults);
     ]
    @ (match t.env with None -> [] | Some e -> [ ("env", json_of_env e) ])
    @ (if t.churn = [] then []
       else [ ("churn", Json.List (List.map json_of_churn t.churn)) ])
    @ match t.schedule with None -> [] | Some s -> [ ("schedule", json_of_schedule s) ])

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let req_int j name =
  match Json.member name j |> Option.map Json.to_int |> Option.join with
  | Some n -> Ok n
  | None -> Error ("missing int field " ^ name)

let req_float j name =
  match Json.member name j with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int n) -> Ok (float_of_int n)
  | _ -> Error ("missing float field " ^ name)

let req_str j name =
  match Json.member name j |> Option.map Json.to_str |> Option.join with
  | Some s -> Ok s
  | None -> Error ("missing string field " ^ name)

let algo_of_string = function
  | "es" -> Ok Es
  | "ess" -> Ok Ess
  | "weak_set" -> Ok Weak_set
  | "register" -> Ok Register
  | s -> Error ("unknown algo " ^ s)

let crash_of_json j =
  let* pid = req_int j "pid" in
  let* round = req_int j "round" in
  let* b = req_str j "broadcast" in
  let* broadcast = broadcast_of_json b in
  Ok { Crash.pid; round; broadcast }

let churn_of_json j =
  let* pid = req_int j "pid" in
  let* leave = req_int j "leave" in
  let* rejoin =
    match Json.member "rejoin" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int r) -> Ok (Some r)
    | Some _ -> Error "churn: bad rejoin"
  in
  Ok { Churn.pid; leave; rejoin }

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_result f xs in
    Ok (y :: ys)

let inadmissible_of_json j =
  let* kind = req_str j "kind" in
  let* from_round = req_int j "from_round" in
  match kind with
  | "drop_obligated" -> Ok (Fault.Drop_obligated { from_round })
  | "unstable_source" -> Ok (Fault.Unstable_source { from_round })
  | "root_starvation" -> Ok (Fault.Root_starvation { from_round })
  | "stability_break" -> Ok (Fault.Stability_break { from_round })
  | s -> Error ("unknown inadmissible kind " ^ s)

let faults_of_json j =
  let* duplicate = req_float j "duplicate" in
  let* extra_delay = req_float j "extra_delay" in
  let* max_extra = req_int j "max_extra" in
  let* reorder = req_float j "reorder" in
  let* inadmissible =
    match Json.member "inadmissible" j with
    | None | Some Json.Null -> Ok None
    | Some m ->
      let* m = inadmissible_of_json m in
      Ok (Some m)
  in
  Ok { Fault.duplicate; extra_delay; max_extra; reorder; inadmissible }

let delivery_of_json j =
  let* receiver = req_int j "to" in
  let* arrival = req_int j "at" in
  Ok { Adv.receiver; arrival }

let sender_deliveries_of_json j =
  let* sender = req_int j "from" in
  let* ds =
    match Json.member "links" j with
    | Some (Json.List l) -> map_result delivery_of_json l
    | _ -> Error "plan: missing list field links"
  in
  Ok (sender, ds)

let plan_of_json j =
  let* source =
    match Json.member "source" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int s) -> Ok (Some s)
    | Some _ -> Error "plan: bad source"
  in
  let* deliveries =
    match Json.member "deliveries" j with
    | Some (Json.List l) -> map_result sender_deliveries_of_json l
    | _ -> Error "plan: missing list field deliveries"
  in
  Ok { Adv.source; deliveries }

let schedule_of_json j =
  let* sched_env =
    match Json.member "env" j with
    | Some e -> env_of_json e
    | None -> Error "schedule: missing field env"
  in
  let* plans =
    match Json.member "plans" j with
    | Some (Json.List l) -> map_result plan_of_json l
    | _ -> Error "schedule: missing list field plans"
  in
  Ok { sched_env; plans }

let of_json j =
  let* v =
    match Json.member "v" j with
    | None -> Ok 1 (* pre-versioning repro files (PR 2/4) *)
    | Some n -> (
      match Json.to_int n with
      | Some n when n >= 1 && n <= version -> Ok n
      | Some n ->
        Error
          (Printf.sprintf "unsupported scenario schema v%d (this build reads <= v%d)"
             n version)
      | None -> Error "v: expected an integer")
  in
  let* algo_s = req_str j "algo" in
  let* algo = algo_of_string algo_s in
  let* n = req_int j "n" in
  let* gst = req_int j "gst" in
  let* rotation =
    match Json.member "rotation" j with
    | Some r -> rotation_of_json r
    | None -> Error "missing field rotation"
  in
  let* noise = req_float j "noise" in
  let* horizon = req_int j "horizon" in
  let* seed = req_int j "seed" in
  let* crashes =
    match Json.member "crashes" j with
    | Some (Json.List l) -> map_result crash_of_json l
    | _ -> Error "missing list field crashes"
  in
  let* churn =
    if v < 2 then Ok []
    else
      match Json.member "churn" j with
      | None | Some Json.Null -> Ok []
      | Some (Json.List l) -> map_result churn_of_json l
      | Some _ -> Error "churn: expected a list"
  in
  let* env =
    if v < 2 then Ok None
    else
      match Json.member "env" j with
      | None | Some Json.Null -> Ok None
      | Some e ->
        let* e = env_of_json e in
        Ok (Some e)
  in
  let* ops_per_client = req_int j "ops_per_client" in
  let* faults =
    match Json.member "faults" j with
    | Some f -> faults_of_json f
    | None -> Error "missing field faults"
  in
  let* schedule =
    match Json.member "schedule" j with
    | None | Some Json.Null -> Ok None
    | Some s ->
      let* s = schedule_of_json s in
      Ok (Some s)
  in
  Ok
    {
      algo;
      n;
      gst;
      rotation;
      noise;
      horizon;
      seed;
      crashes;
      churn;
      env;
      ops_per_client;
      faults;
      schedule;
    }
