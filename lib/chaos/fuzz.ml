open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module Json = Anon_obs.Json

module Es_runner = G.Runner.Make (C.Es_consensus)
module Ess_runner = G.Runner.Make (C.Ess_consensus)
module Ws_runner = G.Service_runner.Make (C.Weak_set_ms)

let violation_strings vs =
  List.map (fun v -> Format.asprintf "%a" G.Checker.pp_violation v) vs

(* --- one case, end to end -------------------------------------------------- *)

let run_consensus ?recorder (case : Scenario.t) runner =
  let inputs = Scenario.inputs case in
  let adversary = Scenario.adversary case in
  (* Environments that never promise a deciding schedule get no
     termination check; everything the fuzzer samples today does. *)
  let expect_termination =
    match G.Adversary.env adversary with
    | G.Env.Async | G.Env.Dynamic { rooted = false; _ } -> false
    | G.Env.Sync | G.Env.Ms | G.Env.Es _ | G.Env.Ess _ | G.Env.Dynamic _ -> true
  in
  let config =
    G.Runner.default_config ~horizon:case.horizon ~seed:case.seed
      ~churn:(Scenario.churn case) ~inputs ~crash:(Scenario.crash case) adversary
  in
  let out = runner ?recorder config in
  G.Checker.check_env out.G.Runner.trace
  @ G.Checker.check_consensus ~expect_termination out.G.Runner.trace

let run_weak_set ?recorder (case : Scenario.t) =
  let crash = Scenario.crash case in
  let workload =
    match case.schedule with
    | Some _ ->
      (* Explicit-schedule (model-checker) cases pin the workload too, so
         the replay is deterministic end to end. *)
      Scenario.mc_workload ~n:case.n ~ops_per_client:case.ops_per_client
    | None ->
      let rng = Rng.make case.seed in
      G.Service_runner.random_workload ~n:case.n ~ops_per_client:case.ops_per_client
        ~max_start:(max 1 (case.horizon / 2)) ~value_range:1000 rng
  in
  let churn = Scenario.churn case in
  let config =
    {
      G.Service_runner.n = case.n;
      crash;
      churn;
      adversary = Scenario.adversary case;
      horizon = case.horizon;
      seed = case.seed;
    }
  in
  let out = Ws_runner.run ?recorder config ~workload in
  (* Correct stayers only: a rejoiner restarts on an empty replica, so its
     gets legitimately miss adds that completed before it was back. *)
  let correct =
    List.filter (G.Churn.is_stayer churn) (G.Crash.correct crash)
  in
  G.Checker.check_env out.trace @ G.Checker.check_weak_set ~correct out.ops

let run_register (case : Scenario.t) =
  let rng = Rng.make case.seed in
  let workload =
    List.init case.n (fun pid ->
        let ops =
          List.init case.ops_per_client (fun i ->
              let start = Rng.int_in rng 1 60 in
              if (i + pid) mod 2 = 0 then
                (start, C.Register_of_weak_set.Write ((100 * pid) + i))
              else (start, C.Register_of_weak_set.Read))
          |> List.sort compare
        in
        (pid, ops))
  in
  let out =
    C.Register_of_weak_set.run ~crash:(Scenario.crash case)
      ~adversary:(Scenario.adversary case) ~horizon:case.horizon ~seed:case.seed
      ~workload
  in
  G.Checker.check_env out.trace
  @ G.Checker.check_weak_set ~correct:(List.init case.n Fun.id) out.ws_ops
  @ C.Register_of_weak_set.check_regular out.records

(* Every case runs in its own kernel interner scope — the same isolation
   the pool gives its tasks — so a verdict is a pure function of the
   case, independent of what the campaign (or the shrinker) ran before
   it. That is what makes --jobs 1 and --jobs N reports byte-identical
   and repro files replayable from any process state. *)
let run_case ?recorder (case : Scenario.t) =
  Anon_exec.Pool.isolate
    (fun (case : Scenario.t) ->
      match case.algo with
      | Scenario.Es ->
        run_consensus ?recorder case (fun ?recorder c -> Es_runner.run ?recorder c)
      | Scenario.Ess ->
        run_consensus ?recorder case (fun ?recorder c ->
            Ess_runner.run ?recorder c)
      | Scenario.Weak_set -> run_weak_set ?recorder case
      | Scenario.Register -> run_register case)
    case

(* --- shrinking -------------------------------------------------------------- *)

let tag = function
  | G.Checker.Agreement_violation _ -> "agreement"
  | G.Checker.Validity_violation _ -> "validity"
  | G.Checker.Termination_violation _ -> "termination"
  | G.Checker.No_source _ -> "no_source"
  | G.Checker.Source_not_timely _ -> "source_not_timely"
  | G.Checker.Unstable_source _ -> "unstable_source"
  | G.Checker.No_root _ -> "no_root"
  | G.Checker.Stability_violation _ -> "stability"
  | G.Checker.Weak_set_lost_add _ -> "ws_lost_add"
  | G.Checker.Weak_set_phantom_value _ -> "ws_phantom"
  | G.Checker.Register_stale_read _ -> "register_stale"

let tags vs = List.sort_uniq compare (List.map tag vs)

let drop_last l = match List.rev l with [] -> [] | _ :: rest -> List.rev rest

let take k l = List.filteri (fun i _ -> i < k) l

(* Strictly-smaller neighbours of a case, most aggressive first. *)
let candidates (case : Scenario.t) =
  let smaller_n =
    if case.n <= 2 then []
    else
      let n = case.n - 1 in
      [
        {
          case with
          n;
          crashes = List.filter (fun (ev : G.Crash.event) -> ev.pid < n) case.crashes;
          churn = List.filter (fun (ev : G.Churn.event) -> ev.pid < n) case.churn;
        };
      ]
  in
  let shorter =
    let floor = case.gst + 4 in
    if case.horizon <= floor then []
    else [ { case with horizon = max floor (case.horizon / 2) } ]
  in
  let fewer_crashes =
    match case.crashes with
    | [] -> []
    | evs ->
      let half = take (List.length evs / 2) evs in
      List.sort_uniq compare [ { case with crashes = half }; { case with crashes = drop_last evs } ]
  in
  let fewer_churn =
    match case.churn with
    | [] -> []
    | evs -> [ { case with churn = drop_last evs } ]
  in
  let fewer_ops =
    match case.algo with
    | Scenario.Weak_set | Scenario.Register when case.ops_per_client > 1 ->
      [ { case with ops_per_client = case.ops_per_client - 1 } ]
    | _ -> []
  in
  let weaker_faults =
    let f = case.faults in
    List.filter_map Fun.id
      [
        (if f.duplicate > 0. then
           Some { case with faults = { f with duplicate = 0. } }
         else None);
        (if f.extra_delay > 0. then
           Some { case with faults = { f with extra_delay = 0. } }
         else None);
        (if f.reorder > 0. then Some { case with faults = { f with reorder = 0. } }
         else None);
        (if f.max_extra > 1 then Some { case with faults = { f with max_extra = 1 } }
         else None);
      ]
  in
  smaller_n @ shorter @ fewer_crashes @ fewer_churn @ fewer_ops @ weaker_faults

let shrink case vs =
  let orig_tags = tags vs in
  let explored = ref 0 in
  let still_fails c =
    incr explored;
    match run_case c with
    | [] -> None
    | vs' when List.exists (fun t -> List.mem t orig_tags) (tags vs') -> Some (c, vs')
    | _ -> None
  in
  let rec go case vs budget =
    if budget = 0 then (case, vs)
    else
      match List.find_map still_fails (candidates case) with
      | None -> (case, vs)
      | Some (c, vs') -> go c vs' (budget - 1)
  in
  let case, vs = go case vs 60 in
  (case, vs, !explored)

(* --- campaigns -------------------------------------------------------------- *)

type finding = {
  original : Scenario.t;
  original_violations : G.Checker.violation list;
  case : Scenario.t;
  violations : G.Checker.violation list;
  explored : int;
}

type report = { runs_done : int; finding : finding option }

let campaign ?algo ?(inadmissible = false) ?(dynamic = false) ?(churn = false)
    ?jobs ~runs ~seed () =
  let rng = Rng.make seed in
  (* Sampling consumes the rng stream independently of run outcomes, so
     drawing all cases up front yields exactly the cases the sequential
     campaign would have visited. *)
  let cases =
    Array.init runs (fun _ -> Scenario.sample ?algo ~inadmissible ~dynamic ~churn rng)
  in
  let jobs = Anon_exec.Pool.resolve ?jobs () in
  (* Evaluate in submission-order chunks and stop at the first chunk
     holding a violation; the lowest violating index wins, so the report
     matches the sequential first-failure semantics for any chunk size
     while only over-running a violation by at most one chunk. *)
  let chunk_size = max 1 (jobs * 4) in
  let rec first i = function
    | [] -> None
    | [] :: rest -> first (i + 1) rest
    | vs :: _ -> Some (i, vs)
  in
  let rec go start =
    if start >= runs then { runs_done = runs; finding = None }
    else
      let stop = min runs (start + chunk_size) in
      let chunk = Array.to_list (Array.sub cases start (stop - start)) in
      match first start (Anon_exec.Pool.map ~jobs (fun c -> run_case c) chunk) with
      | None -> go stop
      | Some (i, vs) ->
        let case = cases.(i) in
        (* Shrinking stays sequential: each candidate's verdict feeds the
           next step, and determinism of the minimal counterexample
           matters more than shrink latency. *)
        let shrunk, svs, explored = shrink case vs in
        {
          runs_done = i + 1;
          finding =
            Some
              {
                original = case;
                original_violations = vs;
                case = shrunk;
                violations = svs;
                explored;
              };
        }
  in
  go 0

(* --- repro files ------------------------------------------------------------ *)

let repro_json f =
  Json.Obj
    [
      ("case", Scenario.to_json f.case);
      ("violations", Json.List (List.map (fun s -> Json.String s) (violation_strings f.violations)));
      ("original", Scenario.to_json f.original);
      ( "original_violations",
        Json.List
          (List.map (fun s -> Json.String s) (violation_strings f.original_violations))
      );
      ("explored", Json.Int f.explored);
    ]

let write_repro ~path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (repro_json f));
      output_char oc '\n')

type replay = {
  case : Scenario.t;
  expected : string list;
  actual : G.Checker.violation list;
  matches : bool;
}

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let replay_json j =
  let* case =
    match Json.member "case" j with
    | Some c -> Scenario.of_json c
    | None -> Error "repro: missing field case"
  in
  let* expected =
    match Json.member "violations" j with
    | Some (Json.List l) ->
      let strs = List.filter_map Json.to_str l in
      if List.length strs = List.length l then Ok strs
      else Error "repro: non-string violation entry"
    | _ -> Error "repro: missing list field violations"
  in
  let actual = run_case case in
  Ok { case; expected; actual; matches = violation_strings actual = expected }

let replay ~path =
  let* contents =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error msg -> Error msg
  in
  let* j = Json.of_string contents in
  replay_json j
