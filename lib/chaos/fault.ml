open Anon_kernel
module Adv = Anon_giraf.Adversary
module Crash = Anon_giraf.Crash
module R = Anon_obs.Recorder
module M = Anon_obs.Metrics
module E = Anon_obs.Event

module Env = Anon_giraf.Env

type inadmissible =
  | Drop_obligated of { from_round : int }
  | Unstable_source of { from_round : int }
  | Root_starvation of { from_round : int }
  | Stability_break of { from_round : int }

type spec = {
  duplicate : float;
  extra_delay : float;
  max_extra : int;
  reorder : float;
  inadmissible : inadmissible option;
}

let none =
  { duplicate = 0.; extra_delay = 0.; max_extra = 2; reorder = 0.; inadmissible = None }

let is_noop s =
  s.duplicate <= 0. && s.extra_delay <= 0. && s.reorder <= 0. && s.inadmissible = None

let validate spec =
  let fail = Anon_giraf.Config_error.fail ~where:"Fault" in
  let prob name p =
    if Float.is_nan p then fail (Printf.sprintf "%s probability is NaN" name);
    if p < 0. || p > 1. then
      fail (Printf.sprintf "%s probability %g outside [0, 1]" name p)
  in
  prob "duplicate" spec.duplicate;
  prob "extra_delay" spec.extra_delay;
  prob "reorder" spec.reorder;
  if spec.max_extra < 0 then
    fail (Printf.sprintf "max_extra must be >= 0 (got %d)" spec.max_extra)

let sample ?(inadmissible = None) rng =
  {
    duplicate = (if Rng.chance rng 0.6 then Rng.float rng 0.3 else 0.);
    extra_delay = (if Rng.chance rng 0.6 then Rng.float rng 0.4 else 0.);
    max_extra = Rng.int_in rng 1 4;
    reorder = (if Rng.chance rng 0.6 then Rng.float rng 0.5 else 0.);
    inadmissible;
  }

(* [reached info] of a sender: itself plus its timely receivers this round. *)
let covers ~obligated ~round sender ds =
  let timely =
    List.filter_map
      (fun (d : Adv.delivery) -> if d.arrival = round then Some d.receiver else None)
      ds
  in
  let reached = sender :: timely in
  List.for_all (fun q -> List.mem q reached) obligated

(* Delay the delivery to the smallest obligated receiver <> sender, undoing
   the sender's timely coverage. [None] when the sender only covers itself. *)
let degrade ~obligated ~round sender ds =
  match List.filter (fun q -> q <> sender) obligated with
  | [] -> None
  | q :: _ ->
    let ds =
      List.map
        (fun (d : Adv.delivery) ->
          if d.receiver = q && d.arrival = round then { d with arrival = round + 1 }
          else d)
        ds
    in
    Some (q, ds)

(* Force [sender] timely to every obligated receiver. *)
let promote ~obligated ~round ds =
  List.map
    (fun (d : Adv.delivery) ->
      if List.mem d.receiver obligated then { d with arrival = round } else d)
    ds

let wrap ?(recorder = R.off) spec adv =
  validate spec;
  if is_noop spec then adv
  else begin
    let env = Adv.env adv in
    let c_dup = R.counter recorder "fault.duplicates" in
    let c_delay = R.counter recorder "fault.extra_delays" in
    let c_reorder = R.counter recorder "fault.reorders" in
    let c_drop = R.counter recorder "fault.drops" in
    let c_swap = R.counter recorder "fault.source_swaps" in
    let c_starve = R.counter recorder "fault.root_starvations" in
    let c_break = R.counter recorder "fault.stability_breaks" in
    let emit kind ~round ~sender ~receiver =
      R.emit recorder (fun () -> E.Fault { kind; round; sender; receiver })
    in
    let inject (ctx : Adv.ctx) rng (plan : Adv.plan) =
      let k = ctx.round in
      (* Admissible layers: never touch a timely arrival, so every
         obligation of the inner schedule survives. *)
      let delay_late sender ds =
        if spec.extra_delay <= 0. then ds
        else
          List.map
            (fun (d : Adv.delivery) ->
              if d.arrival > k && Rng.chance rng spec.extra_delay then begin
                M.incr c_delay;
                emit "extra_delay" ~round:k ~sender ~receiver:d.receiver;
                { d with arrival = d.arrival + Rng.int_in rng 1 (max 1 spec.max_extra) }
              end
              else d)
            ds
      in
      let reorder_late sender ds =
        if spec.reorder <= 0. || not (Rng.chance rng spec.reorder) then ds
        else
          let late, timely =
            List.partition (fun (d : Adv.delivery) -> d.arrival > k) ds
          in
          match late with
          | [] | [ _ ] -> ds
          | _ ->
            M.incr c_reorder;
            emit "reorder" ~round:k ~sender ~receiver:(-1);
            let arrivals =
              Rng.shuffle rng (List.map (fun (d : Adv.delivery) -> d.arrival) late)
            in
            timely
            @ List.map2 (fun (d : Adv.delivery) arrival -> { d with arrival }) late arrivals
      in
      let duplicate_some sender ds =
        if spec.duplicate <= 0. then ds
        else
          List.concat_map
            (fun (d : Adv.delivery) ->
              if Rng.chance rng spec.duplicate then begin
                M.incr c_dup;
                emit "duplicate" ~round:k ~sender ~receiver:d.receiver;
                let echo = max d.arrival k + Rng.int_in rng 1 (max 1 spec.max_extra) in
                [ d; { d with arrival = echo } ]
              end
              else [ d ])
            ds
      in
      let deliveries =
        List.map
          (fun (s, ds) -> (s, duplicate_some s (reorder_late s (delay_late s ds))))
          plan.Adv.deliveries
      in
      let plan = { plan with Adv.deliveries } in
      (* Inadmissible layer last, so no admissible echo can restore a
         timeliness we just took away (echoes are always late anyway). *)
      match spec.inadmissible with
      | Some (Drop_obligated { from_round }) when k >= from_round ->
        let deliveries =
          List.map
            (fun (s, ds) ->
              if covers ~obligated:ctx.obligated ~round:k s ds then
                match degrade ~obligated:ctx.obligated ~round:k s ds with
                | Some (q, ds') ->
                  M.incr c_drop;
                  emit "drop_obligated" ~round:k ~sender:s ~receiver:q;
                  (s, ds')
                | None -> (s, ds)
              else (s, ds))
            plan.Adv.deliveries
        in
        { plan with Adv.deliveries }
      | Some (Unstable_source { from_round }) when k >= from_round -> (
        match List.filter (fun s -> List.mem s ctx.correct) ctx.senders with
        | [] | [ _ ] -> plan (* cannot alternate without two correct senders *)
        | s0 :: s1 :: _ ->
          let keep = if k mod 2 = 0 then s0 else s1 in
          if plan.Adv.source <> Some keep then begin
            M.incr c_swap;
            emit "source_swap" ~round:k ~sender:keep ~receiver:(-1)
          end;
          (* Blocking shape (cf. [Adversary.ess_blocking]): only [keep] is
             timely, every other link one round late. Each round has a
             covering source (MS holds) but the alternation keeps the
             algorithm from deciding, so enough demanding rounds survive
             past [gst] for the stability check to see both parities. *)
          let deliveries =
            List.map
              (fun (s, ds) ->
                if s = keep then (s, promote ~obligated:ctx.obligated ~round:k ds)
                else
                  ( s,
                    List.map
                      (fun (d : Adv.delivery) ->
                        if d.arrival = k then { d with arrival = k + 1 } else d)
                      ds ))
              plan.Adv.deliveries
          in
          { source = Some keep; deliveries })
      | Some (Root_starvation { from_round }) when k >= from_round -> (
        (* Pulse rounds of a rooted dynamic environment only: demote every
           covering sender, so no root reaches all obligated receivers.
           Healed rounds are left intact — the resulting trace violates
           exactly the root-reachability obligation. *)
        match env with
        | Env.Dynamic { stability; rooted = true }
          when Env.pulse ~stability ~round:k ->
          let deliveries =
            List.map
              (fun (s, ds) ->
                if covers ~obligated:ctx.obligated ~round:k s ds then
                  match degrade ~obligated:ctx.obligated ~round:k s ds with
                  | Some (q, ds') ->
                    M.incr c_starve;
                    emit "root_starvation" ~round:k ~sender:s ~receiver:q;
                    (s, ds')
                  | None -> (s, ds)
                else (s, ds))
              plan.Adv.deliveries
          in
          { plan with Adv.deliveries }
        | _ -> plan)
      | Some (Stability_break { from_round }) when k >= from_round -> (
        (* Healed rounds of a dynamic environment only: make one correct
           sender late to one obligated receiver, breaking the
           stability-window promise while leaving pulse rounds intact. *)
        match env with
        | Env.Dynamic { stability; _ } when not (Env.pulse ~stability ~round:k) ->
          let broken = ref false in
          let deliveries =
            List.map
              (fun (s, ds) ->
                if (not !broken) && List.mem s ctx.correct then
                  match degrade ~obligated:ctx.obligated ~round:k s ds with
                  | Some (q, ds') ->
                    broken := true;
                    M.incr c_break;
                    emit "stability_break" ~round:k ~sender:s ~receiver:q;
                    (s, ds')
                  | None -> (s, ds)
                else (s, ds))
              plan.Adv.deliveries
          in
          { plan with Adv.deliveries }
        | _ -> plan)
      | Some _ | None -> plan
    in
    Adv.map_plan ~rename:(fun n -> n ^ "+faults") inject adv
  end

(* The pinned fault/topology stack: fault layers inside, severing
   outermost. The reverse order is wrong twice over. [Topology.sever]
   protects the links the environment obligates by reading the plan's
   source — and the [Unstable_source] injector rewrites it, so severing
   must see the final plan to protect the right links. And the admissible
   fault layers promise never to touch a timely arrival; severing demotes
   timely arrivals to late ones, so faults applied after severing would
   let [extra_delay] compound a severed link's lateness. With severing
   outermost a severed link arrives exactly one round late no matter what
   the fault layers drew: severed-then-delayed equals
   delayed-then-severed. *)
let compose ?recorder ?topology spec adv =
  let faulted = wrap ?recorder spec adv in
  match topology with
  | None -> faulted
  | Some top -> Anon_giraf.Topology.sever ?recorder top faulted

(* --- crash-schedule shapes ------------------------------------------------- *)

let distinct_pids ~n ~count rng =
  if count < 0 || count > n then
    invalid_arg (Printf.sprintf "Fault: %d failures among %d processes" count n);
  let pids = Rng.shuffle rng (List.init n Fun.id) in
  List.filteri (fun i _ -> i < count) pids

let random_broadcast rng =
  match Rng.int_in rng 0 2 with
  | 0 -> Crash.Silent
  | 1 -> Crash.Broadcast_all
  | _ -> Crash.Broadcast_subset

let burst_crashes ~n ~failures ~at ~width rng =
  if at < 1 then invalid_arg "Fault.burst_crashes: at must be >= 1";
  if width < 0 then invalid_arg "Fault.burst_crashes: width must be >= 0";
  List.map
    (fun pid ->
      {
        Crash.pid;
        round = Rng.int_in rng at (at + width);
        broadcast = random_broadcast rng;
      })
    (distinct_pids ~n ~count:failures rng)

let cascade_crashes ~n ~failures ~start ~gap rng =
  if start < 1 then invalid_arg "Fault.cascade_crashes: start must be >= 1";
  if gap < 1 then invalid_arg "Fault.cascade_crashes: gap must be >= 1";
  List.mapi
    (fun i pid ->
      { Crash.pid; round = start + (i * gap); broadcast = random_broadcast rng })
    (distinct_pids ~n ~count:failures rng)
