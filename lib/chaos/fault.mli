(** Fault plans: combinators that wrap any {!Anon_giraf.Adversary.t} with
    injected message-level faults, plus clustered/cascading crash-schedule
    generators.

    The admissible injectors (duplication, extra delay, reordering) only
    touch links the environment does not obligate — they add late echo
    copies or push already-late arrivals further out — so a wrapped
    adversary keeps every timeliness promise of its declared {!Env.t}. The
    {e inadmissible} injectors deliberately break an obligation (drop a
    source's timely delivery, rotate the ESS stable source) while keeping
    the declared environment, so the independent {!Checker} must flag the
    trace; they exist to prove the checker actually detects model
    violations.

    Every injected fault is recorded through the optional recorder as a
    [Fault] event and a [fault.*] counter. *)

type inadmissible =
  | Drop_obligated of { from_round : int }
      (** From [from_round] on, every sender whose timely set covers the
          obligated processes has its delivery to one obligated receiver
          made late — no covering source remains, violating MS (and
          SYNC/ES/ESS, which all imply it) in every demanding round. *)
  | Unstable_source of { from_round : int }
      (** From [from_round] on, the round's source alternates between two
          correct senders by round parity, with every other link one round
          late (the blocking shape of [Adversary.ess_blocking]). Each round
          still has a covering source (MS holds) but no single process
          covers every round — violating exactly the ESS stability
          obligation once the alternation crosses [gst]. Start it well
          before [gst] so the algorithm cannot decide first. *)
  | Root_starvation of { from_round : int }
      (** From [from_round] on, at every {e pulse} round of a rooted
          {!Anon_giraf.Env.Dynamic} environment, every sender covering the
          obligated processes loses one timely delivery — no covering root
          remains, violating exactly the root-reachability obligation
          ({!Anon_giraf.Checker.No_root}). No-op under any other
          environment and on healed rounds. *)
  | Stability_break of { from_round : int }
      (** From [from_round] on, at every {e healed} round of a
          {!Anon_giraf.Env.Dynamic} environment, one correct sender is made
          late to one obligated receiver — violating exactly the
          stability-window obligation
          ({!Anon_giraf.Checker.Stability_violation}). No-op under any
          other environment and on pulse rounds. *)

type spec = {
  duplicate : float;  (** P(a delivery gets a late echo copy). *)
  extra_delay : float;  (** P(an already-late delivery is delayed further). *)
  max_extra : int;  (** Bound on the added delay, rounds. *)
  reorder : float;  (** P(a sender's late arrivals are permuted). *)
  inadmissible : inadmissible option;
}

val none : spec
(** All probabilities 0, no inadmissible mode: [wrap none] is the identity
    schedule. *)

val is_noop : spec -> bool

val validate : spec -> unit
(** Reject malformed specs: NaN or out-of-[\[0, 1\]] probabilities and
    negative [max_extra] raise
    {!Anon_giraf.Config_error.Invalid_config}. Called by {!wrap}. *)

val sample : ?inadmissible:inadmissible option -> Anon_kernel.Rng.t -> spec
(** Random admissible fault intensities; [inadmissible] (default [None])
    is threaded through. *)

val wrap :
  ?recorder:Anon_obs.Recorder.t -> spec -> Anon_giraf.Adversary.t ->
  Anon_giraf.Adversary.t
(** Wrap an adversary with the injectors of [spec] (via
    {!Anon_giraf.Adversary.map_plan}; the name gains a ["+faults"]
    suffix). Fault events/metrics flow into [recorder] (default
    {!Anon_obs.Recorder.off}): counters [fault.duplicates],
    [fault.extra_delays], [fault.reorders], [fault.drops],
    [fault.source_swaps], [fault.root_starvations],
    [fault.stability_breaks].

    @raise Anon_giraf.Config_error.Invalid_config on a malformed [spec]
    (see {!validate}). *)

val compose :
  ?recorder:Anon_obs.Recorder.t -> ?topology:Anon_giraf.Topology.t ->
  spec -> Anon_giraf.Adversary.t -> Anon_giraf.Adversary.t
(** The one blessed way to stack message faults with topology severing:
    {!wrap}'s fault layers innermost, {!Anon_giraf.Topology.sever}
    outermost (adversary name [base+faults+graph]). Severing must see the
    final plan — the {!Unstable_source} injector rewrites the source whose
    obligated links severing protects — and the admissible fault layers
    only touch arrivals that were already late, so under this order a
    severed link arrives exactly one round late regardless of the fault
    draws: severed-then-delayed equals delayed-then-severed. Stacking the
    two by hand in the other order double-delays severed links;
    [test_dynamic] pins this one. Omitting [topology] is just {!wrap}. *)

(* --- crash-schedule shapes ------------------------------------------------- *)

val burst_crashes :
  n:int -> failures:int -> at:int -> width:int -> Anon_kernel.Rng.t ->
  Anon_giraf.Crash.event list
(** [failures] distinct processes all crash inside the round window
    [\[at, at + width\]] (a correlated failure burst). Requires
    [0 <= failures <= n] and [at >= 1]. *)

val cascade_crashes :
  n:int -> failures:int -> start:int -> gap:int -> Anon_kernel.Rng.t ->
  Anon_giraf.Crash.event list
(** [failures] distinct processes crash at rounds [start], [start + gap],
    [start + 2*gap], … (a cascading failure). Requires [start >= 1] and
    [gap >= 1]. *)
