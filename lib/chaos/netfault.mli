(** Wire-level fault plans for the live transport.

    {!Fault.spec} perturbs an adversary's {e delivery plan} — it speaks
    rounds, and lives inside the lockstep simulator. This module is its
    twin for the live backend ([Anon_live]): faults that happen to
    {e packets on the wire}, in seconds, below the algorithm's round
    abstraction. A faulty transport applies, per transmitted copy:

    - {b drop} — the copy is lost; the transport's reliability layer
      retransmits with bounded exponential backoff, so the paper's
      reliable-link model is preserved and a drop manifests as latency,
      never as silent message loss;
    - {b duplicate} — a late echo copy is also delivered (anonymity makes
      duplicates semantically invisible; they stress dedup and pacing);
    - {b delay} — extra wire latency, uniform in [[0, max_delay_s]];
    - {b sever} — links absent from a {!Anon_giraf.Topology.t} at the
      copy's send round are maximally delayed, reusing the lockstep
      dynamic-graph vocabulary at the wire.

    Reordering needs no knob: independent per-copy delays across real
    channels reorder packets on their own.

    Specs are validated with {!Anon_giraf.Config_error} and parsed from
    the CLI syntax [drop:P,dup:P,delay:P[:MAX_S],sever:NAME]. *)

type spec = {
  drop : float;  (** P(a transmitted copy is lost on the wire). *)
  duplicate : float;  (** P(a delivered copy gets an echo duplicate). *)
  delay : float;  (** P(a copy gets extra wire latency). *)
  max_delay_s : float;  (** Bound on the extra latency, seconds. *)
  sever : Anon_giraf.Topology.t option;
      (** Links absent at the copy's send round are maximally delayed. *)
}

val none : spec
(** All probabilities zero, no severing: the faultless wire. *)

val is_noop : spec -> bool

val validate : where:string -> spec -> spec
(** Returns the spec if every probability is finite and in [[0,1]] and
    [max_delay_s] is finite and [>= 0]; raises
    {!Anon_giraf.Config_error.Invalid_config} otherwise. *)

val of_string : string -> spec
(** Parses the CLI syntax: comma-separated [drop:P], [dup:P], [delay:P]
    or [delay:P:MAX_S], [sever:NAME] clauses in any order, each at most
    once; [""] and ["none"] give {!none}. [NAME] is one of [rotating-root],
    [spanning-star], [t-interval:<t>], [partition-pulse:<p>],
    [random:<density>]. Raises
    {!Anon_giraf.Config_error.Invalid_config} on unknown or malformed
    clauses, and validates the result. *)

val to_string : spec -> string
(** Canonical CLI syntax for the spec (["none"] for a no-op), suitable
    for reports and round-tripping through {!of_string} (severed
    topologies render by name only). *)

val pp : Format.formatter -> spec -> unit
