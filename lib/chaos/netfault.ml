(* Wire-level fault plans for the live transport. See netfault.mli. *)

module Config_error = Anon_giraf.Config_error
module Topology = Anon_giraf.Topology

type spec = {
  drop : float;
  duplicate : float;
  delay : float;
  max_delay_s : float;
  sever : Topology.t option;
}

let none = { drop = 0.; duplicate = 0.; delay = 0.; max_delay_s = 0.; sever = None }

let is_noop s =
  s.drop = 0. && s.duplicate = 0. && s.delay = 0. && s.sever = None

let check_probability ~where name p =
  (* [not (p >= 0.)] also catches NaN, which every comparison rejects. *)
  if not (Float.is_finite p && p >= 0. && p <= 1.) then
    Config_error.fail ~where
      (Printf.sprintf "%s must be a probability in [0,1] (got %g)" name p)

let validate ~where s =
  check_probability ~where "drop" s.drop;
  check_probability ~where "dup" s.duplicate;
  check_probability ~where "delay" s.delay;
  if not (Float.is_finite s.max_delay_s && s.max_delay_s >= 0.) then
    Config_error.fail ~where
      (Printf.sprintf "delay bound must be finite and >= 0 (got %g)" s.max_delay_s);
  if s.delay > 0. && s.max_delay_s = 0. then
    Config_error.fail ~where "delay probability is positive but the delay bound is 0s";
  s

(* --- CLI syntax: drop:P,dup:P,delay:P[:MAX_S],sever:NAME ------------------- *)

let where = "Netfault.of_string"

let parse_float ~clause raw =
  match float_of_string_opt (String.trim raw) with
  | Some f -> f
  | None ->
    Config_error.fail ~where
      (Printf.sprintf "%s: %S is not a number" clause raw)

let parse_int ~clause raw =
  match int_of_string_opt (String.trim raw) with
  | Some i -> i
  | None ->
    Config_error.fail ~where (Printf.sprintf "%s: %S is not an integer" clause raw)

let parse_sever ~clause args =
  match args with
  | [ "rotating-root" ] -> Topology.rotating_root ()
  | [ "spanning-star" ] -> Topology.spanning_star ()
  | [ "t-interval"; t ] -> Topology.t_interval ~t:(parse_int ~clause t) ()
  | [ "partition-pulse"; p ] ->
    Topology.partition_pulse ~period:(parse_int ~clause p) ()
  | [ "random"; d ] -> Topology.random_graph ~density:(parse_float ~clause d) ()
  | _ ->
    Config_error.fail ~where
      (Printf.sprintf
         "%s: expected sever:rotating-root | spanning-star | t-interval:<t> | \
          partition-pulse:<p> | random:<density>"
         clause)

let of_string raw =
  let raw = String.trim raw in
  if raw = "" || raw = "none" then none
  else begin
    let seen = Hashtbl.create 4 in
    let once key =
      if Hashtbl.mem seen key then
        Config_error.fail ~where (Printf.sprintf "duplicate %s clause" key);
      Hashtbl.add seen key ()
    in
    let spec =
      List.fold_left
        (fun spec clause ->
          match String.split_on_char ':' clause with
          | [ "drop"; p ] ->
            once "drop";
            { spec with drop = parse_float ~clause p }
          | [ "dup"; p ] ->
            once "dup";
            { spec with duplicate = parse_float ~clause p }
          | [ "delay"; p ] ->
            once "delay";
            { spec with delay = parse_float ~clause p; max_delay_s = 0.05 }
          | [ "delay"; p; max_s ] ->
            once "delay";
            {
              spec with
              delay = parse_float ~clause p;
              max_delay_s = parse_float ~clause max_s;
            }
          | "sever" :: args ->
            once "sever";
            { spec with sever = Some (parse_sever ~clause args) }
          | _ ->
            Config_error.fail ~where
              (Printf.sprintf
                 "unknown clause %S (expected drop:P, dup:P, delay:P[:MAX_S] or \
                  sever:NAME)"
                 clause))
        none
        (String.split_on_char ',' raw)
    in
    validate ~where spec
  end

let to_string s =
  if is_noop s then "none"
  else
    let parts =
      List.filter_map Fun.id
        [
          (if s.drop > 0. then Some (Printf.sprintf "drop:%g" s.drop) else None);
          (if s.duplicate > 0. then Some (Printf.sprintf "dup:%g" s.duplicate)
           else None);
          (if s.delay > 0. then
             Some (Printf.sprintf "delay:%g:%g" s.delay s.max_delay_s)
           else None);
          Option.map (fun t -> "sever:" ^ Topology.name t) s.sever;
        ]
    in
    String.concat "," parts

let pp fmt s = Format.pp_print_string fmt (to_string s)
