(** Randomized configuration fuzzing with counterexample shrinking.

    A campaign samples {!Scenario.t} cases, executes each through the
    in-repo runners, and checks the resulting trace with the independent
    {!Anon_giraf.Checker}. The first violating case is greedily shrunk
    (fewer processes, shorter horizon, fewer crashes/ops, weaker fault
    plan) while it keeps exhibiting a violation of the same kind, and the
    minimal counterexample can be serialized as a JSON repro file and
    replayed bit-for-bit (every run is a pure function of the case). *)

val run_case :
  ?recorder:Anon_obs.Recorder.t -> Scenario.t -> Anon_giraf.Checker.violation list
(** Execute one case and return every environment + semantic violation the
    checker finds ([] on a clean run). Runs inside its own kernel interner
    scope ({!Anon_exec.Pool.isolate}): the verdict is a pure function of
    the case, whatever ran before in the process. [recorder] (default off)
    is threaded into the underlying runner — campaign fan-out never sets
    it; it exists so a single replay (witness emission, [--replay]) can
    capture events/metrics for the counterexample timeline. *)

val violation_strings : Anon_giraf.Checker.violation list -> string list
(** Rendered via {!Anon_giraf.Checker.pp_violation} — the stable form
    stored in repro files and compared on replay. *)

type finding = {
  original : Scenario.t;  (** As sampled. *)
  original_violations : Anon_giraf.Checker.violation list;
  case : Scenario.t;  (** After shrinking. *)
  violations : Anon_giraf.Checker.violation list;
  explored : int;  (** Shrink candidates executed. *)
}

val shrink :
  Scenario.t -> Anon_giraf.Checker.violation list -> Scenario.t * Anon_giraf.Checker.violation list * int
(** [shrink case vs] greedily minimizes [case]; a candidate is accepted
    only if re-running it still yields a violation sharing a constructor
    with [vs]. Returns the fixpoint and the number of candidates tried. *)

type report = { runs_done : int; finding : finding option }

val campaign :
  ?algo:Scenario.algo ->
  ?inadmissible:bool ->
  ?dynamic:bool ->
  ?churn:bool ->
  ?jobs:int ->
  runs:int ->
  seed:int ->
  unit ->
  report
(** Sample-and-check up to [runs] cases (deterministic in [seed]); stops at
    the first violation, which is returned shrunk. [inadmissible] (default
    [false]) arms a model-violating fault mode in every case — the
    campaign is then expected to find a violation (it validates the
    checker, not the algorithms). [dynamic]/[churn] (defaults [false])
    sample dynamic-graph environment overrides and join/leave schedules —
    see {!Scenario.sample}.

    Cases execute through {!Anon_exec.Pool.map} — [jobs] as there. All
    cases are sampled up front and evaluated in submission-order chunks,
    and the lowest violating index wins, so the report ([runs_done] and
    the finding) is byte-identical for every [jobs] value. Shrinking is
    kept sequential for determinism. *)

val repro_json : finding -> Anon_obs.Json.t
val write_repro : path:string -> finding -> unit

type replay = {
  case : Scenario.t;
  expected : string list;  (** Violations stored in the repro file. *)
  actual : Anon_giraf.Checker.violation list;
  matches : bool;  (** Reproduced violations identical to [expected]. *)
}

val replay_json : Anon_obs.Json.t -> (replay, string) result

val replay : path:string -> (replay, string) result
(** Load a repro file, re-run its (shrunk) case, and compare the rendered
    violations with the stored ones. *)
