(** Fuzz cases: one sampled configuration of algorithm, system size,
    environment, crash schedule, workload, and fault plan — everything a
    run needs, serializable to JSON so a counterexample can be written out
    and replayed bit-for-bit (all randomness derives from [seed]). *)

type algo = Es | Ess | Weak_set | Register

val algo_name : algo -> string
val all_algos : algo list

type schedule = {
  sched_env : Anon_giraf.Env.t;
      (** The environment the recorded plans claim to satisfy (becomes the
          trace's environment, so the checker judges them against it). *)
  plans : Anon_giraf.Adversary.plan list;  (** Plan for round [k] at index [k-1]. *)
}
(** An explicit, fully deterministic delivery schedule — how model-checker
    witnesses replay through the ordinary runners (via
    {!Anon_giraf.Adversary.of_schedule}). *)

type t = {
  algo : algo;
  n : int;
  gst : int;  (** Used by [Es]/[Ess]; carried (and ignored) otherwise. *)
  rotation : Anon_giraf.Adversary.rotation;
  noise : float;
  horizon : int;
  seed : int;
  crashes : Anon_giraf.Crash.event list;
  churn : Anon_giraf.Churn.event list;
      (** Join/leave schedule, disjoint from [crashes] by construction
          ([sample]) and validated on use by the runners. *)
  env : Anon_giraf.Env.t option;
      (** Environment override. Only [Dynamic] overrides are sampled and
          honored (they swap the base adversary for
          {!Anon_giraf.Adversary.dynamic}); [None] keeps the classic
          algo-derived adversary. *)
  ops_per_client : int;  (** Workload size for [Weak_set]/[Register]. *)
  faults : Fault.spec;
  schedule : schedule option;
      (** When present, replaces the sampled adversary entirely; the
          [Weak_set] workload then comes from {!mc_workload} instead of the
          seed-derived random one. *)
}

val sample :
  ?algo:algo -> ?inadmissible:bool -> ?dynamic:bool -> ?churn:bool ->
  Anon_kernel.Rng.t -> t
(** A random case; [algo] pins the algorithm, [inadmissible] (default
    [false]) attaches a deliberately model-violating fault mode (and keeps
    [n >= 3] with at least two correct processes so the violation is
    actually forceable). [dynamic] (default [false]) samples a rooted
    dynamic-graph environment override with stability >= 2 (the admissible
    regime); with [inadmissible] it arms {!Fault.Root_starvation} or
    {!Fault.Stability_break} instead of the classic modes. [churn] (default
    [false]) samples 1–2 churn events disjoint from the crash schedule,
    keeping at least one correct stayer. For consensus algorithms the
    events are {e permanent leaves} (no rejoin — behaviourally a silent
    crash, which is provably safe); rejoiners are sampled only for
    [Weak_set], the join-tolerant service. A rejoiner restarts with an
    empty PROPOSED set, which can legitimately split agreement between
    stayers — see the committed [repros/churn-rejoin-split.json]
    counterexample and DESIGN.md section 12. Neither flag applies to
    [Register] cases (whose checker assumes stable crash-free clients). *)

val adversary : ?recorder:Anon_obs.Recorder.t -> t -> Anon_giraf.Adversary.t
(** The case's base adversary ([es]/[ess]/[ms] per [algo]) wrapped with its
    fault plan via {!Fault.wrap}. *)

val crash : t -> Anon_giraf.Crash.t

val churn : t -> Anon_giraf.Churn.t
(** The case's churn schedule as a validated {!Anon_giraf.Churn.t}
    ({!Anon_giraf.Churn.none}-equivalent when the [churn] field is empty). *)

val inputs : t -> Anon_kernel.Value.t list
(** The consensus input assignment of a case: values [1..n], shuffled by
    [seed] — the single derivation shared by the fuzzer and the model
    checker so their runs agree. *)

val mc_workload : n:int -> ops_per_client:int -> Anon_giraf.Service_runner.workload
(** The deterministic weak-set workload used with explicit schedules: each
    client alternates adds of distinct values ([100*(pid+1) + i]) with
    gets, queued from round 1 on. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Anon_obs.Json.t
(** Current schema (["v"]: 2): v2 added the optional ["env"] override and
    the ["churn"] schedule. *)

val of_json : Anon_obs.Json.t -> (t, string) result
(** Reads v2 documents and, for compatibility with repro files written
    before the version field existed, unversioned v1 documents (decoded
    with [env = None], [churn = \[\]]). Newer versions are rejected. *)
