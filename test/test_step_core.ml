(* Differential test: the runner path and the model-checker stepper are two
   views of ONE lockstep semantics. We sample admissible plan paths from the
   MC stepper (all four algorithms, static and dynamic environments, crash
   and churn schedules, fixed seeds), replay the identical plans through the
   runner via [Adversary.of_schedule], and assert byte-identical per-round
   states and decisions.

   The MC side renders each node with [Explore.SYSTEM_DEBUG.snapshot]
   (pid-indexed fate + state key + global facts); the runner side
   reconstructs the same rendering from its [observe] stream and outcome
   records. A node at round [r] is the system after the compute phase of
   iteration [r], i.e. after the runner computed round [r - 1]. *)

module G = Anon_giraf
module K = Anon_kernel
module C = Anon_consensus
module Mc_cs = Anon_mc.Consensus_sys
module Mc_ws = Anon_mc.Ws_sys
module Ch = Anon_chaos

let check_string = Alcotest.(check string)

module Es_unguarded_model = struct
  include C.Es_consensus.No_written_old_guard

  let state_key = C.Es_consensus.state_key
  let msg_key = C.Es_consensus.msg_key
end

(* Sample one plan path through a system: at every node pick a uniformly
   random successor until [depth] steps or a terminal node. Returns the
   plans and the snapshots of every node along the path (root included). *)
let sample_path (module Sys : Anon_mc.Explore.SYSTEM_DEBUG) ~rng ~depth =
  (* Every node doubles as a digest property check: the incrementally
     maintained canonical key (per-slot version cache, piecewise-fed hash
     streams) must equal the from-scratch rehash of the rendered views. *)
  let check_digest s =
    check_string "incremental key = full rehash" (Sys.key_full s) (Sys.key s)
  in
  let rec go s plans snaps steps =
    if steps = 0 || Sys.terminal s then (List.rev plans, List.rev snaps)
    else
      match Sys.expand s with
      | [] -> (List.rev plans, List.rev snaps)
      | succs ->
        let plan, s', _ = List.nth succs (K.Rng.int rng (List.length succs)) in
        check_digest s';
        go s' (plan :: plans) (Sys.snapshot s' :: snaps) (steps - 1)
  in
  let s0 = Sys.init () in
  check_digest s0;
  let plans, snaps = go s0 [] [] depth in
  (plans, Sys.snapshot s0 :: snaps)

(* --- consensus ---------------------------------------------------------- *)

let consensus_diff (module A : Mc_cs.MODEL) ~label ~env ~inputs ~crash ~churn
    ~max_delay ~depth ~seed () =
  let module Sys =
    (val Mc_cs.make_probe
           (module A)
           { Mc_cs.inputs; crash; churn; env; max_delay; armed = false })
  in
  let rng = K.Rng.make seed in
  let plans, mc_snaps = sample_path (module Sys) ~rng ~depth in
  let m = List.length plans in
  let module Run = G.Runner.Make (A) in
  let states = Hashtbl.create 64 in
  let observe ~pid ~round st =
    Hashtbl.replace states (round, pid) (A.state_key st)
  in
  let config =
    {
      G.Runner.inputs = Array.of_list inputs;
      crash;
      churn;
      adversary = G.Adversary.of_schedule ~env plans;
      horizon = m + 1;
      seed;
      stop_on_decision = false;
    }
  in
  let outcome = Run.run ~observe config in
  let n = List.length inputs in
  let dec_round p =
    List.find_map
      (fun (q, d, _) -> if q = p then Some d else None)
      outcome.G.Runner.decisions
  in
  (* Reconstruct the MC snapshot of node [r] from runner observations.
     Fate precedence mirrors the stepper: a crasher that was still live at
     its latch is Crashed from the next node on (even if it decided during
     its final compute); a process that halted before the latch keeps H. *)
  let expected r =
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "r%d\n" r);
    for p = 0 to n - 1 do
      let halted = match dec_round p with Some d -> d <= r - 1 | None -> false in
      let crashed =
        match G.Crash.crash_round crash p with
        | Some c when c < r -> (
          match dec_round p with Some d -> d > c - 2 | None -> true)
        | Some _ | None -> false
      in
      Buffer.add_string b
        (if crashed then Printf.sprintf "p%d X\n" p
         else if halted then Printf.sprintf "p%d H\n" p
         else if G.Churn.away churn ~pid:p ~round:r then Printf.sprintf "p%d A\n" p
         else
           match Hashtbl.find_opt states (r - 1, p) with
           | Some key -> Printf.sprintf "p%d L %s\n" p key
           | None -> Printf.sprintf "p%d ?missing-observation\n" p)
    done;
    let decided =
      List.sort compare
        (List.filter_map
           (fun (p, d, v) ->
             if d <= r - 1 then Some (p, K.Value.to_string v) else None)
           outcome.G.Runner.decisions)
    in
    Buffer.add_string b
      ("decided "
      ^ String.concat ";"
          (List.map (fun (p, v) -> Printf.sprintf "p%d=%s" p v) decided));
    Buffer.contents b
  in
  List.iteri
    (fun i mc_snap ->
      check_string
        (Printf.sprintf "%s seed=%d node %d" label seed (i + 1))
        mc_snap (expected (i + 1)))
    mc_snaps

(* --- weak set ------------------------------------------------------------ *)

let pp_op buf (start, op) =
  Buffer.add_string buf
    (match op with
    | G.Service_runner.Do_get -> Printf.sprintf "%dG" start
    | G.Service_runner.Do_add v -> Printf.sprintf "%dA%s" start (K.Value.to_string v)
    | G.Service_runner.Do_add_with _ -> Printf.sprintf "%dF" start)

let ws_diff ~label ~env ~n ~crash ~max_delay ~ops_per_client ~depth ~seed () =
  let module Sys =
    (val Mc_ws.make_probe
           { Mc_ws.n; crash; env; max_delay; armed = false; ops_per_client })
  in
  let rng = K.Rng.make seed in
  let plans, mc_snaps = sample_path (module Sys) ~rng ~depth in
  let m = List.length plans in
  let workload = Ch.Scenario.mc_workload ~n ~ops_per_client in
  let module Run = G.Service_runner.Make (C.Weak_set_ms) in
  let states = Hashtbl.create 64 in
  let observe ~pid ~round st =
    Hashtbl.replace states (round, pid) (C.Weak_set_ms.state_key st)
  in
  let config =
    {
      G.Service_runner.n;
      crash;
      churn = G.Churn.none ~n;
      adversary = G.Adversary.of_schedule ~env plans;
      horizon = m + 1;
      seed;
    }
  in
  let outcome = Run.run ~observe config ~workload in
  let adds = outcome.G.Service_runner.adds in
  (* Number of operations client [p] has started during the op phases of
     rounds [<= r] (op_time = 2k + 1). *)
  let ops_started p r =
    List.length
      (List.filter
         (function
           | G.Checker.Ws_add { add_client; add_invoked; _ } ->
             add_client = p && add_invoked <= (2 * r) + 1
           | G.Checker.Ws_get { get_client; get_invoked; _ } ->
             get_client = p && get_invoked <= (2 * r) + 1)
         outcome.G.Service_runner.ops)
  in
  let expected r =
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "r%d\n" r);
    for p = 0 to n - 1 do
      let crashed =
        match G.Crash.crash_round crash p with Some c -> c < r | None -> false
      in
      if crashed then Buffer.add_string b (Printf.sprintf "p%d X\n" p)
      else begin
        (match Hashtbl.find_opt states (r - 1, p) with
        | Some key -> Buffer.add_string b (Printf.sprintf "p%d L %s b:" p key)
        | None -> Buffer.add_string b (Printf.sprintf "p%d ?missing b:" p));
        let blocked =
          List.find_map
            (fun (a : G.Service_runner.add_record) ->
              if
                a.client = p
                && a.invoked_round <= r - 1
                && (match a.completed_round with None -> true | Some c -> c >= r)
              then Some a.value
              else None)
            adds
        in
        Buffer.add_string b
          (match blocked with Some v -> K.Value.to_string v | None -> "-");
        Buffer.add_string b " w:";
        let script = Option.value ~default:[] (List.assoc_opt p workload) in
        let remaining =
          let consumed = ops_started p (r - 1) in
          List.filteri (fun i _ -> i >= consumed) script
        in
        List.iter (fun o -> pp_op b o) remaining;
        Buffer.add_char b '\n'
      end
    done;
    let invoked =
      List.fold_left
        (fun acc (a : G.Service_runner.add_record) ->
          if a.invoked_round <= r - 1 then K.Value.Set.add a.value acc else acc)
        K.Value.Set.empty adds
    in
    let completed =
      List.fold_left
        (fun acc (a : G.Service_runner.add_record) ->
          match a.completed_round with
          | Some c when c <= r - 1 -> K.Value.Set.add a.value acc
          | Some _ | None -> acc)
        K.Value.Set.empty adds
    in
    let set_str set =
      String.concat "," (List.map K.Value.to_string (K.Value.Set.elements set))
    in
    Buffer.add_string b
      (Printf.sprintf "inv:%s/comp:%s" (set_str invoked) (set_str completed));
    Buffer.contents b
  in
  List.iteri
    (fun i mc_snap ->
      check_string
        (Printf.sprintf "%s seed=%d node %d" label seed (i + 1))
        mc_snap (expected (i + 1)))
    mc_snaps

(* --- the matrix ---------------------------------------------------------- *)

let inputs3 = [ 3; 1; 2 ]
let crash_none = G.Crash.none ~n:3
let churn_none = G.Churn.none ~n:3

let crash1 kind round =
  G.Crash.of_events ~n:3 [ { G.Crash.pid = 1; round; broadcast = kind } ]

let churn1 pid leave rejoin = G.Churn.of_events ~n:3 [ { G.Churn.pid; leave; rejoin } ]

let es = (module C.Es_consensus : Mc_cs.MODEL)
let ess = (module C.Ess_consensus : Mc_cs.MODEL)
let esu = (module Es_unguarded_model : Mc_cs.MODEL)

let consensus_cases =
  [
    ("es static", es, G.Env.Es { gst = 2 }, crash_none, churn_none, 6, [ 1; 2; 3 ]);
    ( "es crash-subset",
      es,
      G.Env.Es { gst = 2 },
      crash1 G.Crash.Broadcast_subset 2,
      churn_none,
      6,
      [ 4; 5 ] );
    ( "es crash-silent",
      es,
      G.Env.Es { gst = 2 },
      crash1 G.Crash.Silent 1,
      churn_none,
      5,
      [ 6 ] );
    ( "es crash-bcast-all",
      es,
      G.Env.Es { gst = 2 },
      crash1 G.Crash.Broadcast_all 2,
      churn_none,
      5,
      [ 7; 27; 28; 29 ] );
    ( "es crash-bcast-all late",
      es,
      G.Env.Es { gst = 2 },
      crash1 G.Crash.Broadcast_all 3,
      churn_none,
      5,
      [ 7; 30 ] );
    ( "es churn-rejoin",
      es,
      G.Env.Es { gst = 2 },
      crash_none,
      churn1 1 2 (Some 4),
      6,
      [ 8; 9 ] );
    ( "es churn-leave",
      es,
      G.Env.Es { gst = 3 },
      crash_none,
      churn1 0 1 None,
      5,
      [ 10 ] );
    ("es ms", es, G.Env.Ms, crash_none, churn_none, 5, [ 11 ]);
    ("ess static", ess, G.Env.Ess { gst = 2 }, crash_none, churn_none, 6, [ 12; 13 ]);
    ( "ess crash+churn",
      ess,
      G.Env.Ess { gst = 2 },
      G.Crash.of_events ~n:3
        [ { G.Crash.pid = 0; round = 2; broadcast = G.Crash.Broadcast_subset } ],
      churn1 2 1 (Some 3),
      6,
      [ 14 ] );
    ( "es dynamic churn",
      es,
      G.Env.Dynamic { stability = 2; rooted = true },
      crash_none,
      churn1 1 2 (Some 4),
      6,
      [ 15 ] );
    ( "es-unguarded crash",
      esu,
      G.Env.Es { gst = 2 },
      crash1 G.Crash.Broadcast_subset 2,
      churn_none,
      6,
      [ 16 ] );
    ( "ess dynamic",
      ess,
      G.Env.Dynamic { stability = 3; rooted = true },
      crash_none,
      churn_none,
      6,
      [ 17 ] );
  ]

let ws_cases =
  [
    ("ws ms", G.Env.Ms, 2, G.Crash.none ~n:2, 1, 1, 5, [ 21; 22 ]);
    ("ws sync", G.Env.Sync, 2, G.Crash.none ~n:2, 1, 1, 5, [ 23 ]);
    ( "ws ms crash",
      G.Env.Ms,
      3,
      G.Crash.of_events ~n:3
        [ { G.Crash.pid = 2; round = 2; broadcast = G.Crash.Broadcast_subset } ],
      1,
      1,
      5,
      [ 24 ] );
    ("ws ms delay2", G.Env.Ms, 2, G.Crash.none ~n:2, 2, 1, 4, [ 25 ]);
  ]

let consensus_tests =
  List.map
    (fun (label, model, env, crash, churn, depth, seeds) ->
      Alcotest.test_case label `Quick (fun () ->
          List.iter
            (fun seed ->
              consensus_diff model ~label ~env ~inputs:inputs3 ~crash ~churn
                ~max_delay:1 ~depth ~seed ())
            seeds))
    consensus_cases

let ws_tests =
  List.map
    (fun (label, env, n, crash, max_delay, ops_per_client, depth, seeds) ->
      Alcotest.test_case label `Quick (fun () ->
          List.iter
            (fun seed ->
              ws_diff ~label ~env ~n ~crash ~max_delay ~ops_per_client ~depth
                ~seed ())
            seeds))
    ws_cases

let () =
  Alcotest.run "step_core"
    [ ("consensus", consensus_tests); ("weak-set", ws_tests) ]
