(* Unit and property tests for the kernel: RNG, values, histories, counter
   tables, statistics. *)

open Anon_kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Rng ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.make 7 and b = Rng.make 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.make 7 and b = Rng.make 8 in
  let different = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then different := true
  done;
  check_bool "different seeds diverge" true !different

let test_rng_split_independent () =
  let a = Rng.make 7 in
  let c = Rng.split a in
  let x = Rng.bits64 a and y = Rng.bits64 c in
  check_bool "split stream differs" false (Int64.equal x y)

let test_rng_copy () =
  let a = Rng.make 3 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.make 1 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    check_bool "0 <= x < 7" true (x >= 0 && x < 7)
  done

let test_rng_int_in_bounds () =
  let rng = Rng.make 2 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng (-3) 4 in
    check_bool "-3 <= x <= 4" true (x >= -3 && x <= 4)
  done

let test_rng_int_invalid () =
  let rng = Rng.make 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.int_in: lo > hi") (fun () ->
      ignore (Rng.int_in rng 3 2))

let test_rng_chance_extremes () =
  let rng = Rng.make 1 in
  check_bool "p=0 never" false (Rng.chance rng 0.0);
  check_bool "p=1 always" true (Rng.chance rng 1.0)

let test_rng_pick () =
  let rng = Rng.make 5 in
  for _ = 1 to 100 do
    check_bool "pick from list" true (List.mem (Rng.pick rng [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng []))

let test_rng_subset () =
  let rng = Rng.make 5 in
  let l = List.init 20 Fun.id in
  check_int "p=1 keeps all" 20 (List.length (Rng.subset rng ~p:1.0 l));
  check_int "p=0 keeps none" 0 (List.length (Rng.subset rng ~p:0.0 l));
  let sub = Rng.subset rng ~p:0.5 l in
  check_bool "subset order preserved" true (List.sort compare sub = sub)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, l) ->
      let rng = Rng.make seed in
      List.sort compare (Rng.shuffle rng l) = List.sort compare l)

let prop_float_bounds =
  QCheck.Test.make ~name:"float within bound" ~count:200 QCheck.small_int (fun seed ->
      let rng = Rng.make seed in
      let x = Rng.float rng 10.0 in
      x >= 0.0 && x < 10.0)

(* --- Value / Pvalue -------------------------------------------------------- *)

let test_value_max_of () =
  check_int "max" 9 (Value.max_of [ 3; 9; 1 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Value.max_of: empty list") (fun () ->
      ignore (Value.max_of []))

let test_value_pp_set () =
  let s = Value.set_of_list [ 3; 1; 2 ] in
  Alcotest.(check string) "sorted render" "{1, 2, 3}" (Format.asprintf "%a" Value.pp_set s)

let test_pvalue_order () =
  check_bool "bot below" true (Pvalue.compare Pvalue.bot (Pvalue.v min_int) < 0);
  check_bool "values ordered" true (Pvalue.compare (Pvalue.v 1) (Pvalue.v 2) < 0);
  check_bool "bot = bot" true (Pvalue.equal Pvalue.bot Pvalue.bot)

let test_pvalue_max_value () =
  let s = Pvalue.Set.of_list [ Pvalue.bot; Pvalue.v 3; Pvalue.v 7 ] in
  Alcotest.(check (option int)) "max ignores bot" (Some 7) (Pvalue.max_value s);
  let only_bot = Pvalue.Set.singleton Pvalue.bot in
  Alcotest.(check (option int)) "only bot" None (Pvalue.max_value only_bot);
  Alcotest.(check (option int)) "empty" None (Pvalue.max_value Pvalue.Set.empty)

let test_pvalue_subset_of_val_bot () =
  let s = Pvalue.Set.of_list [ Pvalue.bot; Pvalue.v 3 ] in
  check_bool "{3,bot} subset of {3,bot}" true (Pvalue.subset_of_val_bot 3 s);
  check_bool "{3,bot} not subset of {4,bot}" false (Pvalue.subset_of_val_bot 4 s);
  check_bool "empty always" true (Pvalue.subset_of_val_bot 0 Pvalue.Set.empty)

let prop_pvalue_values_of_set =
  QCheck.Test.make ~name:"values_of_set drops bot and sorts" ~count:200
    QCheck.(small_list small_int)
    (fun vs ->
      let s = Pvalue.Set.of_list (Pvalue.bot :: List.map Pvalue.v vs) in
      Pvalue.values_of_set s = List.sort_uniq Int.compare vs)

(* --- History --------------------------------------------------------------- *)

let test_history_roundtrip () =
  let h = History.of_list [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (History.to_list h);
  check_int "length" 3 (History.length h);
  Alcotest.(check (option int)) "last" (Some 3) (History.last h);
  Alcotest.(check (option int)) "empty last" None (History.last History.empty)

let test_history_interning () =
  let a = History.of_list [ 4; 5 ] and b = History.of_list [ 4; 5 ] in
  check_bool "equal" true (History.equal a b);
  check_int "compare 0" 0 (History.compare a b);
  check_bool "hash equal" true (History.hash a = History.hash b)

let test_history_prefix () =
  let h = History.of_list [ 1; 2; 3 ] in
  check_bool "empty prefix" true (History.is_prefix ~prefix:History.empty h);
  check_bool "proper prefix" true (History.is_prefix ~prefix:(History.of_list [ 1; 2 ]) h);
  check_bool "self prefix" true (History.is_prefix ~prefix:h h);
  check_bool "not prefix (longer)" false
    (History.is_prefix ~prefix:(History.of_list [ 1; 2; 3; 4 ]) h);
  check_bool "not prefix (diverged)" false
    (History.is_prefix ~prefix:(History.of_list [ 1; 9 ]) h)

let test_history_prefixes () =
  let h = History.of_list [ 1; 2 ] in
  let ps = History.prefixes h in
  check_int "count" 3 (List.length ps);
  Alcotest.(check (list (list int))) "shortest first"
    [ []; [ 1 ]; [ 1; 2 ] ]
    (List.map History.to_list ps)

let prop_history_roundtrip =
  QCheck.Test.make ~name:"of_list/to_list roundtrip" ~count:300
    QCheck.(small_list small_int)
    (fun vs -> History.to_list (History.of_list vs) = vs)

let prop_history_prefix_model =
  QCheck.Test.make ~name:"is_prefix matches list model" ~count:300
    QCheck.(pair (small_list small_int) (small_list small_int))
    (fun (a, b) ->
      let rec list_prefix a b =
        match a, b with
        | [], _ -> true
        | _, [] -> false
        | x :: a', y :: b' -> x = y && list_prefix a' b'
      in
      History.is_prefix ~prefix:(History.of_list a) (History.of_list b)
      = list_prefix a b)

let prop_history_lexicographic =
  QCheck.Test.make ~name:"compare_lexicographic matches list compare" ~count:300
    QCheck.(pair (small_list small_int) (small_list small_int))
    (fun (a, b) ->
      let c =
        History.compare_lexicographic (History.of_list a) (History.of_list b)
      in
      compare c 0 = compare (List.compare Int.compare a b) 0)

(* --- Counter_table ---------------------------------------------------------- *)

let h1 = History.of_list [ 1 ]
let h12 = History.of_list [ 1; 2 ]
let h123 = History.of_list [ 1; 2; 3 ]
let h9 = History.of_list [ 9 ]

let test_ct_get_set () =
  let t = Counter_table.set Counter_table.empty h1 4 in
  check_int "set/get" 4 (Counter_table.get t h1);
  check_int "default 0" 0 (Counter_table.get t h9);
  let t = Counter_table.set t h1 0 in
  check_int "set 0 removes" 0 (Counter_table.cardinal t)

let test_ct_min_merge () =
  let t1 = Counter_table.set (Counter_table.set Counter_table.empty h1 3) h12 5 in
  let t2 = Counter_table.set (Counter_table.set Counter_table.empty h1 2) h9 7 in
  let m = Counter_table.min_merge [ t1; t2 ] in
  check_int "common key min" 2 (Counter_table.get m h1);
  check_int "missing key drops (h12)" 0 (Counter_table.get m h12);
  check_int "missing key drops (h9)" 0 (Counter_table.get m h9);
  check_int "empty merge" 0 (Counter_table.cardinal (Counter_table.min_merge []))

let test_ct_bump_prefix_max () =
  let t = Counter_table.set Counter_table.empty h1 4 in
  let t = Counter_table.bump_prefix_max t h123 in
  check_int "1 + max over prefixes" 5 (Counter_table.get t h123);
  (* Bumping again now sees its own entry. *)
  let t = Counter_table.bump_prefix_max t h123 in
  check_int "rebump" 6 (Counter_table.get t h123);
  let t2 = Counter_table.bump_prefix_max Counter_table.empty h9 in
  check_int "bump from zero" 1 (Counter_table.get t2 h9)

let test_ct_is_max () =
  let t = Counter_table.set (Counter_table.set Counter_table.empty h1 3) h9 5 in
  check_bool "h9 is max" true (Counter_table.is_max t h9);
  check_bool "h1 is not" false (Counter_table.is_max t h1);
  check_bool "all-zero table: anything is max" true
    (Counter_table.is_max Counter_table.empty h12)

let test_ct_max_binding () =
  Alcotest.(check bool) "empty" true (Counter_table.max_binding Counter_table.empty = None);
  let t = Counter_table.set (Counter_table.set Counter_table.empty h1 5) h9 5 in
  (match Counter_table.max_binding t with
  | Some (h, 5) ->
    (* Ties broken lexicographically: ⟨1⟩ < ⟨9⟩. *)
    check_bool "lexicographic tie-break" true (History.equal h h1)
  | Some _ | None -> Alcotest.fail "expected a max binding of 5")

let prop_ct_min_merge_model =
  (* min_merge against a naive model over a tiny key universe. *)
  let table_gen =
    QCheck.Gen.(
      list_size (int_bound 4)
        (pair (int_bound 3) (int_range 1 5))
      |> map (fun kvs ->
             List.fold_left
               (fun t (k, v) -> Counter_table.set t (History.of_list [ k ]) v)
               Counter_table.empty kvs))
  in
  QCheck.Test.make ~name:"min_merge pointwise min with default 0" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 4) table_gen))
    (fun tables ->
      let merged = Counter_table.min_merge tables in
      List.for_all
        (fun k ->
          let h = History.of_list [ k ] in
          let expected =
            List.fold_left (fun acc t -> min acc (Counter_table.get t h)) max_int tables
          in
          Counter_table.get merged h = expected)
        [ 0; 1; 2; 3 ])

(* --- Stats ------------------------------------------------------------------ *)

let test_stats_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0.0 (Stats.stddev [ 5.0 ])

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p1" 1.0 (Stats.percentile xs 1.0)

let test_stats_summarize () =
  let s = Stats.summarize_ints [ 1; 2; 3; 4; 5 ] in
  check_int "count" 5 s.count;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.max

let test_stats_histogram () =
  let h = Stats.histogram ~bucket:10 [ 1; 5; 11; 25; 27 ] in
  Alcotest.(check (list (pair int int))) "buckets" [ (0, 2); (10, 1); (20, 2) ] h

let test_stats_single_sample () =
  let s = Stats.summarize [ 7.5 ] in
  check_int "count" 1 s.count;
  Alcotest.(check (float 1e-9)) "mean" 7.5 s.mean;
  Alcotest.(check (float 1e-9)) "stddev" 0.0 s.stddev;
  Alcotest.(check (float 1e-9)) "min" 7.5 s.min;
  Alcotest.(check (float 1e-9)) "p50" 7.5 s.p50;
  Alcotest.(check (float 1e-9)) "p95" 7.5 s.p95;
  Alcotest.(check (float 1e-9)) "max" 7.5 s.max

let test_stats_percentile_extremes () =
  let xs = [ 3.0; 1.0; 4.0; 2.0 ] in
  (* p=0 must clamp to the smallest sample, p=100 to the largest,
     regardless of input order. *)
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p0 singleton" 9.0 (Stats.percentile [ 9.0 ] 0.0);
  Alcotest.(check (float 1e-9)) "p100 singleton" 9.0 (Stats.percentile [ 9.0 ] 100.0)

let test_stats_sparse_histogram () =
  (* Widely separated samples: empty buckets are skipped, not emitted as
     zero-count entries. *)
  let h = Stats.histogram ~bucket:10 [ 1; 1000 ] in
  Alcotest.(check (list (pair int int))) "sparse" [ (0, 1); (1000, 1) ] h;
  Alcotest.(check (list (pair int int))) "empty" [] (Stats.histogram ~bucket:10 [])

let prop_stats_histogram_total =
  QCheck.Test.make ~name:"histogram counts sum to sample size" ~count:200
    QCheck.(small_list small_nat)
    (fun xs ->
      let h = Stats.histogram ~bucket:3 xs in
      List.fold_left (fun acc (_, c) -> acc + c) 0 h = List.length xs)

let test_stats_summarize_negative () =
  (* Regression: max was seeded with Float.min_float (the smallest
     positive normal, ~2.2e-308), so an all-negative sample reported a
     tiny positive max instead of -1. *)
  let s = Stats.summarize [ -5.0; -1.0; -3.0 ] in
  Alcotest.(check (float 1e-9)) "max of all-negative" (-1.0) s.max;
  Alcotest.(check (float 1e-9)) "min of all-negative" (-5.0) s.min

let test_stats_summarize_infinity () =
  (* Regression: min was seeded with Float.max_float, misreporting
     samples containing infinity; both folds now start from the first
     element. *)
  let s = Stats.summarize [ Float.infinity; 1.0; 2.0 ] in
  check_bool "max is +inf" true (s.max = Float.infinity);
  Alcotest.(check (float 1e-9)) "min unaffected" 1.0 s.min;
  let s' = Stats.summarize [ Float.neg_infinity; 1.0 ] in
  check_bool "min is -inf" true (s'.min = Float.neg_infinity);
  Alcotest.(check (float 1e-9)) "max unaffected" 1.0 s'.max

let test_stats_histogram_sorted () =
  (* Bucket order is part of the contract: ascending lower bounds,
     whatever the hash-table fold order — rendered distributions must be
     reproducible across runs and OCaml versions. *)
  let h = Stats.histogram ~bucket:5 [ 42; -3; 17; 0; 23; -11; 8; 42 ] in
  let bounds = List.map fst h in
  Alcotest.(check (list int)) "ascending bounds" (List.sort Int.compare bounds) bounds;
  Alcotest.(check (list (pair int int))) "pinned order"
    [ (-15, 1); (-5, 1); (0, 1); (5, 1); (15, 1); (20, 1); (40, 2) ]
    h

let test_stats_percentile_invalid () =
  let invalid p =
    Alcotest.check_raises
      (Printf.sprintf "p=%g rejected" p)
      (Invalid_argument "Stats.percentile: p must be in [0, 100]")
      (fun () -> ignore (Stats.percentile [ 1.0; 2.0 ] p))
  in
  invalid (-1.0);
  invalid 100.5;
  invalid Float.nan

let test_stats_p50_contract () =
  (* summarize.p50 is the nearest-rank median: for even counts, the lower
     of the two middle elements — not an interpolated midpoint. *)
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "p50 = nearest-rank median" 2.0 s.p50;
  Alcotest.(check (float 1e-9)) "p50 matches percentile 50"
    (Stats.percentile [ 1.0; 2.0; 3.0; 4.0 ] 50.0)
    s.p50;
  let odd = Stats.summarize [ 9.0; 1.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "odd-count median" 5.0 odd.p50

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "kernel"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "invalid args" `Quick test_rng_int_invalid;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "subset" `Quick test_rng_subset;
          qc prop_shuffle_permutation;
          qc prop_float_bounds;
        ] );
      ( "value",
        [
          Alcotest.test_case "max_of" `Quick test_value_max_of;
          Alcotest.test_case "pp_set" `Quick test_value_pp_set;
          Alcotest.test_case "pvalue order" `Quick test_pvalue_order;
          Alcotest.test_case "pvalue max_value" `Quick test_pvalue_max_value;
          Alcotest.test_case "subset_of_val_bot" `Quick test_pvalue_subset_of_val_bot;
          qc prop_pvalue_values_of_set;
        ] );
      ( "history",
        [
          Alcotest.test_case "roundtrip" `Quick test_history_roundtrip;
          Alcotest.test_case "interning" `Quick test_history_interning;
          Alcotest.test_case "prefix" `Quick test_history_prefix;
          Alcotest.test_case "prefixes" `Quick test_history_prefixes;
          qc prop_history_roundtrip;
          qc prop_history_prefix_model;
          qc prop_history_lexicographic;
        ] );
      ( "counter-table",
        [
          Alcotest.test_case "get/set" `Quick test_ct_get_set;
          Alcotest.test_case "min_merge" `Quick test_ct_min_merge;
          Alcotest.test_case "bump_prefix_max" `Quick test_ct_bump_prefix_max;
          Alcotest.test_case "is_max" `Quick test_ct_is_max;
          Alcotest.test_case "max_binding" `Quick test_ct_max_binding;
          qc prop_ct_min_merge_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "summarize" `Quick test_stats_summarize;
          Alcotest.test_case "single sample" `Quick test_stats_single_sample;
          Alcotest.test_case "percentile extremes" `Quick test_stats_percentile_extremes;
          Alcotest.test_case "sparse histogram" `Quick test_stats_sparse_histogram;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "summarize all-negative" `Quick test_stats_summarize_negative;
          Alcotest.test_case "summarize infinities" `Quick test_stats_summarize_infinity;
          Alcotest.test_case "histogram sorted" `Quick test_stats_histogram_sorted;
          Alcotest.test_case "percentile rejects bad p" `Quick test_stats_percentile_invalid;
          Alcotest.test_case "p50 contract" `Quick test_stats_p50_contract;
          qc prop_stats_histogram_total;
        ] );
    ]
