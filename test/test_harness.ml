(* Tests for the experiment harness: tables, batch runs, the registry, and
   regression pins on the cheap experiments' verdict columns. *)

module G = Anon_giraf
module H = Anon_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Table ----------------------------------------------------------------------- *)

let mk_table rows =
  H.Table.make ~id:"X" ~title:"t" ~claim:"c" ~expectation:"e"
    ~headers:[ "a"; "b" ] ~rows

let test_table_ragged () =
  Alcotest.check_raises "ragged row" (Invalid_argument "Table.make: ragged row in X")
    (fun () -> ignore (mk_table [ [ "1" ] ]))

let test_table_render () =
  let t = mk_table [ [ "1"; "2" ] ] in
  let s = Format.asprintf "%a" H.Table.render t in
  check_bool "has id" true (String.length s > 0 && String.contains s 'X')

let test_table_csv () =
  let t = mk_table [ [ "x,y"; "z\"w" ] ] in
  Alcotest.(check string) "escaped csv" "a,b\n\"x,y\",\"z\"\"w\"\n" (H.Table.to_csv t)

(* RFC 4180 round-trip: unescape a single escaped field and recover the
   original. The tiny parser here is the inverse any spreadsheet applies:
   a field starting with '"' ends at the matching quote, with '""'
   unescaping to '"'. *)
let csv_unescape s =
  let len = String.length s in
  if len = 0 || s.[0] <> '"' then s
  else begin
    let buf = Buffer.create len in
    let rec go i =
      if i >= len - 1 then ()
      else if s.[i] = '"' then
        if i + 1 <= len - 1 && s.[i + 1] = '"' then begin
          Buffer.add_char buf '"';
          go (i + 2)
        end
        else () (* closing quote *)
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 1;
    Buffer.contents buf
  end

let test_csv_escape_rfc4180 () =
  let plain = [ "x"; ""; "no specials"; "semi;colon"; "tab\there" ] in
  List.iter
    (fun s ->
      Alcotest.(check string) ("unquoted: " ^ s) s (H.Table.csv_escape s))
    plain;
  let quoted =
    [
      "a,b";
      "say \"hi\"";
      "line1\nline2";
      "cr\rhere";
      "crlf\r\nline";
      "\"";
      ",";
      "all,of\"it\r\n";
    ]
  in
  List.iter
    (fun s ->
      let e = H.Table.csv_escape s in
      check_bool ("quoted: " ^ String.escaped s) true
        (String.length e >= 2 && e.[0] = '"' && e.[String.length e - 1] = '"');
      (* No bare quote or separator survives inside the quoted body
         unescaped: round-tripping recovers the original exactly. *)
      Alcotest.(check string) ("roundtrip: " ^ String.escaped s) s (csv_unescape e))
    quoted;
  List.iter
    (fun s -> Alcotest.(check string) ("identity: " ^ s) s (csv_unescape (H.Table.csv_escape s)))
    plain

let test_table_cells () =
  Alcotest.(check string) "int" "3" (H.Table.cell_int 3);
  Alcotest.(check string) "float" "3.1" (H.Table.cell_float 3.14);
  Alcotest.(check string) "bool" "yes" (H.Table.cell_bool true);
  Alcotest.(check string) "opt none" "-" (H.Table.cell_opt string_of_int None);
  Alcotest.(check string) "opt some" "4" (H.Table.cell_opt string_of_int (Some 4))

(* --- Runs ------------------------------------------------------------------------- *)

let test_seeds_distinct () =
  let s = H.Runs.seeds 50 in
  check_int "distinct" 50 (List.length (List.sort_uniq Int.compare s))

module Es_runs = H.Runs.Of (Anon_consensus.Es_consensus)

let test_batch_counts () =
  let b =
    Es_runs.batch ~horizon:100
      ~inputs:(H.Runs.distinct_inputs ~n:4)
      ~crash:(fun _ -> G.Crash.none ~n:4)
      ~adversary:(fun _ -> G.Adversary.sync ())
      ~seeds:(H.Runs.seeds 5) ()
  in
  check_int "runs" 5 b.runs;
  check_int "all decided" 5 b.decided;
  check_int "decision rounds collected" 5 (List.length b.decision_rounds);
  check_int "no violations" 0 (H.Runs.safety_violations b);
  check_bool "mean present" true (H.Runs.mean_decision b <> None)

(* --- Registry ---------------------------------------------------------------------- *)

let test_registry_ids_unique () =
  let ids = List.map (fun (e : H.Registry.experiment) -> e.id) H.Registry.all in
  check_int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids));
  check_int "all experiments present" 23 (List.length ids)

let test_registry_find () =
  check_bool "finds t9 case-insensitively" true (H.Registry.find "t9" <> None);
  check_bool "unknown" true (H.Registry.find "nope" = None)

(* --- regression pins on cheap experiments ------------------------------------------- *)

let column table ~header =
  let t : H.Table.t = table in
  match
    List.find_index (fun h -> h = header) t.headers
  with
  | None -> Alcotest.failf "missing column %s" header
  | Some i -> List.map (fun row -> List.nth row i) t.rows

let test_t9_all_defeated () =
  let t = H.Exp_impossibility.t9 () in
  check_int "four candidates" 4 (List.length t.rows);
  List.iter
    (fun verdict -> check_bool "defeated" true (verdict <> ""))
    (column t ~header:"verdict")

let test_a2_violations () =
  let t = H.Exp_ablations.a2 () in
  List.iter
    (fun v -> check_bool "agreement broken under literal model" true (int_of_string v > 0))
    (column t ~header:"agreement-viol");
  List.iter
    (fun v ->
      check_bool "inadmissible under strengthened model" true (int_of_string v > 0))
    (column t ~header:"env-viol (strengthened model)")

let test_t8_no_decisions () =
  let t = H.Exp_impossibility.t8 () in
  List.iter (fun v -> check_int "no decisions" 0 (int_of_string v)) (column t ~header:"decided");
  List.iter
    (fun v -> check_int "no safety violations" 0 (int_of_string v))
    (column t ~header:"safety-viol")

let () =
  Alcotest.run "harness"
    [
      ( "table",
        [
          Alcotest.test_case "ragged" `Quick test_table_ragged;
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "csv escaping rfc4180" `Quick test_csv_escape_rfc4180;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "runs",
        [
          Alcotest.test_case "seeds distinct" `Quick test_seeds_distinct;
          Alcotest.test_case "batch counts" `Quick test_batch_counts;
        ] );
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick test_registry_ids_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "T9 defeats all" `Quick test_t9_all_defeated;
          Alcotest.test_case "A2 model sensitivity" `Quick test_a2_violations;
          Alcotest.test_case "T8 no decisions" `Quick test_t8_no_decisions;
        ] );
    ]
