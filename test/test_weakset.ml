(* Tests for Algorithm 4 (the weak-set in MS) and the service runner. *)

open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module Ws = C.Weak_set_ms
module Runner = G.Service_runner.Make (Ws)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vset = Value.set_of_list
let inbox ?(fresh = []) current = { G.Intf.current; fresh }

(* --- unit-level service semantics --------------------------------------------- *)

let test_initialize () =
  let st, m = Ws.initialize () in
  check_bool "empty message" true (Value.Set.is_empty m);
  check_bool "no pending add" false (Ws.add_pending st);
  check_bool "empty get" true (Value.Set.is_empty (Ws.get st))

let test_add_sets_block () =
  let st, _ = Ws.initialize () in
  let st = Ws.add st 5 in
  check_bool "blocked" true (Ws.add_pending st);
  Alcotest.(check (option int)) "pending value" (Some 5) (Ws.pending_value st);
  check_bool "value locally visible" true (Value.Set.mem 5 (Ws.get st))

let test_add_twice_rejected () =
  let st, _ = Ws.initialize () in
  let st = Ws.add st 5 in
  Alcotest.check_raises "one add at a time"
    (Invalid_argument "Weak_set_ms.add: an add is already pending") (fun () ->
      ignore (Ws.add st 6))

let test_block_clears_when_written () =
  let st, _ = Ws.initialize () in
  let st = Ws.add st 5 in
  (* Not every message contains 5 yet: stays blocked. *)
  let st, _ = Ws.compute st ~round:1 ~inbox:(inbox [ vset [ 5 ]; vset [ 7 ] ]) in
  check_bool "still blocked" true (Ws.add_pending st);
  (* All messages contain 5: the value is written, the add completes. *)
  let st, _ = Ws.compute st ~round:2 ~inbox:(inbox [ vset [ 5 ]; vset [ 5; 7 ] ]) in
  check_bool "unblocked" false (Ws.add_pending st)

let test_union_includes_late_messages () =
  let st, _ = Ws.initialize () in
  (* Alg. 4 line 15 unions over ALL rounds heard so far — late arrivals
     included (they show up in [fresh]). *)
  let st, _ =
    Ws.compute st ~round:3
      ~inbox:(inbox ~fresh:[ (1, vset [ 42 ]); (3, vset [ 1 ]) ] [ vset [ 1 ] ])
  in
  check_bool "late value in PROPOSED" true (Value.Set.mem 42 (Ws.get st))

(* --- end-to-end runs ------------------------------------------------------------ *)

let run_workload ?(n = 5) ?(failures = 0) ?(seed = 3) ?(horizon = 150) ?adversary
    workload =
  let rng = Rng.make (seed + 77) in
  let crash = G.Crash.random ~n ~failures ~max_round:(horizon / 2) rng in
  let adversary = Option.value ~default:(G.Adversary.ms ()) adversary in
  let config =
    { G.Service_runner.n; crash; churn = G.Churn.none ~n; adversary; horizon; seed }
  in
  (Runner.run config ~workload, crash)

let test_adds_complete () =
  let workload = List.init 5 (fun pid -> (pid, [ (2, G.Service_runner.Do_add (100 + pid)) ])) in
  let out, _ = run_workload workload in
  check_int "five adds" 5 (List.length out.adds);
  List.iter
    (fun (a : G.Service_runner.add_record) ->
      check_bool "completed" true (a.completed_round <> None))
    out.adds

let test_get_sees_completed_adds () =
  let workload =
    [ (0, [ (2, G.Service_runner.Do_add 42) ]); (1, [ (60, G.Service_runner.Do_get) ]) ]
  in
  let out, _ = run_workload ~n:3 workload in
  let gets =
    List.filter_map
      (function G.Checker.Ws_get g -> Some g | G.Checker.Ws_add _ -> None)
      out.ops
  in
  check_int "one get" 1 (List.length gets);
  List.iter
    (fun (g : G.Checker.ws_get) ->
      check_bool "sees 42" true (Value.Set.mem 42 g.get_result))
    gets

let test_semantics_over_seeds () =
  List.iter
    (fun seed ->
      let rng = Rng.make seed in
      let n = 2 + Rng.int rng 6 in
      let workload =
        G.Service_runner.random_workload ~n ~ops_per_client:6 ~max_start:50
          ~value_range:100_000 rng
      in
      let out, crash =
        run_workload ~n ~failures:(Rng.int rng n) ~seed
          ~adversary:(G.Adversary.ms ~rotation:G.Adversary.Round_robin ~noise:0.2 ())
          workload
      in
      Alcotest.(check (list string))
        (Printf.sprintf "no violations (seed %d)" seed)
        []
        (List.map (Format.asprintf "%a" G.Checker.pp_violation)
           (G.Checker.check_weak_set ~correct:(G.Crash.correct crash) out.ops)))
    (List.init 25 (fun i -> 900 + i))

let test_minimal_ms_still_lively () =
  (* Even with zero extra links, every add by a correct process
     completes. *)
  let n = 6 in
  let workload = List.init n (fun pid -> (pid, [ (2, G.Service_runner.Do_add (7 * pid)) ])) in
  let out, crash =
    run_workload ~n ~horizon:200
      ~adversary:(G.Adversary.ms ~rotation:G.Adversary.Round_robin ~noise:0.0 ())
      workload
  in
  List.iter
    (fun (a : G.Service_runner.add_record) ->
      if G.Crash.is_correct crash a.client then
        check_bool "correct client's add completed" true (a.completed_round <> None))
    out.adds

let test_op_clock_ordering () =
  let workload =
    [ (0, [ (2, G.Service_runner.Do_add 1); (3, G.Service_runner.Do_get) ]) ]
  in
  let out, _ = run_workload ~n:3 workload in
  List.iter
    (fun op ->
      match op with
      | G.Checker.Ws_add a -> (
        match a.add_completed with
        | Some c -> check_bool "invoked before completed" true (a.add_invoked < c)
        | None -> ())
      | G.Checker.Ws_get g ->
        check_bool "get instantaneous" true (g.get_invoked = g.get_completed))
    out.ops

let test_sequential_client () =
  (* The second op of a client starts only after the first completed. *)
  let workload =
    [ (0, [ (2, G.Service_runner.Do_add 1); (2, G.Service_runner.Do_add 2) ]) ]
  in
  let out, _ = run_workload ~n:4 workload in
  match out.adds with
  | [ a1; a2 ] ->
    let c1 = Option.get a1.completed_round in
    check_bool "second add after first completes" true (a2.invoked_round >= c1)
  | adds -> Alcotest.fail (Printf.sprintf "expected 2 adds, got %d" (List.length adds))

let () =
  Alcotest.run "weak-set-ms"
    [
      ( "service",
        [
          Alcotest.test_case "initialize" `Quick test_initialize;
          Alcotest.test_case "add sets BLOCK" `Quick test_add_sets_block;
          Alcotest.test_case "one add at a time" `Quick test_add_twice_rejected;
          Alcotest.test_case "BLOCK clears when written" `Quick test_block_clears_when_written;
          Alcotest.test_case "late messages unioned" `Quick test_union_includes_late_messages;
        ] );
      ( "runs",
        [
          Alcotest.test_case "adds complete" `Quick test_adds_complete;
          Alcotest.test_case "gets see completed adds" `Quick test_get_sees_completed_adds;
          Alcotest.test_case "semantics over seeds" `Quick test_semantics_over_seeds;
          Alcotest.test_case "minimal MS liveness" `Quick test_minimal_ms_still_lively;
          Alcotest.test_case "op clock ordering" `Quick test_op_clock_ordering;
          Alcotest.test_case "sequential clients" `Quick test_sequential_client;
        ] );
    ]
