(* Tests for the unsynchronized-round runner: lockstep equivalence under
   uniform pace, relay semantics (footnote 2), crash handling, and safety
   under randomized skew. *)

open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module Skew = G.Skew_runner.Make (C.Es_consensus)
module Skew_ess = G.Skew_runner.Make (C.Ess_consensus)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let base ?(n = 4) ?(pace = G.Skew_runner.fixed_pace 1)
    ?(delay = G.Skew_runner.fixed_delay 1) ?(crash = None) ?(seed = 3) () =
  let crash = Option.value ~default:(G.Crash.none ~n) crash in
  G.Skew_runner.default_config ~seed ~pace ~delay
    ~inputs:(List.init n (fun i -> i + 1))
    ~crash ()

let test_uniform_pace_is_synchronous () =
  (* pace 1 + delay 1 = every message is in the receiver's round set when
     it computes: behaviour matches the lockstep runner under sync. *)
  let out = Skew.run (base ()) in
  check_bool "all decided" true out.all_correct_decided;
  List.iter
    (fun (_, round, v) ->
      check_int "decides max" 4 v;
      check_int "same round as lockstep sync" 6 round)
    out.decisions;
  check_int "no env violations vs Sync" 0
    (List.length
       (G.Checker.check_env { out.trace with G.Trace.env = G.Env.Sync }))

let test_fast_process_runs_ahead () =
  (* p0 fires every tick, everyone else every 5 ticks: p0's round counter
     races ahead; everything stays safe. *)
  let pace ~pid ~round:_ _rng = if pid = 0 then 1 else 5 in
  let out = Skew.run (base ~pace ~delay:(G.Skew_runner.fixed_delay 2) ()) in
  check_int "safety" 0
    (List.length (G.Checker.check_consensus ~expect_termination:false out.trace));
  check_bool "everyone decided" true out.all_correct_decided

let test_relay_provides_timeliness () =
  (* Three processes. Direct links p0->p2 are very slow, but p0->p1 and
     p1->p2 are fast and p1 fires in between: p2 must still receive p0's
     round-k content timely, through p1's relayed round set. *)
  let delay ~sender ~receiver ~round:_ _rng =
    match sender, receiver with
    | 0, 2 -> 50 (* direct link effectively dead *)
    | _, _ -> 1
  in
  let pace ~pid ~round:_ _rng = match pid with 1 -> 2 | _ -> 4 in
  let config =
    G.Skew_runner.default_config ~seed:5 ~pace ~delay ~horizon_ticks:400
      ~inputs:[ 1; 2; 3 ] ~crash:(G.Crash.none ~n:3) ()
  in
  let out = Skew.run config in
  (* Look for any round where p0 was timely to p2 despite the dead direct
     link — only relaying can achieve that. *)
  let relayed =
    List.exists
      (fun (info : G.Trace.round_info) ->
        List.mem 2 (G.Trace.timely_to info 0) && info.round > 1)
      out.trace.rounds
  in
  check_bool "p2 got p0's content through the relay" true relayed;
  check_int "safety" 0
    (List.length (G.Checker.check_consensus ~expect_termination:false out.trace))

let test_identical_messages_merge_across_senders () =
  (* Both p0 and p1 propose 7: their messages are identical, and once one
     copy reaches p2, BOTH count as received (footnote 2). *)
  let delay ~sender ~receiver ~round:_ _rng =
    if sender = 1 && receiver = 2 then 60 else 1
  in
  let config =
    G.Skew_runner.default_config ~seed:7 ~delay ~horizon_ticks:400
      ~inputs:[ 7; 7; 3 ] ~crash:(G.Crash.none ~n:3) ()
  in
  let out = Skew.run config in
  let p1_timely_to_p2 =
    List.exists
      (fun (info : G.Trace.round_info) -> List.mem 2 (G.Trace.timely_to info 1))
      out.trace.rounds
  in
  check_bool "p1's content reaches p2 via p0's identical message" true p1_timely_to_p2

let test_crash_at_own_round () =
  let crash =
    G.Crash.of_events ~n:4
      [ { G.Crash.pid = 1; round = 3; broadcast = G.Crash.Silent } ]
  in
  let out = Skew.run (base ~crash:(Some crash) ()) in
  check_int "p1 stopped at its round 3" 3 out.rounds_completed.(1);
  check_bool "correct processes decide" true out.all_correct_decided;
  check_int "safety" 0 (List.length (G.Checker.check_consensus out.trace))

let test_horizon_bound () =
  let config =
    G.Skew_runner.default_config ~horizon_ticks:50 ~seed:1
      ~pace:(G.Skew_runner.fixed_pace 20)
      ~delay:(G.Skew_runner.fixed_delay 30)
      ~inputs:[ 1; 2 ] ~crash:(G.Crash.none ~n:2) ()
  in
  let out = Skew.run config in
  check_bool "bounded" true (out.ticks <= 50);
  check_bool "nobody decided in 2 slow rounds" true (out.decisions = [])

let test_no_source_obligation_splits_agreement () =
  (* The skew runner makes no environment promise. Two processes racing
     ahead on slow links each see only their own value written and decide
     it — a split. This is exactly why the paper's MS assumption (a
     per-round source) is necessary even for safety, and what the A2
     experiment examines in the lockstep model. *)
  let config =
    G.Skew_runner.default_config ~horizon_ticks:200 ~seed:1
      ~delay:(G.Skew_runner.fixed_delay 30)
      ~inputs:[ 1; 2 ] ~crash:(G.Crash.none ~n:2) ()
  in
  let out = Skew.run config in
  let agreement =
    List.filter
      (function G.Checker.Agreement_violation _ -> true | _ -> false)
      (G.Checker.check_consensus ~expect_termination:false out.trace)
  in
  check_bool "split decision without a source" true (agreement <> []);
  (* Validity still holds unconditionally. *)
  check_int "validity" 0
    (List.length
       (List.filter
          (function G.Checker.Validity_violation _ -> true | _ -> false)
          (G.Checker.check_consensus ~expect_termination:false out.trace)))

let prop_skew_validity =
  (* Agreement is NOT guaranteed without environment obligations (see the
     split test above); validity and single-decision integrity are. *)
  QCheck.Test.make ~name:"ES/ESS validity under random skew and crashes" ~count:60
    QCheck.small_int
    (fun seed ->
      let rng = Rng.make seed in
      let n = 2 + Rng.int rng 5 in
      let crash = G.Crash.random ~n ~failures:(Rng.int rng n) ~max_round:20 (Rng.split rng) in
      let config =
        G.Skew_runner.default_config ~seed ~horizon_ticks:1_000 ~max_rounds:120
          ~pace:(G.Skew_runner.uniform_pace ~max:4)
          ~delay:(G.Skew_runner.uniform_delay ~max:6)
          ~inputs:(Rng.shuffle rng (List.init n (fun i -> i + 1)))
          ~crash ()
      in
      let validity_ok (out : G.Skew_runner.outcome) =
        List.for_all
          (function
            | G.Checker.Validity_violation _ -> false
            | _ -> true)
          (G.Checker.check_consensus ~expect_termination:false out.trace)
        && List.for_all
             (fun (pid, _, _) ->
               List.length (List.filter (fun (p, _, _) -> p = pid) out.decisions) = 1)
             out.decisions
      in
      validity_ok (Skew.run config) && validity_ok (Skew_ess.run config))

(* --- Config validation ------------------------------------------------------ *)

let invalid where what =
  G.Config_error.Invalid_config { G.Config_error.where; what }

let test_config_validation () =
  let raises msg exn f = Alcotest.check_raises msg exn (fun () -> ignore (f ())) in
  raises "empty inputs"
    (invalid "Skew_runner.default_config" "inputs must be non-empty") (fun () ->
      G.Skew_runner.default_config ~inputs:[] ~crash:(G.Crash.none ~n:0) ());
  raises "bad horizon_ticks"
    (invalid "Skew_runner.default_config" "horizon_ticks must be >= 1 (got 0)")
    (fun () ->
      G.Skew_runner.default_config ~horizon_ticks:0
        ~inputs:[ 1; 2 ] ~crash:(G.Crash.none ~n:2) ());
  raises "bad max_rounds"
    (invalid "Skew_runner.default_config" "max_rounds must be >= 1 (got -1)")
    (fun () ->
      G.Skew_runner.default_config ~max_rounds:(-1)
        ~inputs:[ 1; 2 ] ~crash:(G.Crash.none ~n:2) ());
  raises "crash size mismatch"
    (invalid "Skew_runner.default_config"
       "inputs/crash size mismatch (3 inputs, crash schedule for 2)") (fun () ->
      G.Skew_runner.default_config ~inputs:[ 1; 2; 3 ] ~crash:(G.Crash.none ~n:2) ());
  (* [run] re-validates, so a config mutated after construction is rejected. *)
  raises "run re-validates"
    (invalid "Skew_runner.run" "max_rounds must be >= 1 (got 0)") (fun () ->
      Skew.run { (base ()) with G.Skew_runner.max_rounds = 0 })

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "skew-runner"
    [
      ( "skew",
        [
          Alcotest.test_case "uniform pace = synchronous" `Quick
            test_uniform_pace_is_synchronous;
          Alcotest.test_case "fast process runs ahead" `Quick test_fast_process_runs_ahead;
          Alcotest.test_case "relay provides timeliness" `Quick
            test_relay_provides_timeliness;
          Alcotest.test_case "identical messages merge" `Quick
            test_identical_messages_merge_across_senders;
          Alcotest.test_case "crash at own round" `Quick test_crash_at_own_round;
          Alcotest.test_case "horizon bound" `Quick test_horizon_bound;
          Alcotest.test_case "no source => split (why MS matters)" `Quick
            test_no_source_obligation_splits_agreement;
          qc prop_skew_validity;
        ] );
      ( "config",
        [ Alcotest.test_case "validation" `Quick test_config_validation ] );
    ]
