(* The live backend: config validation, wire/pacer units, and the
   lockstep-vs-live differential — at zero transport faults with generous
   timeouts and a fixed seed, every algorithm must decide exactly what
   the lockstep runner decides under the synchronous adversary, per pid
   and per round. Safety is checked on every live outcome, fault-heavy
   runs included. *)

module G = Anon_giraf
module C = Anon_consensus
module L = Anon_live
module Chaos = Anon_chaos

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let invalid f =
  match f () with
  | exception G.Config_error.Invalid_config _ -> ()
  | _ -> Alcotest.fail "expected Invalid_config"

(* --- Netfault ---------------------------------------------------------------- *)

let test_netfault_parse () =
  let s = Chaos.Netfault.of_string "drop:0.1,dup:0.05,delay:0.2:0.01" in
  check_bool "not noop" false (Chaos.Netfault.is_noop s);
  Alcotest.(check (float 1e-9)) "drop" 0.1 s.Chaos.Netfault.drop;
  Alcotest.(check (float 1e-9)) "dup" 0.05 s.Chaos.Netfault.duplicate;
  Alcotest.(check (float 1e-9)) "delay" 0.2 s.Chaos.Netfault.delay;
  Alcotest.(check (float 1e-9)) "max_delay" 0.01 s.Chaos.Netfault.max_delay_s;
  check_bool "none is noop" true (Chaos.Netfault.is_noop (Chaos.Netfault.of_string "none"));
  check_bool "empty is noop" true (Chaos.Netfault.is_noop (Chaos.Netfault.of_string ""));
  (* Round-trips through the canonical rendering. *)
  let s' = Chaos.Netfault.of_string (Chaos.Netfault.to_string s) in
  Alcotest.(check (float 1e-9)) "roundtrip drop" s.Chaos.Netfault.drop s'.Chaos.Netfault.drop;
  let sv = Chaos.Netfault.of_string "sever:partition-pulse:3" in
  check_bool "sever parsed" true (sv.Chaos.Netfault.sever <> None)

let test_netfault_invalid () =
  List.iter
    (fun raw -> invalid (fun () -> Chaos.Netfault.of_string raw))
    [
      "drop:1.5";  (* out of range *)
      "drop:-0.1";  (* negative *)
      "drop:nan";  (* NaN never satisfies a probability *)
      "dup:inf";
      "delay:0.5:-1.0";  (* negative bound *)
      "delay:0.5:0";  (* positive probability, zero bound *)
      "drop:0.1,drop:0.2";  (* duplicate clause *)
      "gibberish";
      "sever:no-such-topology";
      "drop:";
    ]

(* --- Chan / Transport -------------------------------------------------------- *)

let test_chan_due_ordering () =
  let ch = L.Chan.create () in
  L.Chan.post ch ~due:3.0 "late";
  L.Chan.post ch ~due:1.0 "a";
  L.Chan.post ch ~due:1.0 "b";  (* same due: post order preserved *)
  check_int "pending" 3 (L.Chan.pending ch);
  Alcotest.(check (list string)) "ripe, due then seq order" [ "a"; "b" ]
    (L.Chan.drain_ready ch ~now:2.0);
  check_int "future item stays" 1 (L.Chan.pending ch);
  Alcotest.(check (list string)) "ripe later" [ "late" ] (L.Chan.drain_ready ch ~now:3.5);
  Alcotest.(check (list string)) "empty" [] (L.Chan.drain_ready ch ~now:9.0)

let test_transport_faultless_fifo () =
  let t = L.Transport.create ~n:3 ~faults:Chaos.Netfault.none ~seed:7 () in
  L.Transport.broadcast t ~src:0 ~round:1 "r1";
  L.Transport.broadcast t ~src:0 ~round:2 "r2";
  (* Give the due times (== send instants) a beat to pass. *)
  Thread.delay 0.002;
  (match L.Transport.drain t ~dst:1 with
  | [ (0, 1, "r1"); (0, 2, "r2") ] -> ()
  | other ->
    Alcotest.failf "faultless wire must be FIFO per link (got %d packets)"
      (List.length other));
  check_int "no self-delivery over the wire" 0 (L.Transport.pending t ~dst:0);
  let st = L.Transport.stats t in
  check_int "copies: 2 broadcasts x 2 peers" 4 st.L.Transport.copies_sent;
  check_int "no faults injected" 0
    (st.L.Transport.dropped + st.L.Transport.duplicated + st.L.Transport.delayed
   + st.L.Transport.severed)

let test_transport_faulty_delivers_eventually () =
  (* Reliability layer: even at drop 0.9 every copy has a bounded due
     time — messages are delayed, never lost. *)
  let faults = { Chaos.Netfault.none with Chaos.Netfault.drop = 0.9 } in
  let t = L.Transport.create ~n:2 ~faults ~seed:11 () in
  for r = 1 to 20 do
    L.Transport.broadcast t ~src:0 ~round:r (string_of_int r)
  done;
  let deadline = L.Transport.now_s () +. 10.0 in
  let got = ref 0 in
  while !got < 20 && L.Transport.now_s () < deadline do
    got := !got + List.length (L.Transport.drain t ~dst:1);
    Thread.delay 0.005
  done;
  check_int "all 20 delivered despite drop:0.9" 20 !got;
  check_bool "drops recovered by retransmission" true
    ((L.Transport.stats t).L.Transport.retransmissions > 0)

(* --- Pacer ------------------------------------------------------------------- *)

let test_pacer_backoff () =
  let p = L.Pacer.create ~init_s:0.01 ~max_s:0.08 () in
  Alcotest.(check (float 1e-9)) "starts at init" 0.01 (L.Pacer.current p);
  L.Pacer.note_wait p;
  L.Pacer.on_expiry p;
  L.Pacer.on_expiry p;
  Alcotest.(check (float 1e-9)) "grew x4" 0.04 (L.Pacer.current p);
  L.Pacer.note_wait p;
  L.Pacer.on_expiry p;
  L.Pacer.on_expiry p;
  Alcotest.(check (float 1e-9)) "capped at max" 0.08 (L.Pacer.current p);
  for _ = 1 to 100 do
    L.Pacer.on_quorum p
  done;
  Alcotest.(check (float 1e-9)) "decays back to init" 0.01 (L.Pacer.current p);
  check_int "expiries counted" 4 (L.Pacer.expiries p);
  Alcotest.(check (list (float 1e-9))) "trajectory" [ 0.01; 0.04 ] (L.Pacer.trajectory p)

let test_pacer_invalid () =
  invalid (fun () -> L.Pacer.create ~init_s:0.0 ~max_s:1.0 ());
  invalid (fun () -> L.Pacer.create ~init_s:Float.nan ~max_s:1.0 ());
  (* timeout_max < timeout_init *)
  invalid (fun () -> L.Pacer.create ~init_s:0.5 ~max_s:0.1 ());
  invalid (fun () -> L.Pacer.create ~growth:0.5 ~init_s:0.1 ~max_s:1.0 ());
  invalid (fun () -> L.Pacer.create ~decay:0.0 ~init_s:0.1 ~max_s:1.0 ())

(* --- Live config validation -------------------------------------------------- *)

let test_live_config_invalid () =
  let inputs = [ 1; 2; 3 ] in
  let crash = G.Crash.none ~n:3 in
  invalid (fun () -> L.Runner.default_config ~inputs:[] ~crash ());
  invalid (fun () ->
      L.Runner.default_config ~inputs ~crash:(G.Crash.none ~n:5) ());
  invalid (fun () ->
      L.Runner.default_config ~timeout_init_s:0.5 ~timeout_max_s:0.1 ~inputs ~crash ());
  invalid (fun () ->
      L.Runner.default_config ~timeout_init_s:Float.nan ~inputs ~crash ());
  invalid (fun () -> L.Runner.default_config ~retries:(-1) ~inputs ~crash ());
  invalid (fun () -> L.Runner.default_config ~round_budget:0 ~inputs ~crash ());
  invalid (fun () -> L.Runner.default_config ~wall_budget_s:0.0 ~inputs ~crash ());
  invalid (fun () ->
      L.Runner.default_config
        ~faults:{ Chaos.Netfault.none with Chaos.Netfault.drop = Float.nan }
        ~inputs ~crash ())

(* --- Differential: lockstep vs live ------------------------------------------ *)

module Floodset2 = Anon_baselines.Floodset.Make (struct
  let failures_bound = 2
end)

let algos :
    (string * (module G.Intf.ALGORITHM)) list =
  [
    ("es", (module C.Es_consensus));
    ("ess", (module C.Ess_consensus));
    ("floodset", (module Floodset2));
    ("es-unguarded", (module C.Es_consensus.No_written_old_guard));
  ]

(* Sampled configs: (label, inputs, crash events). Only [Silent] and
   [Broadcast_all] crashes — [Broadcast_subset] draws its receiver set
   from backend-specific RNG streams, so the two backends legitimately
   diverge there. *)
let diff_configs =
  [
    ("n4-clean", [ 3; 1; 4; 1 ], []);
    ( "n5-silent",
      [ 2; 7; 1; 8; 2 ],
      [ { G.Crash.pid = 1; round = 2; broadcast = G.Crash.Silent } ] );
    ( "n6-mixed",
      [ 5; 5; 5; 9; 2; 6 ],
      [
        { G.Crash.pid = 0; round = 1; broadcast = G.Crash.Broadcast_all };
        { G.Crash.pid = 3; round = 3; broadcast = G.Crash.Silent };
      ] );
  ]

let by_pid ds = List.sort (fun (p1, _, _) (p2, _, _) -> Int.compare p1 p2) ds

let pp_decisions ds =
  String.concat "; "
    (List.map (fun (p, r, v) -> Printf.sprintf "p%d@r%d=%d" p r v) (by_pid ds))

let assert_safe label = function
  | L.Runner.Safe -> ()
  | L.Runner.Violations vs ->
    Alcotest.failf "%s: safety violated: %s" label (String.concat "; " vs)

let run_differential (algo_name, (module A : G.Intf.ALGORITHM)) =
  let module LR = G.Runner.Make (A) in
  let module LiveR = L.Runner.Make (A) in
  List.iter
    (fun (cfg_label, inputs, crash_events) ->
      let label = Printf.sprintf "%s/%s" algo_name cfg_label in
      let n = List.length inputs in
      let crash = G.Crash.of_events ~n crash_events in
      let lockstep =
        LR.run
          (G.Runner.default_config ~seed:42 ~inputs ~crash (G.Adversary.sync ()))
      in
      let live =
        LiveR.run
          (L.Runner.default_config ~timeout_init_s:0.08 ~timeout_max_s:0.4
             ~retries:2 ~miss_grace:1 ~wall_budget_s:60.0 ~seed:42 ~inputs ~crash ())
      in
      assert_safe label live.L.Runner.safety;
      check_bool
        (label ^ ": live decided all correct")
        lockstep.G.Runner.all_correct_decided live.L.Runner.all_correct_decided;
      Alcotest.(check string)
        (label ^ ": decisions (pid, round, value) pinned to lockstep")
        (pp_decisions lockstep.G.Runner.decisions)
        (pp_decisions live.L.Runner.decisions))
    diff_configs

let differential_tests =
  List.map
    (fun (name, a) ->
      Alcotest.test_case name `Slow (fun () -> run_differential (name, a)))
    algos

(* --- Live robustness --------------------------------------------------------- *)

let faulty_spec = Chaos.Netfault.of_string "drop:0.15,dup:0.1,delay:0.3:0.01"

let test_live_faulty_decides () =
  let module LiveR = L.Runner.Make (C.Es_consensus) in
  let inputs = List.init 8 (fun i -> (i * 3 mod 5) + 1 ) in
  let crash =
    G.Crash.of_events ~n:8
      [ { G.Crash.pid = 2; round = 2; broadcast = G.Crash.Broadcast_subset } ]
  in
  let o =
    LiveR.run
      (L.Runner.default_config ~faults:faulty_spec ~timeout_init_s:0.02
         ~timeout_max_s:0.5 ~wall_budget_s:60.0 ~seed:9 ~inputs ~crash ())
  in
  assert_safe "faulty" o.L.Runner.safety;
  check_bool "decided under drops+dups+delay" true o.L.Runner.all_correct_decided;
  check_bool "timeout curve recorded" true (o.L.Runner.timeout_curve <> [])

let test_live_undecided_budget () =
  (* A silent crasher makes everyone wait out a pacer timeout, and the
     wall budget is far below one: nobody can finish round 1, so the run
     must come back structured — undecided, safety still checked —
     rather than hang. *)
  let module LiveR = L.Runner.Make (C.Es_consensus) in
  let inputs = [ 1; 2; 3; 4 ] in
  let crash =
    G.Crash.of_events ~n:4
      [ { G.Crash.pid = 0; round = 1; broadcast = G.Crash.Silent } ]
  in
  let o =
    LiveR.run
      (L.Runner.default_config ~timeout_init_s:5.0 ~timeout_max_s:10.0
         ~wall_budget_s:0.3 ~inputs ~crash ())
  in
  check_bool "undecided" false o.L.Runner.all_correct_decided;
  check_int "every correct pid reported undecided" 3
    (List.length o.L.Runner.undecided);
  assert_safe "undecided run" o.L.Runner.safety;
  check_bool "stopped on the wall budget" true
    (Array.exists
       (fun p -> p.L.Runner.stop = L.Runner.Wall_budget_exhausted)
       o.L.Runner.processes);
  check_bool "returned promptly" true (o.L.Runner.wall_s < 10.0)

let () =
  Alcotest.run "live"
    [
      ( "netfault",
        [
          Alcotest.test_case "parse" `Quick test_netfault_parse;
          Alcotest.test_case "invalid specs rejected" `Quick test_netfault_invalid;
        ] );
      ( "wire",
        [
          Alcotest.test_case "chan due ordering" `Quick test_chan_due_ordering;
          Alcotest.test_case "faultless fifo" `Quick test_transport_faultless_fifo;
          Alcotest.test_case "lossy wire still delivers" `Quick
            test_transport_faulty_delivers_eventually;
        ] );
      ( "pacer",
        [
          Alcotest.test_case "backoff and decay" `Quick test_pacer_backoff;
          Alcotest.test_case "invalid timeouts rejected" `Quick test_pacer_invalid;
        ] );
      ("config", [ Alcotest.test_case "invalid configs rejected" `Quick test_live_config_invalid ]);
      ("differential", differential_tests);
      ( "robustness",
        [
          Alcotest.test_case "faulty wire decides + safe" `Slow test_live_faulty_decides;
          Alcotest.test_case "undecided budget, no hang" `Quick test_live_undecided_budget;
        ] );
    ]
