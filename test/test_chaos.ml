(* Tests for the chaos layer: fault-plan admissibility, the checker
   catching deliberately inadmissible schedules, the fuzzer's shrinking,
   and the JSON repro/replay loop. *)

open Anon_kernel
module G = Anon_giraf
module Ch = Anon_chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- crash-schedule shapes -------------------------------------------------- *)

let test_burst_crashes () =
  let rng = Rng.make 11 in
  let evs = Ch.Fault.burst_crashes ~n:8 ~failures:5 ~at:10 ~width:3 rng in
  check_int "count" 5 (List.length evs);
  let pids = List.map (fun (ev : G.Crash.event) -> ev.pid) evs in
  check_int "distinct pids" 5 (List.length (List.sort_uniq compare pids));
  List.iter
    (fun (ev : G.Crash.event) ->
      check_bool "round in window" true (ev.round >= 10 && ev.round <= 13))
    evs;
  (* a valid schedule for Crash.of_events *)
  ignore (G.Crash.of_events ~n:8 evs)

let test_cascade_crashes () =
  let rng = Rng.make 12 in
  let evs = Ch.Fault.cascade_crashes ~n:6 ~failures:4 ~start:3 ~gap:5 rng in
  check_int "count" 4 (List.length evs);
  let rounds = List.map (fun (ev : G.Crash.event) -> ev.round) evs in
  Alcotest.(check (list int)) "arithmetic rounds" [ 3; 8; 13; 18 ] rounds;
  Alcotest.check_raises "too many failures"
    (Invalid_argument "Fault: 7 failures among 6 processes") (fun () ->
      ignore (Ch.Fault.cascade_crashes ~n:6 ~failures:7 ~start:1 ~gap:1 rng))

(* --- admissible wrapping ---------------------------------------------------- *)

(* Heavy admissible fault intensities on every algorithm: the wrapped
   adversary must still satisfy its declared environment and the
   algorithms must stay correct and live. *)
let heavy_faults =
  {
    Ch.Fault.duplicate = 0.5;
    extra_delay = 0.6;
    max_extra = 4;
    reorder = 0.6;
    inadmissible = None;
  }

let base_case algo : Ch.Scenario.t =
  {
    algo;
    n = 4;
    gst = 6;
    rotation = G.Adversary.Round_robin;
    noise = 0.1;
    horizon =
      (match algo with
      | Ch.Scenario.Es -> 80
      | Ch.Scenario.Ess -> 160
      | Ch.Scenario.Weak_set -> 240
      | Ch.Scenario.Register -> 460);
    seed = 5;
    crashes = [];
    churn = [];
    env = None;
    ops_per_client = 4;
    faults = heavy_faults;
    schedule = None;
  }

let test_wrap_admissible_all_algos () =
  List.iter
    (fun algo ->
      List.iter
        (fun seed ->
          let case = { (base_case algo) with seed } in
          match Ch.Fuzz.run_case case with
          | [] -> ()
          | vs ->
            Alcotest.failf "%s seed %d under heavy admissible faults: %s"
              (Ch.Scenario.algo_name algo) seed
              (String.concat "; " (Ch.Fuzz.violation_strings vs)))
        [ 5; 6; 7 ])
    Ch.Scenario.all_algos

let test_wrap_noop_identity () =
  (* A no-op spec returns the adversary unchanged — same plans, no rename. *)
  let adv = G.Adversary.ms () in
  let wrapped = Ch.Fault.wrap Ch.Fault.none adv in
  Alcotest.(check string) "same name" (G.Adversary.name adv) (G.Adversary.name wrapped)

let test_wrap_records_faults () =
  let recorder = Anon_obs.Recorder.create ~metrics:(Anon_obs.Metrics.create ()) () in
  let case = base_case Ch.Scenario.Es in
  let rng = Rng.make case.seed in
  let inputs = Rng.shuffle rng (List.init case.n (fun i -> i + 1)) in
  let config =
    G.Runner.default_config ~horizon:case.horizon ~seed:case.seed ~inputs
      ~crash:(Ch.Scenario.crash case)
      (Ch.Scenario.adversary ~recorder case)
  in
  let module R = G.Runner.Make (Anon_consensus.Es_consensus) in
  ignore (R.run ~recorder config);
  let snap = Anon_obs.Metrics.snapshot (Anon_obs.Recorder.metrics recorder) in
  let counter name = Option.value ~default:0 (List.assoc_opt name snap.counters) in
  check_bool "duplicates recorded" true (counter "fault.duplicates" > 0);
  check_bool "extra delays recorded" true (counter "fault.extra_delays" > 0)

(* --- inadmissible modes are caught ------------------------------------------ *)

let has_tag want vs =
  List.exists
    (fun v ->
      match (want, v) with
      | `No_source, G.Checker.No_source _ -> true
      | `Not_timely, G.Checker.Source_not_timely _ -> true
      | `Unstable, G.Checker.Unstable_source _ -> true
      | _ -> false)
    vs

let test_drop_obligated_detected () =
  let case =
    {
      (base_case Ch.Scenario.Es) with
      faults =
        { Ch.Fault.none with inadmissible = Some (Ch.Fault.Drop_obligated { from_round = 2 }) };
    }
  in
  let vs = Ch.Fuzz.run_case case in
  check_bool "env violation found" true
    (has_tag `No_source vs || has_tag `Not_timely vs)

let test_unstable_source_detected () =
  let case =
    {
      (base_case Ch.Scenario.Ess) with
      faults =
        { Ch.Fault.none with inadmissible = Some (Ch.Fault.Unstable_source { from_round = 2 }) };
    }
  in
  let vs = Ch.Fuzz.run_case case in
  check_bool "stability violation found" true (has_tag `Unstable vs)

(* --- map_plan over scripted adversaries --------------------------------------- *)

(* The chaos layer's wrapping hook composed with a fully scripted inner
   adversary: the wrapper must inherit the declared environment verbatim,
   and a deliberately inadmissible transformation must still be flagged by
   the trace checker. *)

let test_map_plan_scripted_env () =
  let mk env =
    G.Adversary.scripted ~name:"script" ~env (fun ctx _rng ->
        G.Adversary.timely_all ctx)
  in
  List.iter
    (fun env ->
      let base = mk env in
      let wrapped = G.Adversary.map_plan (fun _ctx _rng p -> p) base in
      check_bool "env preserved" true (G.Adversary.env wrapped = env);
      Alcotest.(check string)
        "name preserved by default" (G.Adversary.name base)
        (G.Adversary.name wrapped);
      let renamed =
        G.Adversary.map_plan ~rename:(fun n -> n ^ "+noop") (fun _ _ p -> p) base
      in
      check_bool "env preserved under rename" true (G.Adversary.env renamed = env);
      Alcotest.(check string) "rename applied" "script+noop"
        (G.Adversary.name renamed))
    [ G.Env.Ms; G.Env.Es { gst = 4 }; G.Env.Ess { gst = 3 }; G.Env.Sync ]

let test_map_plan_scripted_inadmissible () =
  (* The inner script is fully synchronous (admissible in MS); the wrapper
     pushes every delivery one round late from round 2 on and erases the
     source designation — the checker must catch the hole. *)
  let base =
    G.Adversary.scripted ~name:"script" ~env:G.Env.Ms (fun ctx _rng ->
        G.Adversary.timely_all ctx)
  in
  let sabotage (ctx : G.Adversary.ctx) _rng (p : G.Adversary.plan) =
    if ctx.round < 2 then p
    else
      {
        G.Adversary.source = None;
        deliveries =
          List.map
            (fun (sender, ds) ->
              ( sender,
                List.map
                  (fun (d : G.Adversary.delivery) ->
                    { d with G.Adversary.arrival = ctx.round + 1 })
                  ds ))
            p.G.Adversary.deliveries;
      }
  in
  let wrapped = G.Adversary.map_plan ~rename:(fun n -> n ^ "+late") sabotage base in
  check_bool "declared env unchanged by sabotage" true
    (G.Adversary.env wrapped = G.Env.Ms);
  let config =
    G.Runner.default_config ~horizon:12 ~seed:3 ~inputs:[ 2; 7; 5 ]
      ~crash:(G.Crash.none ~n:3) wrapped
  in
  let module R = G.Runner.Make (Anon_consensus.Es_consensus) in
  let out = R.run config in
  let vs = G.Checker.check_env out.G.Runner.trace in
  check_bool "checker flags the transformed schedule" true
    (has_tag `No_source vs || has_tag `Not_timely vs)

(* --- scenario JSON ------------------------------------------------------------ *)

let test_scenario_json_roundtrip () =
  let rng = Rng.make 99 in
  for i = 1 to 50 do
    let case = Ch.Scenario.sample ~inadmissible:(i mod 3 = 0) rng in
    let encoded = Anon_obs.Json.to_string (Ch.Scenario.to_json case) in
    match Anon_obs.Json.of_string encoded with
    | Error e -> Alcotest.failf "case %d: parse error %s" i e
    | Ok j -> (
      match Ch.Scenario.of_json j with
      | Error e -> Alcotest.failf "case %d: decode error %s" i e
      | Ok case' -> check_bool "roundtrip equal" true (case = case'))
  done

(* --- campaigns ----------------------------------------------------------------- *)

(* Acceptance: 200 admissible runs at seed 42 find nothing. *)
let test_campaign_admissible_clean () =
  let report = Ch.Fuzz.campaign ~runs:200 ~seed:42 () in
  check_int "all runs executed" 200 report.runs_done;
  check_bool "no violations" true (report.finding = None)

(* Acceptance: an inadmissible campaign finds a violation, shrinks it to a
   smaller-or-equal case, writes a JSON repro, and replaying the repro
   reproduces the identical violation. *)
let test_campaign_inadmissible_repro_replay () =
  let report = Ch.Fuzz.campaign ~inadmissible:true ~runs:50 ~seed:1 () in
  match report.finding with
  | None -> Alcotest.fail "inadmissible campaign found nothing"
  | Some f ->
    check_bool "violations nonempty" true (f.violations <> []);
    check_bool "shrink explored candidates" true (f.explored > 0);
    check_bool "n shrunk or equal" true (f.case.n <= f.original.n);
    check_bool "horizon shrunk or equal" true (f.case.horizon <= f.original.horizon);
    check_bool "crashes shrunk or equal" true
      (List.length f.case.crashes <= List.length f.original.crashes);
    let path = Filename.temp_file "anon_chaos_repro" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Ch.Fuzz.write_repro ~path f;
        match Ch.Fuzz.replay ~path with
        | Error e -> Alcotest.failf "replay failed: %s" e
        | Ok r ->
          check_bool "replayed case equals shrunk case" true (r.case = f.case);
          Alcotest.(check (list string))
            "identical violations"
            (Ch.Fuzz.violation_strings f.violations)
            (Ch.Fuzz.violation_strings r.actual);
          check_bool "matches" true r.matches)

let test_replay_rejects_garbage () =
  (match Ch.Fuzz.replay ~path:"/nonexistent/repro.json" with
  | Ok _ -> Alcotest.fail "expected error on missing file"
  | Error _ -> ());
  match Ch.Fuzz.replay_json (Anon_obs.Json.Obj []) with
  | Ok _ -> Alcotest.fail "expected error on empty object"
  | Error _ -> ()

let () =
  Alcotest.run "chaos"
    [
      ( "faults",
        [
          Alcotest.test_case "burst crashes" `Quick test_burst_crashes;
          Alcotest.test_case "cascade crashes" `Quick test_cascade_crashes;
          Alcotest.test_case "wrap keeps admissibility" `Quick
            test_wrap_admissible_all_algos;
          Alcotest.test_case "noop wrap is identity" `Quick test_wrap_noop_identity;
          Alcotest.test_case "faults recorded" `Quick test_wrap_records_faults;
          Alcotest.test_case "drop-obligated caught" `Quick test_drop_obligated_detected;
          Alcotest.test_case "unstable-source caught" `Quick
            test_unstable_source_detected;
          Alcotest.test_case "map_plan over scripted keeps env" `Quick
            test_map_plan_scripted_env;
          Alcotest.test_case "map_plan sabotage caught" `Quick
            test_map_plan_scripted_inadmissible;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "scenario json roundtrip" `Quick
            test_scenario_json_roundtrip;
          Alcotest.test_case "admissible campaign clean" `Quick
            test_campaign_admissible_clean;
          Alcotest.test_case "inadmissible repro + replay" `Quick
            test_campaign_inadmissible_repro_replay;
          Alcotest.test_case "replay rejects garbage" `Quick test_replay_rejects_garbage;
        ] );
    ]
