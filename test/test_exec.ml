(* Tests for the execution pool (lib/exec): submission-order results,
   sequential/parallel equivalence of harness batches and fuzz campaigns,
   task isolation, and crash propagation. *)

module K = Anon_kernel
module G = Anon_giraf
module H = Anon_harness
module X = Anon_exec
module Ch = Anon_chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Pool.map basics -------------------------------------------------------- *)

let test_map_order () =
  let items = List.init 100 Fun.id in
  let expect = List.map (fun x -> x * x) items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "squares at jobs=%d" jobs)
        expect
        (X.Pool.map ~jobs (fun x -> x * x) items))
    [ 1; 4 ]

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (X.Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (X.Pool.map ~jobs:4 (fun x -> x + 1) [ 6 ])

let test_resolve () =
  check_int "explicit" 3 (X.Pool.resolve ~jobs:3 ());
  check_bool "auto >= 1" true (X.Pool.resolve ~jobs:0 () >= 1);
  let saved = !X.Pool.default_jobs in
  X.Pool.default_jobs := 5;
  check_int "default" 5 (X.Pool.resolve ());
  X.Pool.default_jobs := saved;
  Alcotest.check_raises "negative" (Invalid_argument "Pool.resolve: jobs must be >= 0")
    (fun () -> ignore (X.Pool.resolve ~jobs:(-1) ()))

let test_nested_map () =
  (* A map inside a worker task must not spawn domains-within-domains;
     it degrades to the sequential path with the same results. *)
  let result =
    X.Pool.map ~jobs:4
      (fun i -> X.Pool.map ~jobs:4 (fun j -> (10 * i) + j) [ 1; 2; 3 ])
      [ 1; 2 ]
  in
  Alcotest.(check (list (list int))) "nested" [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ] result

exception Boom of int

let test_crash_propagation () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "worker crash surfaces at jobs=%d" jobs)
        (Boom 2)
        (fun () ->
          ignore
            (X.Pool.map ~jobs
               (fun x -> if x >= 2 then raise (Boom x) else x)
               [ 0; 1; 2; 3; 4 ])))
    [ 1; 4 ];
  (* The lowest-index failure wins even though later tasks also raise —
     deterministic regardless of completion order. *)
  Alcotest.check_raises "lowest index wins" (Boom 1) (fun () ->
      ignore (X.Pool.map ~jobs:4 (fun x -> raise (Boom x)) [ 1; 2; 3; 4 ]))

let test_isolation () =
  (* Each task interns into a fresh table: interning done inside a task
     neither sees nor pollutes the caller's scope. *)
  let before = K.History.interned_count () in
  let counts =
    X.Pool.map ~jobs:1
      (fun i ->
        ignore (K.History.of_list (List.init 5 (fun j -> i + j)));
        K.History.interned_count ())
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "each task starts fresh" [ 6; 6; 6 ] counts;
  check_int "caller scope untouched" before (K.History.interned_count ())

(* --- Runs.batch: sequential vs parallel ------------------------------------- *)

module Es_runs = H.Runs.Of (Anon_consensus.Es_consensus)

let batch ~jobs =
  Es_runs.batch ~horizon:200 ~metrics:true ~jobs
    ~inputs:(H.Runs.distinct_inputs ~n:6)
    ~crash:(fun rng -> G.Crash.random ~n:6 ~failures:2 ~max_round:20 rng)
    ~adversary:(fun _ -> G.Adversary.es ~gst:15 ~noise:0.2 ())
    ~seeds:(H.Runs.seeds 12) ()

(* Timing histograms ([phase.] and [exec.] prefixes) are wall-clock
   measurements and legitimately differ between any two executions;
   everything else in a snapshot is deterministic. *)
let deterministic_part (s : Anon_obs.Metrics.snapshot) =
  let keep (name, _) =
    not (String.length name >= 6 && String.sub name 0 6 = "phase.")
    && not (String.length name >= 5 && String.sub name 0 5 = "exec.")
  in
  (s.counters, s.gauges, List.filter keep s.histograms)

let test_batch_jobs_equivalence () =
  let b1 = batch ~jobs:1 in
  let b4 = batch ~jobs:4 in
  check_int "runs" b1.runs b4.runs;
  check_int "decided" b1.decided b4.decided;
  Alcotest.(check (list int)) "decision rounds" b1.decision_rounds b4.decision_rounds;
  check_int "env violations" b1.env_violations b4.env_violations;
  check_int "agreement" b1.agreement_violations b4.agreement_violations;
  check_int "validity" b1.validity_violations b4.validity_violations;
  Alcotest.(check (list int)) "messages" b1.messages b4.messages;
  match b1.metrics, b4.metrics with
  | Some s1, Some s4 ->
    check_bool "merged metrics identical (modulo wall-clock timings)" true
      (deterministic_part s1 = deterministic_part s4);
    (* The histogram merge itself must be jobs-invariant: the merged
       message-size histogram is non-empty and byte-identical whatever
       the chunking. *)
    (match
       ( List.assoc_opt "runner.msg_size" s1.histograms,
         List.assoc_opt "runner.msg_size" s4.histograms )
     with
    | Some h1, Some h4 ->
      check_bool "msg_size histogram populated" false (Anon_obs.Hist.is_empty h1);
      check_bool "msg_size histogram jobs-invariant" true (Anon_obs.Hist.equal h1 h4)
    | _ -> Alcotest.fail "merged batches must carry the msg_size histogram")
  | _ -> Alcotest.fail "both batches must carry metrics"

let test_batch_reproducible_at_same_jobs () =
  let a = batch ~jobs:4 in
  let b = batch ~jobs:4 in
  Alcotest.(check (list int)) "decision rounds" a.decision_rounds b.decision_rounds;
  Alcotest.(check (list int)) "messages" a.messages b.messages

(* --- Fuzz campaign: sequential vs parallel ----------------------------------- *)

let report_fingerprint (r : Ch.Fuzz.report) =
  ( r.runs_done,
    Option.map (fun f -> Anon_obs.Json.to_string (Ch.Fuzz.repro_json f)) r.finding )

let test_fuzz_jobs_equivalence_clean () =
  (* Admissible campaign: no violations either way, same runs_done. *)
  let r1 = Ch.Fuzz.campaign ~runs:15 ~seed:11 ~jobs:1 () in
  let r4 = Ch.Fuzz.campaign ~runs:15 ~seed:11 ~jobs:4 () in
  check_bool "identical clean reports" true
    (report_fingerprint r1 = report_fingerprint r4)

let test_fuzz_jobs_equivalence_finding () =
  (* Inadmissible campaign: the checker must catch the armed fault, and
     the full shrunk finding (rendered as the repro JSON) must be
     byte-identical whatever the job count. *)
  let r1 = Ch.Fuzz.campaign ~inadmissible:true ~runs:25 ~seed:7 ~jobs:1 () in
  let r4 = Ch.Fuzz.campaign ~inadmissible:true ~runs:25 ~seed:7 ~jobs:4 () in
  check_bool "finding present" true (r1.finding <> None);
  check_bool "identical findings" true (report_fingerprint r1 = report_fingerprint r4)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "empty/singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "resolve" `Quick test_resolve;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "crash propagation" `Quick test_crash_propagation;
          Alcotest.test_case "task isolation" `Quick test_isolation;
        ] );
      ( "batch",
        [
          Alcotest.test_case "jobs=1 equals jobs=4" `Quick test_batch_jobs_equivalence;
          Alcotest.test_case "reproducible at jobs=4" `Quick
            test_batch_reproducible_at_same_jobs;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean campaign jobs-equivalent" `Quick
            test_fuzz_jobs_equivalence_clean;
          Alcotest.test_case "finding jobs-equivalent" `Quick
            test_fuzz_jobs_equivalence_finding;
        ] );
    ]
