(* Tests for the dynamic-graph and churn layer: environment parsing and
   pulse arithmetic, churn schedules, topology generators and severing,
   the pinned checker diagnostics, fault-spec validation, scenario schema
   v2 round-trips, admissible property coverage across all algorithms,
   the armed inadmissible modes, and the model checker's dynamic/churn
   verdicts. *)

open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module Ch = Anon_chaos
module Mc = Anon_mc.Mc
module Witness = Anon_mc.Witness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Env: dynamic parsing and pulse arithmetic ------------------------------- *)

let test_env_pulse () =
  (* stability=1: every round is a pulse; stability=3: rounds 1,4,7,... *)
  List.iter (fun r -> check_bool "s=1 all pulse" true (G.Env.pulse ~stability:1 ~round:r))
    [ 1; 2; 3; 7 ];
  List.iter
    (fun (r, want) -> check_bool "s=3" want (G.Env.pulse ~stability:3 ~round:r))
    [ (1, true); (2, false); (3, false); (4, true); (6, false); (7, true) ]

let test_env_of_string_dynamic () =
  let ok spec want =
    match G.Env.of_string spec with
    | Ok env -> check_bool spec true (env = want)
    | Error e -> Alcotest.failf "%s: %s" spec e
  in
  ok "dynamic:3" (G.Env.Dynamic { stability = 3; rooted = true });
  ok "dynamic:1" (G.Env.Dynamic { stability = 1; rooted = true });
  ok "dynamic:2:unrooted" (G.Env.Dynamic { stability = 2; rooted = false });
  List.iter
    (fun bad ->
      match G.Env.of_string bad with
      | Ok _ -> Alcotest.failf "%s should not parse" bad
      | Error _ -> ())
    [ "dynamic"; "dynamic:0"; "dynamic:x"; "dynamic:2:rootless" ]

let test_env_requires_source () =
  let rooted = G.Env.Dynamic { stability = 2; rooted = true } in
  let unrooted = G.Env.Dynamic { stability = 2; rooted = false } in
  (* Rooted: obligations everywhere. Unrooted: pulse rounds are free. *)
  check_bool "rooted pulse" true (G.Env.requires_source rooted ~round:1);
  check_bool "rooted healed" true (G.Env.requires_source rooted ~round:2);
  check_bool "unrooted pulse" false (G.Env.requires_source unrooted ~round:1);
  check_bool "unrooted healed" true (G.Env.requires_source unrooted ~round:2)

(* --- Churn schedules ---------------------------------------------------------- *)

let test_churn_validation () =
  Alcotest.check_raises "pid range"
    (Invalid_argument "Churn.of_events: pid out of range") (fun () ->
      ignore (G.Churn.of_events ~n:2 [ { pid = 2; leave = 1; rejoin = None } ]));
  Alcotest.check_raises "leave >= 1"
    (Invalid_argument "Churn.of_events: leave round must be >= 1") (fun () ->
      ignore (G.Churn.of_events ~n:2 [ { pid = 0; leave = 0; rejoin = None } ]));
  Alcotest.check_raises "rejoin after leave"
    (Invalid_argument "Churn.of_events: rejoin round must be after leave round")
    (fun () ->
      ignore (G.Churn.of_events ~n:2 [ { pid = 0; leave = 3; rejoin = Some 3 } ]));
  Alcotest.check_raises "duplicate pid"
    (Invalid_argument "Churn.of_events: duplicate pid") (fun () ->
      ignore
        (G.Churn.of_events ~n:2
           [
             { pid = 0; leave = 1; rejoin = None };
             { pid = 0; leave = 2; rejoin = None };
           ]))

let test_churn_away_windows () =
  let churn =
    G.Churn.of_events ~n:4
      [
        { pid = 1; leave = 3; rejoin = Some 5 };
        { pid = 2; leave = 2; rejoin = None };
      ]
  in
  check_bool "before leave" false (G.Churn.away churn ~pid:1 ~round:2);
  check_bool "away at leave" true (G.Churn.away churn ~pid:1 ~round:3);
  check_bool "away mid-window" true (G.Churn.away churn ~pid:1 ~round:4);
  check_bool "back at rejoin" false (G.Churn.away churn ~pid:1 ~round:5);
  check_bool "permanent leaver" true (G.Churn.away churn ~pid:2 ~round:100);
  check_bool "stayer never away" false (G.Churn.away churn ~pid:0 ~round:50);
  Alcotest.(check (list int)) "stayers" [ 0; 3 ] (G.Churn.stayers churn);
  check_int "churners" 2 (G.Churn.churners churn);
  check_bool "is_stayer" true (G.Churn.is_stayer churn 0);
  check_bool "not stayer" false (G.Churn.is_stayer churn 2);
  check_int "leaving at 2" 1 (List.length (G.Churn.leaving_at churn ~round:2));
  check_int "rejoining at 5" 1 (List.length (G.Churn.rejoining_at churn ~round:5))

let test_churn_random_bounds () =
  let rng = Rng.make 9 in
  for _ = 1 to 20 do
    let churn = G.Churn.random ~n:5 ~churners:2 ~max_round:6 rng in
    check_int "two churners" 2 (G.Churn.churners churn);
    List.iter
      (fun (ev : G.Churn.event) ->
        check_bool "leave in range" true (ev.leave >= 1 && ev.leave <= 6);
        match ev.rejoin with
        | None -> ()
        | Some r -> check_bool "rejoin after leave" true (r > ev.leave))
      (G.Churn.events churn)
  done

(* --- Topology generators and severing ----------------------------------------- *)

let test_topology_rotating_root () =
  let top = G.Topology.rotating_root () in
  (* Round r's root is (r-1) mod n; the star keeps root->everyone and
     everyone->root, drops the rest. *)
  check_bool "root edge out" true (G.Topology.edge top ~n:3 ~round:1 ~src:0 ~dst:2);
  check_bool "edge into root" true (G.Topology.edge top ~n:3 ~round:1 ~src:2 ~dst:0);
  check_bool "non-star edge absent" false
    (G.Topology.edge top ~n:3 ~round:1 ~src:1 ~dst:2);
  check_bool "root advances" true (G.Topology.edge top ~n:3 ~round:2 ~src:1 ~dst:2)

let test_topology_t_interval_static () =
  let top = G.Topology.t_interval ~t:3 () in
  (* Within one interval the graph must not change. *)
  let snapshot round =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun d ->
            if s <> d && G.Topology.edge top ~n:4 ~round ~src:s ~dst:d then
              Some (s, d)
            else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  check_bool "rounds 1-3 identical" true
    (snapshot 1 = snapshot 2 && snapshot 2 = snapshot 3)

let test_sever_complete_is_identity () =
  (* Severing with the complete graph changes nothing: same decisions,
     clean checker. *)
  let run adv =
    let inputs = [ 3; 1; 2 ] in
    let config =
      G.Runner.default_config ~horizon:30 ~seed:5 ~inputs
        ~crash:(G.Crash.none ~n:3) ~churn:(G.Churn.none ~n:3) adv
    in
    let module R = G.Runner.Make (C.Es_consensus) in
    (R.run config).G.Runner.decisions
  in
  let base = run (G.Adversary.es ~gst:3 ()) in
  let severed = run (G.Topology.sever G.Topology.complete (G.Adversary.es ~gst:3 ())) in
  check_bool "identical decisions" true (base = severed)

let test_sever_admissible_stays_clean () =
  (* Aggressive generated graphs under every admissible adversary: the
     environment-obligated links are protected, so the checker must stay
     clean and ES must still decide. *)
  List.iter
    (fun top ->
      let adv = G.Topology.sever top (G.Adversary.es ~gst:4 ~noise:0.3 ()) in
      let inputs = [ 2; 4; 1; 3 ] in
      let config =
        G.Runner.default_config ~horizon:60 ~seed:11 ~inputs
          ~crash:(G.Crash.none ~n:4) ~churn:(G.Churn.none ~n:4) adv
      in
      let module R = G.Runner.Make (C.Es_consensus) in
      let outcome = R.run config in
      (match G.Checker.check_env outcome.G.Runner.trace with
      | [] -> ()
      | vs ->
        Alcotest.failf "%s: %s" (G.Topology.name top)
          (String.concat "; "
             (List.map (Format.asprintf "%a" G.Checker.pp_violation) vs)));
      check_bool
        (G.Topology.name top ^ " decides")
        true outcome.G.Runner.all_correct_decided)
    G.Topology.builtins

(* --- pinned fault/topology composition order ---------------------------------- *)

let test_sever_fault_order_pinned () =
  (* [Fault.compose] stacks the fault layers inside and severing outermost,
     so a link the topology cuts arrives exactly one round late no matter
     what the delay layer drew: severed-then-delayed equals
     delayed-then-severed. With the orders flipped, the delay layer (firing
     with probability 1 here) would see the demoted arrival and push the
     severed link two or more rounds out. *)
  let n = 3 in
  let all = List.init n Fun.id in
  (* Fixed schedule: senders 0 and 1 timely to everyone, sender 2 one
     round late to everyone; the declared source is 0. *)
  let fixed_plan k =
    {
      G.Adversary.source = Some 0;
      deliveries =
        List.map
          (fun s ->
            ( s,
              List.filter_map
                (fun r ->
                  if r = s then None
                  else
                    Some
                      {
                        G.Adversary.receiver = r;
                        arrival = (if s = 2 then k + 1 else k);
                      })
                all ))
          all;
    }
  in
  let base () =
    G.Adversary.of_schedule ~name:"fixed" ~env:G.Env.Ms
      (List.init 8 (fun i -> fixed_plan (i + 1)))
  in
  (* Cut every link into 2 except self-delivery: 1->2 is severable, while
     0->2 is an obligated source link the severing must protect. *)
  let top =
    G.Topology.make ~name:"cut2" (fun ~n:_ ~round:_ ~src ~dst ->
        not (dst = 2 && src <> 2))
  in
  let spec = { Ch.Fault.none with extra_delay = 1.0; max_extra = 2 } in
  let composed = Ch.Fault.compose ~topology:top spec (base ()) in
  check_str "name pins the stack order" "fixed+faults+cut2"
    (G.Adversary.name composed);
  let manual = G.Topology.sever top (Ch.Fault.wrap spec (base ())) in
  let ctx k =
    { G.Adversary.round = k; senders = all; obligated = all; correct = all; alive = all }
  in
  let arrival_of (plan : G.Adversary.plan) ~src ~dst =
    let ds = List.assoc src plan.G.Adversary.deliveries in
    (List.find (fun (d : G.Adversary.delivery) -> d.receiver = dst) ds)
      .G.Adversary.arrival
  in
  for k = 1 to 8 do
    let p = G.Adversary.plan composed (ctx k) (Rng.make (100 + k)) in
    let p' = G.Adversary.plan manual (ctx k) (Rng.make (100 + k)) in
    check_bool "compose = sever outside wrap" true (p = p');
    (* Timely in the base plan, cut by the graph: late by exactly one
       round, not compounded by the always-firing delay layer. *)
    check_int "severed link one round late" (k + 1) (arrival_of p ~src:1 ~dst:2);
    (* Already late in the base plan: the delay layer does push it
       further — fault lateness and severing lateness stay distinct. *)
    check_bool "base-late link delayed further" true
      (arrival_of p ~src:2 ~dst:0 >= k + 2);
    (* The source's obligated link crosses a cut edge but is protected. *)
    check_int "source stays timely" k (arrival_of p ~src:0 ~dst:2)
  done

let test_compose_full_stack_admissible () =
  (* The whole pinned stack — base adversary, admissible fault layers,
     topology severing — keeps every environment obligation: the checker
     stays clean and ES still decides, over every built-in graph. *)
  let spec =
    { Ch.Fault.none with duplicate = 0.3; extra_delay = 0.5; max_extra = 2; reorder = 0.3 }
  in
  List.iter
    (fun top ->
      let adv =
        Ch.Fault.compose ~topology:top spec (G.Adversary.es ~gst:4 ~noise:0.3 ())
      in
      let inputs = [ 2; 4; 1; 3 ] in
      let config =
        G.Runner.default_config ~horizon:60 ~seed:7 ~inputs
          ~crash:(G.Crash.none ~n:4) ~churn:(G.Churn.none ~n:4) adv
      in
      let module R = G.Runner.Make (C.Es_consensus) in
      let outcome = R.run config in
      (match G.Checker.check_env outcome.G.Runner.trace with
      | [] -> ()
      | vs ->
        Alcotest.failf "%s: %s" (G.Topology.name top)
          (String.concat "; "
             (List.map (Format.asprintf "%a" G.Checker.pp_violation) vs)));
      check_bool
        (G.Topology.name top ^ " decides under the full stack")
        true outcome.G.Runner.all_correct_decided)
    G.Topology.builtins

(* --- pinned checker diagnostics ------------------------------------------------ *)

let test_no_root_diagnostic_format () =
  let v =
    G.Checker.No_root
      { round = 4; window = 2; senders = [ (0, [ 1; 2 ]); (2, [ 1 ]) ] }
  in
  check_str "no_root"
    "env: round 4 (window 2) root reachability failed — no covering root: p0 \
     late to p1,p2; p2 late to p1"
    (Format.asprintf "%a" G.Checker.pp_violation v)

let test_stability_diagnostic_format () =
  let v =
    G.Checker.Stability_violation { round = 5; window = 2; sender = 1; missing = [ 0; 3 ] }
  in
  check_str "stability"
    "env: round 5 (window 2) stability failed — sender p1 late to p0,p3"
    (Format.asprintf "%a" G.Checker.pp_violation v)

(* --- Fault spec validation ------------------------------------------------------ *)

let invalid what = G.Config_error.Invalid_config { G.Config_error.where = "Fault"; what }

let test_fault_validate_rejects () =
  Alcotest.check_raises "NaN probability"
    (invalid "duplicate probability is NaN") (fun () ->
      Ch.Fault.validate { Ch.Fault.none with duplicate = Float.nan });
  Alcotest.check_raises "probability > 1"
    (invalid "reorder probability 1.5 outside [0, 1]") (fun () ->
      Ch.Fault.validate { Ch.Fault.none with reorder = 1.5 });
  Alcotest.check_raises "negative probability"
    (invalid "extra_delay probability -0.25 outside [0, 1]") (fun () ->
      Ch.Fault.validate { Ch.Fault.none with extra_delay = -0.25 });
  Alcotest.check_raises "negative max_extra"
    (invalid "max_extra must be >= 0 (got -3)") (fun () ->
      Ch.Fault.validate { Ch.Fault.none with max_extra = -3 });
  (* wrap runs the same validation before doing anything. *)
  Alcotest.check_raises "wrap validates"
    (invalid "duplicate probability 2 outside [0, 1]") (fun () ->
      ignore (Ch.Fault.wrap { Ch.Fault.none with duplicate = 2.0 } (G.Adversary.ms ())))

let test_fault_validate_accepts_boundaries () =
  Ch.Fault.validate { Ch.Fault.none with duplicate = 0.0; reorder = 1.0; max_extra = 0 }

(* --- admissible property: dynamic env + churn across all algorithms ------------- *)

let base_case algo : Ch.Scenario.t =
  {
    algo;
    n = 4;
    gst = 6;
    rotation = G.Adversary.Round_robin;
    noise = 0.1;
    horizon =
      (match algo with
      | Ch.Scenario.Es -> 160
      | Ch.Scenario.Ess -> 240
      | Ch.Scenario.Weak_set -> 320
      | Ch.Scenario.Register -> 460);
    seed = 5;
    crashes = [];
    churn = [];
    env = None;
    ops_per_client = 3;
    faults = Ch.Fault.none;
    schedule = None;
  }

let assert_clean label case =
  match Ch.Fuzz.run_case case with
  | [] -> ()
  | vs ->
    Alcotest.failf "%s: %s" label
      (String.concat "; " (Ch.Fuzz.violation_strings vs))

let test_dynamic_env_admissible_all_algos () =
  (* A rooted dynamic environment (stability 2 and 3) wrapped around every
     algorithm that tolerates environment overrides must stay
     checker-clean. Register's checker assumes stable clients, so it keeps
     its native environment. *)
  List.iter
    (fun algo ->
      List.iter
        (fun stability ->
          List.iter
            (fun seed ->
              let case =
                {
                  (base_case algo) with
                  seed;
                  env = Some (G.Env.Dynamic { stability; rooted = true });
                }
              in
              assert_clean
                (Printf.sprintf "%s s=%d seed=%d" (Ch.Scenario.algo_name algo)
                   stability seed)
                case)
            [ 5; 6; 7 ])
        [ 2; 3 ])
    [ Ch.Scenario.Es; Ch.Scenario.Ess; Ch.Scenario.Weak_set ]

let test_churn_admissible_all_algos () =
  (* The admissible churn regime per algorithm: permanent leaves for the
     consensus algorithms (a leaver is observationally a silent crash;
     rejoiners can legitimately split agreement — see the mc finding test
     below), rejoiners for the join-tolerant weak-set service. Correct
     stayers must still satisfy the checker. *)
  let consensus_churn =
    [
      { G.Churn.pid = 1; leave = 2; rejoin = None };
      { G.Churn.pid = 2; leave = 3; rejoin = None };
    ]
  and weakset_churn =
    [
      { G.Churn.pid = 1; leave = 2; rejoin = Some 4 };
      { G.Churn.pid = 2; leave = 3; rejoin = Some 5 };
    ]
  in
  List.iter
    (fun (algo, churn) ->
      List.iter
        (fun seed ->
          let case = { (base_case algo) with seed; churn } in
          assert_clean
            (Printf.sprintf "%s churn seed=%d" (Ch.Scenario.algo_name algo) seed)
            case)
        [ 5; 6; 7 ])
    [
      (Ch.Scenario.Es, consensus_churn);
      (Ch.Scenario.Ess, consensus_churn);
      (Ch.Scenario.Weak_set, weakset_churn);
    ]

let test_dynamic_churn_crash_combined () =
  (* The full stack at once: dynamic graphs, churn, and a crash, all
     admissible — still clean. *)
  List.iter
    (fun seed ->
      let case =
        {
          (base_case Ch.Scenario.Es) with
          n = 5;
          seed;
          env = Some (G.Env.Dynamic { stability = 2; rooted = true });
          crashes = [ { G.Crash.pid = 4; round = 3; broadcast = G.Crash.Silent } ];
          churn = [ { G.Churn.pid = 1; leave = 2; rejoin = None } ];
        }
      in
      assert_clean (Printf.sprintf "combined seed=%d" seed) case)
    [ 5; 6; 7 ]

let test_sampled_admissible_dynamic_churn () =
  (* What the fuzz campaign actually draws: sampled dynamic + churn cases
     must be clean for a window of seeds. *)
  let rng = Rng.make 123 in
  for _ = 1 to 15 do
    let case = Ch.Scenario.sample ~dynamic:true ~churn:true rng in
    assert_clean (Format.asprintf "%a" Ch.Scenario.pp case) case
  done

(* --- armed inadmissible modes are caught ---------------------------------------- *)

let has_no_root vs =
  List.exists (function G.Checker.No_root _ -> true | _ -> false) vs

let has_stability vs =
  List.exists (function G.Checker.Stability_violation _ -> true | _ -> false) vs

let test_root_starvation_detected () =
  let case =
    {
      (base_case Ch.Scenario.Es) with
      env = Some (G.Env.Dynamic { stability = 2; rooted = true });
      faults =
        {
          Ch.Fault.none with
          inadmissible = Some (Ch.Fault.Root_starvation { from_round = 2 });
        };
    }
  in
  check_bool "No_root flagged" true (has_no_root (Ch.Fuzz.run_case case))

let test_stability_break_detected () =
  let case =
    {
      (base_case Ch.Scenario.Es) with
      env = Some (G.Env.Dynamic { stability = 3; rooted = true });
      faults =
        {
          Ch.Fault.none with
          inadmissible = Some (Ch.Fault.Stability_break { from_round = 2 });
        };
    }
  in
  check_bool "Stability_violation flagged" true
    (has_stability (Ch.Fuzz.run_case case))

let test_armed_modes_noop_on_static_envs () =
  (* The dynamic-only modes must not corrupt a classic-environment run. *)
  List.iter
    (fun mode ->
      let case =
        { (base_case Ch.Scenario.Es) with faults = { Ch.Fault.none with inadmissible = Some mode } }
      in
      assert_clean "no-op on ES" case)
    [
      Ch.Fault.Root_starvation { from_round = 2 };
      Ch.Fault.Stability_break { from_round = 2 };
    ]

(* --- scenario schema v2 ---------------------------------------------------------- *)

let test_scenario_v2_roundtrip () =
  let case =
    {
      (base_case Ch.Scenario.Ess) with
      env = Some (G.Env.Dynamic { stability = 3; rooted = false });
      churn =
        [
          { G.Churn.pid = 0; leave = 2; rejoin = Some 5 };
          { G.Churn.pid = 3; leave = 4; rejoin = None };
        ];
      faults =
        {
          Ch.Fault.none with
          inadmissible = Some (Ch.Fault.Root_starvation { from_round = 3 });
        };
    }
  in
  match Ch.Scenario.of_json (Ch.Scenario.to_json case) with
  | Error e -> Alcotest.failf "round-trip: %s" e
  | Ok back ->
    check_bool "identical" true (back = case);
    check_str "same rendering"
      (Format.asprintf "%a" Ch.Scenario.pp case)
      (Format.asprintf "%a" Ch.Scenario.pp back)

let test_scenario_v1_compat () =
  (* A v1 document (no version field, no env/churn) must still load, with
     the new fields at their defaults — old PR-2/PR-4 repro files keep
     replaying. *)
  let v2 = Ch.Scenario.to_json (base_case Ch.Scenario.Es) in
  let v1 =
    match v2 with
    | Anon_obs.Json.Obj fields ->
      Anon_obs.Json.Obj
        (List.filter (fun (k, _) -> k <> "v" && k <> "env" && k <> "churn") fields)
    | _ -> Alcotest.fail "expected object"
  in
  match Ch.Scenario.of_json v1 with
  | Error e -> Alcotest.failf "v1 decode: %s" e
  | Ok case ->
    check_bool "no env override" true (case.Ch.Scenario.env = None);
    check_int "no churn" 0 (List.length case.Ch.Scenario.churn);
    check_bool "rest preserved" true (case = base_case Ch.Scenario.Es)

let test_scenario_future_version_rejected () =
  let doc =
    match Ch.Scenario.to_json (base_case Ch.Scenario.Es) with
    | Anon_obs.Json.Obj fields ->
      Anon_obs.Json.Obj
        (List.map
           (fun (k, v) -> if k = "v" then (k, Anon_obs.Json.Int 99) else (k, v))
           fields)
    | _ -> Alcotest.fail "expected object"
  in
  match Ch.Scenario.of_json doc with
  | Ok _ -> Alcotest.fail "v99 must be rejected"
  | Error e ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check_bool "mentions the version" true (contains e "v99")

(* --- model checker: dynamic environments and churn budgets ----------------------- *)

let mc_config ?(algo = Mc.Es) ?(n = 2) ?(env = G.Env.Es { gst = 2 }) ?(rounds = 6)
    ?(crashes = 0) ?(churn = 0) ?(armed = false) () =
  {
    Mc.algo;
    n;
    env;
    rounds;
    crashes;
    churn;
    max_delay = 1;
    search = Mc.Bfs;
    armed;
    jobs = Some 1;
    seed = 42;
    ops_per_client = 1;
  }

let test_mc_es_dynamic_verified () =
  (* Stability 2 heals the graph often enough for Alg. 2 to close. *)
  let r =
    Mc.run
      (mc_config ~env:(G.Env.Dynamic { stability = 2; rooted = true }) ~rounds:8 ())
  in
  check_bool "verified" true (r.Mc.verdict = Mc.Verified);
  check_int "no bound cuts" 0 r.Mc.stats.Anon_mc.Explore.bound_branches

let test_mc_ess_rotating_root_stalls () =
  (* Stability 1 rooted = a root that can rotate every round: ESS never
     accumulates a stable source, so within the bound no branch decides —
     and the non-deciding witness replays through the real runner. *)
  let r =
    Mc.run
      (mc_config ~algo:Mc.Ess
         ~env:(G.Env.Dynamic { stability = 1; rooted = true })
         ~rounds:6 ())
  in
  check_bool "bounded" true (r.Mc.verdict = Mc.Bounded);
  check_bool "no safety violation" true (r.Mc.violation = None);
  (match r.Mc.non_deciding with
  | Some (_, _, b) ->
    check_bool "both blocked" true (b.Anon_mc.Explore.b_blocked = [ 0; 1 ])
  | None -> Alcotest.fail "expected a non-deciding witness");
  match r.Mc.witness with
  | Some w -> check_bool "replay confirms" true (Witness.confirmed w)
  | None -> Alcotest.fail "expected a witness"

let test_mc_churn_budget_verified () =
  (* Every join/leave schedule of one process still lets ES decide within
     depth 8: rejoiners restart from their input and catch up. *)
  let r = Mc.run (mc_config ~rounds:8 ~churn:1 ()) in
  check_bool "verified" true (r.Mc.verdict = Mc.Verified);
  check_bool "churn schedules explored" true (r.Mc.schedules > 1)

let test_mc_churn_crash_disjoint () =
  (* Crash and churn schedules cross only on disjoint pid sets. At n=2,
     budget 1 each, rounds 2: 1 + 2*2 crash-only + 2*(2+1) churn-only +
     2*2*(2+1) combined = 23 schedules. *)
  let r = Mc.run (mc_config ~rounds:2 ~crashes:1 ~churn:1 ()) in
  check_int "schedule count" 23 r.Mc.schedules

let test_mc_churn_rejected_for_weakset () =
  Alcotest.check_raises "ms-weakset + churn"
    (Invalid_argument "Mc.run: churn is not supported for ms-weakset") (fun () ->
      ignore (Mc.run (mc_config ~algo:Mc.Ms_weakset ~env:G.Env.Ms ~churn:1 ())))

let test_mc_armed_dynamic_violation () =
  (* Armed exploration under a rooted dynamic env must surface a No_root
     violation that the checker confirms on replay. *)
  let r =
    Mc.run
      (mc_config ~env:(G.Env.Dynamic { stability = 2; rooted = true }) ~armed:true ())
  in
  check_bool "violation" true (r.Mc.verdict = Mc.Violation);
  (match r.Mc.violation with
  | Some (_, _, w) ->
    check_bool "No_root reported" true (has_no_root w.Anon_mc.Explore.w_violations)
  | None -> Alcotest.fail "expected a violation");
  match r.Mc.witness with
  | Some w -> check_bool "replay confirms" true (Witness.confirmed w)
  | None -> Alcotest.fail "expected a witness"

(* --- the rejoin finding: committed counterexamples --------------------------- *)

(* Anonymous consensus does not tolerate state-resetting rejoiners: a
   process that leaves before its input circulates and rejoins later
   broadcasts the empty PROPOSED set, which erases every receiver's
   WRITTEN intersection for that round — exactly the adoption step that
   otherwise forces all stayers to converge on a decider's value.  The
   model checker rediscovers this split whenever the decide window lies
   strictly before GST (both isolation rounds must be pre-GST, so gst >= 5
   at the earliest even decision round 4).  This is a property of the
   model, not a runner bug; see DESIGN.md section 12. *)

(* Committed repro files live at the workspace root; [dune runtest] runs
   from the test build dir, [dune exec] from the workspace root. *)
let repro_path name =
  let candidates =
    [ Filename.concat "repros" name; Filename.concat "../repros" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let test_finding_mc_rediscovers_split () =
  (* n=3: one churner plus two stayers to split.  A lone stayer (n=2)
     cannot disagree with itself, so the smallest splitting system is 3. *)
  let r =
    Mc.run (mc_config ~n:3 ~env:(G.Env.Es { gst = 5 }) ~rounds:8 ~churn:1 ())
  in
  check_bool "violation" true (r.Mc.verdict = Mc.Violation);
  (match r.Mc.violation with
  | Some (crashes, churn, w) ->
    check_bool "no crashes involved" true (crashes = []);
    check_bool "churn schedule non-empty" true (churn <> []);
    let churned = List.map (fun (e : G.Churn.event) -> e.pid) churn in
    check_bool "split is between stayers" true
      (List.exists
         (function
           | G.Checker.Agreement_violation { p1; p2; _ } ->
             (not (List.mem p1 churned)) && not (List.mem p2 churned)
           | _ -> false)
         w.Anon_mc.Explore.w_violations)
  | None -> Alcotest.fail "expected a violation");
  match r.Mc.witness with
  | Some w -> check_bool "replay confirms" true (Witness.confirmed w)
  | None -> Alcotest.fail "expected a witness"

let replay_committed name pred what =
  match Ch.Fuzz.replay ~path:(repro_path name) with
  | Error e -> Alcotest.failf "%s: replay failed: %s" name e
  | Ok r ->
    check_bool (name ^ " matches recorded verdict") true r.Ch.Fuzz.matches;
    check_bool (name ^ " reproduces " ^ what) true
      (List.exists pred r.Ch.Fuzz.actual)

let test_churn_rejoin_split_through_core () =
  (* The committed rejoin-split counterexample, byte-identically through
     the unified core. First the full replay path (runner shell over
     [Step_core]): the rendered violations must equal the stored ones
     exactly. Then the same case driven against the core directly, pinning
     the PR's rejoiner audit: at the rejoin round the stale state and
     mailbox are gone, and what the rejoiner computes and broadcasts is
     exactly [A.initialize] on its input — a fresh process, not a stale
     scratch buffer. *)
  match Ch.Fuzz.replay ~path:(repro_path "churn-rejoin-split.json") with
  | Error e -> Alcotest.failf "replay failed: %s" e
  | Ok r ->
    check_bool "violations byte-identical" true r.Ch.Fuzz.matches;
    let case = r.Ch.Fuzz.case in
    let module A = C.Es_consensus in
    let module Core = G.Step_core.Consensus (A) in
    let inputs = Array.of_list (Ch.Scenario.inputs case) in
    let adv = Ch.Scenario.adversary case in
    let core =
      Core.create ~inputs ~crash:(Ch.Scenario.crash case)
        ~churn:(Ch.Scenario.churn case) ~env:(G.Adversary.env adv)
    in
    let rejoiner, rejoin_round =
      match case.Ch.Scenario.churn with
      | [ { G.Churn.pid; rejoin = Some r; _ } ] -> (pid, r)
      | _ -> Alcotest.fail "expected a single rejoining churner"
    in
    let rng = Rng.make case.Ch.Scenario.seed in
    let crash_rng = Rng.split rng in
    let decisions = ref [] in
    for k = 1 to case.Ch.Scenario.horizon do
      Core.begin_round core;
      if k = rejoin_round then begin
        check_bool "rejoiner live again" true
          (Core.fate core rejoiner = G.Step_core.Live);
        check_bool "stale state discarded" true (Core.state core rejoiner = None);
        check_int "rejoiner mailbox empty" 0 (Core.mailbox_pending core rejoiner);
        check_bool "no stale inflight" true (Core.inflight core rejoiner = [])
      end;
      let _outgoing =
        Core.compute core ~on_decide:(fun ~pid ~round:_ ~value ->
            decisions := (pid, value) :: !decisions)
      in
      if k = rejoin_round then begin
        let fresh_state, fresh_msg = A.initialize inputs.(rejoiner) in
        (match Core.state core rejoiner with
        | Some st ->
          check_str "rejoiner state is a fresh initialize" (A.state_key fresh_state)
            (A.state_key st)
        | None -> Alcotest.fail "rejoiner has no state after compute");
        match Core.out core rejoiner with
        | Some m ->
          check_str "rejoiner broadcast is the round-1 message" (A.msg_key fresh_msg)
            (A.msg_key m)
        | None -> Alcotest.fail "rejoiner sent nothing at its rejoin round"
      end;
      let plan = G.Adversary.plan adv (Core.ctx core) rng in
      let (_ : G.Dispatch.stats) = Core.deliver core ~plan ~crash_rng in
      ()
    done;
    (* The direct-core run lands on the recorded agreement split. *)
    let decided p =
      List.filter_map (fun (pid, v) -> if pid = p then Some v else None) !decisions
    in
    List.iter
      (function
        | G.Checker.Agreement_violation { p1; v1; p2; v2 } ->
          check_bool "core reproduces the recorded split" true
            (decided p1 = [ v1 ] && decided p2 = [ v2 ])
        | _ -> ())
      r.Ch.Fuzz.actual

let test_finding_committed_repros_replay () =
  replay_committed "churn-rejoin-split.json"
    (function G.Checker.Agreement_violation _ -> true | _ -> false)
    "the agreement split";
  replay_committed "ess-rotating-root-stall.json"
    (function G.Checker.Termination_violation _ -> true | _ -> false)
    "the rotating-root stall"

let () =
  Alcotest.run "dynamic"
    [
      ( "env",
        [
          Alcotest.test_case "pulse arithmetic" `Quick test_env_pulse;
          Alcotest.test_case "of_string dynamic" `Quick test_env_of_string_dynamic;
          Alcotest.test_case "requires_source" `Quick test_env_requires_source;
        ] );
      ( "churn",
        [
          Alcotest.test_case "validation" `Quick test_churn_validation;
          Alcotest.test_case "away windows" `Quick test_churn_away_windows;
          Alcotest.test_case "random bounds" `Quick test_churn_random_bounds;
        ] );
      ( "topology",
        [
          Alcotest.test_case "rotating root" `Quick test_topology_rotating_root;
          Alcotest.test_case "t-interval static" `Quick test_topology_t_interval_static;
          Alcotest.test_case "fault/sever order pinned" `Quick
            test_sever_fault_order_pinned;
          Alcotest.test_case "full stack admissible" `Quick
            test_compose_full_stack_admissible;
          Alcotest.test_case "sever complete = identity" `Quick
            test_sever_complete_is_identity;
          Alcotest.test_case "sever admissible stays clean" `Quick
            test_sever_admissible_stays_clean;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "No_root format pinned" `Quick
            test_no_root_diagnostic_format;
          Alcotest.test_case "Stability_violation format pinned" `Quick
            test_stability_diagnostic_format;
        ] );
      ( "fault-validation",
        [
          Alcotest.test_case "rejects malformed" `Quick test_fault_validate_rejects;
          Alcotest.test_case "accepts boundaries" `Quick
            test_fault_validate_accepts_boundaries;
        ] );
      ( "admissible",
        [
          Alcotest.test_case "dynamic env, all algos" `Slow
            test_dynamic_env_admissible_all_algos;
          Alcotest.test_case "churn, all algos" `Slow test_churn_admissible_all_algos;
          Alcotest.test_case "dynamic + churn + crash" `Quick
            test_dynamic_churn_crash_combined;
          Alcotest.test_case "sampled dynamic+churn cases" `Slow
            test_sampled_admissible_dynamic_churn;
        ] );
      ( "finding",
        [
          Alcotest.test_case "mc rediscovers the rejoin split" `Quick
            test_finding_mc_rediscovers_split;
          Alcotest.test_case "committed repros replay" `Quick
            test_finding_committed_repros_replay;
          Alcotest.test_case "rejoin split through the core" `Quick
            test_churn_rejoin_split_through_core;
        ] );
      ( "armed",
        [
          Alcotest.test_case "root starvation detected" `Quick
            test_root_starvation_detected;
          Alcotest.test_case "stability break detected" `Quick
            test_stability_break_detected;
          Alcotest.test_case "no-op on static envs" `Quick
            test_armed_modes_noop_on_static_envs;
        ] );
      ( "schema",
        [
          Alcotest.test_case "v2 round-trip" `Quick test_scenario_v2_roundtrip;
          Alcotest.test_case "v1 compatibility" `Quick test_scenario_v1_compat;
          Alcotest.test_case "future version rejected" `Quick
            test_scenario_future_version_rejected;
        ] );
      ( "mc",
        [
          Alcotest.test_case "ES dynamic:2 verified" `Quick test_mc_es_dynamic_verified;
          Alcotest.test_case "ESS rotating root stalls" `Quick
            test_mc_ess_rotating_root_stalls;
          Alcotest.test_case "churn budget verified" `Quick
            test_mc_churn_budget_verified;
          Alcotest.test_case "crash x churn disjoint" `Quick
            test_mc_churn_crash_disjoint;
          Alcotest.test_case "churn rejected for weak-set" `Quick
            test_mc_churn_rejected_for_weakset;
          Alcotest.test_case "armed dynamic violation" `Quick
            test_mc_armed_dynamic_violation;
        ] );
    ]
