(* Tests for the observability layer: the JSON codec, the metrics
   registry (including snapshot merge), the event sinks, and the recorder
   threaded through a real runner. *)

open Anon_obs
module G = Anon_giraf
module C = Anon_consensus

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Json ------------------------------------------------------------------- *)

let json = Alcotest.testable Json.pp Json.equal

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nline\\slash");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2; Json.Obj [] ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.check json "roundtrip" v v'
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_non_finite () =
  (* nan/inf have no JSON encoding; the printer degrades them to null
     rather than emitting an unparseable token. *)
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "tru";
  bad "1 2"

let test_json_unicode_escapes () =
  let parses s expected =
    match Json.of_string s with
    | Ok (Json.String got) -> Alcotest.(check string) s expected got
    | Ok _ -> Alcotest.failf "%S parsed to a non-string" s
    | Error e -> Alcotest.failf "%S: %s" s e
  in
  (* \u escapes decode to UTF-8 bytes, not truncated chars. *)
  parses {|"\u0041"|} "A";
  parses {|"\u00e9"|} "\xc3\xa9" (* e-acute *);
  parses {|"\u00E9"|} "\xc3\xa9" (* upper-case hex digits *);
  parses {|"\u2713"|} "\xe2\x9c\x93" (* check mark *);
  parses {|"\u0000"|} "\x00";
  (* A surrogate pair decodes to one astral code point. *)
  parses {|"\ud83d\ude00"|} "\xf0\x9f\x98\x80" (* U+1F600 *);
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  (* Lone or misordered surrogates are rejected. *)
  bad {|"\ud83d"|};
  bad {|"\ud83d rest"|};
  bad {|"\ude00"|};
  bad {|"\ud83dA"|};
  bad {|"\u12"|};
  bad {|"\u12g4"|}

let test_json_non_ascii_roundtrip () =
  (* Raw UTF-8 passes through the printer untouched and survives the
     parser; escaped input re-prints as the same raw bytes. *)
  List.iter
    (fun s ->
      let v = Json.String s in
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Alcotest.check json ("roundtrip " ^ s) v v'
      | Error e -> Alcotest.failf "%s: %s" s e)
    [ "h\xc3\xa9llo"; "\xe2\x9c\x93 done"; "\xf0\x9f\x98\x80";
      "mixed \xe2\x9c\x93 \xf0\x9f\x98\x80 end" ];
  match Json.of_string {|"caf\u00e9 \u2713 \ud83d\ude00"|} with
  | Ok v ->
    Alcotest.check json "escapes normalize to UTF-8"
      (Json.String "caf\xc3\xa9 \xe2\x9c\x93 \xf0\x9f\x98\x80") v
  | Error e -> Alcotest.failf "parse error: %s" e

(* --- Metrics ---------------------------------------------------------------- *)

let test_metrics_counters_gauges () =
  let r = Metrics.create () in
  let c = Metrics.counter r "a.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "counter" 5 (Metrics.counter_value c);
  let c' = Metrics.counter r "a.count" in
  Metrics.incr c';
  check_int "same cell" 6 (Metrics.counter_value c);
  let g = Metrics.gauge r "a.gauge" in
  Metrics.set_gauge g 2.5;
  let h = Metrics.histogram r "a.hist_us" in
  Metrics.observe h 1.0;
  Metrics.observe h 3.0;
  let snap = Metrics.snapshot r in
  Alcotest.(check (list (pair string int))) "counters" [ ("a.count", 6) ] snap.counters;
  Alcotest.(check (list (pair string (float 1e-9)))) "gauges"
    [ ("a.gauge", 2.5) ] snap.gauges;
  (match snap.histograms with
  | [ ("a.hist_us", samples) ] ->
    Alcotest.(check (array (float 1e-9))) "samples" [| 1.0; 3.0 |] samples
  | _ -> Alcotest.fail "histogram snapshot shape");
  Metrics.reset r;
  let snap = Metrics.snapshot r in
  Alcotest.(check (list (pair string int))) "reset counters"
    [ ("a.count", 0) ] snap.counters;
  Alcotest.(check (list (pair string (float 1e-9)))) "reset gauges" [] snap.gauges

let test_metrics_disabled_noop () =
  let c = Metrics.counter Metrics.disabled "x" in
  Metrics.incr c;
  check_int "no-op counter" 0 (Metrics.counter_value c);
  let h = Metrics.histogram Metrics.disabled "y" in
  (* [time] on a no-op handle must still run the thunk. *)
  check_int "time passthrough" 7 (Metrics.time h (fun () -> 7));
  let snap = Metrics.snapshot Metrics.disabled in
  check_int "empty snapshot" 0 (List.length snap.counters)

let test_metrics_merge () =
  let mk c g hs =
    let r = Metrics.create () in
    Metrics.incr ~by:c (Metrics.counter r "n");
    (match g with
    | Some v -> Metrics.set_gauge (Metrics.gauge r "g") v
    | None -> ());
    List.iter (Metrics.observe (Metrics.histogram r "h")) hs;
    Metrics.snapshot r
  in
  let merged =
    Metrics.merge [ mk 2 (Some 1.0) [ 1.0 ]; mk 3 (Some 3.0) [ 2.0; 4.0 ]; mk 5 None [] ]
  in
  (* Counters sum; gauges average over the runs that set them; histogram
     samples concatenate in run order. *)
  Alcotest.(check (list (pair string int))) "counters sum" [ ("n", 10) ] merged.counters;
  Alcotest.(check (list (pair string (float 1e-9)))) "gauges mean"
    [ ("g", 2.0) ] merged.gauges;
  (match merged.histograms with
  | [ ("h", samples) ] ->
    Alcotest.(check (array (float 1e-9))) "samples concat" [| 1.0; 2.0; 4.0 |] samples
  | _ -> Alcotest.fail "merged histogram shape")

let test_metrics_json () =
  let r = Metrics.create () in
  Metrics.incr (Metrics.counter r "c");
  Metrics.observe (Metrics.histogram r "h") 2.0;
  let j = Metrics.to_json (Metrics.snapshot r) in
  let open Json in
  check_bool "counter in json" true
    (Option.bind (member "counters" j) (member "c") = Some (Int 1));
  check_bool "histogram count" true
    (Option.bind (Option.bind (member "histograms" j) (member "h")) (member "count")
    = Some (Int 1))

(* --- Events ----------------------------------------------------------------- *)

let event = Alcotest.testable Event.pp Event.equal

let all_events =
  [
    Event.Run_start { algo = "es"; n = 4; seed = 7 };
    Event.Run_end { rounds = 12; decided = true };
    Event.Round_start { round = 3 };
    Event.Round_end { round = 3; senders = 4; delivered = 12; timely = 9 };
    Event.Broadcast { pid = 1; round = 3; size = 5 };
    Event.Deliver { sender = 0; receiver = 2; round = 3; arrival = 4 };
    Event.Decide { pid = 2; round = 5; value = 41 };
    Event.Crash { pid = 3; round = 2 };
    Event.Leader { pid = 0; round = 6; leader = false };
    Event.Ws_add { pid = 1; round = 2; value = 10 };
    Event.Ws_add_done { pid = 1; round = 4; value = 10 };
    Event.Ws_get { pid = 2; round = 4; size = 3 };
    Event.Shm_step { step = 17; pid = 1 };
    Event.Shm_done { pid = 1; op_index = 2; invoked = 10; completed = 17 };
    Event.Fault { kind = "duplicate"; round = 3; sender = 1; receiver = 2 };
    Event.Fault { kind = "drop_obligated"; round = 5; sender = 0; receiver = -1 };
  ]

let test_event_roundtrip () =
  List.iter
    (fun ev ->
      match Event.of_json (Event.to_json ev) with
      | Ok ev' -> Alcotest.check event "roundtrip" ev ev'
      | Error e -> Alcotest.failf "decode failed (%s): %s" e (Json.to_string (Event.to_json ev)))
    all_events

(* --- Sinks ------------------------------------------------------------------ *)

let test_sink_ring () =
  let s = Sink.memory ~capacity:3 in
  check_bool "not null" false (Sink.is_null s);
  List.iteri (fun i _ -> Sink.emit s (Event.Round_start { round = i })) (List.init 5 Fun.id);
  (* Capacity 3, 5 emits: the two oldest are overwritten. *)
  Alcotest.(check (list event)) "last three, oldest first"
    [
      Event.Round_start { round = 2 };
      Event.Round_start { round = 3 };
      Event.Round_start { round = 4 };
    ]
    (Sink.events s);
  check_int "dropped" 2 (Sink.dropped s)

let test_sink_null_and_tee () =
  check_bool "null" true (Sink.is_null Sink.null);
  check_bool "tee of nulls" true (Sink.is_null (Sink.tee [ Sink.null; Sink.null ]));
  let a = Sink.memory ~capacity:8 and b = Sink.memory ~capacity:8 in
  let t = Sink.tee [ a; b ] in
  check_bool "tee live" false (Sink.is_null t);
  Sink.emit t (Event.Crash { pid = 0; round = 1 });
  check_int "both children" 2 (List.length (Sink.events a) + List.length (Sink.events b))

let test_sink_jsonl_roundtrip () =
  let path = Filename.temp_file "anonc_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let s = Sink.jsonl oc in
      List.iter (Sink.emit s) all_events;
      Sink.flush s;
      close_out oc;
      let ic = open_in path in
      let rec read acc =
        match input_line ic with
        | line -> (
          match Json.of_string line with
          | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e
          | Ok j -> (
            match Event.of_json j with
            | Error e -> Alcotest.failf "bad event %S: %s" line e
            | Ok ev -> read (ev :: acc)))
        | exception End_of_file -> List.rev acc
      in
      let evs = read [] in
      close_in ic;
      Alcotest.(check (list event)) "file roundtrip" all_events evs)

(* --- Recorder + runner integration ------------------------------------------ *)

let test_recorder_off () =
  check_bool "off is inactive" false (Recorder.active Recorder.off);
  (* Event thunks must not run against the null sink. *)
  Recorder.emit Recorder.off (fun () -> Alcotest.fail "thunk forced on null sink")

let run_es ~recorder =
  let module R = G.Runner.Make (C.Es_consensus) in
  R.run ~recorder
    (G.Runner.default_config ~horizon:100 ~seed:11
       ~inputs:(List.init 6 (fun i -> i + 1))
       ~crash:(G.Crash.none ~n:6)
       (G.Adversary.es_blocking ~gst:8 ()))

let test_runner_metrics_match_outcome () =
  let registry = Metrics.create () in
  let recorder = Recorder.create ~metrics:registry () in
  let outcome = run_es ~recorder in
  let snap = Metrics.snapshot registry in
  let c name = Option.value ~default:0 (List.assoc_opt name snap.counters) in
  (* The counters must agree exactly with the outcome the runner already
     reports through its return value. *)
  check_int "broadcasts" outcome.messages_sent (c "runner.broadcasts");
  check_int "deliveries" outcome.deliveries (c "runner.deliveries");
  check_int "timely" outcome.timely_deliveries (c "runner.timely_deliveries");
  check_int "decisions" (List.length outcome.decisions) (c "runner.decisions");
  check_bool "compute timer sampled" true
    (List.mem_assoc "phase.compute_us" snap.histograms)

let test_runner_event_stream () =
  let sink = Sink.memory ~capacity:100_000 in
  let recorder = Recorder.create ~sink () in
  let outcome = run_es ~recorder in
  let evs = Sink.events sink in
  let count p = List.length (List.filter p evs) in
  check_int "one run_start" 1
    (count (function Event.Run_start _ -> true | _ -> false));
  check_int "one run_end" 1 (count (function Event.Run_end _ -> true | _ -> false));
  check_int "decide events" (List.length outcome.decisions)
    (count (function Event.Decide _ -> true | _ -> false));
  check_int "deliver events" outcome.deliveries
    (count (function Event.Deliver _ -> true | _ -> false));
  check_int "broadcast events" outcome.messages_sent
    (count (function Event.Broadcast _ -> true | _ -> false));
  (* Every decide event must match a decision in the outcome. *)
  List.iter
    (function
      | Event.Decide { pid; round; value } ->
        check_bool "decision recorded" true
          (List.mem (pid, round, value) outcome.decisions)
      | _ -> ())
    evs

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "non-finite" `Quick test_json_non_finite;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "non-ascii roundtrip" `Quick
            test_json_non_ascii_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters/gauges/histograms" `Quick
            test_metrics_counters_gauges;
          Alcotest.test_case "disabled no-op" `Quick test_metrics_disabled_noop;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
          Alcotest.test_case "to_json" `Quick test_metrics_json;
        ] );
      ( "events",
        [ Alcotest.test_case "json roundtrip" `Quick test_event_roundtrip ] );
      ( "sinks",
        [
          Alcotest.test_case "ring buffer" `Quick test_sink_ring;
          Alcotest.test_case "null and tee" `Quick test_sink_null_and_tee;
          Alcotest.test_case "jsonl roundtrip" `Quick test_sink_jsonl_roundtrip;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "off" `Quick test_recorder_off;
          Alcotest.test_case "runner metrics" `Quick test_runner_metrics_match_outcome;
          Alcotest.test_case "runner events" `Quick test_runner_event_stream;
        ] );
    ]
